// Execution tracing: devices and the UM driver record spans (kernels,
// waves, CPU reductions, migrations, co-execution regions) against
// simulated time; the recorder exports Chrome trace-event JSON
// (chrome://tracing / Perfetto) so a run's timeline can be inspected
// visually — the closest simulator analogue of an Nsight Systems capture.
//
// Tracing is opt-in: devices hold a Tracer pointer that is null by default,
// and every record call no-ops when disabled, so the hot simulation paths
// pay one branch.
//
// Spans may carry a trace::Context (trace/span/parent ids); the serving
// layer threads one context tree through each job's admission, queue wait,
// retries, and device execution, so a request renders as one causally
// linked tree (see chrome_exporter.hpp). Retention is bounded the same way
// as telemetry::FlightRecorder: the tracer keeps the most recent `capacity`
// spans (and instants), dropping the oldest and counting the drops, so
// long chaos runs cannot grow memory without limit.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "ghs/trace/context.hpp"
#include "ghs/util/units.hpp"

namespace ghs::trace {

/// Track (Chrome "thread") a span is drawn on.
enum class Track : std::uint8_t {
  kGpu = 0,
  kGpuWaves = 1,
  kCpu = 2,
  kUmMigration = 3,
  kRuntime = 4,
  /// Request-serving layer (ghs::serve): per-launch spans and admission
  /// markers of the multi-tenant scheduler.
  kServer = 5,
  /// Per-job causal span trees (serve.job / serve.queue / serve.execute
  /// and their device children), one trace per served request.
  kJobs = 6,
};

inline constexpr Track kLastTrack = Track::kJobs;

const char* track_name(Track track);

struct Span {
  Track track;
  std::string name;
  SimTime begin = 0;
  SimTime end = 0;
  /// Optional free-form detail rendered into the event's args.
  std::string detail;
  /// Optional causal identity; default (all zeros) = context-free span.
  Context ctx;
};

struct Instant {
  Track track;
  std::string name;
  SimTime at = 0;
  Context ctx;
};

/// Deterministic head sampling: whether a trace is kept is a pure
/// function of (seed, trace_id), so every span of one request keeps or
/// drops as a unit, and two same-seed runs sample identically. rate >= 1
/// disables the sampler entirely — output is then byte-identical to a
/// tracer that never had one (the byte-identity tests rely on this).
struct SamplerOptions {
  /// Fraction of traces kept, in [0, 1]; 1.0 (default) keeps everything.
  double rate = 1.0;
  std::uint64_t seed = 0;
};

class Tracer {
 public:
  /// Spans and instants each keep at most `capacity` entries, oldest
  /// dropped first. The default is large enough that every workload in the
  /// repository retains everything; chaos soak runs rely on the bound.
  static constexpr std::size_t kDefaultCapacity = 1 << 20;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  /// Installs (or, with rate >= 1, removes) the head sampler.
  void set_sampler(SamplerOptions options);

  bool sampler_active() const { return sampler_.rate < 1.0; }
  double sample_rate() const { return sampler_.rate; }
  std::uint64_t sampler_seed() const { return sampler_.seed; }

  /// True when the trace survives sampling. trace_id 0 (context-free
  /// spans) is always kept: the sampler applies to request trees only.
  bool sampled(std::uint64_t trace_id) const {
    if (!sampler_active() || trace_id == 0) return true;
    return decide(trace_id);
  }

  /// Pre-check for callers: skip building span names/details entirely for
  /// traces the sampler will drop — this is what makes tracing at 10^6
  /// jobs O(sampled) instead of O(jobs).
  bool keep(const Context& ctx) const { return sampled(ctx.trace_id); }

  /// Ctx-carrying entries rejected by the sampler (record/mark calls made
  /// without the keep() pre-check still count their drops here).
  std::int64_t dropped_by_sampler() const { return dropped_by_sampler_; }

  /// Records a completed span; begin <= end required.
  void record(Track track, std::string name, SimTime begin, SimTime end,
              std::string detail = {}, Context ctx = {});

  /// Records a zero-duration marker.
  void mark(Track track, std::string name, SimTime at, Context ctx = {});

  /// Hands out the next span id (1, 2, 3, ...). Ids are deterministic for
  /// a deterministic record sequence, which keeps trace files byte-stable
  /// across same-seed runs.
  std::uint64_t new_span_id() { return ++last_span_id_; }

  /// Retained entries, oldest first (a snapshot: the tracer is a bounded
  /// ring, so older entries may already have been dropped).
  std::vector<Span> spans() const;
  std::vector<Instant> instants() const;
  std::size_t size() const { return span_ring_.size() + instant_ring_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Entries lost to the ring bound, spans + instants.
  std::int64_t dropped_total() const { return dropped_spans_ + dropped_instants_; }
  void clear();

  /// Writes Chrome trace-event JSON (the "traceEvents" array format).
  /// Simulated picoseconds are exported as microseconds scaled by 1e-6 so
  /// nanosecond-scale events stay visible in the viewer. For the richer
  /// per-device export with flow events, see ChromeTraceExporter.
  void write_chrome_json(std::ostream& os) const;

 private:
  bool decide(std::uint64_t trace_id) const;

  const std::size_t capacity_;
  std::vector<Span> span_ring_;       // grows to capacity_, then wraps
  std::vector<Instant> instant_ring_;
  std::size_t span_next_ = 0;         // oldest entry once wrapped
  std::size_t instant_next_ = 0;
  std::int64_t dropped_spans_ = 0;
  std::int64_t dropped_instants_ = 0;
  std::uint64_t last_span_id_ = 0;
  SamplerOptions sampler_;
  std::uint64_t keep_threshold_ = 0;  // derived from sampler_.rate
  std::int64_t dropped_by_sampler_ = 0;
};

/// Helper for the devices: records only when the tracer is non-null.
inline void record_span(Tracer* tracer, Track track, const std::string& name,
                        SimTime begin, SimTime end,
                        const std::string& detail = {}) {
  if (tracer != nullptr) {
    tracer->record(track, name, begin, end, detail);
  }
}

}  // namespace ghs::trace
