// Execution tracing: devices and the UM driver record spans (kernels,
// waves, CPU reductions, migrations, co-execution regions) against
// simulated time; the recorder exports Chrome trace-event JSON
// (chrome://tracing / Perfetto) so a run's timeline can be inspected
// visually — the closest simulator analogue of an Nsight Systems capture.
//
// Tracing is opt-in: devices hold a Tracer pointer that is null by default,
// and every record call no-ops when disabled, so the hot simulation paths
// pay one branch.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "ghs/util/units.hpp"

namespace ghs::trace {

/// Track (Chrome "thread") a span is drawn on.
enum class Track : std::uint8_t {
  kGpu = 0,
  kGpuWaves = 1,
  kCpu = 2,
  kUmMigration = 3,
  kRuntime = 4,
  /// Request-serving layer (ghs::serve): per-launch spans and admission
  /// markers of the multi-tenant scheduler.
  kServer = 5,
};

const char* track_name(Track track);

struct Span {
  Track track;
  std::string name;
  SimTime begin = 0;
  SimTime end = 0;
  /// Optional free-form detail rendered into the event's args.
  std::string detail;
};

struct Instant {
  Track track;
  std::string name;
  SimTime at = 0;
};

class Tracer {
 public:
  /// Records a completed span; begin <= end required.
  void record(Track track, std::string name, SimTime begin, SimTime end,
              std::string detail = {});

  /// Records a zero-duration marker.
  void mark(Track track, std::string name, SimTime at);

  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<Instant>& instants() const { return instants_; }
  std::size_t size() const { return spans_.size() + instants_.size(); }
  void clear();

  /// Writes Chrome trace-event JSON (the "traceEvents" array format).
  /// Simulated picoseconds are exported as microseconds scaled by 1e-6 so
  /// nanosecond-scale events stay visible in the viewer.
  void write_chrome_json(std::ostream& os) const;

 private:
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
};

/// Helper for the devices: records only when the tracer is non-null.
inline void record_span(Tracer* tracer, Track track, const std::string& name,
                        SimTime begin, SimTime end,
                        const std::string& detail = {}) {
  if (tracer != nullptr) {
    tracer->record(track, name, begin, end, detail);
  }
}

}  // namespace ghs::trace
