// ChromeTraceExporter: the richer Chrome/Perfetto export over a Tracer.
//
// Where Tracer::write_chrome_json draws every track inside one process,
// this exporter maps the capture the way Perfetto expects a real system
// trace: one *process* per device (H100 GPU, Grace CPU, reduction
// service), one *thread* per track, span-context ids rendered into each
// event's args, and flow events stitching the spans of one trace together
// (queue wait on the service process -> execute on a device process), so
// following a single job across devices is one click in the viewer.
//
// Output is deterministic: events are emitted in recording order and flow
// groups in trace-id order, so two runs of the same (plan, seed) write
// byte-identical files.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "ghs/trace/tracer.hpp"

namespace ghs::trace {

struct ChromeTraceOptions {
  /// Emit "s"/"f" flow events linking same-trace spans across tracks.
  bool flow_events = true;
};

/// One point on a Perfetto counter track; timestamps share the span
/// timebase, so counters line up under the span trees.
struct CounterSample {
  SimTime at = 0;
  double value = 0.0;
};

/// A named counter track ("ph":"C" events) rendered on the telemetry
/// process; ghs::timeseries builds these from scraped series.
struct CounterTrack {
  std::string name;
  std::vector<CounterSample> samples;
};

class ChromeTraceExporter {
 public:
  explicit ChromeTraceExporter(const Tracer& tracer,
                               ChromeTraceOptions options = {});

  /// Adds a counter track to the export. With no tracks added the output
  /// is byte-identical to a counter-free build.
  void add_counter_track(CounterTrack track);

  void write(std::ostream& os) const;

  /// Process ("pid") a track renders under: 1 = H100 GPU, 2 = Grace CPU,
  /// 3 = reduction service / runtime. Counter tracks render under
  /// kTelemetryPid.
  static int process_of(Track track);
  static const char* process_name(int pid);
  static constexpr int kTelemetryPid = 4;

 private:
  const Tracer& tracer_;
  ChromeTraceOptions options_;
  std::vector<CounterTrack> counters_;
};

}  // namespace ghs::trace
