// ChromeTraceExporter: the richer Chrome/Perfetto export over a Tracer.
//
// Where Tracer::write_chrome_json draws every track inside one process,
// this exporter maps the capture the way Perfetto expects a real system
// trace: one *process* per device (H100 GPU, Grace CPU, reduction
// service), one *thread* per track, span-context ids rendered into each
// event's args, and flow events stitching the spans of one trace together
// (queue wait on the service process -> execute on a device process), so
// following a single job across devices is one click in the viewer.
//
// Output is deterministic: events are emitted in recording order and flow
// groups in trace-id order, so two runs of the same (plan, seed) write
// byte-identical files.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "ghs/trace/tracer.hpp"

namespace ghs::trace {

struct ChromeTraceOptions {
  /// Emit "s"/"f" flow events linking same-trace spans across tracks.
  bool flow_events = true;
};

/// One point on a Perfetto counter track; timestamps share the span
/// timebase, so counters line up under the span trees.
struct CounterSample {
  SimTime at = 0;
  double value = 0.0;
};

/// A named counter track ("ph":"C" events) rendered on the telemetry
/// process; ghs::timeseries builds these from scraped series.
struct CounterTrack {
  std::string name;
  std::vector<CounterSample> samples;
};

/// One coalesced profiler observation: the device held this folded stack
/// for [begin, end].
struct ProfileSlice {
  std::string name;
  SimTime begin = 0;
  SimTime end = 0;
};

/// A per-device profiler thread ("ph":"X" slices) rendered on the
/// profiler process; ghs::profile builds these from its sample chain.
struct ProfileTrack {
  std::string name;
  std::vector<ProfileSlice> slices;
};

class ChromeTraceExporter {
 public:
  explicit ChromeTraceExporter(const Tracer& tracer,
                               ChromeTraceOptions options = {});

  /// Adds a counter track to the export. With no tracks added the output
  /// is byte-identical to a counter-free build.
  void add_counter_track(CounterTrack track);

  /// Adds a profiler slice track. Same gate as counters: with none added
  /// the output is byte-identical to a profiler-free build.
  void add_profile_track(ProfileTrack track);

  void write(std::ostream& os) const;

  /// Process ("pid") a track renders under: 1 = H100 GPU, 2 = Grace CPU,
  /// 3 = reduction service / runtime. Counter tracks render under
  /// kTelemetryPid, profiler slice tracks under kProfilePid.
  static int process_of(Track track);
  static const char* process_name(int pid);
  static constexpr int kTelemetryPid = 4;
  static constexpr int kProfilePid = 5;

 private:
  const Tracer& tracer_;
  ChromeTraceOptions options_;
  std::vector<CounterTrack> counters_;
  std::vector<ProfileTrack> profiles_;
};

}  // namespace ghs::trace
