#include "ghs/trace/chrome_exporter.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

namespace ghs::trace {

namespace {

void write_escaped(std::ostream& os, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

double to_trace_us(SimTime t) { return static_cast<double>(t) * 1e-6; }

}  // namespace

ChromeTraceExporter::ChromeTraceExporter(const Tracer& tracer,
                                         ChromeTraceOptions options)
    : tracer_(tracer), options_(options) {}

int ChromeTraceExporter::process_of(Track track) {
  switch (track) {
    case Track::kGpu:
    case Track::kGpuWaves:
    case Track::kUmMigration:
      return 1;
    case Track::kCpu:
      return 2;
    case Track::kRuntime:
    case Track::kServer:
    case Track::kJobs:
      return 3;
  }
  return 3;
}

const char* ChromeTraceExporter::process_name(int pid) {
  switch (pid) {
    case 1:
      return "H100 GPU";
    case 2:
      return "Grace CPU";
    case 3:
      return "Reduction service";
    case kTelemetryPid:
      return "Telemetry";
    case kProfilePid:
      return "Profiler";
  }
  return "?";
}

void ChromeTraceExporter::add_counter_track(CounterTrack track) {
  counters_.push_back(std::move(track));
}

void ChromeTraceExporter::add_profile_track(ProfileTrack track) {
  profiles_.push_back(std::move(track));
}

void ChromeTraceExporter::write(std::ostream& os) const {
  const auto spans = tracer_.spans();
  const auto instants = tracer_.instants();

  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&]() {
    if (!first) os << ",";
    first = false;
  };

  // Process and thread metadata: every track gets its (pid, tid) label so
  // the viewer groups devices even before their first event.
  for (int pid = 1; pid <= 3; ++pid) {
    sep();
    os << "{\"pid\":" << pid
       << ",\"tid\":0,\"ph\":\"M\",\"name\":\"process_name\",\"args\":"
       << "{\"name\":\"" << process_name(pid) << "\"}}";
  }
  for (int t = 0; t <= static_cast<int>(kLastTrack); ++t) {
    const Track track = static_cast<Track>(t);
    sep();
    os << "{\"pid\":" << process_of(track) << ",\"tid\":" << t
       << ",\"ph\":\"M\",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << track_name(track) << "\"}}";
  }
  // Counter metadata exists only when tracks were added, so counter-free
  // exports stay byte-identical to pre-counter builds.
  if (!counters_.empty()) {
    sep();
    os << "{\"pid\":" << kTelemetryPid
       << ",\"tid\":0,\"ph\":\"M\",\"name\":\"process_name\",\"args\":"
       << "{\"name\":\"" << process_name(kTelemetryPid) << "\"}}";
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      sep();
      os << "{\"pid\":" << kTelemetryPid << ",\"tid\":" << i
         << ",\"ph\":\"M\",\"name\":\"thread_name\",\"args\":{\"name\":\"";
      write_escaped(os, counters_[i].name);
      os << "\"}}";
    }
  }
  // Profiler metadata under the same gate, so profiler-free exports stay
  // byte-identical to pre-profiler builds.
  if (!profiles_.empty()) {
    sep();
    os << "{\"pid\":" << kProfilePid
       << ",\"tid\":0,\"ph\":\"M\",\"name\":\"process_name\",\"args\":"
       << "{\"name\":\"" << process_name(kProfilePid) << "\"}}";
    for (std::size_t i = 0; i < profiles_.size(); ++i) {
      sep();
      os << "{\"pid\":" << kProfilePid << ",\"tid\":" << i
         << ",\"ph\":\"M\",\"name\":\"thread_name\",\"args\":{\"name\":\"";
      write_escaped(os, profiles_[i].name);
      os << "\"}}";
    }
  }

  const auto write_ctx_args = [&](const Context& ctx,
                                  const std::string& detail) {
    os << ",\"args\":{";
    bool inner_first = true;
    const auto key = [&](const char* name) {
      if (!inner_first) os << ",";
      inner_first = false;
      os << "\"" << name << "\":";
    };
    if (!detail.empty()) {
      key("detail");
      os << "\"";
      write_escaped(os, detail);
      os << "\"";
    }
    if (ctx.valid()) {
      key("trace_id");
      os << "\"" << id_hex(ctx.trace_id) << "\"";
      key("span_id");
      os << ctx.span_id;
      key("parent_id");
      os << ctx.parent_id;
    }
    os << "}";
  };

  for (const auto& span : spans) {
    sep();
    os << "{\"pid\":" << process_of(span.track)
       << ",\"tid\":" << static_cast<int>(span.track)
       << ",\"ph\":\"X\",\"ts\":" << to_trace_us(span.begin)
       << ",\"dur\":" << to_trace_us(span.end - span.begin) << ",\"name\":\"";
    write_escaped(os, span.name);
    os << "\"";
    if (!span.detail.empty() || span.ctx.valid()) {
      write_ctx_args(span.ctx, span.detail);
    }
    os << "}";
  }
  for (const auto& instant : instants) {
    sep();
    os << "{\"pid\":" << process_of(instant.track)
       << ",\"tid\":" << static_cast<int>(instant.track)
       << ",\"ph\":\"i\",\"ts\":" << to_trace_us(instant.at)
       << ",\"s\":\"t\",\"name\":\"";
    write_escaped(os, instant.name);
    os << "\"";
    if (instant.ctx.valid()) {
      write_ctx_args(instant.ctx, {});
    }
    os << "}";
  }

  if (options_.flow_events) {
    // One flow per trace id, stepping through its spans in begin order
    // (record order breaks ties, keeping the file deterministic): the
    // viewer draws arrows queue -> execute across device processes.
    std::map<std::uint64_t, std::vector<const Span*>> flows;
    for (const auto& span : spans) {
      if (span.ctx.valid()) flows[span.ctx.trace_id].push_back(&span);
    }
    for (const auto& [trace_id, members] : flows) {
      if (members.size() < 2) continue;
      std::vector<const Span*> ordered = members;
      std::stable_sort(ordered.begin(), ordered.end(),
                       [](const Span* a, const Span* b) {
                         return a->begin < b->begin;
                       });
      for (std::size_t i = 0; i + 1 < ordered.size(); ++i) {
        const Span* from = ordered[i];
        const Span* to = ordered[i + 1];
        sep();
        os << "{\"pid\":" << process_of(from->track)
           << ",\"tid\":" << static_cast<int>(from->track)
           << ",\"ph\":\"s\",\"id\":\"" << id_hex(trace_id)
           << "\",\"cat\":\"job\",\"name\":\"job flow\",\"ts\":"
           << to_trace_us(from->begin) << "}";
        sep();
        os << "{\"pid\":" << process_of(to->track)
           << ",\"tid\":" << static_cast<int>(to->track)
           << ",\"ph\":\"f\",\"bp\":\"e\",\"id\":\"" << id_hex(trace_id)
           << "\",\"cat\":\"job\",\"name\":\"job flow\",\"ts\":"
           << to_trace_us(to->begin) << "}";
      }
    }
  }

  // Counter tracks last: "ph":"C" samples on the telemetry process, one
  // tid per track, values through one snprintf shape for byte stability.
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    for (const auto& sample : counters_[i].samples) {
      char value_buf[64];
      std::snprintf(value_buf, sizeof(value_buf), "%.6f", sample.value);
      sep();
      os << "{\"pid\":" << kTelemetryPid << ",\"tid\":" << i
         << ",\"ph\":\"C\",\"ts\":" << to_trace_us(sample.at)
         << ",\"name\":\"";
      write_escaped(os, counters_[i].name);
      os << "\",\"args\":{\"value\":" << value_buf << "}}";
    }
  }

  // Profiler slice tracks after counters: "ph":"X" spans per device
  // thread, one slice per coalesced sample run.
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    for (const auto& slice : profiles_[i].slices) {
      sep();
      os << "{\"pid\":" << kProfilePid << ",\"tid\":" << i
         << ",\"ph\":\"X\",\"ts\":" << to_trace_us(slice.begin)
         << ",\"dur\":" << to_trace_us(slice.end - slice.begin)
         << ",\"name\":\"";
      write_escaped(os, slice.name);
      os << "\"}";
    }
  }

  os << "]";
  // Sampling metadata appears only when a sampler is active, so rate-1.0
  // output stays byte-identical to unsampled output.
  if (tracer_.sampler_active()) {
    char rate_buf[32];
    std::snprintf(rate_buf, sizeof(rate_buf), "%.6f", tracer_.sample_rate());
    os << ",\"sampling\":{\"rate\":" << rate_buf
       << ",\"seed\":" << tracer_.sampler_seed()
       << ",\"dropped_by_sampler\":" << tracer_.dropped_by_sampler() << "}";
  }
  os << "}";
}

}  // namespace ghs::trace
