#include "ghs/trace/tracer.hpp"

#include <cstdio>

#include "ghs/util/error.hpp"
#include "ghs/util/rng.hpp"

namespace ghs::trace {

std::uint64_t derive_trace_id(std::int64_t key) {
  std::uint64_t state = static_cast<std::uint64_t>(key) + 1;
  const std::uint64_t id = splitmix64(state);
  return id == 0 ? 1 : id;
}

std::string id_hex(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

const char* track_name(Track track) {
  switch (track) {
    case Track::kGpu:
      return "GPU kernels";
    case Track::kGpuWaves:
      return "GPU waves";
    case Track::kCpu:
      return "CPU reduction";
    case Track::kUmMigration:
      return "UM migration";
    case Track::kRuntime:
      return "OpenMP runtime";
    case Track::kServer:
      return "Reduction service";
    case Track::kJobs:
      return "Job spans";
  }
  return "?";
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {
  GHS_REQUIRE(capacity_ > 0, "tracer capacity must be positive");
}

void Tracer::set_sampler(SamplerOptions options) {
  GHS_REQUIRE(options.rate >= 0.0, "sample rate " << options.rate);
  if (options.rate > 1.0) options.rate = 1.0;
  sampler_ = options;
  // Map the rate onto the uint64 range; a trace survives when the hash of
  // its id lands below the threshold.
  keep_threshold_ = static_cast<std::uint64_t>(
      options.rate * 18446744073709551615.0);  // 2^64 - 1
}

bool Tracer::decide(std::uint64_t trace_id) const {
  if (sampler_.rate <= 0.0) return false;
  std::uint64_t state = sampler_.seed ^ trace_id;
  return splitmix64(state) <= keep_threshold_;
}

void Tracer::record(Track track, std::string name, SimTime begin, SimTime end,
                    std::string detail, Context ctx) {
  GHS_REQUIRE(begin >= 0 && end >= begin,
              "span '" << name << "' has begin=" << begin << " end=" << end);
  if (!sampled(ctx.trace_id)) {
    ++dropped_by_sampler_;
    return;
  }
  Span span{track, std::move(name), begin, end, std::move(detail), ctx};
  if (span_ring_.size() < capacity_) {
    span_ring_.push_back(std::move(span));
  } else {
    span_ring_[span_next_] = std::move(span);
    span_next_ = (span_next_ + 1) % capacity_;
    ++dropped_spans_;
  }
}

void Tracer::mark(Track track, std::string name, SimTime at, Context ctx) {
  GHS_REQUIRE(at >= 0, "instant '" << name << "' at " << at);
  if (!sampled(ctx.trace_id)) {
    ++dropped_by_sampler_;
    return;
  }
  Instant instant{track, std::move(name), at, ctx};
  if (instant_ring_.size() < capacity_) {
    instant_ring_.push_back(std::move(instant));
  } else {
    instant_ring_[instant_next_] = std::move(instant);
    instant_next_ = (instant_next_ + 1) % capacity_;
    ++dropped_instants_;
  }
}

std::vector<Span> Tracer::spans() const {
  std::vector<Span> out;
  out.reserve(span_ring_.size());
  for (std::size_t i = 0; i < span_ring_.size(); ++i) {
    out.push_back(span_ring_[(span_next_ + i) % span_ring_.size()]);
  }
  return out;
}

std::vector<Instant> Tracer::instants() const {
  std::vector<Instant> out;
  out.reserve(instant_ring_.size());
  for (std::size_t i = 0; i < instant_ring_.size(); ++i) {
    out.push_back(instant_ring_[(instant_next_ + i) % instant_ring_.size()]);
  }
  return out;
}

void Tracer::clear() {
  span_ring_.clear();
  instant_ring_.clear();
  span_next_ = 0;
  instant_next_ = 0;
  dropped_spans_ = 0;
  dropped_instants_ = 0;
}

namespace {

void write_escaped(std::ostream& os, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Remaining control characters have no short escape; \uXXXX keeps
          // the byte instead of silently replacing it.
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

// Chrome trace timestamps are microseconds; export simulated picoseconds
// as fractional microseconds (1 ps = 1e-6 us) to keep full resolution.
double to_trace_us(SimTime t) { return static_cast<double>(t) * 1e-6; }

}  // namespace

void Tracer::write_chrome_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  const auto emit_common = [&](Track track, const std::string& name,
                               const char* phase, double ts) {
    if (!first) os << ",";
    first = false;
    os << "{\"pid\":1,\"tid\":" << static_cast<int>(track) << ",\"ph\":\""
       << phase << "\",\"ts\":" << ts << ",\"name\":\"";
    write_escaped(os, name);
    os << "\"";
  };
  // Thread-name metadata so the viewer labels the tracks.
  for (int t = 0; t <= static_cast<int>(kLastTrack); ++t) {
    if (!first) os << ",";
    first = false;
    os << "{\"pid\":1,\"tid\":" << t
       << ",\"ph\":\"M\",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << track_name(static_cast<Track>(t)) << "\"}}";
  }
  for (const auto& span : spans()) {
    emit_common(span.track, span.name, "X", to_trace_us(span.begin));
    os << ",\"dur\":" << to_trace_us(span.end - span.begin);
    if (!span.detail.empty()) {
      os << ",\"args\":{\"detail\":\"";
      write_escaped(os, span.detail);
      os << "\"}";
    }
    os << "}";
  }
  for (const auto& instant : instants()) {
    emit_common(instant.track, instant.name, "i", to_trace_us(instant.at));
    os << ",\"s\":\"t\"}";
  }
  os << "]";
  // Sampling metadata appears only when a sampler is active, so rate-1.0
  // output stays byte-identical to unsampled output.
  if (sampler_active()) {
    char rate_buf[32];
    std::snprintf(rate_buf, sizeof(rate_buf), "%.6f", sample_rate());
    os << ",\"sampling\":{\"rate\":" << rate_buf
       << ",\"seed\":" << sampler_seed()
       << ",\"dropped_by_sampler\":" << dropped_by_sampler() << "}";
  }
  os << "}";
}

}  // namespace ghs::trace
