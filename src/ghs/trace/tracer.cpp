#include "ghs/trace/tracer.hpp"

#include <cstdio>

#include "ghs/util/error.hpp"

namespace ghs::trace {

const char* track_name(Track track) {
  switch (track) {
    case Track::kGpu:
      return "GPU kernels";
    case Track::kGpuWaves:
      return "GPU waves";
    case Track::kCpu:
      return "CPU reduction";
    case Track::kUmMigration:
      return "UM migration";
    case Track::kRuntime:
      return "OpenMP runtime";
    case Track::kServer:
      return "Reduction service";
  }
  return "?";
}

void Tracer::record(Track track, std::string name, SimTime begin, SimTime end,
                    std::string detail) {
  GHS_REQUIRE(begin >= 0 && end >= begin,
              "span '" << name << "' has begin=" << begin << " end=" << end);
  spans_.push_back(Span{track, std::move(name), begin, end,
                        std::move(detail)});
}

void Tracer::mark(Track track, std::string name, SimTime at) {
  GHS_REQUIRE(at >= 0, "instant '" << name << "' at " << at);
  instants_.push_back(Instant{track, std::move(name), at});
}

void Tracer::clear() {
  spans_.clear();
  instants_.clear();
}

namespace {

void write_escaped(std::ostream& os, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Remaining control characters have no short escape; \uXXXX keeps
          // the byte instead of silently replacing it.
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

// Chrome trace timestamps are microseconds; export simulated picoseconds
// as fractional microseconds (1 ps = 1e-6 us) to keep full resolution.
double to_trace_us(SimTime t) { return static_cast<double>(t) * 1e-6; }

}  // namespace

void Tracer::write_chrome_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  const auto emit_common = [&](Track track, const std::string& name,
                               const char* phase, double ts) {
    if (!first) os << ",";
    first = false;
    os << "{\"pid\":1,\"tid\":" << static_cast<int>(track) << ",\"ph\":\""
       << phase << "\",\"ts\":" << ts << ",\"name\":\"";
    write_escaped(os, name);
    os << "\"";
  };
  // Thread-name metadata so the viewer labels the tracks.
  for (int t = 0; t <= static_cast<int>(Track::kServer); ++t) {
    if (!first) os << ",";
    first = false;
    os << "{\"pid\":1,\"tid\":" << t
       << ",\"ph\":\"M\",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << track_name(static_cast<Track>(t)) << "\"}}";
  }
  for (const auto& span : spans_) {
    emit_common(span.track, span.name, "X", to_trace_us(span.begin));
    os << ",\"dur\":" << to_trace_us(span.end - span.begin);
    if (!span.detail.empty()) {
      os << ",\"args\":{\"detail\":\"";
      write_escaped(os, span.detail);
      os << "\"}";
    }
    os << "}";
  }
  for (const auto& instant : instants_) {
    emit_common(instant.track, instant.name, "i", to_trace_us(instant.at));
    os << ",\"s\":\"t\"}";
  }
  os << "]}";
}

}  // namespace ghs::trace
