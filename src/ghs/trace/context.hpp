// Span context: the causal identity a span carries so independent spans
// assemble into one per-request tree. A Context names the trace (one
// served job = one trace), the span itself, and the span's parent; 0 is
// "absent" everywhere, so context-free spans (the pre-existing device and
// runtime spans) keep working unchanged.
//
// All identifiers are deterministic: trace ids derive from the job id via
// SplitMix64 and span ids are handed out sequentially by the Tracer, so
// two runs of the same (plan, seed) produce byte-identical trace files.
#pragma once

#include <cstdint>
#include <string>

namespace ghs::trace {

struct Context {
  /// Groups every span of one request; 0 = no trace.
  std::uint64_t trace_id = 0;
  /// This span's identity within the trace; 0 = no context.
  std::uint64_t span_id = 0;
  /// The causing span; 0 = root of the trace.
  std::uint64_t parent_id = 0;

  bool valid() const { return trace_id != 0; }

  /// Child context under this span (same trace, parent = this span).
  Context child(std::uint64_t child_span_id) const {
    return Context{trace_id, child_span_id, span_id};
  }
};

/// Deterministic trace id for an external key (a serve::JobId): SplitMix64
/// of key+1, nudged away from 0 so a valid context is never mistaken for
/// an absent one.
std::uint64_t derive_trace_id(std::int64_t key);

/// Fixed-width lowercase hex rendering ("00c0ffee00c0ffee"), the form the
/// exporters embed in exemplars and trace args.
std::string id_hex(std::uint64_t id);

}  // namespace ghs::trace
