#include "ghs/stats/chart.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "ghs/util/error.hpp"
#include "ghs/util/strings.hpp"

namespace ghs::stats {

namespace {

constexpr char kGlyphs[] = {'o', '+', 'x', '*', '#', '@'};

struct Extent {
  double min_x = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();
};

Extent compute_extent(const Figure& figure, const ChartOptions& options) {
  Extent e;
  for (const auto& series : figure.series()) {
    for (const auto& point : series.points()) {
      GHS_REQUIRE(!options.log_x || point.x > 0.0,
                  "log x axis requires positive x, got " << point.x);
      e.min_x = std::min(e.min_x, point.x);
      e.max_x = std::max(e.max_x, point.x);
      e.min_y = std::min(e.min_y, point.y);
      e.max_y = std::max(e.max_y, point.y);
    }
  }
  GHS_REQUIRE(std::isfinite(e.min_x), "chart of an empty figure");
  if (options.y_from_zero) e.min_y = std::min(e.min_y, 0.0);
  if (e.max_y == e.min_y) e.max_y = e.min_y + 1.0;
  if (e.max_x == e.min_x) e.max_x = e.min_x + 1.0;
  return e;
}

double x_position(double x, const Extent& e, const ChartOptions& options) {
  if (options.log_x) {
    return (std::log2(x) - std::log2(e.min_x)) /
           (std::log2(e.max_x) - std::log2(e.min_x));
  }
  return (x - e.min_x) / (e.max_x - e.min_x);
}

}  // namespace

void render_chart(const Figure& figure, std::ostream& os,
                  const ChartOptions& options) {
  GHS_REQUIRE(options.width >= 16 && options.height >= 4,
              "chart area too small: " << options.width << "x"
                                       << options.height);
  const Extent extent = compute_extent(figure, options);

  std::vector<std::string> grid(
      static_cast<std::size_t>(options.height),
      std::string(static_cast<std::size_t>(options.width), ' '));

  for (std::size_t s = 0; s < figure.series().size(); ++s) {
    const char glyph = kGlyphs[s % (sizeof(kGlyphs) / sizeof(kGlyphs[0]))];
    for (const auto& point : figure.series()[s].points()) {
      const double fx = x_position(point.x, extent, options);
      const double fy =
          (point.y - extent.min_y) / (extent.max_y - extent.min_y);
      const int col = std::clamp(
          static_cast<int>(std::lround(fx * (options.width - 1))), 0,
          options.width - 1);
      const int row = std::clamp(
          static_cast<int>(std::lround((1.0 - fy) * (options.height - 1))),
          0, options.height - 1);
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          glyph;
    }
  }

  os << "== " << figure.title() << " ==\n";
  const std::size_t label_width = 10;
  for (int row = 0; row < options.height; ++row) {
    const double y =
        extent.max_y - (extent.max_y - extent.min_y) *
                           static_cast<double>(row) /
                           static_cast<double>(options.height - 1);
    std::string label;
    // Label the top, bottom and every fourth row.
    if (row == 0 || row == options.height - 1 || row % 4 == 0) {
      label = format_fixed(y, y >= 100 ? 0 : 2);
    }
    os << pad_left(label, label_width) << " |"
       << grid[static_cast<std::size_t>(row)] << "\n";
  }
  os << pad_left("", label_width) << " +"
     << std::string(static_cast<std::size_t>(options.width), '-') << "\n";
  os << pad_left("", label_width) << "  "
     << pad_right(format_fixed(extent.min_x, 0),
                  static_cast<std::size_t>(options.width) - 8)
     << pad_left(format_fixed(extent.max_x, 0), 8) << "\n";
  os << pad_left("", label_width) << "  legend:";
  for (std::size_t s = 0; s < figure.series().size(); ++s) {
    os << " " << kGlyphs[s % (sizeof(kGlyphs) / sizeof(kGlyphs[0]))] << "="
       << figure.series()[s].name();
  }
  os << "\n";
}

}  // namespace ghs::stats
