// Console table and CSV rendering used by the bench harnesses to print the
// paper's tables and figure series in a stable, diff-able format.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ghs::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }

  /// Renders an aligned ASCII table with a header separator.
  void render(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (fields containing comma/quote get quoted).
  void render_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ghs::stats
