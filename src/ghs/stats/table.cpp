#include "ghs/stats/table.hpp"

#include <algorithm>

#include "ghs/util/error.hpp"
#include "ghs/util/strings.hpp"

namespace ghs::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  GHS_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  GHS_REQUIRE(cells.size() == headers_.size(),
              "row has " << cells.size() << " cells, table has "
                         << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
}

void Table::render(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << pad_left(cells[c], widths[c]);
    }
    os << " |\n";
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) {
    emit(row);
  }
}

void Table::render_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      const std::string& cell = cells[c];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

}  // namespace ghs::stats
