#include "ghs/stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "ghs/util/error.hpp"

namespace ghs::stats {

void Summary::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double Summary::mean() const {
  GHS_REQUIRE(count_ > 0, "mean of empty summary");
  return mean_;
}

double Summary::min() const {
  GHS_REQUIRE(count_ > 0, "min of empty summary");
  return min_;
}

double Summary::max() const {
  GHS_REQUIRE(count_ > 0, "max of empty summary");
  return max_;
}

double Summary::stddev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double geometric_mean(const std::vector<double>& values) {
  GHS_REQUIRE(!values.empty(), "geometric mean of empty vector");
  double log_sum = 0.0;
  for (double v : values) {
    GHS_REQUIRE(v > 0.0, "geometric mean requires positive values, got " << v);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double arithmetic_mean(const std::vector<double>& values) {
  GHS_REQUIRE(!values.empty(), "mean of empty vector");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

namespace {

// Percentile of an already-sorted vector (the interpolation percentile()
// documents).
double sorted_percentile(const std::vector<double>& values, double q) {
  const double idx = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

}  // namespace

double percentile(std::vector<double> values, double q) {
  GHS_REQUIRE(!values.empty(), "percentile of empty vector");
  GHS_REQUIRE(q >= 0.0 && q <= 1.0, "q=" << q);
  std::sort(values.begin(), values.end());
  return sorted_percentile(values, q);
}

Percentiles percentiles(std::vector<double> values) {
  GHS_REQUIRE(!values.empty(), "percentiles of empty vector");
  std::sort(values.begin(), values.end());
  return Percentiles{sorted_percentile(values, 0.50),
                     sorted_percentile(values, 0.95),
                     sorted_percentile(values, 0.99)};
}

}  // namespace ghs::stats
