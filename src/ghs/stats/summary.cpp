#include "ghs/stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "ghs/util/error.hpp"

namespace ghs::stats {

void Summary::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double Summary::mean() const {
  GHS_REQUIRE(count_ > 0, "mean of empty summary");
  return mean_;
}

double Summary::min() const {
  GHS_REQUIRE(count_ > 0, "min of empty summary");
  return min_;
}

double Summary::max() const {
  GHS_REQUIRE(count_ > 0, "max of empty summary");
  return max_;
}

double Summary::stddev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double geometric_mean(const std::vector<double>& values) {
  GHS_REQUIRE(!values.empty(), "geometric mean of empty vector");
  double log_sum = 0.0;
  for (double v : values) {
    GHS_REQUIRE(v > 0.0, "geometric mean requires positive values, got " << v);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double arithmetic_mean(const std::vector<double>& values) {
  GHS_REQUIRE(!values.empty(), "mean of empty vector");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double sorted_quantile(const std::vector<double>& sorted_values, double q) {
  GHS_REQUIRE(!sorted_values.empty(), "quantile of empty vector");
  GHS_REQUIRE(q >= 0.0 && q <= 1.0, "q=" << q);
  const double idx = q * static_cast<double>(sorted_values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, sorted_values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted_values[lo] + (sorted_values[hi] - sorted_values[lo]) * frac;
}

double percentile(std::vector<double> values, double q) {
  GHS_REQUIRE(!values.empty(), "percentile of empty vector");
  std::sort(values.begin(), values.end());
  return sorted_quantile(values, q);
}

std::vector<double> quantiles(std::vector<double> values,
                              const std::vector<double>& qs) {
  GHS_REQUIRE(!values.empty(), "quantiles of empty vector");
  std::sort(values.begin(), values.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(sorted_quantile(values, q));
  return out;
}

double histogram_quantile(const std::vector<double>& upper_bounds,
                          const std::vector<std::int64_t>& cumulative_counts,
                          double q) {
  GHS_REQUIRE(!upper_bounds.empty(), "histogram without buckets");
  GHS_REQUIRE(cumulative_counts.size() == upper_bounds.size() + 1,
              "cumulative counts must carry one trailing +Inf entry");
  GHS_REQUIRE(q >= 0.0 && q <= 1.0, "q=" << q);
  const double total = static_cast<double>(cumulative_counts.back());
  GHS_REQUIRE(total > 0.0, "histogram quantile of empty histogram");
  const double rank = q * total;
  std::size_t bucket = 0;
  while (bucket < upper_bounds.size() &&
         static_cast<double>(cumulative_counts[bucket]) < rank) {
    ++bucket;
  }
  // Everything at rank beyond the last finite bound clamps to that bound —
  // the +Inf bucket has no upper edge to interpolate towards.
  if (bucket == upper_bounds.size()) return upper_bounds.back();
  const double below =
      bucket == 0 ? 0.0 : static_cast<double>(cumulative_counts[bucket - 1]);
  const double in_bucket =
      static_cast<double>(cumulative_counts[bucket]) - below;
  const double lower = bucket == 0 ? 0.0 : upper_bounds[bucket - 1];
  const double frac =
      in_bucket > 0.0 ? (rank - below) / in_bucket : 1.0;
  // Within-bucket interpolation is the same primitive as value quantiles.
  return sorted_quantile({lower, upper_bounds[bucket]}, frac);
}

Percentiles percentiles(std::vector<double> values) {
  // Zero-filled for an empty series: report code feeds whatever survived a
  // run through here, and "nothing survived" (all jobs rejected or shed) is
  // a legitimate outcome, not a programming error.
  if (values.empty()) return Percentiles{};
  const auto qs = quantiles(std::move(values), {0.50, 0.95, 0.99, 0.999});
  return Percentiles{qs[0], qs[1], qs[2], qs[3]};
}

}  // namespace ghs::stats
