// Figure-style data series: a Figure holds one or more named series over a
// shared x axis (e.g. bandwidth vs number-of-teams, one series per V).
// Benches build these and render them the way the paper's figures read.
#pragma once

#include <deque>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace ghs::stats {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

class Series {
 public:
  explicit Series(std::string name) : name_(std::move(name)) {}

  void add(double x, double y) { points_.push_back({x, y}); }

  const std::string& name() const { return name_; }
  const std::vector<Point>& points() const { return points_; }

  /// y value at exactly x, if present.
  std::optional<double> at(double x) const;

  /// Largest y across the series; requires non-empty.
  double max_y() const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

class Figure {
 public:
  Figure(std::string title, std::string x_label, std::string y_label);

  /// Adds a series and returns a reference that stays valid for the
  /// figure's lifetime (series storage is reference-stable).
  Series& add_series(const std::string& name);
  const Series* find_series(const std::string& name) const;
  const std::deque<Series>& series() const { return series_; }
  const std::string& title() const { return title_; }

  /// Renders as an aligned table: one row per x value, one column per
  /// series, matching how the paper's figure data reads.
  void render(std::ostream& os) const;

  /// CSV with the same layout.
  void render_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::deque<Series> series_;
};

}  // namespace ghs::stats
