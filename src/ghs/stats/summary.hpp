// Streaming summary statistics (count/mean/min/max/variance) plus geometric
// mean, used when aggregating per-case speedups the way the paper reports
// "average speedup" numbers.
#pragma once

#include <cstddef>
#include <vector>

namespace ghs::stats {

class Summary {
 public:
  void add(double value);

  std::size_t count() const { return count_; }
  double mean() const;
  double min() const;
  double max() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
  double stddev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // Welford accumulator
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean of strictly positive values.
double geometric_mean(const std::vector<double>& values);

/// Arithmetic mean; requires non-empty input.
double arithmetic_mean(const std::vector<double>& values);

/// Exact percentile by sorting a copy (q in [0,1], linear interpolation).
double percentile(std::vector<double> values, double q);

/// The latency-report percentile bundle (serve layer, benches).
struct Percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// p50/p95/p99 of `values` with one sort (same interpolation as
/// percentile()); requires non-empty input.
Percentiles percentiles(std::vector<double> values);

}  // namespace ghs::stats
