// Streaming summary statistics (count/mean/min/max/variance) plus geometric
// mean, used when aggregating per-case speedups the way the paper reports
// "average speedup" numbers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ghs::stats {

class Summary {
 public:
  void add(double value);

  std::size_t count() const { return count_; }
  double mean() const;
  double min() const;
  double max() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
  double stddev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // Welford accumulator
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean of strictly positive values.
double geometric_mean(const std::vector<double>& values);

/// Arithmetic mean; requires non-empty input.
double arithmetic_mean(const std::vector<double>& values);

/// Exact percentile by sorting a copy (q in [0,1], linear interpolation).
double percentile(std::vector<double> values, double q);

/// The interpolation primitive behind percentile()/quantiles() and the
/// telemetry histogram exporter: quantile of already-ascending values,
/// linear between neighbours.
double sorted_quantile(const std::vector<double>& sorted_values, double q);

/// Quantiles at each q of `qs` (all in [0,1]) with one sort; requires
/// non-empty values. Supports arbitrary lists, e.g. {0.5, 0.99, 0.999}.
std::vector<double> quantiles(std::vector<double> values,
                              const std::vector<double>& qs);

/// Quantile estimate from fixed histogram buckets: `upper_bounds` are the
/// ascending finite bucket bounds and `cumulative_counts` the cumulative
/// per-bucket counts with one extra trailing +Inf entry (the total).
/// Linear interpolation inside the crossing bucket; observations beyond the
/// last finite bound clamp to it. Requires a non-zero total.
double histogram_quantile(const std::vector<double>& upper_bounds,
                          const std::vector<std::int64_t>& cumulative_counts,
                          double q);

/// The latency-report percentile bundle (serve layer, benches).
struct Percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// p50/p95/p99/p999 of `values` with one sort (same interpolation as
/// percentile()). Empty input yields all zeros; a single sample pins every
/// percentile to that sample.
Percentiles percentiles(std::vector<double> values);

}  // namespace ghs::stats
