#include "ghs/stats/series.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "ghs/stats/table.hpp"
#include "ghs/util/error.hpp"
#include "ghs/util/strings.hpp"

namespace ghs::stats {

std::optional<double> Series::at(double x) const {
  for (const auto& p : points_) {
    if (p.x == x) return p.y;
  }
  return std::nullopt;
}

double Series::max_y() const {
  GHS_REQUIRE(!points_.empty(), "max_y of empty series '" << name_ << "'");
  double best = points_.front().y;
  for (const auto& p : points_) best = std::max(best, p.y);
  return best;
}

Figure::Figure(std::string title, std::string x_label, std::string y_label)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)) {}

Series& Figure::add_series(const std::string& name) {
  GHS_REQUIRE(find_series(name) == nullptr, "duplicate series '" << name
                                                                 << "'");
  series_.emplace_back(name);
  return series_.back();
}

const Series* Figure::find_series(const std::string& name) const {
  for (const auto& s : series_) {
    if (s.name() == name) return &s;
  }
  return nullptr;
}

namespace {

// Renders an x value compactly: integers without decimals, otherwise 3 dp.
std::string format_x(double x) {
  if (x == std::floor(x) && std::fabs(x) < 1e15) {
    return std::to_string(static_cast<long long>(x));
  }
  return format_fixed(x, 3);
}

Table build_table(const std::string& x_label,
                  const std::deque<Series>& series) {
  std::set<double> xs;
  for (const auto& s : series) {
    for (const auto& p : s.points()) xs.insert(p.x);
  }
  std::vector<std::string> headers;
  headers.push_back(x_label);
  for (const auto& s : series) headers.push_back(s.name());
  Table table(std::move(headers));
  for (double x : xs) {
    std::vector<std::string> row;
    row.push_back(format_x(x));
    for (const auto& s : series) {
      const auto y = s.at(x);
      row.push_back(y ? format_fixed(*y, 3) : std::string("-"));
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace

void Figure::render(std::ostream& os) const {
  os << "== " << title_ << " ==\n";
  os << "(y: " << y_label_ << ")\n";
  build_table(x_label_, series_).render(os);
}

void Figure::render_csv(std::ostream& os) const {
  build_table(x_label_, series_).render_csv(os);
}

}  // namespace ghs::stats
