// Terminal chart rendering for Figures: a character-cell scatter/line
// chart with y-axis labels, per-series glyphs and a legend, so the bench
// binaries can show the paper's figures as *pictures* (--chart), not just
// tables. X values may be spaced linearly or logarithmically (the Fig. 1
// team counts are powers of two).
#pragma once

#include <ostream>

#include "ghs/stats/series.hpp"

namespace ghs::stats {

struct ChartOptions {
  int width = 72;        // plot-area columns
  int height = 20;       // plot-area rows
  bool log_x = false;    // logarithmic x spacing (requires x > 0)
  bool y_from_zero = true;
};

/// Renders the figure as an ASCII chart. Series are drawn with the glyphs
/// 'o', '+', 'x', '*', '#', '@' in order; overlapping points show the
/// later series' glyph.
void render_chart(const Figure& figure, std::ostream& os,
                  const ChartOptions& options = {});

}  // namespace ghs::stats
