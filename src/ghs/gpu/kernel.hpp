// Kernel descriptor for the reduction-style kernels this repository
// studies: a grid of identical CTAs, each streaming a contiguous chunk of
// one input array and combining one partial result at the end.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "ghs/gpu/config.hpp"
#include "ghs/um/manager.hpp"
#include "ghs/util/units.hpp"

namespace ghs::gpu {

/// How per-thread partials leave the CTA — the "reduction abstraction"
/// dimension the paper's related work (§V) discusses and its conclusion
/// defers to future study.
enum class CombineStrategy {
  /// Shared-memory tree per CTA, then one serialized combine per CTA to
  /// the reduction variable (what the vendor runtime emits; the default).
  kAtomicPerCta,
  /// No shared-memory tree: every warp combines directly after a shuffle
  /// reduction — cheaper intra-CTA, warps-per-CTA times more combines.
  kAtomicPerWarp,
  /// CTAs write partials to a scratch buffer; a second, tiny kernel
  /// reduces the partials — no serialized combines at all, one extra
  /// launch.
  kTwoKernel,
};

const char* combine_strategy_name(CombineStrategy strategy);

/// Where a kernel's input bytes live.
enum class InputLocation {
  /// Explicitly mapped device buffer (non-UM mode): full-speed HBM.
  kDeviceBuffer,
  /// Managed allocation (UM mode): residency is per-page, asked of the
  /// UmManager at every pass.
  kManaged,
};

struct KernelDesc {
  std::string label;

  /// Grid geometry.
  std::int64_t grid = 0;              // number of CTAs
  int threads_per_cta = 128;

  /// Loop shape: total elements, bytes per element, and elements summed per
  /// loop iteration (the paper's V).
  std::int64_t elements = 0;
  Bytes element_size = 4;
  int v = 1;
  /// Input arrays streamed per element (1 for the sum reduction; 2 for
  /// dot-product-style derived primitives).
  int input_streams = 1;

  /// How per-thread partials fold into the reduction variable.
  CombineClass combine = CombineClass::kNativeInt;
  CombineStrategy strategy = CombineStrategy::kAtomicPerCta;

  InputLocation input = InputLocation::kDeviceBuffer;
  /// For kManaged: the allocation and byte range the kernel streams.
  um::AllocId managed_alloc = 0;
  Bytes range_offset = 0;

  Bytes total_bytes() const {
    return elements * element_size * input_streams;
  }
  int warps_per_cta() const { return threads_per_cta / 32; }
};

/// Outcome of one simulated kernel execution.
struct KernelResult {
  SimTime start = 0;
  SimTime end = 0;
  Bytes bytes = 0;
  /// Bytes served from CPU-resident managed pages (UM mode).
  Bytes remote_bytes = 0;

  SimTime duration() const { return end - start; }
  Bandwidth bandwidth() const { return achieved_bandwidth(bytes, duration()); }
};

}  // namespace ghs::gpu
