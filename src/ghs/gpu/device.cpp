#include "ghs/gpu/device.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "ghs/gpu/occupancy.hpp"
#include "ghs/util/error.hpp"
#include "ghs/util/log.hpp"
#include "ghs/util/math.hpp"

namespace ghs::gpu {

const char* combine_strategy_name(CombineStrategy strategy) {
  switch (strategy) {
    case CombineStrategy::kAtomicPerCta:
      return "atomic-per-cta";
    case CombineStrategy::kAtomicPerWarp:
      return "atomic-per-warp";
    case CombineStrategy::kTwoKernel:
      return "two-kernel";
  }
  return "?";
}

const char* combine_class_name(CombineClass c) {
  switch (c) {
    case CombineClass::kNativeInt:
      return "native-int";
    case CombineClass::kWideningInt:
      return "widening-int";
    case CombineClass::kFloatCas:
      return "float-cas";
  }
  return "?";
}

struct GpuDevice::Execution {
  KernelDesc desc;
  std::function<void(const KernelResult&)> on_complete;
  KernelResult result;

  // Derived geometry.
  std::int64_t wave_size = 0;       // resident CTAs
  double bytes_per_cta = 0.0;
  double cta_cap = 0.0;             // bytes/s per CTA
  SimTime tree_latency = 0;

  // Progress.
  std::int64_t ctas_done = 0;       // CTAs whose data has drained
  std::int64_t ctas_dispatched = 0;
  double bytes_done = 0.0;          // kernel-range bytes drained so far
  SimTime begin_time = 0;           // after launch latency
  SimTime last_combine_done = 0;

  // UM pass plan for this launch (empty in explicit mode).
  std::vector<um::SegmentPlan> plan;
};

GpuDevice::GpuDevice(sim::Simulator& sim, mem::Topology& topology,
                     um::UmManager& um, GpuConfig config)
    : sim_(sim), topology_(topology), um_(um), config_(config) {}

void GpuDevice::launch(const KernelDesc& desc,
                       std::function<void(const KernelResult&)> on_complete) {
  GHS_REQUIRE(!busy_, "kernel '" << desc.label
                                 << "' launched while the device is busy");
  GHS_REQUIRE(desc.grid > 0, "kernel '" << desc.label << "' has empty grid");
  GHS_REQUIRE(desc.elements > 0, "kernel '" << desc.label
                                            << "' has no elements");
  busy_ = true;
  ++stats_.kernels_launched;
  if (kernels_counter_ != nullptr) kernels_counter_->inc();
  if (flight_ != nullptr) {
    flight_->record(sim_.now(), "gpu", "kernel_launch", desc.label);
  }

  auto exec = std::make_shared<Execution>();
  exec->desc = desc;
  exec->on_complete = std::move(on_complete);
  exec->result.start = sim_.now();
  exec->result.bytes = desc.total_bytes();
  exec->wave_size =
      std::min<std::int64_t>(desc.grid,
                             resident_ctas(config_, desc.threads_per_cta));
  exec->bytes_per_cta = static_cast<double>(desc.total_bytes()) /
                        static_cast<double>(desc.grid);
  exec->cta_cap =
      cta_rate_cap(config_, desc.threads_per_cta, desc.v, desc.element_size);
  const int tree_steps = log2_pow2(desc.threads_per_cta / config_.warp_size) +
                         log2_pow2(config_.warp_size);
  exec->tree_latency = static_cast<SimTime>(
      config_.tree_step_cycles * static_cast<double>(tree_steps) *
      config_.cycle_ps());

  sim_.schedule_after(config_.kernel_launch_latency, [this, exec] {
    exec->begin_time = sim_.now();
    if (exec->desc.input == InputLocation::kManaged) {
      exec->plan = um_.plan_pass(exec->desc.managed_alloc, um::Accessor::kGpu,
                                 exec->desc.range_offset,
                                 exec->desc.total_bytes());
      for (const auto& seg : exec->plan) {
        if (seg.source == mem::RegionId::kLpddr) {
          exec->result.remote_bytes += seg.length;
        }
      }
    }
    start_wave(exec);
  });
}

void GpuDevice::start_wave(const std::shared_ptr<Execution>& exec) {
  const KernelDesc& desc = exec->desc;
  const std::int64_t remaining = desc.grid - exec->ctas_dispatched;
  GHS_CHECK(remaining > 0, "wave started with no CTAs left");
  const std::int64_t count = std::min(exec->wave_size, remaining);
  exec->ctas_dispatched += count;
  ++stats_.waves_executed;
  if (waves_counter_ != nullptr) waves_counter_->inc();
  if (flight_ != nullptr) {
    flight_->record(sim_.now(), "gpu", "wave_launch",
                    desc.label + ": " + std::to_string(count) + " CTAs");
  }

  // Serial CTA dispatch: the wave cannot start before the gigathread engine
  // has emitted its CTAs.
  const SimTime dispatch_ready =
      exec->begin_time + config_.cta_dispatch_cost * exec->ctas_dispatched;
  const SimTime start_at = std::max(sim_.now(), dispatch_ready);

  const double wave_bytes =
      static_cast<double>(count) * exec->bytes_per_cta;
  const double wave_cap = static_cast<double>(count) * exec->cta_cap;
  const double hbm_stream_cap =
      config_.stream_efficiency(desc.element_size) *
      topology_.config().hbm_bw.bytes_per_second;

  // Byte range this wave covers within the kernel's input.
  const Bytes range_begin =
      desc.range_offset + static_cast<Bytes>(std::llround(exec->bytes_done));
  exec->bytes_done += wave_bytes;
  const Bytes range_end = (exec->ctas_dispatched == desc.grid)
                              ? desc.range_offset + desc.total_bytes()
                              : desc.range_offset +
                                    static_cast<Bytes>(
                                        std::llround(exec->bytes_done));

  // Build the wave's flows: one in explicit mode, one per residency slice
  // in UM mode.
  struct Slice {
    Bytes begin;
    Bytes end;
    std::vector<sim::ResourceId> path;
    double cap;
    bool migrate_on_access;
    bool duplicate_on_access = false;
  };
  std::vector<Slice> slices;
  if (desc.input == InputLocation::kDeviceBuffer) {
    slices.push_back(Slice{range_begin, range_end,
                           topology_.gpu_read_path(mem::RegionId::kHbm),
                           std::min(wave_cap, hbm_stream_cap), false});
  } else {
    for (const auto& seg : exec->plan) {
      const Bytes begin = std::max(range_begin, seg.offset);
      const Bytes end = std::min(range_end, seg.offset + seg.length);
      if (begin >= end) continue;
      Slice slice;
      slice.begin = begin;
      slice.end = end;
      slice.migrate_on_access = seg.migrate_on_access;
      slice.duplicate_on_access = seg.duplicate_on_access;
      if (seg.duplicate_on_access) {
        // Establishing a read replica: a copy from the home memory into
        // HBM at the duplication rate.
        slice.path = topology_.copy_path(seg.source, mem::RegionId::kHbm);
        slice.cap = std::min(wave_cap, seg.rate_cap);
      } else if (seg.migrate_on_access) {
        // Fault-driven migration: the wave's reads drive the pages across
        // the link at the fault-handling rate.
        slice.path = topology_.migration_path(seg.source, mem::RegionId::kHbm);
        slice.cap = std::min(wave_cap, seg.rate_cap);
      } else if (seg.source == mem::RegionId::kHbm) {
        slice.path = topology_.gpu_read_path(mem::RegionId::kHbm);
        slice.cap = std::min(wave_cap * config_.um_hbm_efficiency,
                             hbm_stream_cap * config_.um_hbm_efficiency);
      } else {
        slice.path = topology_.gpu_read_path(mem::RegionId::kLpddr);
        slice.cap = std::min(wave_cap, config_.remote_read_bw.bytes_per_second);
      }
      slices.push_back(std::move(slice));
    }
    GHS_CHECK(!slices.empty(), "UM wave produced no slices");
  }

  auto pending = std::make_shared<std::size_t>(slices.size());
  auto flow_end_max = std::make_shared<SimTime>(0);
  const um::AllocId managed = desc.managed_alloc;
  for (const auto& slice : slices) {
    sim::FlowSpec spec;
    spec.bytes = static_cast<double>(slice.end - slice.begin);
    spec.rate_cap = slice.cap;
    spec.resources = slice.path;
    spec.label = desc.label + ":wave";
    const Bytes s_begin = slice.begin;
    const Bytes s_len = slice.end - slice.begin;
    const bool flip = slice.migrate_on_access;
    const bool duplicate = slice.duplicate_on_access;
    spec.on_complete = [this, exec, pending, flow_end_max, count, s_begin,
                        s_len, flip, duplicate, managed, start_at] {
      if (flip) {
        um_.complete_segment(managed, s_begin, s_len, mem::RegionId::kHbm);
      } else if (duplicate) {
        um_.complete_duplication(managed, s_begin, s_len);
      }
      *flow_end_max = std::max(*flow_end_max, sim_.now());
      GHS_CHECK(*pending > 0, "wave completion underflow");
      if (--*pending == 0) {
        finish_wave(exec, count, start_at, *flow_end_max);
      }
    };
    const SimTime delay = start_at - sim_.now();
    if (delay > 0) {
      sim_.schedule_after(delay, [this, spec = std::move(spec)]() mutable {
        topology_.network().start_flow(std::move(spec));
      });
    } else {
      topology_.network().start_flow(std::move(spec));
    }
  }
}

void GpuDevice::finish_wave(const std::shared_ptr<Execution>& exec,
                            std::int64_t cta_count, SimTime wave_start,
                            SimTime flow_end) {
  trace::record_span(tracer_, trace::Track::kGpuWaves,
                     exec->desc.label + ":wave", wave_start, flow_end,
                     std::to_string(cta_count) + " CTAs");
  // Fold the wave's partials according to the kernel's combine strategy.
  switch (exec->desc.strategy) {
    case CombineStrategy::kAtomicPerCta: {
      // Shared-memory tree, then one serialized combine per CTA.
      const SimTime combine_arrival = flow_end + exec->tree_latency;
      const SimTime combine_done = combine_unit_.submit_batch(
          combine_arrival,
          config_.combine_cost(exec->desc.combine, exec->desc.element_size),
          cta_count);
      stats_.combines_issued += cta_count;
      exec->last_combine_done =
          std::max(exec->last_combine_done, combine_done);
      break;
    }
    case CombineStrategy::kAtomicPerWarp: {
      // Warp shuffle (one warp-width tree, no barriers), then one combine
      // per warp.
      const SimTime shuffle_latency = static_cast<SimTime>(
          config_.tree_step_cycles *
          static_cast<double>(log2_pow2(config_.warp_size)) * 0.5 *
          config_.cycle_ps());
      const std::int64_t combines =
          cta_count * exec->desc.warps_per_cta();
      const SimTime combine_done = combine_unit_.submit_batch(
          flow_end + shuffle_latency,
          config_.combine_cost(exec->desc.combine, exec->desc.element_size),
          combines);
      stats_.combines_issued += combines;
      exec->last_combine_done =
          std::max(exec->last_combine_done, combine_done);
      break;
    }
    case CombineStrategy::kTwoKernel:
      // CTAs write one partial each to a scratch buffer (bytes negligible
      // against the input stream); the fold happens in a second kernel
      // charged at kernel end.
      exec->last_combine_done =
          std::max(exec->last_combine_done, flow_end + exec->tree_latency);
      break;
  }
  exec->ctas_done += cta_count;

  if (exec->ctas_dispatched < exec->desc.grid) {
    start_wave(exec);
    return;
  }
  GHS_CHECK(exec->ctas_done == exec->desc.grid, "CTA accounting mismatch");
  finish_kernel(exec);
}

void GpuDevice::finish_kernel(const std::shared_ptr<Execution>& exec) {
  SimTime end_at = std::max(sim_.now(), exec->last_combine_done);
  if (exec->desc.strategy == CombineStrategy::kTwoKernel) {
    // Second kernel: one CTA-sized pass over the grid's partials. Launch
    // latency dominates; the data volume (grid x result size) is tiny.
    const double partial_bytes =
        static_cast<double>(exec->desc.grid) * 8.0;
    const double rate =
        config_.stream_efficiency(8) *
        topology_.config().hbm_bw.bytes_per_second;
    end_at += config_.kernel_launch_latency + exec->tree_latency +
              from_seconds(partial_bytes / rate);
  }
  const SimTime delay = end_at - sim_.now();
  sim_.schedule_after(delay, [this, exec] {
    exec->result.end = sim_.now();
    busy_ = false;
    GHS_DEBUG("kernel '" << exec->desc.label << "' done in "
                         << format_time(exec->result.duration()) << " ("
                         << format_bandwidth(exec->result.bandwidth()) << ")");
    if (tracer_ != nullptr) {
      std::string detail = "grid=" + std::to_string(exec->desc.grid);
      detail += " threads=" + std::to_string(exec->desc.threads_per_cta);
      detail += " v=" + std::to_string(exec->desc.v);
      detail += " " + format_bandwidth(exec->result.bandwidth());
      if (exec->result.remote_bytes > 0) {
        detail += " remote=" + format_bytes(exec->result.remote_bytes);
      }
      tracer_->record(trace::Track::kGpu, exec->desc.label,
                      exec->result.start, exec->result.end, detail);
    }
    if (exec->on_complete) exec->on_complete(exec->result);
  });
}

void GpuDevice::set_telemetry(telemetry::Sink sink) {
  flight_ = sink.flight;
  if (sink.metrics == nullptr) {
    kernels_counter_ = nullptr;
    waves_counter_ = nullptr;
    return;
  }
  kernels_counter_ = &sink.metrics->counter(
      "ghs_gpu_kernels_total", {}, "Kernels launched on the simulated GPU");
  waves_counter_ = &sink.metrics->counter(
      "ghs_gpu_waves_total", {}, "Occupancy-limited waves executed");
}

}  // namespace ghs::gpu
