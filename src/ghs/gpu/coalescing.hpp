// Sector-level coalescing arithmetic for warp memory accesses.
//
// An H100 warp load is serviced in 32-byte sectors. For the reduction's
// access pattern — lane L of iteration k touching element V*m + k with
// per-thread base V*m — the lanes of one load are strided V elements
// apart, so a single load instruction touches a span of 32*V elements but
// only 32 of them. Across the V loads of one unrolled iteration every
// sector byte is eventually consumed (the stride pattern tiles the span),
// which is why the kernel's *bandwidth* efficiency stays high while its
// *per-load* sector efficiency collapses for large V.
//
// These functions quantify both views; the per-load footprint feeds the
// warp-MLP rate cap (occupancy.cpp) and the tests pin the arithmetic the
// model's Fig. 1 shapes rest on.
#pragma once

#include <cstdint>

#include "ghs/util/units.hpp"

namespace ghs::gpu {

struct WarpAccessPattern {
  int warp_size = 32;
  Bytes element_size = 4;
  /// Elements accumulated per loop iteration (lane stride in elements).
  int v = 1;
  Bytes sector_bytes = 32;
};

/// Bytes spanned by one warp load (first lane's byte to last lane's last
/// byte): warp_size strided accesses of element_size at stride v.
Bytes warp_load_span(const WarpAccessPattern& pattern);

/// Sectors a single warp load instruction touches.
std::int64_t sectors_per_load(const WarpAccessPattern& pattern);

/// Useful bytes of one warp load divided by the sector bytes it moves —
/// 1.0 for unit-stride full-width loads, 1/v-ish for strided ones.
double per_load_sector_efficiency(const WarpAccessPattern& pattern);

/// Unique sectors the whole unrolled iteration (all v loads) touches.
/// Because the loads tile the span, this equals the span's sectors: the
/// iteration-level efficiency is ~1 regardless of v.
std::int64_t sectors_per_iteration(const WarpAccessPattern& pattern);

/// Useful bytes of the whole iteration over the sector bytes it moves.
double iteration_sector_efficiency(const WarpAccessPattern& pattern);

}  // namespace ghs::gpu
