// Occupancy arithmetic: how many CTAs of a given shape are simultaneously
// resident on the whole GPU. The reduction kernels use no shared memory to
// speak of and few registers, so threads-per-SM and the CTA-slot limit are
// the binding constraints.
#pragma once

#include <cstdint>

#include "ghs/gpu/config.hpp"

namespace ghs::gpu {

/// CTAs of `threads_per_cta` threads resident per SM.
int ctas_per_sm(const GpuConfig& config, int threads_per_cta);

/// CTAs resident across the whole device.
std::int64_t resident_ctas(const GpuConfig& config, int threads_per_cta);

/// Per-CTA streaming rate cap in bytes/s from the warp-level-parallelism
/// model: each warp keeps min(max_outstanding, v * iteration_ilp) loads in
/// flight, each load covering warp_size * element_size bytes, against the
/// loaded memory latency.
double cta_rate_cap(const GpuConfig& config, int threads_per_cta, int v,
                    Bytes element_size);

}  // namespace ghs::gpu
