// Event-driven GPU execution model.
//
// A kernel executes as a sequence of *waves*: the set of CTAs simultaneously
// resident on the device (occupancy-limited). All CTAs of the reduction
// kernels are identical, so a wave is simulated as one fluid flow whose
// byte count aggregates its CTAs' chunks and whose rate is capped by the
// aggregated warp-MLP limit — contention with the CPU, migrations, and the
// HBM/C2C capacities then emerges from the fluid network. When a wave's
// data drains, its CTAs run their shared-memory reduction tree and enqueue
// one combine operation each on the serial combine unit (the single-address
// atomic path); the kernel completes when the last wave's combines retire.
//
// In UM mode the kernel's range is planned through the UmManager each
// launch: wave flows are split at residency boundaries, remote slices run
// over NVLink-C2C, and fault-migrating slices run at the fault-handling
// rate and flip their pages when they finish — which is exactly the
// mechanism behind the paper's A1/A2 allocation-site results.
#pragma once

#include <functional>
#include <memory>

#include "ghs/gpu/config.hpp"
#include "ghs/gpu/kernel.hpp"
#include "ghs/mem/topology.hpp"
#include "ghs/sim/server.hpp"
#include "ghs/sim/simulator.hpp"
#include "ghs/telemetry/flight_recorder.hpp"
#include "ghs/telemetry/registry.hpp"
#include "ghs/trace/tracer.hpp"
#include "ghs/um/manager.hpp"

namespace ghs::gpu {

struct GpuDeviceStats {
  std::int64_t kernels_launched = 0;
  std::int64_t waves_executed = 0;
  std::int64_t combines_issued = 0;
};

class GpuDevice {
 public:
  GpuDevice(sim::Simulator& sim, mem::Topology& topology, um::UmManager& um,
            GpuConfig config);

  GpuDevice(const GpuDevice&) = delete;
  GpuDevice& operator=(const GpuDevice&) = delete;

  const GpuConfig& config() const { return config_; }

  /// Launches a kernel asynchronously; `on_complete` fires (via the
  /// simulator) when the kernel fully retires. One kernel at a time is
  /// supported — the reduction benchmarks never overlap kernels on the
  /// device.
  void launch(const KernelDesc& desc,
              std::function<void(const KernelResult&)> on_complete);

  bool busy() const { return busy_; }
  const GpuDeviceStats& stats() const { return stats_; }

  /// Installs a span recorder (null disables tracing). Kernel spans go on
  /// the GPU track, per-wave spans on the wave track — enable wave tracing
  /// only for runs with modest grids.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Registers kernel/wave counters and the flight recorder (null members
  /// disable the corresponding channel).
  void set_telemetry(telemetry::Sink sink);

 private:
  struct Execution;

  void start_wave(const std::shared_ptr<Execution>& exec);
  void finish_wave(const std::shared_ptr<Execution>& exec,
                   std::int64_t cta_count, SimTime wave_start,
                   SimTime flow_end);
  void finish_kernel(const std::shared_ptr<Execution>& exec);

  sim::Simulator& sim_;
  mem::Topology& topology_;
  um::UmManager& um_;
  GpuConfig config_;
  sim::SerialServer combine_unit_;
  GpuDeviceStats stats_;
  trace::Tracer* tracer_ = nullptr;
  telemetry::FlightRecorder* flight_ = nullptr;
  telemetry::Counter* kernels_counter_ = nullptr;
  telemetry::Counter* waves_counter_ = nullptr;
  bool busy_ = false;
};

}  // namespace ghs::gpu
