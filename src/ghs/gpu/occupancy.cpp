#include "ghs/gpu/occupancy.hpp"

#include <algorithm>

#include "ghs/util/error.hpp"

namespace ghs::gpu {

int ctas_per_sm(const GpuConfig& config, int threads_per_cta) {
  GHS_REQUIRE(threads_per_cta > 0 &&
                  threads_per_cta % config.warp_size == 0 &&
                  threads_per_cta <= config.max_threads_per_sm,
              "threads_per_cta=" << threads_per_cta);
  return std::min(config.max_ctas_per_sm,
                  config.max_threads_per_sm / threads_per_cta);
}

std::int64_t resident_ctas(const GpuConfig& config, int threads_per_cta) {
  return static_cast<std::int64_t>(config.num_sms) *
         ctas_per_sm(config, threads_per_cta);
}

double cta_rate_cap(const GpuConfig& config, int threads_per_cta, int v,
                    Bytes element_size) {
  GHS_REQUIRE(v >= 1, "v=" << v);
  GHS_REQUIRE(element_size >= 1, "element_size=" << element_size);
  const int warps = threads_per_cta / config.warp_size;
  const long long loads_in_flight =
      std::min<long long>(config.max_outstanding_loads_per_warp,
                          static_cast<long long>(v) * config.iteration_ilp);
  const double inflight_bytes =
      static_cast<double>(loads_in_flight) *
      static_cast<double>(config.warp_size) *
      static_cast<double>(element_size);
  const double latency_s = to_seconds(config.mem_latency);
  GHS_CHECK(latency_s > 0.0, "mem latency must be positive");
  return static_cast<double>(warps) * inflight_bytes / latency_s;
}

}  // namespace ghs::gpu
