// Hopper-class GPU model parameters.
//
// Hard constants (SM count, clock, occupancy limits, HBM peak) are the
// H100-SXM values of the paper's GH200 testbed. Soft constants (latency,
// outstanding-load depth, combine costs, stream efficiencies) are
// calibration parameters; EXPERIMENTS.md documents which measured numbers
// each one is fitted against.
#pragma once

#include "ghs/util/units.hpp"

namespace ghs::gpu {

/// How a kernel's per-thread partial sums are folded into the global
/// reduction variable. The cost difference between these classes is what
/// spreads the paper's four baseline bandwidths apart (Table 1).
enum class CombineClass {
  kNativeInt,   // int32/int64 reduction: hardware atomic add
  kWideningInt, // int8 -> int64: conversion + 64-bit CAS-style combine
  kFloatCas,    // float/double: CAS-loop combine in the runtime
};

const char* combine_class_name(CombineClass c);

struct GpuConfig {
  // --- hard architecture constants (H100 SXM5 96GB) ---
  int num_sms = 132;
  double clock_ghz = 1.980;
  int warp_size = 32;
  int max_threads_per_sm = 2048;
  int max_ctas_per_sm = 32;

  // --- memory-system model ---
  /// Loaded HBM3 latency seen by a streaming warp.
  SimTime mem_latency = from_nanoseconds(450.0);
  /// Maximum loads a warp keeps in flight (LSU queue depth).
  int max_outstanding_loads_per_warp = 8;
  /// Independent loop iterations the hardware overlaps per warp when the
  /// loop body itself offers fewer than max_outstanding loads.
  int iteration_ilp = 2;
  /// DRAM stream efficiency by element size: fraction of peak HBM bandwidth
  /// a saturating kernel achieves (Table 1 "Efficiency" column).
  double stream_efficiency_1b = 0.902;
  double stream_efficiency_4b = 0.952;
  double stream_efficiency_8b = 0.957;

  // --- kernel overheads ---
  /// Host-side latency of launching a target region (runtime + driver).
  SimTime kernel_launch_latency = from_nanoseconds(4000.0);
  /// Serial CTA dispatch cost in the gigathread engine, per CTA.
  SimTime cta_dispatch_cost = from_nanoseconds(0.05);
  /// Shared-memory tree reduction: cycles per step (sync + add).
  double tree_step_cycles = 24.0;

  // --- combine (atomic) unit: serialized per-CTA combine costs ---
  /// Calibrated against the paper's baseline bandwidths: C1 620 GB/s,
  /// C2 172 GB/s, C3 271 GB/s, C4 526 GB/s with the NVHPC heuristic grid.
  /// The float CAS-loop is slightly wider for 8-byte operands.
  SimTime combine_native_int = from_nanoseconds(0.820);
  SimTime combine_widening_int = from_nanoseconds(1.448);
  SimTime combine_float32_cas = from_nanoseconds(1.883);
  SimTime combine_float64_cas = from_nanoseconds(1.941);

  // --- unified-memory access ---
  /// GPU streaming efficiency on HBM-resident *managed* pages relative to
  /// explicitly mapped device memory (address translation through the
  /// system page tables costs a few percent).
  double um_hbm_efficiency = 0.93;
  /// Rate cap for GPU streaming reads of CPU-resident managed memory;
  /// below the raw C2C capacity because remote traffic is request/response.
  Bandwidth remote_read_bw = Bandwidth::from_gbps(430.0);

  double stream_efficiency(Bytes element_size) const {
    if (element_size <= 1) return stream_efficiency_1b;
    if (element_size <= 4) return stream_efficiency_4b;
    return stream_efficiency_8b;
  }

  /// `element_size` disambiguates the float32 and float64 CAS widths.
  SimTime combine_cost(CombineClass c, Bytes element_size) const {
    switch (c) {
      case CombineClass::kNativeInt:
        return combine_native_int;
      case CombineClass::kWideningInt:
        return combine_widening_int;
      case CombineClass::kFloatCas:
        return element_size <= 4 ? combine_float32_cas : combine_float64_cas;
    }
    return combine_native_int;
  }

  /// Picoseconds per GPU clock cycle.
  double cycle_ps() const { return 1000.0 / clock_ghz; }
};

}  // namespace ghs::gpu
