#include "ghs/gpu/coalescing.hpp"

#include "ghs/util/error.hpp"
#include "ghs/util/math.hpp"

namespace ghs::gpu {

namespace {

void validate(const WarpAccessPattern& pattern) {
  GHS_REQUIRE(pattern.warp_size > 0, "warp_size=" << pattern.warp_size);
  GHS_REQUIRE(pattern.element_size > 0,
              "element_size=" << pattern.element_size);
  GHS_REQUIRE(pattern.v >= 1, "v=" << pattern.v);
  GHS_REQUIRE(pattern.sector_bytes > 0,
              "sector_bytes=" << pattern.sector_bytes);
}

}  // namespace

Bytes warp_load_span(const WarpAccessPattern& pattern) {
  validate(pattern);
  // Lane L accesses element L*v; the span runs from lane 0's first byte to
  // lane (warp_size-1)'s last byte.
  const Bytes last_lane_offset =
      static_cast<Bytes>(pattern.warp_size - 1) * pattern.v *
      pattern.element_size;
  return last_lane_offset + pattern.element_size;
}

std::int64_t sectors_per_load(const WarpAccessPattern& pattern) {
  validate(pattern);
  // Lanes are element_size*v apart. When the stride is smaller than a
  // sector, consecutive lanes share sectors; otherwise each lane touches
  // its own sector (elements never straddle sectors for the power-of-two
  // sizes used here).
  const Bytes stride = pattern.element_size * pattern.v;
  if (stride >= pattern.sector_bytes) {
    return pattern.warp_size;
  }
  return ceil_div(warp_load_span(pattern), pattern.sector_bytes);
}

double per_load_sector_efficiency(const WarpAccessPattern& pattern) {
  const double useful = static_cast<double>(pattern.warp_size) *
                        static_cast<double>(pattern.element_size);
  const double moved = static_cast<double>(sectors_per_load(pattern)) *
                       static_cast<double>(pattern.sector_bytes);
  return useful / moved;
}

std::int64_t sectors_per_iteration(const WarpAccessPattern& pattern) {
  validate(pattern);
  // The v loads of one iteration tile the contiguous range of
  // warp_size * v elements.
  const Bytes range = static_cast<Bytes>(pattern.warp_size) * pattern.v *
                      pattern.element_size;
  return ceil_div(range, pattern.sector_bytes);
}

double iteration_sector_efficiency(const WarpAccessPattern& pattern) {
  const double useful = static_cast<double>(pattern.warp_size) *
                        static_cast<double>(pattern.v) *
                        static_cast<double>(pattern.element_size);
  const double moved = static_cast<double>(sectors_per_iteration(pattern)) *
                       static_cast<double>(pattern.sector_bytes);
  return useful / moved;
}

}  // namespace ghs::gpu
