// ghs::cluster — the reduction service sharded across a simulated GH200
// fleet. N nodes, each a full serve::ReductionService (admission queue,
// scheduler policy, device pool, retries/breakers when chaos is on), all
// embedded on ONE shared simulator so the fleet runs as a single
// deterministic discrete-event simulation. A Router decides each job's
// node at its arrival instant; an Interconnect prices the bytes a job
// pays when its data lives on a different node's LPDDR5X.
//
// Cluster-level resilience composes with the per-node machinery from the
// fault PR rather than replacing it:
//
//   spill  — a job refused by a node's admission queue is re-routed to the
//            least-loaded other node (paying the transfer from its data
//            home) before the cluster gives up: per-node backpressure
//            propagates up as cluster-level rejection only when every
//            attempt is refused.
//   steal  — when a node's GPU circuit breaker opens, the jobs sitting in
//            its queue are moved to healthy peers (paying the transfer
//            from the sick node), extending degraded placement across the
//            fleet: the sick node keeps serving what it must on its CPU
//            while peers absorb the backlog.
//
// Every submitted job ends exactly one of three ways at the cluster level
// — served, rejected, or shed — the invariant the chaos tests pin. Note
// that per-node reports still count their local view (a spilled job is a
// rejection on the refusing node and a serve on the rescuer), so per-node
// sums can exceed cluster totals by design.
//
// Passthrough mode (router=passthrough, nodes=1) constructs exactly one
// standalone service and delegates wholesale: no shared simulator, no
// interconnect, no cluster instruments, no hooks — so its reports,
// telemetry snapshots, and traces are byte-identical to the un-clustered
// service by construction (pinned by the equivalence test).
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "ghs/cluster/interconnect.hpp"
#include "ghs/cluster/router.hpp"
#include "ghs/serve/service.hpp"
#include "ghs/sim/simulator.hpp"
#include "ghs/slo/monitor.hpp"
#include "ghs/trace/tracer.hpp"

namespace ghs::cluster {

struct ClusterOptions {
  int nodes = 4;
  RouterPolicy router = RouterPolicy::kLeast;
  /// Per-node scheduler policy name ("fifo" | "sjf" | "bandwidth").
  std::string policy = "fifo";
  /// Template for every node's ServiceOptions. external_sim and
  /// instance_labels are overwritten per node; the telemetry sink is
  /// shared (node="i" labels disambiguate); the injector attaches to
  /// `fault_node` only — chaos strikes one machine, the fleet reacts.
  serve::ServiceOptions node;
  int fault_node = 0;
  InterconnectOptions interconnect;
  int ring_vnodes = 64;
  std::uint64_t router_seed = 0xC105CE12ULL;
  /// Spill-on-reject (see header comment). Off = a node-level rejection
  /// is immediately a cluster-level rejection.
  bool spill = true;
  /// Steal-on-GPU-breaker-open (see header comment).
  bool steal = true;
};

/// Cluster-level accounting for one served job, wrapping the serving
/// node's JobRecord. `record.job.arrival` is the delivery instant at the
/// node (post transfer); cluster latency is measured from the tenant's
/// original arrival at the front door.
struct ClusterRecord {
  serve::JobRecord record;
  int node = 0;
  SimTime original_arrival = 0;
  /// Total inter-node transfer time the job paid (route + spills + steal).
  SimTime transfer = 0;
  int spills = 0;
  bool stolen = false;

  SimTime latency() const { return record.completion - original_arrival; }
};

struct ClusterReport {
  std::string router;
  std::string policy;
  int nodes = 1;
  std::int64_t submitted = 0;
  std::int64_t served = 0;
  std::int64_t rejected = 0;
  std::int64_t shed = 0;
  /// Jobs that paid at least one inter-node transfer.
  std::int64_t remote_jobs = 0;
  std::int64_t transfers = 0;
  double transfer_gb = 0.0;
  /// Spill re-routes attempted / jobs that survived because of one.
  std::int64_t spills = 0;
  std::int64_t spilled_saved = 0;
  /// Steal events / jobs moved by them.
  std::int64_t steals = 0;
  std::int64_t stolen_jobs = 0;
  SimTime makespan = 0;
  Bytes bytes_served = 0;
  double throughput_jobs_per_s = 0.0;
  double throughput_gbps = 0.0;
  /// Front-door latency: completion minus original arrival.
  serve::LatencyStats latency;
  /// Jobs routed to each node (first routing decision only).
  std::vector<std::int64_t> routed;
  /// max(routed) / mean(routed); 1 is perfect balance, 0 when idle.
  double imbalance = 0.0;
  std::vector<serve::ServiceReport> node_reports;

  /// One JSON object, stable key order, deterministic formatting.
  void write_json(std::ostream& os) const;
};

class Cluster {
 public:
  Cluster(serve::ServiceModel& model, ClusterOptions options = {},
          trace::Tracer* tracer = nullptr);

  int nodes() const { return options_.nodes; }
  bool passthrough() const {
    return options_.router == RouterPolicy::kPassthrough;
  }
  serve::ReductionService& node(int i);
  const serve::ReductionService& node(int i) const;
  const Router& router() const { return router_; }
  /// Null in passthrough mode and on single-node fleets.
  Interconnect* interconnect() { return interconnect_.get(); }
  /// The shared fleet clock (the node's own clock in passthrough mode).
  sim::Simulator& sim();

  /// Schedules a whole workload through the front door. Arrival-sorted
  /// batches ride a chained pump (one arrival event in flight at a time),
  /// mirroring the service's own submit_all.
  void submit_all(std::vector<serve::Job> jobs);

  /// Drains the shared event queue: routing, transfers, service, spills,
  /// and steals all run to completion.
  void run();

  const std::vector<ClusterRecord>& records() const { return records_; }
  /// Cluster-level terminal rejections/sheds and their instants.
  const std::vector<serve::Job>& rejected_jobs() const { return rejected_; }
  const std::vector<SimTime>& rejected_times() const { return rejected_at_; }
  const std::vector<serve::Job>& shed_jobs() const { return shed_; }
  const std::vector<SimTime>& shed_times() const { return shed_at_; }

  ClusterReport report() const;

  /// Feeds an SLO monitor with cluster-level outcomes: completions judged
  /// on front-door latency, cluster rejections/sheds as bad availability
  /// samples. Passthrough mode defers to Monitor::feed semantics.
  void feed_slo(slo::Monitor& monitor) const;

 private:
  struct JobMeta {
    SimTime original_arrival = 0;
    SimTime transfer = 0;
    int spills = 0;
    bool stolen = false;
  };
  struct ArrivalChain {
    std::vector<serve::Job> jobs;
    std::size_t next = 0;
  };

  void pump(ArrivalChain* chain);
  /// Instantaneous load signal: queue depth + busy devices + in-flight
  /// deliveries (transfers already committed to the node).
  std::size_t load(int node) const;
  std::vector<std::size_t> all_loads() const;
  void route(serve::Job job);
  /// Hands the job to `target`, paying `transfer_src`->target transfer
  /// first when transfer_src >= 0 and differs from target.
  void deliver(serve::Job job, int target, int transfer_src);
  void submit_to(serve::Job job, int target);
  void finish_reject(const serve::Job& job, SimTime at);
  void steal_from(int sick, SimTime at);

  serve::ServiceModel& model_;
  ClusterOptions options_;
  trace::Tracer* tracer_;
  /// Shared fleet clock; unused in passthrough mode (the single node owns
  /// its simulator, exactly like a standalone service).
  sim::Simulator sim_;
  std::unique_ptr<Interconnect> interconnect_;
  Router router_;
  std::vector<std::unique_ptr<serve::ReductionService>> nodes_;
  std::vector<std::unique_ptr<ArrivalChain>> chains_;
  std::unordered_map<serve::JobId, JobMeta> meta_;
  std::vector<ClusterRecord> records_;
  std::vector<serve::Job> rejected_;
  std::vector<SimTime> rejected_at_;
  std::vector<serve::Job> shed_;
  std::vector<SimTime> shed_at_;
  std::vector<std::int64_t> routed_;
  std::vector<std::size_t> pending_;
  std::int64_t submitted_ = 0;
  /// Front-door makespan bounds: first routed arrival, last completion.
  SimTime first_arrival_ = -1;
  SimTime last_completion_ = 0;
  std::int64_t remote_jobs_ = 0;
  std::int64_t spills_ = 0;
  std::int64_t spilled_saved_ = 0;
  std::int64_t steals_ = 0;
  std::int64_t stolen_jobs_ = 0;
  telemetry::FlightRecorder* flight_ = nullptr;
  telemetry::Counter* m_submitted_ = nullptr;
  telemetry::Counter* m_served_ = nullptr;
  telemetry::Counter* m_rejected_ = nullptr;
  telemetry::Counter* m_shed_ = nullptr;
  telemetry::Counter* m_transfers_ = nullptr;
  telemetry::Counter* m_transfer_bytes_ = nullptr;
  telemetry::Counter* m_spills_ = nullptr;
  telemetry::Counter* m_steals_ = nullptr;
  telemetry::Histogram* m_latency_ms_ = nullptr;
};

}  // namespace ghs::cluster
