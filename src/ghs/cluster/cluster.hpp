// ghs::cluster — the reduction service sharded across a simulated GH200
// fleet. N nodes, each a full serve::ReductionService (admission queue,
// scheduler policy, device pool, retries/breakers when chaos is on), all
// embedded on ONE shared simulator so the fleet runs as a single
// deterministic discrete-event simulation. A Router decides each job's
// node at its arrival instant; an Interconnect prices the bytes a job
// pays when its data lives on a different node's LPDDR5X.
//
// Cluster-level resilience composes with the per-node machinery from the
// fault PR rather than replacing it:
//
//   spill  — a job refused by a node's admission queue is re-routed to the
//            least-loaded other node (paying the transfer from its data
//            home) before the cluster gives up: per-node backpressure
//            propagates up as cluster-level rejection only when every
//            attempt is refused.
//   steal  — when a node's GPU circuit breaker opens, the jobs sitting in
//            its queue are moved to healthy peers (paying the transfer
//            from the sick node), extending degraded placement across the
//            fleet: the sick node keeps serving what it must on its CPU
//            while peers absorb the backlog.
//
// The membership layer (opt-in via ClusterOptions::crash_plan / drains /
// health / enable_membership) extends resilience to whole-node failure:
// a fault::NodeCrashPlan kills a node's process (devices, queue, in-
// flight launches) at a scheduled instant; a phi-accrual HealthMonitor
// detects the silence and drives alive -> suspect -> dead -> rejoined
// transitions on a membership::Table; a per-node write-ahead JobJournal
// lets the jobs that died with the node be replayed on surviving peers
// exactly once (late-landing deliveries find their entry gone and are
// suppressed as duplicates); and Cluster::drain empties a node gracefully
// before removing it. See docs/CLUSTERING.md "Failure domains".
//
// Every submitted job ends exactly one of three ways at the cluster level
// — served, rejected, or shed — the invariant the chaos tests pin. Note
// that per-node reports still count their local view (a spilled job is a
// rejection on the refusing node and a serve on the rescuer), so per-node
// sums can exceed cluster totals by design.
//
// Passthrough mode (router=passthrough, nodes=1) constructs exactly one
// standalone service and delegates wholesale: no shared simulator, no
// interconnect, no cluster instruments, no hooks — so its reports,
// telemetry snapshots, and traces are byte-identical to the un-clustered
// service by construction (pinned by the equivalence test).
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "ghs/cluster/interconnect.hpp"
#include "ghs/cluster/router.hpp"
#include "ghs/fault/plan.hpp"
#include "ghs/membership/health.hpp"
#include "ghs/membership/journal.hpp"
#include "ghs/membership/table.hpp"
#include "ghs/serve/service.hpp"
#include "ghs/sim/simulator.hpp"
#include "ghs/slo/monitor.hpp"
#include "ghs/trace/tracer.hpp"

namespace ghs::cluster {

/// Scheduled graceful drain: at `at`, stop admitting to `node`, flush its
/// queue to peers, and remove it from the fleet (Cluster::drain run on a
/// timer).
struct DrainSpec {
  int node = 0;
  SimTime at = 0;
};

struct ClusterOptions {
  int nodes = 4;
  RouterPolicy router = RouterPolicy::kLeast;
  /// Per-node scheduler policy name ("fifo" | "sjf" | "bandwidth").
  std::string policy = "fifo";
  /// Template for every node's ServiceOptions. external_sim and
  /// instance_labels are overwritten per node; the telemetry sink is
  /// shared (node="i" labels disambiguate); the injector attaches to
  /// `fault_node` only — chaos strikes one machine, the fleet reacts.
  serve::ServiceOptions node;
  int fault_node = 0;
  InterconnectOptions interconnect;
  int ring_vnodes = 64;
  std::uint64_t router_seed = 0xC105CE12ULL;
  /// Spill-on-reject (see header comment). Off = a node-level rejection
  /// is immediately a cluster-level rejection.
  bool spill = true;
  /// Steal-on-GPU-breaker-open (see header comment).
  bool steal = true;
  /// Whole-node crash schedule (fault::parse_crash_plan). Any entry turns
  /// the membership layer on; empty (the default) leaves every code path
  /// and report byte-identical to a membership-unaware cluster.
  fault::NodeCrashPlan crash_plan;
  /// Scheduled graceful drains; any entry turns the membership layer on.
  std::vector<DrainSpec> drains;
  /// Phi-accrual failure detector riding the shared simulator. Disabled,
  /// crashes are detected instantly at the crash event (zero detection
  /// latency); enabled, detection waits for heartbeats to go quiet and
  /// restarts rejoin only after the warm-up window.
  membership::HealthOptions health;
  /// Forces the membership layer on (table + journal) even with no crash
  /// plan, drains, or detector — for callers that invoke Cluster::drain
  /// programmatically (a future autoscaler).
  bool enable_membership = false;
};

/// Cluster-level accounting for one served job, wrapping the serving
/// node's JobRecord. `record.job.arrival` is the delivery instant at the
/// node (post transfer); cluster latency is measured from the tenant's
/// original arrival at the front door.
struct ClusterRecord {
  serve::JobRecord record;
  int node = 0;
  SimTime original_arrival = 0;
  /// Total inter-node transfer time the job paid (route + spills + steal).
  SimTime transfer = 0;
  int spills = 0;
  bool stolen = false;

  SimTime latency() const { return record.completion - original_arrival; }
};

/// Membership/recovery accounting for one cluster run; serialised (and
/// populated) only when the membership layer was on, so membership-free
/// reports stay byte-identical to pre-membership builds.
struct MembershipReport {
  /// Node-crash events executed / node processes restarted.
  std::int64_t crashes = 0;
  std::int64_t restarts = 0;
  /// Graceful drains executed / queued jobs flushed to peers by them.
  std::int64_t drains = 0;
  std::int64_t drain_flushed = 0;
  /// Journaled jobs replayed after a death (or recovered from the WAL at
  /// an undetected restart).
  std::int64_t replayed = 0;
  /// In-flight deliveries re-pointed at a live peer because the target
  /// was already declared dead/draining when they landed.
  std::int64_t redirected = 0;
  /// Deliveries dropped because the job's journal entry was already
  /// replayed elsewhere — the exactly-once proof under replay races.
  std::int64_t duplicate_suppressed = 0;
  double replay_gb = 0.0;
  /// Crash-to-declared-dead latencies (zero-latency with the detector
  /// off, heartbeat-quantised with it on).
  std::int64_t detections = 0;
  double detection_mean_ms = 0.0;
  double detection_max_ms = 0.0;
  std::int64_t transitions = 0;
  /// Final membership state per node ("alive"|"suspect"|"dead"|
  /// "draining"|"left").
  std::vector<std::string> final_states;

  void write_json(std::ostream& os) const;
};

struct ClusterReport {
  std::string router;
  std::string policy;
  int nodes = 1;
  std::int64_t submitted = 0;
  std::int64_t served = 0;
  std::int64_t rejected = 0;
  std::int64_t shed = 0;
  /// Jobs that paid at least one inter-node transfer.
  std::int64_t remote_jobs = 0;
  std::int64_t transfers = 0;
  double transfer_gb = 0.0;
  /// Spill re-routes attempted / jobs that survived because of one.
  std::int64_t spills = 0;
  std::int64_t spilled_saved = 0;
  /// Steal events / jobs moved by them.
  std::int64_t steals = 0;
  std::int64_t stolen_jobs = 0;
  SimTime makespan = 0;
  Bytes bytes_served = 0;
  double throughput_jobs_per_s = 0.0;
  double throughput_gbps = 0.0;
  /// Front-door latency: completion minus original arrival.
  serve::LatencyStats latency;
  /// Jobs routed to each node (first routing decision only).
  std::vector<std::int64_t> routed;
  /// max(routed) / mean(routed); 1 is perfect balance, 0 when idle.
  double imbalance = 0.0;
  std::vector<serve::ServiceReport> node_reports;
  /// Populated (and serialised, as a trailing "membership" key) only when
  /// the membership layer ran.
  bool membership_aware = false;
  MembershipReport membership;

  /// One JSON object, stable key order, deterministic formatting.
  void write_json(std::ostream& os) const;
};

class Cluster {
 public:
  Cluster(serve::ServiceModel& model, ClusterOptions options = {},
          trace::Tracer* tracer = nullptr);

  int nodes() const { return options_.nodes; }
  bool passthrough() const {
    return options_.router == RouterPolicy::kPassthrough;
  }
  serve::ReductionService& node(int i);
  const serve::ReductionService& node(int i) const;
  const Router& router() const { return router_; }
  /// Null in passthrough mode and on single-node fleets.
  Interconnect* interconnect() { return interconnect_.get(); }
  /// The shared fleet clock (the node's own clock in passthrough mode).
  sim::Simulator& sim();

  /// Schedules a whole workload through the front door. Arrival-sorted
  /// batches ride a chained pump (one arrival event in flight at a time),
  /// mirroring the service's own submit_all.
  void submit_all(std::vector<serve::Job> jobs);

  /// Drains the shared event queue: routing, transfers, service, spills,
  /// and steals all run to completion.
  void run();

  const std::vector<ClusterRecord>& records() const { return records_; }
  /// Cluster-level terminal rejections/sheds and their instants.
  const std::vector<serve::Job>& rejected_jobs() const { return rejected_; }
  const std::vector<SimTime>& rejected_times() const { return rejected_at_; }
  const std::vector<serve::Job>& shed_jobs() const { return shed_; }
  const std::vector<SimTime>& shed_times() const { return shed_at_; }

  ClusterReport report() const;

  /// Telemetry-side totals the profile::CostLedger reconciles against:
  /// every node's device busy time and unified bytes, plus the
  /// interconnect's moved bytes and the journal's replayed bytes.
  profile::ConservationTotals conservation_totals() const;

  /// Feeds an SLO monitor with cluster-level outcomes: completions judged
  /// on front-door latency, cluster rejections/sheds as bad availability
  /// samples. Passthrough mode defers to Monitor::feed semantics.
  void feed_slo(slo::Monitor& monitor) const;

  /// Whether the membership layer (table + journal, optional detector) is
  /// active for this run.
  bool membership_enabled() const { return membership_on_; }
  /// Null when the membership layer is off.
  const membership::Table* membership_table() const { return table_.get(); }
  const membership::JobJournal* journal() const { return journal_.get(); }

  /// Graceful drain, the autoscaler primitive: stops admission to `node`,
  /// flushes its queue to live peers (paying transfers from the drained
  /// node), and removes it from the ring. In-flight work on the node
  /// completes lame-duck. Requires the membership layer (see
  /// ClusterOptions::enable_membership). No-op on nodes already dead,
  /// draining, or departed.
  void drain(int node);

 private:
  struct JobMeta {
    SimTime original_arrival = 0;
    SimTime transfer = 0;
    int spills = 0;
    bool stolen = false;
  };
  struct ArrivalChain {
    std::vector<serve::Job> jobs;
    std::size_t next = 0;
  };

  void pump(ArrivalChain* chain);
  /// Instantaneous load signal: queue depth + busy devices + in-flight
  /// deliveries (transfers already committed to the node).
  std::size_t load(int node) const;
  std::vector<std::size_t> all_loads() const;
  void route(serve::Job job);
  /// Hands the job to `target`, paying `transfer_src`->target transfer
  /// first when transfer_src >= 0 and differs from target. `phase` names
  /// the move in the profile ledger (route/spill transfers vs steals vs
  /// drain flushes) so attributed bytes still sum to the interconnect's
  /// transfer counter exactly.
  void deliver(serve::Job job, int target, int transfer_src,
               profile::Phase phase = profile::Phase::kTransfer);
  void submit_to(serve::Job job, int target);
  void finish_reject(const serve::Job& job, SimTime at);
  void steal_from(int sick, SimTime at);
  /// Least-loaded node the membership table still routes to, excluding
  /// `exclude` (-1 excludes nobody); -1 when no live node remains.
  int pick_live_target(int exclude) const;
  void do_crash(int node);
  void do_restart(int node);
  void do_drain(int node);
  /// Replays `node`'s open journal entries: onto live peers after a death
  /// (onto_self=false, transfers priced from the dead node's memory), or
  /// back onto the node itself when its process restarts before the
  /// detector ever declared it dead (onto_self=true — local WAL recovery,
  /// no transfer).
  void replay_open(int node, SimTime at, bool onto_self);
  void on_membership_transition(const membership::Transition& t);
  void journal_commit(int node, serve::JobId id);
  void membership_flight(SimTime at, const char* kind, int node,
                         const std::string& detail);

  serve::ServiceModel& model_;
  ClusterOptions options_;
  trace::Tracer* tracer_;
  /// Aliases options_.node.profile (null when profiling is off); the
  /// cluster charges its interconnect/journal bytes here, the nodes their
  /// launch time.
  profile::Recorder* recorder_ = nullptr;
  /// Shared fleet clock; unused in passthrough mode (the single node owns
  /// its simulator, exactly like a standalone service).
  sim::Simulator sim_;
  std::unique_ptr<Interconnect> interconnect_;
  Router router_;
  std::vector<std::unique_ptr<serve::ReductionService>> nodes_;
  std::vector<std::unique_ptr<ArrivalChain>> chains_;
  std::unordered_map<serve::JobId, JobMeta> meta_;
  std::vector<ClusterRecord> records_;
  std::vector<serve::Job> rejected_;
  std::vector<SimTime> rejected_at_;
  std::vector<serve::Job> shed_;
  std::vector<SimTime> shed_at_;
  std::vector<std::int64_t> routed_;
  std::vector<std::size_t> pending_;
  std::int64_t submitted_ = 0;
  /// Front-door makespan bounds: first routed arrival, last completion.
  SimTime first_arrival_ = -1;
  SimTime last_completion_ = 0;
  std::int64_t remote_jobs_ = 0;
  std::int64_t spills_ = 0;
  std::int64_t spilled_saved_ = 0;
  std::int64_t steals_ = 0;
  std::int64_t stolen_jobs_ = 0;
  /// Membership layer; all null/empty when membership_on_ is false, so a
  /// membership-free run touches none of it.
  bool membership_on_ = false;
  std::unique_ptr<membership::Table> table_;
  std::unique_ptr<membership::JobJournal> journal_;
  std::unique_ptr<membership::HealthMonitor> monitor_;
  /// Ground truth per node: is the process up? (The table holds the
  /// *detected* state, which lags this during detection and warm-up.)
  std::vector<char> up_;
  std::vector<SimTime> crashed_at_;
  std::int64_t crashes_ = 0;
  std::int64_t restarts_ = 0;
  std::int64_t drains_ = 0;
  std::int64_t drain_flushed_ = 0;
  std::int64_t replayed_ = 0;
  std::int64_t redirected_ = 0;
  std::int64_t dup_suppressed_ = 0;
  std::int64_t replay_bytes_ = 0;
  /// Exact integer twin of the interconnect's bytes_moved() (a double);
  /// the telemetry side of the ledger's transfer-byte conservation.
  Bytes transfer_bytes_total_ = 0;
  std::vector<double> detection_ms_;
  telemetry::FlightRecorder* flight_ = nullptr;
  telemetry::Counter* m_submitted_ = nullptr;
  telemetry::Counter* m_served_ = nullptr;
  telemetry::Counter* m_rejected_ = nullptr;
  telemetry::Counter* m_shed_ = nullptr;
  telemetry::Counter* m_transfers_ = nullptr;
  telemetry::Counter* m_transfer_bytes_ = nullptr;
  telemetry::Counter* m_spills_ = nullptr;
  telemetry::Counter* m_steals_ = nullptr;
  telemetry::Histogram* m_latency_ms_ = nullptr;
  telemetry::Counter* m_replayed_ = nullptr;
  telemetry::Counter* m_dup_suppressed_ = nullptr;
  telemetry::Counter* m_replay_bytes_ = nullptr;
  telemetry::Counter* m_transitions_ = nullptr;
  std::vector<telemetry::Gauge*> m_node_state_;
};

}  // namespace ghs::cluster
