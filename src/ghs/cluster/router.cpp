#include "ghs/cluster/router.hpp"

#include "ghs/util/error.hpp"

namespace ghs::cluster {

const char* router_policy_name(RouterPolicy policy) {
  switch (policy) {
    case RouterPolicy::kPassthrough:
      return "passthrough";
    case RouterPolicy::kHash:
      return "hash";
    case RouterPolicy::kLeast:
      return "least";
    case RouterPolicy::kP2c:
      return "p2c";
  }
  return "?";
}

RouterPolicy parse_router_policy(const std::string& name) {
  if (name == "passthrough") return RouterPolicy::kPassthrough;
  if (name == "hash") return RouterPolicy::kHash;
  if (name == "least") return RouterPolicy::kLeast;
  if (name == "p2c") return RouterPolicy::kP2c;
  GHS_REQUIRE(name == "passthrough" || name == "hash" || name == "least" ||
                  name == "p2c",
              "unknown router policy '" << name
                                        << "' (passthrough|hash|least|p2c)");
  GHS_UNREACHABLE("");
}

Router::Router(RouterPolicy policy, std::uint64_t seed, int ring_vnodes)
    : policy_(policy), ring_(ring_vnodes), rng_(seed) {}

int Router::pick(const serve::Job& job,
                 const std::vector<std::size_t>& loads) {
  GHS_REQUIRE(!loads.empty(), "pick() with no nodes");
  const std::size_t n = loads.size();
  switch (policy_) {
    case RouterPolicy::kPassthrough:
      return 0;
    case RouterPolicy::kHash:
      return ring_.owner(static_cast<std::uint64_t>(job.tenant));
    case RouterPolicy::kLeast: {
      std::size_t best = 0;
      for (std::size_t i = 1; i < n; ++i) {
        if (loads[i] < loads[best]) best = i;
      }
      return static_cast<int>(best);
    }
    case RouterPolicy::kP2c: {
      if (n == 1) return 0;
      const std::size_t a = rng_.next_below(n);
      std::size_t b = rng_.next_below(n);
      while (b == a) b = rng_.next_below(n);
      // Ties go to the first sample, so the decision is a pure function
      // of the draw order.
      return static_cast<int>(loads[b] < loads[a] ? b : a);
    }
  }
  GHS_UNREACHABLE("router policy " << static_cast<int>(policy_));
}

int Router::least_loaded_except(const std::vector<std::size_t>& loads,
                                int exclude) {
  GHS_REQUIRE(loads.size() >= 2, "least_loaded_except() needs >= 2 nodes");
  int best = -1;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (static_cast<int>(i) == exclude) continue;
    if (best < 0 || loads[i] < loads[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace ghs::cluster
