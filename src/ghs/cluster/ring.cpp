#include "ghs/cluster/ring.hpp"

#include <climits>

#include "ghs/util/error.hpp"

namespace ghs::cluster {

namespace {

std::uint64_t point(int node, int replica) {
  // Double-mixed so the point space never coincides with the (singly
  // mixed) key space: node 0's replicas are the words 0..vnodes-1, which
  // would otherwise collide exactly with small integer keys and hand node
  // 0 every small tenant id.
  return mix64(mix64(
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)) << 32) |
      static_cast<std::uint32_t>(replica)));
}

}  // namespace

HashRing::HashRing(int vnodes) : vnodes_(vnodes) {
  GHS_REQUIRE(vnodes > 0, "vnodes=" << vnodes);
}

void HashRing::add_node(int node) {
  GHS_REQUIRE(node >= 0, "node=" << node);
  if (!nodes_.insert(node).second) return;
  for (int r = 0; r < vnodes_; ++r) {
    ring_.emplace(std::make_pair(point(node, r), node), node);
  }
}

void HashRing::remove_node(int node) {
  if (nodes_.erase(node) == 0) return;
  for (int r = 0; r < vnodes_; ++r) {
    ring_.erase(std::make_pair(point(node, r), node));
  }
}

int HashRing::owner(std::uint64_t key) const {
  GHS_REQUIRE(!ring_.empty(), "owner() on an empty ring");
  auto it = ring_.lower_bound(std::make_pair(mix64(key), INT_MIN));
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

}  // namespace ghs::cluster
