// Routing policies of the cluster front door. The router decides, at each
// job's arrival instant, which node serves it:
//
//   passthrough — single-node wire-through; the cluster adds no machinery
//                 and a run is byte-identical to the standalone service.
//   hash        — consistent-hash by tenant: a tenant's jobs stick to one
//                 node (data locality, per-tenant cache affinity), and
//                 resizing the fleet remaps only ~1/N of tenants.
//   least       — global least-loaded: argmin over node load (queue depth
//                 + busy devices + in-flight deliveries). The omniscient
//                 baseline real front doors approximate.
//   p2c         — power-of-two-choices: sample two distinct nodes from a
//                 seeded stream, take the less loaded. Near-least balance
//                 with O(1) load probes; the classic Mitzenmacher result.
//
// Routing consumes randomness only for p2c, from the router's own seeded
// stream, so routing never perturbs workload generation and every policy
// is byte-reproducible at a fixed seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ghs/cluster/ring.hpp"
#include "ghs/serve/job.hpp"
#include "ghs/util/rng.hpp"

namespace ghs::cluster {

enum class RouterPolicy : std::uint8_t { kPassthrough, kHash, kLeast, kP2c };

const char* router_policy_name(RouterPolicy policy);

/// Parses "passthrough" | "hash" | "least" | "p2c"; throws on anything
/// else.
RouterPolicy parse_router_policy(const std::string& name);

class Router {
 public:
  Router(RouterPolicy policy, std::uint64_t seed, int ring_vnodes = 64);

  RouterPolicy policy() const { return policy_; }
  const HashRing& ring() const { return ring_; }

  void add_node(int node) { ring_.add_node(node); }
  void remove_node(int node) { ring_.remove_node(node); }

  /// Serving node for `job` given per-node loads (index = node id). The
  /// hash policy ignores loads; least/p2c ignore the job. Requires a
  /// non-empty load vector (and, for hash, a non-empty ring).
  int pick(const serve::Job& job, const std::vector<std::size_t>& loads);

  /// Least-loaded node excluding `exclude` (lowest index wins ties); used
  /// for spill and steal target selection. Requires >= 2 nodes.
  static int least_loaded_except(const std::vector<std::size_t>& loads,
                                 int exclude);

 private:
  RouterPolicy policy_;
  HashRing ring_;
  Rng rng_;
};

}  // namespace ghs::cluster
