// Inter-node transfer fabric of the simulated GH200 fleet. Each node's
// LPDDR5X is one capacity resource and every ordered node pair gets its
// own link resource (an NVLink-style point-to-point lane), all inside one
// sim::FluidNetwork, so a remote job's bytes contend max-min fairly with
// every other transfer touching the same source memory, link, or
// destination memory — the same mechanism ghs::mem uses for HBM/C2C
// contention inside a single superchip.
//
// The fabric carries only cluster-level traffic (remote job inputs, spill
// forwards, stolen queue contents); intra-node memory behaviour stays in
// the node's own service model.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ghs/sim/fluid.hpp"
#include "ghs/sim/simulator.hpp"
#include "ghs/util/units.hpp"

namespace ghs::cluster {

struct InterconnectOptions {
  /// Per-node memory capacity the fabric can draw on (LPDDR5X share
  /// reserved for network traffic).
  Bandwidth memory_bw = Bandwidth::from_gbps(500.0);
  /// Per-ordered-pair link capacity (one NVLink direction).
  Bandwidth link_bw = Bandwidth::from_gbps(450.0);
};

class Interconnect {
 public:
  Interconnect(sim::Simulator& sim, int nodes,
               InterconnectOptions options = {});

  Interconnect(const Interconnect&) = delete;
  Interconnect& operator=(const Interconnect&) = delete;

  int nodes() const { return nodes_; }

  /// Moves `bytes` from node `src` to node `dst` through src memory, the
  /// src->dst link, and dst memory; fires `on_complete` when the last
  /// byte lands. Zero-byte transfers complete via a same-instant event so
  /// callback ordering stays deterministic. Requires src != dst.
  void transfer(int src, int dst, Bytes bytes,
                std::function<void()> on_complete, std::string label = {});

  std::int64_t transfers() const { return transfers_; }
  double bytes_moved() const { return bytes_moved_; }
  std::size_t active_transfers() const { return net_.active_flows(); }

  /// Average utilisation of the src->dst link over [0, now]; 0 before any
  /// simulated time has passed.
  double link_utilisation(int src, int dst) const;

  sim::FluidNetwork& network() { return net_; }

 private:
  sim::ResourceId link(int src, int dst) const;

  sim::Simulator& sim_;
  sim::FluidNetwork net_;
  int nodes_;
  std::vector<sim::ResourceId> mem_;
  /// Row-major [src * nodes + dst]; the diagonal holds a sentinel (a node
  /// never transfers to itself).
  std::vector<sim::ResourceId> links_;
  std::int64_t transfers_ = 0;
  double bytes_moved_ = 0.0;
};

}  // namespace ghs::cluster
