#include "ghs/cluster/interconnect.hpp"

#include <limits>
#include <utility>

#include "ghs/util/error.hpp"

namespace ghs::cluster {

namespace {
constexpr sim::ResourceId kNoLink =
    std::numeric_limits<sim::ResourceId>::max();
}  // namespace

Interconnect::Interconnect(sim::Simulator& sim, int nodes,
                           InterconnectOptions options)
    : sim_(sim), net_(sim), nodes_(nodes) {
  GHS_REQUIRE(nodes > 0, "nodes=" << nodes);
  GHS_REQUIRE(options.memory_bw.bytes_per_second > 0.0 &&
                  options.link_bw.bytes_per_second > 0.0,
              "non-positive interconnect bandwidth");
  mem_.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    mem_.push_back(
        net_.add_resource("node" + std::to_string(n) + ".mem",
                          options.memory_bw));
  }
  const std::size_t width = static_cast<std::size_t>(nodes);
  links_.assign(width * width, kNoLink);
  for (int s = 0; s < nodes; ++s) {
    for (int d = 0; d < nodes; ++d) {
      if (s == d) continue;
      links_[static_cast<std::size_t>(s) * width +
             static_cast<std::size_t>(d)] =
          net_.add_resource(
              "link" + std::to_string(s) + "->" + std::to_string(d),
              options.link_bw);
    }
  }
}

sim::ResourceId Interconnect::link(int src, int dst) const {
  GHS_REQUIRE(src >= 0 && src < nodes_ && dst >= 0 && dst < nodes_,
              "link " << src << "->" << dst << " on " << nodes_ << " nodes");
  GHS_REQUIRE(src != dst, "self-link on node " << src);
  return links_[static_cast<std::size_t>(src) *
                    static_cast<std::size_t>(nodes_) +
                static_cast<std::size_t>(dst)];
}

void Interconnect::transfer(int src, int dst, Bytes bytes,
                            std::function<void()> on_complete,
                            std::string label) {
  const sim::ResourceId lane = link(src, dst);
  GHS_REQUIRE(bytes >= 0, "bytes=" << bytes);
  ++transfers_;
  bytes_moved_ += static_cast<double>(bytes);
  if (bytes == 0) {
    sim_.schedule_after(0, std::move(on_complete));
    return;
  }
  sim::FlowSpec spec;
  spec.bytes = static_cast<double>(bytes);
  spec.resources = {mem_[static_cast<std::size_t>(src)], lane,
                    mem_[static_cast<std::size_t>(dst)]};
  spec.on_complete = std::move(on_complete);
  spec.label = std::move(label);
  net_.start_flow(std::move(spec));
}

double Interconnect::link_utilisation(int src, int dst) const {
  const sim::ResourceId lane = link(src, dst);
  const SimTime now = sim_.now();
  if (now <= 0) return 0.0;
  return net_.resource_stats(lane).busy_time_ps / static_cast<double>(now);
}

}  // namespace ghs::cluster
