// Consistent-hash ring over cluster node ids. Each node projects `vnodes`
// virtual points onto a 64-bit circle; a key's owner is the first point at
// or clockwise of the key's hash. Adding or removing one node therefore
// remaps only ~1/N of the key space — the property the router's
// tenant-affinity policy relies on when the fleet is resized.
//
// Everything is a pure function of the node set: points are derived from
// (node, replica) by a fixed mix, lookups consume no randomness, and the
// map iterates in sorted order, so placement is byte-reproducible.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>

namespace ghs::cluster {

/// SplitMix64 finaliser: the 64-bit mix used for ring points and key
/// placement. Shared with tenant assignment so a workload generator and
/// the ring agree on hashing without a dependency between them.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

class HashRing {
 public:
  /// `vnodes` virtual points per node; more points = smoother balance at
  /// the cost of a larger map.
  explicit HashRing(int vnodes = 64);

  /// Idempotent; re-adding an existing node is a no-op.
  void add_node(int node);
  /// Removing an absent node is a no-op.
  void remove_node(int node);

  bool contains(int node) const { return nodes_.count(node) != 0; }
  std::size_t nodes() const { return nodes_.size(); }
  std::size_t points() const { return ring_.size(); }

  /// Owner of `key` (e.g. a tenant id). Requires a non-empty ring.
  int owner(std::uint64_t key) const;

 private:
  int vnodes_;
  /// Ring points keyed by (hash, node): hash collisions between nodes —
  /// astronomically unlikely but possible — resolve by node id instead of
  /// by insertion order, so the ring is a pure function of its node set.
  std::map<std::pair<std::uint64_t, int>, int> ring_;
  std::set<int> nodes_;
};

}  // namespace ghs::cluster
