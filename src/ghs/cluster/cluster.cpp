#include "ghs/cluster/cluster.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

#include "ghs/serve/policy.hpp"
#include "ghs/util/error.hpp"

namespace ghs::cluster {

namespace {

double to_ms(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

// Same fixed snprintf shape as the serve-layer reports: JSON output must
// be byte-stable across runs.
void write_double(std::ostream& os, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  os << buf;
}

void write_latency(std::ostream& os, const char* key,
                   const serve::LatencyStats& stats) {
  os << "\"" << key << "\":{\"count\":" << stats.count << ",\"mean_ms\":";
  write_double(os, stats.mean_ms);
  os << ",\"p50_ms\":";
  write_double(os, stats.pct.p50);
  os << ",\"p95_ms\":";
  write_double(os, stats.pct.p95);
  os << ",\"p99_ms\":";
  write_double(os, stats.pct.p99);
  os << ",\"p999_ms\":";
  write_double(os, stats.pct.p999);
  os << ",\"max_ms\":";
  write_double(os, stats.max_ms);
  os << "}";
}

bool arrival_sorted(const std::vector<serve::Job>& jobs) {
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    if (jobs[i].arrival < jobs[i - 1].arrival) return false;
  }
  return true;
}

}  // namespace

void MembershipReport::write_json(std::ostream& os) const {
  os << "{\"crashes\":" << crashes << ",\"restarts\":" << restarts
     << ",\"drains\":" << drains << ",\"drain_flushed\":" << drain_flushed
     << ",\"replayed\":" << replayed << ",\"redirected\":" << redirected
     << ",\"duplicate_suppressed\":" << duplicate_suppressed
     << ",\"replay_gb\":";
  write_double(os, replay_gb);
  os << ",\"detections\":" << detections << ",\"detection_mean_ms\":";
  write_double(os, detection_mean_ms);
  os << ",\"detection_max_ms\":";
  write_double(os, detection_max_ms);
  os << ",\"transitions\":" << transitions << ",\"final_states\":[";
  for (std::size_t i = 0; i < final_states.size(); ++i) {
    os << (i == 0 ? "" : ",") << "\"" << final_states[i] << "\"";
  }
  os << "]}";
}

void ClusterReport::write_json(std::ostream& os) const {
  os << "{\"router\":\"" << router << "\",\"policy\":\"" << policy
     << "\",\"nodes\":" << nodes << ",\"submitted\":" << submitted
     << ",\"served\":" << served << ",\"rejected\":" << rejected
     << ",\"shed\":" << shed << ",\"remote_jobs\":" << remote_jobs
     << ",\"transfers\":" << transfers << ",\"transfer_gb\":";
  write_double(os, transfer_gb);
  os << ",\"spills\":" << spills << ",\"spilled_saved\":" << spilled_saved
     << ",\"steals\":" << steals << ",\"stolen_jobs\":" << stolen_jobs
     << ",\"makespan_ms\":";
  write_double(os, to_ms(makespan));
  os << ",\"bytes_served\":" << bytes_served
     << ",\"throughput_jobs_per_s\":";
  write_double(os, throughput_jobs_per_s);
  os << ",\"throughput_gbps\":";
  write_double(os, throughput_gbps);
  os << ",";
  write_latency(os, "latency", latency);
  os << ",\"routed\":[";
  for (std::size_t i = 0; i < routed.size(); ++i) {
    os << (i == 0 ? "" : ",") << routed[i];
  }
  os << "],\"imbalance\":";
  write_double(os, imbalance);
  os << ",\"node_reports\":[";
  for (std::size_t i = 0; i < node_reports.size(); ++i) {
    if (i != 0) os << ",";
    node_reports[i].write_json(os);
  }
  os << "]";
  // Trailing key so a membership-off report is byte-identical to the
  // pre-membership format (and strip-suffix comparable when on).
  if (membership_aware) {
    os << ",\"membership\":";
    membership.write_json(os);
  }
  os << "}";
}

Cluster::Cluster(serve::ServiceModel& model, ClusterOptions options,
                 trace::Tracer* tracer)
    : model_(model),
      options_(std::move(options)),
      tracer_(tracer),
      sim_(options_.node.sim),
      router_(options_.router, options_.router_seed, options_.ring_vnodes) {
  GHS_REQUIRE(options_.nodes > 0, "nodes=" << options_.nodes);
  GHS_REQUIRE(!passthrough() || options_.nodes == 1,
              "passthrough routing requires exactly one node, got "
                  << options_.nodes);
  GHS_REQUIRE(options_.fault_node >= 0 && options_.fault_node < options_.nodes,
              "fault_node=" << options_.fault_node);
  membership_on_ = options_.health.enabled || !options_.crash_plan.empty() ||
                   !options_.drains.empty() || options_.enable_membership;
  GHS_REQUIRE(!membership_on_ || !passthrough(),
              "passthrough mode cannot run the membership layer");
  for (const auto& crash : options_.crash_plan.crashes) {
    GHS_REQUIRE(crash.node >= 0 && crash.node < options_.nodes,
                "crash plan targets node " << crash.node << " of a "
                                           << options_.nodes << "-node fleet");
  }
  for (const auto& spec : options_.drains) {
    GHS_REQUIRE(spec.node >= 0 && spec.node < options_.nodes,
                "drain targets node " << spec.node << " of a "
                                      << options_.nodes << "-node fleet");
  }

  if (passthrough()) {
    // Wire-through: one standalone service, exactly as an un-clustered
    // caller would build it. No hooks, no cluster instruments, no shared
    // simulator — byte-identity with serve_loadgen is by construction.
    nodes_.push_back(std::make_unique<serve::ReductionService>(
        serve::make_policy(options_.policy, model_), model_, options_.node,
        tracer_));
    routed_.assign(1, 0);
    pending_.assign(1, 0);
    return;
  }

  if (options_.nodes > 1) {
    interconnect_ = std::make_unique<Interconnect>(sim_, options_.nodes,
                                                   options_.interconnect);
  }
  routed_.assign(static_cast<std::size_t>(options_.nodes), 0);
  pending_.assign(static_cast<std::size_t>(options_.nodes), 0);

  recorder_ = options_.node.profile;
  for (int i = 0; i < options_.nodes; ++i) {
    serve::ServiceOptions node_options = options_.node;
    node_options.external_sim = &sim_;
    node_options.instance_labels.push_back({"node", std::to_string(i)});
    node_options.profile_node = static_cast<std::int16_t>(i);
    if (i != options_.fault_node) node_options.injector = nullptr;
    nodes_.push_back(std::make_unique<serve::ReductionService>(
        serve::make_policy(options_.policy, model_), model_, node_options,
        tracer_));
    router_.add_node(i);
  }
  for (int i = 0; i < options_.nodes; ++i) {
    serve::ReductionService& svc = *nodes_[static_cast<std::size_t>(i)];
    svc.set_on_reject([this, i](const serve::Job& job, SimTime at) {
      auto it = meta_.find(job.id);
      GHS_CHECK(it != meta_.end(), "reject for unrouted job " << job.id);
      // The job is leaving node i (to a peer or to a terminal reject);
      // its write-ahead entry there is settled either way.
      journal_commit(i, job.id);
      if (options_.spill && options_.nodes > 1 &&
          it->second.spills < options_.nodes - 1) {
        // With the membership layer on, spill only onto nodes the table
        // still routes to; a fleet with no live peer rejects instead.
        const int target = membership_on_
                               ? pick_live_target(i)
                               : Router::least_loaded_except(all_loads(), i);
        if (target >= 0) {
          ++it->second.spills;
          ++spills_;
          if (m_spills_ != nullptr) m_spills_->inc();
          if (flight_ != nullptr) {
            flight_->record(at, "cluster", "spill",
                            "job " + std::to_string(job.id) + " off node " +
                                std::to_string(i));
          }
          deliver(job, target, job.source_node);
          return;
        }
      }
      finish_reject(job, at);
    });
    svc.set_on_shed([this, i](const serve::Job& job, SimTime at) {
      auto it = meta_.find(job.id);
      GHS_CHECK(it != meta_.end(), "shed for unrouted job " << job.id);
      journal_commit(i, job.id);
      meta_.erase(it);
      shed_.push_back(job);
      shed_at_.push_back(at);
      if (m_shed_ != nullptr) m_shed_->inc();
    });
    svc.set_on_complete([this, i](const serve::JobRecord& record) {
      auto it = meta_.find(record.job.id);
      GHS_CHECK(it != meta_.end(),
                "completion for unrouted job " << record.job.id);
      journal_commit(i, record.job.id);
      const JobMeta& meta = it->second;
      ClusterRecord cr;
      cr.record = record;
      cr.node = i;
      cr.original_arrival = meta.original_arrival;
      cr.transfer = meta.transfer;
      cr.spills = meta.spills;
      cr.stolen = meta.stolen;
      last_completion_ = std::max(last_completion_, record.completion);
      if (meta.spills > 0) ++spilled_saved_;
      records_.push_back(cr);
      meta_.erase(it);
      if (m_served_ != nullptr) m_served_->inc();
      if (m_latency_ms_ != nullptr) {
        m_latency_ms_->observe(to_ms(cr.latency()));
      }
    });
    svc.set_on_breaker_transition(
        [this, i](serve::Placement device, fault::BreakerState,
                  fault::BreakerState to, SimTime at) {
          if (!options_.steal || options_.nodes < 2) return;
          if (device != serve::Placement::kGpu ||
              to != fault::BreakerState::kOpen) {
            return;
          }
          // Steal as a fresh event so the node's dispatch loop (which may
          // be mid-iteration over its queue) fully unwinds first.
          sim_.schedule_after(0, [this, i, at] { steal_from(i, at); });
        });
  }

  flight_ = options_.node.telemetry.flight;
  if (options_.node.telemetry.metrics != nullptr) {
    telemetry::Registry& r = *options_.node.telemetry.metrics;
    const telemetry::Labels router_label = {
        {"router", router_policy_name(options_.router)}};
    m_submitted_ = &r.counter("ghs_cluster_jobs_submitted_total", router_label,
                              "Jobs submitted to the cluster front door");
    m_served_ = &r.counter("ghs_cluster_jobs_served_total", router_label,
                           "Jobs served by some node of the fleet");
    m_rejected_ =
        &r.counter("ghs_cluster_jobs_rejected_total", router_label,
                   "Jobs refused by every spill attempt (cluster-level)");
    m_shed_ = &r.counter("ghs_cluster_jobs_shed_total", router_label,
                         "Jobs shed by a node's retry machinery");
    m_transfers_ = &r.counter("ghs_cluster_transfers_total", router_label,
                              "Inter-node transfers started");
    m_transfer_bytes_ =
        &r.counter("ghs_cluster_transfer_bytes_total", router_label,
                   "Bytes moved between nodes");
    m_spills_ = &r.counter("ghs_cluster_spills_total", router_label,
                           "Spill re-routes after a node-level rejection");
    m_steals_ = &r.counter("ghs_cluster_steals_total", router_label,
                           "Queue-steal events (GPU breaker opened)");
    m_latency_ms_ = &r.histogram(
        "ghs_cluster_latency_ms", telemetry::default_latency_buckets_ms(),
        router_label, "Front-door arrival-to-completion latency");
  }

  if (!membership_on_) return;
  table_ = std::make_unique<membership::Table>(options_.nodes);
  journal_ = std::make_unique<membership::JobJournal>(options_.nodes);
  up_.assign(static_cast<std::size_t>(options_.nodes), 1);
  crashed_at_.assign(static_cast<std::size_t>(options_.nodes), -1);
  if (options_.node.telemetry.metrics != nullptr) {
    // Membership instruments only exist on membership runs, keeping every
    // other snapshot's byte stream unchanged.
    telemetry::Registry& r = *options_.node.telemetry.metrics;
    m_replayed_ =
        &r.counter("ghs_membership_replayed_jobs_total", {},
                   "Journaled jobs replayed after a node death or restart");
    m_dup_suppressed_ = &r.counter(
        "ghs_membership_duplicate_suppressed_total", {},
        "Deliveries dropped because their journal entry was already "
        "replayed elsewhere");
    m_replay_bytes_ = &r.counter("ghs_membership_replay_bytes_total", {},
                                 "Bytes re-shipped by journal replay");
    m_transitions_ = &r.counter("ghs_membership_transitions_total", {},
                                "Membership state transitions");
    m_node_state_.resize(static_cast<std::size_t>(options_.nodes));
    for (int i = 0; i < options_.nodes; ++i) {
      m_node_state_[static_cast<std::size_t>(i)] = &r.gauge(
          "ghs_membership_node_state", {{"node", std::to_string(i)}},
          "Membership state (0 alive, 1 suspect, 2 dead, 3 draining, "
          "4 left)");
    }
  }
  table_->set_on_transition([this](const membership::Transition& t) {
    on_membership_transition(t);
  });
  if (options_.health.enabled) {
    monitor_ = std::make_unique<membership::HealthMonitor>(
        sim_, *table_, options_.health,
        [this](int i) { return up_[static_cast<std::size_t>(i)] != 0; });
    monitor_->start();
  }
  for (const auto& crash : options_.crash_plan.crashes) {
    sim_.schedule_at(crash.at,
                     [this, node = crash.node] { do_crash(node); });
    if (crash.restart_at > 0) {
      sim_.schedule_at(crash.restart_at,
                       [this, node = crash.node] { do_restart(node); });
    }
  }
  for (const auto& spec : options_.drains) {
    sim_.schedule_at(spec.at, [this, node = spec.node] { do_drain(node); });
  }
}

serve::ReductionService& Cluster::node(int i) {
  GHS_REQUIRE(i >= 0 && i < options_.nodes, "node " << i);
  return *nodes_[static_cast<std::size_t>(i)];
}

const serve::ReductionService& Cluster::node(int i) const {
  GHS_REQUIRE(i >= 0 && i < options_.nodes, "node " << i);
  return *nodes_[static_cast<std::size_t>(i)];
}

sim::Simulator& Cluster::sim() {
  return passthrough() ? nodes_[0]->sim() : sim_;
}

std::size_t Cluster::load(int node) const {
  const serve::ReductionService& svc = *nodes_[static_cast<std::size_t>(node)];
  std::size_t load = svc.queue().size() + pending_[static_cast<std::size_t>(node)];
  if (!svc.pool().idle(serve::Placement::kGpu)) ++load;
  if (svc.pool().use_cpu() && !svc.pool().idle(serve::Placement::kCpu)) {
    ++load;
  }
  return load;
}

std::vector<std::size_t> Cluster::all_loads() const {
  std::vector<std::size_t> loads(static_cast<std::size_t>(options_.nodes));
  for (int i = 0; i < options_.nodes; ++i) {
    loads[static_cast<std::size_t>(i)] = load(i);
  }
  return loads;
}

void Cluster::submit_all(std::vector<serve::Job> jobs) {
  if (jobs.empty()) return;
  if (passthrough()) {
    submitted_ += static_cast<std::int64_t>(jobs.size());
    nodes_[0]->submit_all(std::move(jobs));
    return;
  }
  for (const auto& job : jobs) {
    GHS_REQUIRE(job.arrival >= sim_.now(),
                "job " << job.id << " arrives in the past");
  }
  submitted_ += static_cast<std::int64_t>(jobs.size());
  if (m_submitted_ != nullptr) {
    m_submitted_->inc(static_cast<std::int64_t>(jobs.size()));
  }
  if (!arrival_sorted(jobs)) {
    for (const auto& job : jobs) {
      sim_.schedule_at(job.arrival, [this, job] { route(job); });
    }
    return;
  }
  auto chain = std::make_unique<ArrivalChain>();
  chain->jobs = std::move(jobs);
  ArrivalChain* raw = chain.get();
  chains_.push_back(std::move(chain));
  sim_.schedule_at(raw->jobs.front().arrival, [this, raw] { pump(raw); });
}

void Cluster::pump(ArrivalChain* chain) {
  serve::Job job = chain->jobs[chain->next];
  ++chain->next;
  if (chain->next < chain->jobs.size()) {
    sim_.schedule_at(chain->jobs[chain->next].arrival,
                     [this, chain] { pump(chain); });
  }
  route(std::move(job));
}

void Cluster::route(serve::Job job) {
  int target = router_.pick(job, all_loads());
  // The hash ring already excludes departed nodes; the load-based picks
  // see every index, so correct a choice the membership table has since
  // declared dead/draining/left. (A crashed-but-undetected node is still
  // "serving" here: the job bounces off it and spills — that bounce is
  // the real cost of detection latency.)
  if (membership_on_ && !table_->serving(target)) {
    target = pick_live_target(-1);
  }
  if (first_arrival_ < 0 || job.arrival < first_arrival_) {
    first_arrival_ = job.arrival;
  }
  JobMeta meta;
  meta.original_arrival = job.arrival;
  meta_.emplace(job.id, meta);
  if (target < 0) {
    // No live node left to take the job.
    finish_reject(job, sim_.now());
    return;
  }
  ++routed_[static_cast<std::size_t>(target)];
  const int home = job.source_node;
  deliver(std::move(job), target, home);
}

void Cluster::deliver(serve::Job job, int target, int transfer_src,
                      profile::Phase phase) {
  GHS_REQUIRE(target >= 0 && target < options_.nodes, "deliver to " << target);
  // Write-ahead: the journal owns the job from the moment the cluster
  // commits to this delivery, before any transfer time elapses — so a
  // crash anywhere downstream can always replay it.
  if (journal_ != nullptr) journal_->append(target, job);
  ++pending_[static_cast<std::size_t>(target)];
  if (interconnect_ == nullptr || transfer_src < 0 ||
      transfer_src == target) {
    submit_to(std::move(job), target);
    return;
  }
  auto it = meta_.find(job.id);
  GHS_CHECK(it != meta_.end(), "transfer for unrouted job " << job.id);
  if (it->second.transfer == 0) {
    ++remote_jobs_;
  }
  const Bytes bytes = job.bytes();
  transfer_bytes_total_ += bytes;
  if (m_transfers_ != nullptr) m_transfers_->inc();
  if (m_transfer_bytes_ != nullptr) m_transfer_bytes_->inc(bytes);
  if (recorder_ != nullptr) {
    // Charged exactly where the interconnect counter increments, so the
    // ledger's transfer+steal+drain bytes reconcile against bytes_moved().
    recorder_->on_bytes(static_cast<std::int16_t>(target),
                        {job.tenant, static_cast<std::uint8_t>(job.case_id),
                         job.elements, bytes, job.enqueued},
                        phase, bytes);
  }
  const SimTime begin = sim_.now();
  const std::string label = "job" + std::to_string(job.id) + " node" +
                            std::to_string(transfer_src) + "->node" +
                            std::to_string(target);
  interconnect_->transfer(
      transfer_src, target, bytes,
      [this, job = std::move(job), target, transfer_src, begin]() mutable {
        const SimTime end = sim_.now();
        auto meta_it = meta_.find(job.id);
        if (meta_it != meta_.end()) {
          meta_it->second.transfer += end - begin;
        } else {
          // Meta may only be gone when the journal replayed this job onto
          // a peer and it already finished there — submit_to will drop
          // the late copy. Anything else is a routing bug.
          GHS_CHECK(journal_ != nullptr && !journal_->is_open(target, job.id),
                    "transfer landed for unrouted job " << job.id);
        }
        if (tracer_ != nullptr) {
          tracer_->record(trace::Track::kServer, "cluster.xfer", begin, end,
                          "node" + std::to_string(transfer_src) + "->node" +
                              std::to_string(target) + " job " +
                              std::to_string(job.id));
        }
        submit_to(std::move(job), target);
      },
      label);
}

void Cluster::submit_to(serve::Job job, int target) {
  --pending_[static_cast<std::size_t>(target)];
  if (journal_ != nullptr) {
    if (!journal_->is_open(target, job.id)) {
      // The journal replayed this job onto a peer while the delivery was
      // still in flight; dropping the late copy here is what makes the
      // replay exactly-once.
      ++dup_suppressed_;
      if (m_dup_suppressed_ != nullptr) m_dup_suppressed_->inc();
      membership_flight(sim_.now(), "duplicate", target,
                        "job " + std::to_string(job.id) +
                            " landed after replay, suppressed");
      return;
    }
    if (!table_->serving(target)) {
      // Landed on a node the table has since declared dead/draining/left:
      // re-point at a live peer, priced from wherever the data was headed.
      journal_->commit(target, job.id);
      const int next = pick_live_target(target);
      ++redirected_;
      membership_flight(sim_.now(), "redirect", target,
                        "job " + std::to_string(job.id) + " re-pointed to " +
                            (next < 0 ? std::string("nowhere")
                                      : "node " + std::to_string(next)));
      if (next < 0) {
        finish_reject(job, sim_.now());
        return;
      }
      deliver(std::move(job), next, target);
      return;
    }
  }
  job.arrival = sim_.now();
  nodes_[static_cast<std::size_t>(target)]->submit(job);
}

void Cluster::finish_reject(const serve::Job& job, SimTime at) {
  meta_.erase(job.id);
  rejected_.push_back(job);
  rejected_at_.push_back(at);
  if (m_rejected_ != nullptr) m_rejected_->inc();
  if (flight_ != nullptr) {
    flight_->record(at, "cluster", "reject",
                    "job " + std::to_string(job.id) + " refused everywhere");
  }
}

void Cluster::steal_from(int sick, SimTime at) {
  serve::ReductionService& svc = *nodes_[static_cast<std::size_t>(sick)];
  if (svc.breaker(serve::Placement::kGpu).state() !=
      fault::BreakerState::kOpen) {
    return;  // recovered before the steal event ran
  }
  std::vector<serve::Job> jobs =
      svc.steal_queued(std::numeric_limits<std::size_t>::max());
  if (jobs.empty()) return;
  ++steals_;
  if (m_steals_ != nullptr) m_steals_->inc();
  if (flight_ != nullptr) {
    flight_->record(at, "cluster", "steal",
                    std::to_string(jobs.size()) + " job(s) off node " +
                        std::to_string(sick));
  }
  for (auto& job : jobs) {
    auto it = meta_.find(job.id);
    GHS_CHECK(it != meta_.end(), "stole unrouted job " << job.id);
    it->second.stolen = true;
    ++stolen_jobs_;
    journal_commit(sick, job.id);
    const int target = membership_on_
                           ? pick_live_target(sick)
                           : Router::least_loaded_except(all_loads(), sick);
    if (target < 0) {
      finish_reject(job, at);
      continue;
    }
    // The queued context lives on the sick node, so the move is priced
    // from there regardless of where the bytes originally came from.
    deliver(std::move(job), target, sick, profile::Phase::kSteal);
  }
}

int Cluster::pick_live_target(int exclude) const {
  int best = -1;
  std::size_t best_load = 0;
  for (int i = 0; i < options_.nodes; ++i) {
    if (i == exclude) continue;
    if (!table_->serving(i)) continue;
    const std::size_t candidate = load(i);
    if (best < 0 || candidate < best_load) {
      best = i;
      best_load = candidate;
    }
  }
  return best;
}

void Cluster::journal_commit(int node, serve::JobId id) {
  if (journal_ != nullptr) journal_->commit(node, id);
}

void Cluster::membership_flight(SimTime at, const char* kind, int node,
                                const std::string& detail) {
  telemetry::record_labeled_event(flight_, at, "membership", kind,
                                  {{"node", std::to_string(node)}}, detail);
}

void Cluster::do_crash(int node) {
  const auto n = static_cast<std::size_t>(node);
  if (up_[n] == 0) return;  // already down
  up_[n] = 0;
  crashed_at_[n] = sim_.now();
  ++crashes_;
  nodes_[n]->crash();
  membership_flight(sim_.now(), "crash", node, "node process died");
  if (tracer_ != nullptr) {
    tracer_->mark(trace::Track::kServer,
                  "membership.crash node " + std::to_string(node),
                  sim_.now());
  }
  if (monitor_ == nullptr &&
      table_->state(node) != membership::NodeState::kDead) {
    // No detector: the crash is visible instantly (zero detection
    // latency), which is the baseline the phi-accrual numbers compare to.
    table_->transition(node, membership::NodeState::kDead, sim_.now(),
                       "crash (no detector)");
  }
}

void Cluster::do_restart(int node) {
  const auto n = static_cast<std::size_t>(node);
  if (up_[n] != 0) return;  // never crashed, or already restarted
  up_[n] = 1;
  crashed_at_[n] = -1;
  ++restarts_;
  nodes_[n]->restore();
  membership_flight(sim_.now(), "restart", node,
                    "node process restarted (warm-up begins)");
  if (tracer_ != nullptr) {
    tracer_->mark(trace::Track::kServer,
                  "membership.restart node " + std::to_string(node),
                  sim_.now());
  }
  if (table_->state(node) == membership::NodeState::kDead) {
    // Detected death: the open entries were already replayed onto peers.
    // With a detector the node rejoins after its warm-up window; without
    // one the restart is visible instantly, like the crash was.
    if (monitor_ == nullptr) {
      table_->transition(node, membership::NodeState::kAlive, sim_.now(),
                         "restart (no detector)");
    }
  } else {
    // The process bounced before the detector ever declared it dead, so
    // nobody replayed for it: the restarted node recovers its own
    // write-ahead journal locally.
    replay_open(node, sim_.now(), /*onto_self=*/true);
  }
}

void Cluster::drain(int node) {
  GHS_REQUIRE(membership_on_,
              "Cluster::drain needs the membership layer "
              "(ClusterOptions::enable_membership, a crash plan, drains, "
              "or the health detector)");
  GHS_REQUIRE(node >= 0 && node < options_.nodes, "drain node " << node);
  do_drain(node);
}

void Cluster::do_drain(int node) {
  const membership::NodeState state = table_->state(node);
  if (state != membership::NodeState::kAlive &&
      state != membership::NodeState::kSuspect) {
    return;  // already dead, draining, or departed
  }
  if (up_[static_cast<std::size_t>(node)] == 0) {
    return;  // crashed but undetected: the detector owns this node's fate
  }
  ++drains_;
  table_->transition(node, membership::NodeState::kDraining, sim_.now(),
                     "drain requested");
  std::vector<serve::Job> jobs = nodes_[static_cast<std::size_t>(node)]
                                     ->steal_queued(
                                         std::numeric_limits<std::size_t>::max());
  for (auto& job : jobs) {
    journal_commit(node, job.id);
    ++drain_flushed_;
    const int target = pick_live_target(node);
    if (target < 0) {
      finish_reject(job, sim_.now());
      continue;
    }
    deliver(std::move(job), target, node, profile::Phase::kDrain);
  }
  // In-flight launches finish lame-duck (their completions still count);
  // in-flight deliveries land on a non-serving node and get redirected.
  table_->transition(node, membership::NodeState::kLeft, sim_.now(),
                     "drained, " + std::to_string(jobs.size()) +
                         " queued job(s) flushed");
  membership_flight(sim_.now(), "drain", node,
                    std::to_string(jobs.size()) +
                        " queued job(s) flushed to peers");
}

void Cluster::replay_open(int node, SimTime at, bool onto_self) {
  std::vector<serve::Job> jobs = journal_->take_open(node);
  if (jobs.empty()) return;
  membership_flight(at, "replay", node,
                    std::to_string(jobs.size()) + " journaled job(s) " +
                        (onto_self ? "recovered locally" :
                                     "replayed on peers"));
  for (auto& job : jobs) {
    GHS_CHECK(meta_.find(job.id) != meta_.end(),
              "journal replays unrouted job " << job.id);
    ++replayed_;
    replay_bytes_ += job.bytes();
    if (m_replayed_ != nullptr) m_replayed_->inc();
    if (m_replay_bytes_ != nullptr) m_replay_bytes_->inc(job.bytes());
    if (recorder_ != nullptr) {
      // The journal replay itself; the deliver below prices any resulting
      // interconnect move separately as a plain transfer.
      recorder_->on_bytes(static_cast<std::int16_t>(node),
                          {job.tenant,
                           static_cast<std::uint8_t>(job.case_id),
                           job.elements, job.bytes(), job.enqueued},
                          profile::Phase::kReplay, job.bytes());
    }
    if (onto_self) {
      // Local WAL recovery on the restarted process: no transfer, the
      // data never left the node.
      deliver(std::move(job), node, -1);
      continue;
    }
    const int target = pick_live_target(node);
    if (target < 0) {
      finish_reject(job, at);
      continue;
    }
    // Priced from the job's data home when it has one, else from the dead
    // node — its journal (and the job bytes) survive in NVLink-reachable
    // LPDDR5X even though the process is gone.
    const int src = job.source_node >= 0 ? job.source_node : node;
    deliver(std::move(job), target, src);
  }
}

void Cluster::on_membership_transition(const membership::Transition& t) {
  if (m_transitions_ != nullptr) m_transitions_->inc();
  if (!m_node_state_.empty()) {
    m_node_state_[static_cast<std::size_t>(t.node)]->set(
        static_cast<double>(t.to));
  }
  membership_flight(t.at, "transition", t.node,
                    std::string(membership::node_state_name(t.from)) +
                        " -> " + membership::node_state_name(t.to) + " (" +
                        t.reason + ")");
  if (tracer_ != nullptr) {
    tracer_->mark(trace::Track::kServer,
                  "membership node " + std::to_string(t.node) + " " +
                      membership::node_state_name(t.to),
                  t.at);
  }
  switch (t.to) {
    case membership::NodeState::kDead:
      router_.remove_node(t.node);
      if (crashed_at_[static_cast<std::size_t>(t.node)] >= 0) {
        detection_ms_.push_back(
            to_ms(t.at - crashed_at_[static_cast<std::size_t>(t.node)]));
      }
      replay_open(t.node, t.at, /*onto_self=*/false);
      break;
    case membership::NodeState::kDraining:
    case membership::NodeState::kLeft:
      router_.remove_node(t.node);
      break;
    case membership::NodeState::kAlive:
      if (t.from == membership::NodeState::kDead) {
        router_.add_node(t.node);
      }
      break;
    case membership::NodeState::kSuspect:
      break;  // still serving; no ring change until declared dead
  }
}

void Cluster::run() {
  if (passthrough()) {
    nodes_[0]->run();
    return;
  }
  sim_.run();
  GHS_CHECK(meta_.empty(), meta_.size() << " job(s) without a terminal "
                                           "outcome after the run drained");
}

ClusterReport Cluster::report() const {
  ClusterReport report;
  report.router = router_policy_name(options_.router);
  report.policy = options_.policy;
  report.nodes = options_.nodes;
  if (passthrough()) {
    const serve::ServiceReport r0 = nodes_[0]->report();
    report.submitted = r0.submitted;
    report.served = r0.served;
    report.rejected = r0.rejected;
    report.shed = r0.shed;
    report.makespan = r0.makespan;
    report.bytes_served = r0.bytes_served;
    report.throughput_jobs_per_s = r0.throughput_jobs_per_s;
    report.throughput_gbps = r0.throughput_gbps;
    report.latency = r0.latency;
    report.routed = {r0.submitted};
    report.imbalance = r0.submitted > 0 ? 1.0 : 0.0;
    report.node_reports.push_back(r0);
    return report;
  }
  report.submitted = submitted_;
  report.served = static_cast<std::int64_t>(records_.size());
  report.rejected = static_cast<std::int64_t>(rejected_.size());
  report.shed = static_cast<std::int64_t>(shed_.size());
  report.remote_jobs = remote_jobs_;
  if (interconnect_ != nullptr) {
    report.transfers = interconnect_->transfers();
    report.transfer_gb = interconnect_->bytes_moved() / 1e9;
  }
  report.spills = spills_;
  report.spilled_saved = spilled_saved_;
  report.steals = steals_;
  report.stolen_jobs = stolen_jobs_;
  if (first_arrival_ >= 0 && last_completion_ > first_arrival_) {
    report.makespan = last_completion_ - first_arrival_;
  }
  std::vector<double> latency_ms;
  latency_ms.reserve(records_.size());
  for (const auto& record : records_) {
    latency_ms.push_back(to_ms(record.latency()));
    report.bytes_served += record.record.job.bytes();
  }
  report.latency = serve::make_latency_stats(latency_ms);
  if (report.makespan > 0) {
    const double seconds = to_seconds(report.makespan);
    report.throughput_jobs_per_s =
        static_cast<double>(report.served) / seconds;
    report.throughput_gbps =
        static_cast<double>(report.bytes_served) / seconds / 1e9;
  }
  report.routed = routed_;
  std::int64_t total_routed = 0;
  std::int64_t max_routed = 0;
  for (const std::int64_t n : routed_) {
    total_routed += n;
    max_routed = std::max(max_routed, n);
  }
  if (total_routed > 0) {
    report.imbalance = static_cast<double>(max_routed) * options_.nodes /
                       static_cast<double>(total_routed);
  }
  for (const auto& node : nodes_) {
    report.node_reports.push_back(node->report());
  }
  if (membership_on_) {
    report.membership_aware = true;
    MembershipReport& m = report.membership;
    m.crashes = crashes_;
    m.restarts = restarts_;
    m.drains = drains_;
    m.drain_flushed = drain_flushed_;
    m.replayed = replayed_;
    m.redirected = redirected_;
    m.duplicate_suppressed = dup_suppressed_;
    m.replay_gb = static_cast<double>(replay_bytes_) / 1e9;
    m.detections = static_cast<std::int64_t>(detection_ms_.size());
    if (!detection_ms_.empty()) {
      double sum = 0.0;
      for (const double ms : detection_ms_) {
        sum += ms;
        m.detection_max_ms = std::max(m.detection_max_ms, ms);
      }
      m.detection_mean_ms = sum / static_cast<double>(detection_ms_.size());
    }
    m.transitions = static_cast<std::int64_t>(table_->log().size());
    for (int i = 0; i < options_.nodes; ++i) {
      m.final_states.push_back(membership::node_state_name(table_->state(i)));
    }
  }
  return report;
}

profile::ConservationTotals Cluster::conservation_totals() const {
  profile::ConservationTotals totals;
  for (const auto& node : nodes_) {
    const profile::ConservationTotals t = node->conservation_totals();
    totals.gpu_busy_ps += t.gpu_busy_ps;
    totals.cpu_busy_ps += t.cpu_busy_ps;
    totals.um_bytes += t.um_bytes;
  }
  totals.transfer_bytes = transfer_bytes_total_;
  totals.replay_bytes = replay_bytes_;
  return totals;
}

void Cluster::feed_slo(slo::Monitor& monitor) const {
  if (passthrough()) {
    monitor.feed(*nodes_[0]);
    return;
  }
  for (std::size_t i = 0; i < monitor.objectives().size(); ++i) {
    const auto& objective = monitor.objectives()[i];
    if (objective.kind == slo::ObjectiveKind::kAvailability) {
      for (const auto& record : records_) {
        monitor.record(i, record.record.completion, true);
      }
      for (const SimTime at : rejected_at_) monitor.record(i, at, false);
      for (const SimTime at : shed_at_) monitor.record(i, at, false);
    } else {
      for (const auto& record : records_) {
        monitor.record_latency(i, record.record.completion,
                               to_ms(record.latency()));
      }
    }
  }
}

}  // namespace ghs::cluster
