// Unified-memory driver policy knobs.
//
// In UM mode (`-gpu=mem:unified` on the paper's toolchain) heap allocations
// behave like CUDA managed memory: pages first-touch in the memory of the
// initialising processor and move under a driver policy when the other
// processor accesses them. Two policies are modelled:
//
//  * kFaultEager   — the default, matching managed-memory semantics the
//    paper describes for the Grace-Hopper testbed: the first GPU touch of a
//    CPU-resident page fault-migrates it to HBM at the (slow) fault-handling
//    rate, after which it stays in HBM. This is what makes allocation site
//    A1 warm across the paper's p-sweep while A2 pays the cold migration in
//    every p-experiment.
//  * kAccessCounter — Hopper's access-counter-based delayed migration: a
//    page is served remotely over NVLink-C2C until it has been touched in
//    `gpu_access_threshold` passes, then migrates in the background. Kept
//    for the UM-policy ablation bench.
//  * kNone          — pages never move; remote accesses stay remote.
//
// CPU-side migrate-back is off by default (cpu_access_threshold == 0):
// on the testbed, CPU accesses to HBM-resident managed pages do not pull
// them back, which is exactly why the paper's CPU-only run with A1 is
// 1.367x slower than with A2.
#pragma once

#include "ghs/util/units.hpp"

namespace ghs::um {

enum class MigrationMode { kNone, kFaultEager, kAccessCounter };

const char* migration_mode_name(MigrationMode mode);

struct UmPolicy {
  /// Migration granularity. GH UM moves data in large chunks; 2 MiB is the
  /// effective unit for heap-sized streaming allocations.
  Bytes page_size = 2 * kMiB;

  MigrationMode mode = MigrationMode::kFaultEager;

  /// Effective throughput of fault-driven first-touch migration (page fault
  /// handling + unmap/remap + copy). Far below link speed; measured
  /// first-touch streams on GH-class systems land in the 10–30 GB/s range.
  /// Calibrated against the paper's GPU-only-in-UM reference level.
  Bandwidth fault_migration_bw = Bandwidth::from_gbps(11.0);

  /// kAccessCounter only: full passes over a page by the GPU before the
  /// driver migrates it to HBM.
  int gpu_access_threshold = 16;

  /// Passes over a page by the CPU before migrating it back to LPDDR;
  /// 0 disables migrate-back (the testbed default).
  int cpu_access_threshold = 0;

  /// Rate at which read-duplicated copies are established on first access
  /// (read-mostly advice); faster than fault migration because no unmap is
  /// needed, still driver-managed.
  Bandwidth duplication_bw = Bandwidth::from_gbps(40.0);
};

}  // namespace ghs::um
