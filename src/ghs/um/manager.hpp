// Page-granular unified-memory manager.
//
// Device models do not touch pages directly; for every streaming pass over
// a managed range they ask for a *pass plan* — the list of contiguous
// segments, each with the memory it will be served from, an optional rate
// cap (fault-driven migration throttles the reader), and whether its pages
// flip residency when the segment's flow completes. The manager also owns
// the access counters and launches background migrations in
// access-counter mode.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ghs/mem/topology.hpp"
#include "ghs/mem/transfer.hpp"
#include "ghs/telemetry/flight_recorder.hpp"
#include "ghs/telemetry/registry.hpp"
#include "ghs/trace/tracer.hpp"
#include "ghs/um/policy.hpp"
#include "ghs/util/units.hpp"

namespace ghs::um {

using AllocId = std::uint32_t;

enum class Accessor { kGpu, kCpu };

const char* accessor_name(Accessor accessor);

/// One contiguous piece of a pass plan.
struct SegmentPlan {
  Bytes offset = 0;
  Bytes length = 0;
  /// Memory the bytes are served from.
  mem::RegionId source = mem::RegionId::kLpddr;
  /// True when the segment's pages move to the accessor's local memory as a
  /// side effect of the access (fault-eager migration). The device must
  /// call UmManager::complete_segment once the segment's flow finishes.
  bool migrate_on_access = false;
  /// True when the access establishes a read-duplicated replica instead of
  /// moving the pages (read-mostly allocations). The device must call
  /// UmManager::complete_duplication once the segment's flow finishes.
  bool duplicate_on_access = false;
  /// Aggregate rate cap for the segment's flow in bytes/s; 0 = uncapped.
  double rate_cap = 0.0;
};

struct UmStats {
  std::int64_t fault_migrations = 0;       // fault-eager segment flips
  std::int64_t counter_migrations = 0;     // background migrations started
  Bytes bytes_migrated_to_hbm = 0;
  Bytes bytes_migrated_to_lpddr = 0;
  Bytes remote_bytes_gpu = 0;              // GPU bytes served from LPDDR
  Bytes remote_bytes_cpu = 0;              // CPU bytes served from HBM
  Bytes bytes_duplicated = 0;              // read-mostly replicas created
};

class UmManager {
 public:
  UmManager(mem::Topology& topology, mem::TransferEngine& transfers,
            UmPolicy policy);

  UmManager(const UmManager&) = delete;
  UmManager& operator=(const UmManager&) = delete;

  const UmPolicy& policy() const { return policy_; }

  /// Allocates a managed range whose pages first-touch in `first_touch`
  /// (the paper's arrays are initialised on the CPU, i.e. kLpddr).
  AllocId allocate(Bytes size, mem::RegionId first_touch, std::string label);

  /// Releases the allocation; its id becomes invalid.
  void free(AllocId id);

  Bytes size(AllocId id) const;

  /// Bytes of [offset, offset+length) currently resident in `region`.
  Bytes resident_bytes(AllocId id, mem::RegionId region) const;
  Bytes resident_bytes(AllocId id, mem::RegionId region, Bytes offset,
                       Bytes length) const;

  /// Plans one streaming pass of `accessor` over [offset, offset+length):
  /// returns serving segments, bumps access counters, and (in
  /// access-counter mode) starts background migrations for pages that
  /// crossed their threshold. Call once per kernel iteration / CPU sweep.
  std::vector<SegmentPlan> plan_pass(AllocId id, Accessor accessor,
                                     Bytes offset, Bytes length);

  /// Reports that a migrate_on_access segment's flow finished; flips its
  /// pages to `new_residency`.
  void complete_segment(AllocId id, Bytes offset, Bytes length,
                        mem::RegionId new_residency);

  /// Reports that a duplicate_on_access segment's flow finished; its pages
  /// now have replicas in both memories.
  void complete_duplication(AllocId id, Bytes offset, Bytes length);

  /// Read-mostly advice (cudaMemAdviseSetReadMostly analogue): marks the
  /// allocation read-duplicable. A processor's first pass over a
  /// non-duplicated page establishes a local copy at the duplication rate;
  /// afterwards both processors read their local replica at full speed.
  /// Writes are not modelled (the reduction input is read-only); freeing
  /// or prefetching drops replicas.
  void advise_read_mostly(AllocId id);
  bool read_mostly(AllocId id) const;

  /// Bytes of [0, size) currently replicated in both memories.
  Bytes duplicated_bytes(AllocId id) const;

  /// Programmatic placement (cudaMemPrefetchAsync analogue): bulk-moves
  /// the pages of [offset, offset+length) not already in `destination`
  /// through the migration engine — at full engine rate, not the
  /// fault-handling rate. `on_complete` fires when the last page lands
  /// (immediately if nothing needs to move). Returns the bytes queued.
  Bytes prefetch(AllocId id, Bytes offset, Bytes length,
                 mem::RegionId destination, std::function<void()> on_complete);

  const UmStats& stats() const { return stats_; }

  /// Installs a span recorder for background migrations (null disables).
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Registers migration/residency instruments and the flight recorder
  /// (null members disable). Residency gauges only track allocations made
  /// after the call.
  void set_telemetry(telemetry::Sink sink);

 private:
  struct Page {
    mem::RegionId residency = mem::RegionId::kLpddr;
    std::uint32_t gpu_passes = 0;
    std::uint32_t cpu_passes = 0;
    bool migrating = false;
    /// Read-mostly allocations only: a replica exists in the non-home
    /// memory, so both processors read locally.
    bool duplicated = false;
  };

  struct Allocation {
    Bytes size = 0;
    std::string label;
    std::vector<Page> pages;
    bool live = false;
    bool read_mostly = false;
  };

  Allocation& alloc(AllocId id);
  const Allocation& alloc(AllocId id) const;
  /// Index range [first, last) of pages overlapping [offset, offset+len).
  std::pair<std::size_t, std::size_t> page_span(const Allocation& a,
                                                Bytes offset,
                                                Bytes length) const;
  void start_background_migration(AllocId id, std::size_t first_page,
                                  std::size_t last_page,
                                  mem::RegionId destination);

  /// Moves `bytes` of the residency gauges from one tier to another
  /// (no-op when telemetry is off; `from == to` is allowed and a no-op).
  void shift_residency(mem::RegionId from, mem::RegionId to, Bytes bytes);
  telemetry::Gauge* residency_gauge(mem::RegionId region) const;

  mem::Topology& topology_;
  mem::TransferEngine& transfers_;
  UmPolicy policy_;
  trace::Tracer* tracer_ = nullptr;
  telemetry::FlightRecorder* flight_ = nullptr;
  telemetry::Counter* m_fault_migrations_ = nullptr;
  telemetry::Counter* m_background_migrations_ = nullptr;
  telemetry::Counter* m_migrated_hbm_ = nullptr;
  telemetry::Counter* m_migrated_lpddr_ = nullptr;
  telemetry::Counter* m_remote_gpu_ = nullptr;
  telemetry::Counter* m_remote_cpu_ = nullptr;
  telemetry::Counter* m_duplicated_ = nullptr;
  telemetry::Gauge* m_resident_hbm_ = nullptr;
  telemetry::Gauge* m_resident_lpddr_ = nullptr;
  std::vector<Allocation> allocations_;
  UmStats stats_;
};

}  // namespace ghs::um
