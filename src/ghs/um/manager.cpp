#include "ghs/um/manager.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "ghs/util/error.hpp"
#include "ghs/util/log.hpp"
#include "ghs/util/math.hpp"

namespace ghs::um {

const char* accessor_name(Accessor accessor) {
  return accessor == Accessor::kGpu ? "GPU" : "CPU";
}

const char* migration_mode_name(MigrationMode mode) {
  switch (mode) {
    case MigrationMode::kNone:
      return "none";
    case MigrationMode::kFaultEager:
      return "fault-eager";
    case MigrationMode::kAccessCounter:
      return "access-counter";
  }
  return "?";
}

UmManager::UmManager(mem::Topology& topology, mem::TransferEngine& transfers,
                     UmPolicy policy)
    : topology_(topology), transfers_(transfers), policy_(policy) {
  GHS_REQUIRE(policy_.page_size > 0, "page_size=" << policy_.page_size);
  GHS_REQUIRE(policy_.fault_migration_bw.bytes_per_second > 0.0,
              "fault migration bandwidth must be positive");
  GHS_REQUIRE(policy_.gpu_access_threshold > 0, "gpu_access_threshold");
  GHS_REQUIRE(policy_.cpu_access_threshold >= 0, "cpu_access_threshold");
}

AllocId UmManager::allocate(Bytes size, mem::RegionId first_touch,
                            std::string label) {
  GHS_REQUIRE(size > 0, "allocation '" << label << "' has size " << size);
  Allocation a;
  a.size = size;
  a.label = std::move(label);
  a.live = true;
  const auto n_pages =
      static_cast<std::size_t>(ceil_div(size, policy_.page_size));
  a.pages.assign(n_pages, Page{first_touch, 0, 0, false});
  allocations_.push_back(std::move(a));
  if (telemetry::Gauge* g = residency_gauge(first_touch)) {
    g->add(static_cast<double>(size));
  }
  return static_cast<AllocId>(allocations_.size() - 1);
}

void UmManager::free(AllocId id) {
  Allocation& a = alloc(id);
  if (m_resident_hbm_ != nullptr) {
    for (std::size_t p = 0; p < a.pages.size(); ++p) {
      const Bytes page_bytes =
          std::min(static_cast<Bytes>(p + 1) * policy_.page_size, a.size) -
          static_cast<Bytes>(p) * policy_.page_size;
      residency_gauge(a.pages[p].residency)
          ->add(-static_cast<double>(page_bytes));
    }
  }
  a.live = false;
  a.pages.clear();
}

void UmManager::set_telemetry(telemetry::Sink sink) {
  flight_ = sink.flight;
  if (sink.metrics == nullptr) {
    m_fault_migrations_ = nullptr;
    m_background_migrations_ = nullptr;
    m_migrated_hbm_ = nullptr;
    m_migrated_lpddr_ = nullptr;
    m_remote_gpu_ = nullptr;
    m_remote_cpu_ = nullptr;
    m_duplicated_ = nullptr;
    m_resident_hbm_ = nullptr;
    m_resident_lpddr_ = nullptr;
    return;
  }
  telemetry::Registry& r = *sink.metrics;
  m_fault_migrations_ =
      &r.counter("ghs_um_fault_migrations_total", {},
                 "Fault-eager segments that flipped residency on access");
  m_background_migrations_ =
      &r.counter("ghs_um_background_migrations_total", {},
                 "Background migrations started by the access counters");
  m_migrated_hbm_ =
      &r.counter("ghs_um_migrated_bytes_total", {{"dest", "hbm"}},
                 "Bytes whose pages migrated, by destination tier");
  m_migrated_lpddr_ =
      &r.counter("ghs_um_migrated_bytes_total", {{"dest", "lpddr"}},
                 "Bytes whose pages migrated, by destination tier");
  m_remote_gpu_ =
      &r.counter("ghs_um_remote_bytes_total", {{"accessor", "gpu"}},
                 "Bytes served over NVLink-C2C instead of local memory");
  m_remote_cpu_ =
      &r.counter("ghs_um_remote_bytes_total", {{"accessor", "cpu"}},
                 "Bytes served over NVLink-C2C instead of local memory");
  m_duplicated_ = &r.counter("ghs_um_duplicated_bytes_total", {},
                             "Read-mostly replica bytes established");
  m_resident_hbm_ = &r.gauge("ghs_um_resident_bytes", {{"tier", "hbm"}},
                             "Managed bytes currently resident, by tier");
  m_resident_lpddr_ = &r.gauge("ghs_um_resident_bytes", {{"tier", "lpddr"}},
                               "Managed bytes currently resident, by tier");
}

telemetry::Gauge* UmManager::residency_gauge(mem::RegionId region) const {
  return region == mem::RegionId::kHbm ? m_resident_hbm_ : m_resident_lpddr_;
}

void UmManager::shift_residency(mem::RegionId from, mem::RegionId to,
                                Bytes bytes) {
  if (m_resident_hbm_ == nullptr || from == to || bytes == 0) return;
  residency_gauge(from)->add(-static_cast<double>(bytes));
  residency_gauge(to)->add(static_cast<double>(bytes));
}

Bytes UmManager::size(AllocId id) const { return alloc(id).size; }

UmManager::Allocation& UmManager::alloc(AllocId id) {
  GHS_REQUIRE(id < allocations_.size(), "allocation id " << id);
  Allocation& a = allocations_[id];
  GHS_REQUIRE(a.live, "allocation " << id << " ('" << a.label
                                    << "') was freed");
  return a;
}

const UmManager::Allocation& UmManager::alloc(AllocId id) const {
  GHS_REQUIRE(id < allocations_.size(), "allocation id " << id);
  const Allocation& a = allocations_[id];
  GHS_REQUIRE(a.live, "allocation " << id << " ('" << a.label
                                    << "') was freed");
  return a;
}

std::pair<std::size_t, std::size_t> UmManager::page_span(const Allocation& a,
                                                         Bytes offset,
                                                         Bytes length) const {
  GHS_REQUIRE(offset >= 0 && length >= 0 && offset + length <= a.size,
              "range [" << offset << ", " << offset + length
                        << ") outside allocation of size " << a.size);
  const auto first = static_cast<std::size_t>(offset / policy_.page_size);
  const auto last = static_cast<std::size_t>(
      ceil_div(offset + length, policy_.page_size));
  return {first, last};
}

Bytes UmManager::resident_bytes(AllocId id, mem::RegionId region) const {
  return resident_bytes(id, region, 0, size(id));
}

Bytes UmManager::resident_bytes(AllocId id, mem::RegionId region, Bytes offset,
                                Bytes length) const {
  const Allocation& a = alloc(id);
  const auto [first, last] = page_span(a, offset, length);
  Bytes total = 0;
  for (std::size_t p = first; p < last; ++p) {
    if (a.pages[p].residency != region) continue;
    const Bytes page_begin = static_cast<Bytes>(p) * policy_.page_size;
    const Bytes begin = std::max(offset, page_begin);
    const Bytes end =
        std::min(offset + length, std::min(page_begin + policy_.page_size,
                                           a.size));
    total += end - begin;
  }
  return total;
}

std::vector<SegmentPlan> UmManager::plan_pass(AllocId id, Accessor accessor,
                                              Bytes offset, Bytes length) {
  Allocation& a = alloc(id);
  if (length == 0) return {};
  const auto [first, last] = page_span(a, offset, length);
  const mem::RegionId local = accessor == Accessor::kGpu
                                  ? mem::RegionId::kHbm
                                  : mem::RegionId::kLpddr;

  // Per-page serving decision, then coalesce identical neighbours.
  struct Decision {
    mem::RegionId source;
    bool migrate_on_access;
    bool duplicate_on_access;
  };
  std::vector<SegmentPlan> plan;
  std::vector<std::pair<std::size_t, std::size_t>> background_runs;
  std::size_t bg_run_start = last;  // sentinel: no open run

  const auto close_bg_run = [&](std::size_t end) {
    if (bg_run_start < end) background_runs.emplace_back(bg_run_start, end);
    bg_run_start = last;
  };

  for (std::size_t p = first; p < last; ++p) {
    Page& page = a.pages[p];
    Decision d{page.residency, false, false};
    bool wants_background = false;

    if (a.read_mostly) {
      // Read-duplication: a replica (or the home copy) serves locally;
      // otherwise this pass establishes the replica.
      if (page.residency == local || page.duplicated) {
        d.source = local;
      } else {
        auto& passes =
            accessor == Accessor::kGpu ? page.gpu_passes : page.cpu_passes;
        ++passes;
        if (!page.migrating) {
          d.duplicate_on_access = true;
          page.migrating = true;
        }
      }
    } else if (page.residency != local) {
      auto& passes =
          accessor == Accessor::kGpu ? page.gpu_passes : page.cpu_passes;
      ++passes;
      if (accessor == Accessor::kGpu) {
        switch (policy_.mode) {
          case MigrationMode::kNone:
            break;
          case MigrationMode::kFaultEager:
            if (!page.migrating) {
              d.migrate_on_access = true;
              page.migrating = true;
            }
            break;
          case MigrationMode::kAccessCounter:
            if (!page.migrating &&
                passes >= static_cast<std::uint32_t>(
                              policy_.gpu_access_threshold)) {
              wants_background = true;
              page.migrating = true;
            }
            break;
        }
      } else if (policy_.cpu_access_threshold > 0 && !page.migrating &&
                 passes >= static_cast<std::uint32_t>(
                               policy_.cpu_access_threshold)) {
        wants_background = true;
        page.migrating = true;
      }
    }

    if (wants_background) {
      if (bg_run_start == last) bg_run_start = p;
    } else {
      close_bg_run(p);
    }

    const Bytes page_begin = static_cast<Bytes>(p) * policy_.page_size;
    const Bytes begin = std::max(offset, page_begin);
    const Bytes end = std::min(offset + length,
                               std::min(page_begin + policy_.page_size,
                                        a.size));
    const Bytes seg_len = end - begin;
    GHS_CHECK(seg_len > 0, "empty page slice");

    if (d.source != local) {
      auto& remote = accessor == Accessor::kGpu ? stats_.remote_bytes_gpu
                                                : stats_.remote_bytes_cpu;
      remote += seg_len;
      telemetry::Counter* counter =
          accessor == Accessor::kGpu ? m_remote_gpu_ : m_remote_cpu_;
      if (counter != nullptr) counter->inc(seg_len);
    }

    if (!plan.empty() && plan.back().source == d.source &&
        plan.back().migrate_on_access == d.migrate_on_access &&
        plan.back().duplicate_on_access == d.duplicate_on_access &&
        plan.back().offset + plan.back().length == begin) {
      plan.back().length += seg_len;
    } else {
      SegmentPlan seg;
      seg.offset = begin;
      seg.length = seg_len;
      seg.source = d.source;
      seg.migrate_on_access = d.migrate_on_access;
      seg.duplicate_on_access = d.duplicate_on_access;
      if (d.migrate_on_access) {
        seg.rate_cap = policy_.fault_migration_bw.bytes_per_second;
      } else if (d.duplicate_on_access) {
        seg.rate_cap = policy_.duplication_bw.bytes_per_second;
      }
      plan.push_back(seg);
    }
  }
  close_bg_run(last);

  for (const auto& [run_first, run_last] : background_runs) {
    start_background_migration(id, run_first, run_last, local);
  }
  if (accessor == Accessor::kGpu) {
    for (const auto& seg : plan) {
      if (seg.migrate_on_access) {
        ++stats_.fault_migrations;
        if (m_fault_migrations_ != nullptr) m_fault_migrations_->inc();
        if (flight_ != nullptr) {
          flight_->record(topology_.sim().now(), "um", "fault_migration",
                          a.label + "[" + std::to_string(seg.offset) + "," +
                              std::to_string(seg.offset + seg.length) + ")");
        }
      }
    }
  }
  return plan;
}

void UmManager::start_background_migration(AllocId id, std::size_t first_page,
                                           std::size_t last_page,
                                           mem::RegionId destination) {
  Allocation& a = alloc(id);
  const Bytes begin = static_cast<Bytes>(first_page) * policy_.page_size;
  const Bytes end =
      std::min(static_cast<Bytes>(last_page) * policy_.page_size, a.size);
  const Bytes bytes = end - begin;
  GHS_CHECK(bytes > 0, "empty background migration");
  const mem::RegionId from = a.pages[first_page].residency;
  ++stats_.counter_migrations;
  if (m_background_migrations_ != nullptr) m_background_migrations_->inc();
  std::ostringstream label;
  label << "um-migrate:" << a.label << "[" << begin << "," << end << ")->"
        << mem::region_name(destination);
  const SimTime started = topology_.sim().now();
  if (flight_ != nullptr) {
    flight_->record(started, "um", "migration_start", label.str());
  }
  transfers_.migrate(
      bytes, from, destination,
      [this, id, begin, bytes, destination, started,
       name = label.str()] {
        trace::record_span(tracer_, trace::Track::kUmMigration, name,
                           started, topology_.sim().now(),
                           format_bytes(bytes));
        complete_segment(id, begin, bytes, destination);
      },
      label.str());
}

void UmManager::advise_read_mostly(AllocId id) {
  alloc(id).read_mostly = true;
}

bool UmManager::read_mostly(AllocId id) const {
  return alloc(id).read_mostly;
}

Bytes UmManager::duplicated_bytes(AllocId id) const {
  const Allocation& a = alloc(id);
  Bytes total = 0;
  for (std::size_t p = 0; p < a.pages.size(); ++p) {
    if (!a.pages[p].duplicated) continue;
    total += std::min(static_cast<Bytes>(p + 1) * policy_.page_size,
                      a.size) -
             static_cast<Bytes>(p) * policy_.page_size;
  }
  return total;
}

void UmManager::complete_duplication(AllocId id, Bytes offset, Bytes length) {
  GHS_REQUIRE(id < allocations_.size(), "allocation id " << id);
  Allocation& a = allocations_[id];
  if (!a.live) return;
  const auto [first, last] = page_span(a, offset, length);
  Bytes fresh = 0;
  for (std::size_t p = first; p < last; ++p) {
    Page& page = a.pages[p];
    if (!page.duplicated) {
      const Bytes page_bytes =
          std::min(static_cast<Bytes>(p + 1) * policy_.page_size, a.size) -
          static_cast<Bytes>(p) * policy_.page_size;
      stats_.bytes_duplicated += page_bytes;
      fresh += page_bytes;
    }
    page.duplicated = true;
    page.migrating = false;
  }
  if (fresh > 0 && m_duplicated_ != nullptr) m_duplicated_->inc(fresh);
}

Bytes UmManager::prefetch(AllocId id, Bytes offset, Bytes length,
                          mem::RegionId destination,
                          std::function<void()> on_complete) {
  Allocation& a = alloc(id);
  const auto [first, last] = page_span(a, offset, length);
  // Collect runs of pages that need to move and are not already in flight.
  struct Run {
    std::size_t first;
    std::size_t last;
    mem::RegionId from;
  };
  std::vector<Run> runs;
  for (std::size_t p = first; p < last; ++p) {
    Page& page = a.pages[p];
    if (page.residency == destination || page.migrating) continue;
    page.migrating = true;
    if (!runs.empty() && runs.back().last == p &&
        runs.back().from == page.residency) {
      runs.back().last = p + 1;
    } else {
      runs.push_back(Run{p, p + 1, page.residency});
    }
  }
  if (runs.empty()) {
    if (on_complete) on_complete();
    return 0;
  }
  Bytes total = 0;
  auto pending = std::make_shared<std::size_t>(runs.size());
  auto done = std::make_shared<std::function<void()>>(std::move(on_complete));
  const SimTime started = topology_.sim().now();
  for (const auto& run : runs) {
    const Bytes begin = static_cast<Bytes>(run.first) * policy_.page_size;
    const Bytes end =
        std::min(static_cast<Bytes>(run.last) * policy_.page_size, a.size);
    const Bytes bytes = end - begin;
    total += bytes;
    std::ostringstream label;
    label << "um-prefetch:" << a.label << "[" << begin << "," << end << ")->"
          << mem::region_name(destination);
    transfers_.migrate(
        bytes, run.from, destination,
        [this, id, begin, bytes, destination, pending, done, started,
         name = label.str()] {
          trace::record_span(tracer_, trace::Track::kUmMigration, name,
                             started, topology_.sim().now(),
                             format_bytes(bytes));
          complete_segment(id, begin, bytes, destination);
          GHS_CHECK(*pending > 0, "prefetch completion underflow");
          if (--*pending == 0 && *done) (*done)();
        },
        label.str());
  }
  return total;
}

void UmManager::complete_segment(AllocId id, Bytes offset, Bytes length,
                                 mem::RegionId new_residency) {
  GHS_REQUIRE(id < allocations_.size(), "allocation id " << id);
  Allocation& a = allocations_[id];
  if (!a.live) return;  // allocation freed while a migration was in flight
  const auto [first, last] = page_span(a, offset, length);
  Bytes moved = 0;
  for (std::size_t p = first; p < last; ++p) {
    Page& page = a.pages[p];
    if (page.residency != new_residency) {
      const Bytes page_bytes =
          std::min(static_cast<Bytes>(p + 1) * policy_.page_size, a.size) -
          static_cast<Bytes>(p) * policy_.page_size;
      if (new_residency == mem::RegionId::kHbm) {
        stats_.bytes_migrated_to_hbm += page_bytes;
      } else {
        stats_.bytes_migrated_to_lpddr += page_bytes;
      }
      moved += page_bytes;
    }
    page.residency = new_residency;
    page.migrating = false;
    page.duplicated = false;  // moving a page collapses its replica
    page.gpu_passes = 0;
    page.cpu_passes = 0;
  }
  if (moved > 0) {
    // Two tiers: everything that moved came from the other one.
    const mem::RegionId source = new_residency == mem::RegionId::kHbm
                                     ? mem::RegionId::kLpddr
                                     : mem::RegionId::kHbm;
    telemetry::Counter* counter = new_residency == mem::RegionId::kHbm
                                      ? m_migrated_hbm_
                                      : m_migrated_lpddr_;
    if (counter != nullptr) counter->inc(moved);
    shift_residency(source, new_residency, moved);
    if (flight_ != nullptr) {
      flight_->record(topology_.sim().now(), "um", "page_migration",
                      a.label + ": " + format_bytes(moved) + " -> " +
                          mem::region_name(new_residency));
    }
  }
}

}  // namespace ghs::um
