#include "ghs/fault/breaker.hpp"

#include "ghs/util/error.hpp"

namespace ghs::fault {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  GHS_UNREACHABLE("breaker state " << static_cast<int>(state));
}

CircuitBreaker::CircuitBreaker(BreakerOptions options) : options_(options) {
  GHS_REQUIRE(options_.failure_threshold > 0,
              "failure_threshold=" << options_.failure_threshold);
  GHS_REQUIRE(options_.open_duration > 0,
              "open_duration=" << options_.open_duration);
  GHS_REQUIRE(options_.close_threshold > 0,
              "close_threshold=" << options_.close_threshold);
}

void CircuitBreaker::set_on_transition(TransitionHook hook) {
  on_transition_ = std::move(hook);
}

void CircuitBreaker::transition(BreakerState to, SimTime at) {
  const BreakerState from = state_;
  if (from == to) return;
  state_ = to;
  if (to == BreakerState::kOpen) {
    ++opens_;
    opened_at_ = at;
  }
  if (to == BreakerState::kHalfOpen) half_open_successes_ = 0;
  if (on_transition_) on_transition_(from, to, at);
}

bool CircuitBreaker::allow(SimTime now) {
  switch (state_) {
    case BreakerState::kClosed:
    case BreakerState::kHalfOpen:
      return true;
    case BreakerState::kOpen:
      if (now >= probe_at()) {
        transition(BreakerState::kHalfOpen, now);
        return true;
      }
      return false;
  }
  GHS_UNREACHABLE("breaker state " << static_cast<int>(state_));
}

void CircuitBreaker::record_success(SimTime now) {
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen &&
      ++half_open_successes_ >= options_.close_threshold) {
    transition(BreakerState::kClosed, now);
  }
}

void CircuitBreaker::record_failure(SimTime now) {
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: straight back to open for another cool-down.
    consecutive_failures_ = 0;
    transition(BreakerState::kOpen, now);
    return;
  }
  if (state_ == BreakerState::kClosed &&
      ++consecutive_failures_ >= options_.failure_threshold) {
    consecutive_failures_ = 0;
    transition(BreakerState::kOpen, now);
  }
}

}  // namespace ghs::fault
