// Deterministic fault injector: interprets a FaultPlan against the
// simulator clock. All queries are pure functions of (plan, seed, query
// sequence); the only randomness is the per-launch Bernoulli draw for
// probabilistic kernel faults, which comes from a private xoshiro stream
// seeded once — the simulation that drives the queries is itself
// deterministic, so two runs from the same (plan, seed) replay the exact
// same injections, byte for byte.
#pragma once

#include <cstdint>
#include <vector>

#include "ghs/fault/plan.hpp"
#include "ghs/telemetry/flight_recorder.hpp"
#include "ghs/telemetry/registry.hpp"
#include "ghs/util/rng.hpp"

namespace ghs::fault {

struct InjectorStats {
  /// Transient kernel failures injected (probability draws or windows).
  std::int64_t kernel_faults = 0;
  /// Launches failed because a device-down window covered them.
  std::int64_t outage_faults = 0;
  /// Launches served under a bandwidth brown-out (scale > 1 applied).
  std::int64_t slowed_launches = 0;
  /// Unified launches served under a migration-stall episode.
  std::int64_t stalled_launches = 0;
};

class Injector {
 public:
  /// `sink` instruments injections (ghs_fault_* counters + flight events);
  /// null members disable, following the repository's opt-in contract.
  Injector(FaultPlan plan, std::uint64_t seed, telemetry::Sink sink = {});

  const FaultPlan& plan() const { return plan_; }
  const InjectorStats& stats() const { return stats_; }

  /// Whether a launch starting on `target` at `now` suffers a transient
  /// kernel fault; a true result is recorded as an injection. Consumes one
  /// RNG draw per active probabilistic spec (never for p=0/p=1 specs), so
  /// the stream stays aligned across same-(plan, seed) replays of the same
  /// simulation.
  bool kernel_fails(Target target, SimTime now);

  /// Whether `target` is inside a device-down window at `now`.
  bool device_down(Target target, SimTime now) const;

  /// Whether any device-down window overlaps the launch span [begin, end).
  bool outage_overlaps(Target target, SimTime begin, SimTime end) const;

  /// Service-time multiplier (>= 1.0) from bandwidth episodes active at
  /// `now`: an episode at scale s stretches service by 1/s; overlapping
  /// episodes compound.
  double service_scale(Target target, SimTime now) const;

  /// Service-time multiplier (>= 1.0) for unified-memory launches from
  /// migration-stall episodes active at `now`.
  double migration_stall_scale(SimTime now) const;

  /// Accounting entry points for the layer that applies the verdicts (the
  /// DevicePool), so outage failures and slow-down episodes show up in
  /// stats and telemetry exactly once per affected launch.
  void note_outage_fault(Target target, SimTime now);
  void note_slowed_launch(Target target, SimTime now, double scale);
  void note_stalled_launch(SimTime now, double scale);

  /// Every distinct window boundary in the plan, sorted ascending. The
  /// serve layer schedules a dispatch poke at each so a device coming back
  /// up (or a brown-out lifting) is noticed even when no arrival or
  /// completion lands nearby.
  std::vector<SimTime> transitions() const;

 private:
  FaultPlan plan_;
  Rng rng_;
  InjectorStats stats_;
  telemetry::FlightRecorder* flight_ = nullptr;
  telemetry::Counter* m_kernel_faults_[2] = {nullptr, nullptr};
  telemetry::Counter* m_outage_faults_[2] = {nullptr, nullptr};
  telemetry::Counter* m_slowed_[2] = {nullptr, nullptr};
  telemetry::Counter* m_stalled_ = nullptr;
};

}  // namespace ghs::fault
