#include "ghs/fault/injector.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

namespace ghs::fault {

namespace {

std::string scale_detail(const char* what, double scale) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s x%.3f", what, scale);
  return buf;
}

}  // namespace

Injector::Injector(FaultPlan plan, std::uint64_t seed, telemetry::Sink sink)
    : plan_(std::move(plan)), rng_(seed) {
  flight_ = sink.flight;
  if (sink.metrics != nullptr) {
    telemetry::Registry& r = *sink.metrics;
    for (const Target target : {Target::kGpu, Target::kCpu}) {
      const telemetry::Labels labels = {{"device", target_name(target)}};
      const auto index = static_cast<std::size_t>(target);
      m_kernel_faults_[index] =
          &r.counter("ghs_fault_kernel_failures_total", labels,
                     "Transient kernel failures injected per device");
      m_outage_faults_[index] =
          &r.counter("ghs_fault_outage_failures_total", labels,
                     "Launches failed by a device-down window");
      m_slowed_[index] =
          &r.counter("ghs_fault_slowed_launches_total", labels,
                     "Launches served under a bandwidth brown-out");
    }
    m_stalled_ = &r.counter("ghs_fault_stalled_launches_total", {},
                            "Unified launches under a migration stall");
  }
}

bool Injector::kernel_fails(Target target, SimTime now) {
  bool failed = false;
  for (const auto& spec : plan_.kernel_faults) {
    if (spec.target != target) continue;
    if (!spec.window.unbounded() && !spec.window.contains(now)) continue;
    if (spec.probability <= 0.0) continue;
    if (spec.probability >= 1.0) {
      failed = true;
      continue;
    }
    // Every active fractional spec draws exactly once, even after another
    // spec already failed the launch, so the RNG stream depends only on
    // the (deterministic) sequence of launch times.
    if (rng_.next_double() < spec.probability) failed = true;
  }
  if (failed) {
    ++stats_.kernel_faults;
    const auto index = static_cast<std::size_t>(target);
    if (m_kernel_faults_[index] != nullptr) m_kernel_faults_[index]->inc();
    telemetry::record_event(flight_, now, "fault", "kernel_fault",
                            target_name(target));
  }
  return failed;
}

bool Injector::device_down(Target target, SimTime now) const {
  for (const auto& outage : plan_.outages) {
    if (outage.target == target && outage.window.contains(now)) return true;
  }
  return false;
}

bool Injector::outage_overlaps(Target target, SimTime begin,
                               SimTime end) const {
  for (const auto& outage : plan_.outages) {
    if (outage.target == target && outage.window.overlaps(begin, end)) {
      return true;
    }
  }
  return false;
}

double Injector::service_scale(Target target, SimTime now) const {
  double scale = 1.0;
  for (const auto& episode : plan_.bandwidth_episodes) {
    if (episode.target != target) continue;
    if (!episode.window.unbounded() && !episode.window.contains(now)) {
      continue;
    }
    scale *= 1.0 / episode.scale;
  }
  return scale;
}

double Injector::migration_stall_scale(SimTime now) const {
  double scale = 1.0;
  for (const auto& episode : plan_.migration_stalls) {
    if (!episode.window.unbounded() && !episode.window.contains(now)) {
      continue;
    }
    scale *= 1.0 / episode.scale;
  }
  return scale;
}

void Injector::note_outage_fault(Target target, SimTime now) {
  ++stats_.outage_faults;
  const auto index = static_cast<std::size_t>(target);
  if (m_outage_faults_[index] != nullptr) m_outage_faults_[index]->inc();
  telemetry::record_event(flight_, now, "fault", "outage_fault",
                          target_name(target));
}

void Injector::note_slowed_launch(Target target, SimTime now, double scale) {
  ++stats_.slowed_launches;
  const auto index = static_cast<std::size_t>(target);
  if (m_slowed_[index] != nullptr) m_slowed_[index]->inc();
  telemetry::record_event(
      flight_, now, "fault", "slowdown",
      std::string(target_name(target)) + " " + scale_detail("service", scale));
}

void Injector::note_stalled_launch(SimTime now, double scale) {
  ++stats_.stalled_launches;
  if (m_stalled_ != nullptr) m_stalled_->inc();
  telemetry::record_event(flight_, now, "fault", "migration_stall",
                          scale_detail("service", scale));
}

std::vector<SimTime> Injector::transitions() const {
  std::vector<SimTime> times;
  const auto add = [&times](const Window& window) {
    if (window.unbounded()) return;
    times.push_back(window.begin);
    times.push_back(window.end);
  };
  for (const auto& spec : plan_.kernel_faults) add(spec.window);
  for (const auto& episode : plan_.bandwidth_episodes) add(episode.window);
  for (const auto& outage : plan_.outages) add(outage.window);
  for (const auto& episode : plan_.migration_stalls) add(episode.window);
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

}  // namespace ghs::fault
