#include "ghs/fault/plan.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "ghs/util/error.hpp"
#include "ghs/util/strings.hpp"

namespace ghs::fault {

namespace {

// Line-format wrapper around parse_duration that blames the plan line.
SimTime parse_time(const std::string& text, int line_no) {
  try {
    return parse_duration(text);
  } catch (const Error& err) {
    GHS_REQUIRE(false,
                "fault plan line " << line_no << ": " << err.what());
  }
  return 0;
}

Target parse_target(const std::string& text, int line_no) {
  if (text == "gpu") return Target::kGpu;
  if (text == "cpu") return Target::kCpu;
  GHS_REQUIRE(false, "fault plan line " << line_no << ": unknown target '"
                                        << text << "' (gpu|cpu)");
  return Target::kGpu;
}

// Splits "key=value" tokens into the window/probability/scale fields a
// fault line may carry; unknown keys are an error so typos do not silently
// arm a different fault.
struct LineArgs {
  Window window;
  double probability = -1.0;  // < 0 = not given
  double scale = -1.0;
  bool has_window = false;
};

LineArgs parse_args(const std::vector<std::string>& tokens,
                    std::size_t first, int line_no) {
  LineArgs args;
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    GHS_REQUIRE(eq != std::string::npos,
                "fault plan line " << line_no << ": expected key=value, got '"
                                   << tokens[i] << "'");
    const std::string key = tokens[i].substr(0, eq);
    const std::string value = tokens[i].substr(eq + 1);
    if (key == "from") {
      args.window.begin = parse_time(value, line_no);
      args.has_window = true;
    } else if (key == "until") {
      args.window.end = parse_time(value, line_no);
      args.has_window = true;
    } else if (key == "p") {
      try {
        args.probability = std::stod(value);
      } catch (const std::exception&) {
        args.probability = -1.0;
      }
      GHS_REQUIRE(args.probability >= 0.0 && args.probability <= 1.0,
                  "fault plan line " << line_no << ": p='" << value
                                     << "' must be in [0, 1]");
    } else if (key == "scale") {
      try {
        args.scale = std::stod(value);
      } catch (const std::exception&) {
        args.scale = -1.0;
      }
      GHS_REQUIRE(args.scale > 0.0 && args.scale <= 1.0,
                  "fault plan line " << line_no << ": scale='" << value
                                     << "' must be in (0, 1]");
    } else {
      GHS_REQUIRE(false, "fault plan line " << line_no << ": unknown key '"
                                            << key << "'");
    }
  }
  GHS_REQUIRE(!args.has_window || args.window.end > args.window.begin,
              "fault plan line " << line_no << ": until must be after from");
  return args;
}

std::string format_time(SimTime t) {
  // Picoseconds render exactly, so format_plan round-trips through
  // parse_plan without floating-point drift.
  return std::to_string(t) + "ps";
}

std::string format_window(const Window& window) {
  if (window.unbounded()) return "";
  return " from=" + format_time(window.begin) +
         " until=" + format_time(window.end);
}

std::string format_probability(double p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", p);
  return buf;
}

}  // namespace

const char* target_name(Target target) {
  return target == Target::kGpu ? "gpu" : "cpu";
}

SimTime parse_duration(const std::string& text) {
  std::size_t unit = 0;
  while (unit < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[unit])) != 0 ||
          text[unit] == '.' || text[unit] == '-')) {
    ++unit;
  }
  double value = 0.0;
  bool parsed = false;
  try {
    std::size_t pos = 0;
    value = std::stod(text.substr(0, unit), &pos);
    parsed = pos == unit && unit > 0;
  } catch (const std::exception&) {
    parsed = false;
  }
  GHS_REQUIRE(parsed && value >= 0.0, "bad time '" << text << "'");
  const std::string suffix = text.substr(unit);
  double per_unit = 0.0;
  if (suffix == "ps") {
    per_unit = static_cast<double>(kPicosecond);
  } else if (suffix == "ns") {
    per_unit = static_cast<double>(kNanosecond);
  } else if (suffix == "us") {
    per_unit = static_cast<double>(kMicrosecond);
  } else if (suffix == "ms") {
    per_unit = static_cast<double>(kMillisecond);
  } else if (suffix == "s") {
    per_unit = static_cast<double>(kSecond);
  } else {
    GHS_REQUIRE(false,
                "time '" << text << "' needs a ps|ns|us|ms|s unit");
  }
  return static_cast<SimTime>(value * per_unit);
}

NodeCrashPlan parse_crash_plan(const std::string& text) {
  NodeCrashPlan plan;
  // Entries split on commas and whitespace interchangeably so both the
  // compact CLI form "1@300us:2ms,2@1ms" and a spaced file form work.
  std::string normalized = text;
  for (char& c : normalized) {
    if (c == ',') c = ' ';
  }
  std::istringstream words(normalized);
  std::string entry;
  while (words >> entry) {
    const auto at_sep = entry.find('@');
    GHS_REQUIRE(at_sep != std::string::npos && at_sep > 0,
                "crash spec '" << entry << "': expected node@at[:restart]");
    NodeCrash crash;
    try {
      std::size_t pos = 0;
      crash.node = std::stoi(entry.substr(0, at_sep), &pos);
      GHS_REQUIRE(pos == at_sep,
                  "crash spec '" << entry << "': bad node index");
    } catch (const std::exception&) {
      GHS_REQUIRE(false, "crash spec '" << entry << "': bad node index");
    }
    GHS_REQUIRE(crash.node >= 0,
                "crash spec '" << entry << "': node must be >= 0");
    std::string times = entry.substr(at_sep + 1);
    const auto restart_sep = times.find(':');
    if (restart_sep != std::string::npos) {
      crash.restart_at = parse_duration(times.substr(restart_sep + 1));
      times = times.substr(0, restart_sep);
    }
    crash.at = parse_duration(times);
    GHS_REQUIRE(crash.restart_at == 0 || crash.restart_at > crash.at,
                "crash spec '" << entry
                               << "': restart must come after the crash");
    plan.crashes.push_back(crash);
  }
  return plan;
}

std::string format_crash_plan(const NodeCrashPlan& plan) {
  std::ostringstream out;
  for (std::size_t i = 0; i < plan.crashes.size(); ++i) {
    const NodeCrash& crash = plan.crashes[i];
    if (i > 0) out << ",";
    out << crash.node << "@" << crash.at << "ps";
    if (crash.restart_at > 0) out << ":" << crash.restart_at << "ps";
  }
  return out.str();
}

FaultPlan parse_plan(const std::string& text) {
  FaultPlan plan;
  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::istringstream words(line);
    std::vector<std::string> tokens;
    std::string token;
    while (words >> token) tokens.push_back(token);
    if (tokens.empty()) continue;
    const std::string& kind = tokens.front();
    if (kind == "kernel-fault") {
      GHS_REQUIRE(tokens.size() >= 2, "fault plan line "
                                          << line_no
                                          << ": kernel-fault needs a target");
      const auto args = parse_args(tokens, 2, line_no);
      GHS_REQUIRE(args.scale < 0.0, "fault plan line "
                                        << line_no
                                        << ": kernel-fault takes no scale");
      KernelFaultSpec spec;
      spec.target = parse_target(tokens[1], line_no);
      spec.probability = args.probability < 0.0 ? 1.0 : args.probability;
      spec.window = args.window;
      GHS_REQUIRE(args.has_window || args.probability >= 0.0,
                  "fault plan line " << line_no
                                     << ": kernel-fault needs p= or a "
                                        "from=/until= window");
      plan.kernel_faults.push_back(spec);
    } else if (kind == "bandwidth") {
      GHS_REQUIRE(tokens.size() >= 2,
                  "fault plan line " << line_no << ": bandwidth needs a "
                                                   "target");
      const auto args = parse_args(tokens, 2, line_no);
      GHS_REQUIRE(args.scale > 0.0, "fault plan line "
                                        << line_no
                                        << ": bandwidth needs scale=");
      BandwidthEpisode episode;
      episode.target = parse_target(tokens[1], line_no);
      episode.scale = args.scale;
      episode.window = args.window;
      plan.bandwidth_episodes.push_back(episode);
    } else if (kind == "device-down") {
      GHS_REQUIRE(tokens.size() >= 2, "fault plan line "
                                          << line_no
                                          << ": device-down needs a target");
      const auto args = parse_args(tokens, 2, line_no);
      GHS_REQUIRE(args.has_window, "fault plan line "
                                       << line_no
                                       << ": device-down needs from=/until=");
      OutageWindow outage;
      outage.target = parse_target(tokens[1], line_no);
      outage.window = args.window;
      plan.outages.push_back(outage);
    } else if (kind == "migration-stall") {
      const auto args = parse_args(tokens, 1, line_no);
      GHS_REQUIRE(args.scale > 0.0, "fault plan line "
                                        << line_no
                                        << ": migration-stall needs scale=");
      MigrationStallEpisode episode;
      episode.scale = args.scale;
      episode.window = args.window;
      plan.migration_stalls.push_back(episode);
    } else if (kind == "error-latency") {
      GHS_REQUIRE(tokens.size() == 2, "fault plan line "
                                          << line_no
                                          << ": error-latency <time>");
      plan.down_error_latency = parse_time(tokens[1], line_no);
    } else {
      GHS_REQUIRE(false, "fault plan line "
                             << line_no << ": unknown fault kind '" << kind
                             << "' (kernel-fault|bandwidth|device-down|"
                                "migration-stall|error-latency)");
    }
  }
  return plan;
}

FaultPlan load_plan(const std::string& path) {
  std::ifstream in(path);
  GHS_REQUIRE(in.good(), "cannot read fault plan " << path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_plan(text.str());
}

std::string format_plan(const FaultPlan& plan) {
  std::ostringstream out;
  for (const auto& spec : plan.kernel_faults) {
    out << "kernel-fault " << target_name(spec.target)
        << " p=" << format_probability(spec.probability)
        << format_window(spec.window) << "\n";
  }
  for (const auto& episode : plan.bandwidth_episodes) {
    out << "bandwidth " << target_name(episode.target)
        << " scale=" << format_probability(episode.scale)
        << format_window(episode.window) << "\n";
  }
  for (const auto& outage : plan.outages) {
    out << "device-down " << target_name(outage.target)
        << format_window(outage.window) << "\n";
  }
  for (const auto& episode : plan.migration_stalls) {
    out << "migration-stall scale=" << format_probability(episode.scale)
        << format_window(episode.window) << "\n";
  }
  if (plan.down_error_latency != 10 * kMicrosecond) {
    out << "error-latency " << format_time(plan.down_error_latency) << "\n";
  }
  return out.str();
}

}  // namespace ghs::fault
