// Declarative fault plans for chaos campaigns against the serving layer.
//
// A FaultPlan is data, not behaviour: it lists *when* and *how* the
// simulated hardware degrades — transient kernel failures (per-launch
// probability or scheduled windows), bandwidth brown-outs (a device's
// effective GB/s scaled down for a simulated interval), device-down
// outages, and page-migration stalls for unified-memory jobs. The
// fault::Injector interprets a plan against the simulator clock, so a
// chaos run is replayable byte-for-byte from (plan, seed).
//
// Plans are written in a small line format (one fault per line, '#'
// comments, times with a us/ms/s suffix):
//
//   kernel-fault gpu p=0.05                    # 5% of launches fail
//   kernel-fault gpu from=2ms until=3ms        # every launch fails inside
//   device-down gpu from=5ms until=8ms         # outage window
//   bandwidth gpu scale=0.25 from=1ms until=4ms  # HBM at a quarter speed
//   migration-stall scale=0.1 from=2ms until=6ms # UM migration 10x slower
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ghs/util/units.hpp"

namespace ghs::fault {

/// Processor a fault targets. Mirrors serve::Placement without depending on
/// the serve layer, so the fault module sits below it.
enum class Target : std::uint8_t { kGpu, kCpu };

const char* target_name(Target target);

/// Half-open simulated-time interval [begin, end).
struct Window {
  SimTime begin = 0;
  SimTime end = 0;

  bool contains(SimTime t) const { return t >= begin && t < end; }
  bool overlaps(SimTime from, SimTime until) const {
    return begin < until && from < end;
  }
  /// A zero-length window means "the whole run".
  bool unbounded() const { return end <= begin; }
};

/// Transient kernel failure: launches on `target` fail with `probability`
/// while the window is active (an unbounded window arms the fault for the
/// whole run; probability 1.0 makes every launch inside the window fail
/// without consuming randomness).
struct KernelFaultSpec {
  Target target = Target::kGpu;
  double probability = 1.0;
  Window window;
};

/// Bandwidth brown-out: the device's effective bandwidth is multiplied by
/// `scale` (0 < scale <= 1) while the window is active, so service times
/// stretch by 1/scale. Overlapping episodes compound.
struct BandwidthEpisode {
  Target target = Target::kGpu;
  double scale = 0.5;
  Window window;
};

/// Device-down outage: every launch that overlaps the window fails, and
/// launches started while the device is down fail fast (the driver returns
/// an error after `FaultPlan::down_error_latency`).
struct OutageWindow {
  Target target = Target::kGpu;
  Window window;
};

/// Page-migration stall: unified-memory jobs served while the window is
/// active see their migration-inclusive service stretched by 1/scale.
struct MigrationStallEpisode {
  double scale = 0.5;
  Window window;
};

struct FaultPlan {
  std::vector<KernelFaultSpec> kernel_faults;
  std::vector<BandwidthEpisode> bandwidth_episodes;
  std::vector<OutageWindow> outages;
  std::vector<MigrationStallEpisode> migration_stalls;
  /// How long a launch attempt on a down device takes to report its error.
  SimTime down_error_latency = 10 * kMicrosecond;

  bool empty() const {
    return kernel_faults.empty() && bandwidth_episodes.empty() &&
           outages.empty() && migration_stalls.empty();
  }
  /// Total fault entries across all kinds.
  std::size_t size() const {
    return kernel_faults.size() + bandwidth_episodes.size() +
           outages.size() + migration_stalls.size();
  }
};

/// Whole-node failure: at `at` the node's devices and queued work vanish;
/// a non-zero `restart_at` brings the node back (empty queue, cold state)
/// after the operator's warm-up window. Interpreted by cluster::Cluster —
/// a standalone service has no peers to recover onto.
struct NodeCrash {
  int node = 0;
  SimTime at = 0;
  SimTime restart_at = 0;  // 0 = never restarts
};

/// Schedule of node crashes for a fleet run. Like FaultPlan this is pure
/// data; the inline spec format is `node@at[:restart_at]`, comma or
/// whitespace separated, e.g. "1@300us:2ms,2@1ms".
struct NodeCrashPlan {
  std::vector<NodeCrash> crashes;

  bool empty() const { return crashes.empty(); }
  std::size_t size() const { return crashes.size(); }
};

/// Parses "2ms" / "150us" / "1.5s" / "400ns" / "7000ps" into picoseconds;
/// throws ghs::Error on malformed input. This is the time grammar every
/// plan format shares.
SimTime parse_duration(const std::string& text);

/// Parses the inline crash spec documented on NodeCrashPlan; throws
/// ghs::Error on malformed entries, negative nodes, or a restart that does
/// not come after its crash. Node indices are validated against the fleet
/// size by the consumer (the parser cannot know it).
NodeCrashPlan parse_crash_plan(const std::string& text);

/// Renders the crash plan back into the inline spec (picosecond times, so
/// it round-trips through parse_crash_plan exactly).
std::string format_crash_plan(const NodeCrashPlan& plan);

/// Parses the line format documented above; throws ghs::Error with the
/// offending line number on malformed input.
FaultPlan parse_plan(const std::string& text);

/// Reads and parses a plan file; throws ghs::Error on I/O failure.
FaultPlan load_plan(const std::string& path);

/// Renders the plan back into the line format (used by benches to echo the
/// active plan into reports deterministically).
std::string format_plan(const FaultPlan& plan);

}  // namespace ghs::fault
