// Circuit breaker: the classic closed -> open -> half-open state machine,
// in simulated time. The serve layer keeps one per device: consecutive
// launch failures trip the breaker (no more launches), a cool-down later a
// single probe is allowed through (half-open), and the probe's outcome
// either closes the breaker or re-opens it for another cool-down. All
// transitions are pure functions of the observed success/failure sequence
// and the clock, so chaos runs stay deterministic.
#pragma once

#include <cstdint>
#include <functional>

#include "ghs/util/units.hpp"

namespace ghs::fault {

struct BreakerOptions {
  /// Consecutive failures that trip the breaker open.
  int failure_threshold = 3;
  /// Cool-down before a half-open probe is allowed.
  SimTime open_duration = 500 * kMicrosecond;
  /// Successes required in half-open before the breaker closes again.
  int close_threshold = 1;
};

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

const char* breaker_state_name(BreakerState state);

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerOptions options = {});

  /// Whether a launch may proceed at `now`. An open breaker whose
  /// cool-down has elapsed transitions to half-open and admits the probe.
  bool allow(SimTime now);

  void record_success(SimTime now);
  void record_failure(SimTime now);

  BreakerState state() const { return state_; }
  /// Times the breaker tripped closed -> open (or half-open -> open).
  std::int64_t opens() const { return opens_; }
  int consecutive_failures() const { return consecutive_failures_; }
  /// Earliest time a half-open probe will be admitted (valid while open).
  SimTime probe_at() const { return opened_at_ + options_.open_duration; }

  /// Fires on every state change (telemetry, flight recorder, logging).
  using TransitionHook =
      std::function<void(BreakerState from, BreakerState to, SimTime at)>;
  void set_on_transition(TransitionHook hook);

 private:
  void transition(BreakerState to, SimTime at);

  BreakerOptions options_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  SimTime opened_at_ = 0;
  std::int64_t opens_ = 0;
  TransitionHook on_transition_;
};

}  // namespace ghs::fault
