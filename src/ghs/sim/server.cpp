#include "ghs/sim/server.hpp"

#include <algorithm>

#include "ghs/util/error.hpp"

namespace ghs::sim {

SimTime SerialServer::submit(SimTime now, SimTime service) {
  return submit_batch(now, service, 1);
}

SimTime SerialServer::submit_batch(SimTime now, SimTime service,
                                   std::int64_t count) {
  GHS_REQUIRE(now >= 0 && service >= 0 && count >= 0,
              "now=" << now << " service=" << service << " count=" << count);
  if (count == 0) return std::max(now, available_at_);
  const SimTime start = std::max(now, available_at_);
  const SimTime total = service * count;
  available_at_ = start + total;
  busy_time_ += total;
  completed_ += count;
  return available_at_;
}

void SerialServer::reset() {
  available_at_ = 0;
  busy_time_ = 0;
  completed_ = 0;
}

}  // namespace ghs::sim
