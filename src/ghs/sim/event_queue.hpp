// Time-ordered event queue for the discrete-event simulator. Ties are
// broken by insertion sequence number so execution order is deterministic
// and FIFO among same-time events.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "ghs/util/units.hpp"

namespace ghs::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  void push(SimTime time, EventFn fn);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest event; queue must be non-empty.
  SimTime next_time() const;

  /// Removes and returns the earliest event's callback.
  EventFn pop();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    // Shared_ptr keeps Entry copyable for priority_queue while the
    // callback itself is move-only in practice.
    std::shared_ptr<EventFn> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ghs::sim
