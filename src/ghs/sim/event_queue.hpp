// Time-ordered event queues for the discrete-event simulator.
//
// EventQueue is a pluggable interface with one ordering contract shared by
// every implementation: events pop in strictly increasing (time, seq)
// order, where seq is the insertion sequence number — so ties are FIFO and
// execution order is deterministic regardless of the structure underneath.
// Two implementations ship:
//
//  * HeapEventQueue — a binary heap over pool-allocated nodes. O(log n)
//    push/pop; the reference implementation every other queue must match
//    pop-for-pop (see tests/sim/event_queue_property_test.cpp).
//  * CalendarEventQueue — a classic calendar queue (Brown 1988): a ring of
//    time-bucketed "days", each one `width` picoseconds wide, resized and
//    re-tuned as the population grows/shrinks. Amortised O(1) push/pop
//    for the schedules simulations actually produce, which is what makes
//    10^6-job serve runs cheap (docs/PERFORMANCE.md has the numbers).
//
// Events are move-only small-buffer callables (sim/event.hpp) stored in
// pool nodes — no per-event shared_ptr, no per-event malloc.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ghs/sim/event.hpp"
#include "ghs/util/arena.hpp"
#include "ghs/util/units.hpp"

namespace ghs::sim {

/// Which EventQueue implementation a simulator runs on.
enum class QueueKind : std::uint8_t { kHeap, kCalendar };

const char* queue_kind_name(QueueKind kind);

/// Parses "heap" / "calendar"; nullopt on anything else.
std::optional<QueueKind> parse_queue_kind(const std::string& name);

class EventQueue {
 public:
  /// Sentinel returned by drain_ready on an empty queue (event times are
  /// always >= 0).
  static constexpr SimTime kNoEvent = -1;

  virtual ~EventQueue() = default;

  /// Enqueues `fn` at `time` (>= 0). FIFO among equal times.
  virtual void push(SimTime time, Event fn) = 0;

  virtual bool empty() const = 0;
  virtual std::size_t size() const = 0;

  /// Time of the earliest event; queue must be non-empty.
  virtual SimTime next_time() const = 0;

  /// Removes and returns the earliest event's callback.
  virtual Event pop() = 0;

  /// Appends every event whose time equals next_time() to `out`, in pop
  /// order, and removes them from the queue. The batched form of pop():
  /// the calendar queue splices the whole same-timestamp run out of one
  /// bucket in a single scan, and even the heap saves the per-event
  /// virtual-call/peek round trips. Queue must be non-empty.
  virtual void pop_ready(std::vector<Event>& out) = 0;

  /// Fused empty() + next_time() + pop_ready(): drains the earliest
  /// timestamp's events into `out` (appended) and returns that timestamp,
  /// or kNoEvent if the queue is empty. One virtual call per clock step —
  /// this is what the simulator's hot loop uses.
  virtual SimTime drain_ready(std::vector<Event>& out) = 0;

  /// Drains the earliest timestamp's events into `out` only when that
  /// timestamp equals `t` (same-time follow-ups a handler scheduled
  /// mid-batch); returns the number of events drained, 0 when the queue
  /// is empty or its next event is later.
  virtual std::size_t drain_ready_at(SimTime t, std::vector<Event>& out) = 0;

  virtual QueueKind kind() const = 0;
};

std::unique_ptr<EventQueue> make_event_queue(QueueKind kind);

namespace detail {
/// Pool-allocated queue entry shared by both implementations.
struct EventNode {
  SimTime time = 0;
  std::uint64_t seq = 0;
  Event fn;

  EventNode(SimTime t, std::uint64_t s, Event f)
      : time(t), seq(s), fn(std::move(f)) {}

  /// The total order every queue implementation pops in.
  bool before(const EventNode& other) const {
    if (time != other.time) return time < other.time;
    return seq < other.seq;
  }
};
}  // namespace detail

/// Reference implementation: hand-rolled binary min-heap over node
/// pointers, so sift operations move 8-byte pointers instead of whole
/// entries and the events themselves never move after insertion.
class HeapEventQueue final : public EventQueue {
 public:
  void push(SimTime time, Event fn) override;
  bool empty() const override { return heap_.empty(); }
  std::size_t size() const override { return heap_.size(); }
  SimTime next_time() const override;
  Event pop() override;
  void pop_ready(std::vector<Event>& out) override;
  SimTime drain_ready(std::vector<Event>& out) override;
  std::size_t drain_ready_at(SimTime t, std::vector<Event>& out) override;
  QueueKind kind() const override { return QueueKind::kHeap; }

  ~HeapEventQueue() override;

 private:
  using Node = detail::EventNode;

  void sift_up(std::size_t index);
  void sift_down(std::size_t index);
  Node* pop_node();
  /// Pops the (time == t) run off the heap top into `out`.
  void drain_run(SimTime t, std::vector<Event>& out);

  util::Pool<Node> pool_{1024};
  std::vector<Node*> heap_;
  std::uint64_t next_seq_ = 0;
};

/// Calendar queue: a power-of-two ring of buckets ("days"), each `width_`
/// picoseconds wide; bucket index = (time / width) & mask, so one lap of
/// the ring is one "year". A cursor walks the ring day by day; events land
/// in their day's bucket sorted by (time, seq). The bucket count doubles
/// (halves) when the population outgrows (undershoots) the ring, and each
/// rebuild re-estimates the width from the inter-event gaps of the
/// soonest events, which keeps the expected bucket occupancy O(1) even
/// when the schedule carries far-future outliers.
class CalendarEventQueue final : public EventQueue {
 public:
  CalendarEventQueue();

  void push(SimTime time, Event fn) override;
  bool empty() const override { return size_ == 0; }
  std::size_t size() const override { return size_; }
  SimTime next_time() const override;
  Event pop() override;
  void pop_ready(std::vector<Event>& out) override;
  SimTime drain_ready(std::vector<Event>& out) override;
  std::size_t drain_ready_at(SimTime t, std::vector<Event>& out) override;
  QueueKind kind() const override { return QueueKind::kCalendar; }

  ~CalendarEventQueue() override;

  /// Introspection for tests and the performance doc.
  std::size_t bucket_count() const { return buckets_.size(); }
  SimTime bucket_width() const { return width_; }

 private:
  using Node = detail::EventNode;

  static constexpr std::size_t kMinBuckets = 8;

  std::size_t bucket_of(SimTime time) const {
    return static_cast<std::size_t>(time / width_) & mask_;
  }
  /// End of the day-window that contains `time`.
  SimTime window_end_of(SimTime time) const {
    return (time / width_ + 1) * width_;
  }

  /// Earliest node (cached between peeks); positions the cursor on its
  /// bucket. Queue must be non-empty.
  Node* peek() const;
  /// Splices the cursor bucket's (time == t) prefix run into `out`; peek()
  /// must have positioned the cursor.
  void drain_run(SimTime t, std::vector<Event>& out);
  void insert(Node* node);
  void maybe_resize();
  void rebuild(std::size_t new_bucket_count);

  util::Pool<Node> pool_{1024};
  std::vector<std::vector<Node*>> buckets_;
  std::size_t mask_ = 0;
  SimTime width_ = kMicrosecond;
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;

  // Cursor state (mutable: peek() advances it lazily).
  mutable std::size_t cursor_ = 0;
  mutable SimTime cursor_window_end_ = 0;
  mutable Node* cached_min_ = nullptr;
};

}  // namespace ghs::sim
