#include "ghs/sim/event_queue.hpp"

#include <memory>
#include <utility>

#include "ghs/util/error.hpp"

namespace ghs::sim {

void EventQueue::push(SimTime time, EventFn fn) {
  GHS_REQUIRE(time >= 0, "event time " << time);
  heap_.push(Entry{time, next_seq_++, std::make_shared<EventFn>(std::move(fn))});
}

SimTime EventQueue::next_time() const {
  GHS_REQUIRE(!heap_.empty(), "next_time on empty queue");
  return heap_.top().time;
}

EventFn EventQueue::pop() {
  GHS_REQUIRE(!heap_.empty(), "pop on empty queue");
  Entry top = heap_.top();
  heap_.pop();
  return std::move(*top.fn);
}

}  // namespace ghs::sim
