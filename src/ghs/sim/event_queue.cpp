#include "ghs/sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "ghs/util/error.hpp"

namespace ghs::sim {

const char* queue_kind_name(QueueKind kind) {
  switch (kind) {
    case QueueKind::kHeap:
      return "heap";
    case QueueKind::kCalendar:
      return "calendar";
  }
  GHS_CHECK(false, "unknown QueueKind " << static_cast<int>(kind));
}

std::optional<QueueKind> parse_queue_kind(const std::string& name) {
  if (name == "heap") return QueueKind::kHeap;
  if (name == "calendar") return QueueKind::kCalendar;
  return std::nullopt;
}

std::unique_ptr<EventQueue> make_event_queue(QueueKind kind) {
  switch (kind) {
    case QueueKind::kHeap:
      return std::make_unique<HeapEventQueue>();
    case QueueKind::kCalendar:
      return std::make_unique<CalendarEventQueue>();
  }
  GHS_CHECK(false, "unknown QueueKind " << static_cast<int>(kind));
}

// ---------------------------------------------------------------------------
// HeapEventQueue

HeapEventQueue::~HeapEventQueue() {
  for (Node* node : heap_) pool_.release(node);
}

void HeapEventQueue::push(SimTime time, Event fn) {
  GHS_REQUIRE(time >= 0, "event time " << time);
  heap_.push_back(pool_.make(time, next_seq_++, std::move(fn)));
  sift_up(heap_.size() - 1);
}

SimTime HeapEventQueue::next_time() const {
  GHS_REQUIRE(!heap_.empty(), "next_time on empty queue");
  return heap_.front()->time;
}

HeapEventQueue::Node* HeapEventQueue::pop_node() {
  Node* top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return top;
}

Event HeapEventQueue::pop() {
  GHS_REQUIRE(!heap_.empty(), "pop on empty queue");
  Node* node = pop_node();
  Event fn = std::move(node->fn);
  pool_.release(node);
  return fn;
}

void HeapEventQueue::drain_run(SimTime t, std::vector<Event>& out) {
  do {
    Node* node = pop_node();
    out.push_back(std::move(node->fn));
    pool_.release(node);
  } while (!heap_.empty() && heap_.front()->time == t);
}

void HeapEventQueue::pop_ready(std::vector<Event>& out) {
  GHS_REQUIRE(!heap_.empty(), "pop_ready on empty queue");
  drain_run(heap_.front()->time, out);
}

SimTime HeapEventQueue::drain_ready(std::vector<Event>& out) {
  if (heap_.empty()) return kNoEvent;
  const SimTime t = heap_.front()->time;
  drain_run(t, out);
  return t;
}

std::size_t HeapEventQueue::drain_ready_at(SimTime t,
                                           std::vector<Event>& out) {
  if (heap_.empty() || heap_.front()->time != t) return 0;
  const std::size_t before = out.size();
  drain_run(t, out);
  return out.size() - before;
}

void HeapEventQueue::sift_up(std::size_t index) {
  Node* node = heap_[index];
  while (index > 0) {
    const std::size_t parent = (index - 1) / 2;
    if (!node->before(*heap_[parent])) break;
    heap_[index] = heap_[parent];
    index = parent;
  }
  heap_[index] = node;
}

void HeapEventQueue::sift_down(std::size_t index) {
  Node* node = heap_[index];
  const std::size_t size = heap_.size();
  for (;;) {
    std::size_t child = 2 * index + 1;
    if (child >= size) break;
    if (child + 1 < size && heap_[child + 1]->before(*heap_[child])) ++child;
    if (!heap_[child]->before(*node)) break;
    heap_[index] = heap_[child];
    index = child;
  }
  heap_[index] = node;
}

// ---------------------------------------------------------------------------
// CalendarEventQueue

CalendarEventQueue::CalendarEventQueue() {
  buckets_.resize(kMinBuckets);
  mask_ = kMinBuckets - 1;
  cursor_ = 0;
  cursor_window_end_ = width_;
}

CalendarEventQueue::~CalendarEventQueue() {
  for (auto& bucket : buckets_) {
    for (Node* node : bucket) pool_.release(node);
  }
}

void CalendarEventQueue::insert(Node* node) {
  std::vector<Node*>& bucket = buckets_[bucket_of(node->time)];
  // Most pushes land at the end of their bucket (times mostly increase and
  // seq always does), so test the back before binary-searching.
  if (bucket.empty() || bucket.back()->before(*node)) {
    bucket.push_back(node);
    return;
  }
  auto pos = std::upper_bound(
      bucket.begin(), bucket.end(), node,
      [](const Node* a, const Node* b) { return a->before(*b); });
  bucket.insert(pos, node);
}

void CalendarEventQueue::push(SimTime time, Event fn) {
  GHS_REQUIRE(time >= 0, "event time " << time);
  Node* node = pool_.make(time, next_seq_++, std::move(fn));
  insert(node);
  ++size_;
  // An event earlier than the day the cursor is serving rewinds the
  // cursor to that day; otherwise the lazy scan would walk past it.
  if (time < cursor_window_end_ - width_) {
    cursor_ = bucket_of(time);
    cursor_window_end_ = window_end_of(time);
  }
  if (cached_min_ != nullptr && node->before(*cached_min_)) {
    cached_min_ = nullptr;
  }
  maybe_resize();
}

CalendarEventQueue::Node* CalendarEventQueue::peek() const {
  if (cached_min_ != nullptr) return cached_min_;
  // Walk the ring day by day. Earlier days are already drained and pushes
  // rewind the cursor, so the first front-of-bucket event that falls
  // inside the current day window is the global minimum.
  for (std::size_t scanned = 0; scanned < buckets_.size(); ++scanned) {
    const std::vector<Node*>& bucket = buckets_[cursor_];
    if (!bucket.empty() && bucket.front()->time < cursor_window_end_) {
      cached_min_ = bucket.front();
      return cached_min_;
    }
    cursor_ = (cursor_ + 1) & mask_;
    cursor_window_end_ += width_;
  }
  // A full lap found nothing in-window: every remaining event is at least
  // a year out (far-future outliers). Direct search over bucket fronts —
  // O(nbuckets) instead of walking empty days one by one.
  Node* min_node = nullptr;
  for (const auto& bucket : buckets_) {
    if (bucket.empty()) continue;
    if (min_node == nullptr || bucket.front()->before(*min_node)) {
      min_node = bucket.front();
    }
  }
  GHS_CHECK(min_node != nullptr, "peek on empty calendar queue");
  cursor_ = bucket_of(min_node->time);
  cursor_window_end_ = window_end_of(min_node->time);
  cached_min_ = min_node;
  return cached_min_;
}

SimTime CalendarEventQueue::next_time() const {
  GHS_REQUIRE(size_ > 0, "next_time on empty queue");
  return peek()->time;
}

Event CalendarEventQueue::pop() {
  GHS_REQUIRE(size_ > 0, "pop on empty queue");
  Node* node = peek();
  std::vector<Node*>& bucket = buckets_[cursor_];
  bucket.erase(bucket.begin());
  --size_;
  cached_min_ = nullptr;
  Event fn = std::move(node->fn);
  pool_.release(node);
  maybe_resize();
  return fn;
}

void CalendarEventQueue::drain_run(SimTime t, std::vector<Event>& out) {
  // Equal times always map to the same bucket, so the whole run is the
  // bucket's (time == t) prefix, already in seq order.
  std::vector<Node*>& bucket = buckets_[cursor_];
  std::size_t run = 0;
  while (run < bucket.size() && bucket[run]->time == t) {
    out.push_back(std::move(bucket[run]->fn));
    pool_.release(bucket[run]);
    ++run;
  }
  bucket.erase(bucket.begin(),
               bucket.begin() + static_cast<std::ptrdiff_t>(run));
  size_ -= run;
  cached_min_ = nullptr;
  maybe_resize();
}

void CalendarEventQueue::pop_ready(std::vector<Event>& out) {
  GHS_REQUIRE(size_ > 0, "pop_ready on empty queue");
  drain_run(peek()->time, out);
}

SimTime CalendarEventQueue::drain_ready(std::vector<Event>& out) {
  if (size_ == 0) return kNoEvent;
  const SimTime t = peek()->time;
  drain_run(t, out);
  return t;
}

std::size_t CalendarEventQueue::drain_ready_at(SimTime t,
                                               std::vector<Event>& out) {
  if (size_ == 0 || peek()->time != t) return 0;
  const std::size_t before = out.size();
  drain_run(t, out);
  return out.size() - before;
}

void CalendarEventQueue::maybe_resize() {
  if (size_ > 2 * buckets_.size()) {
    rebuild(buckets_.size() * 2);
  } else if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 2) {
    rebuild(buckets_.size() / 2);
  }
}

void CalendarEventQueue::rebuild(std::size_t new_bucket_count) {
  std::vector<Node*> nodes;
  nodes.reserve(size_);
  for (auto& bucket : buckets_) {
    nodes.insert(nodes.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }

  // Re-estimate the day width from the inter-event gaps of the soonest
  // events (Brown's estimator): wide enough that a day holds a handful of
  // events, narrow enough that a bucket isn't scanned linearly.
  if (nodes.size() >= 2) {
    constexpr std::size_t kSampleSize = 64;
    const std::size_t sample = std::min(nodes.size(), kSampleSize);
    std::nth_element(nodes.begin(),
                     nodes.begin() + static_cast<std::ptrdiff_t>(sample - 1),
                     nodes.end(),
                     [](const Node* a, const Node* b) { return a->before(*b); });
    std::vector<SimTime> times;
    times.reserve(sample);
    for (std::size_t i = 0; i < sample; ++i) times.push_back(nodes[i]->time);
    std::sort(times.begin(), times.end());
    SimTime gap_sum = 0;
    std::size_t gap_count = 0;
    for (std::size_t i = 1; i < times.size(); ++i) {
      const SimTime gap = times[i] - times[i - 1];
      if (gap > 0) {
        gap_sum += gap;
        ++gap_count;
      }
    }
    if (gap_count > 0) {
      // Three average separations per day keeps expected occupancy small
      // with hysteresis against resizing on every estimate jitter.
      width_ = std::max<SimTime>(1, 3 * gap_sum / static_cast<SimTime>(gap_count));
    }
  }

  buckets_.assign(new_bucket_count, {});
  mask_ = new_bucket_count - 1;
  for (Node* node : nodes) insert(node);

  cached_min_ = nullptr;
  if (size_ == 0) {
    cursor_ = 0;
    cursor_window_end_ = width_;
  } else {
    // Re-anchor the cursor on the earliest event's day.
    Node* min_node = nodes.front();
    for (Node* node : nodes) {
      if (node->before(*min_node)) min_node = node;
    }
    cursor_ = bucket_of(min_node->time);
    cursor_window_end_ = window_end_of(min_node->time);
  }
}

}  // namespace ghs::sim
