#include "ghs/sim/fluid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "ghs/util/error.hpp"
#include "ghs/util/log.hpp"

namespace ghs::sim {

namespace {

/// A flow counts as drained once fewer than this many bytes remain; real
/// flows in this repository are kilobytes and up, so the epsilon only
/// absorbs picosecond rounding.
constexpr double kDrainEpsilonBytes = 0.5;

}  // namespace

ResourceId FluidNetwork::add_resource(std::string name, Bandwidth capacity) {
  GHS_REQUIRE(capacity.bytes_per_second > 0.0,
              "resource '" << name << "' needs positive capacity");
  resources_.push_back(Resource{std::move(name), capacity.bytes_per_second,
                                ResourceStats{}});
  return static_cast<ResourceId>(resources_.size() - 1);
}

void FluidNetwork::set_capacity(ResourceId id, Bandwidth capacity) {
  GHS_REQUIRE(id < resources_.size(), "resource id " << id);
  GHS_REQUIRE(capacity.bytes_per_second > 0.0, "capacity must be positive");
  sync_to_now();
  resources_[id].capacity = capacity.bytes_per_second;
  recompute_rates();
  schedule_next_completion();
}

Bandwidth FluidNetwork::capacity(ResourceId id) const {
  GHS_REQUIRE(id < resources_.size(), "resource id " << id);
  return Bandwidth{resources_[id].capacity};
}

const std::string& FluidNetwork::resource_name(ResourceId id) const {
  GHS_REQUIRE(id < resources_.size(), "resource id " << id);
  return resources_[id].name;
}

const ResourceStats& FluidNetwork::resource_stats(ResourceId id) const {
  GHS_REQUIRE(id < resources_.size(), "resource id " << id);
  return resources_[id].stats;
}

FlowId FluidNetwork::start_flow(FlowSpec spec) {
  GHS_REQUIRE(spec.bytes > 0.0, "flow '" << spec.label << "' has no bytes");
  GHS_REQUIRE(!spec.resources.empty(),
              "flow '" << spec.label << "' traverses no resources");
  for (ResourceId r : spec.resources) {
    GHS_REQUIRE(r < resources_.size(),
                "flow '" << spec.label << "' uses bad resource id " << r);
  }
  sync_to_now();
  const FlowId id = next_flow_id_++;
  Flow flow;
  flow.remaining = spec.bytes;
  flow.spec = std::move(spec);
  flows_.emplace(id, std::move(flow));
  if (!settling_) {
    recompute_rates();
    schedule_next_completion();
  }
  return id;
}

bool FluidNetwork::active(FlowId id) const { return flows_.count(id) > 0; }

double FluidNetwork::current_rate(FlowId id) const {
  const auto it = flows_.find(id);
  GHS_REQUIRE(it != flows_.end(), "flow " << id << " is not active");
  return it->second.rate;
}

double FluidNetwork::remaining_bytes(FlowId id) const {
  const auto it = flows_.find(id);
  GHS_REQUIRE(it != flows_.end(), "flow " << id << " is not active");
  return it->second.remaining;
}

void FluidNetwork::sync_to_now() {
  const SimTime now = sim_.now();
  GHS_CHECK(now >= last_update_, "fluid clock moved backwards");
  if (now == last_update_) return;
  const double dt_s = to_seconds(now - last_update_);
  const double dt_ps = static_cast<double>(now - last_update_);
  std::vector<double> resource_rate(resources_.size(), 0.0);
  for (auto& [id, flow] : flows_) {
    if (flow.rate <= 0.0) continue;
    const double moved = std::min(flow.remaining, flow.rate * dt_s);
    flow.remaining -= moved;
    for (ResourceId r : flow.spec.resources) {
      resources_[r].stats.bytes_served += moved;
      resource_rate[r] += flow.rate;
    }
  }
  for (std::size_t r = 0; r < resources_.size(); ++r) {
    const double util =
        std::min(1.0, resource_rate[r] / resources_[r].capacity);
    resources_[r].stats.busy_time_ps += util * dt_ps;
  }
  last_update_ = now;
}

void FluidNetwork::recompute_rates() {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> residual(resources_.size());
  std::vector<int> count(resources_.size(), 0);
  for (std::size_t r = 0; r < resources_.size(); ++r) {
    residual[r] = resources_[r].capacity;
  }
  std::vector<Flow*> unfrozen;
  unfrozen.reserve(flows_.size());
  for (auto& [id, flow] : flows_) {
    unfrozen.push_back(&flow);
    for (ResourceId r : flow.spec.resources) ++count[r];
  }
  // Progressive filling: each round freezes every flow whose limiting
  // constraint equals the global minimum, guaranteeing termination.
  while (!unfrozen.empty()) {
    double round_min = kInf;
    std::vector<double> limits(unfrozen.size());
    for (std::size_t i = 0; i < unfrozen.size(); ++i) {
      const Flow& flow = *unfrozen[i];
      double limit = flow.spec.rate_cap > 0.0 ? flow.spec.rate_cap : kInf;
      for (ResourceId r : flow.spec.resources) {
        GHS_CHECK(count[r] > 0, "resource count underflow");
        limit = std::min(limit, std::max(0.0, residual[r]) /
                                    static_cast<double>(count[r]));
      }
      limits[i] = limit;
      round_min = std::min(round_min, limit);
    }
    GHS_CHECK(std::isfinite(round_min),
              "all flows uncapped over zero resources");
    const double freeze_below = round_min * (1.0 + 1e-12) + 1e-9;
    std::vector<Flow*> still_unfrozen;
    still_unfrozen.reserve(unfrozen.size());
    for (std::size_t i = 0; i < unfrozen.size(); ++i) {
      Flow& flow = *unfrozen[i];
      if (limits[i] <= freeze_below) {
        flow.rate = limits[i];
        for (ResourceId r : flow.spec.resources) {
          residual[r] -= flow.rate;
          --count[r];
        }
      } else {
        still_unfrozen.push_back(&flow);
      }
    }
    GHS_CHECK(still_unfrozen.size() < unfrozen.size(),
              "water-filling made no progress");
    unfrozen = std::move(still_unfrozen);
  }
}

void FluidNetwork::schedule_next_completion() {
  if (flows_.empty()) return;
  double min_dt_s = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : flows_) {
    if (flow.rate <= 0.0) {
      GHS_CHECK(flow.remaining <= kDrainEpsilonBytes,
                "flow '" << flow.spec.label << "' stalled at rate 0 with "
                         << flow.remaining << " bytes left");
      min_dt_s = 0.0;
      continue;
    }
    min_dt_s = std::min(min_dt_s, flow.remaining / flow.rate);
  }
  // Round up so the earliest-finishing flow is guaranteed drained when the
  // wake event fires.
  SimTime dt = from_seconds(min_dt_s);
  if (dt <= 0) dt = 1;
  const std::uint64_t gen = ++wake_generation_;
  sim_.schedule_after(dt, [this, gen] {
    if (gen != wake_generation_) return;  // superseded by a newer schedule
    settle();
  });
}

void FluidNetwork::settle() {
  sync_to_now();
  settling_ = true;
  std::vector<std::function<void()>> callbacks;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining <= kDrainEpsilonBytes) {
      if (it->second.spec.on_complete) {
        callbacks.push_back(std::move(it->second.spec.on_complete));
      }
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  // Callbacks may start new flows; the settling_ flag defers their rate
  // recomputation to the single pass below.
  for (auto& cb : callbacks) cb();
  settling_ = false;
  recompute_rates();
  schedule_next_completion();
}

}  // namespace ghs::sim
