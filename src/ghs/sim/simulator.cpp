#include "ghs/sim/simulator.hpp"

#include <utility>

#include "ghs/util/error.hpp"

namespace ghs::sim {

void Simulator::schedule_at(SimTime t, EventFn fn) {
  GHS_REQUIRE(t >= now_, "cannot schedule into the past: t=" << t
                                                             << " now=" << now_);
  queue_.push(t, std::move(fn));
}

void Simulator::schedule_after(SimTime dt, EventFn fn) {
  GHS_REQUIRE(dt >= 0, "negative delay " << dt);
  schedule_at(now_ + dt, std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  const SimTime t = queue_.next_time();
  EventFn fn = queue_.pop();
  GHS_CHECK(t >= now_, "clock would move backwards");
  if (events_counter_ != nullptr) {
    events_counter_->inc();
    advanced_counter_->inc(t - now_);
  }
  now_ = t;
  ++events_processed_;
  fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

bool Simulator::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  if (queue_.empty()) return true;
  if (advanced_counter_ != nullptr && deadline > now_) {
    advanced_counter_->inc(deadline - now_);
  }
  now_ = deadline;
  return false;
}

void Simulator::set_telemetry(telemetry::Registry* registry) {
  if (registry == nullptr) {
    events_counter_ = nullptr;
    advanced_counter_ = nullptr;
    return;
  }
  events_counter_ = &registry->counter(
      "ghs_sim_events_total", {}, "Discrete events executed by the simulator");
  advanced_counter_ = &registry->counter(
      "ghs_sim_advanced_ps_total", {},
      "Simulated picoseconds the event clock has advanced");
}

}  // namespace ghs::sim
