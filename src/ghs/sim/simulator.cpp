#include "ghs/sim/simulator.hpp"

#include <utility>

#include "ghs/util/error.hpp"

namespace ghs::sim {

Simulator::Simulator(const SimConfig& config)
    : queue_(make_event_queue(config.queue)) {}

void Simulator::schedule_at(SimTime t, Event fn) {
  GHS_REQUIRE(t >= now_, "cannot schedule into the past: t=" << t
                                                             << " now=" << now_);
  queue_->push(t, std::move(fn));
  if (++pending_ > peak_queue_size_) peak_queue_size_ = pending_;
}

void Simulator::schedule_after(SimTime dt, Event fn) {
  GHS_REQUIRE(dt >= 0, "negative delay " << dt);
  schedule_at(now_ + dt, std::move(fn));
}

void Simulator::advance_to(SimTime t) {
  GHS_CHECK(t >= now_, "clock would move backwards");
  if (advanced_counter_ != nullptr) advanced_counter_->inc(t - now_);
  now_ = t;
}

bool Simulator::step() {
  if (queue_->empty()) return false;
  const SimTime t = queue_->next_time();
  Event fn = queue_->pop();
  --pending_;
  advance_to(t);
  if (events_counter_ != nullptr) events_counter_->inc();
  ++events_processed_;
  fn();
  return true;
}

std::size_t Simulator::drain_batch() {
  // Steal the scratch buffer so a handler that re-enters the simulator
  // cannot clobber the batch mid-dispatch; hand the capacity back at the
  // end so steady-state batches never allocate.
  std::vector<Event> batch = std::move(batch_);
  batch.clear();
  const SimTime t = queue_->drain_ready(batch);
  if (t == EventQueue::kNoEvent) {
    batch_ = std::move(batch);
    return 0;
  }
  advance_to(t);
  std::size_t executed = 0;
  for (;;) {
    if (events_counter_ != nullptr) {
      events_counter_->inc(static_cast<std::int64_t>(batch.size()));
    }
    events_processed_ += batch.size();
    executed += batch.size();
    pending_ -= batch.size();
    for (Event& fn : batch) fn();
    batch.clear();
    // Handlers may schedule more work at the current time; those events
    // have higher seq numbers, so collecting them on the next round
    // preserves the exact step()-wise order.
    if (queue_->drain_ready_at(t, batch) == 0) break;
  }
  batch_ = std::move(batch);
  return executed;
}

void Simulator::run() {
  while (drain_batch() > 0) {
  }
}

bool Simulator::run_until(SimTime deadline) {
  while (!queue_->empty() && queue_->next_time() <= deadline) {
    drain_batch();
  }
  if (queue_->empty()) return true;
  if (deadline > now_) advance_to(deadline);
  return false;
}

void Simulator::set_telemetry(telemetry::Registry* registry) {
  if (registry == nullptr) {
    events_counter_ = nullptr;
    advanced_counter_ = nullptr;
    return;
  }
  events_counter_ = &registry->counter(
      "ghs_sim_events_total", {}, "Discrete events executed by the simulator");
  advanced_counter_ = &registry->counter(
      "ghs_sim_advanced_ps_total", {},
      "Simulated picoseconds the event clock has advanced");
}

}  // namespace ghs::sim
