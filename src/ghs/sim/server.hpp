// Serial FIFO server: models strictly serializing hardware units — the
// GPU's atomic/reduction combine path to a single address and the kernel
// launch queue. Submissions are served one at a time in arrival order;
// submit() is purely arithmetic (no event needed) and returns the
// completion time, which callers fold into their own event scheduling.
#pragma once

#include <cstdint>

#include "ghs/util/units.hpp"

namespace ghs::sim {

class SerialServer {
 public:
  /// Enqueues one unit of work arriving at `now` that needs `service` time.
  /// Returns the absolute time the work completes.
  SimTime submit(SimTime now, SimTime service);

  /// Enqueues `count` back-to-back units of `service` each (used when a
  /// whole wave of CTAs issues its combine atomics together).
  SimTime submit_batch(SimTime now, SimTime service, std::int64_t count);

  /// Earliest time a new arrival would start service.
  SimTime available_at() const { return available_at_; }

  /// Total busy time accumulated.
  SimTime busy_time() const { return busy_time_; }

  std::int64_t completed() const { return completed_; }

  /// Forgets all history (used between benchmark repetitions).
  void reset();

 private:
  SimTime available_at_ = 0;
  SimTime busy_time_ = 0;
  std::int64_t completed_ = 0;
};

}  // namespace ghs::sim
