// Discrete-event simulator: a monotone clock plus an event queue. All
// substrate models (memory system, GPU, CPU, UM migration engine) schedule
// work here; nothing in the repository reads wall-clock time.
#pragma once

#include <cstddef>

#include "ghs/sim/event_queue.hpp"
#include "ghs/telemetry/registry.hpp"
#include "ghs/util/units.hpp"

namespace ghs::sim {

class Simulator {
 public:
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute simulated time `t` (>= now()).
  void schedule_at(SimTime t, EventFn fn);

  /// Schedules `fn` after a delay of `dt` picoseconds.
  void schedule_after(SimTime dt, EventFn fn);

  /// Runs until the event queue drains.
  void run();

  /// Runs until the queue drains or the clock would pass `deadline`;
  /// returns true if the queue drained.
  bool run_until(SimTime deadline);

  /// Executes a single event; returns false when the queue is empty.
  bool step();

  std::size_t events_processed() const { return events_processed_; }
  bool idle() const { return queue_.empty(); }

  /// Registers the event/clock counters (null disables). Counters are
  /// shared by identity, so platforms wired to one registry accumulate.
  void set_telemetry(telemetry::Registry* registry);

 private:
  SimTime now_ = 0;
  EventQueue queue_;
  std::size_t events_processed_ = 0;
  telemetry::Counter* events_counter_ = nullptr;
  telemetry::Counter* advanced_counter_ = nullptr;
};

}  // namespace ghs::sim
