// Discrete-event simulator: a monotone clock plus an event queue. All
// substrate models (memory system, GPU, CPU, UM migration engine) schedule
// work here; nothing in the repository reads wall-clock time.
//
// The queue implementation is pluggable (SimConfig::queue): the binary
// heap is the reference, the calendar queue is the million-job fast path.
// Both pop in identical (time, seq) order, so a simulation's output is
// byte-identical across queue kinds at the same seed.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "ghs/sim/event_queue.hpp"
#include "ghs/telemetry/registry.hpp"
#include "ghs/util/units.hpp"

namespace ghs::sim {

/// Knobs fixed at simulator construction.
struct SimConfig {
  QueueKind queue = QueueKind::kHeap;
};

class Simulator {
 public:
  Simulator() : Simulator(SimConfig{}) {}
  explicit Simulator(const SimConfig& config);

  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute simulated time `t` (>= now()).
  void schedule_at(SimTime t, Event fn);

  /// Schedules `fn` after a delay of `dt` picoseconds.
  void schedule_after(SimTime dt, Event fn);

  /// Runs until the event queue drains.
  void run();

  /// Runs until the queue drains or the clock would pass `deadline`;
  /// returns true if the queue drained.
  bool run_until(SimTime deadline);

  /// Executes a single event; returns false when the queue is empty.
  bool step();

  /// Advances the clock once and dispatches every event scheduled at that
  /// timestamp — including events a handler schedules at the (new) current
  /// time, which run in the same batch after the existing ones. Dispatch
  /// order is identical to repeated step() calls; the queue just skips the
  /// per-event re-heapify between same-time pops. Returns the number of
  /// events executed (0 when the queue is empty).
  std::size_t drain_batch();

  std::size_t events_processed() const { return events_processed_; }
  bool idle() const { return queue_->empty(); }

  /// High-water mark of the pending-event count, updated at push.
  std::size_t peak_queue_size() const { return peak_queue_size_; }

  QueueKind queue_kind() const { return queue_->kind(); }

  /// Registers the event/clock counters (null disables). Counters are
  /// shared by identity, so platforms wired to one registry accumulate.
  void set_telemetry(telemetry::Registry* registry);

 private:
  void advance_to(SimTime t);

  SimTime now_ = 0;
  std::unique_ptr<EventQueue> queue_;
  std::vector<Event> batch_;
  std::size_t events_processed_ = 0;
  /// Mirror of queue_->size(), maintained here so the push hot path needs
  /// no virtual call to track the high-water mark.
  std::size_t pending_ = 0;
  std::size_t peak_queue_size_ = 0;
  telemetry::Counter* events_counter_ = nullptr;
  telemetry::Counter* advanced_counter_ = nullptr;
};

}  // namespace ghs::sim
