// Fluid-flow bandwidth sharing ("processor sharing" network).
//
// The memory system is modelled as a set of capacity resources (HBM3,
// LPDDR5X, each NVLink-C2C direction). A *flow* is a byte stream that
// traverses one or more resources and may carry its own rate cap (e.g. the
// warp-level-parallelism limit of the CTAs it aggregates). At any instant
// every active flow progresses at its max-min fair rate: the water-filling
// algorithm repeatedly freezes the most-constrained flows until all flows
// have a rate. Rates are recomputed whenever a flow starts or completes,
// which is exact for piecewise-constant demand.
//
// This captures, with one mechanism, all contention effects the paper's
// experiments rest on: HBM saturation as team count grows, C2C-bound remote
// access in unified-memory mode, and CPU/GPU competition for LPDDR during
// co-execution.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ghs/sim/simulator.hpp"
#include "ghs/util/units.hpp"

namespace ghs::sim {

using ResourceId = std::uint32_t;
using FlowId = std::uint64_t;

struct FlowSpec {
  /// Total bytes the flow must move; must be > 0.
  double bytes = 0.0;
  /// Per-flow rate cap in bytes/s; 0 means uncapped (resource-limited only).
  double rate_cap = 0.0;
  /// Resources the flow traverses; each constrains the rate. Must not be
  /// empty and must not repeat a resource.
  std::vector<ResourceId> resources;
  /// Invoked (once) when the last byte is delivered.
  std::function<void()> on_complete;
  /// Debug label surfaced in logs and error messages.
  std::string label;
};

struct ResourceStats {
  /// Total bytes served by this resource so far.
  double bytes_served = 0.0;
  /// Integral of (utilised rate / capacity) dt, in picoseconds; dividing by
  /// elapsed time gives average utilisation.
  double busy_time_ps = 0.0;
};

class FluidNetwork {
 public:
  explicit FluidNetwork(Simulator& sim) : sim_(sim) {}

  FluidNetwork(const FluidNetwork&) = delete;
  FluidNetwork& operator=(const FluidNetwork&) = delete;

  ResourceId add_resource(std::string name, Bandwidth capacity);

  /// Adjusts a resource's capacity (used by tests and ablations); takes
  /// effect from the current instant.
  void set_capacity(ResourceId id, Bandwidth capacity);

  Bandwidth capacity(ResourceId id) const;
  const std::string& resource_name(ResourceId id) const;
  const ResourceStats& resource_stats(ResourceId id) const;

  /// Starts a flow now; rates of all flows are re-fair-shared.
  FlowId start_flow(FlowSpec spec);

  /// True if the flow is still in flight.
  bool active(FlowId id) const;

  /// Instantaneous rate of an active flow (bytes/s).
  double current_rate(FlowId id) const;

  /// Remaining bytes of an active flow.
  double remaining_bytes(FlowId id) const;

  std::size_t active_flows() const { return flows_.size(); }

 private:
  struct Resource {
    std::string name;
    double capacity = 0.0;  // bytes/s
    ResourceStats stats;
  };

  struct Flow {
    FlowSpec spec;
    double remaining = 0.0;
    double rate = 0.0;
  };

  /// Advances all flows' progress from last_update_ to now.
  void sync_to_now();
  /// Recomputes max-min fair rates for all active flows.
  void recompute_rates();
  /// Completes flows that have drained, invoking callbacks (which may start
  /// new flows); then recomputes and schedules the next completion.
  void settle();
  void schedule_next_completion();

  Simulator& sim_;
  std::vector<Resource> resources_;
  // Ordered map so rate computation iterates flows deterministically.
  std::map<FlowId, Flow> flows_;
  FlowId next_flow_id_ = 1;
  SimTime last_update_ = 0;
  std::uint64_t wake_generation_ = 0;
  bool settling_ = false;
};

}  // namespace ghs::sim
