// Event: the move-only callable a simulator event queue stores.
//
// Replaces std::function<void()> on the hot path: a small-buffer layout
// sized so every scheduling closure in the repository — including the
// serve layer's [this, job] arrival and retry lambdas — lives inline in
// the queue's pool-allocated node instead of in its own heap block. Only
// oversized callables fall back to one heap allocation; nothing is ever
// copied, so captured state (jobs, launch results) moves straight from
// the caller into the node and from the node into the dispatch loop.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace ghs::sim {

class Event {
 public:
  /// Inline capture capacity. 120 bytes fits a serve::Job plus a couple of
  /// pointers (the largest closure the serving layer schedules) and keeps
  /// the whole Event at 144 bytes — two cache lines through the node pool.
  static constexpr std::size_t kInlineBytes = 120;

  Event() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Event> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Event(F&& fn) {  // NOLINT(google-explicit-constructor): callable adaptor
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      invoke_ = [](void* target) { (*static_cast<Fn*>(target))(); };
      manage_ = [](Op op, void* self, void* other) {
        switch (op) {
          case Op::kDestroy:
            static_cast<Fn*>(self)->~Fn();
            break;
          case Op::kMoveFrom:
            ::new (self) Fn(std::move(*static_cast<Fn*>(other)));
            static_cast<Fn*>(other)->~Fn();
            break;
        }
      };
    } else {
      heap_ = new Fn(std::forward<F>(fn));
      invoke_ = [](void* target) { (*static_cast<Fn*>(target))(); };
      manage_ = [](Op op, void* self, void*) {
        if (op == Op::kDestroy) delete static_cast<Fn*>(self);
      };
      heap_deleter_ = true;
    }
  }

  Event(Event&& other) noexcept { move_from(other); }

  Event& operator=(Event&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(other);
    }
    return *this;
  }

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  ~Event() { destroy(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  void operator()() { invoke_(target()); }

 private:
  enum class Op { kDestroy, kMoveFrom };
  using Invoke = void (*)(void*);
  using Manage = void (*)(Op, void*, void*);

  void* target() noexcept { return heap_deleter_ ? heap_ : storage_; }

  void destroy() noexcept {
    if (invoke_ == nullptr) return;
    manage_(Op::kDestroy, target(), nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
    heap_ = nullptr;
    heap_deleter_ = false;
  }

  void move_from(Event& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    heap_deleter_ = other.heap_deleter_;
    if (invoke_ != nullptr) {
      if (heap_deleter_) {
        heap_ = other.heap_;  // steal the heap block
      } else {
        manage_(Op::kMoveFrom, storage_, other.storage_);
      }
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
    other.heap_ = nullptr;
    other.heap_deleter_ = false;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  void* heap_ = nullptr;
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
  bool heap_deleter_ = false;
};

}  // namespace ghs::sim
