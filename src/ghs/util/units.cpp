#include "ghs/util/units.hpp"

#include <array>
#include <cstdio>

namespace ghs {

namespace {

std::string format_with(double value, const char* unit) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.3f %s", value, unit);
  return std::string(buf.data());
}

}  // namespace

std::string format_time(SimTime t) {
  const double ps = static_cast<double>(t);
  if (t < kNanosecond) return format_with(ps, "ps");
  if (t < kMicrosecond) return format_with(ps / 1e3, "ns");
  if (t < kMillisecond) return format_with(ps / 1e6, "us");
  if (t < kSecond) return format_with(ps / 1e9, "ms");
  return format_with(ps / 1e12, "s");
}

std::string format_bytes(Bytes b) {
  const double v = static_cast<double>(b);
  if (b < kKiB) return format_with(v, "B");
  if (b < kMiB) return format_with(v / static_cast<double>(kKiB), "KiB");
  if (b < kGiB) return format_with(v / static_cast<double>(kMiB), "MiB");
  return format_with(v / static_cast<double>(kGiB), "GiB");
}

std::string format_bandwidth(Bandwidth bw) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.1f GB/s", bw.gbps());
  return std::string(buf.data());
}

}  // namespace ghs
