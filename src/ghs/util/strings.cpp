#include "ghs/util/strings.hpp"

#include <array>
#include <cstdio>

#include "ghs/util/error.hpp"

namespace ghs {

std::vector<std::string> split(const std::string& text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& tokens,
                 const std::string& delim) {
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += delim;
    out += tokens[i];
  }
  return out;
}

std::string format_fixed(double value, int decimals) {
  GHS_REQUIRE(decimals >= 0 && decimals <= 12, "decimals=" << decimals);
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", decimals, value);
  return std::string(buf.data());
}

std::string pad_left(const std::string& text, std::size_t width) {
  if (text.size() >= width) return text;
  return std::string(width - text.size(), ' ') + text;
}

std::string pad_right(const std::string& text, std::size_t width) {
  if (text.size() >= width) return text;
  return text + std::string(width - text.size(), ' ');
}

}  // namespace ghs
