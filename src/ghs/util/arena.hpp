// Arena and Pool: the allocation substrate of the event hot path.
//
// An Arena is a chunked bump allocator: allocations are pointer bumps into
// geometrically sized chunks, nothing is freed individually, and the whole
// arena releases at destruction (or reset()). A Pool<T> layers a typed
// free list on top, so fixed-size nodes (event-queue entries, trace ring
// chunks) recycle in O(1) without touching the global allocator. Together
// they remove the per-event malloc/free traffic that dominated
// million-job simulations (see docs/PERFORMANCE.md).
//
// Neither type is thread-safe; the simulator is single-threaded by design
// and each owner embeds its own arena/pool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "ghs/util/error.hpp"

namespace ghs::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = std::size_t{64} * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {
    GHS_REQUIRE(chunk_bytes_ > 0, "arena chunk_bytes must be positive");
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// Never returns null; grows by whole chunks as needed.
  void* allocate(std::size_t bytes, std::size_t align) {
    GHS_REQUIRE(align > 0 && (align & (align - 1)) == 0,
                "alignment " << align << " is not a power of two");
    if (!chunks_.empty()) {
      if (void* p = try_allocate(chunks_.back(), bytes, align)) return p;
    }
    // A fresh chunk's base is only guaranteed new[]-aligned, so reserve
    // worst-case padding for over-aligned requests up front.
    const std::size_t need = bytes + align;
    const std::size_t size = need > chunk_bytes_ ? need : chunk_bytes_;
    chunks_.push_back(Chunk{std::make_unique<unsigned char[]>(size), size, 0});
    void* p = try_allocate(chunks_.back(), bytes, align);
    GHS_CHECK(p != nullptr, "fresh arena chunk cannot satisfy allocation");
    return p;
  }

  /// Discards every allocation and returns the chunks to the system.
  void reset() {
    chunks_.clear();
    bytes_served_ = 0;
  }

  std::size_t chunk_count() const { return chunks_.size(); }
  /// Bytes handed out since construction/reset (excludes alignment waste).
  std::size_t bytes_served() const { return bytes_served_; }
  /// Bytes reserved from the system.
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  /// Bump-allocates from `chunk` if the (address-)aligned request fits.
  void* try_allocate(Chunk& chunk, std::size_t bytes, std::size_t align) {
    const auto addr =
        reinterpret_cast<std::uintptr_t>(chunk.data.get() + chunk.used);
    const std::size_t padding =
        static_cast<std::size_t>((align - (addr & (align - 1))) & (align - 1));
    if (chunk.used + padding + bytes > chunk.size) return nullptr;
    void* p = chunk.data.get() + chunk.used + padding;
    chunk.used += padding + bytes;
    bytes_served_ += bytes;
    return p;
  }

  std::vector<Chunk> chunks_;
  std::size_t chunk_bytes_;
  std::size_t bytes_served_ = 0;
};

/// Typed object pool: make() placement-constructs into a recycled slot (or
/// carves a fresh one from the embedded arena), release() destroys and
/// recycles. Slots are never returned to the system until the pool dies,
/// so steady-state make/release cycles perform zero allocations.
///
/// The pool does not track live objects: destroying a pool with objects
/// still alive releases their memory without running their destructors, so
/// owners must release (or drain) everything first — live() makes that
/// auditable.
template <typename T>
class Pool {
 public:
  explicit Pool(std::size_t chunk_objects = 256)
      : arena_(chunk_objects * sizeof(Slot)) {
    GHS_REQUIRE(chunk_objects > 0, "pool chunk_objects must be positive");
  }

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  template <typename... Args>
  T* make(Args&&... args) {
    Slot* slot = free_list_;
    if (slot != nullptr) {
      free_list_ = slot->next;
    } else {
      slot = static_cast<Slot*>(arena_.allocate(sizeof(Slot), alignof(Slot)));
      ++capacity_;
    }
    T* object = new (slot->storage) T(std::forward<Args>(args)...);
    ++live_;
    return object;
  }

  void release(T* object) {
    GHS_REQUIRE(object != nullptr, "release(nullptr)");
    object->~T();
    // The object was constructed at offset 0 of its slot, so the slot is
    // recoverable from the object pointer.
    Slot* slot = reinterpret_cast<Slot*>(object);
    slot->next = free_list_;
    free_list_ = slot;
    --live_;
  }

  /// Objects currently constructed and not yet released.
  std::size_t live() const { return live_; }
  /// Slots ever carved from the arena (live + recycled).
  std::size_t capacity() const { return capacity_; }
  std::size_t bytes_reserved() const { return arena_.bytes_reserved(); }

 private:
  union Slot {
    Slot* next;
    alignas(T) unsigned char storage[sizeof(T)];
  };

  Arena arena_;
  Slot* free_list_ = nullptr;
  std::size_t live_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace ghs::util
