#include "ghs/util/properties.hpp"

#include <fstream>
#include <sstream>

#include "ghs/util/error.hpp"

namespace ghs {

namespace {

std::string trim(const std::string& text) {
  const auto first = text.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = text.find_last_not_of(" \t\r");
  return text.substr(first, last - first + 1);
}

}  // namespace

Properties Properties::parse(const std::string& text) {
  Properties props;
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    GHS_REQUIRE(eq != std::string::npos,
                "line " << line_number << ": expected key = value, got '"
                        << line << "'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    GHS_REQUIRE(!key.empty(), "line " << line_number << ": empty key");
    GHS_REQUIRE(props.values_.emplace(key, value).second,
                "line " << line_number << ": duplicate key '" << key << "'");
  }
  return props;
}

Properties Properties::load_file(const std::string& path) {
  std::ifstream in(path);
  GHS_REQUIRE(in.good(), "cannot open properties file '" << path << "'");
  std::ostringstream contents;
  contents << in.rdbuf();
  return parse(contents.str());
}

bool Properties::contains(const std::string& key) const {
  return values_.count(key) > 0;
}

std::optional<std::string> Properties::get_string(
    const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> Properties::get_double(const std::string& key) const {
  const auto text = get_string(key);
  if (!text) return std::nullopt;
  std::size_t pos = 0;
  double parsed = 0.0;
  bool ok = true;
  try {
    parsed = std::stod(*text, &pos);
  } catch (const std::exception&) {
    ok = false;
  }
  GHS_REQUIRE(ok && pos == text->size(),
              "property '" << key << "': '" << *text << "' is not a number");
  return parsed;
}

std::optional<long long> Properties::get_int(const std::string& key) const {
  const auto text = get_string(key);
  if (!text) return std::nullopt;
  std::size_t pos = 0;
  long long parsed = 0;
  bool ok = true;
  try {
    parsed = std::stoll(*text, &pos);
  } catch (const std::exception&) {
    ok = false;
  }
  GHS_REQUIRE(ok && pos == text->size(),
              "property '" << key << "': '" << *text
                           << "' is not an integer");
  return parsed;
}

std::optional<bool> Properties::get_bool(const std::string& key) const {
  const auto text = get_string(key);
  if (!text) return std::nullopt;
  if (*text == "true" || *text == "1") return true;
  if (*text == "false" || *text == "0") return false;
  GHS_REQUIRE(false,
              "property '" << key << "': '" << *text << "' is not a bool");
  return false;
}

std::vector<std::string> Properties::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

}  // namespace ghs
