// Minimal leveled logger. Benches and examples set the level from the CLI;
// the simulator logs structural events at Debug and calibration-relevant
// summaries at Info.
#pragma once

#include <sstream>
#include <string>

namespace ghs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log level; defaults to kWarn so tests and benches stay quiet.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-sensitive).
LogLevel parse_log_level(const std::string& name);

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}  // namespace detail

}  // namespace ghs

#define GHS_LOG(level, ...)                                          \
  do {                                                               \
    if (static_cast<int>(level) >=                                   \
        static_cast<int>(::ghs::log_level())) {                      \
      ::std::ostringstream ghs_log_oss_;                             \
      ghs_log_oss_ << __VA_ARGS__;                                   \
      ::ghs::detail::log_line(level, ghs_log_oss_.str());            \
    }                                                                \
  } while (false)

#define GHS_DEBUG(...) GHS_LOG(::ghs::LogLevel::kDebug, __VA_ARGS__)
#define GHS_INFO(...) GHS_LOG(::ghs::LogLevel::kInfo, __VA_ARGS__)
#define GHS_WARN(...) GHS_LOG(::ghs::LogLevel::kWarn, __VA_ARGS__)
#define GHS_ERROR(...) GHS_LOG(::ghs::LogLevel::kError, __VA_ARGS__)
