#include "ghs/util/error.hpp"

namespace ghs::detail {

void throw_error(const char* kind, const char* cond, const char* file,
                 int line, const std::string& msg) {
  std::ostringstream oss;
  oss << "ghs " << kind << " failed: (" << cond << ") at " << file << ":"
      << line;
  if (!msg.empty()) {
    oss << " — " << msg;
  }
  throw Error(oss.str());
}

}  // namespace ghs::detail
