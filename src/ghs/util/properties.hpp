// Minimal properties-file support: `key = value` lines, '#' comments,
// blank lines ignored. Used to describe alternative systems (a what-if
// GH200, a future part) in text files consumed by benches and examples via
// --config=FILE, instead of recompiling SystemConfig changes.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ghs {

class Properties {
 public:
  /// Parses properties text; throws ghs::Error on malformed lines or
  /// duplicate keys.
  static Properties parse(const std::string& text);

  /// Reads and parses a file; throws on I/O failure.
  static Properties load_file(const std::string& path);

  bool contains(const std::string& key) const;
  std::size_t size() const { return values_.size(); }

  /// Typed getters; return nullopt when the key is absent and throw when
  /// the value does not parse as the requested type.
  std::optional<std::string> get_string(const std::string& key) const;
  std::optional<double> get_double(const std::string& key) const;
  std::optional<long long> get_int(const std::string& key) const;
  std::optional<bool> get_bool(const std::string& key) const;

  /// All keys, sorted (for unknown-key diagnostics).
  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace ghs
