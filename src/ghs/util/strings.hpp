// String helpers shared by table rendering and CLI handling.
#pragma once

#include <string>
#include <vector>

namespace ghs {

/// Splits on a delimiter; empty tokens are preserved.
std::vector<std::string> split(const std::string& text, char delim);

/// Joins tokens with a delimiter.
std::string join(const std::vector<std::string>& tokens,
                 const std::string& delim);

/// Fixed-precision decimal rendering, e.g. format_fixed(3.14159, 2) == "3.14".
std::string format_fixed(double value, int decimals);

/// Pads with spaces on the left (right-aligns) to at least `width`.
std::string pad_left(const std::string& text, std::size_t width);

/// Pads with spaces on the right (left-aligns) to at least `width`.
std::string pad_right(const std::string& text, std::size_t width);

}  // namespace ghs
