#include "ghs/util/math.hpp"

#include <algorithm>
#include <cmath>

namespace ghs {

double relative_difference(double a, double b) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-300});
  return std::fabs(a - b) / scale;
}

}  // namespace ghs
