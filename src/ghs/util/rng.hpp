// Deterministic PRNG used by workload generators. The simulator itself is
// fully deterministic and takes no randomness; only input-data patterns use
// this. xoshiro256** seeded through SplitMix64, as recommended by the
// authors of the generator family.
#pragma once

#include <cstdint>

namespace ghs {

/// SplitMix64 step; used to expand a single seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) : s_{} {
    std::uint64_t sm = seed;
    for (auto& word : s_) {
      word = splitmix64(sm);
    }
  }

  constexpr std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound).
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next_u64() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace ghs
