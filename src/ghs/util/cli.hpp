// Tiny declarative command-line parser used by benches and examples.
//
//   ghs::Cli cli("fig1_gpu_sweep", "Reproduces Fig. 1 of the paper");
//   auto case_name = cli.add_string("case", "all", "C1|C2|C3|C4|all");
//   auto n_iters   = cli.add_int("iters", 200, "timing repetitions");
//   cli.parse(argc, argv);            // throws ghs::Error on bad input
//   use(*case_name, *n_iters);
//
// Options are spelled --name=value or --name value; --help prints usage and
// exits. Unknown options are an error so typos do not silently fall back to
// defaults.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace ghs {

class Cli {
 public:
  Cli(std::string program, std::string description);
  ~Cli();

  Cli(const Cli&) = delete;
  Cli& operator=(const Cli&) = delete;

  /// Registers options. The returned pointer stays owned by the Cli and is
  /// filled in by parse(); it is valid for the Cli's lifetime.
  const std::string* add_string(const std::string& name,
                                std::string default_value,
                                const std::string& help);
  const long long* add_int(const std::string& name, long long default_value,
                           const std::string& help);
  const double* add_double(const std::string& name, double default_value,
                           const std::string& help);
  const bool* add_flag(const std::string& name, const std::string& help);

  /// Parses argv. On --help, prints usage to stdout and std::exit(0)s.
  void parse(int argc, const char* const* argv);

  /// parse() for program entry points: a bad command line prints the error
  /// plus the usage text to stderr and std::exit(2)s instead of letting the
  /// ghs::Error escape main() into std::terminate.
  void parse_or_exit(int argc, const char* const* argv);

  /// Renders the usage text (also used by --help).
  std::string usage() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ghs
