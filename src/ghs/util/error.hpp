// Error type and invariant-checking macros used across the library.
//
// Two macro families:
//   GHS_REQUIRE(cond, msg...)  - precondition on caller-supplied input;
//                                always on, throws ghs::Error.
//   GHS_CHECK(cond, msg...)    - internal invariant; always on, throws
//                                ghs::Error tagged as an internal bug.
// Both carry file:line so failures in a deep simulation stack are traceable.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ghs {

/// Exception thrown on precondition or invariant violation anywhere in the
/// library. Benches and examples let it terminate with the message; tests
/// assert on it.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] void throw_error(const char* kind, const char* cond,
                              const char* file, int line,
                              const std::string& msg);

}  // namespace detail
}  // namespace ghs

#define GHS_REQUIRE(cond, ...)                                             \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::std::ostringstream ghs_oss_;                                       \
      ghs_oss_ << __VA_ARGS__;                                             \
      ::ghs::detail::throw_error("precondition", #cond, __FILE__,          \
                                 __LINE__, ghs_oss_.str());                \
    }                                                                      \
  } while (false)

#define GHS_CHECK(cond, ...)                                               \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::std::ostringstream ghs_oss_;                                       \
      ghs_oss_ << __VA_ARGS__;                                             \
      ::ghs::detail::throw_error("internal invariant", #cond, __FILE__,    \
                                 __LINE__, ghs_oss_.str());                \
    }                                                                      \
  } while (false)

#define GHS_UNREACHABLE(...)                                               \
  do {                                                                     \
    ::std::ostringstream ghs_oss_;                                         \
    ghs_oss_ << __VA_ARGS__;                                               \
    ::ghs::detail::throw_error("unreachable", "false", __FILE__, __LINE__, \
                               ghs_oss_.str());                            \
  } while (false)
