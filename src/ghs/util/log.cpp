#include "ghs/util/log.hpp"

#include <atomic>
#include <cstdio>

#include "ghs/util/error.hpp"

namespace ghs {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  GHS_REQUIRE(false, "unknown log level '" << name << "'");
  return LogLevel::kWarn;
}

namespace detail {

void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[ghs %-5s] %s\n", level_name(level), msg.c_str());
}

}  // namespace detail
}  // namespace ghs
