// Small integer-math helpers shared by the simulator and the runtime model.
#pragma once

#include <cstdint>
#include <type_traits>

#include "ghs/util/error.hpp"

namespace ghs {

/// ceil(a / b) for non-negative integers.
template <typename T>
constexpr T ceil_div(T a, T b) {
  static_assert(std::is_integral_v<T>);
  return (a + b - 1) / b;
}

/// True iff x is a power of two (zero is not).
template <typename T>
constexpr bool is_pow2(T x) {
  static_assert(std::is_integral_v<T>);
  return x > 0 && (x & (x - 1)) == 0;
}

/// Rounds x up to the next multiple of m (m > 0).
template <typename T>
constexpr T round_up(T x, T m) {
  return ceil_div(x, m) * m;
}

/// Integer log2 of a power of two.
template <typename T>
constexpr int log2_pow2(T x) {
  int n = 0;
  while (x > 1) {
    x >>= 1;
    ++n;
  }
  return n;
}

/// Linear interpolation.
constexpr double lerp(double a, double b, double t) {
  return a + (b - a) * t;
}

/// Relative difference |a-b| / max(|a|,|b|,eps); used by float verification.
double relative_difference(double a, double b);

}  // namespace ghs
