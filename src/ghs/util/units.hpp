// Strong unit types used throughout the simulator.
//
// Simulated time is kept in integer picoseconds (SimTime) so that event
// ordering is exact and runs are bit-reproducible; bandwidths and byte
// counts are converted through double-precision only at the edges.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "ghs/util/error.hpp"

namespace ghs {

/// Simulated time in integer picoseconds. 2^63 ps ~ 106 days, far beyond any
/// experiment in this repository.
using SimTime = std::int64_t;

inline constexpr SimTime kPicosecond = 1;
inline constexpr SimTime kNanosecond = 1'000;
inline constexpr SimTime kMicrosecond = 1'000'000;
inline constexpr SimTime kMillisecond = 1'000'000'000;
inline constexpr SimTime kSecond = 1'000'000'000'000;

/// Converts simulated picoseconds to seconds (for reporting only).
constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts seconds to simulated picoseconds, rounding to nearest.
inline SimTime from_seconds(double s) {
  GHS_REQUIRE(s >= 0.0 && std::isfinite(s), "seconds=" << s);
  return static_cast<SimTime>(std::llround(s * static_cast<double>(kSecond)));
}

/// Converts nanoseconds to simulated time.
constexpr SimTime from_nanoseconds(double ns) {
  return static_cast<SimTime>(ns * static_cast<double>(kNanosecond));
}

/// Byte count. Signed so that arithmetic on differences is safe.
using Bytes = std::int64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/// Bandwidth in bytes per (real, simulated) second. The paper reports GB/s
/// with the decimal convention (1 GB = 1e9 bytes); we follow that.
struct Bandwidth {
  double bytes_per_second = 0.0;

  static constexpr Bandwidth from_gbps(double gb_per_s) {
    return Bandwidth{gb_per_s * 1e9};
  }
  constexpr double gbps() const { return bytes_per_second / 1e9; }

  constexpr auto operator<=>(const Bandwidth&) const = default;
};

/// Time to move `bytes` at bandwidth `bw` (rounded up so a nonzero transfer
/// never takes zero simulated time).
inline SimTime transfer_time(Bytes bytes, Bandwidth bw) {
  GHS_REQUIRE(bytes >= 0, "bytes=" << bytes);
  GHS_REQUIRE(bw.bytes_per_second > 0.0, "bw=" << bw.bytes_per_second);
  if (bytes == 0) return 0;
  const double secs =
      static_cast<double>(bytes) / bw.bytes_per_second;
  const SimTime t = from_seconds(secs);
  return t > 0 ? t : 1;
}

/// Achieved bandwidth for `bytes` moved in simulated time `t`.
inline Bandwidth achieved_bandwidth(Bytes bytes, SimTime t) {
  GHS_REQUIRE(t > 0, "t=" << t);
  return Bandwidth{static_cast<double>(bytes) / to_seconds(t)};
}

/// Formats a simulated time with an adaptive unit, e.g. "1.234 ms".
std::string format_time(SimTime t);

/// Formats a byte count with an adaptive binary unit, e.g. "4.00 GiB".
std::string format_bytes(Bytes b);

/// Formats a bandwidth as "NNNN.N GB/s" (decimal GB, as in the paper).
std::string format_bandwidth(Bandwidth bw);

}  // namespace ghs
