#include "ghs/util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <variant>

#include "ghs/util/error.hpp"

namespace ghs {

namespace {

struct Option {
  std::string name;
  std::string help;
  std::string default_text;
  bool is_flag = false;
  // Storage for the parsed value; exactly one member is engaged.
  std::unique_ptr<std::string> str;
  std::unique_ptr<long long> num;
  std::unique_ptr<double> real;
  std::unique_ptr<bool> flag;

  void assign(const std::string& text) {
    if (str) {
      *str = text;
      return;
    }
    GHS_CHECK(num || real, "flag option assigned a value");
    bool parsed = false;
    try {
      std::size_t pos = 0;
      if (num) {
        *num = std::stoll(text, &pos);
      } else {
        *real = std::stod(text, &pos);
      }
      parsed = pos == text.size();
    } catch (const std::exception&) {
      parsed = false;
    }
    GHS_REQUIRE(parsed, "option --" << name << ": '" << text
                                    << "' is not a valid "
                                    << (num ? "integer" : "number"));
  }
};

}  // namespace

struct Cli::Impl {
  std::string program;
  std::string description;
  std::vector<Option> options;

  Option* find(const std::string& name) {
    for (auto& opt : options) {
      if (opt.name == name) return &opt;
    }
    return nullptr;
  }

  Option& add(const std::string& name, const std::string& help) {
    GHS_REQUIRE(find(name) == nullptr, "duplicate option --" << name);
    options.push_back(Option{});
    Option& opt = options.back();
    opt.name = name;
    opt.help = help;
    return opt;
  }
};

Cli::Cli(std::string program, std::string description)
    : impl_(std::make_unique<Impl>()) {
  impl_->program = std::move(program);
  impl_->description = std::move(description);
}

Cli::~Cli() = default;

const std::string* Cli::add_string(const std::string& name,
                                   std::string default_value,
                                   const std::string& help) {
  Option& opt = impl_->add(name, help);
  opt.default_text = default_value;
  opt.str = std::make_unique<std::string>(std::move(default_value));
  return opt.str.get();
}

const long long* Cli::add_int(const std::string& name, long long default_value,
                              const std::string& help) {
  Option& opt = impl_->add(name, help);
  opt.default_text = std::to_string(default_value);
  opt.num = std::make_unique<long long>(default_value);
  return opt.num.get();
}

const double* Cli::add_double(const std::string& name, double default_value,
                              const std::string& help) {
  Option& opt = impl_->add(name, help);
  opt.default_text = std::to_string(default_value);
  opt.real = std::make_unique<double>(default_value);
  return opt.real.get();
}

const bool* Cli::add_flag(const std::string& name, const std::string& help) {
  Option& opt = impl_->add(name, help);
  opt.default_text = "false";
  opt.is_flag = true;
  opt.flag = std::make_unique<bool>(false);
  return opt.flag.get();
}

std::string Cli::usage() const {
  std::ostringstream oss;
  oss << impl_->program << " — " << impl_->description << "\n\nOptions:\n";
  for (const auto& opt : impl_->options) {
    oss << "  --" << opt.name;
    if (!opt.is_flag) oss << "=<value>";
    oss << "\n      " << opt.help << " (default: " << opt.default_text
        << ")\n";
  }
  oss << "  --help\n      Print this message and exit.\n";
  return oss.str();
}

void Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    GHS_REQUIRE(arg.rfind("--", 0) == 0,
                "unexpected positional argument '" << arg << "'");
    arg = arg.substr(2);
    if (arg == "help") {
      std::cout << usage();
      std::exit(0);
    }
    std::string name = arg;
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    Option* opt = impl_->find(name);
    GHS_REQUIRE(opt != nullptr, "unknown option --" << name);
    if (opt->is_flag) {
      GHS_REQUIRE(!has_value, "flag --" << name << " does not take a value");
      *opt->flag = true;
      continue;
    }
    if (!has_value) {
      GHS_REQUIRE(i + 1 < argc, "option --" << name << " needs a value");
      value = argv[++i];
    }
    opt->assign(value);
  }
}

void Cli::parse_or_exit(int argc, const char* const* argv) {
  try {
    parse(argc, argv);
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << "\n\n" << usage();
    std::exit(2);
  }
}

}  // namespace ghs
