// OpenMP target-offload runtime model.
//
// Exposes the directives the paper's listings use, shaped as an API:
//
//   target teams distribute parallel for reduction(+:sum)     -> target_teams_reduce
//     [num_teams(...)] [thread_limit(...)] [nowait]           -> TeamsClauses
//   target update to/from(sum)                                -> target_update_scalar
//   map(to: in[0:M]) outside UM mode                          -> target_alloc + map_to
//   omp parallel { omp master { target ... nowait } for simd }-> parallel_co_execute
//
// Outside UM mode the input array must be explicitly mapped; the runtime
// tracks device buffers and copies through the transfer engine. In UM mode
// (`unified = true` on the loop) the map clause is a no-op placement hint
// and kernels read managed pages wherever they live — matching the
// `-gpu=mem:unified` semantics the paper describes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ghs/cpu/device.hpp"
#include "ghs/gpu/device.hpp"
#include "ghs/mem/transfer.hpp"
#include "ghs/omp/env.hpp"
#include "ghs/omp/heuristics.hpp"
#include "ghs/sim/simulator.hpp"
#include "ghs/trace/tracer.hpp"
#include "ghs/um/manager.hpp"

namespace ghs::omp {

/// Clauses on the combined teams worksharing-loop construct.
struct TeamsClauses {
  std::optional<std::int64_t> num_teams;
  std::optional<int> thread_limit;
  bool nowait = false;
};

/// The offloaded reduction loop (paper Listings 2/3/5): `iterations` trips,
/// each accumulating `v` elements of `element_size` bytes.
struct OffloadLoop {
  std::string label;
  std::int64_t iterations = 0;
  int v = 1;
  Bytes element_size = 4;
  gpu::CombineClass combine = gpu::CombineClass::kNativeInt;
  gpu::CombineStrategy strategy = gpu::CombineStrategy::kAtomicPerCta;
  /// Input arrays read per loop element (2 for a dot product).
  int input_streams = 1;

  /// UM mode: input is a managed allocation; otherwise it must have been
  /// mapped to a device buffer.
  bool unified = false;
  um::AllocId managed_alloc = 0;
  Bytes range_offset = 0;

  std::int64_t elements() const {
    return iterations * static_cast<std::int64_t>(v);
  }
};

using DeviceBufferId = std::uint32_t;

struct RuntimeOptions {
  GridHeuristic heuristic;
  /// OMP_* ICVs; resolved with clause > environment > heuristic precedence.
  Environment env;
  /// Host-side latency of a `target update` of a scalar (runtime call +
  /// tiny transfer).
  SimTime scalar_update_latency = from_nanoseconds(3000.0);
};

struct RuntimeStats {
  std::int64_t target_regions = 0;
  std::int64_t scalar_updates = 0;
  Bytes mapped_bytes = 0;
};

/// Result of a co-executed parallel region (paper Listing 7).
struct CoExecResult {
  SimTime start = 0;
  SimTime end = 0;
  /// Present when the region offloaded work / ran a CPU loop.
  std::optional<gpu::KernelResult> gpu;
  std::optional<cpu::CpuReduceResult> cpu;

  SimTime duration() const { return end - start; }
};

class Runtime {
 public:
  Runtime(sim::Simulator& sim, mem::TransferEngine& transfers,
          um::UmManager& um, gpu::GpuDevice& gpu, cpu::CpuDevice& cpu,
          RuntimeOptions options);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  sim::Simulator& sim() { return sim_; }
  gpu::GpuDevice& gpu() { return gpu_; }
  cpu::CpuDevice& cpu() { return cpu_; }
  um::UmManager& um() { return um_; }
  const RuntimeOptions& options() const { return options_; }

  // --- explicit data environment (non-UM mode) ---

  /// Allocates a device-resident buffer (what `map(alloc:)` would create).
  DeviceBufferId target_alloc(Bytes size, std::string label);

  /// Copies host data into a device buffer (`map(to:)` / `target update
  /// to`); completion via callback.
  void map_to(DeviceBufferId buffer, std::function<void()> on_complete);

  // --- constructs ---

  /// `target update to/from(scalar)`: fixed-latency runtime call.
  void target_update_scalar(std::function<void()> on_complete);

  /// The combined construct with a reduction clause. Applies the grid
  /// heuristic when num_teams is absent; completion delivers the kernel
  /// timing.
  void target_teams_reduce(
      const OffloadLoop& loop, const TeamsClauses& clauses,
      std::function<void(const gpu::KernelResult&)> on_complete);

  /// Paper Listing 7: a host parallel region whose master thread launches
  /// the target region with nowait while the remaining threads run the
  /// `for simd` loop; the implicit barrier joins both. Either part may be
  /// absent (p = 0 or p = 1).
  void parallel_co_execute(
      const std::optional<OffloadLoop>& gpu_loop,
      const TeamsClauses& gpu_clauses,
      const std::optional<cpu::CpuReduceRequest>& cpu_part,
      std::function<void(const CoExecResult&)> on_complete);

  /// The grid the heuristic would pick for an unclaused loop (exposed for
  /// tests and the ablation bench).
  std::int64_t default_grid(std::int64_t iterations) const;

  /// Builds the kernel descriptor a loop+clauses pair lowers to (exposed
  /// for tests).
  gpu::KernelDesc lower(const OffloadLoop& loop,
                        const TeamsClauses& clauses) const;

  const RuntimeStats& stats() const { return stats_; }

  /// Installs a span recorder for runtime-level events (co-execution
  /// regions, map copies); null disables.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

 private:
  trace::Tracer* tracer_ = nullptr;

  struct DeviceBuffer {
    Bytes size = 0;
    std::string label;
  };

  sim::Simulator& sim_;
  mem::TransferEngine& transfers_;
  um::UmManager& um_;
  gpu::GpuDevice& gpu_;
  cpu::CpuDevice& cpu_;
  RuntimeOptions options_;
  std::vector<DeviceBuffer> buffers_;
  RuntimeStats stats_;
};

}  // namespace ghs::omp
