#include "ghs/omp/runtime.hpp"

#include <memory>
#include <utility>

#include "ghs/util/error.hpp"
#include "ghs/util/math.hpp"

namespace ghs::omp {

Runtime::Runtime(sim::Simulator& sim, mem::TransferEngine& transfers,
                 um::UmManager& um, gpu::GpuDevice& gpu, cpu::CpuDevice& cpu,
                 RuntimeOptions options)
    : sim_(sim),
      transfers_(transfers),
      um_(um),
      gpu_(gpu),
      cpu_(cpu),
      options_(options) {}

DeviceBufferId Runtime::target_alloc(Bytes size, std::string label) {
  GHS_REQUIRE(size > 0, "device buffer '" << label << "' has size " << size);
  buffers_.push_back(DeviceBuffer{size, std::move(label)});
  return static_cast<DeviceBufferId>(buffers_.size() - 1);
}

void Runtime::map_to(DeviceBufferId buffer,
                     std::function<void()> on_complete) {
  GHS_REQUIRE(buffer < buffers_.size(), "device buffer id " << buffer);
  const DeviceBuffer& b = buffers_[buffer];
  stats_.mapped_bytes += b.size;
  transfers_.copy(b.size, mem::RegionId::kLpddr, mem::RegionId::kHbm,
                  std::move(on_complete), "map-to:" + b.label);
}

void Runtime::target_update_scalar(std::function<void()> on_complete) {
  ++stats_.scalar_updates;
  sim_.schedule_after(options_.scalar_update_latency,
                      [on_complete = std::move(on_complete)] {
                        if (on_complete) on_complete();
                      });
}

std::int64_t Runtime::default_grid(std::int64_t iterations) const {
  return heuristic_grid(options_.heuristic, iterations);
}

gpu::KernelDesc Runtime::lower(const OffloadLoop& loop,
                               const TeamsClauses& clauses) const {
  GHS_REQUIRE(loop.iterations > 0, "loop '" << loop.label
                                            << "' has no iterations");
  GHS_REQUIRE(loop.v >= 1, "loop '" << loop.label << "' has v=" << loop.v);
  gpu::KernelDesc desc;
  desc.label = loop.label;
  // Spec precedence for the grid geometry: clause > OMP_* environment >
  // the implementation heuristic.
  if (clauses.num_teams) {
    GHS_REQUIRE(*clauses.num_teams > 0, "num_teams=" << *clauses.num_teams);
    desc.grid = std::min(*clauses.num_teams, loop.iterations);
  } else if (options_.env.num_teams) {
    desc.grid = std::min(*options_.env.num_teams, loop.iterations);
  } else {
    desc.grid = heuristic_grid(options_.heuristic, loop.iterations);
  }
  desc.threads_per_cta = clauses.thread_limit.value_or(
      options_.env.teams_thread_limit.value_or(
          options_.heuristic.default_threads));
  GHS_REQUIRE(desc.threads_per_cta > 0 && desc.threads_per_cta % 32 == 0,
              "thread_limit=" << desc.threads_per_cta);
  desc.elements = loop.elements();
  desc.element_size = loop.element_size;
  desc.v = loop.v;
  desc.combine = loop.combine;
  desc.strategy = loop.strategy;
  GHS_REQUIRE(loop.input_streams >= 1, "input_streams=" << loop.input_streams);
  GHS_REQUIRE(loop.input_streams == 1 || !loop.unified,
              "multi-stream loops are modelled in explicit-map mode only");
  desc.input_streams = loop.input_streams;
  desc.input = loop.unified ? gpu::InputLocation::kManaged
                            : gpu::InputLocation::kDeviceBuffer;
  desc.managed_alloc = loop.managed_alloc;
  desc.range_offset = loop.range_offset;
  return desc;
}

void Runtime::target_teams_reduce(
    const OffloadLoop& loop, const TeamsClauses& clauses,
    std::function<void(const gpu::KernelResult&)> on_complete) {
  ++stats_.target_regions;
  gpu_.launch(lower(loop, clauses), std::move(on_complete));
}

void Runtime::parallel_co_execute(
    const std::optional<OffloadLoop>& gpu_loop,
    const TeamsClauses& gpu_clauses,
    const std::optional<cpu::CpuReduceRequest>& cpu_part,
    std::function<void(const CoExecResult&)> on_complete) {
  GHS_REQUIRE(gpu_loop.has_value() || cpu_part.has_value(),
              "co-execution with neither a GPU nor a CPU part");

  auto result = std::make_shared<CoExecResult>();
  result->start = sim_.now();
  auto pending = std::make_shared<int>((gpu_loop ? 1 : 0) +
                                       (cpu_part ? 1 : 0));
  const SimTime fork = cpu_.config().parallel_region_overhead / 2;
  const SimTime join = cpu_.config().parallel_region_overhead / 2;

  auto one_done = [this, result, pending, join,
                   on_complete = std::move(on_complete)] {
    GHS_CHECK(*pending > 0, "co-execution completion underflow");
    if (--*pending > 0) return;
    // Implicit barrier at the end of the parallel region.
    sim_.schedule_after(join, [this, result, on_complete] {
      result->end = sim_.now();
      trace::record_span(tracer_, trace::Track::kRuntime,
                         "omp parallel (co-exec)", result->start,
                         result->end);
      if (on_complete) on_complete(*result);
    });
  };

  sim_.schedule_after(fork, [this, gpu_loop, gpu_clauses, cpu_part, result,
                             one_done] {
    if (gpu_loop) {
      // Master thread: target region with nowait.
      ++stats_.target_regions;
      gpu_.launch(lower(*gpu_loop, gpu_clauses),
                  [result, one_done](const gpu::KernelResult& r) {
                    result->gpu = r;
                    one_done();
                  });
    }
    if (cpu_part) {
      cpu::CpuReduceRequest request = *cpu_part;
      // The enclosing parallel region's fork/join is modelled here, not in
      // the worksharing loop.
      request.include_region_overhead = false;
      cpu_.reduce(request, [result, one_done](const cpu::CpuReduceResult& r) {
        result->cpu = r;
        one_done();
      });
    }
  });
}

}  // namespace ghs::omp
