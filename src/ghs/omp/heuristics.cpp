#include "ghs/omp/heuristics.hpp"

#include <algorithm>

#include "ghs/util/error.hpp"
#include "ghs/util/math.hpp"

namespace ghs::omp {

std::int64_t heuristic_grid(const GridHeuristic& h, std::int64_t iterations) {
  GHS_REQUIRE(iterations > 0, "iterations=" << iterations);
  GHS_REQUIRE(h.default_threads > 0, "default_threads");
  const std::int64_t grid =
      ceil_div(iterations, static_cast<std::int64_t>(h.default_threads));
  return std::min(grid, h.grid_clamp);
}

std::int64_t occupancy_grid(int num_sms, int ctas_per_sm, int waves_per_sm) {
  GHS_REQUIRE(num_sms > 0 && ctas_per_sm > 0 && waves_per_sm > 0,
              "num_sms=" << num_sms << " ctas_per_sm=" << ctas_per_sm
                         << " waves_per_sm=" << waves_per_sm);
  return static_cast<std::int64_t>(num_sms) * ctas_per_sm * waves_per_sm;
}

}  // namespace ghs::omp
