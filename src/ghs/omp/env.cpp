#include "ghs/omp/env.hpp"

#include "ghs/util/error.hpp"
#include "ghs/util/strings.hpp"

namespace ghs::omp {

namespace {

std::int64_t parse_positive(const std::string& name,
                            const std::string& value) {
  std::size_t pos = 0;
  std::int64_t parsed = 0;
  bool ok = true;
  try {
    parsed = std::stoll(value, &pos);
  } catch (const std::exception&) {
    ok = false;
  }
  GHS_REQUIRE(ok && pos == value.size() && parsed > 0,
              name << "='" << value << "' is not a positive integer");
  return parsed;
}

}  // namespace

Environment Environment::parse(
    const std::vector<std::pair<std::string, std::string>>& vars) {
  Environment env;
  for (const auto& [name, value] : vars) {
    if (name == "OMP_NUM_TEAMS") {
      env.num_teams = parse_positive(name, value);
    } else if (name == "OMP_TEAMS_THREAD_LIMIT" ||
               name == "OMP_THREAD_LIMIT") {
      env.teams_thread_limit = static_cast<int>(parse_positive(name, value));
    } else if (name == "OMP_NUM_THREADS") {
      env.num_threads = static_cast<int>(parse_positive(name, value));
    } else if (name == "OMP_DEFAULT_DEVICE") {
      // Device ids start at 0, so allow 0 here.
      std::size_t pos = 0;
      std::int64_t parsed = -1;
      try {
        parsed = std::stoll(value, &pos);
      } catch (const std::exception&) {
      }
      GHS_REQUIRE(pos == value.size() && parsed >= 0,
                  name << "='" << value << "' is not a device id");
      env.default_device = static_cast<int>(parsed);
    } else {
      // Unknown OMP_* (or unrelated) variables are silently ignored, as a
      // conforming runtime would.
      GHS_REQUIRE(!name.empty(), "empty environment variable name");
    }
  }
  return env;
}

Environment Environment::parse_list(const std::string& comma_separated) {
  std::vector<std::pair<std::string, std::string>> vars;
  if (comma_separated.empty()) return Environment{};
  for (const auto& entry : split(comma_separated, ',')) {
    const auto eq = entry.find('=');
    GHS_REQUIRE(eq != std::string::npos && eq > 0,
                "environment entry '" << entry << "' is not NAME=VALUE");
    vars.emplace_back(entry.substr(0, eq), entry.substr(eq + 1));
  }
  return parse(vars);
}

}  // namespace ghs::omp
