// OpenMP environment model: the internal control variables (ICVs) a user
// sets through OMP_* environment variables. The runtime resolves grid
// geometry with the spec's precedence — clause > environment > the
// implementation heuristic. Parsed from an explicit key-value list rather
// than the process environment, so simulations stay deterministic and
// testable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ghs::omp {

struct Environment {
  /// OMP_NUM_TEAMS: teams created by a teams construct without num_teams.
  std::optional<std::int64_t> num_teams;
  /// OMP_TEAMS_THREAD_LIMIT: threads per team without thread_limit.
  std::optional<int> teams_thread_limit;
  /// OMP_NUM_THREADS: host parallel-region width.
  std::optional<int> num_threads;
  /// OMP_DEFAULT_DEVICE: target device when no device clause is given
  /// (the simulated system has one GPU: device 0).
  std::optional<int> default_device;

  /// Parses "OMP_NUM_TEAMS=4096"-style entries; unknown OMP_* variables
  /// are ignored (as a real runtime would), malformed values throw.
  static Environment parse(
      const std::vector<std::pair<std::string, std::string>>& vars);

  /// Convenience: parses "A=1,B=2" lists (the --omp-env CLI format).
  static Environment parse_list(const std::string& comma_separated);
};

}  // namespace ghs::omp
