// NVHPC-style grid-geometry heuristics for target regions.
//
// The paper profiles the vendor runtime's choices for the baseline (no
// num_teams/thread_limit clauses): the grid size equals the loop trip count
// divided by the default team size of 128 threads, clamped to 0xFFFFFF —
// the clamp is what the C2 case (4.19 G iterations) hits. Reproducing the
// heuristic, rather than the measured numbers, is what keeps the baseline
// comparison honest; the ablation bench swaps in alternative heuristics.
#pragma once

#include <cstdint>

namespace ghs::omp {

struct GridHeuristic {
  /// Default threads per team when thread_limit is absent.
  int default_threads = 128;
  /// Upper clamp the runtime applies to its computed grid size.
  std::int64_t grid_clamp = 0xFFFFFF;
};

/// Grid size the runtime picks for an unclaused target loop of
/// `iterations` iterations.
std::int64_t heuristic_grid(const GridHeuristic& h, std::int64_t iterations);

/// An occupancy-style alternative used by the ablation bench: enough CTAs
/// to fill every SM `waves_per_sm` times, independent of trip count.
std::int64_t occupancy_grid(int num_sms, int ctas_per_sm, int waves_per_sm);

}  // namespace ghs::omp
