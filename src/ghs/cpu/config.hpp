// Grace-class CPU model parameters (72-core Neoverse V2 socket with
// LPDDR5X). The CPU side of the paper's co-execution is a statically
// scheduled `omp for simd` loop; its throughput is memory-bound on local
// LPDDR and link-bound when the pages sit in HBM.
#pragma once

#include "ghs/util/units.hpp"

namespace ghs::cpu {

struct CpuConfig {
  int cores = 72;
  double clock_ghz = 3.3;

  /// Single-core streaming read bandwidth from local LPDDR5X.
  Bandwidth per_core_stream_bw = Bandwidth::from_gbps(9.0);
  /// Single-core streaming read bandwidth from HBM over NVLink-C2C; lower
  /// than local because of the link's load-to-use latency. Chosen so that
  /// 72 cores still reach the socket remote cap (72 x 5 = 360 > 351).
  Bandwidth per_core_remote_bw = Bandwidth::from_gbps(5.0);
  /// Socket-level achievable streaming bandwidth (below the 500 GB/s LPDDR
  /// capacity resource; STREAM-like efficiency).
  Bandwidth aggregate_local_bw = Bandwidth::from_gbps(480.0);
  /// Socket-level streaming rate when reading HBM-resident pages over
  /// NVLink-C2C; calibrated against the paper's CPU-only A1-vs-A2 ratio of
  /// 1.367 (480 / 1.367 ≈ 351 GB/s).
  Bandwidth remote_read_bw = Bandwidth::from_gbps(351.0);
  /// Mesh/SCF limit on the socket's combined streaming traffic; binds when
  /// local LPDDR and remote HBM streams run concurrently.
  Bandwidth socket_stream_bw = Bandwidth::from_gbps(520.0);

  /// Vector datapath width per core for the `for simd` loop (bytes of
  /// input consumed per cycle); generous because the loop is memory-bound.
  double simd_bytes_per_cycle = 32.0;
  /// Elements per cycle per core when the loop is not vectorised (used by
  /// the no-simd ablation; can bind for 1-byte elements).
  double scalar_elements_per_cycle = 1.5;

  /// Fork + join overhead of an `omp parallel` region across the socket.
  SimTime parallel_region_overhead = from_nanoseconds(6000.0);
  /// Extra per-loop cost of dynamic/guided scheduling (work-queue
  /// contention across 72 threads); guided pays half.
  SimTime dynamic_schedule_overhead = from_nanoseconds(4000.0);
};

}  // namespace ghs::cpu
