#include "ghs/cpu/device.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "ghs/util/error.hpp"
#include "ghs/util/log.hpp"

namespace ghs::cpu {

const char* schedule_name(ScheduleKind schedule) {
  switch (schedule) {
    case ScheduleKind::kStatic:
      return "static";
    case ScheduleKind::kDynamic:
      return "dynamic";
    case ScheduleKind::kGuided:
      return "guided";
  }
  return "?";
}

CpuDevice::CpuDevice(sim::Simulator& sim, mem::Topology& topology,
                     um::UmManager& um, CpuConfig config)
    : sim_(sim),
      topology_(topology),
      um_(um),
      config_(config),
      socket_(topology.network().add_resource("CPU-socket",
                                              config.socket_stream_bw)) {}

double CpuDevice::compute_rate_cap(int threads, bool use_simd,
                                   Bytes element_size) const {
  const double cycles_per_second = config_.clock_ghz * 1e9;
  double bytes_per_cycle_per_core;
  if (use_simd) {
    bytes_per_cycle_per_core = config_.simd_bytes_per_cycle;
  } else {
    bytes_per_cycle_per_core = config_.scalar_elements_per_cycle *
                               static_cast<double>(element_size);
  }
  return static_cast<double>(threads) * bytes_per_cycle_per_core *
         cycles_per_second;
}

void CpuDevice::reduce(const CpuReduceRequest& request,
                       std::function<void(const CpuReduceResult&)> on_complete) {
  GHS_REQUIRE(request.elements > 0, "reduction '" << request.label
                                                  << "' has no elements");
  GHS_REQUIRE(request.threads > 0 && request.threads <= config_.cores,
              "threads=" << request.threads << " cores=" << config_.cores);
  GHS_REQUIRE(request.input_streams >= 1 &&
                  (request.input_streams == 1 || !request.managed),
              "multi-stream reductions are modelled for explicit inputs "
              "only (input_streams="
                  << request.input_streams << ")");
  ++stats_.reductions;

  auto result = std::make_shared<CpuReduceResult>();
  result->start = sim_.now();
  result->bytes = request.total_bytes();

  const SimTime fork = request.include_region_overhead
                           ? config_.parallel_region_overhead / 2
                           : 0;
  SimTime join = request.include_region_overhead
                     ? config_.parallel_region_overhead / 2
                     : 0;
  // Work-queue cost of non-static schedules.
  if (request.schedule == ScheduleKind::kDynamic) {
    join += config_.dynamic_schedule_overhead;
  } else if (request.schedule == ScheduleKind::kGuided) {
    join += config_.dynamic_schedule_overhead / 2;
  }

  // Residency segments for the pass.
  struct Slice {
    Bytes begin;
    Bytes length;
    mem::RegionId source;
    bool duplicate_on_access = false;
    double duplication_cap = 0.0;
  };
  std::vector<Slice> slices;
  if (request.managed) {
    const auto plan =
        um_.plan_pass(request.managed_alloc, um::Accessor::kCpu,
                      request.range_offset, request.total_bytes());
    for (const auto& seg : plan) {
      slices.push_back(Slice{seg.offset, seg.length, seg.source,
                             seg.duplicate_on_access, seg.rate_cap});
      if (seg.source == mem::RegionId::kHbm) {
        result->remote_bytes += seg.length;
      }
    }
  } else {
    slices.push_back(Slice{request.range_offset, request.total_bytes(),
                           mem::RegionId::kLpddr});
  }
  GHS_CHECK(!slices.empty(), "reduction pass with no slices");

  const double total_bytes = static_cast<double>(request.total_bytes());
  const double compute_cap =
      compute_rate_cap(request.threads, request.use_simd,
                       request.element_size);

  auto pending = std::make_shared<std::size_t>(slices.size());
  const std::string label = request.label;
  auto finish = [this, result, join, label,
                 on_complete = std::move(on_complete)] {
    sim_.schedule_after(join, [this, result, label, on_complete] {
      result->end = sim_.now();
      GHS_DEBUG("cpu reduce done in " << format_time(result->duration())
                                      << " ("
                                      << format_bandwidth(result->bandwidth())
                                      << ")");
      if (tracer_ != nullptr) {
        std::string detail = format_bandwidth(result->bandwidth());
        if (result->remote_bytes > 0) {
          detail += " remote=" + format_bytes(result->remote_bytes);
        }
        tracer_->record(trace::Track::kCpu, label, result->start,
                        result->end, detail);
      }
      if (on_complete) on_complete(*result);
    });
  };

  sim_.schedule_after(fork, [this, slices = std::move(slices), pending,
                             request, total_bytes, compute_cap,
                             finish = std::move(finish)] {
    for (const auto& slice : slices) {
      // static: threads own fixed contiguous chunks, so a slice's rate is
      // capped by the cores whose chunks fall inside it (slow slices
      // create stragglers). dynamic/guided: any idle thread can steal the
      // next chunk, so every slice can draw on the whole pool and the
      // fluid network's socket resource arbitrates.
      const double share = static_cast<double>(slice.length) / total_bytes;
      const double cores_here =
          request.schedule == ScheduleKind::kStatic
              ? std::max(1.0, std::round(
                                  share *
                                  static_cast<double>(request.threads)))
              : static_cast<double>(request.threads);
      const double per_core =
          slice.source == mem::RegionId::kLpddr
              ? config_.per_core_stream_bw.bytes_per_second
              : config_.per_core_remote_bw.bytes_per_second;
      double cap = cores_here * per_core;
      if (request.schedule == ScheduleKind::kStatic) {
        cap = std::min(cap, compute_cap * share);
      } else {
        cap = std::min(cap, compute_cap);
      }
      if (slice.source == mem::RegionId::kLpddr) {
        cap = std::min(cap, config_.aggregate_local_bw.bytes_per_second);
      } else {
        cap = std::min(cap, config_.remote_read_bw.bytes_per_second);
      }
      sim::FlowSpec spec;
      spec.bytes = static_cast<double>(slice.length);
      if (slice.duplicate_on_access) {
        // Establishing a read replica in LPDDR from the HBM home copy.
        spec.rate_cap = std::min(cap, slice.duplication_cap);
        spec.resources =
            topology_.copy_path(slice.source, mem::RegionId::kLpddr);
      } else {
        spec.rate_cap = cap;
        spec.resources = topology_.cpu_read_path(slice.source);
      }
      spec.resources.push_back(socket_);
      spec.label = request.label + ":cpu";
      const Bytes s_begin = slice.begin;
      const Bytes s_len = slice.length;
      const bool duplicate = slice.duplicate_on_access;
      const auto managed_alloc = request.managed_alloc;
      spec.on_complete = [this, pending, finish, duplicate, managed_alloc,
                          s_begin, s_len] {
        if (duplicate) {
          um_.complete_duplication(managed_alloc, s_begin, s_len);
        }
        GHS_CHECK(*pending > 0, "cpu slice completion underflow");
        if (--*pending == 0) finish();
      };
      topology_.network().start_flow(std::move(spec));
    }
  });
}

}  // namespace ghs::cpu
