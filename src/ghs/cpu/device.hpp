// CPU-side reduction execution model.
//
// A reduction over [offset, offset+bytes) of an input array is statically
// partitioned across the requested threads. In UM mode the range is planned
// through the UmManager: each residency segment becomes a fluid flow capped
// by the cores that own it under the static schedule (so a slow remote
// segment creates stragglers, as it does on the real machine), and the
// reduction completes when the last segment drains plus the parallel-region
// join overhead.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "ghs/cpu/config.hpp"
#include "ghs/mem/topology.hpp"
#include "ghs/sim/simulator.hpp"
#include "ghs/trace/tracer.hpp"
#include "ghs/um/manager.hpp"
#include "ghs/util/units.hpp"

namespace ghs::cpu {

/// OpenMP loop schedule of the host worksharing loop. The paper's code is
/// `schedule(static)` (the default); dynamic scheduling matters when the
/// range mixes LPDDR-resident and HBM-resident pages — under static, the
/// threads that drew the remote pages straggle, under dynamic the pool
/// rebalances.
enum class ScheduleKind { kStatic, kDynamic, kGuided };

const char* schedule_name(ScheduleKind schedule);

struct CpuReduceRequest {
  std::string label;
  std::int64_t elements = 0;
  Bytes element_size = 4;
  /// Threads participating (<= config.cores).
  int threads = 0;
  /// Whether the loop carries the `simd` directive (vectorised body).
  bool use_simd = true;
  /// Input arrays streamed per element (2 for a dot product); multi-stream
  /// requests are modelled for non-managed (explicit) inputs only.
  int input_streams = 1;
  ScheduleKind schedule = ScheduleKind::kStatic;

  /// kManaged: plan residency through the UmManager. Otherwise the range is
  /// assumed resident in LPDDR (explicit-mode host arrays).
  bool managed = false;
  um::AllocId managed_alloc = 0;
  Bytes range_offset = 0;

  /// Charge the parallel-region fork/join overhead (false when the caller
  /// models the enclosing parallel region itself, as co-execution does).
  bool include_region_overhead = true;

  Bytes total_bytes() const {
    return elements * element_size * input_streams;
  }
};

struct CpuReduceResult {
  SimTime start = 0;
  SimTime end = 0;
  Bytes bytes = 0;
  Bytes remote_bytes = 0;

  SimTime duration() const { return end - start; }
  Bandwidth bandwidth() const { return achieved_bandwidth(bytes, duration()); }
};

struct CpuDeviceStats {
  std::int64_t reductions = 0;
};

class CpuDevice {
 public:
  CpuDevice(sim::Simulator& sim, mem::Topology& topology, um::UmManager& um,
            CpuConfig config);

  CpuDevice(const CpuDevice&) = delete;
  CpuDevice& operator=(const CpuDevice&) = delete;

  const CpuConfig& config() const { return config_; }

  /// Runs the reduction asynchronously; `on_complete` fires when the last
  /// straggler thread finishes.
  void reduce(const CpuReduceRequest& request,
              std::function<void(const CpuReduceResult&)> on_complete);

  /// Socket-level compute-throughput cap for a loop shape, bytes/s.
  double compute_rate_cap(int threads, bool use_simd,
                          Bytes element_size) const;

  const CpuDeviceStats& stats() const { return stats_; }

  /// Installs a span recorder (null disables tracing).
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

 private:
  trace::Tracer* tracer_ = nullptr;
  sim::Simulator& sim_;
  mem::Topology& topology_;
  um::UmManager& um_;
  CpuConfig config_;
  /// Socket-mesh resource every CPU stream traverses, so concurrent local
  /// and remote streams share the socket's aggregate limit.
  sim::ResourceId socket_;
  CpuDeviceStats stats_;
};

}  // namespace ghs::cpu
