#include "ghs/serve/loadgen.hpp"

#include <cmath>
#include <deque>
#include <unordered_map>

#include "ghs/util/error.hpp"
#include "ghs/util/rng.hpp"

namespace ghs::serve {

namespace {

/// One-time validation of a workload shape, hoisted out of the per-job
/// loop; returns the mix's total weight for pick_case draws.
double validate_shape(const WorkloadShape& shape) {
  GHS_REQUIRE(!shape.mix.empty(), "empty case mix");
  double total = 0.0;
  for (const auto& entry : shape.mix) {
    GHS_REQUIRE(entry.weight >= 0.0, "weight=" << entry.weight);
    total += entry.weight;
  }
  GHS_REQUIRE(total > 0.0, "case mix has zero total weight");
  GHS_REQUIRE(shape.min_log2_elements > 0 &&
                  shape.max_log2_elements >= shape.min_log2_elements &&
                  shape.max_log2_elements < 40,
              "element range [2^" << shape.min_log2_elements << ", 2^"
                                  << shape.max_log2_elements << "]");
  GHS_REQUIRE(shape.um_fraction <= 1.0,
              "um_fraction=" << shape.um_fraction);
  return total;
}

workload::CaseId pick_case(const std::vector<MixEntry>& mix, double total,
                           Rng& rng) {
  double draw = rng.next_double() * total;
  for (const auto& entry : mix) {
    draw -= entry.weight;
    if (draw <= 0.0) return entry.case_id;
  }
  return mix.back().case_id;
}

std::int64_t pick_elements(const WorkloadShape& shape, Rng& rng) {
  const auto span = static_cast<std::uint64_t>(shape.max_log2_elements -
                                               shape.min_log2_elements + 1);
  const auto k = shape.min_log2_elements +
                 static_cast<int>(rng.next_below(span));
  return std::int64_t{1} << k;
}

Job make_job(JobId id, const WorkloadShape& shape, double mix_total,
             SimTime arrival, Rng& rng) {
  Job job;
  job.id = id;
  job.case_id = pick_case(shape.mix, mix_total, rng);
  job.elements = pick_elements(shape, rng);
  job.arrival = arrival;
  if (shape.deadline > 0) job.deadline = arrival + shape.deadline;
  // Drawing only when enabled keeps um_fraction == 0 workloads identical
  // to the pre-unified RNG stream.
  if (shape.um_fraction > 0.0) {
    job.unified = rng.next_double() < shape.um_fraction;
  }
  return job;
}

}  // namespace

std::vector<MixEntry> mixed_cases() {
  std::vector<MixEntry> mix;
  for (const auto case_id : workload::all_cases()) {
    mix.push_back(MixEntry{case_id, 1.0});
  }
  return mix;
}

std::vector<Job> open_loop_poisson(const OpenLoopOptions& options) {
  GHS_REQUIRE(options.rate_hz > 0.0, "rate_hz=" << options.rate_hz);
  GHS_REQUIRE(options.jobs > 0, "jobs=" << options.jobs);
  const double mix_total = validate_shape(options.shape);
  Rng rng(options.seed);
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(options.jobs));
  SimTime arrival = 0;
  for (JobId id = 0; id < options.jobs; ++id) {
    // Exponential gap; 1 - u keeps the argument strictly positive.
    const double u = rng.next_double();
    const double gap_s = -std::log(1.0 - u) / options.rate_hz;
    arrival += from_seconds(gap_s);
    jobs.push_back(make_job(id, options.shape, mix_total, arrival, rng));
  }
  return jobs;
}

void run_closed_loop(ReductionService& service,
                     const ClosedLoopOptions& options) {
  GHS_REQUIRE(options.tenants > 0, "tenants=" << options.tenants);
  GHS_REQUIRE(options.jobs >= options.tenants,
              "jobs=" << options.jobs << " < tenants=" << options.tenants);
  // At most `tenants` jobs are ever in flight, so this bound guarantees no
  // rejection (a rejected job would silently retire its tenant).
  GHS_REQUIRE(service.queue().max_depth() >=
                  static_cast<std::size_t>(options.tenants),
              "queue depth " << service.queue().max_depth()
                             << " < tenants=" << options.tenants);
  const double mix_total = validate_shape(options.shape);
  Rng rng(options.seed);
  std::int64_t issued = 0;
  std::unordered_map<JobId, int> tenant_of;

  const auto submit_next = [&](int tenant, SimTime at) {
    const JobId id = issued++;
    tenant_of[id] = tenant;
    service.submit(make_job(id, options.shape, mix_total, at, rng));
  };

  service.set_on_complete([&](const JobRecord& record) {
    const auto it = tenant_of.find(record.job.id);
    GHS_REQUIRE(it != tenant_of.end(), "unknown job " << record.job.id);
    if (issued < options.jobs) {
      submit_next(it->second, service.sim().now() + options.think_time);
    }
  });

  // Tenants start staggered by one picosecond so the arrival order (and
  // therefore the whole run) is deterministic.
  for (int tenant = 0; tenant < options.tenants && issued < options.jobs;
       ++tenant) {
    submit_next(tenant, service.sim().now() + tenant);
  }
  service.run();
  service.set_on_complete(nullptr);
}

}  // namespace ghs::serve
