// Scheduler policies: given the admission queue and a processor that just
// went idle, a policy picks the job to dispatch there (or leaves the
// processor idle), and chooses the launch geometry for GPU-placed jobs.
//
//   FIFO              arrival order, GPU only, paper-best geometry.
//   SJF               smallest-bytes first, GPU only, paper-best geometry.
//   BandwidthAware    work-conserving across GPU *and* Grace CPU: small
//                     jobs whose host-side reduction is competitive are
//                     eligible for the CPU, so both processors drain the
//                     queue in parallel; GPU geometry comes from the
//                     coordinate-descent Tuner, memoised per shape.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <tuple>

#include "ghs/core/reduce.hpp"
#include "ghs/core/tuner.hpp"
#include "ghs/serve/queue.hpp"
#include "ghs/serve/service_model.hpp"

namespace ghs::serve {

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  virtual const char* name() const = 0;

  /// Queue position of the job to dispatch next on `device`, or nullopt to
  /// leave the device idle for now.
  virtual std::optional<std::size_t> select(const AdmissionQueue& queue,
                                            Placement device,
                                            SimTime now) = 0;

  /// Launch geometry for a GPU-placed job.
  virtual core::ReduceTuning geometry(const Job& job) = 0;
};

/// Arrival order, GPU only.
class FifoPolicy : public SchedulerPolicy {
 public:
  const char* name() const override { return "fifo"; }
  std::optional<std::size_t> select(const AdmissionQueue& queue,
                                    Placement device, SimTime now) override;
  core::ReduceTuning geometry(const Job& job) override;
};

/// Smallest job (by bytes) first, GPU only. Bytes are the service-time
/// proxy: every case streams the input once, so service is ~bytes/BW.
class ShortestJobFirstPolicy : public SchedulerPolicy {
 public:
  const char* name() const override { return "sjf"; }
  std::optional<std::size_t> select(const AdmissionQueue& queue,
                                    Placement device, SimTime now) override;
  core::ReduceTuning geometry(const Job& job) override;
};

struct TunerCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
};

class BandwidthAwarePolicy : public SchedulerPolicy {
 public:
  struct Options {
    /// Probe budget per distinct (case, elements) shape; each probe is one
    /// simulated Listing 6 run inside the Tuner's hill climb.
    int max_probes = 24;
    /// Largest job the Grace CPU may absorb.
    Bytes max_cpu_bytes = 64 * kMiB;
    /// CPU-eligible when the host reduction costs at most this multiple of
    /// the tuned GPU service for the same shape.
    double cpu_slowdown_limit = 8.0;
  };

  /// `model` prices CPU-vs-GPU placement; its SystemConfig also drives the
  /// tuner probes so cached geometries match the machine being served.
  BandwidthAwarePolicy(ServiceModel& model, Options options);
  explicit BandwidthAwarePolicy(ServiceModel& model)
      : BandwidthAwarePolicy(model, Options{}) {}

  const char* name() const override { return "bandwidth"; }
  std::optional<std::size_t> select(const AdmissionQueue& queue,
                                    Placement device, SimTime now) override;

  /// Tuned geometry for the job's shape; runs the coordinate-descent tuner
  /// on a miss and serves repeats from the cache.
  core::ReduceTuning geometry(const Job& job) override;

  const TunerCacheStats& tuner_cache() const { return cache_stats_; }

  /// Whether `job` may be dispatched to the Grace CPU.
  bool cpu_eligible(const Job& job);

 private:
  // (case, elements, config fingerprint) -> tuned geometry.
  using Key = std::tuple<int, std::int64_t, std::int64_t>;

  ServiceModel& model_;
  Options options_;
  std::int64_t config_fingerprint_ = 0;
  std::map<Key, core::ReduceTuning> cache_;
  TunerCacheStats cache_stats_;
};

/// Factory used by benches/examples: "fifo" | "sjf" | "bandwidth".
std::unique_ptr<SchedulerPolicy> make_policy(const std::string& name,
                                             ServiceModel& model);

}  // namespace ghs::serve
