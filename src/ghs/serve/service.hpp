// ReductionService: the multi-tenant serving loop. Tenants submit jobs
// (arrivals are simulator events); the admission queue applies
// backpressure; the scheduler policy places work on the DevicePool; every
// completion is recorded and fed to the latency report. One service run is
// one deterministic discrete-event simulation — same submissions, same
// seed, same report, byte for byte.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "ghs/serve/device_pool.hpp"
#include "ghs/serve/job.hpp"
#include "ghs/serve/policy.hpp"
#include "ghs/serve/queue.hpp"
#include "ghs/serve/service_model.hpp"
#include "ghs/sim/simulator.hpp"
#include "ghs/stats/series.hpp"
#include "ghs/stats/summary.hpp"
#include "ghs/telemetry/flight_recorder.hpp"
#include "ghs/telemetry/registry.hpp"
#include "ghs/trace/tracer.hpp"

namespace ghs::serve {

struct ServiceOptions {
  /// Admission-queue bound; arrivals beyond it are rejected.
  std::size_t queue_depth = 64;
  /// Whether the pool includes the Grace CPU (policies that never place
  /// there are unaffected).
  bool use_cpu = true;
  BatchOptions batching;
  /// Metric instruments + flight recorder for the service, its pool, and
  /// its simulator (null members disable).
  telemetry::Sink telemetry;
};

/// Latency-style distribution in milliseconds.
struct LatencyStats {
  std::size_t count = 0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  stats::Percentiles pct;  // p50/p95/p99/p999
};

LatencyStats make_latency_stats(const std::vector<double>& ms);

struct ServiceReport {
  std::string policy;
  std::int64_t submitted = 0;
  std::int64_t served = 0;
  std::int64_t rejected = 0;
  std::int64_t deadline_missed = 0;
  std::int64_t launches = 0;
  std::int64_t multi_job_launches = 0;
  std::int64_t batched_jobs = 0;
  std::int64_t gpu_jobs = 0;
  std::int64_t cpu_jobs = 0;
  /// Jobs served through managed (unified) memory.
  std::int64_t um_jobs = 0;
  std::size_t queue_high_watermark = 0;
  /// First arrival to last completion.
  SimTime makespan = 0;
  Bytes bytes_served = 0;
  double throughput_jobs_per_s = 0.0;
  double throughput_gbps = 0.0;
  LatencyStats latency;
  LatencyStats queue_wait;
  /// Geometry-cache counters (bandwidth-aware policy; zero otherwise).
  std::int64_t tuner_hits = 0;
  std::int64_t tuner_misses = 0;

  /// One JSON object, stable key order, deterministic formatting.
  void write_json(std::ostream& os) const;
};

class ReductionService {
 public:
  ReductionService(std::unique_ptr<SchedulerPolicy> policy,
                   ServiceModel& model, ServiceOptions options = {},
                   trace::Tracer* tracer = nullptr);

  sim::Simulator& sim() { return sim_; }

  /// Schedules the job's arrival (job.arrival must be >= sim().now()).
  void submit(const Job& job);
  void submit_all(const std::vector<Job>& jobs);

  /// Fires once per job at its completion (closed-loop generators submit
  /// the tenant's next job from here).
  void set_on_complete(std::function<void(const JobRecord&)> hook);

  /// Drains the event queue: runs arrivals, scheduling, and service to
  /// completion.
  void run();

  const std::vector<JobRecord>& records() const { return records_; }
  const std::vector<Job>& rejected_jobs() const { return rejected_; }
  const AdmissionQueue& queue() const { return queue_; }
  const DevicePool& pool() const { return pool_; }
  SchedulerPolicy& policy() { return *policy_; }

  ServiceReport report() const;

  /// Per-job latency series (x = arrival ms, y = latency ms), ready for a
  /// stats::Figure.
  stats::Series latency_series() const;

 private:
  void on_arrival(const Job& job);
  void dispatch_all();
  void dispatch(Placement device);
  void update_queue_gauge();

  std::unique_ptr<SchedulerPolicy> policy_;
  ServiceModel& model_;
  ServiceOptions options_;
  trace::Tracer* tracer_;
  sim::Simulator sim_;
  AdmissionQueue queue_;
  DevicePool pool_;
  std::vector<JobRecord> records_;
  std::vector<Job> rejected_;
  std::function<void(const JobRecord&)> on_complete_;
  std::int64_t submitted_ = 0;
  telemetry::FlightRecorder* flight_ = nullptr;
  telemetry::Counter* m_submitted_ = nullptr;
  telemetry::Counter* m_admitted_ = nullptr;
  telemetry::Counter* m_rejected_ = nullptr;
  telemetry::Counter* m_completed_ = nullptr;
  telemetry::Gauge* m_queue_depth_ = nullptr;
  telemetry::Histogram* m_latency_ms_ = nullptr;
  telemetry::Histogram* m_queue_wait_ms_ = nullptr;
};

}  // namespace ghs::serve
