// ReductionService: the multi-tenant serving loop. Tenants submit jobs
// (arrivals are simulator events); the admission queue applies
// backpressure; the scheduler policy places work on the DevicePool; every
// completion is recorded and fed to the latency report. One service run is
// one deterministic discrete-event simulation — same submissions, same
// seed, same report, byte for byte.
//
// With a fault::Injector attached (ServiceOptions::injector) the loop is
// self-healing: failed launches are retried with capped exponential
// backoff plus deterministic jitter, a per-device circuit breaker stops
// hammering a sick device and probes it half-open after a cool-down, jobs
// that can no longer make their deadline are shed instead of retried, and
// while the GPU breaker is open non-unified jobs fall back to the Grace
// CPU (degraded placement). Every admitted job therefore ends exactly one
// way: served, rejected at admission, or shed — chaos never loses work.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "ghs/fault/breaker.hpp"
#include "ghs/fault/injector.hpp"
#include "ghs/profile/recorder.hpp"
#include "ghs/serve/device_pool.hpp"
#include "ghs/serve/job.hpp"
#include "ghs/serve/policy.hpp"
#include "ghs/serve/queue.hpp"
#include "ghs/serve/service_model.hpp"
#include "ghs/sim/simulator.hpp"
#include "ghs/stats/series.hpp"
#include "ghs/stats/summary.hpp"
#include "ghs/telemetry/flight_recorder.hpp"
#include "ghs/telemetry/registry.hpp"
#include "ghs/trace/tracer.hpp"
#include "ghs/util/rng.hpp"

namespace ghs::serve {

/// Per-job retry policy for failed launches (only consulted when a
/// fault::Injector is attached; fault-free runs never retry).
struct RetryOptions {
  /// Total attempts per job, including the first launch.
  int max_attempts = 4;
  /// Backoff before retry k is base * 2^(k-1), capped below.
  SimTime backoff_base = 50 * kMicrosecond;
  SimTime backoff_cap = 2 * kMillisecond;
  /// Deterministic jitter: a seeded uniform draw in [0, jitter * backoff)
  /// is added to every backoff, de-synchronising retry herds without
  /// breaking replayability.
  double jitter = 0.25;
  std::uint64_t jitter_seed = 0x6a177e5;
};

struct ServiceOptions {
  /// Admission-queue bound; arrivals beyond it are rejected.
  std::size_t queue_depth = 64;
  /// Whether the pool includes the Grace CPU (policies that never place
  /// there are unaffected).
  bool use_cpu = true;
  BatchOptions batching;
  /// Metric instruments + flight recorder for the service, its pool, and
  /// its simulator (null members disable).
  telemetry::Sink telemetry;
  /// Fault injector driving chaos for this run. Null — or an injector with
  /// an empty plan — leaves every code path and report byte-identical to a
  /// fault-unaware service.
  fault::Injector* injector = nullptr;
  RetryOptions retry;
  /// Per-device circuit-breaker thresholds (shared by GPU and CPU).
  fault::BreakerOptions breaker;
  /// Simulator construction knobs (event-queue implementation). Both
  /// queue kinds dispatch in identical order, so this is a pure
  /// performance choice — reports do not change with it.
  sim::SimConfig sim;
  /// Embeddability hook: when set, the service schedules onto this
  /// simulator instead of owning one, so several services (the nodes of a
  /// ghs::cluster fleet) share a single clock and event queue. The caller
  /// then drives the run: Service::run() still drains the shared queue,
  /// which in a cluster means running every node. Null (the default)
  /// preserves the standalone self-contained service.
  sim::Simulator* external_sim = nullptr;
  /// Labels appended to every instrument this service and its device pool
  /// register (e.g. {{"node","3"}} in a cluster), namespacing per-node
  /// telemetry. Empty (the default) keeps the standalone instrument names
  /// byte-identical to pre-cluster builds.
  telemetry::Labels instance_labels;
  /// Cost-attribution recorder (ghs::profile). When set, the service and
  /// its DevicePool charge every launch interval, queue wait, and retry
  /// backoff to the recorder's ledger under `profile_node`. Null (the
  /// default) takes no profiling branches and keeps every output
  /// byte-identical to an unprofiled build.
  profile::Recorder* profile = nullptr;
  /// Node index stamped into this service's cost keys (a cluster sets it
  /// per node; standalone stays 0).
  std::int16_t profile_node = 0;
};

/// Latency-style distribution in milliseconds.
struct LatencyStats {
  std::size_t count = 0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  stats::Percentiles pct;  // p50/p95/p99/p999
};

/// Zero-filled for empty input; a single sample pins every percentile to
/// that sample.
LatencyStats make_latency_stats(const std::vector<double>& ms);

struct ServiceReport {
  std::string policy;
  std::int64_t submitted = 0;
  std::int64_t served = 0;
  std::int64_t rejected = 0;
  std::int64_t deadline_missed = 0;
  std::int64_t launches = 0;
  std::int64_t multi_job_launches = 0;
  std::int64_t batched_jobs = 0;
  std::int64_t gpu_jobs = 0;
  std::int64_t cpu_jobs = 0;
  /// Jobs served through managed (unified) memory.
  std::int64_t um_jobs = 0;
  std::size_t queue_high_watermark = 0;
  /// First arrival to last completion.
  SimTime makespan = 0;
  Bytes bytes_served = 0;
  double throughput_jobs_per_s = 0.0;
  double throughput_gbps = 0.0;
  LatencyStats latency;
  LatencyStats queue_wait;
  /// Geometry-cache counters (bandwidth-aware policy; zero otherwise).
  std::int64_t tuner_hits = 0;
  std::int64_t tuner_misses = 0;
  /// Fault-handling accounting, populated (and serialised) only when the
  /// service ran with a fault injector, so fault-free reports stay
  /// byte-identical to pre-fault builds.
  bool fault_aware = false;
  /// Retry launches scheduled after failures.
  std::int64_t retries = 0;
  /// Failed GPU launches (injected kernel faults + outage kills).
  std::int64_t gpu_failures = 0;
  /// Breaker closed/half-open -> open transitions, both devices.
  std::int64_t breaker_opens = 0;
  /// Jobs dropped by the retry machinery (budget exhausted, deadline
  /// unreachable, or requeue refused); never silently lost.
  std::int64_t shed = 0;
  /// Jobs served on the Grace CPU through degraded placement while the
  /// GPU breaker was open.
  std::int64_t fallback_cpu_jobs = 0;

  /// One JSON object, stable key order, deterministic formatting.
  void write_json(std::ostream& os) const;
};

class ReductionService {
 public:
  ReductionService(std::unique_ptr<SchedulerPolicy> policy,
                   ServiceModel& model, ServiceOptions options = {},
                   trace::Tracer* tracer = nullptr);

  sim::Simulator& sim() { return sim_; }
  /// Whether this service schedules onto a caller-owned simulator (cluster
  /// node) rather than its own.
  bool embedded() const { return options_.external_sim != nullptr; }

  /// Schedules the job's arrival (job.arrival must be >= sim().now()).
  void submit(const Job& job);
  /// Submits a whole workload. Arrival-sorted batches (every open-loop
  /// generator emits one) are injected through a chained pump event — one
  /// arrival in the simulator at a time instead of one event per job — so
  /// the event queue stays shallow at 10^6-job scale. Dispatch order is
  /// identical to per-job submit(); unsorted batches fall back to it.
  void submit_all(const std::vector<Job>& jobs);
  /// Rvalue batches (e.g. a generator's return value) are adopted without
  /// copying the job vector.
  void submit_all(std::vector<Job>&& jobs);

  /// Fires once per job at its completion (closed-loop generators submit
  /// the tenant's next job from here).
  void set_on_complete(std::function<void(const JobRecord&)> hook);

  /// Embeddability hooks for a composing layer (ghs::cluster): fire after
  /// the service has recorded the outcome itself, so node-level accounting
  /// is unchanged and the composer can add its own (spill the rejected job
  /// to a peer, count a cluster-level shed, ...).
  void set_on_reject(std::function<void(const Job&, SimTime)> hook);
  void set_on_shed(std::function<void(const Job&, SimTime)> hook);
  /// Fires on every circuit-breaker transition (fault-injected runs only);
  /// the cluster router uses GPU-open transitions to steal queued work.
  void set_on_breaker_transition(
      std::function<void(Placement, fault::BreakerState, fault::BreakerState,
                         SimTime)>
          hook);

  /// Work stealing: removes and returns up to `max_jobs` queued jobs
  /// (oldest first). The jobs stay counted in this node's `submitted`, so
  /// the stealing layer owns their terminal accounting from here on. The
  /// queue gauge is updated; nothing is dispatched.
  std::vector<Job> steal_queued(std::size_t max_jobs);

  /// Whole-node failure hooks for the cluster's membership layer. crash()
  /// kills the node process: the admission queue is emptied (the composing
  /// layer's write-ahead journal owns those jobs now), arrivals are
  /// refused through the normal rejection path, and every launch
  /// completion or retry requeue belonging to the old incarnation is
  /// discarded via an epoch check — a launch in flight at the crash dies
  /// with the node instead of completing after it. restore() brings the
  /// process back with a cold empty queue. Standalone services never
  /// crash, so these change nothing for existing runs.
  void crash();
  void restore();
  bool alive() const { return alive_; }

  /// Drains the event queue: runs arrivals, scheduling, and service to
  /// completion.
  void run();

  const std::vector<JobRecord>& records() const { return records_; }
  const std::vector<Job>& rejected_jobs() const { return rejected_; }
  /// Jobs dropped by the retry machinery (fault runs only).
  const std::vector<Job>& shed_jobs() const { return shed_; }
  /// Simulated instants the corresponding rejected_/shed_ entry was
  /// dropped at (same index), so SLO monitors can place bad events in
  /// time.
  const std::vector<SimTime>& rejected_times() const { return rejected_at_; }
  const std::vector<SimTime>& shed_times() const { return shed_at_; }
  const AdmissionQueue& queue() const { return queue_; }
  const DevicePool& pool() const { return pool_; }
  SchedulerPolicy& policy() { return *policy_; }
  const fault::CircuitBreaker& breaker(Placement device) const {
    return device == Placement::kGpu ? gpu_breaker_ : cpu_breaker_;
  }

  ServiceReport report() const;

  /// Telemetry-side totals the profile::CostLedger reconciles against:
  /// the pool's device busy time and unified-migration bytes (standalone
  /// services move no interconnect/replay bytes).
  profile::ConservationTotals conservation_totals() const;

  /// Per-job latency series (x = arrival ms, y = latency ms), ready for a
  /// stats::Figure.
  stats::Series latency_series() const;

 private:
  /// One arrival-sorted submit_all batch being fed into the simulator by
  /// pump_arrivals, one event per job but only one event in the queue at a
  /// time.
  struct ArrivalChain {
    std::vector<Job> jobs;
    std::size_t next = 0;
  };

  void pump_arrivals(ArrivalChain* chain);
  void on_arrival(Job job);
  void dispatch_all();
  void dispatch(Placement device);
  void update_queue_gauge();
  fault::CircuitBreaker& breaker_ref(Placement device) {
    return device == Placement::kGpu ? gpu_breaker_ : cpu_breaker_;
  }
  void on_launch_complete(const LaunchResult& result);
  void handle_failed_job(const Job& job);
  void shed_job(const Job& job, const char* reason);
  /// Closes the job's trace with its serve.job root span (traced runs
  /// only). `device` is empty for jobs that never served.
  void record_root_span(const Job& job, SimTime end, const char* outcome,
                        const char* device);
  void schedule_breaker_wake(Placement device, SimTime at);
  void on_breaker_transition(Placement device, fault::BreakerState from,
                             fault::BreakerState to, SimTime at);

  std::unique_ptr<SchedulerPolicy> policy_;
  ServiceModel& model_;
  ServiceOptions options_;
  trace::Tracer* tracer_;
  /// Owned when options_.external_sim is null; all scheduling goes through
  /// sim_, which aliases either the owned simulator or the external one.
  std::unique_ptr<sim::Simulator> owned_sim_;
  sim::Simulator& sim_;
  AdmissionQueue queue_;
  /// The effective injector: options.injector with an empty plan is
  /// normalised to null, so "no faults" is one code path.
  fault::Injector* injector_;
  DevicePool pool_;
  fault::CircuitBreaker gpu_breaker_;
  fault::CircuitBreaker cpu_breaker_;
  Rng retry_rng_;
  std::vector<std::unique_ptr<ArrivalChain>> arrival_chains_;
  std::vector<JobRecord> records_;
  std::vector<Job> rejected_;
  std::vector<Job> shed_;
  std::vector<SimTime> rejected_at_;
  std::vector<SimTime> shed_at_;
  std::function<void(const JobRecord&)> on_complete_;
  std::function<void(const Job&, SimTime)> on_reject_;
  std::function<void(const Job&, SimTime)> on_shed_;
  std::function<void(Placement, fault::BreakerState, fault::BreakerState,
                     SimTime)>
      on_breaker_;
  std::int64_t submitted_ = 0;
  std::int64_t retries_ = 0;
  std::int64_t fallback_cpu_jobs_ = 0;
  /// Node-process liveness (cluster crash plans); standalone services stay
  /// alive for their whole run.
  bool alive_ = true;
  /// Incarnation counter, bumped by crash(). Completion and retry
  /// closures capture the epoch they were scheduled under and self-
  /// discard when it no longer matches.
  std::int64_t epoch_ = 0;
  /// "k=v " rendering of instance_labels, prefixed to flight-recorder
  /// details so fleet post-mortems name the node; empty standalone.
  std::string flight_label_;
  SimTime gpu_wake_ = -1;
  SimTime cpu_wake_ = -1;
  telemetry::FlightRecorder* flight_ = nullptr;
  telemetry::Counter* m_submitted_ = nullptr;
  telemetry::Counter* m_admitted_ = nullptr;
  telemetry::Counter* m_rejected_ = nullptr;
  telemetry::Counter* m_completed_ = nullptr;
  telemetry::Gauge* m_queue_depth_ = nullptr;
  telemetry::Histogram* m_latency_ms_ = nullptr;
  telemetry::Histogram* m_queue_wait_ms_ = nullptr;
  telemetry::Counter* m_retries_ = nullptr;
  telemetry::Counter* m_shed_ = nullptr;
  telemetry::Counter* m_fallback_ = nullptr;
  telemetry::Counter* m_breaker_opens_[2] = {nullptr, nullptr};
  telemetry::Gauge* m_breaker_state_[2] = {nullptr, nullptr};
};

}  // namespace ghs::serve
