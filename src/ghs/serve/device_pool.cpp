#include "ghs/serve/device_pool.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "ghs/util/error.hpp"

namespace ghs::serve {

DevicePool::DevicePool(sim::Simulator& sim, ServiceModel& model, bool use_cpu,
                       trace::Tracer* tracer, telemetry::Sink sink,
                       fault::Injector* injector,
                       const telemetry::Labels& instance_labels,
                       profile::Recorder* recorder, std::int16_t node)
    : sim_(sim),
      model_(model),
      use_cpu_(use_cpu),
      tracer_(tracer),
      injector_(injector),
      recorder_(recorder),
      node_(node) {
  flight_ = sink.flight;
  if (recorder_ != nullptr) {
    // Announce the devices up front so the profiler samples them as idle
    // before their first launch.
    recorder_->register_device(node_, profile::Device::kGpu);
    if (use_cpu_) recorder_->register_device(node_, profile::Device::kCpu);
  }
  if (sink.metrics != nullptr) {
    const auto with_inst = [&instance_labels](telemetry::Labels labels) {
      labels.insert(labels.end(), instance_labels.begin(),
                    instance_labels.end());
      return labels;
    };
    m_gpu_launches_ = &sink.metrics->counter(
        "ghs_serve_launches_total", with_inst({{"device", "gpu"}}),
        "Device launches performed by the pool");
    m_cpu_launches_ = &sink.metrics->counter(
        "ghs_serve_launches_total", with_inst({{"device", "cpu"}}),
        "Device launches performed by the pool");
    m_batched_jobs_ =
        &sink.metrics->counter("ghs_serve_batched_jobs_total", with_inst({}),
                               "Jobs that rode a multi-job launch");
    if (sink.timeline) {
      // Timeline-only: busy time per device, credited at launch, which the
      // ghs::timeseries scraper turns into utilization-over-time. Gated on
      // Sink::timeline so snapshot-only runs keep their instrument set.
      m_gpu_busy_ps_ = &sink.metrics->counter(
          "ghs_serve_device_busy_ps_total", with_inst({{"device", "gpu"}}),
          "Simulated picoseconds of device service, credited at launch");
      m_cpu_busy_ps_ = &sink.metrics->counter(
          "ghs_serve_device_busy_ps_total", with_inst({{"device", "cpu"}}),
          "Simulated picoseconds of device service, credited at launch");
    }
  }
}

bool DevicePool::idle(Placement device) const {
  if (device == Placement::kGpu) return !gpu_busy_;
  return use_cpu_ && !cpu_busy_;
}

void DevicePool::launch(Placement device, std::vector<Job> jobs,
                        const core::ReduceTuning& tuning,
                        Completion on_complete) {
  GHS_REQUIRE(!jobs.empty(), "empty launch");
  GHS_REQUIRE(idle(device), "launch on busy " << placement_name(device));

  const auto case_id = jobs.front().case_id;
  const bool unified = jobs.front().unified;
  std::int64_t total_elements = 0;
  for (const auto& job : jobs) {
    GHS_REQUIRE(job.case_id == case_id, "mixed-case launch");
    GHS_REQUIRE(job.unified == unified, "mixed unified/explicit launch");
    total_elements += job.elements;
  }
  GHS_REQUIRE(!unified || device == Placement::kGpu,
              "unified jobs are GPU-only");

  SimTime service =
      device == Placement::kGpu
          ? (unified
                 ? model_.unified_gpu_service(case_id, total_elements, tuning)
                 : model_.gpu_service(case_id, total_elements, tuning))
          : model_.cpu_service(case_id, total_elements);
  const SimTime begin = sim_.now();

  // Fault interpretation, all decided at launch time so the outcome is a
  // pure function of (plan, seed, launch sequence): a launch on a down
  // device errors out fast; otherwise brown-outs stretch the service and
  // the launch fails if an outage window overlaps it or a transient kernel
  // fault fires.
  bool failed = false;
  const fault::Target target = device == Placement::kGpu
                                   ? fault::Target::kGpu
                                   : fault::Target::kCpu;
  if (injector_ != nullptr) {
    if (injector_->device_down(target, begin)) {
      failed = true;
      service = injector_->plan().down_error_latency;
      injector_->note_outage_fault(target, begin);
    } else {
      const double scale = injector_->service_scale(target, begin);
      const double stall =
          unified ? injector_->migration_stall_scale(begin) : 1.0;
      if (scale > 1.0) injector_->note_slowed_launch(target, begin, scale);
      if (stall > 1.0) injector_->note_stalled_launch(begin, stall);
      if (scale * stall > 1.0) {
        service = static_cast<SimTime>(
            std::llround(static_cast<double>(service) * scale * stall));
      }
      if (injector_->outage_overlaps(target, begin, begin + service)) {
        failed = true;
        injector_->note_outage_fault(target, begin);
      }
      if (injector_->kernel_fails(target, begin)) failed = true;
    }
  }
  const SimTime end = begin + service;

  const std::int64_t launch_id = next_launch_id_++;
  ++stats_.launches;
  if (device == Placement::kGpu) {
    if (m_gpu_launches_ != nullptr) m_gpu_launches_->inc();
  } else {
    if (m_cpu_launches_ != nullptr) m_cpu_launches_->inc();
  }
  if (jobs.size() > 1) {
    ++stats_.multi_job_launches;
    stats_.batched_jobs += static_cast<std::int64_t>(jobs.size());
    if (m_batched_jobs_ != nullptr) {
      m_batched_jobs_->inc(static_cast<std::int64_t>(jobs.size()));
    }
  }
  if (flight_ != nullptr) {
    flight_->record(begin, "serve", "launch",
                    std::string(workload::case_spec(case_id).name) + " x" +
                        std::to_string(jobs.size()) + " @" +
                        placement_name(device) +
                        (unified ? " unified" : "") +
                        (failed ? " FAIL" : ""));
  }
  if (device == Placement::kGpu) {
    gpu_busy_ = true;
    stats_.gpu_busy += service;
    if (m_gpu_busy_ps_ != nullptr) m_gpu_busy_ps_->inc(service);
    if (failed) {
      ++stats_.gpu_failed_launches;
    } else {
      stats_.gpu_jobs += static_cast<std::int64_t>(jobs.size());
    }
  } else {
    cpu_busy_ = true;
    stats_.cpu_busy += service;
    if (m_cpu_busy_ps_ != nullptr) m_cpu_busy_ps_->inc(service);
    if (failed) {
      ++stats_.cpu_failed_launches;
    } else {
      stats_.cpu_jobs += static_cast<std::int64_t>(jobs.size());
    }
  }

  // Sampling: the whole launch block (including the batch-level kServer
  // span) is skipped when no job in the batch survives the sampler, so a
  // heavily sampled million-job run builds span strings for O(sampled)
  // launches. Launches whose jobs carry no context (tracer attached
  // outside the serving path) are always traced.
  bool trace_launch = tracer_ != nullptr;
  if (trace_launch && tracer_->sampler_active()) {
    bool any_ctx = false;
    bool any_kept = false;
    for (const auto& job : jobs) {
      if (!job.ctx.valid()) continue;
      any_ctx = true;
      if (tracer_->keep(job.ctx)) {
        any_kept = true;
        break;
      }
    }
    trace_launch = !any_ctx || any_kept;
  }
  // Kernel start within the launch: unified launches migrate their managed
  // buffers first. The share goes through the model's memo cache (tuner
  // hit/miss counters), so it is computed only when a consumer — the
  // tracer's device spans or the profile recorder — actually needs it,
  // keeping consumer-free runs byte-identical.
  SimTime kernel_begin = begin;
  if (!failed && unified && (trace_launch || recorder_ != nullptr)) {
    const SimTime share = std::min(
        model_.unified_migration_share(case_id, total_elements, tuning),
        service);
    kernel_begin = begin + share;
  }
  if (trace_launch) {
    const auto& spec = workload::case_spec(case_id);
    tracer_->record(trace::Track::kServer,
                    std::string(spec.name) + " x" +
                        std::to_string(jobs.size()) + " @" +
                        placement_name(device) + (failed ? " FAIL" : ""),
                    begin, end,
                    std::to_string(total_elements) + " elements, launch " +
                        std::to_string(launch_id));
    // Causal layer: one serve.execute child per job under its root span,
    // and — on success — the device-level grandchildren (the page
    // migration share first for unified launches, then the kernel), so a
    // job's trace tree reaches all the way into the simulated hardware.
    for (const auto& job : jobs) {
      if (!job.ctx.valid() || !tracer_->keep(job.ctx)) continue;
      const trace::Context exec_ctx = job.ctx.child(tracer_->new_span_id());
      tracer_->record(trace::Track::kJobs, "serve.execute", begin, end,
                      std::string("device=") + placement_name(device) +
                          " retry=" + std::to_string(job.attempt) +
                          " batch=" + std::to_string(jobs.size()) +
                          " launch=" + std::to_string(launch_id) +
                          (failed ? " failed" : ""),
                      exec_ctx);
      if (failed) continue;
      if (device == Placement::kGpu) {
        if (unified && kernel_begin > begin) {
          tracer_->record(trace::Track::kUmMigration, "um.migrate", begin,
                          kernel_begin, "launch=" + std::to_string(launch_id),
                          exec_ctx.child(tracer_->new_span_id()));
        }
        tracer_->record(trace::Track::kGpu, "gpu.kernel", kernel_begin, end,
                        "launch=" + std::to_string(launch_id),
                        exec_ctx.child(tracer_->new_span_id()));
      } else {
        tracer_->record(trace::Track::kCpu, "cpu.reduce", begin, end,
                        "launch=" + std::to_string(launch_id),
                        exec_ctx.child(tracer_->new_span_id()));
      }
    }
  }

  if (!failed && unified) {
    for (const auto& job : jobs) stats_.unified_bytes += job.bytes();
  }
  if (recorder_ != nullptr) {
    profile::LaunchSample sample;
    sample.node = node_;
    sample.device = device == Placement::kGpu ? profile::Device::kGpu
                                              : profile::Device::kCpu;
    sample.begin = begin;
    sample.kernel_begin = kernel_begin;
    sample.end = end;
    sample.unified = unified;
    sample.failed = failed;
    std::vector<profile::JobCost> costs;
    costs.reserve(jobs.size());
    for (const auto& job : jobs) {
      costs.push_back({job.tenant, static_cast<std::uint8_t>(job.case_id),
                       job.elements, job.bytes(), job.enqueued});
    }
    recorder_->on_launch(sample, costs);
  }

  LaunchResult result;
  result.device = device;
  result.failed = failed;
  if (failed) {
    result.jobs = std::move(jobs);
  } else {
    result.records.reserve(jobs.size());
    for (const auto& job : jobs) {
      JobRecord record;
      record.job = job;
      record.placement = device;
      record.launch_id = launch_id;
      record.start = begin;
      record.completion = end;
      result.records.push_back(record);
    }
  }

  sim_.schedule_at(end, [this, device, result = std::move(result),
                         on_complete = std::move(on_complete)]() {
    if (device == Placement::kGpu) {
      gpu_busy_ = false;
    } else {
      cpu_busy_ = false;
    }
    on_complete(result);
  });
}

}  // namespace ghs::serve
