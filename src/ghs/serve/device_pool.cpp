#include "ghs/serve/device_pool.hpp"

#include <string>
#include <utility>

#include "ghs/util/error.hpp"

namespace ghs::serve {

DevicePool::DevicePool(sim::Simulator& sim, ServiceModel& model, bool use_cpu,
                       trace::Tracer* tracer, telemetry::Sink sink)
    : sim_(sim), model_(model), use_cpu_(use_cpu), tracer_(tracer) {
  flight_ = sink.flight;
  if (sink.metrics != nullptr) {
    m_gpu_launches_ =
        &sink.metrics->counter("ghs_serve_launches_total", {{"device", "gpu"}},
                               "Device launches performed by the pool");
    m_cpu_launches_ =
        &sink.metrics->counter("ghs_serve_launches_total", {{"device", "cpu"}},
                               "Device launches performed by the pool");
    m_batched_jobs_ =
        &sink.metrics->counter("ghs_serve_batched_jobs_total", {},
                               "Jobs that rode a multi-job launch");
  }
}

bool DevicePool::idle(Placement device) const {
  if (device == Placement::kGpu) return !gpu_busy_;
  return use_cpu_ && !cpu_busy_;
}

void DevicePool::launch(Placement device, std::vector<Job> jobs,
                        const core::ReduceTuning& tuning,
                        Completion on_complete) {
  GHS_REQUIRE(!jobs.empty(), "empty launch");
  GHS_REQUIRE(idle(device), "launch on busy " << placement_name(device));

  const auto case_id = jobs.front().case_id;
  const bool unified = jobs.front().unified;
  std::int64_t total_elements = 0;
  for (const auto& job : jobs) {
    GHS_REQUIRE(job.case_id == case_id, "mixed-case launch");
    GHS_REQUIRE(job.unified == unified, "mixed unified/explicit launch");
    total_elements += job.elements;
  }
  GHS_REQUIRE(!unified || device == Placement::kGpu,
              "unified jobs are GPU-only");

  const SimTime service =
      device == Placement::kGpu
          ? (unified
                 ? model_.unified_gpu_service(case_id, total_elements, tuning)
                 : model_.gpu_service(case_id, total_elements, tuning))
          : model_.cpu_service(case_id, total_elements);
  const SimTime begin = sim_.now();
  const SimTime end = begin + service;

  const std::int64_t launch_id = next_launch_id_++;
  ++stats_.launches;
  if (device == Placement::kGpu) {
    if (m_gpu_launches_ != nullptr) m_gpu_launches_->inc();
  } else {
    if (m_cpu_launches_ != nullptr) m_cpu_launches_->inc();
  }
  if (jobs.size() > 1) {
    ++stats_.multi_job_launches;
    stats_.batched_jobs += static_cast<std::int64_t>(jobs.size());
    if (m_batched_jobs_ != nullptr) {
      m_batched_jobs_->inc(static_cast<std::int64_t>(jobs.size()));
    }
  }
  if (flight_ != nullptr) {
    flight_->record(begin, "serve", "launch",
                    std::string(workload::case_spec(case_id).name) + " x" +
                        std::to_string(jobs.size()) + " @" +
                        placement_name(device) +
                        (unified ? " unified" : ""));
  }
  if (device == Placement::kGpu) {
    gpu_busy_ = true;
    stats_.gpu_jobs += static_cast<std::int64_t>(jobs.size());
    stats_.gpu_busy += service;
  } else {
    cpu_busy_ = true;
    stats_.cpu_jobs += static_cast<std::int64_t>(jobs.size());
    stats_.cpu_busy += service;
  }

  if (tracer_ != nullptr) {
    const auto& spec = workload::case_spec(case_id);
    tracer_->record(trace::Track::kServer,
                    std::string(spec.name) + " x" +
                        std::to_string(jobs.size()) + " @" +
                        placement_name(device),
                    begin, end,
                    std::to_string(total_elements) + " elements, launch " +
                        std::to_string(launch_id));
  }

  std::vector<JobRecord> records;
  records.reserve(jobs.size());
  for (const auto& job : jobs) {
    JobRecord record;
    record.job = job;
    record.placement = device;
    record.launch_id = launch_id;
    record.start = begin;
    record.completion = end;
    records.push_back(record);
  }

  sim_.schedule_at(end, [this, device, records = std::move(records),
                         on_complete = std::move(on_complete)]() {
    if (device == Placement::kGpu) {
      gpu_busy_ = false;
    } else {
      cpu_busy_ = false;
    }
    on_complete(device, records);
  });
}

}  // namespace ghs::serve
