// Bounded admission queue with explicit backpressure: push() refuses work
// beyond `max_depth` and the caller surfaces the rejection to the tenant
// (there is no hidden unbounded buffer anywhere in the serve layer).
// Scheduler policies read the queue by index and take() the job they chose,
// so arrival order is preserved for the jobs left behind.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ghs/serve/job.hpp"

namespace ghs::serve {

class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t max_depth);

  /// Admits the job unless the queue is at max depth; returns whether the
  /// job was admitted. A refused job counts toward rejected().
  bool push(const Job& job);

  /// Removes and returns the job at position `index` (arrival order).
  Job take(std::size_t index);

  const Job& at(std::size_t index) const;
  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }
  std::size_t max_depth() const { return max_depth_; }

  std::int64_t accepted() const { return accepted_; }
  std::int64_t rejected() const { return rejected_; }
  /// Deepest the queue has ever been (backpressure diagnostics).
  std::size_t high_watermark() const { return high_watermark_; }

 private:
  std::size_t max_depth_;
  /// Bounded by max_depth_, so the vector reserves its whole capacity up
  /// front and never reallocates while serving.
  std::vector<Job> jobs_;
  std::int64_t accepted_ = 0;
  std::int64_t rejected_ = 0;
  std::size_t high_watermark_ = 0;
};

}  // namespace ghs::serve
