// Service-time model for the request-serving layer.
//
// A served job's cost is not guessed from peak bandwidth: each distinct
// shape (case, elements, geometry, processor) is priced by actually running
// the repository's reduction models once on a fresh Platform — a Listing 6
// single repetition for the GPU, a host worksharing reduction for the Grace
// CPU — and the resulting simulated duration is memoised. The serve layer
// then replays those durations while time-sharing the devices, so a
// thousand-job workload costs a handful of substrate simulations rather
// than a thousand.
#pragma once

#include <cstdint>
#include <tuple>
#include <unordered_map>

#include "ghs/core/reduce.hpp"
#include "ghs/core/system_config.hpp"
#include "ghs/telemetry/registry.hpp"
#include "ghs/workload/cases.hpp"

namespace ghs::serve {

struct ServiceModelOptions {
  core::SystemConfig config = core::gh200_config();
  /// Host threads a CPU-placed job reduces with.
  int cpu_threads = 72;
  bool cpu_simd = true;
  /// Instruments the pricing platforms and (through the policies that hold
  /// the model) the tuner; null members disable.
  telemetry::Sink telemetry;
};

class ServiceModel {
 public:
  explicit ServiceModel(ServiceModelOptions options = {});

  /// Duration of one optimized-kernel repetition (update-to + kernel +
  /// update-from) for the shape, under `tuning`.
  SimTime gpu_service(workload::CaseId case_id, std::int64_t elements,
                      const core::ReduceTuning& tuning);

  /// Duration of a host `parallel for simd reduction` over the shape with
  /// the configured thread count (input resident in LPDDR).
  SimTime cpu_service(workload::CaseId case_id, std::int64_t elements);

  /// Duration of one GPU repetition over a *managed* buffer whose pages
  /// start CPU-resident (allocation-site A2): the cost amortises the
  /// fault-driven migration the first pass triggers with one warm pass,
  /// matching a tenant that reuses its buffer.
  SimTime unified_gpu_service(workload::CaseId case_id, std::int64_t elements,
                              const core::ReduceTuning& tuning);

  /// The page-migration share of unified_gpu_service for the shape: the
  /// amortised unified cost minus the explicit-map kernel cost, clamped at
  /// zero. Both components are memoised, so this prices from the cache.
  /// The tracer uses it to split a unified launch into its um.migrate and
  /// gpu.kernel child spans.
  SimTime unified_migration_share(workload::CaseId case_id,
                                  std::int64_t elements,
                                  const core::ReduceTuning& tuning);

  const ServiceModelOptions& options() const { return options_; }

  /// Shape-cache effectiveness (one miss = one substrate simulation).
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }

 private:
  // (device, case, elements, teams, thread_limit, v, strategy); device is
  // 0 = explicit-map GPU, 1 = CPU, 2 = unified-memory GPU. CPU entries
  // zero the geometry fields.
  using Key = std::tuple<int, int, std::int64_t, std::int64_t, int, int, int>;

  // Pricing sits on the per-launch hot path (hundreds of thousands of
  // lookups in a million-job run), so the memo is hashed, not ordered.
  // Nothing iterates the cache; only hits_/misses_ are observable.
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      std::uint64_t h = 0x9e3779b97f4a7c15ull;
      const auto mix = [&h](std::uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      };
      mix(static_cast<std::uint64_t>(std::get<0>(key)));
      mix(static_cast<std::uint64_t>(std::get<1>(key)));
      mix(static_cast<std::uint64_t>(std::get<2>(key)));
      mix(static_cast<std::uint64_t>(std::get<3>(key)));
      mix(static_cast<std::uint64_t>(std::get<4>(key)));
      mix(static_cast<std::uint64_t>(std::get<5>(key)));
      mix(static_cast<std::uint64_t>(std::get<6>(key)));
      return static_cast<std::size_t>(h);
    }
  };

  ServiceModelOptions options_;
  std::unordered_map<Key, SimTime, KeyHash> cache_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace ghs::serve
