#include "ghs/serve/service.hpp"

#include <algorithm>
#include <cstdio>

#include "ghs/util/error.hpp"

namespace ghs::serve {

namespace {

double to_ms(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

// Fixed-notation double with enough digits to round-trip latencies; JSON
// output must be byte-stable across runs, so formatting goes through one
// snprintf shape only.
void write_double(std::ostream& os, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  os << buf;
}

void write_latency(std::ostream& os, const char* key,
                   const LatencyStats& stats) {
  os << "\"" << key << "\":{\"count\":" << stats.count << ",\"mean_ms\":";
  write_double(os, stats.mean_ms);
  os << ",\"p50_ms\":";
  write_double(os, stats.pct.p50);
  os << ",\"p95_ms\":";
  write_double(os, stats.pct.p95);
  os << ",\"p99_ms\":";
  write_double(os, stats.pct.p99);
  os << ",\"p999_ms\":";
  write_double(os, stats.pct.p999);
  os << ",\"max_ms\":";
  write_double(os, stats.max_ms);
  os << "}";
}

}  // namespace

LatencyStats make_latency_stats(const std::vector<double>& ms) {
  LatencyStats stats;
  stats.count = ms.size();
  if (ms.empty()) return stats;
  stats.mean_ms = stats::arithmetic_mean(ms);
  stats.max_ms = *std::max_element(ms.begin(), ms.end());
  stats.pct = stats::percentiles(ms);
  return stats;
}

void ServiceReport::write_json(std::ostream& os) const {
  os << "{\"policy\":\"" << policy << "\",\"submitted\":" << submitted
     << ",\"served\":" << served << ",\"rejected\":" << rejected
     << ",\"deadline_missed\":" << deadline_missed
     << ",\"launches\":" << launches
     << ",\"multi_job_launches\":" << multi_job_launches
     << ",\"batched_jobs\":" << batched_jobs << ",\"gpu_jobs\":" << gpu_jobs
     << ",\"cpu_jobs\":" << cpu_jobs << ",\"um_jobs\":" << um_jobs
     << ",\"queue_high_watermark\":" << queue_high_watermark
     << ",\"makespan_ms\":";
  write_double(os, to_ms(makespan));
  os << ",\"bytes_served\":" << bytes_served
     << ",\"throughput_jobs_per_s\":";
  write_double(os, throughput_jobs_per_s);
  os << ",\"throughput_gbps\":";
  write_double(os, throughput_gbps);
  os << ",";
  write_latency(os, "latency", latency);
  os << ",";
  write_latency(os, "queue_wait", queue_wait);
  os << ",\"tuner_hits\":" << tuner_hits
     << ",\"tuner_misses\":" << tuner_misses << "}";
}

ReductionService::ReductionService(std::unique_ptr<SchedulerPolicy> policy,
                                   ServiceModel& model,
                                   ServiceOptions options,
                                   trace::Tracer* tracer)
    : policy_(std::move(policy)),
      model_(model),
      options_(options),
      tracer_(tracer),
      queue_(options.queue_depth),
      pool_(sim_, model, options.use_cpu, tracer, options.telemetry) {
  GHS_REQUIRE(policy_ != nullptr, "null policy");
  const telemetry::Sink& sink = options_.telemetry;
  flight_ = sink.flight;
  if (sink.metrics != nullptr) {
    telemetry::Registry& r = *sink.metrics;
    sim_.set_telemetry(&r);
    m_submitted_ = &r.counter("ghs_serve_jobs_submitted_total", {},
                              "Jobs whose arrival reached the service");
    m_admitted_ = &r.counter("ghs_serve_jobs_admitted_total", {},
                             "Jobs accepted into the admission queue");
    m_rejected_ = &r.counter("ghs_serve_jobs_rejected_total", {},
                             "Jobs shed by admission-queue backpressure");
    m_completed_ = &r.counter("ghs_serve_jobs_completed_total", {},
                              "Jobs served to completion");
    m_queue_depth_ = &r.gauge("ghs_serve_queue_depth", {},
                              "Jobs currently waiting in the admission queue");
    const telemetry::Labels policy_label = {{"policy", policy_->name()}};
    m_latency_ms_ = &r.histogram(
        "ghs_serve_latency_ms", telemetry::default_latency_buckets_ms(),
        policy_label, "Arrival-to-completion latency in milliseconds");
    m_queue_wait_ms_ = &r.histogram(
        "ghs_serve_queue_wait_ms", telemetry::default_latency_buckets_ms(),
        policy_label, "Arrival-to-dispatch wait in milliseconds");
  }
}

void ReductionService::submit(const Job& job) {
  GHS_REQUIRE(job.arrival >= sim_.now(),
              "job " << job.id << " arrives in the past");
  sim_.schedule_at(job.arrival, [this, job]() { on_arrival(job); });
}

void ReductionService::submit_all(const std::vector<Job>& jobs) {
  for (const auto& job : jobs) submit(job);
}

void ReductionService::set_on_complete(
    std::function<void(const JobRecord&)> hook) {
  on_complete_ = std::move(hook);
}

void ReductionService::run() { sim_.run(); }

void ReductionService::on_arrival(const Job& job) {
  ++submitted_;
  if (m_submitted_ != nullptr) m_submitted_->inc();
  if (!queue_.push(job)) {
    rejected_.push_back(job);
    if (m_rejected_ != nullptr) m_rejected_->inc();
    if (flight_ != nullptr) {
      flight_->record(sim_.now(), "serve", "rejection",
                      std::string(workload::case_spec(job.case_id).name) +
                          " job " + std::to_string(job.id));
    }
    if (tracer_ != nullptr) {
      tracer_->mark(trace::Track::kServer,
                    std::string("reject ") +
                        workload::case_spec(job.case_id).name,
                    sim_.now());
    }
    return;
  }
  if (m_admitted_ != nullptr) m_admitted_->inc();
  if (flight_ != nullptr) {
    flight_->record(sim_.now(), "serve", "admission",
                    std::string(workload::case_spec(job.case_id).name) +
                        " job " + std::to_string(job.id) +
                        (job.unified ? " unified" : ""));
  }
  update_queue_gauge();
  dispatch_all();
}

void ReductionService::update_queue_gauge() {
  if (m_queue_depth_ != nullptr) {
    m_queue_depth_->set(static_cast<double>(queue_.size()));
  }
}

void ReductionService::dispatch_all() {
  dispatch(Placement::kGpu);
  if (pool_.use_cpu()) dispatch(Placement::kCpu);
}

void ReductionService::dispatch(Placement device) {
  while (pool_.idle(device) && !queue_.empty()) {
    const auto selected = policy_->select(queue_, device, sim_.now());
    if (!selected) return;
    std::vector<Job> batch;
    batch.push_back(queue_.take(*selected));
    const auto& opts = options_.batching;
    if (opts.enable && batch.front().elements <= opts.small_elements) {
      // Coalesce queued small same-case jobs (arrival order) into the
      // launch until a job/element ceiling is hit.
      std::int64_t total = batch.front().elements;
      std::size_t i = 0;
      while (i < queue_.size() &&
             batch.size() < static_cast<std::size_t>(opts.max_jobs)) {
        const Job& candidate = queue_.at(i);
        if (candidate.case_id == batch.front().case_id &&
            candidate.unified == batch.front().unified &&
            candidate.elements <= opts.small_elements &&
            total + candidate.elements <= opts.max_batch_elements) {
          total += candidate.elements;
          batch.push_back(queue_.take(i));
        } else {
          ++i;
        }
      }
    }
    const core::ReduceTuning tuning = device == Placement::kGpu
                                          ? policy_->geometry(batch.front())
                                          : core::ReduceTuning{};
    update_queue_gauge();
    pool_.launch(device, std::move(batch), tuning,
                 [this](Placement completed_on,
                        const std::vector<JobRecord>& records) {
                   for (const auto& record : records) {
                     records_.push_back(record);
                     if (m_completed_ != nullptr) m_completed_->inc();
                     if (m_latency_ms_ != nullptr) {
                       m_latency_ms_->observe(to_ms(record.latency()));
                       m_queue_wait_ms_->observe(to_ms(record.queue_wait()));
                     }
                     if (on_complete_) on_complete_(record);
                   }
                   (void)completed_on;
                   dispatch_all();
                 });
  }
}

ServiceReport ReductionService::report() const {
  ServiceReport report;
  report.policy = policy_->name();
  report.submitted = submitted_;
  report.served = static_cast<std::int64_t>(records_.size());
  report.rejected = static_cast<std::int64_t>(rejected_.size());
  const auto& pool_stats = pool_.stats();
  report.launches = pool_stats.launches;
  report.multi_job_launches = pool_stats.multi_job_launches;
  report.batched_jobs = pool_stats.batched_jobs;
  report.gpu_jobs = pool_stats.gpu_jobs;
  report.cpu_jobs = pool_stats.cpu_jobs;
  report.queue_high_watermark = queue_.high_watermark();

  if (records_.empty()) return report;

  SimTime first_arrival = records_.front().job.arrival;
  SimTime last_completion = 0;
  std::vector<double> latency_ms;
  std::vector<double> wait_ms;
  latency_ms.reserve(records_.size());
  wait_ms.reserve(records_.size());
  for (const auto& record : records_) {
    first_arrival = std::min(first_arrival, record.job.arrival);
    last_completion = std::max(last_completion, record.completion);
    latency_ms.push_back(to_ms(record.latency()));
    wait_ms.push_back(to_ms(record.queue_wait()));
    report.bytes_served += record.job.bytes();
    if (record.job.unified) ++report.um_jobs;
    if (record.deadline_missed()) ++report.deadline_missed;
  }
  report.makespan = last_completion - first_arrival;
  if (report.makespan > 0) {
    const double seconds = to_seconds(report.makespan);
    report.throughput_jobs_per_s =
        static_cast<double>(report.served) / seconds;
    report.throughput_gbps =
        static_cast<double>(report.bytes_served) / 1e9 / seconds;
  }
  report.latency = make_latency_stats(latency_ms);
  report.queue_wait = make_latency_stats(wait_ms);

  if (const auto* bandwidth =
          dynamic_cast<const BandwidthAwarePolicy*>(policy_.get())) {
    report.tuner_hits = bandwidth->tuner_cache().hits;
    report.tuner_misses = bandwidth->tuner_cache().misses;
  }
  return report;
}

stats::Series ReductionService::latency_series() const {
  stats::Series series(std::string("latency-") + policy_->name());
  for (const auto& record : records_) {
    series.add(to_ms(record.job.arrival), to_ms(record.latency()));
  }
  return series;
}

}  // namespace ghs::serve
