#include "ghs/serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "ghs/util/error.hpp"

namespace ghs::serve {

namespace {

double to_ms(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

// Fixed-notation double with enough digits to round-trip latencies; JSON
// output must be byte-stable across runs, so formatting goes through one
// snprintf shape only.
void write_double(std::ostream& os, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  os << buf;
}

void write_latency(std::ostream& os, const char* key,
                   const LatencyStats& stats) {
  os << "\"" << key << "\":{\"count\":" << stats.count << ",\"mean_ms\":";
  write_double(os, stats.mean_ms);
  os << ",\"p50_ms\":";
  write_double(os, stats.pct.p50);
  os << ",\"p95_ms\":";
  write_double(os, stats.pct.p95);
  os << ",\"p99_ms\":";
  write_double(os, stats.pct.p99);
  os << ",\"p999_ms\":";
  write_double(os, stats.pct.p999);
  os << ",\"max_ms\":";
  write_double(os, stats.max_ms);
  os << "}";
}

fault::Injector* effective_injector(fault::Injector* injector) {
  if (injector == nullptr || injector->plan().empty()) return nullptr;
  return injector;
}

int device_index(Placement device) {
  return device == Placement::kGpu ? 0 : 1;
}

}  // namespace

LatencyStats make_latency_stats(const std::vector<double>& ms) {
  LatencyStats stats;
  stats.count = ms.size();
  if (ms.empty()) return stats;
  stats.mean_ms = stats::arithmetic_mean(ms);
  stats.max_ms = *std::max_element(ms.begin(), ms.end());
  stats.pct = stats::percentiles(ms);
  return stats;
}

void ServiceReport::write_json(std::ostream& os) const {
  os << "{\"policy\":\"" << policy << "\",\"submitted\":" << submitted
     << ",\"served\":" << served << ",\"rejected\":" << rejected
     << ",\"deadline_missed\":" << deadline_missed
     << ",\"launches\":" << launches
     << ",\"multi_job_launches\":" << multi_job_launches
     << ",\"batched_jobs\":" << batched_jobs << ",\"gpu_jobs\":" << gpu_jobs
     << ",\"cpu_jobs\":" << cpu_jobs << ",\"um_jobs\":" << um_jobs
     << ",\"queue_high_watermark\":" << queue_high_watermark
     << ",\"makespan_ms\":";
  write_double(os, to_ms(makespan));
  os << ",\"bytes_served\":" << bytes_served
     << ",\"throughput_jobs_per_s\":";
  write_double(os, throughput_jobs_per_s);
  os << ",\"throughput_gbps\":";
  write_double(os, throughput_gbps);
  os << ",";
  write_latency(os, "latency", latency);
  os << ",";
  write_latency(os, "queue_wait", queue_wait);
  os << ",\"tuner_hits\":" << tuner_hits
     << ",\"tuner_misses\":" << tuner_misses;
  // Fault keys only appear on fault-aware runs; an empty (or absent) plan
  // keeps the report byte-identical to a fault-unaware build.
  if (fault_aware) {
    os << ",\"retries\":" << retries << ",\"gpu_failures\":" << gpu_failures
       << ",\"breaker_opens\":" << breaker_opens << ",\"shed\":" << shed
       << ",\"fallback_cpu_jobs\":" << fallback_cpu_jobs;
  }
  os << "}";
}

ReductionService::ReductionService(std::unique_ptr<SchedulerPolicy> policy,
                                   ServiceModel& model,
                                   ServiceOptions options,
                                   trace::Tracer* tracer)
    : policy_(std::move(policy)),
      model_(model),
      options_(options),
      tracer_(tracer),
      owned_sim_(options.external_sim == nullptr
                     ? std::make_unique<sim::Simulator>(options.sim)
                     : nullptr),
      sim_(options.external_sim != nullptr ? *options.external_sim
                                           : *owned_sim_),
      queue_(options.queue_depth),
      injector_(effective_injector(options.injector)),
      pool_(sim_, model, options.use_cpu, tracer, options.telemetry,
            injector_, options.instance_labels, options.profile,
            options.profile_node),
      gpu_breaker_(options.breaker),
      cpu_breaker_(options.breaker),
      retry_rng_(options.retry.jitter_seed) {
  GHS_REQUIRE(policy_ != nullptr, "null policy");
  GHS_REQUIRE(options_.retry.max_attempts >= 1, "max_attempts must be >= 1");
  for (const auto& [key, value] : options_.instance_labels) {
    flight_label_ += key + "=" + value + " ";
  }
  const telemetry::Sink& sink = options_.telemetry;
  flight_ = sink.flight;
  if (sink.metrics != nullptr) {
    telemetry::Registry& r = *sink.metrics;
    sim_.set_telemetry(&r);
    // Per-instance labels (e.g. node="3" in a cluster) namespace every
    // instrument; a standalone service has none, so its instrument
    // identities stay exactly as before.
    const telemetry::Labels& inst = options_.instance_labels;
    const auto with_inst = [&inst](telemetry::Labels labels) {
      labels.insert(labels.end(), inst.begin(), inst.end());
      return labels;
    };
    m_submitted_ = &r.counter("ghs_serve_jobs_submitted_total", with_inst({}),
                              "Jobs whose arrival reached the service");
    m_admitted_ = &r.counter("ghs_serve_jobs_admitted_total", with_inst({}),
                             "Jobs accepted into the admission queue");
    m_rejected_ = &r.counter("ghs_serve_jobs_rejected_total", with_inst({}),
                             "Jobs shed by admission-queue backpressure");
    m_completed_ = &r.counter("ghs_serve_jobs_completed_total", with_inst({}),
                              "Jobs served to completion");
    m_queue_depth_ = &r.gauge("ghs_serve_queue_depth", with_inst({}),
                              "Jobs currently waiting in the admission queue");
    const telemetry::Labels policy_label =
        with_inst({{"policy", policy_->name()}});
    m_latency_ms_ = &r.histogram(
        "ghs_serve_latency_ms", telemetry::default_latency_buckets_ms(),
        policy_label, "Arrival-to-completion latency in milliseconds");
    m_queue_wait_ms_ = &r.histogram(
        "ghs_serve_queue_wait_ms", telemetry::default_latency_buckets_ms(),
        policy_label, "Arrival-to-dispatch wait in milliseconds");
    if (injector_ != nullptr) {
      m_retries_ = &r.counter("ghs_serve_retry_attempts_total", with_inst({}),
                              "Failed-launch retries scheduled");
      m_shed_ = &r.counter(
          "ghs_serve_shed_jobs_total", with_inst({}),
          "Jobs dropped by the retry machinery (budget, deadline, requeue)");
      m_fallback_ = &r.counter(
          "ghs_serve_fallback_cpu_jobs_total", with_inst({}),
          "Jobs placed on the Grace CPU while the GPU breaker was open");
      m_breaker_opens_[0] = &r.counter("ghs_serve_breaker_opens_total",
                                       with_inst({{"device", "gpu"}}),
                                       "Circuit-breaker trips to open");
      m_breaker_opens_[1] = &r.counter("ghs_serve_breaker_opens_total",
                                       with_inst({{"device", "cpu"}}),
                                       "Circuit-breaker trips to open");
      m_breaker_state_[0] = &r.gauge(
          "ghs_serve_breaker_state", with_inst({{"device", "gpu"}}),
          "Circuit-breaker state (0 closed, 1 open, 2 half-open)");
      m_breaker_state_[1] = &r.gauge(
          "ghs_serve_breaker_state", with_inst({{"device", "cpu"}}),
          "Circuit-breaker state (0 closed, 1 open, 2 half-open)");
    }
  }
  if (injector_ != nullptr) {
    gpu_breaker_.set_on_transition(
        [this](fault::BreakerState from, fault::BreakerState to, SimTime at) {
          on_breaker_transition(Placement::kGpu, from, to, at);
        });
    cpu_breaker_.set_on_transition(
        [this](fault::BreakerState from, fault::BreakerState to, SimTime at) {
          on_breaker_transition(Placement::kCpu, from, to, at);
        });
    // Poke the dispatcher at every plan-window boundary so a device coming
    // back up is noticed even when no arrival or completion lands nearby.
    for (const SimTime at : injector_->transitions()) {
      sim_.schedule_at(at, [this]() { dispatch_all(); });
    }
  }
}

void ReductionService::submit(const Job& job) {
  GHS_REQUIRE(job.arrival >= sim_.now(),
              "job " << job.id << " arrives in the past");
  sim_.schedule_at(job.arrival, [this, job]() { on_arrival(job); });
}

void ReductionService::submit_all(const std::vector<Job>& jobs) {
  submit_all(std::vector<Job>(jobs));
}

void ReductionService::submit_all(std::vector<Job>&& jobs) {
  if (jobs.empty()) return;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    if (jobs[i].arrival < jobs[i - 1].arrival) {
      // Not arrival-sorted: keep the straightforward one-event-per-job
      // submission rather than re-ordering the caller's batch.
      for (const auto& job : jobs) submit(job);
      return;
    }
  }
  GHS_REQUIRE(jobs.front().arrival >= sim_.now(),
              "job " << jobs.front().id << " arrives in the past");
  records_.reserve(records_.size() + jobs.size());
  arrival_chains_.push_back(std::make_unique<ArrivalChain>());
  ArrivalChain* chain = arrival_chains_.back().get();
  chain->jobs = std::move(jobs);
  sim_.schedule_at(chain->jobs.front().arrival,
                   [this, chain]() { pump_arrivals(chain); });
}

void ReductionService::pump_arrivals(ArrivalChain* chain) {
  const Job& job = chain->jobs[chain->next++];
  // The next link is scheduled before this arrival is admitted, so among
  // same-timestamp events the chain keeps the low sequence numbers that
  // up-front submission would have given the arrivals.
  if (chain->next < chain->jobs.size()) {
    sim_.schedule_at(chain->jobs[chain->next].arrival,
                     [this, chain]() { pump_arrivals(chain); });
  }
  on_arrival(job);
}

void ReductionService::set_on_complete(
    std::function<void(const JobRecord&)> hook) {
  on_complete_ = std::move(hook);
}

void ReductionService::set_on_reject(
    std::function<void(const Job&, SimTime)> hook) {
  on_reject_ = std::move(hook);
}

void ReductionService::set_on_shed(
    std::function<void(const Job&, SimTime)> hook) {
  on_shed_ = std::move(hook);
}

void ReductionService::set_on_breaker_transition(
    std::function<void(Placement, fault::BreakerState, fault::BreakerState,
                       SimTime)>
        hook) {
  on_breaker_ = std::move(hook);
}

std::vector<Job> ReductionService::steal_queued(std::size_t max_jobs) {
  std::vector<Job> stolen;
  const std::size_t take = std::min(max_jobs, queue_.size());
  stolen.reserve(take);
  // Oldest first: position 0 is always the longest-waiting job, and take()
  // shifts the rest down, so repeatedly draining the front preserves
  // arrival order among the stolen jobs.
  for (std::size_t i = 0; i < take; ++i) stolen.push_back(queue_.take(0));
  if (!stolen.empty()) {
    update_queue_gauge();
    if (flight_ != nullptr) {
      flight_->record(sim_.now(), "serve", "steal",
                      std::to_string(stolen.size()) + " queued job(s) stolen");
    }
  }
  return stolen;
}

void ReductionService::crash() {
  if (!alive_) return;
  alive_ = false;
  ++epoch_;
  // The queued jobs die with the process; their write-ahead journal
  // entries (owned by the composing cluster) are the only copies left.
  std::size_t dropped = 0;
  while (!queue_.empty()) {
    queue_.take(queue_.size() - 1);
    ++dropped;
  }
  update_queue_gauge();
  if (flight_ != nullptr) {
    flight_->record(sim_.now(), "serve", "crash",
                    flight_label_ + "node process died, " +
                        std::to_string(dropped) + " queued job(s) lost");
  }
}

void ReductionService::restore() {
  if (alive_) return;
  alive_ = true;
  if (flight_ != nullptr) {
    flight_->record(sim_.now(), "serve", "restart",
                    flight_label_ + "node process restarted (cold queue)");
  }
  dispatch_all();
}

void ReductionService::run() { sim_.run(); }

void ReductionService::on_arrival(Job job) {
  ++submitted_;
  if (m_submitted_ != nullptr) m_submitted_->inc();
  // With a tracer attached every job opens a trace at admission: the root
  // context rides the Job through queue, placement, retries, and the device
  // pool, so each child span can name its parent deterministically.
  if (tracer_ != nullptr && !job.ctx.valid()) {
    job.ctx = trace::Context{trace::derive_trace_id(job.id),
                             tracer_->new_span_id(), 0};
  }
  job.enqueued = sim_.now();
  // A dead node refuses every arrival through the normal rejection path:
  // the composing cluster sees the bounce via on_reject and re-routes,
  // which is exactly the pre-detection cost a crashed node imposes.
  if (!alive_ || !queue_.push(job)) {
    rejected_.push_back(job);
    rejected_at_.push_back(sim_.now());
    if (m_rejected_ != nullptr) m_rejected_->inc();
    if (flight_ != nullptr) {
      flight_->record(sim_.now(), "serve", "rejection",
                      std::string(workload::case_spec(job.case_id).name) +
                          " job " + std::to_string(job.id));
    }
    if (tracer_ != nullptr && tracer_->keep(job.ctx)) {
      tracer_->mark(trace::Track::kServer,
                    std::string("reject ") +
                        workload::case_spec(job.case_id).name,
                    sim_.now());
      record_root_span(job, sim_.now(), "rejected", "");
    }
    if (on_reject_) on_reject_(job, sim_.now());
    return;
  }
  if (m_admitted_ != nullptr) m_admitted_->inc();
  if (flight_ != nullptr) {
    flight_->record(sim_.now(), "serve", "admission",
                    std::string(workload::case_spec(job.case_id).name) +
                        " job " + std::to_string(job.id) +
                        (job.unified ? " unified" : ""));
  }
  if (tracer_ != nullptr && tracer_->keep(job.ctx)) {
    tracer_->mark(trace::Track::kJobs, "serve.admit", sim_.now(),
                  job.ctx.child(tracer_->new_span_id()));
  }
  update_queue_gauge();
  dispatch_all();
}

void ReductionService::update_queue_gauge() {
  if (m_queue_depth_ != nullptr) {
    m_queue_depth_->set(static_cast<double>(queue_.size()));
  }
}

void ReductionService::dispatch_all() {
  dispatch(Placement::kGpu);
  if (pool_.use_cpu()) dispatch(Placement::kCpu);
}

void ReductionService::dispatch(Placement device) {
  if (!alive_) return;
  while (pool_.idle(device) && !queue_.empty()) {
    if (injector_ != nullptr) {
      fault::CircuitBreaker& breaker = breaker_ref(device);
      if (!breaker.allow(sim_.now())) {
        // Breaker open: stop launching on this device and wake the
        // dispatcher when the half-open probe becomes admissible.
        schedule_breaker_wake(device, breaker.probe_at());
        return;
      }
    }
    auto selected = policy_->select(queue_, device, sim_.now());
    bool fallback = false;
    if (!selected && device == Placement::kCpu && injector_ != nullptr &&
        gpu_breaker_.state() != fault::BreakerState::kClosed) {
      // Degraded placement: the GPU breaker is open (or probing) and the
      // policy would leave the CPU idle. Serve the oldest non-unified job
      // on the Grace CPU instead of letting the queue stall; unified jobs
      // stay GPU-bound and wait for the probe.
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        if (!queue_.at(i).unified) {
          selected = i;
          fallback = true;
          break;
        }
      }
    }
    if (!selected) return;
    std::vector<Job> batch;
    batch.push_back(queue_.take(*selected));
    const auto& opts = options_.batching;
    if (opts.enable && batch.front().elements <= opts.small_elements) {
      // Coalesce queued small same-case jobs (arrival order) into the
      // launch until a job/element ceiling is hit.
      std::int64_t total = batch.front().elements;
      std::size_t i = 0;
      while (i < queue_.size() &&
             batch.size() < static_cast<std::size_t>(opts.max_jobs)) {
        const Job& candidate = queue_.at(i);
        if (candidate.case_id == batch.front().case_id &&
            candidate.unified == batch.front().unified &&
            candidate.elements <= opts.small_elements &&
            total + candidate.elements <= opts.max_batch_elements) {
          total += candidate.elements;
          batch.push_back(queue_.take(i));
        } else {
          ++i;
        }
      }
    }
    if (fallback) {
      fallback_cpu_jobs_ += static_cast<std::int64_t>(batch.size());
      if (m_fallback_ != nullptr) {
        m_fallback_->inc(static_cast<std::int64_t>(batch.size()));
      }
      if (flight_ != nullptr) {
        flight_->record(sim_.now(), "serve", "fallback",
                        std::to_string(batch.size()) +
                            " job(s) to cpu, gpu breaker " +
                            fault::breaker_state_name(gpu_breaker_.state()));
      }
    }
    if (tracer_ != nullptr) {
      // One serve.queue child per job in the batch: from its last enqueue
      // (arrival, or the requeue instant of a retry) to this dispatch.
      for (const Job& queued : batch) {
        if (!queued.ctx.valid() || !tracer_->keep(queued.ctx)) continue;
        tracer_->record(
            trace::Track::kJobs, "serve.queue", queued.enqueued, sim_.now(),
            "attempt=" + std::to_string(queued.attempt) +
                (fallback ? " fallback=cpu" : ""),
            queued.ctx.child(tracer_->new_span_id()));
      }
    }
    const core::ReduceTuning tuning = device == Placement::kGpu
                                          ? policy_->geometry(batch.front())
                                          : core::ReduceTuning{};
    update_queue_gauge();
    // The completion closure belongs to this incarnation: if the node
    // crashes before the launch lands, the stale result is discarded (the
    // jobs are replayed elsewhere by the cluster's journal). dispatch_all
    // still runs so a restarted node reclaims the device the moment the
    // stale completion frees it.
    pool_.launch(device, std::move(batch), tuning,
                 [this, epoch = epoch_](const LaunchResult& result) {
                   if (epoch == epoch_) on_launch_complete(result);
                   dispatch_all();
                 });
  }
}

void ReductionService::on_launch_complete(const LaunchResult& result) {
  if (result.failed) {
    if (injector_ != nullptr) {
      breaker_ref(result.device).record_failure(sim_.now());
    }
    for (const auto& job : result.jobs) handle_failed_job(job);
    return;
  }
  if (injector_ != nullptr) {
    breaker_ref(result.device).record_success(sim_.now());
  }
  for (const auto& record : result.records) {
    records_.push_back(record);
    if (m_completed_ != nullptr) m_completed_->inc();
    if (m_latency_ms_ != nullptr) {
      // Traced runs attach the job's trace id as an exemplar, so a fat
      // latency bucket names the span tree that filled it; untraced runs
      // keep the plain (pre-exemplar) observation path.
      if (record.job.ctx.valid()) {
        m_latency_ms_->observe_exemplar(to_ms(record.latency()),
                                        record.job.ctx.trace_id);
        m_queue_wait_ms_->observe_exemplar(to_ms(record.queue_wait()),
                                           record.job.ctx.trace_id);
      } else {
        m_latency_ms_->observe(to_ms(record.latency()));
        m_queue_wait_ms_->observe(to_ms(record.queue_wait()));
      }
    }
    if (tracer_ != nullptr) {
      record_root_span(record.job, record.completion, "served",
                       placement_name(record.placement));
    }
    if (on_complete_) on_complete_(record);
  }
}

void ReductionService::record_root_span(const Job& job, SimTime end,
                                        const char* outcome,
                                        const char* device) {
  // keep() short-circuits the detail-string build for sampled-out traces;
  // this is the O(sampled) guarantee on the per-job span path.
  if (tracer_ == nullptr || !job.ctx.valid() || !tracer_->keep(job.ctx)) {
    return;
  }
  std::string detail = std::string("case=") +
                       workload::case_spec(job.case_id).name +
                       " elements=" + std::to_string(job.elements) +
                       " outcome=" + outcome +
                       " retries=" + std::to_string(job.attempt);
  if (device[0] != '\0') detail += std::string(" device=") + device;
  if (job.unified) detail += " unified";
  tracer_->record(trace::Track::kJobs,
                  "serve.job #" + std::to_string(job.id), job.arrival, end,
                  detail, job.ctx);
}

void ReductionService::handle_failed_job(const Job& job) {
  const SimTime now = sim_.now();
  if (job.attempt + 1 >= options_.retry.max_attempts) {
    shed_job(job, "retry budget exhausted");
    return;
  }
  // Capped exponential backoff with deterministic jitter: the draw happens
  // on every retry decision so the jitter stream is a pure function of the
  // failure sequence.
  const RetryOptions& retry = options_.retry;
  SimTime backoff = retry.backoff_base;
  for (int i = 0; i < job.attempt && backoff < retry.backoff_cap; ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, retry.backoff_cap);
  const SimTime jitter = static_cast<SimTime>(std::llround(
      retry_rng_.next_double() * retry.jitter * static_cast<double>(backoff)));
  const SimTime retry_at = now + backoff + jitter;
  // Deadline-aware retry budget: if the retry cannot even start before the
  // job's deadline, shed now instead of burning a launch we know is late.
  if (job.deadline > 0 && retry_at >= job.deadline) {
    shed_job(job, "deadline unreachable");
    return;
  }
  ++retries_;
  if (m_retries_ != nullptr) m_retries_->inc();
  if (options_.profile != nullptr) {
    options_.profile->on_retry_backoff(
        options_.profile_node,
        {job.tenant, static_cast<std::uint8_t>(job.case_id), job.elements,
         job.bytes(), job.enqueued},
        backoff + jitter);
  }
  if (flight_ != nullptr) {
    flight_->record(now, "serve", "retry",
                    "job " + std::to_string(job.id) + " attempt " +
                        std::to_string(job.attempt + 1) + " in " +
                        std::to_string((backoff + jitter) / kMicrosecond) +
                        "us");
  }
  Job again = job;
  ++again.attempt;
  if (tracer_ != nullptr && again.ctx.valid() && tracer_->keep(again.ctx)) {
    tracer_->record(trace::Track::kJobs, "serve.retry_backoff", now,
                    retry_at, "retry=" + std::to_string(again.attempt),
                    again.ctx.child(tracer_->new_span_id()));
  }
  again.enqueued = retry_at;
  sim_.schedule_at(retry_at, [this, again, epoch = epoch_]() {
    // A crash between the failure and the requeue voids the retry: the
    // job's journal entry is replayed on a peer instead.
    if (epoch != epoch_) return;
    if (!queue_.push(again)) {
      shed_job(again, "requeue refused (queue full)");
      return;
    }
    update_queue_gauge();
    dispatch_all();
  });
}

void ReductionService::shed_job(const Job& job, const char* reason) {
  shed_.push_back(job);
  shed_at_.push_back(sim_.now());
  if (m_shed_ != nullptr) m_shed_->inc();
  if (flight_ != nullptr) {
    flight_->record(sim_.now(), "serve", "shed",
                    "job " + std::to_string(job.id) + ": " + reason);
  }
  if (tracer_ != nullptr && tracer_->keep(job.ctx)) {
    tracer_->mark(trace::Track::kServer,
                  "shed " + std::to_string(job.id), sim_.now());
    record_root_span(job, sim_.now(), "shed", "");
  }
  if (on_shed_) on_shed_(job, sim_.now());
}

void ReductionService::schedule_breaker_wake(Placement device, SimTime at) {
  SimTime& pending = device == Placement::kGpu ? gpu_wake_ : cpu_wake_;
  if (pending == at) return;  // wake already queued for this probe time
  pending = at;
  sim_.schedule_at(at, [this]() { dispatch_all(); });
}

void ReductionService::on_breaker_transition(Placement device,
                                             fault::BreakerState from,
                                             fault::BreakerState to,
                                             SimTime at) {
  const int idx = device_index(device);
  if (to == fault::BreakerState::kOpen && m_breaker_opens_[idx] != nullptr) {
    m_breaker_opens_[idx]->inc();
  }
  if (m_breaker_state_[idx] != nullptr) {
    m_breaker_state_[idx]->set(static_cast<double>(to));
  }
  if (flight_ != nullptr) {
    // Instance labels (node=N in a fleet) make the transition attributable
    // without a trace; standalone services have no labels, so their
    // recorded bytes are unchanged.
    flight_->record(at, "serve", "breaker",
                    flight_label_ + placement_name(device) + " " +
                        fault::breaker_state_name(from) + " -> " +
                        fault::breaker_state_name(to));
  }
  if (tracer_ != nullptr) {
    tracer_->mark(trace::Track::kServer,
                  std::string("serve.breaker ") + placement_name(device) +
                      " " + fault::breaker_state_name(to),
                  at);
  }
  if (on_breaker_) on_breaker_(device, from, to, at);
}

ServiceReport ReductionService::report() const {
  ServiceReport report;
  report.policy = policy_->name();
  report.submitted = submitted_;
  report.served = static_cast<std::int64_t>(records_.size());
  report.rejected = static_cast<std::int64_t>(rejected_.size());
  const auto& pool_stats = pool_.stats();
  report.launches = pool_stats.launches;
  report.multi_job_launches = pool_stats.multi_job_launches;
  report.batched_jobs = pool_stats.batched_jobs;
  report.gpu_jobs = pool_stats.gpu_jobs;
  report.cpu_jobs = pool_stats.cpu_jobs;
  report.queue_high_watermark = queue_.high_watermark();
  if (injector_ != nullptr) {
    report.fault_aware = true;
    report.retries = retries_;
    report.gpu_failures = pool_stats.gpu_failed_launches;
    report.breaker_opens = gpu_breaker_.opens() + cpu_breaker_.opens();
    report.shed = static_cast<std::int64_t>(shed_.size());
    report.fallback_cpu_jobs = fallback_cpu_jobs_;
  }

  if (records_.empty()) return report;

  SimTime first_arrival = records_.front().job.arrival;
  SimTime last_completion = 0;
  std::vector<double> latency_ms;
  std::vector<double> wait_ms;
  latency_ms.reserve(records_.size());
  wait_ms.reserve(records_.size());
  for (const auto& record : records_) {
    first_arrival = std::min(first_arrival, record.job.arrival);
    last_completion = std::max(last_completion, record.completion);
    latency_ms.push_back(to_ms(record.latency()));
    wait_ms.push_back(to_ms(record.queue_wait()));
    report.bytes_served += record.job.bytes();
    if (record.job.unified) ++report.um_jobs;
    if (record.deadline_missed()) ++report.deadline_missed;
  }
  report.makespan = last_completion - first_arrival;
  if (report.makespan > 0) {
    const double seconds = to_seconds(report.makespan);
    report.throughput_jobs_per_s =
        static_cast<double>(report.served) / seconds;
    report.throughput_gbps =
        static_cast<double>(report.bytes_served) / 1e9 / seconds;
  }
  report.latency = make_latency_stats(latency_ms);
  report.queue_wait = make_latency_stats(wait_ms);

  if (const auto* bandwidth =
          dynamic_cast<const BandwidthAwarePolicy*>(policy_.get())) {
    report.tuner_hits = bandwidth->tuner_cache().hits;
    report.tuner_misses = bandwidth->tuner_cache().misses;
  }
  return report;
}

profile::ConservationTotals ReductionService::conservation_totals() const {
  profile::ConservationTotals totals;
  totals.gpu_busy_ps = pool_.stats().gpu_busy;
  totals.cpu_busy_ps = pool_.stats().cpu_busy;
  totals.um_bytes = pool_.stats().unified_bytes;
  return totals;
}

stats::Series ReductionService::latency_series() const {
  stats::Series series(std::string("latency-") + policy_->name());
  for (const auto& record : records_) {
    series.add(to_ms(record.job.arrival), to_ms(record.latency()));
  }
  return series;
}

}  // namespace ghs::serve
