#include "ghs/serve/queue.hpp"

#include <algorithm>

#include "ghs/util/error.hpp"

namespace ghs::serve {

const char* placement_name(Placement placement) {
  return placement == Placement::kGpu ? "GPU" : "CPU";
}

AdmissionQueue::AdmissionQueue(std::size_t max_depth)
    : max_depth_(max_depth) {
  GHS_REQUIRE(max_depth > 0, "max_depth=" << max_depth);
  jobs_.reserve(max_depth_);
}

bool AdmissionQueue::push(const Job& job) {
  GHS_REQUIRE(job.elements > 0, "job " << job.id << " has no elements");
  if (jobs_.size() >= max_depth_) {
    ++rejected_;
    return false;
  }
  jobs_.push_back(job);
  ++accepted_;
  high_watermark_ = std::max(high_watermark_, jobs_.size());
  return true;
}

Job AdmissionQueue::take(std::size_t index) {
  GHS_REQUIRE(index < jobs_.size(),
              "take(" << index << ") of " << jobs_.size());
  Job job = jobs_[index];
  jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(index));
  return job;
}

const Job& AdmissionQueue::at(std::size_t index) const {
  GHS_REQUIRE(index < jobs_.size(), "at(" << index << ") of " << jobs_.size());
  return jobs_[index];
}

}  // namespace ghs::serve
