// Workload synthesis for the serving layer.
//
// Open loop: Poisson arrivals at a fixed mean rate — tenants do not wait
// for each other, so the service sheds load through the admission queue
// when oversubscribed. Closed loop: a fixed number of tenants each keep
// one job in flight (submit, wait, think, submit), so offered load tracks
// service capacity. Both draw from the deterministic xoshiro RNG: one seed
// is one workload, byte for byte.
#pragma once

#include <cstdint>
#include <vector>

#include "ghs/serve/job.hpp"
#include "ghs/serve/service.hpp"

namespace ghs::serve {

/// Weighted case mix; weights need not sum to 1.
struct MixEntry {
  workload::CaseId case_id = workload::CaseId::kC1;
  double weight = 1.0;
};

/// The mixed C1-C4 workload (equal weights).
std::vector<MixEntry> mixed_cases();

struct WorkloadShape {
  std::vector<MixEntry> mix = mixed_cases();
  /// Element counts are 2^k with k uniform in [min_log2, max_log2]; the
  /// power-of-two grid mirrors size-bucketed production traffic and keeps
  /// the service-model shape cache effective.
  int min_log2_elements = 16;
  int max_log2_elements = 21;
  /// Relative deadline added to each arrival; 0 = best-effort.
  SimTime deadline = 0;
  /// Fraction of jobs submitted as unified-memory tenants (managed buffer,
  /// GPU-only placement, fault-migration cost in the price). 0 preserves
  /// the legacy explicit-map workload byte for byte.
  double um_fraction = 0.0;
};

struct OpenLoopOptions {
  WorkloadShape shape;
  /// Mean arrival rate, jobs per simulated second.
  double rate_hz = 100000.0;
  std::int64_t jobs = 200;
  std::uint64_t seed = 42;
};

/// Generates the full arrival schedule (exponential inter-arrival gaps).
std::vector<Job> open_loop_poisson(const OpenLoopOptions& options);

struct ClosedLoopOptions {
  WorkloadShape shape;
  /// Concurrent tenants, each with one job in flight.
  int tenants = 8;
  /// Total jobs across all tenants.
  std::int64_t jobs = 200;
  /// Pause between a tenant's completion and its next submission.
  SimTime think_time = 0;
  std::uint64_t seed = 42;
};

/// Drives `service` closed-loop to completion (installs the service's
/// on_complete hook, submits, runs, and restores the hook).
void run_closed_loop(ReductionService& service,
                     const ClosedLoopOptions& options);

}  // namespace ghs::serve
