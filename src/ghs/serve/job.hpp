// Request types of the reduction service: a Job is one tenant asking for
// one sum reduction (case, element count, optional deadline); a JobRecord
// is the accounting the service keeps once the job has been admitted,
// placed, and served. Everything is in simulated time, so a served workload
// is bit-reproducible.
#pragma once

#include <cstdint>

#include "ghs/trace/context.hpp"
#include "ghs/util/units.hpp"
#include "ghs/workload/cases.hpp"

namespace ghs::serve {

using JobId = std::int64_t;

/// Processor a job was placed on by the scheduler.
enum class Placement : std::uint8_t { kGpu, kCpu };

const char* placement_name(Placement placement);

struct Job {
  JobId id = 0;
  workload::CaseId case_id = workload::CaseId::kC1;
  std::int64_t elements = 0;
  /// Absolute simulated arrival time.
  SimTime arrival = 0;
  /// Absolute completion deadline; 0 = best-effort (no deadline).
  SimTime deadline = 0;
  /// Tenant hands over a managed (unified-memory) buffer instead of an
  /// explicitly mapped one: service cost then includes the page migration
  /// the first GPU pass triggers. Unified jobs are GPU-only.
  bool unified = false;
  /// Tenant identity, used by the cluster router's consistent-hash policy
  /// (and, later, per-tenant caching). The single-node service ignores it,
  /// so the default keeps every existing workload byte-identical.
  std::int64_t tenant = 0;
  /// Cluster node whose LPDDR5X holds the job's source array; -1 means the
  /// data is local to whichever node serves the job. Only the cluster
  /// layer reads it — a job served by a standalone service never pays a
  /// transfer.
  int source_node = -1;
  /// Failed-launch retries already spent on this job (0 = first attempt).
  /// Maintained by the service's retry machinery; tenants leave it at 0.
  int attempt = 0;
  /// Root span context of the job's trace, assigned at admission when the
  /// service runs with a tracer; tenants leave it default. Invalid (all
  /// zeros) on untraced runs, so trace-off behaviour is unchanged.
  trace::Context ctx;
  /// When the job last entered the admission queue (arrival, or the requeue
  /// instant for a retry). Service bookkeeping for the serve.queue span.
  SimTime enqueued = 0;

  Bytes bytes() const {
    return elements * workload::case_spec(case_id).element_size;
  }
};

/// Accounting for one served job. `launch_id` groups jobs that were batched
/// into the same device launch; all jobs of a launch share start/completion.
struct JobRecord {
  Job job;
  Placement placement = Placement::kGpu;
  std::int64_t launch_id = -1;
  SimTime start = 0;
  SimTime completion = 0;

  SimTime queue_wait() const { return start - job.arrival; }
  SimTime service() const { return completion - start; }
  SimTime latency() const { return completion - job.arrival; }
  bool deadline_missed() const {
    return job.deadline > 0 && completion > job.deadline;
  }
};

}  // namespace ghs::serve
