#include "ghs/serve/service_model.hpp"

#include <algorithm>

#include "ghs/core/platform.hpp"
#include "ghs/cpu/device.hpp"
#include "ghs/util/error.hpp"

namespace ghs::serve {

ServiceModel::ServiceModel(ServiceModelOptions options)
    : options_(std::move(options)) {
  GHS_REQUIRE(options_.cpu_threads > 0,
              "cpu_threads=" << options_.cpu_threads);
  options_.cpu_threads =
      std::min(options_.cpu_threads, options_.config.cpu.cores);
}

SimTime ServiceModel::gpu_service(workload::CaseId case_id,
                                  std::int64_t elements,
                                  const core::ReduceTuning& tuning) {
  const Key key{0,
                static_cast<int>(case_id),
                elements,
                tuning.teams,
                tuning.thread_limit,
                tuning.v,
                static_cast<int>(tuning.strategy)};
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  core::Platform platform(options_.config);
  if (options_.telemetry) platform.set_telemetry(options_.telemetry);
  core::GpuBenchmark bench;
  bench.case_id = case_id;
  bench.tuning = tuning;
  bench.elements = elements;
  bench.iterations = 1;
  const auto result = core::run_gpu_benchmark(platform, bench);
  cache_[key] = result.elapsed;
  return result.elapsed;
}

SimTime ServiceModel::unified_gpu_service(workload::CaseId case_id,
                                          std::int64_t elements,
                                          const core::ReduceTuning& tuning) {
  const Key key{2,
                static_cast<int>(case_id),
                elements,
                tuning.teams,
                tuning.thread_limit,
                tuning.v,
                static_cast<int>(tuning.strategy)};
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  core::Platform platform(options_.config);
  if (options_.telemetry) platform.set_telemetry(options_.telemetry);
  // GPU-only point (p = 0) of the Listing 8 protocol, allocation-site A2:
  // pages first-touch in LPDDR, so repetition one pays the fault-driven
  // migration and repetition two streams from HBM. Two repetitions halve
  // into the amortised per-service cost.
  core::HeteroBenchmark bench;
  bench.case_id = case_id;
  bench.tuning = tuning;
  bench.site = core::AllocSite::kA2;
  bench.cpu_parts = {0.0};
  bench.elements = elements;
  bench.iterations = 2;
  bench.cpu_threads = options_.cpu_threads;
  bench.cpu_simd = options_.cpu_simd;
  const auto result = core::run_hetero_benchmark(platform, bench);
  const SimTime duration = result.at(0.0).elapsed / bench.iterations;
  GHS_REQUIRE(duration > 0, "unified pricing produced no duration");
  cache_[key] = duration;
  return duration;
}

SimTime ServiceModel::unified_migration_share(workload::CaseId case_id,
                                              std::int64_t elements,
                                              const core::ReduceTuning& tuning) {
  const SimTime unified = unified_gpu_service(case_id, elements, tuning);
  const SimTime explicit_map = gpu_service(case_id, elements, tuning);
  return unified > explicit_map ? unified - explicit_map : 0;
}

SimTime ServiceModel::cpu_service(workload::CaseId case_id,
                                  std::int64_t elements) {
  const Key key{1, static_cast<int>(case_id), elements, 0, 0, 0, 0};
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  const auto& spec = workload::case_spec(case_id);
  core::Platform platform(options_.config);
  if (options_.telemetry) platform.set_telemetry(options_.telemetry);
  cpu::CpuReduceRequest request;
  request.label = spec.name;
  request.elements = elements;
  request.element_size = spec.element_size;
  request.threads = options_.cpu_threads;
  request.use_simd = options_.cpu_simd;
  SimTime duration = 0;
  platform.cpu().reduce(request, [&duration](const cpu::CpuReduceResult& r) {
    duration = r.duration();
  });
  platform.run();
  GHS_REQUIRE(duration > 0, "CPU reduction produced no duration");
  cache_[key] = duration;
  return duration;
}

}  // namespace ghs::serve
