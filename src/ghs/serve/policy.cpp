#include "ghs/serve/policy.hpp"

#include <cmath>
#include <string>

#include "ghs/telemetry/flight_recorder.hpp"
#include "ghs/util/error.hpp"

namespace ghs::serve {

namespace {

// Unused-parameter-free helper: FIFO and SJF never place work on the CPU.
std::optional<std::size_t> gpu_only(const AdmissionQueue& queue,
                                    Placement device) {
  if (device != Placement::kGpu || queue.empty()) return std::nullopt;
  return std::size_t{0};
}

}  // namespace

std::optional<std::size_t> FifoPolicy::select(const AdmissionQueue& queue,
                                              Placement device,
                                              SimTime /*now*/) {
  return gpu_only(queue, device);
}

core::ReduceTuning FifoPolicy::geometry(const Job& job) {
  return core::paper_best_tuning(job.case_id);
}

std::optional<std::size_t> ShortestJobFirstPolicy::select(
    const AdmissionQueue& queue, Placement device, SimTime /*now*/) {
  if (device != Placement::kGpu || queue.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue.size(); ++i) {
    if (queue.at(i).bytes() < queue.at(best).bytes()) best = i;
  }
  return best;
}

core::ReduceTuning ShortestJobFirstPolicy::geometry(const Job& job) {
  return core::paper_best_tuning(job.case_id);
}

BandwidthAwarePolicy::BandwidthAwarePolicy(ServiceModel& model,
                                           Options options)
    : model_(model), options_(options) {
  GHS_REQUIRE(options_.max_probes > 0, "max_probes=" << options_.max_probes);
  GHS_REQUIRE(options_.cpu_slowdown_limit > 0.0,
              "cpu_slowdown_limit=" << options_.cpu_slowdown_limit);
  // The cache key carries the machine identity so geometries tuned for one
  // SystemConfig are never replayed on another.
  const auto& config = model_.options().config;
  config_fingerprint_ =
      std::llround(config.topology.hbm_bw.gbps() * 1000.0) * 1'000'000 +
      std::llround(config.cpu.aggregate_local_bw.gbps()) * 1'000 +
      config.cpu.cores;
}

bool BandwidthAwarePolicy::cpu_eligible(const Job& job) {
  // Unified jobs hand the GPU a managed buffer; the host path is not
  // priced for them.
  if (job.unified) return false;
  if (job.bytes() > options_.max_cpu_bytes) return false;
  const SimTime cpu = model_.cpu_service(job.case_id, job.elements);
  const SimTime gpu = model_.gpu_service(job.case_id, job.elements,
                                         geometry(job));
  return static_cast<double>(cpu) <=
         options_.cpu_slowdown_limit * static_cast<double>(gpu);
}

std::optional<std::size_t> BandwidthAwarePolicy::select(
    const AdmissionQueue& queue, Placement device, SimTime /*now*/) {
  if (queue.empty()) return std::nullopt;
  if (device == Placement::kGpu) return std::size_t{0};
  // CPU: first queued job the host can absorb without dragging tail
  // latency (arrival order among eligible jobs).
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (cpu_eligible(queue.at(i))) return i;
  }
  return std::nullopt;
}

core::ReduceTuning BandwidthAwarePolicy::geometry(const Job& job) {
  const telemetry::Sink& sink = model_.options().telemetry;
  const Key key{static_cast<int>(job.case_id), job.elements,
                config_fingerprint_};
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++cache_stats_.hits;
    if (sink.metrics != nullptr) {
      sink.metrics
          ->counter("ghs_tuner_cache_hits_total", {},
                    "Geometry-cache lookups served without re-tuning")
          .inc();
    }
    return it->second;
  }
  ++cache_stats_.misses;
  if (sink.metrics != nullptr) {
    sink.metrics
        ->counter("ghs_tuner_cache_misses_total", {},
                  "Geometry-cache lookups that ran the hill-climb tuner")
        .inc();
  }
  if (sink.flight != nullptr) {
    sink.flight->record(job.arrival, "tuner", "cache_miss",
                        std::string(workload::case_spec(job.case_id).name) +
                            " " + std::to_string(job.elements) +
                            " elements");
  }
  core::TunerOptions tuner;
  tuner.elements = job.elements;
  tuner.iterations = 1;
  tuner.max_probes = options_.max_probes;
  tuner.config = model_.options().config;
  tuner.telemetry = sink;
  const auto result = core::tune_reduction(
      job.case_id, core::paper_best_tuning(job.case_id), tuner);
  cache_[key] = result.best;
  return result.best;
}

std::unique_ptr<SchedulerPolicy> make_policy(const std::string& name,
                                             ServiceModel& model) {
  if (name == "fifo") return std::make_unique<FifoPolicy>();
  if (name == "sjf") return std::make_unique<ShortestJobFirstPolicy>();
  if (name == "bandwidth") return std::make_unique<BandwidthAwarePolicy>(model);
  GHS_REQUIRE(false, "unknown policy '" << name
                                        << "' (fifo|sjf|bandwidth)");
  return nullptr;
}

}  // namespace ghs::serve
