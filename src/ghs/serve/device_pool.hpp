// DevicePool: time-shares the simulated H100 and the Grace CPU across
// admitted jobs. A launch is one kernel (or one host parallel region)
// serving one job or a batch of small same-case jobs — batching amortises
// the per-launch runtime overhead exactly the way fusing tiny reductions
// does on the real machine. Every launch is recorded as a Track::kServer
// span so a served workload renders in the Chrome-trace timeline.
//
// With a fault::Injector attached the pool becomes the failure surface:
// bandwidth brown-outs stretch a launch's service time, device-down
// windows and transient kernel faults turn the completion into a failure,
// and the service above decides what to do about it (retry, shed, trip the
// breaker, fall back to the CPU).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ghs/core/reduce.hpp"
#include "ghs/fault/injector.hpp"
#include "ghs/profile/recorder.hpp"
#include "ghs/serve/job.hpp"
#include "ghs/serve/service_model.hpp"
#include "ghs/sim/simulator.hpp"
#include "ghs/telemetry/flight_recorder.hpp"
#include "ghs/telemetry/registry.hpp"
#include "ghs/trace/tracer.hpp"

namespace ghs::serve {

struct BatchOptions {
  bool enable = true;
  /// Jobs per launch, including the one the policy selected.
  int max_jobs = 8;
  /// Only jobs at or below this element count coalesce.
  std::int64_t small_elements = 1 << 20;
  /// Ceiling on a batch's summed element count.
  std::int64_t max_batch_elements = 1 << 23;
};

struct DevicePoolStats {
  std::int64_t launches = 0;
  /// Launches that carried more than one job.
  std::int64_t multi_job_launches = 0;
  /// Jobs that rode a multi-job launch.
  std::int64_t batched_jobs = 0;
  std::int64_t gpu_jobs = 0;
  std::int64_t cpu_jobs = 0;
  SimTime gpu_busy = 0;
  SimTime cpu_busy = 0;
  /// Launches that failed (injected faults); their jobs are not counted in
  /// gpu_jobs/cpu_jobs — only served work lands there.
  std::int64_t gpu_failed_launches = 0;
  std::int64_t cpu_failed_launches = 0;
  /// Managed-buffer bytes moved by successful unified launches; the
  /// telemetry side of the profile ledger's um.migrate byte conservation.
  Bytes unified_bytes = 0;
};

/// Outcome of one launch: on success `records` carries one JobRecord per
/// job; on failure the jobs come back unserved for the service to retry,
/// shed, or re-place.
struct LaunchResult {
  Placement device = Placement::kGpu;
  bool failed = false;
  std::vector<JobRecord> records;  // success only
  std::vector<Job> jobs;           // failure only
};

class DevicePool {
 public:
  /// With `use_cpu` false the pool is GPU-only (the CPU never reports
  /// idle), which lets single-device policies run on a matching machine.
  /// `injector` (may be null) degrades launches per its FaultPlan.
  /// `instance_labels` namespace the pool's instruments per cluster node;
  /// empty keeps standalone instrument identities unchanged. `recorder`
  /// (may be null) receives per-launch cost attribution under `node`.
  DevicePool(sim::Simulator& sim, ServiceModel& model, bool use_cpu,
             trace::Tracer* tracer, telemetry::Sink sink = {},
             fault::Injector* injector = nullptr,
             const telemetry::Labels& instance_labels = {},
             profile::Recorder* recorder = nullptr, std::int16_t node = 0);

  bool idle(Placement device) const;
  bool use_cpu() const { return use_cpu_; }

  using Completion = std::function<void(const LaunchResult&)>;

  /// Launches `jobs` as one unit on `device` starting at sim.now();
  /// `tuning` is the GPU geometry (ignored for CPU launches). Fires
  /// `on_complete` with the outcome when service (or failure detection)
  /// ends.
  void launch(Placement device, std::vector<Job> jobs,
              const core::ReduceTuning& tuning, Completion on_complete);

  const DevicePoolStats& stats() const { return stats_; }

 private:
  sim::Simulator& sim_;
  ServiceModel& model_;
  bool use_cpu_;
  trace::Tracer* tracer_;
  fault::Injector* injector_;
  profile::Recorder* recorder_;
  std::int16_t node_;
  telemetry::FlightRecorder* flight_ = nullptr;
  telemetry::Counter* m_gpu_launches_ = nullptr;
  telemetry::Counter* m_cpu_launches_ = nullptr;
  telemetry::Counter* m_batched_jobs_ = nullptr;
  /// Non-null only with Sink::timeline (scraped runs).
  telemetry::Counter* m_gpu_busy_ps_ = nullptr;
  telemetry::Counter* m_cpu_busy_ps_ = nullptr;
  bool gpu_busy_ = false;
  bool cpu_busy_ = false;
  std::int64_t next_launch_id_ = 0;
  DevicePoolStats stats_;
};

}  // namespace ghs::serve
