// Byte-stable exporters for a scraped Tsdb: the `--series-out` JSON/CSV
// dump and the Perfetto counter tracks merged into ChromeTraceExporter
// timelines.
//
// Format "ghs-series-v1" (scripts/metrics_diff.py --series reads it):
//
//   {"format":"ghs-series-v1","interval_ps":...,"scrapes":...,
//    "series":{
//      "ghs_serve_queue_depth{node=\"0\"}":{
//        "kind":"gauge","points":N,"dropped":D,"sum":...,"dropped_sum":...,
//        "samples":[[at_ps,value],...],              // raw ring, oldest first
//        "rollups":[{"tier":1,"rows":[[begin_ps,end_ps,count,min,mean,max,
//                                      last],...]},...]},
//      ...}}
//
// Timestamps are integer picoseconds (exact); every double goes through one
// %.6f shape, and series appear in key order, so two same-seed runs write
// byte-identical files. The CSV flattens the same data, raw samples as
// tier 0 rows.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "ghs/timeseries/tsdb.hpp"
#include "ghs/trace/chrome_exporter.hpp"

namespace ghs::timeseries {

/// Scrape metadata echoed into the dump header.
struct SeriesMeta {
  SimTime interval = 0;
  std::int64_t scrapes = 0;
};

void write_series_json(std::ostream& os, const Tsdb& store,
                       const SeriesMeta& meta);
void write_series_csv(std::ostream& os, const Tsdb& store,
                      const SeriesMeta& meta);

/// Builds the Perfetto counter tracks (raw samples only) for the series a
/// timeline reader wants next to the span trees:
///  - ghs_serve_queue_depth*           -> queue depth per instance
///  - ghs_serve_device_busy_ps_total*  -> utilization (busy delta/interval)
///  - ghs_um_resident_bytes*           -> HBM/LPDDR residency in MiB
///  - ghs_serve_breaker_state*         -> breaker state (0 closed .. 2 open)
/// Track order follows store key order, so the merged trace file is as
/// deterministic as the spans it joins.
std::vector<trace::CounterTrack> counter_tracks(const Tsdb& store,
                                                SimTime interval);

}  // namespace ghs::timeseries
