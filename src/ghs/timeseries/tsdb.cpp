#include "ghs/timeseries/tsdb.hpp"

#include <algorithm>

#include "ghs/util/error.hpp"

namespace ghs::timeseries {

void Rollup::fold(const Sample& sample) {
  if (count == 0) {
    begin = sample.at;
    min = sample.value;
    max = sample.value;
  } else {
    min = std::min(min, sample.value);
    max = std::max(max, sample.value);
  }
  end = sample.at;
  ++count;
  sum += sample.value;
  last = sample.value;
}

void Rollup::merge(const Rollup& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  end = other.end;
  count += other.count;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  sum += other.sum;
  last = other.last;
}

const char* series_kind_name(SeriesKind kind) {
  switch (kind) {
    case SeriesKind::kGauge:
      return "gauge";
    case SeriesKind::kCounterDelta:
      return "counter_delta";
    case SeriesKind::kQuantile:
      return "quantile";
  }
  return "unknown";
}

Series::Series(std::string key, SeriesKind kind, const TsdbOptions& options)
    : key_(std::move(key)), kind_(kind), options_(options) {
  tiers_.resize(options.tiers);
}

void Series::append(SimTime at, double value) {
  GHS_REQUIRE(at >= last_at_,
              "series " << key_ << ": non-monotone sample at " << at);
  last_at_ = at;
  last_value_ = value;
  ++points_;
  total_sum_ += value;
  raw_.push_back(Sample{at, value});
  if (raw_.size() > options_.raw_capacity) fold_raw();
}

double Series::last_value() const { return points_ > 0 ? last_value_ : 0.0; }

void Series::fold_raw() {
  const std::size_t take = std::min(std::max<std::size_t>(options_.fold, 1),
                                    raw_.size());
  Rollup rollup;
  for (std::size_t i = 0; i < take; ++i) {
    rollup.fold(raw_.front());
    raw_.pop_front();
  }
  push_rollup(0, rollup);
}

void Series::push_rollup(std::size_t tier, Rollup rollup) {
  if (tier >= tiers_.size()) {
    // Past the last tier: the data leaves retention, but its accounting
    // does not — dropped_sum keeps the conservation invariant checkable.
    dropped_points_ += rollup.count;
    dropped_sum_ += rollup.sum;
    return;
  }
  auto& ring = tiers_[tier];
  ring.push_back(rollup);
  if (ring.size() > options_.tier_capacity) {
    const std::size_t take =
        std::min(std::max<std::size_t>(options_.fold, 1), ring.size());
    Rollup merged;
    for (std::size_t i = 0; i < take; ++i) {
      merged.merge(ring.front());
      ring.pop_front();
    }
    push_rollup(tier + 1, merged);
  }
}

Tsdb::Tsdb(TsdbOptions options) : options_(options) {
  GHS_REQUIRE(options_.raw_capacity > 0, "raw_capacity must be positive");
  GHS_REQUIRE(options_.fold > 0, "fold must be positive");
  GHS_REQUIRE(options_.tiers == 0 || options_.tier_capacity > 0,
              "tier_capacity must be positive with tiers configured");
}

Series& Tsdb::series(const std::string& key, SeriesKind kind) {
  auto it = series_.find(key);
  if (it == series_.end()) {
    it = series_.emplace(key, Series(key, kind, options_)).first;
  } else {
    GHS_REQUIRE(it->second.kind() == kind,
                "series " << key << " is " << series_kind_name(
                    it->second.kind()) << ", asked for "
                          << series_kind_name(kind));
  }
  return it->second;
}

const Series* Tsdb::find(const std::string& key) const {
  const auto it = series_.find(key);
  return it == series_.end() ? nullptr : &it->second;
}

std::int64_t Tsdb::total_points() const {
  std::int64_t total = 0;
  for (const auto& [key, series] : series_) total += series.points();
  return total;
}

std::int64_t Tsdb::total_dropped() const {
  std::int64_t total = 0;
  for (const auto& [key, series] : series_) total += series.dropped();
  return total;
}

void Tsdb::visit(const std::function<void(const Series&)>& fn) const {
  for (const auto& [key, series] : series_) fn(series);
}

}  // namespace ghs::timeseries
