#include "ghs/timeseries/scraper.hpp"

#include <cstdio>

#include "ghs/stats/summary.hpp"
#include "ghs/util/error.hpp"

namespace ghs::timeseries {

Scraper::Scraper(sim::Simulator& sim, const telemetry::Registry& registry,
                 Tsdb& store, ScraperOptions options)
    : sim_(sim), registry_(registry), store_(store),
      options_(std::move(options)) {
  GHS_REQUIRE(options_.interval > 0, "scrape interval must be positive");
  for (const double q : options_.quantiles) {
    GHS_REQUIRE(q > 0.0 && q < 1.0, "scrape quantile " << q << " not in (0,1)");
  }
}

std::string Scraper::quantile_suffix(double q) {
  // 0.5 -> ":p50", 0.999 -> ":p99.9"; %g keeps the suffix free of
  // trailing zeros so keys are stable however the quantile is spelled.
  char buf[32];
  std::snprintf(buf, sizeof(buf), ":p%g", q * 100.0);
  return buf;
}

void Scraper::start() {
  GHS_REQUIRE(!started_, "scraper started twice");
  started_ = true;
  // Cursor baseline without emission: instruments that already carry
  // totals from a previous run on the same registry contribute only their
  // future increments.
  visit_registry(/*emit=*/false);
  last_sample_at_ = sim_.now();
  sim_.schedule_after(options_.interval, [this] { on_tick(); });
}

void Scraper::on_tick() {
  sample();
  ++scrapes_;
  // An empty queue here means the workload drained inside this interval;
  // this tick took the trailing sample and the chain ends, so run()
  // terminates. Same-timestamp events dispatched after this one are
  // covered by finish().
  if (!sim_.idle()) {
    sim_.schedule_after(options_.interval, [this] { on_tick(); });
  }
}

void Scraper::finish() {
  if (!started_) return;
  // Unconditional: drain_batch() counts a whole batch before running it,
  // so "no events since the last tick" cannot distinguish a clean stop
  // from same-timestamp handlers dispatched after the scrape. One extra
  // sample is deterministic either way.
  sample();
}

void Scraper::sample() {
  visit_registry(/*emit=*/true);
  last_sample_at_ = sim_.now();
}

void Scraper::visit_registry(bool emit) {
  const SimTime at = sim_.now();
  registry_.visit([&](const telemetry::Registry::View& view) {
    if (options_.skip_volatile && view.volatile_instrument) return;
    const std::string key = view.name + view.labels;
    switch (view.kind) {
      case telemetry::Kind::kCounter: {
        const std::int64_t total = view.counter->value();
        auto [it, inserted] = counter_cursor_.try_emplace(key, 0);
        const std::int64_t delta = total - it->second;
        it->second = total;
        if (emit) {
          store_.series(key, SeriesKind::kCounterDelta)
              .append(at, static_cast<double>(delta));
        }
        break;
      }
      case telemetry::Kind::kGauge: {
        if (emit) {
          store_.series(key, SeriesKind::kGauge)
              .append(at, view.gauge->value());
        }
        break;
      }
      case telemetry::Kind::kHistogram: {
        const auto& hist = *view.histogram;
        std::vector<std::int64_t> cumulative = hist.cumulative_counts();
        const std::int64_t count = hist.count();
        const double sum = hist.sum();
        auto& cursor = hist_cursor_[key];
        if (cursor.cumulative.size() != cumulative.size()) {
          cursor.cumulative.assign(cumulative.size(), 0);
        }
        const std::int64_t count_delta = count - cursor.count;
        if (emit) {
          store_.series(key + ":count", SeriesKind::kCounterDelta)
              .append(at, static_cast<double>(count_delta));
          store_.series(key + ":sum", SeriesKind::kCounterDelta)
              .append(at, sum - cursor.sum);
          if (count_delta > 0) {
            // Quantiles of THIS interval's observations: the bucket deltas
            // form a windowed histogram that stats::histogram_quantile
            // interpolates exactly like the end-of-run exporters do.
            std::vector<std::int64_t> delta(cumulative.size());
            for (std::size_t i = 0; i < cumulative.size(); ++i) {
              delta[i] = cumulative[i] - cursor.cumulative[i];
            }
            for (const double q : options_.quantiles) {
              store_.series(key + quantile_suffix(q), SeriesKind::kQuantile)
                  .append(at,
                          stats::histogram_quantile(hist.bounds(), delta, q));
            }
          }
        }
        cursor.cumulative = std::move(cumulative);
        cursor.count = count;
        cursor.sum = sum;
        break;
      }
    }
  });
}

}  // namespace ghs::timeseries
