// Windowed queries over scraped series, plus the SlidingWindow primitive
// the slo::Monitor burn-rate sweep runs on.
//
// SlidingWindow replaces ad-hoc two-pointer bookkeeping: push samples in
// time order and the window keeps exactly the entries with
// at > now - window, maintaining a running sum and count. For the 0/1
// samples the SLO monitor feeds it the running sum is exact (small
// integers in doubles), so the refactored monitor reproduces its previous
// reports byte for byte.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "ghs/timeseries/tsdb.hpp"

namespace ghs::timeseries {

/// A time-sliding window over a stream of (at, value) samples pushed in
/// non-decreasing time order. After push(at, v) the window holds every
/// sample with timestamp in (at - window, at].
class SlidingWindow {
 public:
  explicit SlidingWindow(SimTime window);

  void push(SimTime at, double value);

  SimTime window() const { return window_; }
  std::int64_t count() const {
    return static_cast<std::int64_t>(samples_.size());
  }
  /// Running sum of the windowed values. Exact for integer-valued samples
  /// (the SLO monitor's 0/1 stream); subject to the usual floating-point
  /// cancellation otherwise.
  double sum() const { return sum_; }
  double mean() const {
    return samples_.empty() ? 0.0
                            : sum_ / static_cast<double>(samples_.size());
  }

 private:
  SimTime window_;
  std::deque<Sample> samples_;
  double sum_ = 0.0;
};

/// Per-second rate of a counter-delta series over (at - window, at]:
/// raw samples inside the window plus rollups wholly contained in it
/// (partially overlapping rollups are excluded — by construction they are
/// older than every raw sample, so this only under-counts when the window
/// reaches past raw retention). Window is in picoseconds like every
/// SimTime.
double rate_per_sec(const Series& series, SimTime window, SimTime at);

/// Quantile (q in [0,1]) of the raw samples in (at - window, at]; nullopt
/// when the window holds no raw samples. Rollups cannot contribute — a
/// min/mean/max summary has no distribution to interpolate.
std::optional<double> quantile_over_window(const Series& series, double q,
                                           SimTime window, SimTime at);

}  // namespace ghs::timeseries
