// In-memory time-series store for scraped telemetry: one ring-buffered
// Series per instrument, with tiered downsampling so memory stays bounded
// no matter how long a simulation runs.
//
// Retention works like a miniature TSDB: the newest samples sit in a raw
// ring; when the ring is full, the oldest `fold` samples collapse into one
// min/mean/max/last rollup pushed to tier 1; full tiers fold into the next
// tier the same way; rollups evicted past the last tier are counted (and
// their sums preserved) in per-series drop counters, so `sum()` over the
// retained data plus `dropped_sum()` always equals the sum of everything
// ever appended — the invariant the tests pin.
//
// Everything is deterministic: series are keyed by the instrument's
// rendered `name{labels}` string (plus a derived suffix like ":p95"),
// stored in a sorted map, and visited in key order, so exports are
// byte-stable across same-seed runs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ghs/util/units.hpp"

namespace ghs::timeseries {

/// One scraped point. For counter series the value is the delta since the
/// previous scrape, not the running total.
struct Sample {
  SimTime at = 0;
  double value = 0.0;
};

/// A downsampled run of consecutive samples: [begin, end] are the first
/// and last folded timestamps; min/mean/max/last summarise the values;
/// count and sum are exact, so counter-delta totals survive folding.
struct Rollup {
  SimTime begin = 0;
  SimTime end = 0;
  std::int64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double last = 0.0;

  double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  void fold(const Sample& sample);
  void merge(const Rollup& other);
};

/// What a series' values mean; the scraper sets this and exporters echo it.
enum class SeriesKind : std::uint8_t {
  kGauge,         // point-in-time value per scrape
  kCounterDelta,  // increase since the previous scrape
  kQuantile,      // windowed quantile derived from histogram bucket deltas
};

const char* series_kind_name(SeriesKind kind);

struct TsdbOptions {
  /// Raw samples kept per series before folding begins.
  std::size_t raw_capacity = 512;
  /// Oldest points folded into one rollup when a ring overflows.
  std::size_t fold = 8;
  /// Rollups kept per downsampling tier.
  std::size_t tier_capacity = 256;
  /// Downsampling tiers behind the raw ring; rollups evicted past the last
  /// tier are dropped (and counted). 0 drops straight from the raw ring.
  std::size_t tiers = 2;
};

class Series {
 public:
  Series(std::string key, SeriesKind kind, const TsdbOptions& options);

  /// Appends one sample; `at` must be monotonically non-decreasing.
  void append(SimTime at, double value);

  const std::string& key() const { return key_; }
  SeriesKind kind() const { return kind_; }

  /// Total samples ever appended (retained + folded + dropped).
  std::int64_t points() const { return points_; }
  /// Sum of every value ever appended.
  double total_sum() const { return total_sum_; }
  /// Raw samples dropped past the last rollup tier, and their value sum.
  std::int64_t dropped() const { return dropped_points_; }
  double dropped_sum() const { return dropped_sum_; }

  /// Newest raw samples, oldest first.
  const std::deque<Sample>& raw() const { return raw_; }
  /// Rollup tiers, oldest first within each; tiers_[0] is the finest.
  const std::vector<std::deque<Rollup>>& tiers() const { return tiers_; }

  /// Last appended value (0 when empty) — the "current" reading.
  double last_value() const;
  SimTime last_at() const { return last_at_; }

 private:
  void fold_raw();
  void push_rollup(std::size_t tier, Rollup rollup);

  std::string key_;
  SeriesKind kind_;
  TsdbOptions options_;  // by value, so a moved Tsdb never dangles
  std::deque<Sample> raw_;
  std::vector<std::deque<Rollup>> tiers_;
  std::int64_t points_ = 0;
  double total_sum_ = 0.0;
  std::int64_t dropped_points_ = 0;
  double dropped_sum_ = 0.0;
  SimTime last_at_ = -1;
  double last_value_ = 0.0;
};

class Tsdb {
 public:
  explicit Tsdb(TsdbOptions options = {});

  /// Returns the series for `key`, creating it on first use. Re-asking
  /// with a different kind is an error (one meaning per key).
  Series& series(const std::string& key, SeriesKind kind);

  /// Lookup without creation; null when the key was never written.
  const Series* find(const std::string& key) const;

  std::size_t size() const { return series_.size(); }
  const TsdbOptions& options() const { return options_; }

  /// Store-wide accounting across every series.
  std::int64_t total_points() const;
  std::int64_t total_dropped() const;

  /// Visits every series in key order (the export order).
  void visit(const std::function<void(const Series&)>& fn) const;

 private:
  TsdbOptions options_;
  std::map<std::string, Series> series_;
};

}  // namespace ghs::timeseries
