#include "ghs/timeseries/query.hpp"

#include <vector>

#include "ghs/stats/summary.hpp"
#include "ghs/util/error.hpp"

namespace ghs::timeseries {

SlidingWindow::SlidingWindow(SimTime window) : window_(window) {
  GHS_REQUIRE(window > 0, "sliding window must be positive");
}

void SlidingWindow::push(SimTime at, double value) {
  GHS_REQUIRE(samples_.empty() || at >= samples_.back().at,
              "sliding window pushed out of order at " << at);
  samples_.push_back(Sample{at, value});
  sum_ += value;
  while (samples_.front().at <= at - window_) {
    sum_ -= samples_.front().value;
    samples_.pop_front();
  }
}

double rate_per_sec(const Series& series, SimTime window, SimTime at) {
  GHS_REQUIRE(window > 0, "rate window must be positive");
  const SimTime lo = at - window;
  double total = 0.0;
  for (const auto& tier : series.tiers()) {
    for (const Rollup& rollup : tier) {
      if (rollup.begin > lo && rollup.end <= at) total += rollup.sum;
    }
  }
  for (const Sample& sample : series.raw()) {
    if (sample.at > lo && sample.at <= at) total += sample.value;
  }
  const double seconds = static_cast<double>(window) / 1e12;
  return total / seconds;
}

std::optional<double> quantile_over_window(const Series& series, double q,
                                           SimTime window, SimTime at) {
  GHS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile " << q << " not in [0,1]");
  GHS_REQUIRE(window > 0, "quantile window must be positive");
  const SimTime lo = at - window;
  std::vector<double> values;
  for (const Sample& sample : series.raw()) {
    if (sample.at > lo && sample.at <= at) values.push_back(sample.value);
  }
  if (values.empty()) return std::nullopt;
  return stats::percentile(std::move(values), q);
}

}  // namespace ghs::timeseries
