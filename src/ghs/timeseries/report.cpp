#include "ghs/timeseries/report.hpp"

#include <algorithm>
#include <cstdio>

#include "ghs/stats/summary.hpp"

namespace ghs::timeseries {

namespace {

std::string fixed6(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  return buf;
}

double to_ms(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

void write_escaped_json(std::ostream& os, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

bool starts_with(const std::string& text, const char* prefix) {
  return text.rfind(prefix, 0) == 0;
}

/// Human-readable series tag: label block without braces/quotes, or the
/// bare name when unlabelled.
std::string display_name(const std::string& key) {
  const auto brace = key.find('{');
  if (brace == std::string::npos) return key;
  std::string out;
  for (std::size_t i = brace + 1; i + 1 < key.size(); ++i) {
    if (key[i] != '"') out.push_back(key[i]);
  }
  return out;
}

TimelineSeriesStats stats_of(const Series& series, double scale) {
  TimelineSeriesStats out;
  out.series = series.key();
  // Retained data only: dropped rollups have no timestamps left to place a
  // peak at, and their sums are a vanishing share of long runs.
  std::int64_t count = 0;
  double sum = 0.0;
  bool have_peak = false;
  const auto consider_peak = [&](double value, SimTime at) {
    if (!have_peak || value > out.peak) {
      out.peak = value;
      out.peak_at = at;
      have_peak = true;
    }
  };
  std::vector<double> raw_values;
  raw_values.reserve(series.raw().size());
  for (const auto& tier : series.tiers()) {
    for (const Rollup& rollup : tier) {
      count += rollup.count;
      sum += rollup.sum * scale;
      consider_peak(rollup.max * scale, rollup.end);
    }
  }
  for (const Sample& sample : series.raw()) {
    ++count;
    const double value = sample.value * scale;
    sum += value;
    raw_values.push_back(value);
    consider_peak(value, sample.at);
  }
  out.samples = count;
  out.mean = count > 0 ? sum / static_cast<double>(count) : 0.0;
  out.p95 = raw_values.empty() ? 0.0
                               : stats::percentile(std::move(raw_values), 0.95);
  return out;
}

void find_saturation(const Series& series, double scale, double threshold,
                     const TimelineOptions& options,
                     std::vector<SaturationWindow>& out) {
  SaturationWindow window;
  window.series = series.key();
  std::int64_t run = 0;
  const auto flush = [&]() {
    if (run >= options.min_points) out.push_back(window);
    run = 0;
    window.peak = 0.0;
  };
  for (const Sample& sample : series.raw()) {
    const double value = sample.value * scale;
    if (value >= threshold) {
      if (run == 0) window.begin = sample.at;
      window.end = sample.at;
      window.peak = std::max(window.peak, value);
      window.points = ++run;
    } else {
      flush();
    }
  }
  flush();
}

void write_stats_json(std::ostream& os,
                      const std::vector<TimelineSeriesStats>& stats) {
  os << "[";
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const auto& s = stats[i];
    if (i > 0) os << ",";
    os << "{\"series\":\"";
    write_escaped_json(os, s.series);
    os << "\",\"samples\":" << s.samples << ",\"mean\":" << fixed6(s.mean)
       << ",\"p95\":" << fixed6(s.p95) << ",\"peak\":" << fixed6(s.peak)
       << ",\"peak_at_ms\":" << fixed6(to_ms(s.peak_at)) << "}";
  }
  os << "]";
}

}  // namespace

TimelineReport build_timeline(const Tsdb& store,
                              const TimelineOptions& options) {
  TimelineReport report;
  report.interval = options.interval;
  const double util_scale =
      options.interval > 0 ? 1.0 / static_cast<double>(options.interval) : 1.0;
  const double queue_limit =
      options.queue_threshold * static_cast<double>(options.queue_capacity);
  store.visit([&](const Series& series) {
    if (starts_with(series.key(), "ghs_serve_device_busy_ps_total")) {
      report.utilization.push_back(stats_of(series, util_scale));
      find_saturation(series, util_scale, options.utilization_threshold,
                      options, report.saturation);
    } else if (starts_with(series.key(),
                           "ghs_profile_tenant_busy_ps_total")) {
      // Profiler attribution series: busy-ps deltas per tenant, same
      // utilization scaling as the device series (a tenant saturating a
      // device alone reads 1.0). No saturation windows — a hot tenant is
      // not an incident by itself.
      report.utilization.push_back(stats_of(series, util_scale));
    } else if (starts_with(series.key(), "ghs_serve_queue_depth")) {
      report.queue_depth.push_back(stats_of(series, 1.0));
      find_saturation(series, 1.0, queue_limit, options, report.saturation);
    }
  });
  // Windows currently group by series (store order); present them the way
  // an operator reads an incident: in time order.
  std::stable_sort(report.saturation.begin(), report.saturation.end(),
                   [](const SaturationWindow& a, const SaturationWindow& b) {
                     return a.begin < b.begin;
                   });
  return report;
}

void TimelineReport::write_json(std::ostream& os) const {
  os << "{\"interval_us\":"
     << fixed6(static_cast<double>(interval) /
               static_cast<double>(kMicrosecond))
     << ",\"utilization\":";
  write_stats_json(os, utilization);
  os << ",\"queue_depth\":";
  write_stats_json(os, queue_depth);
  os << ",\"saturation\":[";
  for (std::size_t i = 0; i < saturation.size(); ++i) {
    const auto& w = saturation[i];
    if (i > 0) os << ",";
    os << "{\"series\":\"";
    write_escaped_json(os, w.series);
    os << "\",\"begin_ms\":" << fixed6(to_ms(w.begin))
       << ",\"end_ms\":" << fixed6(to_ms(w.end)) << ",\"points\":" << w.points
       << ",\"peak\":" << fixed6(w.peak) << "}";
  }
  os << "]}";
}

void TimelineReport::write_table(std::ostream& os) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "timeline (%.0fus scrapes): %zu utilization, %zu queue "
                "series, %zu saturation window(s)\n",
                static_cast<double>(interval) /
                    static_cast<double>(kMicrosecond),
                utilization.size(), queue_depth.size(), saturation.size());
  os << buf;
  const auto print_stats = [&](const char* what,
                               const std::vector<TimelineSeriesStats>& rows) {
    for (const auto& s : rows) {
      std::snprintf(buf, sizeof(buf),
                    "  %-6s %-28s mean %8.3f  p95 %8.3f  peak %8.3f @%.3fms\n",
                    what, display_name(s.series).c_str(), s.mean, s.p95,
                    s.peak, to_ms(s.peak_at));
      os << buf;
    }
  };
  print_stats("util", utilization);
  print_stats("queue", queue_depth);
  for (const auto& w : saturation) {
    std::snprintf(buf, sizeof(buf),
                  "  SATURATED %-28s [%.3fms, %.3fms] %lld scrape(s) peak "
                  "%.3f\n",
                  display_name(w.series).c_str(), to_ms(w.begin), to_ms(w.end),
                  static_cast<long long>(w.points), w.peak);
    os << buf;
  }
}

}  // namespace ghs::timeseries
