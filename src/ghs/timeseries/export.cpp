#include "ghs/timeseries/export.hpp"

#include <cstdio>
#include <string>

namespace ghs::timeseries {

namespace {

// One snprintf shape for every double, matching the telemetry exporters.
std::string fixed6(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  return buf;
}

void write_escaped_json(std::ostream& os, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

void write_rollup_row(std::ostream& os, const Rollup& rollup) {
  os << "[" << rollup.begin << "," << rollup.end << "," << rollup.count
     << "," << fixed6(rollup.min) << "," << fixed6(rollup.mean()) << ","
     << fixed6(rollup.max) << "," << fixed6(rollup.last) << "]";
}

/// Strips the metric name, leaving a short human label: the label block
/// without braces/quotes ("device=gpu,node=3"), or "" when unlabelled.
std::string short_labels(const std::string& key) {
  const auto brace = key.find('{');
  if (brace == std::string::npos) return {};
  std::string out;
  for (std::size_t i = brace + 1; i + 1 < key.size(); ++i) {
    if (key[i] != '"') out.push_back(key[i]);
  }
  return out;
}

bool starts_with(const std::string& text, const char* prefix) {
  return text.rfind(prefix, 0) == 0;
}

}  // namespace

void write_series_json(std::ostream& os, const Tsdb& store,
                       const SeriesMeta& meta) {
  os << "{\"format\":\"ghs-series-v1\",\"interval_ps\":" << meta.interval
     << ",\"scrapes\":" << meta.scrapes
     << ",\"series_count\":" << store.size()
     << ",\"points\":" << store.total_points()
     << ",\"dropped\":" << store.total_dropped() << ",\"series\":{";
  bool first = true;
  store.visit([&](const Series& series) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    write_escaped_json(os, series.key());
    os << "\":{\"kind\":\"" << series_kind_name(series.kind())
       << "\",\"points\":" << series.points()
       << ",\"dropped\":" << series.dropped()
       << ",\"sum\":" << fixed6(series.total_sum())
       << ",\"dropped_sum\":" << fixed6(series.dropped_sum())
       << ",\"samples\":[";
    bool first_sample = true;
    for (const Sample& sample : series.raw()) {
      if (!first_sample) os << ",";
      first_sample = false;
      os << "[" << sample.at << "," << fixed6(sample.value) << "]";
    }
    os << "],\"rollups\":[";
    for (std::size_t tier = 0; tier < series.tiers().size(); ++tier) {
      if (tier > 0) os << ",";
      os << "{\"tier\":" << tier + 1 << ",\"rows\":[";
      bool first_row = true;
      for (const Rollup& rollup : series.tiers()[tier]) {
        if (!first_row) os << ",";
        first_row = false;
        write_rollup_row(os, rollup);
      }
      os << "]}";
    }
    os << "]}";
  });
  os << "}}";
}

void write_series_csv(std::ostream& os, const Tsdb& store,
                      const SeriesMeta& meta) {
  os << "# ghs-series-v1 interval_ps=" << meta.interval
     << " scrapes=" << meta.scrapes << "\n";
  os << "series,kind,tier,begin_ps,end_ps,count,min,mean,max,last\n";
  store.visit([&](const Series& series) {
    // CSV field quoting: keys carry '{', '"' and ',' in label blocks.
    std::string quoted = "\"";
    for (char c : series.key()) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += "\"";
    const char* kind = series_kind_name(series.kind());
    for (std::size_t tier = 0; tier < series.tiers().size(); ++tier) {
      // Oldest data first: higher tiers hold older rollups.
      const std::size_t t = series.tiers().size() - 1 - tier;
      for (const Rollup& rollup : series.tiers()[t]) {
        os << quoted << "," << kind << "," << t + 1 << "," << rollup.begin
           << "," << rollup.end << "," << rollup.count << ","
           << fixed6(rollup.min) << "," << fixed6(rollup.mean()) << ","
           << fixed6(rollup.max) << "," << fixed6(rollup.last) << "\n";
      }
    }
    for (const Sample& sample : series.raw()) {
      os << quoted << "," << kind << ",0," << sample.at << "," << sample.at
         << ",1," << fixed6(sample.value) << "," << fixed6(sample.value)
         << "," << fixed6(sample.value) << "," << fixed6(sample.value)
         << "\n";
    }
  });
}

std::vector<trace::CounterTrack> counter_tracks(const Tsdb& store,
                                                SimTime interval) {
  std::vector<trace::CounterTrack> tracks;
  store.visit([&](const Series& series) {
    const std::string& key = series.key();
    std::string name;
    double scale = 1.0;
    if (starts_with(key, "ghs_serve_queue_depth")) {
      name = "queue depth";
    } else if (starts_with(key, "ghs_serve_device_busy_ps_total")) {
      // Busy picoseconds per scrape over the interval = utilization. A
      // launch's whole service time is credited at launch, so a single
      // tick can exceed 1.0; windows average out (docs/OBSERVABILITY.md).
      name = "utilization";
      scale = interval > 0 ? 1.0 / static_cast<double>(interval) : 1.0;
    } else if (starts_with(key, "ghs_um_resident_bytes")) {
      name = "um resident MiB";
      scale = 1.0 / (1024.0 * 1024.0);
    } else if (starts_with(key, "ghs_serve_breaker_state")) {
      name = "breaker state";
    } else if (starts_with(key, "ghs_membership_node_state")) {
      // 0 alive, 1 suspect, 2 dead, 3 draining, 4 left — a step function
      // that makes crash/detect/rejoin windows visible on the timeline.
      name = "membership state";
    } else {
      return;
    }
    const std::string labels = short_labels(key);
    if (!labels.empty()) name += " " + labels;
    trace::CounterTrack track;
    track.name = std::move(name);
    track.samples.reserve(series.raw().size());
    for (const Sample& sample : series.raw()) {
      track.samples.push_back(
          trace::CounterSample{sample.at, sample.value * scale});
    }
    if (!track.samples.empty()) tracks.push_back(std::move(track));
  });
  return tracks;
}

}  // namespace ghs::timeseries
