// Timeline report: turns a scraped Tsdb into the time-resolved summary
// the loadgens append next to their end-of-run aggregates — per-instance
// utilization and queue-depth statistics over time, plus "saturation
// windows": maximal runs of consecutive scrapes where an instance sat at
// (or beyond) its limit. A fleet whose aggregate p99 looks healthy can
// still show a node pinned for half a millisecond here; that transient is
// exactly what the end-of-run report hides.
//
// Per-node grouping falls out of the series keys: cluster instruments
// carry node="i" labels, so every node contributes its own series and the
// report lists them separately.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "ghs/timeseries/tsdb.hpp"

namespace ghs::timeseries {

struct TimelineOptions {
  /// The scrape interval (converts busy-ps deltas to utilization).
  SimTime interval = kMillisecond;
  /// A utilization sample at or above this is saturated. Busy time is
  /// credited at launch, so values can exceed 1.0.
  double utilization_threshold = 0.95;
  /// A queue-depth sample at or above this fraction of queue_capacity is
  /// saturated.
  double queue_threshold = 0.75;
  std::size_t queue_capacity = 64;
  /// Consecutive saturated scrapes needed before a window is reported.
  std::int64_t min_points = 2;
};

/// Over-time statistics for one series (already scaled: utilization in
/// [0, ~], queue depth in jobs).
struct TimelineSeriesStats {
  std::string series;  // full store key
  std::int64_t samples = 0;
  double mean = 0.0;
  /// p95 of the raw (retained) samples; rollup-folded history contributes
  /// to mean/peak but has no distribution left to take a quantile of.
  double p95 = 0.0;
  double peak = 0.0;
  SimTime peak_at = 0;
};

/// One maximal run of >= min_points consecutive saturated scrapes.
struct SaturationWindow {
  std::string series;
  SimTime begin = 0;  // first saturated scrape instant
  SimTime end = 0;    // last saturated scrape instant
  std::int64_t points = 0;
  double peak = 0.0;
};

struct TimelineReport {
  SimTime interval = 0;
  std::vector<TimelineSeriesStats> utilization;
  std::vector<TimelineSeriesStats> queue_depth;
  std::vector<SaturationWindow> saturation;

  /// One JSON object, stable key order, fixed formatting.
  void write_json(std::ostream& os) const;
  /// Human summary (the loadgens print it to stderr).
  void write_table(std::ostream& os) const;
};

TimelineReport build_timeline(const Tsdb& store,
                              const TimelineOptions& options);

}  // namespace ghs::timeseries
