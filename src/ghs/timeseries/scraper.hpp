// Sim-time metrics scraper: samples a telemetry::Registry into a Tsdb on a
// fixed simulated-time interval, riding the event queue as a chain of
// self-rescheduling events.
//
// Determinism and non-interference are the contract:
//  - Scrape events obey the simulator's (time, seq) order like any other
//    event, so inserting them never reorders job events scheduled at the
//    same timestamp (the event-queue FIFO contract; pinned by the
//    dispatch-order equivalence test).
//  - The scraper only *reads* instruments; it registers nothing and
//    mutates nothing outside its own store, so reports, snapshots, and
//    traces from a scraped run match an unscraped run byte for byte.
//  - Counters and histograms are sampled as deltas against a per-scraper
//    cursor. start() baselines the cursors at the current totals, so a
//    registry shared across several runs (serve_loadgen's per-policy loop)
//    attributes only this run's activity to this run's series.
//
// The chain stops itself: when a tick finds the event queue empty, the
// workload has drained and the tick's sample is the trailing one. A
// handler that runs *after* the scrape in the same drain_batch can still
// schedule future work; finish() (called after sim.run() returns) takes a
// final sample to cover that tail.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ghs/sim/simulator.hpp"
#include "ghs/telemetry/registry.hpp"
#include "ghs/timeseries/tsdb.hpp"

namespace ghs::timeseries {

struct ScraperOptions {
  /// Simulated time between scrapes.
  SimTime interval = kMillisecond;
  /// Windowed quantiles derived per histogram from the bucket deltas of
  /// each scrape interval (series key gets a ":p<q*100>" suffix). Only
  /// intervals that saw observations emit quantile samples.
  std::vector<double> quantiles = {0.5, 0.95, 0.99};
  /// Skip volatile instruments (wall-clock gauges), keeping same-seed
  /// series files byte-identical.
  bool skip_volatile = true;
};

class Scraper {
 public:
  /// The registry, store, and simulator must outlive the scraper.
  Scraper(sim::Simulator& sim, const telemetry::Registry& registry,
          Tsdb& store, ScraperOptions options = {});

  /// Baselines counter/histogram cursors at the current totals and
  /// schedules the first scrape at sim.now() + interval.
  void start();

  /// Takes one final sample at sim.now(), covering handlers that ran in
  /// the last batch after the trailing tick. Call after the sim drains.
  void finish();

  /// Samples every instrument right now (also used by the tick chain).
  void sample();

  std::int64_t scrapes() const { return scrapes_; }
  SimTime interval() const { return options_.interval; }
  SimTime last_sample_at() const { return last_sample_at_; }

 private:
  void on_tick();
  void visit_registry(bool emit);
  static std::string quantile_suffix(double q);

  struct HistCursor {
    std::vector<std::int64_t> cumulative;
    std::int64_t count = 0;
    double sum = 0.0;
  };

  sim::Simulator& sim_;
  const telemetry::Registry& registry_;
  Tsdb& store_;
  ScraperOptions options_;
  std::map<std::string, std::int64_t> counter_cursor_;
  std::map<std::string, HistCursor> hist_cursor_;
  std::int64_t scrapes_ = 0;
  SimTime last_sample_at_ = -1;
  bool started_ = false;
};

}  // namespace ghs::timeseries
