#include "ghs/mem/transfer.hpp"

#include <utility>

#include "ghs/util/error.hpp"

namespace ghs::mem {

void TransferEngine::copy(Bytes bytes, RegionId from, RegionId to,
                          std::function<void()> on_complete,
                          std::string label) {
  start(bytes, topology_.copy_path(from, to), std::move(on_complete),
        std::move(label));
}

void TransferEngine::migrate(Bytes bytes, RegionId from, RegionId to,
                             std::function<void()> on_complete,
                             std::string label) {
  start(bytes, topology_.migration_path(from, to), std::move(on_complete),
        std::move(label));
}

void TransferEngine::start(Bytes bytes, std::vector<sim::ResourceId> path,
                           std::function<void()> on_complete,
                           std::string label) {
  GHS_REQUIRE(bytes >= 0, "bytes=" << bytes);
  if (bytes == 0) {
    if (on_complete) on_complete();
    return;
  }
  ++stats_.copies;
  stats_.bytes += bytes;
  sim::FlowSpec spec;
  spec.bytes = static_cast<double>(bytes);
  spec.resources = std::move(path);
  spec.on_complete = std::move(on_complete);
  spec.label = std::move(label);
  topology_.network().start_flow(std::move(spec));
}

}  // namespace ghs::mem
