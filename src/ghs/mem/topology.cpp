#include "ghs/mem/topology.hpp"

#include "ghs/util/error.hpp"

namespace ghs::mem {

const char* region_name(RegionId region) {
  switch (region) {
    case RegionId::kHbm:
      return "HBM3";
    case RegionId::kLpddr:
      return "LPDDR5X";
  }
  return "?";
}

Topology::Topology(sim::Simulator& sim, const TopologyConfig& config)
    : config_(config),
      sim_(sim),
      network_(sim),
      hbm_(network_.add_resource("HBM3", config.hbm_bw)),
      lpddr_(network_.add_resource("LPDDR5X", config.lpddr_bw)),
      c2c_to_gpu_(
          network_.add_resource("C2C->GPU", config.c2c_per_direction_bw)),
      c2c_to_cpu_(
          network_.add_resource("C2C->CPU", config.c2c_per_direction_bw)),
      migration_engine_(network_.add_resource("UM-migration",
                                              config.migration_engine_bw)) {}

std::vector<sim::ResourceId> Topology::gpu_read_path(RegionId where) const {
  if (where == RegionId::kHbm) return {hbm_};
  return {lpddr_, c2c_to_gpu_};
}

std::vector<sim::ResourceId> Topology::cpu_read_path(RegionId where) const {
  if (where == RegionId::kLpddr) return {lpddr_};
  return {hbm_, c2c_to_cpu_};
}

std::vector<sim::ResourceId> Topology::migration_path(RegionId from,
                                                      RegionId to) const {
  GHS_REQUIRE(from != to, "migration within " << region_name(from));
  if (from == RegionId::kLpddr) {
    return {lpddr_, c2c_to_gpu_, hbm_, migration_engine_};
  }
  return {hbm_, c2c_to_cpu_, lpddr_, migration_engine_};
}

std::vector<sim::ResourceId> Topology::copy_path(RegionId from,
                                                 RegionId to) const {
  GHS_REQUIRE(from != to, "copy within " << region_name(from));
  if (from == RegionId::kLpddr) return {lpddr_, c2c_to_gpu_, hbm_};
  return {hbm_, c2c_to_cpu_, lpddr_};
}

}  // namespace ghs::mem
