// Memory topology of the simulated Grace-Hopper module: two physical
// memories (HBM3 behind the Hopper GPU, LPDDR5X behind the Grace CPU)
// joined by the NVLink-C2C interconnect (one capacity resource per
// direction), plus a migration-engine resource that caps how fast the UM
// driver can move pages regardless of link headroom.
//
// Every data movement in the repository is expressed as a fluid flow over a
// *path* (a set of these resources); the paths for the common cases are
// provided here so device models cannot accidentally disagree about what a
// remote access traverses.
#pragma once

#include <vector>

#include "ghs/sim/fluid.hpp"
#include "ghs/sim/simulator.hpp"
#include "ghs/util/units.hpp"

namespace ghs::mem {

/// Physical memory a page or buffer lives in.
enum class RegionId { kHbm, kLpddr };

const char* region_name(RegionId region);

struct TopologyConfig {
  /// Peak HBM3 bandwidth; paper's testbed reports 4022.7 GB/s.
  Bandwidth hbm_bw = Bandwidth::from_gbps(4022.7);
  /// Peak LPDDR5X bandwidth of the 480 GB Grace socket (~512 GB/s class;
  /// ~500 achievable).
  Bandwidth lpddr_bw = Bandwidth::from_gbps(500.0);
  /// NVLink-C2C capacity per direction (450 GB/s each way).
  Bandwidth c2c_per_direction_bw = Bandwidth::from_gbps(450.0);
  /// Cap on the UM driver's page-migration machinery (fault handling,
  /// unmap/remap); migrations move slower than raw link copies.
  Bandwidth migration_engine_bw = Bandwidth::from_gbps(250.0);
};

class Topology {
 public:
  Topology(sim::Simulator& sim, const TopologyConfig& config);

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  sim::FluidNetwork& network() { return network_; }
  const sim::FluidNetwork& network() const { return network_; }
  sim::Simulator& sim() { return sim_; }
  const TopologyConfig& config() const { return config_; }

  sim::ResourceId hbm() const { return hbm_; }
  sim::ResourceId lpddr() const { return lpddr_; }
  /// C2C lane carrying data toward the GPU (GPU reads of CPU memory,
  /// host-to-device copies, CPU-to-GPU page migration).
  sim::ResourceId c2c_to_gpu() const { return c2c_to_gpu_; }
  /// C2C lane carrying data toward the CPU.
  sim::ResourceId c2c_to_cpu() const { return c2c_to_cpu_; }
  sim::ResourceId migration_engine() const { return migration_engine_; }

  /// Resources a GPU streaming read of memory in `where` traverses.
  std::vector<sim::ResourceId> gpu_read_path(RegionId where) const;

  /// Resources a CPU streaming read of memory in `where` traverses.
  std::vector<sim::ResourceId> cpu_read_path(RegionId where) const;

  /// Resources a UM page migration traverses (source memory, link lane,
  /// destination memory, and the migration engine).
  std::vector<sim::ResourceId> migration_path(RegionId from, RegionId to) const;

  /// Resources an explicit map(to:)/map(from:) bulk copy traverses.
  std::vector<sim::ResourceId> copy_path(RegionId from, RegionId to) const;

 private:
  TopologyConfig config_;
  sim::Simulator& sim_;
  sim::FluidNetwork network_;
  sim::ResourceId hbm_;
  sim::ResourceId lpddr_;
  sim::ResourceId c2c_to_gpu_;
  sim::ResourceId c2c_to_cpu_;
  sim::ResourceId migration_engine_;
};

}  // namespace ghs::mem
