// Bulk-copy engine: explicit host<->device copies (what the `map` clause
// does outside unified-memory mode) and the raw mover underneath UM page
// migration. A copy is a single fluid flow along the topology's copy or
// migration path, optionally rate-capped (DMA engines do not reach full
// link speed for small pages).
#pragma once

#include <functional>
#include <string>

#include "ghs/mem/topology.hpp"
#include "ghs/util/units.hpp"

namespace ghs::mem {

struct CopyStats {
  std::int64_t copies = 0;
  Bytes bytes = 0;
};

class TransferEngine {
 public:
  explicit TransferEngine(Topology& topology) : topology_(topology) {}

  TransferEngine(const TransferEngine&) = delete;
  TransferEngine& operator=(const TransferEngine&) = delete;

  /// Starts an explicit bulk copy; `on_complete` fires when the last byte
  /// lands. Zero-byte copies complete immediately (inline).
  void copy(Bytes bytes, RegionId from, RegionId to,
            std::function<void()> on_complete, std::string label);

  /// Starts a UM page-migration transfer (goes through the migration-engine
  /// resource as well as the memories and link).
  void migrate(Bytes bytes, RegionId from, RegionId to,
               std::function<void()> on_complete, std::string label);

  const CopyStats& stats() const { return stats_; }

 private:
  void start(Bytes bytes, std::vector<sim::ResourceId> path,
             std::function<void()> on_complete, std::string label);

  Topology& topology_;
  CopyStats stats_;
};

}  // namespace ghs::mem
