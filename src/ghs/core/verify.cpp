#include "ghs/core/verify.hpp"

#include "ghs/util/error.hpp"
#include "ghs/util/math.hpp"

namespace ghs::core {

namespace {

VerificationReport make_report(const workload::HostArray& input,
                               workload::SumValue reference,
                               workload::SumValue parallel, double rel_tol) {
  VerificationReport report;
  report.reference = reference;
  report.parallel = parallel;
  if (workload::case_spec(input.case_id()).floating) {
    report.relative_error = relative_difference(reference.d, parallel.d);
  } else {
    report.relative_error = reference.i == parallel.i ? 0.0 : 1.0;
  }
  report.ok = parallel.matches(reference, rel_tol);
  return report;
}

}  // namespace

double default_tolerance(workload::CaseId case_id) {
  switch (case_id) {
    case workload::CaseId::kC1:
    case workload::CaseId::kC2:
      return 0.0;
    case workload::CaseId::kC3:
      return 1e-3;  // float32 over ~1e6 elements reassociated
    case workload::CaseId::kC4:
      return 1e-9;
  }
  return 0.0;
}

VerificationReport verify_gpu_reduction(const workload::HostArray& input,
                                        std::int64_t chunks, double rel_tol) {
  GHS_REQUIRE(chunks > 0, "chunks=" << chunks);
  return make_report(input, input.serial_sum(), input.chunked_sum(chunks),
                     rel_tol);
}

VerificationReport verify_coexec(const workload::HostArray& input,
                                 std::int64_t split, std::int64_t gpu_chunks,
                                 double rel_tol) {
  const std::int64_t n = input.elements();
  GHS_REQUIRE(split >= 0 && split <= n, "split=" << split << " n=" << n);
  GHS_REQUIRE(gpu_chunks > 0, "gpu_chunks=" << gpu_chunks);

  const workload::SumValue zero =
      workload::case_spec(input.case_id()).floating
          ? workload::SumValue::of_float(0.0)
          : workload::SumValue::of_int(0);
  const workload::SumValue sum_h =
      split > 0 ? input.range_sum(0, split) : zero;
  // Device part: partial sums over [split, n) in gpu_chunks pieces.
  workload::SumValue sum_d = zero;
  if (split < n) {
    const std::int64_t len = n - split;
    const std::int64_t chunk =
        (len + gpu_chunks - 1) / gpu_chunks;
    for (std::int64_t first = split; first < n; first += chunk) {
      const std::int64_t last = std::min(n, first + chunk);
      sum_d = workload::HostArray::combine(input.case_id(), sum_d,
                                           input.range_sum(first, last));
    }
  }
  const workload::SumValue total =
      workload::HostArray::combine(input.case_id(), sum_h, sum_d);
  return make_report(input, input.serial_sum(), total, rel_tol);
}

}  // namespace ghs::core
