#include "ghs/core/reduce.hpp"

#include <algorithm>
#include <cmath>

#include "ghs/util/error.hpp"
#include "ghs/util/log.hpp"
#include "ghs/util/math.hpp"

namespace ghs::core {

using workload::CaseId;
using workload::case_spec;

ReduceTuning paper_best_tuning(CaseId case_id) {
  ReduceTuning tuning;
  tuning.teams = 65536;
  tuning.thread_limit = 256;
  tuning.v = (case_id == CaseId::kC2) ? 32 : 4;
  return tuning;
}

omp::OffloadLoop make_reduction_loop(CaseId case_id, std::int64_t elements,
                                     int v, bool unified,
                                     um::AllocId managed_alloc,
                                     Bytes range_offset) {
  const auto& spec = case_spec(case_id);
  GHS_REQUIRE(elements > 0, "elements=" << elements);
  GHS_REQUIRE(v >= 1, "v=" << v);
  omp::OffloadLoop loop;
  loop.label = std::string(spec.name) + (v == 1 ? "-baseline" : "-opt");
  loop.iterations = elements / v;
  GHS_REQUIRE(loop.iterations > 0,
              "elements=" << elements << " smaller than v=" << v);
  loop.v = v;
  loop.element_size = spec.element_size;
  loop.combine = spec.combine;
  loop.unified = unified;
  loop.managed_alloc = managed_alloc;
  loop.range_offset = range_offset;
  return loop;
}

omp::TeamsClauses make_clauses(const std::optional<ReduceTuning>& tuning) {
  omp::TeamsClauses clauses;
  if (tuning) {
    GHS_REQUIRE(tuning->teams > 0 && tuning->teams % tuning->v == 0,
                "teams=" << tuning->teams << " not divisible by v="
                         << tuning->v);
    clauses.num_teams = tuning->teams / tuning->v;
    clauses.thread_limit = tuning->thread_limit;
  }
  return clauses;
}

GpuBenchmarkResult run_gpu_benchmark(Platform& platform,
                                     const GpuBenchmark& bench) {
  const auto& spec = case_spec(bench.case_id);
  const std::int64_t elements =
      bench.elements > 0 ? bench.elements : spec.paper_elements;
  GHS_REQUIRE(bench.iterations > 0, "iterations=" << bench.iterations);
  const int v = bench.tuning ? bench.tuning->v : 1;

  auto& rt = platform.runtime();
  auto& sim = platform.sim();

  // Untimed: allocate and map the input array to the device (the paper
  // excludes the host-to-device transfer from the measurement).
  const Bytes bytes = elements * spec.element_size;
  const auto buffer = rt.target_alloc(bytes, spec.name);
  rt.map_to(buffer, nullptr);
  platform.run();

  omp::OffloadLoop loop =
      make_reduction_loop(bench.case_id, elements, v, /*unified=*/false,
                          /*managed_alloc=*/0, /*range_offset=*/0);
  if (bench.tuning) loop.strategy = bench.tuning->strategy;
  const omp::TeamsClauses clauses = make_clauses(bench.tuning);

  GpuBenchmarkResult result;
  result.iterations = bench.iterations;
  result.bytes_per_iteration = loop.elements() * spec.element_size;

  const SimTime t0 = sim.now();
  for (int n = 0; n < bench.iterations; ++n) {
    rt.target_update_scalar(nullptr);  // sum = 0; update to(sum)
    platform.run();
    rt.target_teams_reduce(loop, clauses,
                           [&result](const gpu::KernelResult& r) {
                             result.last_kernel_duration = r.duration();
                           });
    platform.run();
    rt.target_update_scalar(nullptr);  // update from(sum)
    platform.run();
  }
  result.elapsed = sim.now() - t0;
  result.bandwidth = achieved_bandwidth(
      result.bytes_per_iteration * bench.iterations, result.elapsed);
  return result;
}

const char* alloc_site_name(AllocSite site) {
  return site == AllocSite::kA1 ? "A1" : "A2";
}

std::vector<double> paper_cpu_parts() {
  std::vector<double> parts;
  for (int i = 0; i <= 10; ++i) {
    parts.push_back(static_cast<double>(i) / 10.0);
  }
  return parts;
}

const HeteroPoint& HeteroBenchmarkResult::at(double p) const {
  for (const auto& point : points) {
    if (std::fabs(point.cpu_part - p) < 1e-9) return point;
  }
  GHS_REQUIRE(false, "no point at p=" << p);
  return points.front();
}

double HeteroBenchmarkResult::best_speedup_over_gpu_only() const {
  const HeteroPoint& gpu_only = at(0.0);
  double best = 1.0;
  for (const auto& point : points) {
    best = std::max(best, point.bandwidth.bytes_per_second /
                              gpu_only.bandwidth.bytes_per_second);
  }
  return best;
}

HeteroBenchmarkResult run_hetero_benchmark(Platform& platform,
                                           const HeteroBenchmark& bench) {
  const auto& spec = case_spec(bench.case_id);
  const std::int64_t elements =
      bench.elements > 0 ? bench.elements : spec.paper_elements;
  GHS_REQUIRE(!bench.cpu_parts.empty(), "empty p sweep");
  GHS_REQUIRE(bench.iterations > 0, "iterations=" << bench.iterations);
  const int v = bench.tuning ? bench.tuning->v : 1;
  const Bytes total_bytes = elements * spec.element_size;

  auto& rt = platform.runtime();
  auto& um = platform.um();
  auto& sim = platform.sim();

  // A1: the array is allocated (and initialised on the CPU, so pages
  // first-touch in LPDDR) once, before the p sweep.
  std::optional<um::AllocId> a1_alloc;
  if (bench.site == AllocSite::kA1) {
    a1_alloc = um.allocate(total_bytes, mem::RegionId::kLpddr,
                           std::string(spec.name) + "-A1");
    if (bench.read_mostly_advice) um.advise_read_mostly(*a1_alloc);
  }

  HeteroBenchmarkResult result;
  for (double p : bench.cpu_parts) {
    GHS_REQUIRE(p >= 0.0 && p <= 1.0, "cpu part p=" << p);
    // A2: fresh allocation for this p, again first-touched on the CPU.
    um::AllocId alloc;
    if (a1_alloc) {
      alloc = *a1_alloc;
    } else {
      alloc = um.allocate(total_bytes, mem::RegionId::kLpddr,
                          std::string(spec.name) + "-A2");
      if (bench.read_mostly_advice) um.advise_read_mostly(alloc);
    }

    const auto len_h = static_cast<std::int64_t>(
        std::llround(p * static_cast<double>(elements)));
    const std::int64_t len_d = elements - len_h;
    const Bytes offset_d = len_h * spec.element_size;

    // The GPU loop processes len_d elements in len_d / v iterations; any
    // sub-v remainder is dropped from the model (< 32 elements of ~1e9).
    std::optional<omp::OffloadLoop> gpu_loop;
    if (len_d / v > 0) {
      gpu_loop = make_reduction_loop(bench.case_id, len_d, v,
                                     /*unified=*/true, alloc, offset_d);
      if (bench.tuning) gpu_loop->strategy = bench.tuning->strategy;
    }
    std::optional<cpu::CpuReduceRequest> cpu_part;
    if (len_h > 0) {
      cpu::CpuReduceRequest request;
      request.label = std::string(spec.name) + "-host";
      request.elements = len_h;
      request.element_size = spec.element_size;
      request.threads = bench.cpu_threads;
      request.use_simd = bench.cpu_simd;
      request.schedule = bench.cpu_schedule;
      request.managed = true;
      request.managed_alloc = alloc;
      request.range_offset = 0;
      cpu_part = request;
    }
    const omp::TeamsClauses clauses = make_clauses(bench.tuning);

    if (bench.prefetch) {
      // Placement hints before the timed region: device part to HBM, host
      // part to LPDDR. The moves run at migration-engine rate and drain
      // before timing starts (they are setup, like the allocation itself).
      if (len_d > 0) {
        um.prefetch(alloc, offset_d, len_d * spec.element_size,
                    mem::RegionId::kHbm, nullptr);
      }
      if (len_h > 0) {
        um.prefetch(alloc, 0, offset_d, mem::RegionId::kLpddr, nullptr);
      }
      platform.run();
    }

    const auto& um_stats = um.stats();
    const Bytes gpu_remote_before = um_stats.remote_bytes_gpu;
    const Bytes cpu_remote_before = um_stats.remote_bytes_cpu;

    const SimTime t0 = sim.now();
    for (int n = 0; n < bench.iterations; ++n) {
      rt.parallel_co_execute(gpu_loop, clauses, cpu_part, nullptr);
      platform.run();
    }
    HeteroPoint point;
    point.cpu_part = p;
    point.elapsed = sim.now() - t0;
    point.bandwidth = achieved_bandwidth(
        total_bytes * bench.iterations, point.elapsed);
    point.gpu_remote_bytes = um_stats.remote_bytes_gpu - gpu_remote_before;
    point.cpu_remote_bytes = um_stats.remote_bytes_cpu - cpu_remote_before;
    result.points.push_back(point);

    if (!a1_alloc) {
      um.free(alloc);
    }
  }
  return result;
}

}  // namespace ghs::core
