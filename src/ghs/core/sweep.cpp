#include "ghs/core/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "ghs/stats/summary.hpp"
#include "ghs/util/error.hpp"
#include "ghs/util/log.hpp"

namespace ghs::core {

using workload::CaseId;
using workload::case_spec;

namespace {

// Wires one sweep point's fresh platform into the shared sink and counts
// the evaluation against the tuner/sweep budget metric.
void instrument_sweep_point(Platform& platform,
                            const telemetry::Sink& sink) {
  if (!sink) return;
  platform.set_telemetry(sink);
  if (sink.metrics != nullptr) {
    sink.metrics
        ->counter("ghs_tuner_sweep_evaluations_total", {},
                  "Fresh-platform evaluations performed by exhaustive sweeps")
        .inc();
  }
}

}  // namespace

stats::Figure fig1_sweep(CaseId case_id, const SweepOptions& opts) {
  const auto& spec = case_spec(case_id);
  std::ostringstream title;
  title << "Fig.1 " << spec.name << " (" << spec.input_type << " -> "
        << spec.result_type << ")";
  stats::Figure figure(title.str(), "teams", "bandwidth GB/s");
  for (int v : opts.vs) {
    std::string series_name = "v";
    series_name += std::to_string(v);
    auto& series = figure.add_series(series_name);
    for (std::int64_t teams : opts.teams) {
      if (teams % v != 0) continue;
      Platform platform(opts.config);
      instrument_sweep_point(platform, opts.telemetry);
      GpuBenchmark bench;
      bench.case_id = case_id;
      bench.tuning = ReduceTuning{teams, opts.thread_limit, v};
      bench.elements = opts.elements;
      bench.iterations = opts.iterations;
      const auto result = run_gpu_benchmark(platform, bench);
      series.add(static_cast<double>(teams), result.bandwidth.gbps());
    }
  }
  return figure;
}

std::vector<Table1Row> table1(const std::vector<CaseId>& cases,
                              const SweepOptions& opts) {
  const double peak = peak_gpu_bandwidth(opts.config).gbps();
  std::vector<Table1Row> rows;
  for (CaseId case_id : cases) {
    Table1Row row;
    row.case_id = case_id;
    {
      Platform platform(opts.config);
      instrument_sweep_point(platform, opts.telemetry);
      GpuBenchmark bench;
      bench.case_id = case_id;
      bench.tuning = std::nullopt;  // Listing 2 baseline
      bench.elements = opts.elements;
      bench.iterations = opts.iterations;
      row.baseline_gbps = run_gpu_benchmark(platform, bench).bandwidth.gbps();
    }
    row.optimized_gbps = 0.0;
    for (int v : opts.vs) {
      for (std::int64_t teams : opts.teams) {
        if (teams % v != 0) continue;
        Platform platform(opts.config);
        instrument_sweep_point(platform, opts.telemetry);
        GpuBenchmark bench;
        bench.case_id = case_id;
        bench.tuning = ReduceTuning{teams, opts.thread_limit, v};
        bench.elements = opts.elements;
        bench.iterations = opts.iterations;
        const double gbps =
            run_gpu_benchmark(platform, bench).bandwidth.gbps();
        if (gbps > row.optimized_gbps) {
          row.optimized_gbps = gbps;
          row.best = *bench.tuning;
        }
      }
    }
    row.speedup = row.optimized_gbps / row.baseline_gbps;
    row.baseline_efficiency = row.baseline_gbps / peak;
    row.optimized_efficiency = row.optimized_gbps / peak;
    rows.push_back(row);
  }
  return rows;
}

HeteroBenchmarkResult um_sweep_case(CaseId case_id,
                                    const UmSweepOptions& opts) {
  Platform platform(opts.config);
  instrument_sweep_point(platform, opts.telemetry);
  HeteroBenchmark bench;
  bench.case_id = case_id;
  bench.tuning = opts.optimized
                     ? std::optional<ReduceTuning>(paper_best_tuning(case_id))
                     : std::nullopt;
  bench.site = opts.site;
  bench.cpu_parts = opts.cpu_parts;
  bench.elements = opts.elements;
  bench.iterations = opts.iterations;
  return run_hetero_benchmark(platform, bench);
}

stats::Figure um_figure(const std::vector<CaseId>& cases,
                        const UmSweepOptions& opts) {
  std::ostringstream title;
  title << "UM co-execution, " << (opts.optimized ? "optimized" : "baseline")
        << " kernel, " << alloc_site_name(opts.site);
  stats::Figure figure(title.str(), "cpu_part", "bandwidth GB/s");
  for (CaseId case_id : cases) {
    const auto result = um_sweep_case(case_id, opts);
    auto& series = figure.add_series(case_spec(case_id).name);
    for (const auto& point : result.points) {
      series.add(point.cpu_part, point.bandwidth.gbps());
    }
  }
  return figure;
}

stats::Figure speedup_figure(const stats::Figure& baseline,
                             const stats::Figure& optimized,
                             const std::string& title) {
  stats::Figure figure(title, "cpu_part", "speedup (optimized / baseline)");
  for (const auto& base_series : baseline.series()) {
    const auto* opt_series = optimized.find_series(base_series.name());
    GHS_REQUIRE(opt_series != nullptr,
                "series '" << base_series.name() << "' missing");
    auto& out = figure.add_series(base_series.name());
    for (const auto& point : base_series.points()) {
      const auto opt_y = opt_series->at(point.x);
      GHS_REQUIRE(opt_y.has_value(), "no optimized point at x=" << point.x);
      GHS_REQUIRE(point.y > 0.0, "zero baseline bandwidth");
      out.add(point.x, *opt_y / point.y);
    }
  }
  return figure;
}

UmExperimentSet run_um_experiments(const std::vector<CaseId>& cases,
                                   const UmSweepOptions& base_opts) {
  UmExperimentSet set;
  set.cases = cases;
  for (CaseId case_id : cases) {
    UmSweepOptions opts = base_opts;
    opts.site = AllocSite::kA1;
    opts.optimized = false;
    set.baseline_a1.push_back(um_sweep_case(case_id, opts));
    opts.optimized = true;
    set.optimized_a1.push_back(um_sweep_case(case_id, opts));
    opts.site = AllocSite::kA2;
    opts.optimized = false;
    set.baseline_a2.push_back(um_sweep_case(case_id, opts));
    opts.optimized = true;
    set.optimized_a2.push_back(um_sweep_case(case_id, opts));
  }
  return set;
}

namespace {

double average_best_speedup(const std::vector<HeteroBenchmarkResult>& runs) {
  std::vector<double> values;
  for (const auto& run : runs) {
    values.push_back(run.best_speedup_over_gpu_only());
  }
  return stats::arithmetic_mean(values);
}

void speedup_extrema(const std::vector<HeteroBenchmarkResult>& baseline,
                     const std::vector<HeteroBenchmarkResult>& optimized,
                     double& min_out, double& max_out) {
  min_out = std::numeric_limits<double>::infinity();
  max_out = 0.0;
  for (std::size_t c = 0; c < baseline.size(); ++c) {
    for (const auto& base_point : baseline[c].points) {
      const auto& opt_point = optimized[c].at(base_point.cpu_part);
      const double speedup = opt_point.bandwidth.bytes_per_second /
                             base_point.bandwidth.bytes_per_second;
      min_out = std::min(min_out, speedup);
      max_out = std::max(max_out, speedup);
    }
  }
}

}  // namespace

CorunSummary summarize_corun(const UmExperimentSet& set) {
  CorunSummary summary;
  summary.avg_best_speedup_baseline_a1 = average_best_speedup(set.baseline_a1);
  summary.avg_best_speedup_optimized_a1 =
      average_best_speedup(set.optimized_a1);
  summary.avg_best_speedup_baseline_a2 = average_best_speedup(set.baseline_a2);
  summary.avg_best_speedup_optimized_a2 =
      average_best_speedup(set.optimized_a2);

  // A1-over-A2 ratio of the achieved (best-split) optimized co-run
  // performance, averaged over cases.
  std::vector<double> ratios;
  std::vector<double> cpu_only_ratios;
  for (std::size_t c = 0; c < set.cases.size(); ++c) {
    double best_a1 = 0.0;
    double best_a2 = 0.0;
    for (const auto& a1_point : set.optimized_a1[c].points) {
      best_a1 = std::max(best_a1, a1_point.bandwidth.bytes_per_second);
    }
    for (const auto& a2_point : set.optimized_a2[c].points) {
      best_a2 = std::max(best_a2, a2_point.bandwidth.bytes_per_second);
    }
    ratios.push_back(best_a1 / best_a2);
    const auto& a1_cpu = set.optimized_a1[c].at(1.0);
    const auto& a2_cpu = set.optimized_a2[c].at(1.0);
    cpu_only_ratios.push_back(a2_cpu.bandwidth.bytes_per_second /
                              a1_cpu.bandwidth.bytes_per_second);
  }
  summary.a1_over_a2_optimized = stats::arithmetic_mean(ratios);
  summary.cpu_only_a2_over_a1 = stats::arithmetic_mean(cpu_only_ratios);

  speedup_extrema(set.baseline_a1, set.optimized_a1, summary.fig3_speedup_min,
                  summary.fig3_speedup_max);
  speedup_extrema(set.baseline_a2, set.optimized_a2, summary.fig5_speedup_min,
                  summary.fig5_speedup_max);
  return summary;
}

}  // namespace ghs::core
