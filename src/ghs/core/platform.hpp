// The assembled simulated machine: simulator + memory topology + UM manager
// + GPU + CPU + OpenMP runtime, wired together in dependency order. One
// Platform is one "boot" of the machine; benchmark points that must not
// share state (e.g. independent Fig. 1 sweep points) each construct a fresh
// Platform, while the UM allocation-site experiments deliberately reuse one
// so page residency history carries across the p-sweep, as it does on the
// real machine.
#pragma once

#include <memory>

#include "ghs/core/system_config.hpp"
#include "ghs/cpu/device.hpp"
#include "ghs/gpu/device.hpp"
#include "ghs/mem/topology.hpp"
#include "ghs/mem/transfer.hpp"
#include "ghs/omp/runtime.hpp"
#include "ghs/sim/simulator.hpp"
#include "ghs/telemetry/registry.hpp"
#include "ghs/trace/tracer.hpp"
#include "ghs/um/manager.hpp"

namespace ghs::core {

class Platform {
 public:
  explicit Platform(const SystemConfig& config = gh200_config());

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  const SystemConfig& config() const { return config_; }
  sim::Simulator& sim() { return sim_; }
  mem::Topology& topology() { return *topology_; }
  mem::TransferEngine& transfers() { return *transfers_; }
  um::UmManager& um() { return *um_; }
  gpu::GpuDevice& gpu() { return *gpu_; }
  cpu::CpuDevice& cpu() { return *cpu_; }
  omp::Runtime& runtime() { return *runtime_; }

  /// Drains the event queue (runs all scheduled work to completion).
  void run() { sim_.run(); }

  /// Turns on execution tracing for this platform; all devices start
  /// recording spans into the returned tracer. Idempotent.
  trace::Tracer& enable_tracing();

  /// The installed tracer, or nullptr when tracing is off.
  trace::Tracer* tracer() { return tracer_.get(); }

  /// Wires metric instruments and the flight recorder into the simulator,
  /// the GPU, and the UM manager. The sink is externally owned (one
  /// registry typically outlives many platforms, so their counts
  /// accumulate). Null members disable the corresponding channel.
  void set_telemetry(telemetry::Sink sink);

  const telemetry::Sink& telemetry() const { return telemetry_; }

 private:
  telemetry::Sink telemetry_;
  std::unique_ptr<trace::Tracer> tracer_;
  SystemConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<mem::Topology> topology_;
  std::unique_ptr<mem::TransferEngine> transfers_;
  std::unique_ptr<um::UmManager> um_;
  std::unique_ptr<gpu::GpuDevice> gpu_;
  std::unique_ptr<cpu::CpuDevice> cpu_;
  std::unique_ptr<omp::Runtime> runtime_;
};

}  // namespace ghs::core
