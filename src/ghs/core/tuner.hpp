// Auto-tuner for the reduction's launch parameters.
//
// The paper finds its best (teams, V) by exhaustive sweep (61 points per
// case). This tuner finds an equivalent configuration in a fraction of the
// evaluations with coordinate-descent hill climbing over the power-of-two
// lattice: from a seed point, repeatedly try doubling/halving each
// coordinate (teams, V, thread_limit) and move while bandwidth improves.
// Every probe is a fresh-platform Listing 6 run, so probe count equals
// simulated-experiment count — which is the budget on real hardware too.
#pragma once

#include <cstdint>
#include <vector>

#include "ghs/core/reduce.hpp"
#include "ghs/telemetry/registry.hpp"

namespace ghs::core {

struct TunerOptions {
  /// Bounds of the search lattice (inclusive, powers of two).
  std::int64_t min_teams = 128;
  std::int64_t max_teams = 65536;
  int min_v = 1;
  int max_v = 32;
  int min_thread_limit = 64;
  int max_thread_limit = 1024;
  /// Whether thread_limit is searched or pinned at the seed's value (the
  /// paper pins 256).
  bool tune_thread_limit = false;
  /// Elements per probe; 0 = the case's paper M.
  std::int64_t elements = 0;
  /// Timed repetitions per probe (bandwidth is insensitive; keep small).
  int iterations = 3;
  /// Abort knob: give up after this many probes.
  int max_probes = 100;
  SystemConfig config = gh200_config();
  /// Metric instruments + flight recorder for the probes' platforms and the
  /// tuner's own run/probe counters (null members disable).
  telemetry::Sink telemetry;
};

struct TunerProbe {
  ReduceTuning tuning;
  double gbps = 0.0;
};

struct TunerResult {
  ReduceTuning best;
  double best_gbps = 0.0;
  /// Every configuration evaluated, in order (for reporting/tests).
  std::vector<TunerProbe> probes;

  std::size_t evaluations() const { return probes.size(); }
};

/// Runs the hill climb for one case, starting from `seed`.
TunerResult tune_reduction(workload::CaseId case_id, ReduceTuning seed,
                           const TunerOptions& options);

/// Convenience: seed from a mid-lattice point.
TunerResult tune_reduction(workload::CaseId case_id,
                           const TunerOptions& options);

}  // namespace ghs::core
