// Functional verification of the reductions.
//
// The simulator provides timing; the *values* are computed for real on the
// host with the result-type semantics of each case (int32 wraparound for
// C1, int8 -> int64 widening for C2, float32/float64 accumulation for
// C3/C4). A parallel reduction reassociates the sum — exact for the integer
// cases, tolerably different for the float cases — and these helpers
// quantify that, mirroring the paper's "GPU results are verified using the
// CPU results".
#pragma once

#include <cstdint>

#include "ghs/workload/host_array.hpp"

namespace ghs::core {

struct VerificationReport {
  workload::SumValue reference;  // serial left-to-right sum
  workload::SumValue parallel;   // partial-sum (grid-shaped) reduction
  bool ok = false;
  double relative_error = 0.0;
};

/// Verifies a GPU-shaped reduction: `chunks` partial sums (one per team)
/// combined in order, against the serial reference.
VerificationReport verify_gpu_reduction(const workload::HostArray& input,
                                        std::int64_t chunks, double rel_tol);

/// Verifies co-execution: the host sums [0, split), the device sums
/// [split, n) in `gpu_chunks` partials, and sum = sumH + sumD.
VerificationReport verify_coexec(const workload::HostArray& input,
                                 std::int64_t split, std::int64_t gpu_chunks,
                                 double rel_tol);

/// Default verification tolerance for a case (0 for the integer cases).
double default_tolerance(workload::CaseId case_id);

}  // namespace ghs::core
