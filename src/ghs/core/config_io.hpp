// Applies a properties file to a SystemConfig — the text-file interface to
// the simulated machine. Every tunable has a dotted key; unknown keys are
// an error (so typos do not silently leave the GH200 defaults in place).
//
//   # future-part.properties
//   topology.hbm_gbps = 6500
//   gpu.num_sms       = 160
//   um.mode           = access-counter
//   um.gpu_access_threshold = 8
//
// Supported keys are listed by config_keys() and documented in the README.
#pragma once

#include <string>
#include <vector>

#include "ghs/core/system_config.hpp"
#include "ghs/util/properties.hpp"

namespace ghs::core {

/// Mutates `config` with every key present in `props`; throws on unknown
/// keys or unparseable values.
void apply_properties(const Properties& props, SystemConfig& config);

/// Convenience: GH200 defaults + overrides from a file.
SystemConfig load_system_config(const std::string& path);

/// All recognised keys (for --help and error messages).
const std::vector<std::string>& config_keys();

}  // namespace ghs::core
