#include "ghs/core/system_config.hpp"

namespace ghs::core {

SystemConfig gh200_config() {
  // All defaults in the substrate configs are already the GH200 values;
  // this function is the single place to adjust them together if a
  // different testbed is ever modelled.
  return SystemConfig{};
}

}  // namespace ghs::core
