#include "ghs/core/tuner.hpp"

#include <algorithm>

#include "ghs/util/error.hpp"
#include "ghs/util/log.hpp"
#include "ghs/util/math.hpp"

namespace ghs::core {

namespace {

/// Evaluates one configuration on a fresh platform; returns GB/s.
double probe(workload::CaseId case_id, const ReduceTuning& tuning,
             const TunerOptions& options) {
  Platform platform(options.config);
  if (options.telemetry) platform.set_telemetry(options.telemetry);
  if (options.telemetry.metrics != nullptr) {
    options.telemetry.metrics
        ->counter("ghs_tuner_probes_total", {},
                  "Fresh-platform configurations evaluated by the tuner")
        .inc();
  }
  GpuBenchmark bench;
  bench.case_id = case_id;
  bench.tuning = tuning;
  bench.elements = options.elements;
  bench.iterations = options.iterations;
  return run_gpu_benchmark(platform, bench).bandwidth.gbps();
}

bool in_bounds(const ReduceTuning& t, const TunerOptions& o) {
  return t.teams >= o.min_teams && t.teams <= o.max_teams && t.v >= o.min_v &&
         t.v <= o.max_v && t.thread_limit >= o.min_thread_limit &&
         t.thread_limit <= o.max_thread_limit && t.teams % t.v == 0;
}

}  // namespace

TunerResult tune_reduction(workload::CaseId case_id, ReduceTuning seed,
                           const TunerOptions& options) {
  GHS_REQUIRE(is_pow2(seed.teams) && is_pow2(seed.v) &&
                  is_pow2(seed.thread_limit),
              "seed must lie on the power-of-two lattice");
  GHS_REQUIRE(in_bounds(seed, options), "seed outside the search bounds");

  if (options.telemetry.metrics != nullptr) {
    options.telemetry.metrics
        ->counter("ghs_tuner_runs_total", {},
                  "Hill-climb tuning runs started")
        .inc();
  }
  TunerResult result;
  const auto evaluate = [&](const ReduceTuning& tuning) {
    const double gbps = probe(case_id, tuning, options);
    result.probes.push_back(TunerProbe{tuning, gbps});
    return gbps;
  };

  ReduceTuning current = seed;
  double current_gbps = evaluate(current);
  result.best = current;
  result.best_gbps = current_gbps;

  bool improved = true;
  while (improved &&
         result.probes.size() < static_cast<std::size_t>(options.max_probes)) {
    improved = false;
    // Candidate moves: double/halve each tuned coordinate.
    std::vector<ReduceTuning> candidates;
    for (int direction : {+1, -1}) {
      ReduceTuning t = current;
      t.teams = direction > 0 ? current.teams * 2 : current.teams / 2;
      candidates.push_back(t);
      t = current;
      t.v = direction > 0 ? current.v * 2 : std::max(1, current.v / 2);
      candidates.push_back(t);
      if (options.tune_thread_limit) {
        t = current;
        t.thread_limit = direction > 0 ? current.thread_limit * 2
                                       : current.thread_limit / 2;
        candidates.push_back(t);
      }
    }
    for (const auto& candidate : candidates) {
      if (!in_bounds(candidate, options)) continue;
      if (result.probes.size() >=
          static_cast<std::size_t>(options.max_probes)) {
        break;
      }
      const double gbps = evaluate(candidate);
      if (gbps > current_gbps * (1.0 + 1e-6)) {
        current = candidate;
        current_gbps = gbps;
        improved = true;
      }
      if (gbps > result.best_gbps) {
        result.best = candidate;
        result.best_gbps = gbps;
      }
    }
  }
  GHS_INFO("tuner: " << result.evaluations() << " probes, best "
                     << result.best_gbps << " GB/s at teams="
                     << result.best.teams << " v=" << result.best.v);
  return result;
}

TunerResult tune_reduction(workload::CaseId case_id,
                           const TunerOptions& options) {
  ReduceTuning seed;
  seed.teams = std::clamp<std::int64_t>(4096, options.min_teams,
                                        options.max_teams);
  seed.thread_limit =
      std::clamp(256, options.min_thread_limit, options.max_thread_limit);
  seed.v = std::clamp(4, options.min_v, options.max_v);
  // Keep the lattice constraint teams % v == 0 after clamping.
  while (seed.teams % seed.v != 0 && seed.v > 1) seed.v /= 2;
  return tune_reduction(case_id, seed, options);
}

}  // namespace ghs::core
