// Public reduction API: the paper's baseline (Listing 2) and optimized
// (Listing 5) GPU reductions, and the two measurement protocols —
// Listing 6 (GPU-only, explicit map, N timed repetitions) and Listing 8
// (CPU+GPU co-execution in UM mode over a sweep of CPU fractions p, with
// the input array allocated at site A1 — once, before the sweep — or A2 —
// fresh for every p).
#pragma once

#include <optional>
#include <vector>

#include "ghs/core/platform.hpp"
#include "ghs/workload/cases.hpp"

namespace ghs::core {

/// Tuning of the optimized reduction. `teams` is the paper's x-axis value;
/// the emitted num_teams clause is teams / v, exactly as Listing 5 writes
/// it. A baseline run is the absence of tuning (std::nullopt): the bare
/// combined construct with the runtime heuristic picking the grid.
struct ReduceTuning {
  std::int64_t teams = 65536;
  int thread_limit = 256;
  int v = 4;
  /// Combine abstraction (extension beyond the paper; the vendor default
  /// is the shared-memory tree + per-CTA atomic).
  gpu::CombineStrategy strategy = gpu::CombineStrategy::kAtomicPerCta;
};

/// The parameters the paper selects for the UM co-execution experiments
/// (teams = 65536; V = 4 for C1/C3/C4, V = 32 for C2).
ReduceTuning paper_best_tuning(workload::CaseId case_id);

/// Builds the offload loop for a case (shared by protocols and tests).
/// `elements` is the sub-range length; `unified` selects UM mode.
omp::OffloadLoop make_reduction_loop(workload::CaseId case_id,
                                     std::int64_t elements, int v,
                                     bool unified, um::AllocId managed_alloc,
                                     Bytes range_offset);

/// Clauses for a tuning (or the empty clause set for the baseline).
omp::TeamsClauses make_clauses(const std::optional<ReduceTuning>& tuning);

// ---------------------------------------------------------------------------
// Listing 6: GPU-only benchmark in explicit-map mode.
// ---------------------------------------------------------------------------

struct GpuBenchmark {
  workload::CaseId case_id = workload::CaseId::kC1;
  std::optional<ReduceTuning> tuning;  // nullopt = baseline
  /// Elements to reduce; 0 means the paper's M for the case.
  std::int64_t elements = 0;
  /// Timed repetitions (the paper's N = 200).
  int iterations = 200;
};

struct GpuBenchmarkResult {
  SimTime elapsed = 0;           // over all timed repetitions
  Bandwidth bandwidth;           // 1e-9 * M * sizeof(T) * N / elapsed
  int iterations = 0;
  Bytes bytes_per_iteration = 0;
  SimTime last_kernel_duration = 0;
};

/// Runs the Listing 6 protocol on a fresh region of the platform: map the
/// input (untimed), then N x (update-to + kernel + update-from), timed.
GpuBenchmarkResult run_gpu_benchmark(Platform& platform,
                                     const GpuBenchmark& bench);

// ---------------------------------------------------------------------------
// Listing 8: CPU+GPU co-execution sweep in UM mode.
// ---------------------------------------------------------------------------

enum class AllocSite {
  kA1,  // allocate once, before the p sweep
  kA2,  // allocate fresh for every p
};

const char* alloc_site_name(AllocSite site);

struct HeteroBenchmark {
  workload::CaseId case_id = workload::CaseId::kC1;
  std::optional<ReduceTuning> tuning;  // nullopt = baseline GPU kernel
  AllocSite site = AllocSite::kA1;
  /// CPU fractions to sweep (the paper uses 0.0 .. 1.0 step 0.1).
  std::vector<double> cpu_parts;
  std::int64_t elements = 0;  // 0 = paper M
  int iterations = 200;       // N per p value
  int cpu_threads = 72;
  bool cpu_simd = true;
  /// Host worksharing-loop schedule (the paper's code is static).
  cpu::ScheduleKind cpu_schedule = cpu::ScheduleKind::kStatic;
  /// Extension beyond the paper: issue a cudaMemPrefetchAsync-style
  /// placement before each p's timed loop (GPU part to HBM, CPU part to
  /// LPDDR), as a tuned application would. With A2 this recovers most of
  /// the A1 warm-residency benefit — see bench/ablation_prefetch.
  bool prefetch = false;
  /// Extension beyond the paper: mark the input read-mostly
  /// (cudaMemAdviseSetReadMostly), so both processors read local replicas
  /// once the duplication warm-up completes.
  bool read_mostly_advice = false;
};

struct HeteroPoint {
  double cpu_part = 0.0;
  SimTime elapsed = 0;
  Bandwidth bandwidth;
  /// GPU bytes served from CPU-resident pages across the point's
  /// repetitions (a UM diagnostics signal).
  Bytes gpu_remote_bytes = 0;
  Bytes cpu_remote_bytes = 0;
};

struct HeteroBenchmarkResult {
  std::vector<HeteroPoint> points;

  const HeteroPoint& at(double p) const;
  /// Best speedup of any point over the p = 0 (GPU-only) point.
  double best_speedup_over_gpu_only() const;
};

/// Runs the Listing 8 protocol. The platform must be freshly constructed:
/// residency history accumulating across the sweep is part of the
/// experiment (it is the entire A1-vs-A2 story).
HeteroBenchmarkResult run_hetero_benchmark(Platform& platform,
                                           const HeteroBenchmark& bench);

/// The paper's p grid: 0.0, 0.1, ..., 1.0.
std::vector<double> paper_cpu_parts();

}  // namespace ghs::core
