#include "ghs/core/config_io.hpp"

#include <functional>
#include <map>

#include "ghs/util/error.hpp"

namespace ghs::core {

namespace {

using Setter = std::function<void(const Properties&, const std::string&,
                                  SystemConfig&)>;

void set_gbps(Bandwidth& field, const Properties& props,
              const std::string& key) {
  const auto value = props.get_double(key);
  GHS_REQUIRE(*value > 0.0, "property '" << key << "' must be positive");
  field = Bandwidth::from_gbps(*value);
}

void set_positive_int(int& field, const Properties& props,
                      const std::string& key) {
  const auto value = props.get_int(key);
  GHS_REQUIRE(*value > 0, "property '" << key << "' must be positive");
  field = static_cast<int>(*value);
}

const std::map<std::string, Setter>& setters() {
  static const std::map<std::string, Setter> map = {
      // --- topology ---
      {"topology.hbm_gbps",
       [](const Properties& p, const std::string& k, SystemConfig& c) {
         set_gbps(c.topology.hbm_bw, p, k);
       }},
      {"topology.lpddr_gbps",
       [](const Properties& p, const std::string& k, SystemConfig& c) {
         set_gbps(c.topology.lpddr_bw, p, k);
       }},
      {"topology.c2c_gbps_per_direction",
       [](const Properties& p, const std::string& k, SystemConfig& c) {
         set_gbps(c.topology.c2c_per_direction_bw, p, k);
       }},
      {"topology.migration_engine_gbps",
       [](const Properties& p, const std::string& k, SystemConfig& c) {
         set_gbps(c.topology.migration_engine_bw, p, k);
       }},
      // --- gpu ---
      {"gpu.num_sms",
       [](const Properties& p, const std::string& k, SystemConfig& c) {
         set_positive_int(c.gpu.num_sms, p, k);
       }},
      {"gpu.clock_ghz",
       [](const Properties& p, const std::string& k, SystemConfig& c) {
         const auto v = p.get_double(k);
         GHS_REQUIRE(*v > 0.0, "property '" << k << "' must be positive");
         c.gpu.clock_ghz = *v;
       }},
      {"gpu.mem_latency_ns",
       [](const Properties& p, const std::string& k, SystemConfig& c) {
         const auto v = p.get_double(k);
         GHS_REQUIRE(*v > 0.0, "property '" << k << "' must be positive");
         c.gpu.mem_latency = from_nanoseconds(*v);
       }},
      {"gpu.max_outstanding_loads_per_warp",
       [](const Properties& p, const std::string& k, SystemConfig& c) {
         set_positive_int(c.gpu.max_outstanding_loads_per_warp, p, k);
       }},
      {"gpu.um_hbm_efficiency",
       [](const Properties& p, const std::string& k, SystemConfig& c) {
         const auto v = p.get_double(k);
         GHS_REQUIRE(*v > 0.0 && *v <= 1.0,
                     "property '" << k << "' must be in (0, 1]");
         c.gpu.um_hbm_efficiency = *v;
       }},
      {"gpu.remote_read_gbps",
       [](const Properties& p, const std::string& k, SystemConfig& c) {
         set_gbps(c.gpu.remote_read_bw, p, k);
       }},
      // --- cpu ---
      {"cpu.cores",
       [](const Properties& p, const std::string& k, SystemConfig& c) {
         set_positive_int(c.cpu.cores, p, k);
       }},
      {"cpu.aggregate_local_gbps",
       [](const Properties& p, const std::string& k, SystemConfig& c) {
         set_gbps(c.cpu.aggregate_local_bw, p, k);
       }},
      {"cpu.remote_read_gbps",
       [](const Properties& p, const std::string& k, SystemConfig& c) {
         set_gbps(c.cpu.remote_read_bw, p, k);
       }},
      {"cpu.socket_stream_gbps",
       [](const Properties& p, const std::string& k, SystemConfig& c) {
         set_gbps(c.cpu.socket_stream_bw, p, k);
       }},
      {"cpu.per_core_stream_gbps",
       [](const Properties& p, const std::string& k, SystemConfig& c) {
         set_gbps(c.cpu.per_core_stream_bw, p, k);
       }},
      // --- um ---
      {"um.mode",
       [](const Properties& p, const std::string& k, SystemConfig& c) {
         const auto v = p.get_string(k);
         if (*v == "fault-eager") {
           c.um.mode = um::MigrationMode::kFaultEager;
         } else if (*v == "access-counter") {
           c.um.mode = um::MigrationMode::kAccessCounter;
         } else if (*v == "none") {
           c.um.mode = um::MigrationMode::kNone;
         } else {
           GHS_REQUIRE(false, "property '" << k << "': unknown mode '" << *v
                                           << "'");
         }
       }},
      {"um.fault_migration_gbps",
       [](const Properties& p, const std::string& k, SystemConfig& c) {
         set_gbps(c.um.fault_migration_bw, p, k);
       }},
      {"um.gpu_access_threshold",
       [](const Properties& p, const std::string& k, SystemConfig& c) {
         set_positive_int(c.um.gpu_access_threshold, p, k);
       }},
      {"um.cpu_access_threshold",
       [](const Properties& p, const std::string& k, SystemConfig& c) {
         const auto v = p.get_int(k);
         GHS_REQUIRE(*v >= 0, "property '" << k << "' must be >= 0");
         c.um.cpu_access_threshold = static_cast<int>(*v);
       }},
      {"um.page_size_mib",
       [](const Properties& p, const std::string& k, SystemConfig& c) {
         const auto v = p.get_int(k);
         GHS_REQUIRE(*v > 0, "property '" << k << "' must be positive");
         c.um.page_size = *v * kMiB;
       }},
      // --- omp ---
      {"omp.default_threads",
       [](const Properties& p, const std::string& k, SystemConfig& c) {
         set_positive_int(c.omp.heuristic.default_threads, p, k);
       }},
      {"omp.grid_clamp",
       [](const Properties& p, const std::string& k, SystemConfig& c) {
         const auto v = p.get_int(k);
         GHS_REQUIRE(*v > 0, "property '" << k << "' must be positive");
         c.omp.heuristic.grid_clamp = *v;
       }},
  };
  return map;
}

}  // namespace

void apply_properties(const Properties& props, SystemConfig& config) {
  for (const auto& key : props.keys()) {
    const auto it = setters().find(key);
    GHS_REQUIRE(it != setters().end(), "unknown config key '" << key << "'");
    it->second(props, key, config);
  }
}

SystemConfig load_system_config(const std::string& path) {
  SystemConfig config = gh200_config();
  apply_properties(Properties::load_file(path), config);
  return config;
}

const std::vector<std::string>& config_keys() {
  static const std::vector<std::string> keys = [] {
    std::vector<std::string> out;
    for (const auto& [key, setter] : setters()) out.push_back(key);
    return out;
  }();
  return keys;
}

}  // namespace ghs::core
