#include "ghs/core/platform.hpp"

namespace ghs::core {

Platform::Platform(const SystemConfig& config) : config_(config) {
  topology_ = std::make_unique<mem::Topology>(sim_, config_.topology);
  transfers_ = std::make_unique<mem::TransferEngine>(*topology_);
  um_ = std::make_unique<um::UmManager>(*topology_, *transfers_, config_.um);
  gpu_ = std::make_unique<gpu::GpuDevice>(sim_, *topology_, *um_,
                                          config_.gpu);
  cpu_ = std::make_unique<cpu::CpuDevice>(sim_, *topology_, *um_,
                                          config_.cpu);
  runtime_ = std::make_unique<omp::Runtime>(sim_, *transfers_, *um_, *gpu_,
                                            *cpu_, config_.omp);
}

void Platform::set_telemetry(telemetry::Sink sink) {
  telemetry_ = sink;
  sim_.set_telemetry(sink.metrics);
  gpu_->set_telemetry(sink);
  um_->set_telemetry(sink);
}

trace::Tracer& Platform::enable_tracing() {
  if (!tracer_) {
    tracer_ = std::make_unique<trace::Tracer>();
    gpu_->set_tracer(tracer_.get());
    cpu_->set_tracer(tracer_.get());
    um_->set_tracer(tracer_.get());
    runtime_->set_tracer(tracer_.get());
  }
  return *tracer_;
}

}  // namespace ghs::core
