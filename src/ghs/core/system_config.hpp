// Aggregate configuration of the simulated Grace-Hopper system: one struct
// gathering all substrate configs, with the GH200 preset the paper's
// testbed corresponds to. Benches construct ablated variants by mutating a
// copy of the preset.
#pragma once

#include "ghs/cpu/config.hpp"
#include "ghs/gpu/config.hpp"
#include "ghs/mem/topology.hpp"
#include "ghs/omp/runtime.hpp"
#include "ghs/um/policy.hpp"

namespace ghs::core {

struct SystemConfig {
  mem::TopologyConfig topology;
  um::UmPolicy um;
  gpu::GpuConfig gpu;
  cpu::CpuConfig cpu;
  omp::RuntimeOptions omp;
};

/// The GH200 testbed of the paper: 72-core Grace, H100 with 96 GB HBM3 at a
/// peak of 4022.7 GB/s, NVLink-C2C, CUDA 12.4-era software behaviour.
SystemConfig gh200_config();

/// Peak GPU memory bandwidth used for the paper's "Efficiency" column.
inline Bandwidth peak_gpu_bandwidth(const SystemConfig& config) {
  return config.topology.hbm_bw;
}

}  // namespace ghs::core
