// Drivers that regenerate the paper's figures and tables. Each bench binary
// is a thin CLI around one of these; tests exercise them at reduced scale.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ghs/core/reduce.hpp"
#include "ghs/core/system_config.hpp"
#include "ghs/stats/series.hpp"
#include "ghs/telemetry/registry.hpp"
#include "ghs/workload/cases.hpp"

namespace ghs::core {

/// Common sweep controls. Every Fig. 1 point runs on a fresh Platform
/// (explicit-map points share no state); bandwidth is insensitive to the
/// repetition count there, so `iterations` defaults below the paper's 200
/// to keep the harness quick — pass --iters=200 for the full protocol.
struct SweepOptions {
  std::vector<std::int64_t> teams = {128,  256,  512,   1024,  2048,
                                     4096, 8192, 16384, 32768, 65536};
  std::vector<int> vs = {1, 2, 4, 8, 16, 32};
  int thread_limit = 256;
  int iterations = 25;
  std::int64_t elements = 0;  // 0 = the case's paper M
  SystemConfig config = gh200_config();
  /// Instruments each sweep point's platform and counts evaluations
  /// (null members disable).
  telemetry::Sink telemetry;
};

/// Fig. 1a-1d: bandwidth (GB/s) vs number of teams, one series per V.
stats::Figure fig1_sweep(workload::CaseId case_id, const SweepOptions& opts);

/// Table 1 row: baseline vs best optimized configuration.
struct Table1Row {
  workload::CaseId case_id;
  double baseline_gbps = 0.0;
  double optimized_gbps = 0.0;
  double speedup = 0.0;
  double baseline_efficiency = 0.0;   // fraction of peak
  double optimized_efficiency = 0.0;
  ReduceTuning best;                   // argmax of the sweep
};

std::vector<Table1Row> table1(const std::vector<workload::CaseId>& cases,
                              const SweepOptions& opts);

/// Controls for the UM co-execution sweeps (Figs. 2-5).
struct UmSweepOptions {
  AllocSite site = AllocSite::kA1;
  bool optimized = false;  // false = baseline kernel (Figs. 2a/4a)
  std::vector<double> cpu_parts = paper_cpu_parts();
  int iterations = 200;
  std::int64_t elements = 0;
  SystemConfig config = gh200_config();
  /// Instruments each case's platform and counts evaluations
  /// (null members disable).
  telemetry::Sink telemetry;
};

/// One case's full p-sweep (fresh platform per case, shared across p).
HeteroBenchmarkResult um_sweep_case(workload::CaseId case_id,
                                    const UmSweepOptions& opts);

/// Figs. 2a/2b/4a/4b: bandwidth vs p, one series per case.
stats::Figure um_figure(const std::vector<workload::CaseId>& cases,
                        const UmSweepOptions& opts);

/// Figs. 3/5: point-wise speedup of `optimized` over `baseline`.
stats::Figure speedup_figure(const stats::Figure& baseline,
                             const stats::Figure& optimized,
                             const std::string& title);

/// The prose statistics of Section IV.B, computed from the four sweeps.
struct CorunSummary {
  double avg_best_speedup_baseline_a1 = 0.0;   // paper ~2.492
  double avg_best_speedup_optimized_a1 = 0.0;  // paper ~2.484
  double avg_best_speedup_baseline_a2 = 0.0;
  double avg_best_speedup_optimized_a2 = 0.0;  // paper ~1.067
  double a1_over_a2_optimized = 0.0;           // paper ~2.299
  double cpu_only_a2_over_a1 = 0.0;            // paper ~1.367
  double fig3_speedup_min = 0.0;               // paper 0.996
  double fig3_speedup_max = 0.0;               // paper 10.654
  double fig5_speedup_min = 0.0;               // paper 0.998
  double fig5_speedup_max = 0.0;               // paper 6.729
};

struct UmExperimentSet {
  std::vector<workload::CaseId> cases;
  std::vector<HeteroBenchmarkResult> baseline_a1;
  std::vector<HeteroBenchmarkResult> optimized_a1;
  std::vector<HeteroBenchmarkResult> baseline_a2;
  std::vector<HeteroBenchmarkResult> optimized_a2;
};

/// Runs all four UM sweeps for the given cases.
UmExperimentSet run_um_experiments(const std::vector<workload::CaseId>& cases,
                                   const UmSweepOptions& base_opts);

CorunSummary summarize_corun(const UmExperimentSet& set);

}  // namespace ghs::core
