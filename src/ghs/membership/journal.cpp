#include "ghs/membership/journal.hpp"

#include <algorithm>

#include "ghs/util/error.hpp"

namespace ghs::membership {

JobJournal::JobJournal(int nodes) {
  GHS_REQUIRE(nodes >= 1, "job journal needs >= 1 node, got " << nodes);
  open_.resize(static_cast<std::size_t>(nodes));
}

std::size_t JobJournal::checked(int node) const {
  GHS_REQUIRE(node >= 0 && node < static_cast<int>(open_.size()),
              "journal node " << node << " out of range [0, " << open_.size()
                              << ")");
  return static_cast<std::size_t>(node);
}

void JobJournal::append(int node, const serve::Job& job) {
  auto& entries = open_[checked(node)];
  const auto [it, inserted] =
      entries.emplace(job.id, Entry{job, next_seq_++});
  GHS_CHECK(inserted, "job " << job.id << " already open on node " << node);
  (void)it;
  ++appended_;
}

bool JobJournal::commit(int node, serve::JobId id) {
  auto& entries = open_[checked(node)];
  const auto it = entries.find(id);
  if (it == entries.end()) return false;
  entries.erase(it);
  ++committed_;
  return true;
}

bool JobJournal::is_open(int node, serve::JobId id) const {
  const auto& entries = open_[checked(node)];
  return entries.find(id) != entries.end();
}

std::vector<serve::Job> JobJournal::take_open(int node) {
  auto& entries = open_[checked(node)];
  std::vector<Entry> taken;
  taken.reserve(entries.size());
  for (auto& [id, entry] : entries) taken.push_back(std::move(entry));
  entries.clear();
  std::sort(taken.begin(), taken.end(),
            [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
  std::vector<serve::Job> jobs;
  jobs.reserve(taken.size());
  for (auto& entry : taken) jobs.push_back(std::move(entry.job));
  committed_ += static_cast<std::int64_t>(jobs.size());
  return jobs;
}

std::int64_t JobJournal::open_count(int node) const {
  return static_cast<std::int64_t>(open_[checked(node)].size());
}

}  // namespace ghs::membership
