// Fleet membership table: the single source of truth for per-node
// liveness state inside a cluster run.
//
// States follow the usual failure-detector lifecycle. kAlive nodes take
// traffic; kSuspect nodes still take traffic (the detector is not yet
// sure) but are first in line to be declared dead; kDead nodes are off
// the ring and their journaled jobs have been replayed; kDraining nodes
// are being emptied by an operator and admit nothing new; kLeft nodes
// have departed cleanly. Transitions are appended to a log with the sim
// timestamp and a human-readable reason, and a single callback lets the
// cluster react (ring membership, replay, telemetry) in one place no
// matter who drove the transition — the HealthMonitor or a forced
// transition when the detector is off.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ghs/util/units.hpp"

namespace ghs::membership {

enum class NodeState : std::uint8_t {
  kAlive = 0,
  kSuspect = 1,
  kDead = 2,
  kDraining = 3,
  kLeft = 4,
};

const char* node_state_name(NodeState state);

/// One recorded state change; `reason` is free text for post-mortems
/// ("phi=3.12", "drain", "crash (no detector)").
struct Transition {
  int node = 0;
  NodeState from = NodeState::kAlive;
  NodeState to = NodeState::kAlive;
  SimTime at = 0;
  std::string reason;
};

class Table {
 public:
  using TransitionFn = std::function<void(const Transition&)>;

  explicit Table(int nodes);

  int nodes() const { return static_cast<int>(states_.size()); }
  NodeState state(int node) const {
    return states_[static_cast<std::size_t>(checked(node))];
  }

  /// Alive or suspect: the front door may still route new work here.
  bool serving(int node) const {
    const NodeState s = state(node);
    return s == NodeState::kAlive || s == NodeState::kSuspect;
  }

  /// Invoked after every state change, with the transition already
  /// appended to the log.
  void set_on_transition(TransitionFn fn) { on_transition_ = std::move(fn); }

  /// Moves `node` to `to`; a no-op when the state is unchanged, so
  /// callers need not pre-check.
  void transition(int node, NodeState to, SimTime at, std::string reason);

  const std::vector<Transition>& log() const { return log_; }

 private:
  int checked(int node) const;

  std::vector<NodeState> states_;
  std::vector<Transition> log_;
  TransitionFn on_transition_;
};

}  // namespace ghs::membership
