// Per-node write-ahead job journal: the replay log that extends the
// cluster's zero-lost-jobs invariant across whole-node crashes.
//
// The cluster appends a job to the target node's journal at the moment it
// decides to deliver there (before the interconnect transfer, mirroring a
// write-ahead log that is durable before the work ships) and commits the
// entry when the job reaches a terminal outcome on that node — served,
// rejected, shed — or leaves it for another node (spill, steal, drain,
// redirect). When a node is declared dead the open entries are exactly
// the jobs in flight there: the cluster takes them, in append order, and
// replays each on a surviving peer. A delivery that was already in flight
// over the interconnect when the replay fired lands later, finds its
// entry gone, and is dropped as a duplicate — that check is what makes
// replay exactly-once.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "ghs/serve/job.hpp"

namespace ghs::membership {

class JobJournal {
 public:
  explicit JobJournal(int nodes);

  /// Records that `job` is now in flight on `node`. A job id may be open
  /// on at most one node at a time.
  void append(int node, const serve::Job& job);

  /// Closes the entry for `id` on `node`; returns false when no such
  /// entry is open (the caller may be double-committing a replayed job).
  bool commit(int node, serve::JobId id);

  bool is_open(int node, serve::JobId id) const;

  /// Removes and returns every open entry on `node`, in append order —
  /// the jobs a dead node takes with it, ready for replay.
  std::vector<serve::Job> take_open(int node);

  std::int64_t open_count(int node) const;
  std::int64_t appended() const { return appended_; }
  std::int64_t committed() const { return committed_; }

 private:
  struct Entry {
    serve::Job job;
    std::int64_t seq = 0;  // append order, for deterministic replay
  };

  std::size_t checked(int node) const;

  // std::map keeps per-node iteration ordered by job id, but replay order
  // is by append seq (below) so requeued retries keep their place.
  std::vector<std::map<serve::JobId, Entry>> open_;
  std::int64_t next_seq_ = 0;
  std::int64_t appended_ = 0;
  std::int64_t committed_ = 0;
};

}  // namespace ghs::membership
