#include "ghs/membership/table.hpp"

#include "ghs/util/error.hpp"

namespace ghs::membership {

const char* node_state_name(NodeState state) {
  switch (state) {
    case NodeState::kAlive:
      return "alive";
    case NodeState::kSuspect:
      return "suspect";
    case NodeState::kDead:
      return "dead";
    case NodeState::kDraining:
      return "draining";
    case NodeState::kLeft:
      return "left";
  }
  return "?";
}

Table::Table(int nodes) {
  GHS_REQUIRE(nodes >= 1, "membership table needs >= 1 node, got " << nodes);
  states_.assign(static_cast<std::size_t>(nodes), NodeState::kAlive);
}

int Table::checked(int node) const {
  GHS_REQUIRE(node >= 0 && node < nodes(),
              "membership node " << node << " out of range [0, " << nodes()
                                 << ")");
  return node;
}

void Table::transition(int node, NodeState to, SimTime at,
                       std::string reason) {
  const int i = checked(node);
  const NodeState from = states_[static_cast<std::size_t>(i)];
  if (from == to) return;
  states_[static_cast<std::size_t>(i)] = to;
  log_.push_back(Transition{i, from, to, at, std::move(reason)});
  if (on_transition_) on_transition_(log_.back());
}

}  // namespace ghs::membership
