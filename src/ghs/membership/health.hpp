// Phi-accrual-style failure detector riding the sim event queue.
//
// Every `interval` the monitor sweeps the fleet: each node that answers
// its probe records a heartbeat (inter-arrival times kept in a small
// window, as in Hayashibara et al.'s phi-accrual detector); each node
// that does not is scored
//
//   phi = (now - last_heartbeat) / mean_interval * log10(e)
//
// — the phi-accrual suspicion level under an exponential inter-arrival
// model, which grows without bound while heartbeats are missing. Crossing
// `suspect_phi` marks the node suspect (still routable, first to shed);
// crossing `dead_phi` declares it dead, which is what triggers ring
// removal and journal replay in the cluster. A dead node whose heartbeats
// resume is held for `rejoin_delay` of continuous health (the warm-up
// window) before it transitions back to alive and rejoins the ring.
//
// Determinism: the sweep is a single self-rescheduling sim event (the
// ghs::timeseries scraper idiom), probes are a pure function supplied by
// the cluster, and all arithmetic is on integer sim times plus one
// deterministic double per score — same seed, same transitions, same
// bytes. The chain stops once the simulator is otherwise idle and no
// node's probe disagrees with its recorded state, so a run never hangs
// on its own detector.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ghs/membership/table.hpp"
#include "ghs/sim/simulator.hpp"
#include "ghs/util/units.hpp"

namespace ghs::membership {

struct HealthOptions {
  /// Master switch; a disabled monitor is never constructed, keeping
  /// detector-off runs byte-identical.
  bool enabled = false;
  /// Heartbeat (and evaluation) period.
  SimTime interval = 100 * kMicrosecond;
  /// Inter-arrival samples kept per node for the mean estimate.
  int window = 16;
  /// Suspicion level that marks a node suspect. phi 1.0 ~ 2.3 missed
  /// mean intervals.
  double suspect_phi = 1.0;
  /// Suspicion level that declares a node dead. phi 3.0 ~ 6.9 missed
  /// mean intervals.
  double dead_phi = 3.0;
  /// Continuous healthy heartbeats a dead node must show before it
  /// rejoins the ring (the restart warm-up window).
  SimTime rejoin_delay = 200 * kMicrosecond;
};

class HealthMonitor {
 public:
  /// `up(node)` is the probe: does the node's process answer right now?
  HealthMonitor(sim::Simulator& sim, Table& table, HealthOptions options,
                std::function<bool(int)> up);

  /// Schedules the first sweep one interval from now.
  void start();

  /// Last computed suspicion level for `node` (0 while heartbeats flow).
  double phi(int node) const {
    return health_[static_cast<std::size_t>(node)].phi;
  }

  std::int64_t sweeps() const { return sweeps_; }

 private:
  struct NodeHealth {
    SimTime last_heartbeat = -1;
    std::vector<SimTime> intervals;  // ring buffer of inter-arrival times
    std::size_t next = 0;
    double mean = 0.0;
    SimTime recovering_since = -1;
    double phi = 0.0;
  };

  void on_sweep();
  void heartbeat(int node, NodeHealth& h, SimTime now);
  void score(int node, NodeHealth& h, SimTime now);
  /// True while some node's probe disagrees with its table state, i.e.
  /// a detection or rejoin is still in progress — keeps the sweep chain
  /// alive after the workload drains.
  bool pending() const;

  sim::Simulator& sim_;
  Table& table_;
  HealthOptions options_;
  std::function<bool(int)> up_;
  std::vector<NodeHealth> health_;
  std::int64_t sweeps_ = 0;
};

}  // namespace ghs::membership
