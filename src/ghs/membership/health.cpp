#include "ghs/membership/health.hpp"

#include <cstdio>

#include "ghs/util/error.hpp"

namespace ghs::membership {

namespace {

// log10(e): converts missed-intervals-in-means to the conventional
// phi-accrual suspicion scale.
constexpr double kLog10E = 0.4342944819032518;

std::string phi_reason(double phi) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "phi=%.2f", phi);
  return buf;
}

}  // namespace

HealthMonitor::HealthMonitor(sim::Simulator& sim, Table& table,
                             HealthOptions options,
                             std::function<bool(int)> up)
    : sim_(sim), table_(table), options_(options), up_(std::move(up)) {
  GHS_REQUIRE(options_.interval > 0, "health interval must be positive");
  GHS_REQUIRE(options_.window >= 1, "health window must be >= 1");
  GHS_REQUIRE(options_.suspect_phi > 0.0 &&
                  options_.dead_phi >= options_.suspect_phi,
              "need 0 < suspect_phi <= dead_phi, got "
                  << options_.suspect_phi << " / " << options_.dead_phi);
  GHS_REQUIRE(options_.rejoin_delay >= 0, "rejoin delay must be >= 0");
  GHS_REQUIRE(up_ != nullptr, "health monitor needs a probe");
  health_.resize(static_cast<std::size_t>(table_.nodes()));
}

void HealthMonitor::start() {
  // Every node starts alive with an implicit heartbeat at t=0, so a node
  // crashed before the first sweep still accrues phi from the start.
  const SimTime now = sim_.now();
  for (auto& h : health_) h.last_heartbeat = now;
  sim_.schedule_after(options_.interval, [this] { on_sweep(); });
}

void HealthMonitor::heartbeat(int node, NodeHealth& h, SimTime now) {
  if (h.last_heartbeat >= 0 && now > h.last_heartbeat) {
    const SimTime gap = now - h.last_heartbeat;
    if (static_cast<int>(h.intervals.size()) < options_.window) {
      h.intervals.push_back(gap);
    } else {
      h.intervals[h.next] = gap;
      h.next = (h.next + 1) % h.intervals.size();
    }
    double sum = 0.0;
    for (const SimTime sample : h.intervals) {
      sum += static_cast<double>(sample);
    }
    h.mean = sum / static_cast<double>(h.intervals.size());
  }
  h.last_heartbeat = now;
  h.phi = 0.0;
  const NodeState state = table_.state(node);
  if (state == NodeState::kSuspect) {
    h.recovering_since = -1;
    table_.transition(node, NodeState::kAlive, now, "heartbeat resumed");
  } else if (state == NodeState::kDead) {
    if (h.recovering_since < 0) h.recovering_since = now;
    if (now - h.recovering_since >= options_.rejoin_delay) {
      h.recovering_since = -1;
      table_.transition(node, NodeState::kAlive, now,
                        "rejoined after warm-up");
    }
  }
}

void HealthMonitor::score(int node, NodeHealth& h, SimTime now) {
  h.recovering_since = -1;
  if (h.last_heartbeat < 0) return;  // never seen; nothing to score
  const double mean =
      h.mean > 0.0 ? h.mean : static_cast<double>(options_.interval);
  h.phi = static_cast<double>(now - h.last_heartbeat) / mean * kLog10E;
  const NodeState state = table_.state(node);
  if ((state == NodeState::kAlive || state == NodeState::kSuspect) &&
      h.phi >= options_.dead_phi) {
    table_.transition(node, NodeState::kDead, now, phi_reason(h.phi));
  } else if (state == NodeState::kAlive && h.phi >= options_.suspect_phi) {
    table_.transition(node, NodeState::kSuspect, now, phi_reason(h.phi));
  }
}

bool HealthMonitor::pending() const {
  for (int i = 0; i < table_.nodes(); ++i) {
    const NodeState state = table_.state(i);
    if (state == NodeState::kDraining || state == NodeState::kLeft) continue;
    const bool answered = up_(i);
    if (answered && state == NodeState::kDead) return true;   // rejoining
    if (!answered && state != NodeState::kDead) return true;  // detecting
  }
  return false;
}

void HealthMonitor::on_sweep() {
  ++sweeps_;
  const SimTime now = sim_.now();
  for (int i = 0; i < table_.nodes(); ++i) {
    const NodeState state = table_.state(i);
    // Draining/left nodes are leaving on purpose; scoring them would
    // re-declare an orderly departure as a death.
    if (state == NodeState::kDraining || state == NodeState::kLeft) continue;
    NodeHealth& h = health_[static_cast<std::size_t>(i)];
    if (up_(i)) {
      heartbeat(i, h, now);
    } else {
      score(i, h, now);
    }
  }
  // Chain like the timeseries scraper: reschedule while the run is still
  // producing events, or while a detection/rejoin is mid-flight (phi grows
  // monotonically and warm-up windows elapse, so this always terminates).
  if (!sim_.idle() || pending()) {
    sim_.schedule_after(options_.interval, [this] { on_sweep(); });
  }
}

}  // namespace ghs::membership
