#include "ghs/slo/monitor.hpp"

#include <algorithm>
#include <cstdio>

#include "ghs/serve/service.hpp"
#include "ghs/timeseries/query.hpp"
#include "ghs/util/error.hpp"

namespace ghs::slo {

namespace {

double to_ms(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

// One snprintf shape for every double in the report, so output is
// byte-stable across runs and platforms.
void write_double(std::ostream& os, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  os << buf;
}

// The error budget is 1 - target; a perfect target would make the burn
// rate divide by zero, so it is floored at one-in-a-billion.
double budget_of(double target) {
  return std::max(1.0 - target, 1e-9);
}

}  // namespace

const char* objective_kind_name(ObjectiveKind kind) {
  switch (kind) {
    case ObjectiveKind::kAvailability:
      return "availability";
    case ObjectiveKind::kLatencyQuantile:
      return "latency_quantile";
  }
  return "unknown";
}

std::vector<BurnRateRule> default_burn_rules() {
  // Sim-time analogue of the SRE workbook pairs. A serving campaign here
  // spans single-digit milliseconds where a production quarter spans
  // months, so the 5m+1h @ 14.4x page becomes 250us+1ms @ 14.4x and the
  // 6h+3d @ 1x ticket becomes 1ms+5ms @ 1x. The long/short ratio (the
  // part that makes the rule robust) is preserved.
  std::vector<BurnRateRule> rules;
  rules.push_back(BurnRateRule{"fast", 1 * kMillisecond,
                               250 * kMicrosecond, 14.4});
  rules.push_back(BurnRateRule{"slow", 5 * kMillisecond,
                               1 * kMillisecond, 1.0});
  return rules;
}

void Report::write_json(std::ostream& os) const {
  os << "{\"objectives\":[";
  for (std::size_t i = 0; i < objectives.size(); ++i) {
    const auto& obj = objectives[i];
    if (i > 0) os << ",";
    os << "{\"name\":\"" << obj.name << "\",\"kind\":\""
       << objective_kind_name(obj.kind) << "\",\"target\":";
    write_double(os, obj.target);
    if (obj.kind == ObjectiveKind::kLatencyQuantile) {
      os << ",\"threshold_ms\":";
      write_double(os, obj.threshold_ms);
    }
    os << ",\"samples\":" << obj.samples << ",\"good\":" << obj.good
       << ",\"bad\":" << obj.bad << ",\"compliance\":";
    write_double(os, obj.compliance);
    os << ",\"budget_burn\":";
    write_double(os, obj.budget_burn);
    os << ",\"met\":" << (obj.met ? "true" : "false") << ",\"burn\":[";
    for (std::size_t j = 0; j < obj.burn.size(); ++j) {
      const auto& rule = obj.burn[j];
      if (j > 0) os << ",";
      os << "{\"severity\":\"" << rule.severity << "\",\"long_window_ms\":";
      write_double(os, to_ms(rule.long_window));
      os << ",\"short_window_ms\":";
      write_double(os, to_ms(rule.short_window));
      os << ",\"threshold\":";
      write_double(os, rule.threshold);
      os << ",\"peak_burn\":";
      write_double(os, rule.peak_burn);
      os << ",\"alerts\":" << rule.alerts << ",\"first_alert_ms\":";
      if (rule.first_alert < 0) {
        os << "null";
      } else {
        write_double(os, to_ms(rule.first_alert));
      }
      os << "}";
    }
    os << "]}";
  }
  os << "],\"alerts\":[";
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    const auto& alert = alerts[i];
    if (i > 0) os << ",";
    os << "{\"objective\":\"" << alert.objective << "\",\"severity\":\""
       << alert.severity << "\",\"at_ms\":";
    write_double(os, to_ms(alert.at));
    os << ",\"burn_long\":";
    write_double(os, alert.burn_long);
    os << ",\"burn_short\":";
    write_double(os, alert.burn_short);
    os << "}";
  }
  os << "],\"total_alerts\":" << total_alerts() << "}";
}

Monitor::Monitor(std::vector<Objective> objectives, MonitorOptions options)
    : objectives_(std::move(objectives)), options_(std::move(options)) {
  for (const auto& rule : options_.rules) {
    GHS_REQUIRE(rule.long_window > 0 && rule.short_window > 0,
                "burn rule " << rule.severity << " needs positive windows");
    GHS_REQUIRE(rule.short_window <= rule.long_window,
                "burn rule " << rule.severity
                             << " short window exceeds long window");
  }
  samples_.resize(objectives_.size());
}

void Monitor::record(std::size_t index, SimTime at, bool good) {
  GHS_REQUIRE(index < objectives_.size(), "objective index " << index);
  samples_[index].push_back(Sample{at, good});
}

void Monitor::record_latency(std::size_t index, SimTime at,
                             double latency_ms) {
  GHS_REQUIRE(index < objectives_.size(), "objective index " << index);
  const auto& obj = objectives_[index];
  const bool good = obj.kind != ObjectiveKind::kLatencyQuantile ||
                    latency_ms <= obj.threshold_ms;
  samples_[index].push_back(Sample{at, good});
}

void Monitor::feed(const serve::ReductionService& service) {
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    const auto& obj = objectives_[i];
    if (obj.kind == ObjectiveKind::kAvailability) {
      for (const auto& rec : service.records()) {
        record(i, rec.completion, true);
      }
      for (const SimTime at : service.rejected_times()) record(i, at, false);
      for (const SimTime at : service.shed_times()) record(i, at, false);
    } else {
      for (const auto& rec : service.records()) {
        record_latency(i, rec.completion, to_ms(rec.latency()));
      }
    }
  }
}

Report Monitor::evaluate() const {
  Report report;
  report.objectives.reserve(objectives_.size());
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    const auto& obj = objectives_[i];
    // Completions, rejections, and sheds were fed in bookkeeping order;
    // the sliding windows need strict time order. stable_sort keeps
    // same-instant samples in feed order so evaluation is deterministic.
    std::vector<Sample> samples = samples_[i];
    std::stable_sort(samples.begin(), samples.end(),
                     [](const Sample& a, const Sample& b) {
                       return a.at < b.at;
                     });

    ObjectiveReport out;
    out.name = obj.name;
    out.kind = obj.kind;
    out.target = obj.target;
    out.threshold_ms = obj.threshold_ms;
    out.samples = static_cast<std::int64_t>(samples.size());
    for (const auto& sample : samples) {
      if (sample.good) {
        ++out.good;
      } else {
        ++out.bad;
      }
    }
    out.compliance =
        samples.empty()
            ? 1.0
            : static_cast<double>(out.good) / static_cast<double>(samples.size());
    out.budget_burn = (1.0 - out.compliance) / budget_of(obj.target);
    out.met = out.compliance >= obj.target;

    for (const auto& rule : options_.rules) {
      BurnReport burn;
      burn.severity = rule.severity;
      burn.long_window = rule.long_window;
      burn.short_window = rule.short_window;
      burn.threshold = rule.threshold;

      // Each sample pushed as 0 (good) / 1 (bad) into a pair of sliding
      // windows; after push the windows hold exactly (t - w, t], so
      // sum()/count() is the windowed bad fraction. The 0/1 running sums
      // are exact in doubles, so this reproduces the old two-pointer
      // sweep's reports byte for byte.
      timeseries::SlidingWindow long_w(rule.long_window);
      timeseries::SlidingWindow short_w(rule.short_window);
      bool alerting = false;
      for (std::size_t k = 0; k < samples.size(); ++k) {
        const SimTime now = samples[k].at;
        const double bad = samples[k].good ? 0.0 : 1.0;
        long_w.push(now, bad);
        short_w.push(now, bad);
        const double burn_long =
            (long_w.sum() / static_cast<double>(long_w.count())) /
            budget_of(obj.target);
        const double burn_short =
            (short_w.sum() / static_cast<double>(short_w.count())) /
            budget_of(obj.target);
        burn.peak_burn = std::max(burn.peak_burn, burn_long);

        const bool over =
            burn_long > rule.threshold && burn_short > rule.threshold;
        if (over && !alerting) {
          ++burn.alerts;
          if (burn.first_alert < 0) burn.first_alert = now;
          report.alerts.push_back(
              Alert{obj.name, rule.severity, now, burn_long, burn_short});
        }
        alerting = over;
      }
      out.burn.push_back(std::move(burn));
    }
    report.objectives.push_back(std::move(out));
  }
  // Alerts were appended objective-major; present them in time order
  // (ties keep objective order) the way an on-call pager would.
  std::stable_sort(report.alerts.begin(), report.alerts.end(),
                   [](const Alert& a, const Alert& b) { return a.at < b.at; });
  return report;
}

}  // namespace ghs::slo
