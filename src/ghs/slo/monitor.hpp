// SLO monitoring over a served workload: declarative objectives
// (availability, latency-quantile targets) evaluated against the stream of
// per-job outcomes in simulated time, with multi-window error-budget
// burn-rate alerting in the style of the SRE workbook — a fast pair of
// windows catches sharp burns (the 5m+1h rule), a slow pair catches
// sustained slow leaks (the 6h+3d rule), both scaled to simulator time
// where a whole serving campaign lasts milliseconds.
//
// Everything is deterministic: samples are (sim-time, good/bad) pairs, the
// evaluation scans them in time order, and the report serialises with
// fixed formatting, so two runs of the same (plan, seed) produce
// byte-identical SLO reports.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "ghs/serve/job.hpp"
#include "ghs/util/units.hpp"

namespace ghs::serve {
class ReductionService;
}

namespace ghs::slo {

enum class ObjectiveKind : std::uint8_t {
  /// Fraction of requests that terminate served (not rejected, not shed).
  kAvailability,
  /// Fraction of served requests completing within `threshold_ms`; a
  /// target of 0.99 with threshold 1 ms reads "p99 latency <= 1 ms".
  kLatencyQuantile,
};

const char* objective_kind_name(ObjectiveKind kind);

struct Objective {
  std::string name;
  ObjectiveKind kind = ObjectiveKind::kAvailability;
  /// Required good fraction (the SLO target), e.g. 0.999.
  double target = 0.999;
  /// Latency bound judged per sample (kLatencyQuantile only).
  double threshold_ms = 1.0;
};

/// One multi-window burn-rate rule: alert while the error budget burns
/// faster than `threshold` over BOTH windows (the long window confirms the
/// burn is real, the short window confirms it is still happening).
struct BurnRateRule {
  std::string severity;  // "fast" | "slow" (free-form for custom rules)
  SimTime long_window = 0;
  SimTime short_window = 0;
  double threshold = 1.0;
};

/// The sim-time analogue of the SRE workbook's 5m+1h @ 14.4x and
/// 6h+3d @ 1x pairs, scaled to millisecond-long campaigns.
std::vector<BurnRateRule> default_burn_rules();

struct MonitorOptions {
  std::vector<BurnRateRule> rules = default_burn_rules();
};

/// One alert episode: the instant both windows first exceeded the rule's
/// burn threshold, with the burn rates observed at that instant.
struct Alert {
  std::string objective;
  std::string severity;
  SimTime at = 0;
  double burn_long = 0.0;
  double burn_short = 0.0;
};

struct BurnReport {
  std::string severity;
  SimTime long_window = 0;
  SimTime short_window = 0;
  double threshold = 0.0;
  /// Peak long-window burn rate seen at any sample instant.
  double peak_burn = 0.0;
  /// Alert episodes (distinct entries into the alerting state).
  std::int64_t alerts = 0;
  /// First alert instant; -1 when the rule never fired.
  SimTime first_alert = -1;
};

struct ObjectiveReport {
  std::string name;
  ObjectiveKind kind = ObjectiveKind::kAvailability;
  double target = 0.0;
  double threshold_ms = 0.0;
  std::int64_t samples = 0;
  std::int64_t good = 0;
  std::int64_t bad = 0;
  /// good / samples over the whole run (1 when no samples).
  double compliance = 1.0;
  /// Whole-run burn rate: bad-fraction / (1 - target). > 1 means the run
  /// as a whole blew its budget.
  double budget_burn = 0.0;
  bool met = true;
  std::vector<BurnReport> burn;
};

struct Report {
  std::vector<ObjectiveReport> objectives;
  std::vector<Alert> alerts;  // across objectives, time order

  std::int64_t total_alerts() const {
    return static_cast<std::int64_t>(alerts.size());
  }
  /// One JSON object, stable key order, fixed number formatting.
  void write_json(std::ostream& os) const;
};

class Monitor {
 public:
  explicit Monitor(std::vector<Objective> objectives,
                   MonitorOptions options = {});

  const std::vector<Objective>& objectives() const { return objectives_; }

  /// Records one judged sample for objective `index`.
  void record(std::size_t index, SimTime at, bool good);

  /// Judges a latency value against a kLatencyQuantile objective's
  /// threshold (good for kAvailability objectives regardless of value).
  void record_latency(std::size_t index, SimTime at, double latency_ms);

  /// Feeds every objective from one completed service run: completions
  /// are good availability samples and judged latency samples; rejected
  /// and shed jobs are bad availability samples at their drop instants.
  void feed(const serve::ReductionService& service);

  /// Evaluates objectives and burn-rate rules over everything recorded.
  Report evaluate() const;

 private:
  struct Sample {
    SimTime at = 0;
    bool good = true;
  };

  std::vector<Objective> objectives_;
  MonitorOptions options_;
  std::vector<std::vector<Sample>> samples_;  // per objective
};

}  // namespace ghs::slo
