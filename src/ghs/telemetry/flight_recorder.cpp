#include "ghs/telemetry/flight_recorder.hpp"

#include <utility>

#include "ghs/util/error.hpp"

namespace ghs::telemetry {

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity) {
  GHS_REQUIRE(capacity_ > 0, "flight recorder needs capacity >= 1");
  ring_.reserve(capacity_);
}

void FlightRecorder::record(SimTime at, std::string layer, std::string kind,
                            std::string detail) {
  std::lock_guard<std::mutex> lock(mutex_);
  Event event{at, std::move(layer), std::move(kind), std::move(detail)};
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::int64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::int64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_ - static_cast<std::int64_t>(ring_.size());
}

std::vector<Event> FlightRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::dump(std::ostream& os) const {
  const auto snapshot = events();
  std::int64_t lost = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    lost = total_ - static_cast<std::int64_t>(ring_.size());
  }
  os << "flight recorder: " << snapshot.size() << " events";
  if (lost > 0) os << " (" << lost << " older events dropped)";
  os << "\n";
  for (const auto& event : snapshot) {
    os << "  [" << format_time(event.at) << "] " << event.layer << " "
       << event.kind;
    if (!event.detail.empty()) os << " " << event.detail;
    os << "\n";
  }
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

}  // namespace ghs::telemetry
