// Unified metrics substrate: a thread-safe Registry of named Counter,
// Gauge, and fixed-bucket Histogram instruments, shared by the simulator,
// the UM driver, the auto-tuner, and the serving layer.
//
// Instruments are identified by (name, sorted labels); asking twice for the
// same identity returns the same instrument, so independent layers (and
// independent Platforms) accumulate into one view. Like trace::Tracer, the
// registry is opt-in: layers hold a null pointer by default and cache raw
// instrument pointers when telemetry is enabled, so instrumented hot paths
// pay one branch plus one relaxed atomic.
//
// Naming convention (see docs/OBSERVABILITY.md): ghs_<layer>_<noun>_<unit>,
// with `_total` for counters, e.g. ghs_um_migrated_bytes_total.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ghs::telemetry {

/// Label set as key=value pairs; the registry sorts them by key, so
/// {{"a","1"},{"b","2"}} and {{"b","2"},{"a","1"}} name the same instrument.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Renders sorted labels Prometheus-style: `{a="1",b="2"}`, "" when empty.
std::string label_suffix(const Labels& labels);

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* kind_name(Kind kind);

/// Monotone event count. Increments are exact under concurrency.
class Counter {
 public:
  void inc(std::int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend class Registry;
  Counter() = default;
  std::atomic<std::int64_t> value_{0};
};

/// Point-in-time value (queue depth, resident bytes). add() is atomic, so
/// concurrent +/- deltas never lose updates.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// One trace exemplar kept per histogram bucket: the most recent sample
/// that landed there, tagged with the trace it came from, so a fat p99
/// bucket names the exact trace to open. trace_id 0 = no exemplar yet.
struct Exemplar {
  std::uint64_t trace_id = 0;
  double value = 0.0;
};

/// Fixed-bucket distribution. `bounds` are strictly increasing inclusive
/// upper bounds; one implicit +Inf bucket catches the overflow. Prometheus
/// `le` semantics: a value lands in the first bucket whose bound >= value.
class Histogram {
 public:
  void observe(double value);

  /// observe() plus an exemplar: remembers (trace_id, value) for the bucket
  /// the sample lands in (last sample wins, which is deterministic in the
  /// single-threaded simulation). trace_id 0 degrades to plain observe().
  void observe_exemplar(double value, std::uint64_t trace_id);

  /// Exemplar for bucket `index` (bounds().size() = the +Inf bucket);
  /// trace_id 0 when the bucket has none.
  Exemplar exemplar(std::size_t index) const;
  /// Whether any bucket holds an exemplar; exporters key their (gated)
  /// exemplar output off this so exemplar-free output is byte-identical to
  /// pre-exemplar builds.
  bool has_exemplars() const {
    return has_exemplars_.load(std::memory_order_relaxed);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) count; index bounds().size() is +Inf.
  std::int64_t bucket_count(std::size_t index) const;
  std::vector<std::int64_t> cumulative_counts() const;
  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Quantile estimate from the bucket counts (linear interpolation inside
  /// the crossing bucket; see stats::histogram_quantile). Requires count>0.
  double quantile(double q) const;

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;  // bounds_.size()+1
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Exemplars ride the slow path only: the mutex is touched exclusively by
  // observe_exemplar()/exemplar(), never by plain observe().
  mutable std::mutex exemplar_mutex_;
  std::vector<Exemplar> exemplars_;  // sized bounds_.size()+1
  std::atomic<bool> has_exemplars_{false};
};

/// Default latency buckets in milliseconds (serve-layer histograms).
std::vector<double> default_latency_buckets_ms();

class FlightRecorder;

/// The opt-in pair every instrumented layer holds: null members disable the
/// corresponding channel. Copyable by value (two raw pointers).
struct Sink {
  class Registry* metrics = nullptr;
  FlightRecorder* flight = nullptr;
  /// Register the extra time-resolved instruments (per-device busy time)
  /// that the ghs::timeseries scraper consumes. Off by default so a
  /// snapshot-only run's instrument set — and its exported bytes — stay
  /// identical to timeline-free builds.
  bool timeline = false;

  explicit operator bool() const {
    return metrics != nullptr || flight != nullptr;
  }
};

class Registry {
 public:
  Registry();
  ~Registry();  // out of line: Instrument is incomplete here
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Instrument accessors: create on first use, return the existing
  /// instrument afterwards. `help` is kept from the first registration.
  /// Re-registering a name with a different kind (or a histogram with
  /// different bounds) is an error. `volatile_instrument` marks values that
  /// legitimately differ between same-seed runs (wall-clock time); the
  /// exporters skip them unless asked, keeping snapshots byte-identical.
  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = {},
               bool volatile_instrument = false);
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const Labels& labels = {},
                       const std::string& help = {});

  std::size_t size() const;

  /// One instrument as the exporters see it. Exactly one of the three
  /// pointers is non-null, matching `kind`.
  struct View {
    std::string name;          // metric name without labels
    std::string labels;        // rendered label_suffix(), "" when unlabelled
    std::string help;
    Kind kind = Kind::kCounter;
    bool volatile_instrument = false;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };

  /// Visits every instrument in deterministic order (name, then labels),
  /// under the registry lock. Instruments are never removed, so the
  /// pointers stay valid for the registry's lifetime.
  void visit(const std::function<void(const View&)>& fn) const;

 private:
  struct Instrument;

  Instrument& get_or_create(const std::string& name, const Labels& labels,
                            const std::string& help, Kind kind,
                            bool volatile_instrument);

  mutable std::mutex mutex_;
  // Sorted by name + label_suffix; the sort order is the export order,
  // which makes every exporter deterministic by construction.
  std::vector<std::pair<std::string, std::unique_ptr<Instrument>>> items_;
};

}  // namespace ghs::telemetry
