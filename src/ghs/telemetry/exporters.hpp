// Exporters for the telemetry Registry:
//
//   write_prometheus     text exposition format (scrape-able / promtool-
//                        parseable), histograms as cumulative `le` buckets
//   write_json_snapshot  one JSON object with stable key order and fixed
//                        number formatting — byte-identical for identical
//                        instrument values, so same-seed runs diff clean
//   to_table             human stats::Table dump (histograms rendered as
//                        count/mean/p50/p95/p99/p999)
//
// Volatile instruments (wall-clock gauges) are skipped by default so the
// default output of every exporter is deterministic; pass include_volatile
// to see them.
#pragma once

#include <ostream>

#include "ghs/stats/table.hpp"
#include "ghs/telemetry/registry.hpp"

namespace ghs::telemetry {

struct ExportOptions {
  bool include_volatile = false;
  /// Render histogram exemplars (OpenMetrics-style `# {trace_id="..."}`
  /// suffixes in the text exposition, an "exemplars" object in the JSON
  /// snapshot). Histograms that never recorded an exemplar emit exactly
  /// the pre-exemplar bytes regardless of this switch.
  bool include_exemplars = true;
};

void write_prometheus(std::ostream& os, const Registry& registry,
                      const ExportOptions& options = {});

void write_json_snapshot(std::ostream& os, const Registry& registry,
                         const ExportOptions& options = {});

stats::Table to_table(const Registry& registry,
                      const ExportOptions& options = {});

}  // namespace ghs::telemetry
