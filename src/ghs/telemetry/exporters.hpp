// Exporters for the telemetry Registry:
//
//   write_prometheus     text exposition format (scrape-able / promtool-
//                        parseable), histograms as cumulative `le` buckets
//   write_json_snapshot  one JSON object with stable key order and fixed
//                        number formatting — byte-identical for identical
//                        instrument values, so same-seed runs diff clean
//   to_table             human stats::Table dump (histograms rendered as
//                        count/mean/p50/p95/p99/p999)
//
// Volatile instruments (wall-clock gauges) are skipped by default so the
// default output of every exporter is deterministic; pass include_volatile
// to see them.
#pragma once

#include <ostream>

#include "ghs/stats/table.hpp"
#include "ghs/telemetry/registry.hpp"

namespace ghs::telemetry {

struct ExportOptions {
  bool include_volatile = false;
};

void write_prometheus(std::ostream& os, const Registry& registry,
                      const ExportOptions& options = {});

void write_json_snapshot(std::ostream& os, const Registry& registry,
                         const ExportOptions& options = {});

stats::Table to_table(const Registry& registry,
                      const ExportOptions& options = {});

}  // namespace ghs::telemetry
