#include "ghs/telemetry/exporters.hpp"

#include <cstdio>
#include <string>
#include <vector>

namespace ghs::telemetry {

namespace {

// One snprintf shape per role so output is byte-stable across runs.
std::string fixed6(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  return buf;
}

// Bucket bounds print compact ("0.05", "20"), matching Prometheus's
// conventional le rendering.
std::string compact(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

// Splices an `le` label into an already-rendered label block.
std::string with_le(const std::string& labels, const std::string& le) {
  if (labels.empty()) return "{le=\"" + le + "\"}";
  return labels.substr(0, labels.size() - 1) + ",le=\"" + le + "\"}";
}

// Exemplar trace ids render as fixed-width hex, matching trace::id_hex.
std::string hex16(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

void write_escaped_json(std::ostream& os, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

void write_prometheus(std::ostream& os, const Registry& registry,
                      const ExportOptions& options) {
  std::string last_name;
  registry.visit([&](const Registry::View& view) {
    if (view.volatile_instrument && !options.include_volatile) return;
    if (view.name != last_name) {
      last_name = view.name;
      if (!view.help.empty()) {
        os << "# HELP " << view.name << " ";
        for (char c : view.help) {
          if (c == '\\') {
            os << "\\\\";
          } else if (c == '\n') {
            os << "\\n";
          } else {
            os << c;
          }
        }
        os << "\n";
      }
      os << "# TYPE " << view.name << " " << kind_name(view.kind) << "\n";
    }
    switch (view.kind) {
      case Kind::kCounter:
        os << view.name << view.labels << " " << view.counter->value()
           << "\n";
        break;
      case Kind::kGauge:
        os << view.name << view.labels << " " << fixed6(view.gauge->value())
           << "\n";
        break;
      case Kind::kHistogram: {
        const auto& bounds = view.histogram->bounds();
        const auto cumulative = view.histogram->cumulative_counts();
        const bool exemplars =
            options.include_exemplars && view.histogram->has_exemplars();
        const auto exemplar_suffix = [&](std::size_t index) {
          if (!exemplars) return std::string{};
          const Exemplar exemplar = view.histogram->exemplar(index);
          if (exemplar.trace_id == 0) return std::string{};
          return " # {trace_id=\"" + hex16(exemplar.trace_id) + "\"} " +
                 fixed6(exemplar.value);
        };
        for (std::size_t i = 0; i < bounds.size(); ++i) {
          os << view.name << "_bucket"
             << with_le(view.labels, compact(bounds[i])) << " "
             << cumulative[i] << exemplar_suffix(i) << "\n";
        }
        os << view.name << "_bucket" << with_le(view.labels, "+Inf") << " "
           << cumulative.back() << exemplar_suffix(bounds.size()) << "\n";
        os << view.name << "_sum" << view.labels << " "
           << fixed6(view.histogram->sum()) << "\n";
        os << view.name << "_count" << view.labels << " "
           << view.histogram->count() << "\n";
        break;
      }
    }
  });
}

void write_json_snapshot(std::ostream& os, const Registry& registry,
                         const ExportOptions& options) {
  // Three sections, each keyed by "name{labels}". The registry visits in
  // sorted order, so every section's key order is stable.
  std::vector<const char*> sections = {"counters", "gauges", "histograms"};
  os << "{";
  for (std::size_t s = 0; s < sections.size(); ++s) {
    const Kind kind = s == 0   ? Kind::kCounter
                      : s == 1 ? Kind::kGauge
                               : Kind::kHistogram;
    if (s > 0) os << ",";
    os << "\"" << sections[s] << "\":{";
    bool first = true;
    registry.visit([&](const Registry::View& view) {
      if (view.kind != kind) return;
      if (view.volatile_instrument && !options.include_volatile) return;
      if (!first) os << ",";
      first = false;
      os << "\"";
      write_escaped_json(os, view.name + view.labels);
      os << "\":";
      switch (kind) {
        case Kind::kCounter:
          os << view.counter->value();
          break;
        case Kind::kGauge:
          os << fixed6(view.gauge->value());
          break;
        case Kind::kHistogram: {
          const auto& bounds = view.histogram->bounds();
          const auto cumulative = view.histogram->cumulative_counts();
          os << "{\"count\":" << view.histogram->count()
             << ",\"sum\":" << fixed6(view.histogram->sum())
             << ",\"buckets\":{";
          for (std::size_t i = 0; i < bounds.size(); ++i) {
            os << "\"" << compact(bounds[i]) << "\":" << cumulative[i]
               << ",";
          }
          os << "\"+Inf\":" << cumulative.back() << "}";
          // Exemplars are additive: an exemplar-free histogram keeps the
          // pre-exemplar snapshot bytes.
          if (options.include_exemplars && view.histogram->has_exemplars()) {
            os << ",\"exemplars\":{";
            bool first_exemplar = true;
            for (std::size_t i = 0; i <= bounds.size(); ++i) {
              const Exemplar exemplar = view.histogram->exemplar(i);
              if (exemplar.trace_id == 0) continue;
              if (!first_exemplar) os << ",";
              first_exemplar = false;
              os << "\""
                 << (i < bounds.size() ? compact(bounds[i])
                                       : std::string("+Inf"))
                 << "\":{\"trace_id\":\"" << hex16(exemplar.trace_id)
                 << "\",\"value\":" << fixed6(exemplar.value) << "}";
            }
            os << "}";
          }
          os << "}";
          break;
        }
      }
    });
    os << "}";
  }
  os << "}";
}

stats::Table to_table(const Registry& registry,
                      const ExportOptions& options) {
  stats::Table table({"instrument", "type", "value"});
  registry.visit([&](const Registry::View& view) {
    if (view.volatile_instrument && !options.include_volatile) return;
    std::string value;
    switch (view.kind) {
      case Kind::kCounter:
        value = std::to_string(view.counter->value());
        break;
      case Kind::kGauge:
        value = fixed6(view.gauge->value());
        break;
      case Kind::kHistogram: {
        const auto* h = view.histogram;
        value = "count=" + std::to_string(h->count());
        if (h->count() > 0) {
          value += " mean=" +
                   fixed6(h->sum() / static_cast<double>(h->count()));
          value += " p50=" + fixed6(h->quantile(0.50));
          value += " p95=" + fixed6(h->quantile(0.95));
          value += " p99=" + fixed6(h->quantile(0.99));
          value += " p999=" + fixed6(h->quantile(0.999));
        }
        break;
      }
    }
    table.add_row({view.name + view.labels, kind_name(view.kind), value});
  });
  return table;
}

}  // namespace ghs::telemetry
