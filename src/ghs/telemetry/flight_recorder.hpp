// Flight recorder: a bounded ring buffer of structured events (admissions,
// rejections, device launches, page migrations, tuner cache hits/misses)
// that the layers append to as they run. Unlike the tracer — which keeps
// every span for offline visualisation — the recorder keeps only the last
// `capacity` events, so it can stay enabled for arbitrarily long runs and
// be dumped on error or on demand, black-box style.
//
// Timestamps are the *recording layer's* simulated clock; sources that run
// on separate Platforms (tuner probes, service-model pricing) each start at
// t=0, so the layer tag, not the timestamp, orders events across sources.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "ghs/util/units.hpp"

namespace ghs::telemetry {

struct Event {
  SimTime at = 0;       // the recording layer's simulated clock
  std::string layer;    // "serve", "um", "gpu", "tuner", ...
  std::string kind;     // "admit", "reject", "launch", "migrate", ...
  std::string detail;   // free-form, e.g. "C2 x3 @GPU launch 7"
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 1024);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record(SimTime at, std::string layer, std::string kind,
              std::string detail = {});

  std::size_t capacity() const { return capacity_; }
  /// Events currently held (<= capacity).
  std::size_t size() const;
  /// Events ever recorded, including overwritten ones.
  std::int64_t total_recorded() const;
  /// Events lost to the ring bound (total_recorded - size).
  std::int64_t dropped() const;

  /// Snapshot, oldest first.
  std::vector<Event> events() const;

  /// Human dump: one `[time] layer kind detail` line per event, oldest
  /// first, with a header noting drops.
  void dump(std::ostream& os) const;

  void clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Event> ring_;    // grows to capacity_, then wraps
  std::size_t next_ = 0;       // ring_[next_] is the oldest once wrapped
  std::int64_t total_ = 0;
};

/// Null-safe helper mirroring trace::record_span.
inline void record_event(FlightRecorder* recorder, SimTime at,
                         const char* layer, const char* kind,
                         std::string detail = {}) {
  if (recorder != nullptr) {
    recorder->record(at, layer, kind, std::move(detail));
  }
}

/// Null-safe structured variant: prefixes "k=v " label pairs to the
/// detail, the convention fleet post-mortems grep on (breaker and
/// membership transitions carry a node label and the sim timestamp).
inline void record_labeled_event(
    FlightRecorder* recorder, SimTime at, const char* layer,
    const char* kind,
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::string& detail) {
  if (recorder == nullptr) return;
  std::string prefixed;
  for (const auto& [key, value] : labels) {
    prefixed += key + "=" + value + " ";
  }
  prefixed += detail;
  recorder->record(at, layer, kind, std::move(prefixed));
}

}  // namespace ghs::telemetry
