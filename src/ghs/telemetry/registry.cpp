#include "ghs/telemetry/registry.hpp"

#include <algorithm>

#include "ghs/stats/summary.hpp"
#include "ghs/util/error.hpp"

namespace ghs::telemetry {

namespace {

bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) return false;
  }
  return !(name[0] >= '0' && name[0] <= '9');
}

Labels sorted_labels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    GHS_REQUIRE(sorted[i - 1].first != sorted[i].first,
                "duplicate label key '" << sorted[i].first << "'");
  }
  return sorted;
}

}  // namespace

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kCounter:
      return "counter";
    case Kind::kGauge:
      return "gauge";
    case Kind::kHistogram:
      return "histogram";
  }
  return "?";
}

std::string label_suffix(const Labels& labels) {
  if (labels.empty()) return {};
  const Labels sorted = sorted_labels(labels);
  std::string out = "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    GHS_REQUIRE(valid_name(sorted[i].first),
                "bad label key '" << sorted[i].first << "'");
    if (i > 0) out += ",";
    out += sorted[i].first;
    out += "=\"";
    for (char c : sorted[i].second) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\"";
  }
  out += "}";
  return out;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::int64_t>[bounds_.size() + 1]),
      exemplars_(bounds_.size() + 1) {
  GHS_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                  std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                      bounds_.end(),
              "histogram bounds must be strictly increasing");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::observe_exemplar(double value, std::uint64_t trace_id) {
  observe(value);
  if (trace_id == 0) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  {
    std::lock_guard<std::mutex> lock(exemplar_mutex_);
    exemplars_[index] = Exemplar{trace_id, value};
  }
  has_exemplars_.store(true, std::memory_order_relaxed);
}

Exemplar Histogram::exemplar(std::size_t index) const {
  GHS_REQUIRE(index <= bounds_.size(), "exemplar index " << index);
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  return exemplars_[index];
}

std::int64_t Histogram::bucket_count(std::size_t index) const {
  GHS_REQUIRE(index <= bounds_.size(), "bucket index " << index);
  return buckets_[index].load(std::memory_order_relaxed);
}

std::vector<std::int64_t> Histogram::cumulative_counts() const {
  std::vector<std::int64_t> cumulative(bounds_.size() + 1, 0);
  std::int64_t running = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    cumulative[i] = running;
  }
  return cumulative;
}

double Histogram::quantile(double q) const {
  return stats::histogram_quantile(bounds_, cumulative_counts(), q);
}

std::vector<double> default_latency_buckets_ms() {
  return {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0,
          2.0,  5.0,  10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0};
}

struct Registry::Instrument {
  std::string name;
  std::string labels;
  std::string help;
  Kind kind;
  bool volatile_instrument = false;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

Registry::Registry() = default;
Registry::~Registry() = default;

Registry::Instrument& Registry::get_or_create(const std::string& name,
                                              const Labels& labels,
                                              const std::string& help,
                                              Kind kind,
                                              bool volatile_instrument) {
  GHS_REQUIRE(valid_name(name), "bad metric name '" << name << "'");
  const std::string key = name + label_suffix(labels);
  // Sorted vector keyed by name+labels: lookup is log(n) and iteration
  // order (the export order) is deterministic by construction.
  const auto it = std::lower_bound(
      items_.begin(), items_.end(), key,
      [](const auto& item, const std::string& k) { return item.first < k; });
  if (it != items_.end() && it->first == key) {
    GHS_REQUIRE(it->second->kind == kind,
                "instrument '" << key << "' already registered as "
                               << kind_name(it->second->kind));
    return *it->second;
  }
  auto instrument = std::make_unique<Instrument>();
  instrument->name = name;
  instrument->labels = label_suffix(labels);
  instrument->help = help;
  instrument->kind = kind;
  instrument->volatile_instrument = volatile_instrument;
  return *items_.insert(it, {key, std::move(instrument)})->second;
}

Counter& Registry::counter(const std::string& name, const Labels& labels,
                           const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Instrument& instrument =
      get_or_create(name, labels, help, Kind::kCounter, false);
  if (!instrument.counter) {
    instrument.counter = std::unique_ptr<Counter>(new Counter());
  }
  return *instrument.counter;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels,
                       const std::string& help, bool volatile_instrument) {
  std::lock_guard<std::mutex> lock(mutex_);
  Instrument& instrument =
      get_or_create(name, labels, help, Kind::kGauge, volatile_instrument);
  if (!instrument.gauge) {
    instrument.gauge = std::unique_ptr<Gauge>(new Gauge());
  }
  return *instrument.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds,
                               const Labels& labels,
                               const std::string& help) {
  GHS_REQUIRE(!bounds.empty(), "histogram '" << name << "' without buckets");
  std::lock_guard<std::mutex> lock(mutex_);
  Instrument& instrument =
      get_or_create(name, labels, help, Kind::kHistogram, false);
  if (!instrument.histogram) {
    instrument.histogram =
        std::unique_ptr<Histogram>(new Histogram(std::move(bounds)));
  } else {
    GHS_REQUIRE(instrument.histogram->bounds() == bounds,
                "histogram '" << name << "' re-registered with different "
                              << "buckets");
  }
  return *instrument.histogram;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

void Registry::visit(const std::function<void(const View&)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, instrument] : items_) {
    View view;
    view.name = instrument->name;
    view.labels = instrument->labels;
    view.help = instrument->help;
    view.kind = instrument->kind;
    view.volatile_instrument = instrument->volatile_instrument;
    view.counter = instrument->counter.get();
    view.gauge = instrument->gauge.get();
    view.histogram = instrument->histogram.get();
    fn(view);
  }
}

}  // namespace ghs::telemetry
