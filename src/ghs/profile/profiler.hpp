// Profiler: continuous sim-time sampling of "what is every device doing
// right now", riding the event queue as a chain of self-rescheduling
// events — the same off-by-default, dispatch-order-neutral pattern as
// ghs::timeseries::Scraper (ticks obey (time, seq) order, read-only over
// the Recorder's activity registry, stop themselves when the queue
// drains, finish() covers same-batch stragglers).
//
// Each tick walks the Recorder's registered (node, device) pairs and
// folds the current activity into a stack string
//   node0;gpu;tenant=42;op=C2;gpu.kernel
// (or `node0;gpu;idle`). Three outputs come from the same samples:
//  - write_collapsed(): Brendan Gregg folded-stack lines
//    ("stack count", sorted), directly flamegraph.pl-compatible;
//  - tracks(): per-device Perfetto slice tracks, consecutive same-stack
//    samples coalesced into one slice, for ChromeTraceExporter::
//    add_profile_track;
//  - windowed attribution series: per-tenant / per-op device-busy deltas
//    from the CostLedger written into a Tsdb
//    (ghs_profile_tenant_busy_ps_total{tenant="42"},
//    ghs_profile_op_busy_ps_total{op="C2"}), so metrics_diff.py
//    --series and the timeline report show per-tenant utilization over
//    time.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ghs/profile/recorder.hpp"
#include "ghs/sim/simulator.hpp"
#include "ghs/timeseries/tsdb.hpp"
#include "ghs/trace/chrome_exporter.hpp"

namespace ghs::profile {

struct ProfilerOptions {
  /// Simulated time between samples.
  SimTime interval = kMillisecond;
};

class Profiler {
 public:
  /// The recorder and simulator must outlive the profiler. `store` (may
  /// be null) receives the windowed attribution series.
  Profiler(sim::Simulator& sim, Recorder& recorder, ProfilerOptions options,
           timeseries::Tsdb* store = nullptr);

  /// Baselines the series cursors and schedules the first sample at
  /// sim.now() + interval.
  void start();

  /// Flushes the final series window and takes a trailing sample if sim
  /// time advanced past the last tick. Call after the sim drains.
  void finish();

  std::int64_t samples() const { return samples_; }
  SimTime interval() const { return options_.interval; }

  /// Folded stack -> sample count, sorted by stack.
  const std::map<std::string, std::int64_t>& folded() const {
    return folded_;
  }

  /// Folded-stack lines ("stack count\n", key order) for flamegraph.pl.
  void write_collapsed(std::ostream& os) const;

  /// Per-(node, device) slice tracks from the coalesced sample runs.
  std::vector<trace::ProfileTrack> tracks() const;

 private:
  void on_tick();
  void take_sample();
  void flush_series();
  std::string stack_of(const std::pair<std::int16_t, Device>& key,
                       const DeviceActivity& activity, SimTime now) const;

  struct SliceRun {
    std::string stack;
    SimTime begin = 0;
    SimTime end = 0;
  };

  sim::Simulator& sim_;
  Recorder& recorder_;
  ProfilerOptions options_;
  timeseries::Tsdb* store_;
  std::map<std::string, std::int64_t> folded_;
  /// Open + closed coalesced runs per device, in registration order.
  std::map<std::pair<std::int16_t, Device>, std::vector<SliceRun>> runs_;
  std::map<std::int64_t, SimTime> tenant_cursor_;
  std::map<std::uint8_t, SimTime> op_cursor_;
  std::int64_t samples_ = 0;
  SimTime last_sample_at_ = -1;
  bool started_ = false;
};

}  // namespace ghs::profile
