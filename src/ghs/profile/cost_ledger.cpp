#include "ghs/profile/cost_ledger.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <string>

#include "ghs/util/error.hpp"
#include "ghs/workload/cases.hpp"

namespace ghs::profile {

namespace {

void write_double(std::ostream& os, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  os << buf;
}

double to_ms(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

const char* op_name(std::uint8_t op) {
  return workload::case_spec(static_cast<workload::CaseId>(op)).name;
}

bool is_busy_phase(Device device, Phase phase) {
  if (device == Device::kNone) return false;
  switch (phase) {
    case Phase::kGpuKernel:
    case Phase::kUmMigrate:
    case Phase::kCpuKernel:
    case Phase::kLaunchFailed:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* device_name(Device device) {
  switch (device) {
    case Device::kNone:
      return "none";
    case Device::kGpu:
      return "gpu";
    case Device::kCpu:
      return "cpu";
  }
  return "?";
}

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kQueueWait:
      return "queue.wait";
    case Phase::kGpuKernel:
      return "gpu.kernel";
    case Phase::kUmMigrate:
      return "um.migrate";
    case Phase::kCpuKernel:
      return "cpu.reduce";
    case Phase::kLaunchFailed:
      return "launch.failed";
    case Phase::kRetryBackoff:
      return "retry.backoff";
    case Phase::kTransfer:
      return "interconnect.transfer";
    case Phase::kSteal:
      return "interconnect.steal";
    case Phase::kDrain:
      return "interconnect.drain";
    case Phase::kReplay:
      return "journal.replay";
  }
  return "?";
}

bool ConservationCheck::ok() const {
  const auto close = [](SimTime a, SimTime b) {
    const SimTime diff = a > b ? a - b : b - a;
    return diff <= kToleranceTicks;
  };
  return close(attributed.gpu_busy_ps, telemetry.gpu_busy_ps) &&
         close(attributed.cpu_busy_ps, telemetry.cpu_busy_ps) &&
         attributed.um_bytes == telemetry.um_bytes &&
         attributed.transfer_bytes == telemetry.transfer_bytes &&
         attributed.replay_bytes == telemetry.replay_bytes;
}

std::vector<std::int64_t> split_proportional(
    std::int64_t total, const std::vector<std::int64_t>& weights) {
  std::vector<std::int64_t> shares(weights.size(), 0);
  if (weights.empty()) return shares;
  std::int64_t weight_sum = 0;
  for (const std::int64_t w : weights) {
    GHS_REQUIRE(w >= 0, "negative split weight " << w);
    weight_sum += w;
  }
  // Cumulative rounding: share_i = floor(total * W_i / sum) -
  // floor(total * W_{i-1} / sum). Telescopes to exactly `total`, and every
  // share stays within 1 of the real-valued proportion.
  std::int64_t cumulative = 0;
  std::int64_t charged = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cumulative += weight_sum == 0 ? 1 : weights[i];
    const std::int64_t denom =
        weight_sum == 0 ? static_cast<std::int64_t>(weights.size())
                        : weight_sum;
    const std::int64_t upto = total * cumulative / denom;
    shares[i] = upto - charged;
    charged = upto;
  }
  return shares;
}

void CostLedger::charge_time(const CostKey& key, SimTime time_ps) {
  if (time_ps <= 0) return;
  Cost& cost = entries_[key];
  cost.time_ps += time_ps;
  ++cost.events;
  if (key.device == Device::kGpu) {
    attributed_.gpu_busy_ps += time_ps;
  } else if (key.device == Device::kCpu) {
    attributed_.cpu_busy_ps += time_ps;
  }
  if (is_busy_phase(key.device, key.phase)) {
    tenant_busy_ps_[key.tenant] += time_ps;
    op_busy_ps_[key.op] += time_ps;
  }
}

void CostLedger::charge_bytes(const CostKey& key, Bytes bytes) {
  if (bytes <= 0) return;
  Cost& cost = entries_[key];
  cost.bytes += bytes;
  ++cost.events;
  switch (key.phase) {
    case Phase::kUmMigrate:
      attributed_.um_bytes += bytes;
      break;
    case Phase::kTransfer:
    case Phase::kSteal:
    case Phase::kDrain:
      attributed_.transfer_bytes += bytes;
      break;
    case Phase::kReplay:
      attributed_.replay_bytes += bytes;
      break;
    default:
      break;
  }
}

ConservationCheck CostLedger::check(
    const ConservationTotals& telemetry) const {
  ConservationCheck result;
  result.attributed = attributed_;
  result.telemetry = telemetry;
  return result;
}

void CostLedger::write_json(std::ostream& os,
                            const ConservationTotals& telemetry) const {
  const ConservationCheck conservation = check(telemetry);
  GHS_CHECK(conservation.ok(),
            "cost attribution leaked: attributed gpu="
                << conservation.attributed.gpu_busy_ps
                << "ps cpu=" << conservation.attributed.cpu_busy_ps
                << "ps um=" << conservation.attributed.um_bytes
                << "B xfer=" << conservation.attributed.transfer_bytes
                << "B replay=" << conservation.attributed.replay_bytes
                << "B vs telemetry gpu=" << telemetry.gpu_busy_ps
                << "ps cpu=" << telemetry.cpu_busy_ps
                << "ps um=" << telemetry.um_bytes
                << "B xfer=" << telemetry.transfer_bytes
                << "B replay=" << telemetry.replay_bytes << "B");

  std::vector<std::pair<CostKey, Cost>> sorted(entries_.begin(),
                                               entries_.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              const CostKey& x = a.first;
              const CostKey& y = b.first;
              if (x.tenant != y.tenant) return x.tenant < y.tenant;
              if (x.op != y.op) return x.op < y.op;
              if (x.node != y.node) return x.node < y.node;
              if (x.device != y.device) return x.device < y.device;
              return x.phase < y.phase;
            });

  os << "{\"entries\":[";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const auto& [key, cost] = sorted[i];
    if (i > 0) os << ",";
    os << "{\"tenant\":" << key.tenant << ",\"op\":\"" << op_name(key.op)
       << "\",\"node\":" << key.node << ",\"device\":\""
       << device_name(key.device) << "\",\"phase\":\""
       << phase_name(key.phase) << "\",\"time_ms\":";
    write_double(os, to_ms(cost.time_ps));
    os << ",\"bytes\":" << cost.bytes << ",\"events\":" << cost.events
       << "}";
  }
  os << "],\"totals\":{\"gpu_busy_ms\":";
  write_double(os, to_ms(attributed_.gpu_busy_ps));
  os << ",\"cpu_busy_ms\":";
  write_double(os, to_ms(attributed_.cpu_busy_ps));
  os << ",\"um_bytes\":" << attributed_.um_bytes
     << ",\"transfer_bytes\":" << attributed_.transfer_bytes
     << ",\"replay_bytes\":" << attributed_.replay_bytes
     << "},\"conservation\":{\"gpu_busy_ps\":{\"attributed\":"
     << attributed_.gpu_busy_ps << ",\"telemetry\":" << telemetry.gpu_busy_ps
     << "},\"cpu_busy_ps\":{\"attributed\":" << attributed_.cpu_busy_ps
     << ",\"telemetry\":" << telemetry.cpu_busy_ps
     << "},\"um_bytes\":{\"attributed\":" << attributed_.um_bytes
     << ",\"telemetry\":" << telemetry.um_bytes
     << "},\"transfer_bytes\":{\"attributed\":" << attributed_.transfer_bytes
     << ",\"telemetry\":" << telemetry.transfer_bytes
     << "},\"replay_bytes\":{\"attributed\":" << attributed_.replay_bytes
     << ",\"telemetry\":" << telemetry.replay_bytes << "},\"ok\":"
     << (conservation.ok() ? "true" : "false") << "}}";
}

void CostLedger::write_table(std::ostream& os, std::size_t top_k) const {
  char buf[160];
  const auto print_top = [&](const char* what, const auto& busy,
                             const auto& label_of) {
    std::vector<std::pair<SimTime, std::string>> rows;
    rows.reserve(busy.size());
    for (const auto& [id, time_ps] : busy) {
      rows.emplace_back(time_ps, label_of(id));
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    if (rows.size() > top_k) rows.resize(top_k);
    for (const auto& [time_ps, label] : rows) {
      std::snprintf(buf, sizeof(buf), "  %-8s %-16s busy %10.3fms\n", what,
                    label.c_str(), to_ms(time_ps));
      os << buf;
    }
  };
  std::snprintf(buf, sizeof(buf),
                "cost attribution: gpu %.3fms cpu %.3fms, um %lld B, "
                "interconnect %lld B, replay %lld B\n",
                to_ms(attributed_.gpu_busy_ps),
                to_ms(attributed_.cpu_busy_ps),
                static_cast<long long>(attributed_.um_bytes),
                static_cast<long long>(attributed_.transfer_bytes),
                static_cast<long long>(attributed_.replay_bytes));
  os << buf;
  print_top("tenant", tenant_busy_ps_, [](std::int64_t tenant) {
    return "tenant " + std::to_string(tenant);
  });
  print_top("op", op_busy_ps_,
            [](std::uint8_t op) { return std::string(op_name(op)); });
}

}  // namespace ghs::profile
