#include "ghs/profile/profiler.hpp"

#include <ostream>

#include "ghs/util/error.hpp"
#include "ghs/workload/cases.hpp"

namespace ghs::profile {

namespace {

const char* op_name(std::uint8_t op) {
  return workload::case_spec(static_cast<workload::CaseId>(op)).name;
}

}  // namespace

Profiler::Profiler(sim::Simulator& sim, Recorder& recorder,
                   ProfilerOptions options, timeseries::Tsdb* store)
    : sim_(sim), recorder_(recorder), options_(options), store_(store) {
  GHS_REQUIRE(options_.interval > 0, "profile interval must be positive");
}

void Profiler::start() {
  GHS_REQUIRE(!started_, "profiler started twice");
  started_ = true;
  // Cursor baseline without emission, mirroring Scraper::start(): a ledger
  // carrying charges from a previous run on the same recorder contributes
  // only its future increments to this run's series.
  for (const auto& [tenant, busy] : recorder_.ledger().tenant_busy_ps()) {
    tenant_cursor_[tenant] = busy;
  }
  for (const auto& [op, busy] : recorder_.ledger().op_busy_ps()) {
    op_cursor_[op] = busy;
  }
  last_sample_at_ = sim_.now();
  sim_.schedule_after(options_.interval, [this] { on_tick(); });
}

void Profiler::on_tick() {
  take_sample();
  // Same trailing-tick contract as the scraper: an empty queue means the
  // workload drained inside this interval, so the chain ends and run()
  // terminates; finish() covers same-timestamp stragglers.
  if (!sim_.idle()) {
    sim_.schedule_after(options_.interval, [this] { on_tick(); });
  }
}

void Profiler::finish() {
  if (!started_) return;
  if (sim_.now() > last_sample_at_) {
    // Handlers after the trailing tick advanced sim time; cover the tail
    // with one more full sample.
    take_sample();
  } else {
    // Same-timestamp stragglers can still have charged the ledger after
    // the trailing tick sampled it; flush those deltas without
    // double-counting the instant in the folded stacks.
    flush_series();
  }
}

std::string Profiler::stack_of(const std::pair<std::int16_t, Device>& key,
                               const DeviceActivity& activity,
                               SimTime now) const {
  std::string stack = "node" + std::to_string(key.first);
  stack += ";";
  stack += device_name(key.second);
  if (now < activity.begin || now >= activity.end) {
    stack += ";idle";
    return stack;
  }
  stack += ";tenant=" + std::to_string(activity.tenant);
  stack += ";op=";
  stack += op_name(activity.op);
  stack += ";";
  if (activity.failed) {
    stack += phase_name(Phase::kLaunchFailed);
  } else if (key.second == Device::kCpu) {
    stack += phase_name(Phase::kCpuKernel);
  } else if (activity.unified && now < activity.kernel_begin) {
    stack += phase_name(Phase::kUmMigrate);
  } else {
    stack += phase_name(Phase::kGpuKernel);
  }
  return stack;
}

void Profiler::take_sample() {
  const SimTime now = sim_.now();
  for (const auto& [key, activity] : recorder_.devices()) {
    const std::string stack = stack_of(key, activity, now);
    ++folded_[stack];
    // Each sample labels the interval since the previous tick; coalescing
    // runs of the same stack keeps the slice track linear in state
    // changes, not in samples.
    auto& runs = runs_[key];
    if (!runs.empty() && runs.back().stack == stack &&
        runs.back().end == last_sample_at_) {
      runs.back().end = now;
    } else {
      runs.push_back({stack, last_sample_at_, now});
    }
  }
  ++samples_;
  flush_series();
  last_sample_at_ = now;
}

void Profiler::flush_series() {
  if (store_ == nullptr) return;
  const SimTime at = sim_.now();
  for (const auto& [tenant, busy] : recorder_.ledger().tenant_busy_ps()) {
    auto [it, inserted] = tenant_cursor_.try_emplace(tenant, 0);
    const SimTime delta = busy - it->second;
    it->second = busy;
    store_
        ->series("ghs_profile_tenant_busy_ps_total{tenant=\"" +
                     std::to_string(tenant) + "\"}",
                 timeseries::SeriesKind::kCounterDelta)
        .append(at, static_cast<double>(delta));
  }
  for (const auto& [op, busy] : recorder_.ledger().op_busy_ps()) {
    auto [it, inserted] = op_cursor_.try_emplace(op, 0);
    const SimTime delta = busy - it->second;
    it->second = busy;
    store_
        ->series(std::string("ghs_profile_op_busy_ps_total{op=\"") +
                     op_name(op) + "\"}",
                 timeseries::SeriesKind::kCounterDelta)
        .append(at, static_cast<double>(delta));
  }
}

void Profiler::write_collapsed(std::ostream& os) const {
  for (const auto& [stack, count] : folded_) {
    os << stack << " " << count << "\n";
  }
}

std::vector<trace::ProfileTrack> Profiler::tracks() const {
  std::vector<trace::ProfileTrack> tracks;
  tracks.reserve(runs_.size());
  for (const auto& [key, runs] : runs_) {
    trace::ProfileTrack track;
    track.name = "node" + std::to_string(key.first) + " " +
                 device_name(key.second) + " profile";
    track.slices.reserve(runs.size());
    for (const SliceRun& run : runs) {
      track.slices.push_back({run.stack, run.begin, run.end});
    }
    tracks.push_back(std::move(track));
  }
  return tracks;
}

}  // namespace ghs::profile
