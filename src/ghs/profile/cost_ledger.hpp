// CostLedger: the attribution side of ghs::profile. Every
// resource-consuming interval the serving stack produces — GPU kernel
// time, CPU fallback time, unified-memory migration, queue wait, retry
// backoff, interconnect transfers, journal replays — is charged to a
// (tenant, op, node, device, phase) key as it happens, so an end-of-run
// report can answer "which tenant, op, or node is consuming the hardware".
//
// The ledger is conservation-checked: the attributed device time must
// equal the DevicePool's busy-time totals exactly, and the attributed
// bytes must equal the interconnect + replay + unified-memory byte totals
// the telemetry layer already keeps. check() compares the two sides and
// the loadgens assert it at report time, so a charging-site regression
// fails loudly instead of silently skewing the per-tenant bill.
//
// Charging is integer-exact: a batched launch's service time is split
// across its jobs proportionally to element count with the rounding
// remainder folded in (split_proportional), so per-key charges sum to the
// launch total with zero drift.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <unordered_map>
#include <vector>

#include "ghs/util/units.hpp"

namespace ghs::profile {

/// Processor (or none, for waits) a charge is attributed to. kNone keys
/// never count toward the device-time conservation sums.
enum class Device : std::uint8_t { kNone = 0, kGpu = 1, kCpu = 2 };

const char* device_name(Device device);

/// Closed set of resource-consuming phases. Time phases: kQueueWait,
/// kGpuKernel, kUmMigrate, kCpuKernel, kLaunchFailed, kRetryBackoff.
/// Byte phases: kUmMigrate (managed-buffer migration), kTransfer /
/// kSteal / kDrain (interconnect moves), kReplay (journal replays).
enum class Phase : std::uint8_t {
  kQueueWait = 0,
  kGpuKernel = 1,
  kUmMigrate = 2,
  kCpuKernel = 3,
  kLaunchFailed = 4,
  kRetryBackoff = 5,
  kTransfer = 6,
  kSteal = 7,
  kDrain = 8,
  kReplay = 9,
};

const char* phase_name(Phase phase);

struct CostKey {
  std::int64_t tenant = 0;
  /// workload::CaseId underlying value; rendered via case_spec().name.
  std::uint8_t op = 0;
  std::int16_t node = 0;
  Device device = Device::kNone;
  Phase phase = Phase::kQueueWait;

  bool operator==(const CostKey&) const = default;
};

struct CostKeyHash {
  std::size_t operator()(const CostKey& key) const {
    // splitmix-style fold of the packed key; the ledger's hot path is one
    // lookup per charge, so mixing quality matters at million-job scale.
    std::uint64_t x = static_cast<std::uint64_t>(key.tenant) * 0x9e3779b97f4a7c15ULL;
    x ^= (static_cast<std::uint64_t>(key.op) << 32) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(key.node))
          << 16) |
         (static_cast<std::uint64_t>(key.device) << 8) |
         static_cast<std::uint64_t>(key.phase);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    return static_cast<std::size_t>(x);
  }
};

/// Accumulated charges for one key.
struct Cost {
  SimTime time_ps = 0;
  Bytes bytes = 0;
  /// Charge events folded into this entry (jobs, transfers, retries).
  std::int64_t events = 0;
};

/// Telemetry-side totals the ledger must reconcile against, gathered from
/// DevicePoolStats / cluster counters by the caller.
struct ConservationTotals {
  SimTime gpu_busy_ps = 0;
  SimTime cpu_busy_ps = 0;
  Bytes um_bytes = 0;
  Bytes transfer_bytes = 0;
  Bytes replay_bytes = 0;
};

/// One attributed-vs-telemetry comparison; conservation requires the two
/// sides to agree within kToleranceTicks (one sim-time tick, and bytes
/// exactly).
struct ConservationCheck {
  ConservationTotals attributed;
  ConservationTotals telemetry;
  static constexpr SimTime kToleranceTicks = 1;

  bool ok() const;
};

/// Splits `total` across `weights` proportionally, integer-exact: the
/// shares sum to `total` with the rounding remainder folded into the
/// largest-cumulative positions. Zero-weight inputs split evenly.
std::vector<std::int64_t> split_proportional(
    std::int64_t total, const std::vector<std::int64_t>& weights);

class CostLedger {
 public:
  void charge_time(const CostKey& key, SimTime time_ps);
  void charge_bytes(const CostKey& key, Bytes bytes);

  bool empty() const { return entries_.empty(); }
  const std::unordered_map<CostKey, Cost, CostKeyHash>& entries() const {
    return entries_;
  }

  /// Device-busy time (kGpuKernel/kUmMigrate/kLaunchFailed on the GPU,
  /// kCpuKernel/kLaunchFailed on the CPU) accumulated per tenant / per op,
  /// maintained incrementally for the profiler's windowed series.
  const std::map<std::int64_t, SimTime>& tenant_busy_ps() const {
    return tenant_busy_ps_;
  }
  const std::map<std::uint8_t, SimTime>& op_busy_ps() const {
    return op_busy_ps_;
  }

  ConservationCheck check(const ConservationTotals& telemetry) const;

  /// The "cost_report" JSON object: sorted entries, attributed totals, and
  /// the conservation comparison. GHS_CHECKs conservation — a loadgen that
  /// prints a report with a leaky ledger aborts instead.
  void write_json(std::ostream& os, const ConservationTotals& telemetry) const;

  /// Human top-K summary (per-tenant and per-op device time, stderr).
  void write_table(std::ostream& os, std::size_t top_k) const;

 private:
  std::unordered_map<CostKey, Cost, CostKeyHash> entries_;
  ConservationTotals attributed_;
  std::map<std::int64_t, SimTime> tenant_busy_ps_;
  std::map<std::uint8_t, SimTime> op_busy_ps_;
};

}  // namespace ghs::profile
