#include "ghs/profile/recorder.hpp"

#include "ghs/util/error.hpp"

namespace ghs::profile {

void Recorder::register_device(std::int16_t node, Device device) {
  devices_.try_emplace({node, device});
}

void Recorder::on_launch(const LaunchSample& sample,
                         const std::vector<JobCost>& jobs) {
  GHS_REQUIRE(!jobs.empty(), "launch sample without jobs");
  GHS_REQUIRE(sample.end >= sample.begin, "launch ends before it begins");

  // Queue wait: per-job, device-less (waits never count toward the
  // device-time conservation sums).
  for (const JobCost& job : jobs) {
    const SimTime wait = sample.begin - job.enqueued;
    ledger_.charge_time({job.tenant, job.op, sample.node, Device::kNone,
                         Phase::kQueueWait},
                        wait);
  }

  // Service time: the whole [begin, end) interval occupies the device
  // (DevicePool credits gpu_busy/cpu_busy unconditionally, failures
  // included), so the ledger must charge all of it to keep conservation.
  std::vector<std::int64_t> weights;
  weights.reserve(jobs.size());
  for (const JobCost& job : jobs) weights.push_back(job.elements);

  const auto charge_span = [&](Phase phase, SimTime total) {
    const std::vector<std::int64_t> shares =
        split_proportional(total, weights);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      ledger_.charge_time({jobs[i].tenant, jobs[i].op, sample.node,
                           sample.device, phase},
                          shares[i]);
    }
  };

  const SimTime service = sample.end - sample.begin;
  if (sample.failed) {
    charge_span(Phase::kLaunchFailed, service);
  } else if (sample.device == Device::kCpu) {
    charge_span(Phase::kCpuKernel, service);
  } else {
    const SimTime migrate = sample.kernel_begin - sample.begin;
    GHS_REQUIRE(migrate >= 0 && migrate <= service,
                "kernel_begin outside the launch");
    charge_span(Phase::kUmMigrate, migrate);
    charge_span(Phase::kGpuKernel, service - migrate);
    if (sample.unified) {
      for (const JobCost& job : jobs) {
        ledger_.charge_bytes({job.tenant, job.op, sample.node, sample.device,
                              Phase::kUmMigrate},
                             job.bytes);
      }
    }
  }

  // Activity for the sampling profiler: attribute the launch to its
  // heaviest job (ties keep the earliest, so batches sample
  // deterministically).
  std::size_t heaviest = 0;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    if (jobs[i].elements > jobs[heaviest].elements) heaviest = i;
  }
  DeviceActivity& activity = devices_[{sample.node, sample.device}];
  activity.begin = sample.begin;
  activity.kernel_begin = sample.kernel_begin;
  activity.end = sample.end;
  activity.tenant = jobs[heaviest].tenant;
  activity.op = jobs[heaviest].op;
  activity.unified = sample.unified;
  activity.failed = sample.failed;
}

void Recorder::on_retry_backoff(std::int16_t node, const JobCost& job,
                                SimTime backoff) {
  ledger_.charge_time({job.tenant, job.op, node, Device::kNone,
                       Phase::kRetryBackoff},
                      backoff);
}

void Recorder::on_bytes(std::int16_t node, const JobCost& job, Phase phase,
                        Bytes bytes) {
  ledger_.charge_bytes({job.tenant, job.op, node, Device::kNone, phase},
                       bytes);
}

}  // namespace ghs::profile
