// Recorder: the charging surface ghs::serve and ghs::cluster call into
// when profiling is on. The DevicePool reports every launch (with the
// per-job element weights), the service reports retry backoffs, and the
// cluster reports interconnect transfers / steals / drains / journal
// replays; the recorder turns each into exact CostLedger charges and
// keeps a per-(node, device) activity registry the sampling Profiler
// reads to answer "what is this device doing right now".
//
// All hooks are opt-in through a null pointer (the trace::Tracer /
// telemetry::Sink pattern): with no recorder attached the serving stack
// takes no profiling branches and its outputs stay byte-identical.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "ghs/profile/cost_ledger.hpp"
#include "ghs/util/units.hpp"

namespace ghs::profile {

/// Per-job attribution input for one launch; the caller fills it from
/// serve::Job so the profile module never depends on serve.
struct JobCost {
  std::int64_t tenant = 0;
  /// workload::CaseId underlying value.
  std::uint8_t op = 0;
  std::int64_t elements = 0;
  Bytes bytes = 0;
  /// When the job entered the admission queue (queue-wait charging).
  SimTime enqueued = 0;
};

/// One DevicePool launch, batch-level.
struct LaunchSample {
  std::int16_t node = 0;
  Device device = Device::kGpu;
  SimTime begin = 0;
  /// Kernel start within the launch; > begin only for unified launches
  /// whose managed buffers migrate first. Ignored for CPU launches.
  SimTime kernel_begin = 0;
  SimTime end = 0;
  bool unified = false;
  bool failed = false;
};

/// What a device is doing right now, for the sampling Profiler. The
/// representative tenant/op is the launch's heaviest job (ties keep the
/// earliest), so batch samples attribute to the job that dominates the
/// service time.
struct DeviceActivity {
  SimTime begin = 0;
  SimTime kernel_begin = 0;
  /// The device is busy while sim.now() < end.
  SimTime end = 0;
  std::int64_t tenant = 0;
  std::uint8_t op = 0;
  bool unified = false;
  bool failed = false;
};

class Recorder {
 public:
  /// Announces a device so the profiler samples it (as idle) even before
  /// its first launch. Called from DevicePool construction.
  void register_device(std::int16_t node, Device device);

  /// Charges one launch: queue wait per job, then the service time split
  /// across the batch proportionally to element count — um.migrate +
  /// gpu.kernel for unified GPU launches, gpu.kernel / cpu.reduce
  /// otherwise, launch.failed for faulted launches (whose service time
  /// still occupies the device). Unified successes also charge the jobs'
  /// buffer bytes to um.migrate.
  void on_launch(const LaunchSample& sample, const std::vector<JobCost>& jobs);

  /// Charges a retry's backoff delay (device kNone; wait, not busy time).
  void on_retry_backoff(std::int16_t node, const JobCost& job,
                        SimTime backoff);

  /// Charges interconnect/journal bytes (phase kTransfer/kSteal/kDrain/
  /// kReplay, device kNone).
  void on_bytes(std::int16_t node, const JobCost& job, Phase phase,
                Bytes bytes);

  CostLedger& ledger() { return ledger_; }
  const CostLedger& ledger() const { return ledger_; }

  /// Sorted so the profiler's folded stacks and slice tracks come out in
  /// deterministic (node, device) order.
  const std::map<std::pair<std::int16_t, Device>, DeviceActivity>& devices()
      const {
    return devices_;
  }

 private:
  CostLedger ledger_;
  std::map<std::pair<std::int16_t, Device>, DeviceActivity> devices_;
};

}  // namespace ghs::profile
