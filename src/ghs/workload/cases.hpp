// The paper's four evaluation cases.
//
//   C1: T = R = int32,            M = 1,048,576,000 (~4 GB)
//   C2: T = int8,  R = int64,     M = 4,194,304,000 (~4 GB)
//   C3: T = R = float32,          M = 1,048,576,000 (~4 GB)
//   C4: T = R = float64,          M = 1,048,576,000 (~8 GB)
//
// Timing always uses the paper-scale element counts (the simulator does not
// materialise the data); functional verification runs the same code paths
// over a reduced element count that the host can comfortably hold.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ghs/gpu/config.hpp"
#include "ghs/util/units.hpp"

namespace ghs::workload {

enum class CaseId { kC1, kC2, kC3, kC4 };

struct CaseSpec {
  CaseId id;
  const char* name;          // "C1"
  const char* input_type;    // "int32"
  const char* result_type;   // "int32"
  Bytes element_size;
  std::int64_t paper_elements;
  gpu::CombineClass combine;
  bool floating;
};

const CaseSpec& case_spec(CaseId id);
const std::vector<CaseId>& all_cases();

/// Parses "C1".."C4" (also accepts lowercase).
CaseId parse_case(const std::string& name);

}  // namespace ghs::workload
