// Deterministic input generators.
//
// Patterns are chosen so sums are verifiable and numerically interesting:
//   kOnes       — all ones; the sum equals the element count.
//   kAlternating— +1/-1 (or +1.0/-0.5 for floats) exercising cancellation.
//   kUniform    — small pseudo-random values (ints in [0,16), floats in
//                 [0,1)) from the seeded xoshiro generator.
//   kRamp       — value = index mod 97, giving a closed-form check.
#pragma once

#include <cstdint>
#include <vector>

#include "ghs/util/rng.hpp"

namespace ghs::workload {

enum class Pattern { kOnes, kAlternating, kUniform, kRamp };

const char* pattern_name(Pattern pattern);

/// Generates `count` values of integral or floating type T.
template <typename T>
std::vector<T> generate(Pattern pattern, std::int64_t count,
                        std::uint64_t seed) {
  std::vector<T> out(static_cast<std::size_t>(count));
  Rng rng(seed);
  for (std::int64_t i = 0; i < count; ++i) {
    T value{};
    switch (pattern) {
      case Pattern::kOnes:
        value = T(1);
        break;
      case Pattern::kAlternating:
        if constexpr (std::is_floating_point_v<T>) {
          value = (i % 2 == 0) ? T(1.0) : T(-0.5);
        } else {
          value = (i % 2 == 0) ? T(1) : T(-1);
        }
        break;
      case Pattern::kUniform:
        if constexpr (std::is_floating_point_v<T>) {
          value = static_cast<T>(rng.next_double());
        } else {
          value = static_cast<T>(rng.next_below(16));
        }
        break;
      case Pattern::kRamp:
        value = static_cast<T>(i % 97);
        break;
    }
    out[static_cast<std::size_t>(i)] = value;
  }
  return out;
}

}  // namespace ghs::workload
