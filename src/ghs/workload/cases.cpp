#include "ghs/workload/cases.hpp"

#include <array>

#include "ghs/util/error.hpp"

namespace ghs::workload {

namespace {

constexpr std::int64_t kM32 = 1'048'576'000;  // 1000 * 2^20
constexpr std::int64_t kM8 = 4 * kM32;

constexpr std::array<CaseSpec, 4> kSpecs = {{
    {CaseId::kC1, "C1", "int32", "int32", 4, kM32,
     gpu::CombineClass::kNativeInt, false},
    {CaseId::kC2, "C2", "int8", "int64", 1, kM8,
     gpu::CombineClass::kWideningInt, false},
    {CaseId::kC3, "C3", "float32", "float32", 4, kM32,
     gpu::CombineClass::kFloatCas, true},
    {CaseId::kC4, "C4", "float64", "float64", 8, kM32,
     gpu::CombineClass::kFloatCas, true},
}};

}  // namespace

const CaseSpec& case_spec(CaseId id) {
  return kSpecs[static_cast<std::size_t>(id)];
}

const std::vector<CaseId>& all_cases() {
  static const std::vector<CaseId> cases = {CaseId::kC1, CaseId::kC2,
                                            CaseId::kC3, CaseId::kC4};
  return cases;
}

CaseId parse_case(const std::string& name) {
  for (const auto& spec : kSpecs) {
    std::string lower;
    for (char c : std::string(spec.name)) {
      lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (name == spec.name || name == lower) return spec.id;
  }
  GHS_REQUIRE(false, "unknown case '" << name << "' (expected C1..C4)");
  return CaseId::kC1;
}

}  // namespace ghs::workload
