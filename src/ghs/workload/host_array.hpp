// Typed host arrays with reduction semantics faithful to the paper's four
// cases: C1 accumulates in int32 (wraparound and all), C2 widens int8 into
// int64, C3 accumulates in float32 (so ordering matters), C4 in float64.
// chunked_sum emulates a parallel reduction's partial-sum tree: the range
// is split into `chunks` contiguous pieces, each reduced serially, then
// partials are combined in order — the reassociation a GPU reduction
// performs, letting tests quantify float divergence.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "ghs/util/rng.hpp"
#include "ghs/workload/cases.hpp"
#include "ghs/workload/generator.hpp"

namespace ghs::workload {

/// A reduction result in the case's declared result type, widened for
/// transport (int results in `i`, float results in `d`).
struct SumValue {
  bool floating = false;
  std::int64_t i = 0;
  double d = 0.0;

  static SumValue of_int(std::int64_t v) { return SumValue{false, v, 0.0}; }
  static SumValue of_float(double v) { return SumValue{true, 0, v}; }

  /// Exact equality for int results; relative tolerance for float results.
  bool matches(const SumValue& other, double rel_tol) const;

  std::string to_string() const;
};

class HostArray {
 public:
  static HostArray make(CaseId id, std::int64_t elements, Pattern pattern,
                        std::uint64_t seed);

  CaseId case_id() const { return case_id_; }
  std::int64_t elements() const;
  Bytes bytes() const {
    return elements() * case_spec(case_id_).element_size;
  }

  /// Serial left-to-right reduction in the declared result type.
  SumValue serial_sum() const { return range_sum(0, elements()); }

  /// Serial reduction of [first, last).
  SumValue range_sum(std::int64_t first, std::int64_t last) const;

  /// Parallel-shaped reduction: `chunks` contiguous partials, combined in
  /// chunk order, all in the declared result type.
  SumValue chunked_sum(std::int64_t chunks) const;

  /// Combines two partial results with the case's result-type semantics.
  static SumValue combine(CaseId id, const SumValue& a, const SumValue& b);

 private:
  CaseId case_id_ = CaseId::kC1;
  std::variant<std::vector<std::int32_t>, std::vector<std::int8_t>,
               std::vector<float>, std::vector<double>>
      data_;
};

}  // namespace ghs::workload
