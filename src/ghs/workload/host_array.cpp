#include "ghs/workload/host_array.hpp"

#include <cmath>
#include <sstream>

#include "ghs/util/error.hpp"
#include "ghs/util/math.hpp"

namespace ghs::workload {

namespace {

/// Result-type accumulator per case. C1 deliberately wraps in 32 bits.
template <typename T>
SumValue sum_range(CaseId id, const std::vector<T>& data, std::int64_t first,
                   std::int64_t last) {
  switch (id) {
    case CaseId::kC1: {
      std::int32_t acc = 0;
      for (std::int64_t k = first; k < last; ++k) {
        acc = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(acc) +
            static_cast<std::uint32_t>(data[static_cast<std::size_t>(k)]));
      }
      return SumValue::of_int(acc);
    }
    case CaseId::kC2: {
      std::int64_t acc = 0;
      for (std::int64_t k = first; k < last; ++k) {
        acc += static_cast<std::int64_t>(data[static_cast<std::size_t>(k)]);
      }
      return SumValue::of_int(acc);
    }
    case CaseId::kC3: {
      float acc = 0.0f;
      for (std::int64_t k = first; k < last; ++k) {
        acc += static_cast<float>(data[static_cast<std::size_t>(k)]);
      }
      return SumValue::of_float(acc);
    }
    case CaseId::kC4: {
      double acc = 0.0;
      for (std::int64_t k = first; k < last; ++k) {
        acc += static_cast<double>(data[static_cast<std::size_t>(k)]);
      }
      return SumValue::of_float(acc);
    }
  }
  GHS_UNREACHABLE("bad case id");
}

}  // namespace

bool SumValue::matches(const SumValue& other, double rel_tol) const {
  if (floating != other.floating) return false;
  if (!floating) return i == other.i;
  return relative_difference(d, other.d) <= rel_tol;
}

std::string SumValue::to_string() const {
  std::ostringstream oss;
  if (floating) {
    oss << d;
  } else {
    oss << i;
  }
  return oss.str();
}

HostArray HostArray::make(CaseId id, std::int64_t elements, Pattern pattern,
                          std::uint64_t seed) {
  GHS_REQUIRE(elements > 0, "elements=" << elements);
  HostArray array;
  array.case_id_ = id;
  switch (id) {
    case CaseId::kC1:
      array.data_ = generate<std::int32_t>(pattern, elements, seed);
      break;
    case CaseId::kC2:
      array.data_ = generate<std::int8_t>(pattern, elements, seed);
      break;
    case CaseId::kC3:
      array.data_ = generate<float>(pattern, elements, seed);
      break;
    case CaseId::kC4:
      array.data_ = generate<double>(pattern, elements, seed);
      break;
  }
  return array;
}

std::int64_t HostArray::elements() const {
  return std::visit(
      [](const auto& v) { return static_cast<std::int64_t>(v.size()); },
      data_);
}

SumValue HostArray::range_sum(std::int64_t first, std::int64_t last) const {
  GHS_REQUIRE(first >= 0 && first <= last && last <= elements(),
              "range [" << first << ", " << last << ") of " << elements());
  return std::visit(
      [&](const auto& v) { return sum_range(case_id_, v, first, last); },
      data_);
}

SumValue HostArray::chunked_sum(std::int64_t chunks) const {
  GHS_REQUIRE(chunks > 0, "chunks=" << chunks);
  const std::int64_t n = elements();
  const std::int64_t chunk = ceil_div(n, chunks);
  SumValue acc = case_spec(case_id_).floating ? SumValue::of_float(0.0)
                                              : SumValue::of_int(0);
  for (std::int64_t first = 0; first < n; first += chunk) {
    const std::int64_t last = std::min(n, first + chunk);
    acc = combine(case_id_, acc, range_sum(first, last));
  }
  return acc;
}

SumValue HostArray::combine(CaseId id, const SumValue& a, const SumValue& b) {
  switch (id) {
    case CaseId::kC1: {
      const auto wrapped = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(a.i) + static_cast<std::uint32_t>(b.i));
      return SumValue::of_int(wrapped);
    }
    case CaseId::kC2:
      return SumValue::of_int(a.i + b.i);
    case CaseId::kC3:
      return SumValue::of_float(static_cast<double>(
          static_cast<float>(a.d) + static_cast<float>(b.d)));
    case CaseId::kC4:
      return SumValue::of_float(a.d + b.d);
  }
  GHS_UNREACHABLE("bad case id");
}

}  // namespace ghs::workload
