#include "ghs/workload/generator.hpp"

namespace ghs::workload {

const char* pattern_name(Pattern pattern) {
  switch (pattern) {
    case Pattern::kOnes:
      return "ones";
    case Pattern::kAlternating:
      return "alternating";
    case Pattern::kUniform:
      return "uniform";
    case Pattern::kRamp:
      return "ramp";
  }
  return "?";
}

}  // namespace ghs::workload
