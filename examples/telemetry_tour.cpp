// Telemetry walkthrough: run a small serve workload (with some tenants on
// unified-memory buffers) against one shared metrics registry and flight
// recorder, then show all three views of the same run — the Prometheus
// text exposition, the human instrument table, and the flight recorder's
// black-box event log.
//
//   $ ./examples/telemetry_tour
//   $ ./examples/telemetry_tour --jobs=60 --um-fraction=0.5 --events=30
#include <iostream>

#include "ghs/serve/loadgen.hpp"
#include "ghs/serve/policy.hpp"
#include "ghs/serve/service.hpp"
#include "ghs/telemetry/exporters.hpp"
#include "ghs/telemetry/flight_recorder.hpp"
#include "ghs/telemetry/registry.hpp"
#include "ghs/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace ghs;
  Cli cli("telemetry_tour",
          "one instrumented serve run, three telemetry views");
  const auto* jobs = cli.add_int("jobs", 40, "jobs to submit");
  const auto* rate = cli.add_double("rate", 80000.0, "arrival rate, jobs/s");
  const auto* seed = cli.add_int("seed", 42, "workload seed");
  const auto* um_fraction = cli.add_double(
      "um-fraction", 0.25, "fraction of jobs on unified-memory buffers");
  const auto* events =
      cli.add_int("events", 20, "flight-recorder events to print");
  cli.parse_or_exit(argc, argv);

  // One registry + recorder, shared by every layer through the Sink. A
  // layer that never sees the sink stays uninstrumented — this is the same
  // opt-in pattern `--metrics-out` uses in the bench binaries.
  telemetry::Registry registry;
  telemetry::FlightRecorder flight(static_cast<std::size_t>(*events));
  const telemetry::Sink sink{&registry, &flight};

  serve::ServiceModelOptions model_options;
  model_options.telemetry = sink;
  serve::ServiceModel model(model_options);

  serve::OpenLoopOptions load;
  load.jobs = *jobs;
  load.rate_hz = *rate;
  load.seed = static_cast<std::uint64_t>(*seed);
  load.shape.um_fraction = *um_fraction;

  serve::ServiceOptions options;
  options.telemetry = sink;
  serve::ReductionService service(serve::make_policy("bandwidth", model),
                                  model, options);
  service.submit_all(serve::open_loop_poisson(load));
  service.run();

  std::cout << "=== 1. Prometheus exposition (what a scrape would see) ===\n";
  telemetry::write_prometheus(std::cout, registry);

  std::cout << "\n=== 2. Instrument table (counts, gauges, latency "
               "quantiles) ===\n";
  telemetry::to_table(registry).render(std::cout);

  std::cout << "\n=== 3. Flight recorder (last " << *events
            << " structured events) ===\n";
  flight.dump(std::cout);

  std::cout << "\nThe same registry serialises to JSON with "
               "telemetry::write_json_snapshot; same-seed runs produce "
               "byte-identical snapshots (see scripts/metrics_diff.py).\n";
  return 0;
}
