// Heterogeneous split planner: the Section IV decision, packaged. Given a
// case, sweep the CPU fraction p under both allocation sites in unified-
// memory mode and report (a) the best CPU/GPU split, (b) how much
// co-execution gains over GPU-only, and (c) whether allocating once (A1)
// or per-use (A2) is the right call for this workload.
//
//   $ ./examples/hetero_split_planner --case=C1 --iters=100
#include <cstdio>

#include "ghs/core/sweep.hpp"
#include "ghs/util/cli.hpp"

namespace {

struct SiteOutcome {
  double best_bw = 0.0;
  double best_p = 0.0;
  double gpu_only = 0.0;
  double cpu_only = 0.0;
};

SiteOutcome run_site(ghs::workload::CaseId case_id, ghs::core::AllocSite site,
                     int iters) {
  ghs::core::UmSweepOptions opts;
  opts.site = site;
  opts.optimized = true;
  opts.iterations = iters;
  const auto result = ghs::core::um_sweep_case(case_id, opts);
  SiteOutcome outcome;
  outcome.gpu_only = result.at(0.0).bandwidth.gbps();
  outcome.cpu_only = result.at(1.0).bandwidth.gbps();
  for (const auto& point : result.points) {
    if (point.bandwidth.gbps() > outcome.best_bw) {
      outcome.best_bw = point.bandwidth.gbps();
      outcome.best_p = point.cpu_part;
    }
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ghs;
  Cli cli("hetero_split_planner",
          "plan the CPU/GPU split for a UM-mode reduction");
  const auto* case_name = cli.add_string("case", "C1", "C1|C2|C3|C4");
  const auto* iters =
      cli.add_int("iters", 100, "repetitions per point (paper: 200)");
  cli.parse_or_exit(argc, argv);

  const auto case_id = workload::parse_case(*case_name);
  const auto& spec = workload::case_spec(case_id);
  std::printf("planning CPU/GPU split for %s (%s) in UM mode...\n",
              spec.name, spec.input_type);

  const auto a1 = run_site(case_id, core::AllocSite::kA1,
                           static_cast<int>(*iters));
  const auto a2 = run_site(case_id, core::AllocSite::kA2,
                           static_cast<int>(*iters));

  std::printf("\n  site  GPU-only   CPU-only   best co-run   at p\n");
  std::printf("  A1   %8.1f   %8.1f   %11.1f   %.1f\n", a1.gpu_only,
              a1.cpu_only, a1.best_bw, a1.best_p);
  std::printf("  A2   %8.1f   %8.1f   %11.1f   %.1f\n", a2.gpu_only,
              a2.cpu_only, a2.best_bw, a2.best_p);

  const auto& better = a1.best_bw >= a2.best_bw ? a1 : a2;
  const char* site = a1.best_bw >= a2.best_bw ? "A1" : "A2";
  std::printf("\nadvice:\n");
  std::printf("  allocate the array %s and give the CPU %.0f%% of the "
              "elements:\n",
              a1.best_bw >= a2.best_bw
                  ? "once, before the processing loop (A1)"
                  : "per use (A2)",
              better.best_p * 100.0);
  std::printf("  -> %.1f GB/s, %.3fx over offloading everything to the "
              "GPU (%s)\n",
              better.best_bw, better.best_bw / better.gpu_only, site);
  if (a1.cpu_only < a2.cpu_only) {
    std::printf("  note: with A1 a later CPU-only phase would run %.3fx "
                "slower (pages stranded in HBM)\n",
                a2.cpu_only / a1.cpu_only);
  }
  return 0;
}
