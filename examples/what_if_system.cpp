// What-if system explorer: the simulator as a design tool. Rebuilds the
// platform with modified hardware parameters — a narrower NVLink-C2C, a
// future faster HBM, a bigger Grace socket — and reruns the paper's
// headline experiments to see which conclusions survive the change.
//
//   $ ./examples/what_if_system
#include <cstdio>

#include "ghs/core/sweep.hpp"

namespace {

using namespace ghs;

struct Headline {
  double optimized_gbps = 0.0;
  double best_corun_speedup = 0.0;  // optimized, A1, over GPU-only
};

Headline run(const core::SystemConfig& config) {
  Headline h;
  {
    core::Platform platform(config);
    core::GpuBenchmark bench;
    bench.case_id = workload::CaseId::kC1;
    bench.tuning = core::paper_best_tuning(workload::CaseId::kC1);
    bench.iterations = 10;
    h.optimized_gbps =
        core::run_gpu_benchmark(platform, bench).bandwidth.gbps();
  }
  {
    core::UmSweepOptions opts;
    opts.optimized = true;
    opts.iterations = 100;
    opts.config = config;
    const auto sweep = core::um_sweep_case(workload::CaseId::kC1, opts);
    h.best_corun_speedup = sweep.best_speedup_over_gpu_only();
  }
  return h;
}

}  // namespace

int main() {
  struct Variant {
    const char* name;
    core::SystemConfig config;
  };
  Variant variants[] = {
      {"GH200 testbed (paper)", core::gh200_config()},
      {"half-rate C2C (225 GB/s/dir)", core::gh200_config()},
      {"HBM4-class GPU (6.5 TB/s)", core::gh200_config()},
      {"double CPU memory (1 TB/s LPDDR)", core::gh200_config()},
      {"fast UM faults (60 GB/s)", core::gh200_config()},
  };
  variants[1].config.topology.c2c_per_direction_bw =
      Bandwidth::from_gbps(225.0);
  variants[2].config.topology.hbm_bw = Bandwidth::from_gbps(6500.0);
  variants[3].config.topology.lpddr_bw = Bandwidth::from_gbps(1000.0);
  variants[3].config.cpu.aggregate_local_bw = Bandwidth::from_gbps(960.0);
  variants[3].config.cpu.socket_stream_bw = Bandwidth::from_gbps(1040.0);
  variants[4].config.um.fault_migration_bw = Bandwidth::from_gbps(60.0);

  std::printf("%-36s %18s %22s\n", "system variant", "opt C1 (GB/s)",
              "best co-run speedup");
  for (const auto& variant : variants) {
    const auto h = run(variant.config);
    std::printf("%-36s %18.1f %22.3f\n", variant.name, h.optimized_gbps,
                h.best_corun_speedup);
  }
  std::printf("\nreading: the co-run win shrinks as UM faults get faster "
              "(the GPU-only reference improves), and grows with CPU "
              "memory bandwidth — the paper's conclusion is sensitive to "
              "exactly these two parameters.\n");
  return 0;
}
