// Autotuner: the workflow the paper's Section III automates by hand.
// Given a case and an input size, sweep the (teams, V) parameter space on
// the simulated GPU and report the best configuration, the heuristic
// baseline, and the resulting advice — exactly what a user would do before
// hard-coding num_teams/thread_limit clauses into an application.
//
//   $ ./examples/autotune --case=C2 --elements=100000000
//   $ ./examples/autotune --case=C1 --exhaustive   # the paper's full sweep
#include <cstdio>

#include "ghs/core/sweep.hpp"
#include "ghs/core/tuner.hpp"
#include "ghs/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace ghs;
  Cli cli("autotune", "find the best (teams, V) for a reduction");
  const auto* case_name = cli.add_string("case", "C1", "C1|C2|C3|C4");
  const auto* elements =
      cli.add_int("elements", 0, "input elements (0 = the paper's M)");
  const auto* iters = cli.add_int("iters", 5, "repetitions per point");
  const auto* exhaustive = cli.add_flag(
      "exhaustive", "use the paper's full sweep instead of hill climbing");
  cli.parse_or_exit(argc, argv);

  const auto case_id = workload::parse_case(*case_name);
  const auto& spec = workload::case_spec(case_id);

  core::SweepOptions sweep;
  sweep.elements = *elements;
  sweep.iterations = static_cast<int>(*iters);

  std::printf("autotuning %s (%s -> %s)...\n", spec.name, spec.input_type,
              spec.result_type);

  core::Table1Row row;
  if (*exhaustive) {
    row = core::table1({case_id}, sweep).front();
    std::printf("  exhaustive sweep over %zu x %zu lattice points\n",
                sweep.teams.size(), sweep.vs.size());
  } else {
    core::TunerOptions tuner_options;
    tuner_options.elements = *elements;
    tuner_options.iterations = static_cast<int>(*iters);
    const auto tuned = core::tune_reduction(case_id, tuner_options);
    std::printf("  hill climb converged after %zu probes (the paper's "
                "sweep uses 61)\n",
                tuned.evaluations());
    // Baseline for the speedup report.
    core::Platform platform;
    core::GpuBenchmark baseline;
    baseline.case_id = case_id;
    baseline.elements = *elements;
    baseline.iterations = static_cast<int>(*iters);
    row.baseline_gbps =
        core::run_gpu_benchmark(platform, baseline).bandwidth.gbps();
    row.optimized_gbps = tuned.best_gbps;
    row.best = tuned.best;
    row.speedup = row.optimized_gbps / row.baseline_gbps;
  }

  std::printf("  heuristic baseline : %8.1f GB/s\n", row.baseline_gbps);
  std::printf("  best configuration : %8.1f GB/s at num_teams(%lld/%d), "
              "thread_limit(256), V=%d\n",
              row.optimized_gbps,
              static_cast<long long>(row.best.teams), row.best.v,
              row.best.v);
  std::printf("  speedup            : %8.3fx\n", row.speedup);
  std::printf("\nsuggested directive:\n");
  std::printf("  #pragma omp target teams distribute parallel for \\\n");
  std::printf("      num_teams(%lld) thread_limit(%d) reduction(+:sum)\n",
              static_cast<long long>(row.best.teams / row.best.v),
              row.best.thread_limit);
  std::printf("  // with %d elements accumulated per loop iteration\n",
              row.best.v);
  return 0;
}
