// Fleet walkthrough: four simulated GH200 nodes behind a router absorb a
// mid-run GPU outage on one of them. Tenant-sticky routing keeps feeding
// the sick node until its GPU circuit breaker opens; the cluster then
// steals its queued jobs and re-homes them on healthy peers (paying the
// inter-node transfer), while the node itself limps along on its Grace
// CPU. Every job still ends served, rejected, or shed — the fleet loses
// nothing.
//
//   $ ./examples/cluster_tour
//   $ ./examples/cluster_tour --router=p2c --down-from-us=300
#include <cstdio>
#include <string>
#include <vector>

#include "ghs/cluster/cluster.hpp"
#include "ghs/cluster/ring.hpp"
#include "ghs/fault/injector.hpp"
#include "ghs/fault/plan.hpp"
#include "ghs/serve/loadgen.hpp"
#include "ghs/util/cli.hpp"

namespace {

using namespace ghs;

double to_ms(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

void print_report(const char* label, const cluster::ClusterReport& r) {
  std::printf("%s\n", label);
  std::printf("  served %lld/%lld  rejected %lld  shed %lld  "
              "p50 %.3f ms  p99 %.3f ms\n",
              static_cast<long long>(r.served),
              static_cast<long long>(r.submitted),
              static_cast<long long>(r.rejected),
              static_cast<long long>(r.shed), r.latency.pct.p50,
              r.latency.pct.p99);
  std::printf("  throughput %.1f jobs/s (%.1f GB/s)  remote %lld  "
              "transfers %lld (%.3f GB)\n",
              r.throughput_jobs_per_s, r.throughput_gbps,
              static_cast<long long>(r.remote_jobs),
              static_cast<long long>(r.transfers), r.transfer_gb);
  std::printf("  spills %lld (saved %lld)  steals %lld (moved %lld jobs)  "
              "imbalance %.3f\n  routed:",
              static_cast<long long>(r.spills),
              static_cast<long long>(r.spilled_saved),
              static_cast<long long>(r.steals),
              static_cast<long long>(r.stolen_jobs), r.imbalance);
  for (std::size_t n = 0; n < r.routed.size(); ++n) {
    std::printf(" node%zu=%lld", n, static_cast<long long>(r.routed[n]));
  }
  std::printf("\n");
}

std::vector<serve::Job> make_workload(const cluster::Cluster& fleet,
                                      std::uint64_t seed, std::int64_t jobs,
                                      double rate_hz, std::uint64_t tenants) {
  serve::OpenLoopOptions load;
  load.jobs = jobs;
  load.rate_hz = rate_hz;
  load.seed = seed;
  auto out = serve::open_loop_poisson(load);
  // Tenants hash off the job id; each tenant's data lives where the
  // placement ring puts it, so hash routing is transfer-free while
  // load-aware routers pay for the locality they give up.
  for (auto& job : out) {
    job.tenant = static_cast<std::int64_t>(
        cluster::mix64(static_cast<std::uint64_t>(job.id)) % tenants);
    job.source_node =
        fleet.router().ring().owner(static_cast<std::uint64_t>(job.tenant));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("cluster_tour",
          "a 4-node GH200 fleet absorbing a one-node GPU outage");
  const auto* nodes = cli.add_int("nodes", 4, "fleet size");
  const auto* router_name =
      cli.add_string("router", "hash", "hash | least | p2c");
  const auto* jobs = cli.add_int("jobs", 400, "jobs to submit");
  const auto* rate =
      cli.add_double("rate", 120000.0, "arrival rate per node, jobs/s");
  const auto* tenants = cli.add_int("tenants", 64, "distinct tenants");
  const auto* seed = cli.add_int("seed", 42, "workload seed");
  const auto* fault_node = cli.add_int("fault-node", 1, "node that fails");
  const auto* down_from_us =
      cli.add_int("down-from-us", 200, "outage start, microseconds");
  const auto* down_until_us =
      cli.add_int("down-until-us", 1500, "outage end, microseconds");
  cli.parse_or_exit(argc, argv);

  cluster::ClusterOptions options;
  options.nodes = static_cast<int>(*nodes);
  options.router = cluster::parse_router_policy(*router_name);
  options.fault_node = static_cast<int>(*fault_node);
  options.node.queue_depth = 256;
  const double total_rate = *rate * static_cast<double>(*nodes);

  serve::ServiceModel model;

  std::printf("%lld mixed reductions at %.0f jobs/s across %lld nodes "
              "(%s router);\nnode %lld's H100 down from %.3f ms to %.3f "
              "ms\n\n",
              static_cast<long long>(*jobs), total_rate,
              static_cast<long long>(*nodes), router_name->c_str(),
              static_cast<long long>(*fault_node),
              to_ms(*down_from_us * kMicrosecond),
              to_ms(*down_until_us * kMicrosecond));

  // Healthy fleet first: the baseline the outage run is judged against.
  {
    cluster::Cluster fleet(model, options);
    fleet.submit_all(
        make_workload(fleet, static_cast<std::uint64_t>(*seed), *jobs,
                      total_rate, static_cast<std::uint64_t>(*tenants)));
    fleet.run();
    print_report("fault-free fleet:", fleet.report());
  }
  std::printf("\n");

  fault::FaultPlan plan;
  fault::OutageWindow outage;
  outage.target = fault::Target::kGpu;
  outage.window.begin = *down_from_us * kMicrosecond;
  outage.window.end = *down_until_us * kMicrosecond;
  plan.outages.push_back(outage);
  fault::Injector injector(plan, 7, {});
  options.node.injector = &injector;  // attached to fault_node only

  cluster::Cluster fleet(model, options);
  fleet.submit_all(make_workload(fleet, static_cast<std::uint64_t>(*seed),
                                 *jobs, total_rate,
                                 static_cast<std::uint64_t>(*tenants)));
  fleet.run();
  const auto report = fleet.report();
  print_report("same workload through the outage:", report);

  std::printf("\nwhat the sick node did vs its rescuers:\n");
  for (std::size_t n = 0; n < report.node_reports.size(); ++n) {
    const auto& node = report.node_reports[n];
    std::printf("  node %zu%s: served %lld (gpu %lld, cpu %lld)",
                n, static_cast<int>(n) == *fault_node ? " [faulted]" : "",
                static_cast<long long>(node.served),
                static_cast<long long>(node.gpu_jobs),
                static_cast<long long>(node.cpu_jobs));
    if (node.fault_aware) {
      std::printf("  failures %lld  breaker opens %lld",
                  static_cast<long long>(node.gpu_failures),
                  static_cast<long long>(node.breaker_opens));
    }
    std::printf("\n");
  }

  std::int64_t stolen_served = 0;
  for (const auto& record : fleet.records()) {
    if (record.stolen && record.node != *fault_node) ++stolen_served;
  }
  std::printf("\nevery job is accounted for: %lld submitted = %lld served "
              "+ %lld rejected + %lld shed\n",
              static_cast<long long>(report.submitted),
              static_cast<long long>(report.served),
              static_cast<long long>(report.rejected),
              static_cast<long long>(report.shed));
  std::printf("when node %lld's breaker opened the fleet stole its queue: "
              "%lld jobs moved, %lld of them\nserved by healthy peers "
              "(each paying the NVLink transfer from the sick node).\n",
              static_cast<long long>(*fault_node),
              static_cast<long long>(report.stolen_jobs),
              static_cast<long long>(stolen_served));
  return 0;
}
