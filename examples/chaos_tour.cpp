// Chaos walkthrough: knock the simulated H100 offline mid-run and watch
// the serving layer heal itself. A device-down window fails every GPU
// launch inside it; after a few consecutive failures the GPU circuit
// breaker opens, queued jobs fall back to the Grace CPU, failed jobs
// retry with backoff, and once the outage lifts a half-open probe closes
// the breaker and throughput recovers.
//
//   $ ./examples/chaos_tour
//   $ ./examples/chaos_tour --down-from-us=800 --down-until-us=3000
#include <cstdio>
#include <string>

#include "ghs/fault/injector.hpp"
#include "ghs/fault/plan.hpp"
#include "ghs/serve/loadgen.hpp"
#include "ghs/serve/policy.hpp"
#include "ghs/serve/service.hpp"
#include "ghs/telemetry/flight_recorder.hpp"
#include "ghs/util/cli.hpp"

namespace {

using namespace ghs;

double to_ms(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

void print_report(const char* label, const serve::ServiceReport& r) {
  std::printf("%s\n", label);
  std::printf("  served %lld/%lld  rejected %lld  shed %lld  "
              "p50 %.3f ms  p99 %.3f ms\n",
              static_cast<long long>(r.served),
              static_cast<long long>(r.submitted),
              static_cast<long long>(r.rejected),
              static_cast<long long>(r.shed), r.latency.pct.p50,
              r.latency.pct.p99);
  std::printf("  throughput %.1f jobs/s (%.1f GB/s)  GPU:CPU jobs %lld:%lld\n",
              r.throughput_jobs_per_s, r.throughput_gbps,
              static_cast<long long>(r.gpu_jobs),
              static_cast<long long>(r.cpu_jobs));
  if (r.fault_aware) {
    std::printf("  gpu launch failures %lld  retries %lld  breaker opens "
                "%lld  cpu-fallback jobs %lld\n",
                static_cast<long long>(r.gpu_failures),
                static_cast<long long>(r.retries),
                static_cast<long long>(r.breaker_opens),
                static_cast<long long>(r.fallback_cpu_jobs));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("chaos_tour",
          "mid-run GPU outage vs the self-healing serving layer");
  const auto* jobs = cli.add_int("jobs", 150, "jobs to submit");
  const auto* rate = cli.add_double("rate", 100000.0, "arrival rate, jobs/s");
  const auto* seed = cli.add_int("seed", 42, "workload seed");
  const auto* fault_seed = cli.add_int("fault-seed", 7, "injector seed");
  const auto* down_from_us =
      cli.add_int("down-from-us", 500, "outage start, microseconds");
  const auto* down_until_us =
      cli.add_int("down-until-us", 2000, "outage end, microseconds");
  cli.parse_or_exit(argc, argv);

  serve::OpenLoopOptions load;
  load.jobs = *jobs;
  load.rate_hz = *rate;
  load.seed = static_cast<std::uint64_t>(*seed);
  const auto workload = serve::open_loop_poisson(load);

  fault::FaultPlan plan;
  fault::OutageWindow outage;
  outage.target = fault::Target::kGpu;
  outage.window.begin = *down_from_us * kMicrosecond;
  outage.window.end = *down_until_us * kMicrosecond;
  plan.outages.push_back(outage);

  std::printf("%lld mixed reductions at %.0f jobs/s; H100 down from "
              "%.3f ms to %.3f ms\n\n",
              static_cast<long long>(*jobs), *rate,
              to_ms(outage.window.begin), to_ms(outage.window.end));

  serve::ServiceModel model;

  // Healthy baseline first, then the same workload through the outage.
  {
    serve::ReductionService service(serve::make_policy("fifo", model), model);
    service.submit_all(workload);
    service.run();
    print_report("fault-free baseline (fifo):", service.report());
  }
  std::printf("\n");

  telemetry::FlightRecorder flight;
  fault::Injector injector(plan,
                           static_cast<std::uint64_t>(*fault_seed),
                           {nullptr, &flight});
  serve::ServiceOptions options;
  options.telemetry.flight = &flight;
  options.injector = &injector;
  serve::ReductionService service(serve::make_policy("fifo", model), model,
                                  options);
  service.submit_all(workload);
  service.run();
  print_report("same workload through the outage:", service.report());

  std::printf("\nbreaker transitions and recovery events:\n");
  for (const auto& event : flight.events()) {
    if (event.kind == "breaker" || event.kind == "fallback" ||
        event.kind == "shed") {
      std::printf("  [%9.3f ms] %-8s %s\n", to_ms(event.at),
                  event.kind.c_str(), event.detail.c_str());
    }
  }

  const auto report = service.report();
  std::printf("\nevery job is accounted for: %lld submitted = %lld served "
              "+ %lld rejected + %lld shed\n",
              static_cast<long long>(report.submitted),
              static_cast<long long>(report.served),
              static_cast<long long>(report.rejected),
              static_cast<long long>(report.shed));
  std::printf("while the breaker was open the Grace CPU kept the queue "
              "draining (%lld fallback jobs);\nafter the outage the next "
              "half-open probe reopens the GPU path (final breaker state: "
              "%s).\n",
              static_cast<long long>(report.fallback_cpu_jobs),
              fault::breaker_state_name(
                  service.breaker(serve::Placement::kGpu).state()));
  return 0;
}
