// Quickstart: simulate the paper's optimized sum reduction on the GH200
// model, print the achieved bandwidth, and functionally verify the
// reduction semantics on real data.
//
//   $ ./examples/quickstart
//
// Walkthrough:
//   1. Boot a simulated Grace-Hopper Platform (GH200 preset).
//   2. Run the Listing 6 benchmark protocol for case C1 (int32) with the
//      paper's best tuning (teams 65536, thread_limit 256, V = 4).
//   3. Compare against the untuned baseline (runtime-heuristic grid).
//   4. Verify on host data that the parallel reduction computes the same
//      sum as a serial loop.
#include <cstdio>

#include "ghs/core/reduce.hpp"
#include "ghs/core/verify.hpp"

int main() {
  using namespace ghs;
  const auto case_id = workload::CaseId::kC1;
  const auto& spec = workload::case_spec(case_id);

  // --- 2. optimized reduction -------------------------------------------
  core::Platform optimized_platform;  // fresh simulated GH200
  core::GpuBenchmark optimized;
  optimized.case_id = case_id;
  optimized.tuning = core::paper_best_tuning(case_id);
  optimized.iterations = 20;
  const auto opt = core::run_gpu_benchmark(optimized_platform, optimized);

  // --- 3. baseline ---------------------------------------------------------
  core::Platform baseline_platform;
  core::GpuBenchmark baseline;
  baseline.case_id = case_id;
  baseline.iterations = 20;
  const auto base = core::run_gpu_benchmark(baseline_platform, baseline);

  std::printf("case %s (%s -> %s), M = %lld elements\n", spec.name,
              spec.input_type, spec.result_type,
              static_cast<long long>(spec.paper_elements));
  std::printf("  baseline  : %8.1f GB/s (runtime-heuristic grid)\n",
              base.bandwidth.gbps());
  std::printf("  optimized : %8.1f GB/s (teams=%lld, thread_limit=%d, "
              "V=%d)\n",
              opt.bandwidth.gbps(),
              static_cast<long long>(optimized.tuning->teams),
              optimized.tuning->thread_limit, optimized.tuning->v);
  std::printf("  speedup   : %8.3fx\n",
              opt.bandwidth.gbps() / base.bandwidth.gbps());
  std::printf("  efficiency: %8.1f%% of the 4022.7 GB/s peak\n",
              100.0 * opt.bandwidth.gbps() / 4022.7);

  // --- 4. functional verification ----------------------------------------
  const auto input = workload::HostArray::make(
      case_id, 1 << 20, workload::Pattern::kUniform, /*seed=*/2024);
  const auto report = core::verify_gpu_reduction(
      input, /*chunks=*/65536 / 4, core::default_tolerance(case_id));
  std::printf("  verify    : serial=%s parallel=%s -> %s\n",
              report.reference.to_string().c_str(),
              report.parallel.to_string().c_str(),
              report.ok ? "OK" : "MISMATCH");
  return report.ok ? 0 : 1;
}
