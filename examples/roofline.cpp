// Roofline-style view of the simulated H100's reduction performance: for
// each case, the latency-bound slope (bandwidth vs concurrency, from the
// warp-MLP model) against the DRAM ceiling, with the paper's baseline and
// optimized operating points marked. Rendered with the ASCII chart.
//
//   $ ./examples/roofline --case=C2
#include <cstdio>
#include <iostream>

#include "ghs/core/sweep.hpp"
#include "ghs/gpu/occupancy.hpp"
#include "ghs/stats/chart.hpp"
#include "ghs/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace ghs;
  Cli cli("roofline", "latency slope vs DRAM ceiling for a case");
  const auto* case_name = cli.add_string("case", "C1", "C1|C2|C3|C4");
  cli.parse_or_exit(argc, argv);
  const auto case_id = workload::parse_case(*case_name);
  const auto& spec = workload::case_spec(case_id);

  const core::SystemConfig config = core::gh200_config();
  const auto tuning = core::paper_best_tuning(case_id);
  const double ceiling = config.gpu.stream_efficiency(spec.element_size) *
                         config.topology.hbm_bw.gbps();
  const double cta_gbps =
      gpu::cta_rate_cap(config.gpu, tuning.thread_limit, tuning.v,
                        spec.element_size) /
      1e9;

  stats::Figure figure(std::string("roofline, ") + spec.name +
                           " (teams axis, thread_limit 256)",
                       "teams", "GB/s");
  auto& slope = figure.add_series("MLP slope");
  auto& roof = figure.add_series("DRAM roof");
  auto& measured = figure.add_series("simulated");
  for (std::int64_t teams = 128; teams <= 65536; teams *= 2) {
    const double concurrency_bound =
        static_cast<double>(teams / tuning.v) * cta_gbps;
    slope.add(static_cast<double>(teams),
              std::min(concurrency_bound, ceiling * 1.15));
    roof.add(static_cast<double>(teams), ceiling);

    core::Platform platform(config);
    core::GpuBenchmark bench;
    bench.case_id = case_id;
    bench.tuning = core::ReduceTuning{teams, tuning.thread_limit, tuning.v};
    bench.iterations = 3;
    bench.elements = 1 << 26;
    measured.add(static_cast<double>(teams),
                 core::run_gpu_benchmark(platform, bench).bandwidth.gbps());
  }

  stats::ChartOptions options;
  options.log_x = true;
  stats::render_chart(figure, std::cout, options);
  std::printf("\nknee: teams ~ %.0f (x V) where the MLP slope meets the "
              "%.0f GB/s roof; per-CTA cap %.2f GB/s\n",
              ceiling / cta_gbps * tuning.v, ceiling, cta_gbps);
  std::printf("paper operating point: teams=65536, V=%d -> on the roof\n",
              tuning.v);
  return 0;
}
