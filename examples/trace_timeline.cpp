// Timeline capture: run a co-executed reduction with tracing enabled and
// write a Chrome trace-event JSON you can open in chrome://tracing or
// https://ui.perfetto.dev — the simulator's answer to an Nsight Systems
// capture. The timeline makes the UM warm-up visible: the first kernel's
// long fault-migration wave, then the steady-state alternation of GPU
// kernels and CPU reduction slices inside each parallel region.
//
//   $ ./examples/trace_timeline --out=timeline.json
#include <cstdio>
#include <fstream>

#include "ghs/core/reduce.hpp"
#include "ghs/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace ghs;
  Cli cli("trace_timeline", "capture a co-execution timeline as JSON");
  const auto* out_path = cli.add_string("out", "timeline.json",
                                        "output file (Chrome trace JSON)");
  const auto* p = cli.add_double("p", 0.3, "CPU fraction of the reduction");
  cli.parse_or_exit(argc, argv);

  core::Platform platform;
  auto& tracer = platform.enable_tracing();

  core::HeteroBenchmark bench;
  bench.case_id = workload::CaseId::kC1;
  bench.tuning = core::paper_best_tuning(bench.case_id);
  bench.cpu_parts = {*p};
  bench.elements = 1 << 26;  // 64 M elements keep the trace readable
  bench.iterations = 8;
  const auto result = core::run_hetero_benchmark(platform, bench);

  std::ofstream out(*out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open '%s' for writing\n",
                 out_path->c_str());
    return 1;
  }
  tracer.write_chrome_json(out);

  std::printf("co-ran %d iterations at p=%.1f: %.1f GB/s\n",
              bench.iterations, *p, result.points[0].bandwidth.gbps());
  std::printf("wrote %zu trace events to %s\n", tracer.size(),
              out_path->c_str());
  std::printf("open chrome://tracing or https://ui.perfetto.dev and load "
              "the file\n");
  return 0;
}
