// SLO walkthrough: put the serving layer under chaos, judge every request
// against declarative objectives, and watch the multi-window burn-rate
// alerts fire. Two objectives guard the run — three-nines availability
// (rejected or shed jobs burn the budget) and a p99 latency bound — and
// each is watched by the sim-time analogues of the SRE workbook's paging
// rules: a fast 250us+1ms pair at 14.4x burn, a slow 1ms+5ms pair at 1x.
//
//   $ ./examples/slo_tour
//   $ ./examples/slo_tour --latency-ms=0.5 --down-from-us=800
#include <cstdio>
#include <sstream>
#include <string>

#include "ghs/fault/injector.hpp"
#include "ghs/fault/plan.hpp"
#include "ghs/serve/loadgen.hpp"
#include "ghs/serve/policy.hpp"
#include "ghs/serve/service.hpp"
#include "ghs/slo/monitor.hpp"
#include "ghs/util/cli.hpp"

namespace {

using namespace ghs;

double to_ms(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

void print_objective(const slo::ObjectiveReport& obj) {
  std::printf("objective %-12s (%s, target %.3f%s)\n", obj.name.c_str(),
              slo::objective_kind_name(obj.kind), obj.target,
              obj.kind == slo::ObjectiveKind::kLatencyQuantile
                  ? (" @ " + std::to_string(obj.threshold_ms) + " ms").c_str()
                  : "");
  std::printf("  %lld samples: %lld good, %lld bad -> compliance %.4f "
              "(%s)\n",
              static_cast<long long>(obj.samples),
              static_cast<long long>(obj.good),
              static_cast<long long>(obj.bad), obj.compliance,
              obj.met ? "SLO met" : "SLO MISSED");
  std::printf("  whole-run budget burn %.2fx\n", obj.budget_burn);
  for (const auto& rule : obj.burn) {
    std::printf("  %-5s rule (%.2f ms + %.2f ms @ %.1fx): peak burn "
                "%.2fx, %lld alert(s)",
                rule.severity.c_str(), to_ms(rule.long_window),
                to_ms(rule.short_window), rule.threshold, rule.peak_burn,
                static_cast<long long>(rule.alerts));
    if (rule.first_alert >= 0) {
      std::printf(", first at %.3f ms", to_ms(rule.first_alert));
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("slo_tour",
          "error budgets and burn-rate alerts over a chaotic serving run");
  const auto* jobs = cli.add_int("jobs", 200, "jobs to submit");
  const auto* rate = cli.add_double("rate", 100000.0, "arrival rate, jobs/s");
  const auto* seed = cli.add_int("seed", 42, "workload seed");
  const auto* fault_seed = cli.add_int("fault-seed", 7, "injector seed");
  const auto* latency_ms = cli.add_double(
      "latency-ms", 0.25, "p99 latency objective threshold, milliseconds");
  const auto* down_from_us =
      cli.add_int("down-from-us", 1000, "GPU outage start, microseconds");
  const auto* down_until_us =
      cli.add_int("down-until-us", 2500, "GPU outage end, microseconds");
  cli.parse_or_exit(argc, argv);

  serve::OpenLoopOptions load;
  load.jobs = *jobs;
  load.rate_hz = *rate;
  load.seed = static_cast<std::uint64_t>(*seed);

  fault::FaultPlan plan;
  fault::OutageWindow outage;
  outage.target = fault::Target::kGpu;
  outage.window.begin = *down_from_us * kMicrosecond;
  outage.window.end = *down_until_us * kMicrosecond;
  plan.outages.push_back(outage);

  std::printf("%lld mixed reductions at %.0f jobs/s; H100 down %.3f-%.3f "
              "ms; objectives: availability 99.9%%, p99 latency <= %.3f "
              "ms\n\n",
              static_cast<long long>(*jobs), *rate,
              to_ms(outage.window.begin), to_ms(outage.window.end),
              *latency_ms);

  serve::ServiceModel model;
  fault::Injector injector(plan, static_cast<std::uint64_t>(*fault_seed));
  serve::ServiceOptions options;
  options.injector = &injector;
  serve::ReductionService service(serve::make_policy("fifo", model), model,
                                  options);
  service.submit_all(serve::open_loop_poisson(load));
  service.run();

  // Declare the objectives, feed the whole run, evaluate.
  std::vector<slo::Objective> objectives;
  objectives.push_back(slo::Objective{
      "availability", slo::ObjectiveKind::kAvailability, 0.999, 0.0});
  objectives.push_back(slo::Objective{
      "latency_p99", slo::ObjectiveKind::kLatencyQuantile, 0.99,
      *latency_ms});
  slo::Monitor monitor(std::move(objectives));
  monitor.feed(service);
  const slo::Report report = monitor.evaluate();

  for (const auto& obj : report.objectives) {
    print_objective(obj);
    std::printf("\n");
  }

  if (report.alerts.empty()) {
    std::printf("no burn-rate alerts: the outage stayed inside the error "
                "budget.\n");
  } else {
    std::printf("pager timeline (%lld alert(s)):\n",
                static_cast<long long>(report.total_alerts()));
    for (const auto& alert : report.alerts) {
      std::printf("  [%9.3f ms] %-5s %-12s burn %.2fx long / %.2fx "
                  "short\n",
                  to_ms(alert.at), alert.severity.c_str(),
                  alert.objective.c_str(), alert.burn_long,
                  alert.burn_short);
    }
  }

  std::printf("\nmachine-readable report:\n");
  std::ostringstream json;
  report.write_json(json);
  std::printf("%s\n", json.str().c_str());
  return 0;
}
