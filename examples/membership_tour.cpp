// Failure-domain walkthrough: a four-node fleet loses an entire node —
// process, devices, admission queue, in-flight launches — mid-run. The
// phi-accrual health monitor notices the silent heartbeats, walks the node
// alive -> suspect -> dead, pulls it off the router's ring, and replays
// the jobs its write-ahead journal still held onto surviving peers
// exactly once. When the process comes back, the detector holds it
// through a warm-up window before letting it rejoin. A second node is
// drained gracefully for contrast: queue flushed to peers, zero replay,
// orderly departure. Through all of it every submitted job still ends
// served, rejected, or shed.
//
//   $ ./examples/membership_tour
//   $ ./examples/membership_tour --crash-us=500 --no-restart
//   $ ./examples/membership_tour --heartbeat-us=50    # faster detection
#include <cstdio>
#include <string>
#include <vector>

#include "ghs/cluster/cluster.hpp"
#include "ghs/fault/plan.hpp"
#include "ghs/serve/loadgen.hpp"
#include "ghs/util/cli.hpp"

namespace {

using namespace ghs;

std::vector<serve::Job> make_workload(std::uint64_t seed, std::int64_t jobs,
                                      double rate_hz) {
  serve::OpenLoopOptions load;
  load.jobs = jobs;
  load.rate_hz = rate_hz;
  load.seed = seed;
  load.shape.min_log2_elements = 14;
  load.shape.max_log2_elements = 18;
  auto out = serve::open_loop_poisson(load);
  for (auto& job : out) {
    job.tenant = static_cast<std::int64_t>(
        cluster::mix64(static_cast<std::uint64_t>(job.id)) % 16);
    job.source_node = 0;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("membership_tour",
          "node crash, detection, journal replay, rejoin, and a drain");
  const auto* jobs = cli.add_int("jobs", 1200, "total jobs");
  const auto* rate = cli.add_double("rate", 500000.0, "arrival rate, jobs/s");
  const auto* crash_us =
      cli.add_int("crash-us", 300, "node 1 crashes at this instant");
  const auto* restart_us = cli.add_int(
      "restart-us", 2000, "node 1's process restarts at this instant");
  const auto* no_restart =
      cli.add_flag("no-restart", "the crashed node never comes back");
  const auto* drain_us =
      cli.add_int("drain-us", 1000, "node 3 drains gracefully here (0 = off)");
  const auto* heartbeat_us =
      cli.add_int("heartbeat-us", 100, "failure-detector sweep interval");
  cli.parse_or_exit(argc, argv);

  cluster::ClusterOptions options;
  options.nodes = 4;
  options.router = cluster::RouterPolicy::kLeast;
  fault::NodeCrash crash;
  crash.node = 1;
  crash.at = *crash_us * kMicrosecond;
  if (!*no_restart) crash.restart_at = *restart_us * kMicrosecond;
  options.crash_plan.crashes.push_back(crash);
  if (*drain_us > 0) {
    options.drains.push_back(
        cluster::DrainSpec{3, *drain_us * kMicrosecond});
  }
  options.health.enabled = true;
  options.health.interval = *heartbeat_us * kMicrosecond;

  serve::ServiceModel model;
  cluster::Cluster fleet(model, options);
  fleet.submit_all(make_workload(42, *jobs, *rate));
  fleet.run();
  const cluster::ClusterReport r = fleet.report();

  std::printf("fleet of %d, node 1 crashes at %lld us%s, node 3 %s\n",
              options.nodes, static_cast<long long>(*crash_us),
              *no_restart ? " (for good)" : ", restarts later",
              *drain_us > 0 ? "drains gracefully" : "stays put");
  std::printf("  served %lld/%lld  rejected %lld  shed %lld  p99 %.3f ms\n",
              static_cast<long long>(r.served),
              static_cast<long long>(r.submitted),
              static_cast<long long>(r.rejected),
              static_cast<long long>(r.shed), r.latency.pct.p99);
  const auto& m = r.membership;
  std::printf("  crashes %lld  restarts %lld  drains %lld (flushed %lld)\n",
              static_cast<long long>(m.crashes),
              static_cast<long long>(m.restarts),
              static_cast<long long>(m.drains),
              static_cast<long long>(m.drain_flushed));
  std::printf("  replayed %lld jobs (%.3f GB)  redirected %lld  "
              "duplicates suppressed %lld\n",
              static_cast<long long>(m.replayed), m.replay_gb,
              static_cast<long long>(m.redirected),
              static_cast<long long>(m.duplicate_suppressed));
  std::printf("  detection latency %.3f ms mean / %.3f ms max over %lld\n",
              m.detection_mean_ms, m.detection_max_ms,
              static_cast<long long>(m.detections));
  std::printf("  membership log (%lld transitions):\n",
              static_cast<long long>(m.transitions));
  for (const auto& t : fleet.membership_table()->log()) {
    std::printf("    [%8.3f ms] node%d %s -> %s (%s)\n",
                static_cast<double>(t.at) / static_cast<double>(kMillisecond),
                t.node, membership::node_state_name(t.from),
                membership::node_state_name(t.to), t.reason.c_str());
  }
  std::printf("  final states:");
  for (std::size_t i = 0; i < m.final_states.size(); ++i) {
    std::printf(" node%zu=%s", i, m.final_states[i].c_str());
  }
  std::printf("\n  invariant: %lld submitted == %lld served + %lld rejected "
              "+ %lld shed\n",
              static_cast<long long>(r.submitted),
              static_cast<long long>(r.served),
              static_cast<long long>(r.rejected),
              static_cast<long long>(r.shed));
  return 0;
}
