// Serving-layer walkthrough: submit a burst of mixed-case reduction
// requests to the multi-tenant service and compare what FIFO and the
// bandwidth-aware scheduler make of the very same workload.
//
//   $ ./examples/serve_demo
//   $ ./examples/serve_demo --jobs=120 --rate=150000 --trace=serve.json
#include <cstdio>
#include <fstream>
#include <string>

#include "ghs/serve/loadgen.hpp"
#include "ghs/serve/policy.hpp"
#include "ghs/serve/service.hpp"
#include "ghs/util/cli.hpp"

namespace {

using namespace ghs;

void print_report(const serve::ServiceReport& r) {
  std::printf("  %-10s served %3lld/%3lld (rejected %lld)  "
              "p50 %7.3f ms  p95 %7.3f ms  p99 %7.3f ms\n",
              r.policy.c_str(), static_cast<long long>(r.served),
              static_cast<long long>(r.submitted),
              static_cast<long long>(r.rejected), r.latency.pct.p50,
              r.latency.pct.p95, r.latency.pct.p99);
  std::printf("             throughput %8.1f jobs/s (%7.1f GB/s)  "
              "GPU:CPU jobs %lld:%lld  launches %lld (%lld batched jobs)\n",
              r.throughput_jobs_per_s, r.throughput_gbps,
              static_cast<long long>(r.gpu_jobs),
              static_cast<long long>(r.cpu_jobs),
              static_cast<long long>(r.launches),
              static_cast<long long>(r.batched_jobs));
  if (r.tuner_misses > 0) {
    std::printf("             tuner cache: %lld misses (hill climbs), %lld "
                "hits\n",
                static_cast<long long>(r.tuner_misses),
                static_cast<long long>(r.tuner_hits));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("serve_demo", "FIFO vs bandwidth-aware serving, side by side");
  const auto* jobs = cli.add_int("jobs", 80, "jobs to submit");
  const auto* rate = cli.add_double("rate", 100000.0, "arrival rate, jobs/s");
  const auto* seed = cli.add_int("seed", 42, "workload seed");
  const auto* trace_path =
      cli.add_string("trace", "", "Chrome-trace file for the bandwidth run");
  cli.parse_or_exit(argc, argv);

  serve::OpenLoopOptions load;
  load.jobs = *jobs;
  load.rate_hz = *rate;
  load.seed = static_cast<std::uint64_t>(*seed);
  const auto workload = serve::open_loop_poisson(load);

  std::printf("serving %lld mixed C1-C4 reductions, Poisson arrivals at "
              "%.0f jobs/s (seed %lld)\n\n",
              static_cast<long long>(*jobs), *rate,
              static_cast<long long>(*seed));

  serve::ServiceModel model;
  for (const std::string policy : {"fifo", "bandwidth"}) {
    trace::Tracer tracer;
    const bool tracing = policy == "bandwidth" && !trace_path->empty();
    serve::ReductionService service(serve::make_policy(policy, model), model,
                                    {}, tracing ? &tracer : nullptr);
    service.submit_all(workload);
    service.run();
    print_report(service.report());
    if (tracing) {
      std::ofstream out(*trace_path);
      tracer.write_chrome_json(out);
      std::printf("             timeline written to %s "
                  "(open in chrome://tracing)\n",
                  trace_path->c_str());
    }
    std::printf("\n");
  }
  std::printf("the bandwidth-aware policy drains small jobs through the "
              "Grace CPU while the\nH100 streams the large ones; FIFO "
              "funnels everything through the GPU queue.\n");
  return 0;
}
