// Dot product: a derived primitive built on the same offload machinery —
// the "applications that use sum reduction" direction the paper's
// conclusion points at. Streams two float32 arrays per element
// (2x the bytes of the sum reduction), reuses the tuned grid geometry, and
// functionally verifies the result on host data. This example drives the
// OpenMP runtime model directly rather than going through the core
// benchmark protocols, showing the lower-level API.
//
//   $ ./examples/dot_product --elements=268435456
#include <cstdio>
#include <optional>

#include "ghs/core/platform.hpp"
#include "ghs/util/cli.hpp"
#include "ghs/util/math.hpp"
#include "ghs/workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace ghs;
  Cli cli("dot_product", "dot product on the simulated GH200");
  const auto* elements_opt =
      cli.add_int("elements", 1 << 28, "vector length (float32)");
  const auto* iters = cli.add_int("iters", 10, "timed repetitions");
  cli.parse_or_exit(argc, argv);
  const auto elements = static_cast<std::int64_t>(*elements_opt);

  core::Platform platform;
  auto& rt = platform.runtime();

  // Map both vectors to the device (untimed, as in the paper's protocol).
  const Bytes bytes_each = elements * 4;
  rt.map_to(rt.target_alloc(bytes_each, "x"), nullptr);
  rt.map_to(rt.target_alloc(bytes_each, "y"), nullptr);
  platform.run();

  // dot(x, y): same loop as the optimized reduction but two loads per
  // element; V = 4, tuned grid.
  omp::OffloadLoop loop;
  loop.label = "dot";
  loop.iterations = elements / 4;
  loop.v = 4;
  loop.element_size = 4;
  loop.input_streams = 2;
  loop.combine = gpu::CombineClass::kFloatCas;
  omp::TeamsClauses clauses;
  clauses.num_teams = 16384;
  clauses.thread_limit = 256;

  const SimTime t0 = platform.sim().now();
  SimTime kernel_time = 0;
  for (int n = 0; n < *iters; ++n) {
    rt.target_update_scalar(nullptr);
    platform.run();
    rt.target_teams_reduce(loop, clauses,
                           [&](const gpu::KernelResult& r) {
                             kernel_time = r.duration();
                           });
    platform.run();
    rt.target_update_scalar(nullptr);
    platform.run();
  }
  const SimTime elapsed = platform.sim().now() - t0;
  const Bytes moved = 2 * bytes_each * *iters;
  std::printf("dot product of 2 x %lld float32 (%s each)\n",
              static_cast<long long>(elements),
              format_bytes(bytes_each).c_str());
  std::printf("  kernel: %s, sustained %s\n",
              format_time(kernel_time).c_str(),
              format_bandwidth(achieved_bandwidth(moved, elapsed)).c_str());

  // Functional verification at reduced size: serial vs chunked pairing.
  const std::int64_t n = 1 << 20;
  const auto x = workload::generate<float>(workload::Pattern::kUniform, n, 1);
  const auto y = workload::generate<float>(workload::Pattern::kUniform, n, 2);
  float serial = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    serial += x[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
  }
  // Grid-shaped partials, like the device would compute them.
  double chunked = 0.0;
  const std::int64_t chunk = n / 4096;
  for (std::int64_t first = 0; first < n; first += chunk) {
    float partial = 0.0f;
    const std::int64_t last = std::min(n, first + chunk);
    for (std::int64_t i = first; i < last; ++i) {
      partial +=
          x[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
    }
    chunked += static_cast<double>(partial);
  }
  const double rel = relative_difference(static_cast<double>(serial), chunked);
  std::printf("  verify: serial=%.2f parallel=%.2f (rel err %.2e) -> %s\n",
              static_cast<double>(serial), chunked, rel,
              rel < 1e-3 ? "OK" : "MISMATCH");
  return rel < 1e-3 ? 0 : 1;
}
