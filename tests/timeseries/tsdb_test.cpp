#include "ghs/timeseries/tsdb.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <sstream>
#include <vector>

#include "ghs/timeseries/export.hpp"
#include "ghs/timeseries/query.hpp"
#include "ghs/util/error.hpp"
#include "ghs/util/rng.hpp"

namespace ghs::timeseries {
namespace {

TsdbOptions tiny_options() {
  TsdbOptions options;
  options.raw_capacity = 8;
  options.fold = 4;
  options.tier_capacity = 4;
  options.tiers = 2;
  return options;
}

/// Appends n samples value = i at 1us spacing.
void fill(Series& series, int n, int start = 0) {
  for (int i = start; i < start + n; ++i) {
    series.append(i * kMicrosecond, static_cast<double>(i));
  }
}

TEST(RollupTest, FoldTracksMinMeanMaxLast) {
  Rollup rollup;
  rollup.fold(Sample{1, 3.0});
  rollup.fold(Sample{2, 1.0});
  rollup.fold(Sample{3, 2.0});
  EXPECT_EQ(rollup.begin, 1);
  EXPECT_EQ(rollup.end, 3);
  EXPECT_EQ(rollup.count, 3);
  EXPECT_DOUBLE_EQ(rollup.min, 1.0);
  EXPECT_DOUBLE_EQ(rollup.max, 3.0);
  EXPECT_DOUBLE_EQ(rollup.sum, 6.0);
  EXPECT_DOUBLE_EQ(rollup.mean(), 2.0);
  EXPECT_DOUBLE_EQ(rollup.last, 2.0);
}

TEST(RollupTest, MergeCombinesRanges) {
  Rollup a;
  a.fold(Sample{1, 1.0});
  a.fold(Sample{2, 5.0});
  Rollup b;
  b.fold(Sample{3, 3.0});
  b.fold(Sample{4, 4.0});
  a.merge(b);
  EXPECT_EQ(a.begin, 1);
  EXPECT_EQ(a.end, 4);
  EXPECT_EQ(a.count, 4);
  EXPECT_DOUBLE_EQ(a.min, 1.0);
  EXPECT_DOUBLE_EQ(a.max, 5.0);
  EXPECT_DOUBLE_EQ(a.sum, 13.0);
  EXPECT_DOUBLE_EQ(a.last, 4.0);
}

TEST(SeriesTest, RawRingHoldsNewestSamples) {
  Tsdb store(tiny_options());
  Series& series = store.series("s", SeriesKind::kGauge);
  fill(series, 8);
  EXPECT_EQ(series.raw().size(), 8u);
  EXPECT_TRUE(series.tiers()[0].empty());
  // One more sample folds the oldest 4 into a tier-0 rollup.
  series.append(8 * kMicrosecond, 8.0);
  EXPECT_EQ(series.raw().size(), 5u);
  ASSERT_EQ(series.tiers()[0].size(), 1u);
  const Rollup& rollup = series.tiers()[0].front();
  EXPECT_EQ(rollup.count, 4);
  EXPECT_DOUBLE_EQ(rollup.min, 0.0);
  EXPECT_DOUBLE_EQ(rollup.max, 3.0);
  EXPECT_DOUBLE_EQ(rollup.last, 3.0);
}

TEST(SeriesTest, DownsamplingInvariants) {
  Tsdb store(tiny_options());
  Series& series = store.series("s", SeriesKind::kCounterDelta);
  Rng rng(7);
  double expected_sum = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double value = std::floor(rng.next_double() * 100.0);
    expected_sum += value;
    series.append(i * kMicrosecond, value);
  }
  EXPECT_EQ(series.points(), 1000);
  EXPECT_DOUBLE_EQ(series.total_sum(), expected_sum);

  // min <= mean <= max in every rollup of every tier.
  std::int64_t retained_points =
      static_cast<std::int64_t>(series.raw().size());
  double retained_sum = 0.0;
  for (const Sample& sample : series.raw()) retained_sum += sample.value;
  for (const auto& tier : series.tiers()) {
    for (const Rollup& rollup : tier) {
      EXPECT_LE(rollup.min, rollup.mean());
      EXPECT_LE(rollup.mean(), rollup.max);
      EXPECT_LE(rollup.begin, rollup.end);
      EXPECT_GT(rollup.count, 0);
      retained_points += rollup.count;
      retained_sum += rollup.sum;
    }
  }
  // Conservation: retained + dropped accounts for every appended sample and
  // every appended value (counter-delta totals survive folding).
  EXPECT_EQ(retained_points + series.dropped(), series.points());
  EXPECT_DOUBLE_EQ(retained_sum + series.dropped_sum(), expected_sum);
  // This run is long enough to overflow both tiers.
  EXPECT_GT(series.dropped(), 0);
}

TEST(SeriesTest, DropCountersOnlyAfterTiersFill) {
  Tsdb store(tiny_options());
  Series& series = store.series("s", SeriesKind::kGauge);
  // Capacity before drops: raw 8 + tier0 4*4 + tier1 4*16 = 88 samples;
  // the first drop needs one more fold cascade beyond that.
  fill(series, 88);
  EXPECT_EQ(series.dropped(), 0);
  fill(series, 200, 88);
  EXPECT_GT(series.dropped(), 0);
  EXPECT_EQ(store.total_dropped(), series.dropped());
}

TEST(SeriesTest, AppendRequiresMonotoneTime) {
  Tsdb store;
  Series& series = store.series("s", SeriesKind::kGauge);
  series.append(10, 1.0);
  series.append(10, 2.0);  // equal is fine
  EXPECT_THROW(series.append(9, 3.0), Error);
}

TEST(TsdbTest, KindMismatchIsAnError) {
  Tsdb store;
  store.series("s", SeriesKind::kGauge);
  EXPECT_NO_THROW(store.series("s", SeriesKind::kGauge));
  EXPECT_THROW(store.series("s", SeriesKind::kCounterDelta), Error);
}

TEST(TsdbTest, VisitsInKeyOrder) {
  Tsdb store;
  store.series("b", SeriesKind::kGauge);
  store.series("a", SeriesKind::kGauge);
  store.series("c", SeriesKind::kGauge);
  std::vector<std::string> keys;
  store.visit([&](const Series& series) { keys.push_back(series.key()); });
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SlidingWindowTest, MatchesBruteForce) {
  SlidingWindow window(10 * kMicrosecond);
  std::deque<Sample> brute;
  Rng rng(11);
  SimTime at = 0;
  for (int i = 0; i < 500; ++i) {
    at += static_cast<SimTime>(rng.next_double() * 3.0 *
                               static_cast<double>(kMicrosecond));
    const double value = std::floor(rng.next_double() * 10.0);
    window.push(at, value);
    brute.push_back(Sample{at, value});
    while (brute.front().at <= at - 10 * kMicrosecond) brute.pop_front();
    double brute_sum = 0.0;
    for (const Sample& sample : brute) brute_sum += sample.value;
    ASSERT_EQ(window.count(), static_cast<std::int64_t>(brute.size()));
    ASSERT_DOUBLE_EQ(window.sum(), brute_sum);
  }
}

TEST(SlidingWindowTest, MeanOfWindowedValues) {
  SlidingWindow window(5 * kMicrosecond);
  window.push(1 * kMicrosecond, 2.0);
  window.push(2 * kMicrosecond, 4.0);
  EXPECT_DOUBLE_EQ(window.mean(), 3.0);
  // Push far enough that both earlier samples leave the window.
  window.push(20 * kMicrosecond, 6.0);
  EXPECT_EQ(window.count(), 1);
  EXPECT_DOUBLE_EQ(window.mean(), 6.0);
}

TEST(QueryTest, RatePerSecSumsWindowedDeltas) {
  Tsdb store;
  Series& series = store.series("c", SeriesKind::kCounterDelta);
  // 5 scrapes, 100 events each, 1ms apart: steady 100k events/sec.
  for (int i = 1; i <= 5; ++i) {
    series.append(i * kMillisecond, 100.0);
  }
  EXPECT_DOUBLE_EQ(rate_per_sec(series, 5 * kMillisecond, 5 * kMillisecond),
                   100000.0);
  // A 2ms window at t=5ms sees only the last two scrapes.
  EXPECT_DOUBLE_EQ(rate_per_sec(series, 2 * kMillisecond, 5 * kMillisecond),
                   100000.0);
}

TEST(QueryTest, RateIncludesWhollyContainedRollups) {
  TsdbOptions options = tiny_options();
  Tsdb store(options);
  Series& series = store.series("c", SeriesKind::kCounterDelta);
  for (int i = 1; i <= 20; ++i) {
    series.append(i * kMicrosecond, 1.0);
  }
  // 20 deltas of 1 over 20us: a window covering everything sees all of it,
  // rollups included.
  const double rate =
      rate_per_sec(series, 20 * kMicrosecond, 20 * kMicrosecond);
  EXPECT_DOUBLE_EQ(rate, 20.0 / (20e-6));
}

TEST(QueryTest, QuantileOverWindow) {
  Tsdb store;
  Series& series = store.series("g", SeriesKind::kGauge);
  for (int i = 1; i <= 100; ++i) {
    series.append(i * kMicrosecond, static_cast<double>(i));
  }
  const auto p50 =
      quantile_over_window(series, 0.5, 100 * kMicrosecond,
                           100 * kMicrosecond);
  ASSERT_TRUE(p50.has_value());
  EXPECT_NEAR(*p50, 50.5, 1.0);
  // An empty window yields no quantile.
  EXPECT_FALSE(quantile_over_window(series, 0.5, kMicrosecond, 0)
                   .has_value());
}

TEST(ExportTest, JsonIsByteStableAndRoundTripsCounts) {
  const auto build = [] {
    Tsdb store(tiny_options());
    Series& gauge = store.series("g{node=\"0\"}", SeriesKind::kGauge);
    Series& counter = store.series("c", SeriesKind::kCounterDelta);
    for (int i = 0; i < 40; ++i) {
      gauge.append(i * kMicrosecond, static_cast<double>(i % 7));
      counter.append(i * kMicrosecond, static_cast<double>(i % 3));
    }
    return store;
  };
  const Tsdb a = build();
  const Tsdb b = build();
  std::ostringstream oa;
  std::ostringstream ob;
  const SeriesMeta meta{kMicrosecond, 40};
  write_series_json(oa, a, meta);
  write_series_json(ob, b, meta);
  EXPECT_EQ(oa.str(), ob.str());
  EXPECT_NE(oa.str().find("\"format\":\"ghs-series-v1\""), std::string::npos);
  EXPECT_NE(oa.str().find("g{node=\\\"0\\\"}"), std::string::npos);

  std::ostringstream oc;
  write_series_csv(oc, a, meta);
  EXPECT_NE(oc.str().find(
                "series,kind,tier,begin_ps,end_ps,count,min,mean,max,last"),
            std::string::npos);
}

TEST(ExportTest, CounterTracksScaleAndFilter)
{
  Tsdb store;
  Series& busy = store.series(
      "ghs_serve_device_busy_ps_total{device=\"gpu\"}",
      SeriesKind::kCounterDelta);
  // Busy 50% of each 1ms scrape interval.
  for (int i = 1; i <= 4; ++i) {
    busy.append(i * kMillisecond,
                0.5 * static_cast<double>(kMillisecond));
  }
  store.series("ghs_serve_unrelated_total", SeriesKind::kCounterDelta)
      .append(kMillisecond, 1.0);
  const auto tracks = counter_tracks(store, kMillisecond);
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].name, "utilization device=gpu");
  ASSERT_EQ(tracks[0].samples.size(), 4u);
  EXPECT_DOUBLE_EQ(tracks[0].samples[0].value, 0.5);
}

}  // namespace
}  // namespace ghs::timeseries
