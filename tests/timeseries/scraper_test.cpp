#include "ghs/timeseries/scraper.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ghs/serve/loadgen.hpp"
#include "ghs/serve/policy.hpp"
#include "ghs/serve/service.hpp"
#include "ghs/sim/simulator.hpp"
#include "ghs/telemetry/registry.hpp"
#include "ghs/timeseries/export.hpp"
#include "ghs/trace/chrome_exporter.hpp"

namespace ghs::timeseries {
namespace {

ScraperOptions every(SimTime interval) {
  ScraperOptions options;
  options.interval = interval;
  return options;
}

TEST(ScraperTest, SamplesCounterDeltasPerInterval) {
  sim::Simulator sim;
  telemetry::Registry registry;
  auto& counter = registry.counter("c");
  sim.schedule_at(5 * kMicrosecond, [&] { counter.inc(3); });
  sim.schedule_at(15 * kMicrosecond, [&] { counter.inc(4); });

  Tsdb store;
  Scraper scraper(sim, registry, store, every(10 * kMicrosecond));
  scraper.start();
  sim.run();
  scraper.finish();

  const Series* series = store.find("c");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->kind(), SeriesKind::kCounterDelta);
  // The 10us tick sees the first increment, the 20us tick the second;
  // finish() adds a trailing zero-delta sample at the same timestamp.
  EXPECT_DOUBLE_EQ(series->total_sum(), 7.0);
  ASSERT_GE(series->raw().size(), 2u);
  EXPECT_EQ(series->raw()[0].at, 10 * kMicrosecond);
  EXPECT_DOUBLE_EQ(series->raw()[0].value, 3.0);
}

TEST(ScraperTest, StartBaselinesCursorsForRegistryReuse) {
  sim::Simulator sim;
  telemetry::Registry registry;
  auto& counter = registry.counter("c");
  counter.inc(100);  // a previous run's activity

  sim.schedule_at(15 * kMicrosecond, [&] { counter.inc(5); });
  Tsdb store;
  Scraper scraper(sim, registry, store, every(10 * kMicrosecond));
  scraper.start();
  sim.run();
  scraper.finish();

  const Series* series = store.find("c");
  ASSERT_NE(series, nullptr);
  // Only this run's increments land in the series.
  EXPECT_DOUBLE_EQ(series->total_sum(), 5.0);
}

TEST(ScraperTest, GaugesSampledAsValues) {
  sim::Simulator sim;
  telemetry::Registry registry;
  auto& gauge = registry.gauge("g");
  gauge.set(2.0);
  sim.schedule_at(15 * kMicrosecond, [&] { gauge.set(7.0); });

  Tsdb store;
  Scraper scraper(sim, registry, store, every(10 * kMicrosecond));
  scraper.start();
  sim.run();
  scraper.finish();

  const Series* series = store.find("g");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->kind(), SeriesKind::kGauge);
  EXPECT_DOUBLE_EQ(series->raw()[0].value, 2.0);
  EXPECT_DOUBLE_EQ(series->last_value(), 7.0);
}

TEST(ScraperTest, VolatileInstrumentsSkipped) {
  sim::Simulator sim;
  telemetry::Registry registry;
  registry.gauge("wall", {}, "", /*volatile_instrument=*/true).set(1.5);
  registry.gauge("g").set(1.0);
  sim.schedule_at(15 * kMicrosecond, [] {});

  Tsdb store;
  Scraper scraper(sim, registry, store, every(10 * kMicrosecond));
  scraper.start();
  sim.run();
  scraper.finish();

  EXPECT_EQ(store.find("wall"), nullptr);
  EXPECT_NE(store.find("g"), nullptr);
}

TEST(ScraperTest, HistogramsYieldCountSumAndWindowedQuantiles) {
  sim::Simulator sim;
  telemetry::Registry registry;
  auto& hist = registry.histogram("h", {1.0, 2.0, 4.0});
  sim.schedule_at(5 * kMicrosecond, [&] {
    hist.observe(0.5);
    hist.observe(1.5);
    hist.observe(3.0);
  });
  // A later empty interval, then one more observation.
  sim.schedule_at(35 * kMicrosecond, [&] { hist.observe(0.5); });

  Tsdb store;
  Scraper scraper(sim, registry, store, every(10 * kMicrosecond));
  scraper.start();
  sim.run();
  scraper.finish();

  const Series* count = store.find("h:count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->kind(), SeriesKind::kCounterDelta);
  EXPECT_DOUBLE_EQ(count->total_sum(), 4.0);
  const Series* sum = store.find("h:sum");
  ASSERT_NE(sum, nullptr);
  EXPECT_DOUBLE_EQ(sum->total_sum(), 5.5);

  const Series* p50 = store.find("h:p50");
  ASSERT_NE(p50, nullptr);
  EXPECT_EQ(p50->kind(), SeriesKind::kQuantile);
  // Quantile samples exist only for the two intervals with observations —
  // the empty scrapes in between contribute nothing.
  EXPECT_EQ(p50->points(), 2);
  EXPECT_NE(store.find("h:p95"), nullptr);
  EXPECT_NE(store.find("h:p99"), nullptr);
}

/// One small served workload, optionally scraped, returning the per-job
/// outcome the dispatch-order equivalence test compares.
struct ServedRun {
  std::vector<serve::JobRecord> records;
  std::string series_json;
  std::int64_t scrapes = 0;
};

ServedRun run_serve(bool scraped) {
  telemetry::Registry registry;
  telemetry::Sink sink;
  sink.metrics = &registry;
  sink.timeline = scraped;

  serve::ServiceModel model;
  serve::ServiceOptions options;
  options.telemetry = sink;
  serve::ReductionService service(std::make_unique<serve::FifoPolicy>(),
                                  model, options);

  serve::OpenLoopOptions open;
  open.rate_hz = 200000.0;
  open.jobs = 120;
  open.seed = 42;

  Tsdb store;
  Scraper scraper(service.sim(), registry, store, every(25 * kMicrosecond));
  if (scraped) scraper.start();
  service.submit_all(serve::open_loop_poisson(open));
  service.run();
  if (scraped) scraper.finish();

  ServedRun out;
  out.records = service.records();
  out.scrapes = scraper.scrapes();
  if (scraped) {
    std::ostringstream os;
    write_series_json(os, store,
                      SeriesMeta{scraper.interval(), scraper.scrapes()});
    out.series_json = os.str();
  }
  return out;
}

TEST(ScraperTest, ScrapeEventsDoNotPerturbDispatchOrder) {
  const ServedRun plain = run_serve(false);
  const ServedRun scraped = run_serve(true);
  EXPECT_GT(scraped.scrapes, 0);
  ASSERT_EQ(plain.records.size(), scraped.records.size());
  for (std::size_t i = 0; i < plain.records.size(); ++i) {
    const auto& a = plain.records[i];
    const auto& b = scraped.records[i];
    EXPECT_EQ(a.job.id, b.job.id);
    EXPECT_EQ(a.placement, b.placement);
    EXPECT_EQ(a.launch_id, b.launch_id);
    EXPECT_EQ(a.start, b.start);
    EXPECT_EQ(a.completion, b.completion);
  }
}

TEST(ScraperTest, SameSeedScrapedRunsAreByteIdentical) {
  const ServedRun a = run_serve(true);
  const ServedRun b = run_serve(true);
  ASSERT_FALSE(a.series_json.empty());
  EXPECT_EQ(a.series_json, b.series_json);
  // The serve run registers device-busy series only under Sink::timeline.
  EXPECT_NE(a.series_json.find("ghs_serve_device_busy_ps_total"),
            std::string::npos);
}

TEST(ScraperTest, CounterTracksRideTheTraceOnlyWhenAdded) {
  trace::Tracer tracer;
  tracer.record(trace::Track::kGpu, "k", 0, kMicrosecond, "");

  std::ostringstream plain;
  trace::ChromeTraceExporter(tracer).write(plain);
  EXPECT_EQ(plain.str().find("Telemetry"), std::string::npos);
  EXPECT_EQ(plain.str().find("\"ph\":\"C\""), std::string::npos);

  std::ostringstream with_tracks;
  trace::ChromeTraceExporter exporter(tracer);
  trace::CounterTrack track;
  track.name = "queue depth";
  track.samples.push_back(trace::CounterSample{kMicrosecond, 3.0});
  exporter.add_counter_track(std::move(track));
  exporter.write(with_tracks);
  EXPECT_NE(with_tracks.str().find("Telemetry"), std::string::npos);
  EXPECT_NE(with_tracks.str().find("\"ph\":\"C\""), std::string::npos);

  // Track-free output from the same exporter type stays byte-identical to
  // a pre-counter export.
  std::ostringstream plain2;
  trace::ChromeTraceExporter(tracer).write(plain2);
  EXPECT_EQ(plain.str(), plain2.str());
}

}  // namespace
}  // namespace ghs::timeseries
