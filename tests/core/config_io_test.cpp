#include "ghs/core/config_io.hpp"

#include "ghs/core/reduce.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "ghs/util/error.hpp"

namespace ghs::core {
namespace {

TEST(ConfigIoTest, EmptyPropertiesLeaveDefaults) {
  SystemConfig config = gh200_config();
  apply_properties(Properties::parse(""), config);
  EXPECT_DOUBLE_EQ(config.topology.hbm_bw.gbps(), 4022.7);
  EXPECT_EQ(config.gpu.num_sms, 132);
}

TEST(ConfigIoTest, AppliesTopologyAndGpuKeys) {
  SystemConfig config = gh200_config();
  apply_properties(Properties::parse(
                       "topology.hbm_gbps = 6500\n"
                       "topology.c2c_gbps_per_direction = 225\n"
                       "gpu.num_sms = 160\n"
                       "gpu.mem_latency_ns = 500\n"
                       "gpu.um_hbm_efficiency = 0.9\n"),
                   config);
  EXPECT_DOUBLE_EQ(config.topology.hbm_bw.gbps(), 6500.0);
  EXPECT_DOUBLE_EQ(config.topology.c2c_per_direction_bw.gbps(), 225.0);
  EXPECT_EQ(config.gpu.num_sms, 160);
  EXPECT_EQ(config.gpu.mem_latency, from_nanoseconds(500.0));
  EXPECT_DOUBLE_EQ(config.gpu.um_hbm_efficiency, 0.9);
}

TEST(ConfigIoTest, AppliesCpuUmAndOmpKeys) {
  SystemConfig config = gh200_config();
  apply_properties(Properties::parse(
                       "cpu.cores = 144\n"
                       "cpu.aggregate_local_gbps = 960\n"
                       "um.mode = access-counter\n"
                       "um.gpu_access_threshold = 8\n"
                       "um.page_size_mib = 4\n"
                       "omp.default_threads = 256\n"
                       "omp.grid_clamp = 1048576\n"),
                   config);
  EXPECT_EQ(config.cpu.cores, 144);
  EXPECT_DOUBLE_EQ(config.cpu.aggregate_local_bw.gbps(), 960.0);
  EXPECT_EQ(config.um.mode, um::MigrationMode::kAccessCounter);
  EXPECT_EQ(config.um.gpu_access_threshold, 8);
  EXPECT_EQ(config.um.page_size, 4 * kMiB);
  EXPECT_EQ(config.omp.heuristic.default_threads, 256);
  EXPECT_EQ(config.omp.heuristic.grid_clamp, 1048576);
}

TEST(ConfigIoTest, UnknownKeysRejected) {
  SystemConfig config = gh200_config();
  EXPECT_THROW(apply_properties(Properties::parse("gpu.smcount = 10\n"),
                                config),
               Error);
}

TEST(ConfigIoTest, InvalidValuesRejected) {
  SystemConfig config = gh200_config();
  EXPECT_THROW(apply_properties(
                   Properties::parse("topology.hbm_gbps = -5\n"), config),
               Error);
  EXPECT_THROW(apply_properties(
                   Properties::parse("gpu.um_hbm_efficiency = 1.5\n"),
                   config),
               Error);
  EXPECT_THROW(apply_properties(Properties::parse("um.mode = magic\n"),
                                config),
               Error);
  EXPECT_THROW(apply_properties(Properties::parse("cpu.cores = zero\n"),
                                config),
               Error);
}

TEST(ConfigIoTest, ConfigKeysListsEverySetter) {
  const auto& keys = config_keys();
  EXPECT_GE(keys.size(), 15u);
  // Every listed key must be applicable (round-trip through a no-op-ish
  // assignment) — probe a few representative ones.
  for (const std::string key :
       {"topology.hbm_gbps", "gpu.num_sms", "cpu.cores",
        "um.fault_migration_gbps", "omp.grid_clamp"}) {
    EXPECT_NE(std::find(keys.begin(), keys.end(), key), keys.end()) << key;
  }
}

TEST(ConfigIoTest, ModifiedConfigChangesSimulationOutcome) {
  // Halving HBM bandwidth should halve the optimized bandwidth.
  SystemConfig config = gh200_config();
  apply_properties(Properties::parse("topology.hbm_gbps = 2011.35\n"),
                   config);
  Platform fast;  // default
  Platform slow(config);
  GpuBenchmark bench;
  bench.case_id = workload::CaseId::kC1;
  bench.tuning = ReduceTuning{16384, 256, 4};
  // Large enough that launch/update overheads do not dilute the ratio.
  bench.elements = 1 << 28;
  bench.iterations = 2;
  const auto fast_result = run_gpu_benchmark(fast, bench);
  const auto slow_result = run_gpu_benchmark(slow, bench);
  EXPECT_NEAR(fast_result.bandwidth.gbps() / slow_result.bandwidth.gbps(),
              2.0, 0.1);
}

}  // namespace
}  // namespace ghs::core
