#include "ghs/core/platform.hpp"

#include <gtest/gtest.h>

#include "ghs/core/system_config.hpp"

namespace ghs::core {
namespace {

TEST(PlatformTest, BootsWithGh200Defaults) {
  Platform platform;
  EXPECT_EQ(platform.sim().now(), 0);
  EXPECT_DOUBLE_EQ(
      platform.topology().network().capacity(platform.topology().hbm())
          .gbps(),
      4022.7);
  EXPECT_EQ(platform.gpu().config().num_sms, 132);
  EXPECT_EQ(platform.cpu().config().cores, 72);
  EXPECT_EQ(platform.config().omp.heuristic.grid_clamp, 0xFFFFFF);
  EXPECT_EQ(platform.tracer(), nullptr);
}

TEST(PlatformTest, ConfigPropagatesToSubsystems) {
  SystemConfig config = gh200_config();
  config.topology.hbm_bw = Bandwidth::from_gbps(1000.0);
  config.gpu.num_sms = 64;
  config.cpu.cores = 16;
  config.um.page_size = 1 * kMiB;
  Platform platform(config);
  EXPECT_DOUBLE_EQ(
      platform.topology().network().capacity(platform.topology().hbm())
          .gbps(),
      1000.0);
  EXPECT_EQ(platform.gpu().config().num_sms, 64);
  EXPECT_EQ(platform.cpu().config().cores, 16);
  EXPECT_EQ(platform.um().policy().page_size, 1 * kMiB);
}

TEST(PlatformTest, PeakBandwidthHelper) {
  EXPECT_DOUBLE_EQ(peak_gpu_bandwidth(gh200_config()).gbps(), 4022.7);
}

TEST(PlatformTest, RunDrainsScheduledWork) {
  Platform platform;
  int fired = 0;
  platform.sim().schedule_after(kMillisecond, [&] { ++fired; });
  platform.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(platform.sim().now(), kMillisecond);
}

TEST(PlatformTest, TracingIsOffByDefaultAndSticky) {
  Platform platform;
  EXPECT_EQ(platform.tracer(), nullptr);
  auto& tracer = platform.enable_tracing();
  EXPECT_EQ(platform.tracer(), &tracer);
  EXPECT_EQ(&platform.enable_tracing(), &tracer);
}

TEST(PlatformTest, IndependentPlatformsShareNothing) {
  Platform a;
  Platform b;
  a.sim().schedule_after(10, [] {});
  a.run();
  EXPECT_EQ(a.sim().now(), 10);
  EXPECT_EQ(b.sim().now(), 0);
  const auto alloc = a.um().allocate(kMiB, mem::RegionId::kLpddr, "x");
  EXPECT_EQ(a.um().resident_bytes(alloc, mem::RegionId::kLpddr), kMiB);
  // b's manager has no allocation 0.
  EXPECT_THROW(b.um().size(alloc), Error);
}

}  // namespace
}  // namespace ghs::core
