#include "ghs/core/sweep.hpp"

#include <gtest/gtest.h>

#include "ghs/util/error.hpp"

namespace ghs::core {
namespace {

using workload::CaseId;

SweepOptions small_sweep() {
  SweepOptions opts;
  opts.teams = {128, 1024, 8192};
  opts.vs = {1, 4};
  opts.iterations = 2;
  opts.elements = 1 << 24;
  return opts;
}

TEST(SweepTest, Fig1HasOneSeriesPerV) {
  const auto figure = fig1_sweep(CaseId::kC1, small_sweep());
  EXPECT_EQ(figure.series().size(), 2u);
  EXPECT_NE(figure.find_series("v1"), nullptr);
  EXPECT_NE(figure.find_series("v4"), nullptr);
  for (const auto& series : figure.series()) {
    EXPECT_EQ(series.points().size(), 3u);
  }
}

TEST(SweepTest, Fig1BandwidthGrowsWithTeams) {
  const auto figure = fig1_sweep(CaseId::kC1, small_sweep());
  for (const auto& series : figure.series()) {
    EXPECT_GT(series.at(8192).value(), series.at(128).value());
  }
}

TEST(SweepTest, Table1RowsAreWellFormed) {
  const auto rows = table1({CaseId::kC1, CaseId::kC3}, small_sweep());
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    EXPECT_GT(row.baseline_gbps, 0.0);
    EXPECT_GT(row.optimized_gbps, row.baseline_gbps);
    EXPECT_NEAR(row.speedup, row.optimized_gbps / row.baseline_gbps, 1e-9);
    EXPECT_GT(row.optimized_efficiency, row.baseline_efficiency);
    EXPECT_LT(row.optimized_efficiency, 1.0);
  }
}

UmSweepOptions small_um() {
  UmSweepOptions opts;
  opts.cpu_parts = {0.0, 0.5, 1.0};
  opts.iterations = 4;
  opts.elements = 1 << 24;
  return opts;
}

TEST(SweepTest, UmFigureHasOneSeriesPerCase) {
  const auto figure = um_figure({CaseId::kC1, CaseId::kC4}, small_um());
  EXPECT_EQ(figure.series().size(), 2u);
  EXPECT_NE(figure.find_series("C1"), nullptr);
  EXPECT_NE(figure.find_series("C4"), nullptr);
}

TEST(SweepTest, SpeedupFigureDividesPointwise) {
  stats::Figure base("b", "p", "GB/s");
  base.add_series("C1").add(0.0, 100.0);
  stats::Figure opt("o", "p", "GB/s");
  opt.add_series("C1").add(0.0, 400.0);
  const auto ratio = speedup_figure(base, opt, "ratio");
  EXPECT_DOUBLE_EQ(ratio.series()[0].at(0.0).value(), 4.0);
}

TEST(SweepTest, SpeedupFigureRequiresMatchingSeries) {
  stats::Figure base("b", "p", "GB/s");
  base.add_series("C1").add(0.0, 100.0);
  stats::Figure opt("o", "p", "GB/s");
  opt.add_series("C2").add(0.0, 400.0);
  EXPECT_THROW(speedup_figure(base, opt, "ratio"), Error);
}

class SweepAllCasesTest : public ::testing::TestWithParam<CaseId> {};

TEST_P(SweepAllCasesTest, Fig1SeriesAreOrderedAndBounded) {
  const auto figure = fig1_sweep(GetParam(), small_sweep());
  const double peak = 4022.7;
  for (const auto& series : figure.series()) {
    double previous = 0.0;
    for (const auto& point : series.points()) {
      EXPECT_GT(point.y, 0.0);
      EXPECT_LE(point.y, peak);
      // Near-monotone in teams: at the test's reduced M (16M elements),
      // very large grids over-decompose the problem and give back a few
      // percent (a real effect — the paper's M is 64x larger).
      EXPECT_GE(point.y, previous * 0.93)
          << series.name() << " at teams=" << point.x;
      previous = point.y;
    }
  }
}

TEST_P(SweepAllCasesTest, BaselineWorseThanAnySweptPoint) {
  SweepOptions opts = small_sweep();
  opts.teams = {8192};
  opts.vs = {4};
  const auto rows = table1({GetParam()}, opts);
  EXPECT_GT(rows.front().optimized_gbps, rows.front().baseline_gbps);
}

INSTANTIATE_TEST_SUITE_P(AllCases, SweepAllCasesTest,
                         ::testing::Values(CaseId::kC1, CaseId::kC2,
                                           CaseId::kC3, CaseId::kC4));

TEST(SweepTest, UmExperimentSetAndSummary) {
  UmSweepOptions opts = small_um();
  opts.cpu_parts = {0.0, 0.1, 1.0};
  const auto set = run_um_experiments({CaseId::kC1}, opts);
  ASSERT_EQ(set.baseline_a1.size(), 1u);
  ASSERT_EQ(set.optimized_a2.size(), 1u);
  const auto summary = summarize_corun(set);
  EXPECT_GE(summary.avg_best_speedup_optimized_a1, 1.0);
  EXPECT_GE(summary.avg_best_speedup_optimized_a2, 1.0);
  EXPECT_GT(summary.cpu_only_a2_over_a1, 1.0);
  EXPECT_GT(summary.fig3_speedup_max, summary.fig3_speedup_min);
  EXPECT_GT(summary.a1_over_a2_optimized, 0.0);
}

}  // namespace
}  // namespace ghs::core
