#include "ghs/core/reduce.hpp"

#include <gtest/gtest.h>

#include "ghs/util/error.hpp"

namespace ghs::core {
namespace {

using workload::CaseId;

constexpr std::int64_t kSmallM = 1 << 24;  // 16 M elements for fast tests

TEST(ReduceTest, PaperBestTuningMatchesSectionIv) {
  for (CaseId id : workload::all_cases()) {
    const auto tuning = paper_best_tuning(id);
    EXPECT_EQ(tuning.teams, 65536);
    EXPECT_EQ(tuning.thread_limit, 256);
    EXPECT_EQ(tuning.v, id == CaseId::kC2 ? 32 : 4);
  }
}

TEST(ReduceTest, MakeLoopDividesIterationsByV) {
  const auto loop = make_reduction_loop(CaseId::kC1, 1024, 4, false, 0, 0);
  EXPECT_EQ(loop.iterations, 256);
  EXPECT_EQ(loop.v, 4);
  EXPECT_EQ(loop.elements(), 1024);
  EXPECT_EQ(loop.element_size, 4);
}

TEST(ReduceTest, MakeLoopRejectsDegenerateShapes) {
  EXPECT_THROW(make_reduction_loop(CaseId::kC1, 0, 1, false, 0, 0), Error);
  EXPECT_THROW(make_reduction_loop(CaseId::kC1, 2, 4, false, 0, 0), Error);
}

TEST(ReduceTest, ClausesFollowListing5) {
  ReduceTuning tuning{65536, 256, 4};
  const auto clauses = make_clauses(tuning);
  ASSERT_TRUE(clauses.num_teams.has_value());
  EXPECT_EQ(*clauses.num_teams, 16384);  // teams / V
  EXPECT_EQ(*clauses.thread_limit, 256);
}

TEST(ReduceTest, BaselineHasNoClauses) {
  const auto clauses = make_clauses(std::nullopt);
  EXPECT_FALSE(clauses.num_teams.has_value());
  EXPECT_FALSE(clauses.thread_limit.has_value());
}

TEST(ReduceTest, ClausesRejectIndivisibleTeams) {
  EXPECT_THROW(make_clauses(ReduceTuning{100, 256, 32}), Error);
}

TEST(ReduceTest, GpuBenchmarkRunsAndReports) {
  Platform platform;
  GpuBenchmark bench;
  bench.case_id = CaseId::kC1;
  bench.tuning = ReduceTuning{4096, 256, 4};
  bench.elements = kSmallM;
  bench.iterations = 3;
  const auto result = run_gpu_benchmark(platform, bench);
  EXPECT_EQ(result.iterations, 3);
  EXPECT_EQ(result.bytes_per_iteration, kSmallM * 4);
  EXPECT_GT(result.elapsed, 0);
  EXPECT_GT(result.bandwidth.gbps(), 0.0);
  EXPECT_GT(result.last_kernel_duration, 0);
}

TEST(ReduceTest, OptimizedBeatsBaselineAtReducedScale) {
  Platform p1;
  GpuBenchmark baseline;
  baseline.case_id = CaseId::kC1;
  baseline.elements = kSmallM;
  baseline.iterations = 3;
  const auto base = run_gpu_benchmark(p1, baseline);

  Platform p2;
  GpuBenchmark optimized = baseline;
  optimized.tuning = ReduceTuning{65536, 256, 4};
  const auto opt = run_gpu_benchmark(p2, optimized);
  EXPECT_GT(opt.bandwidth.gbps(), base.bandwidth.gbps());
}

TEST(ReduceTest, BandwidthInsensitiveToIterationCount) {
  GpuBenchmark bench;
  bench.case_id = CaseId::kC3;
  bench.tuning = ReduceTuning{8192, 256, 4};
  bench.elements = kSmallM;
  bench.iterations = 2;
  Platform p1;
  const auto two = run_gpu_benchmark(p1, bench);
  bench.iterations = 10;
  Platform p2;
  const auto ten = run_gpu_benchmark(p2, bench);
  EXPECT_NEAR(two.bandwidth.gbps() / ten.bandwidth.gbps(), 1.0, 0.01);
}

TEST(ReduceTest, PaperCpuPartsGrid) {
  const auto parts = paper_cpu_parts();
  ASSERT_EQ(parts.size(), 11u);
  EXPECT_DOUBLE_EQ(parts.front(), 0.0);
  EXPECT_DOUBLE_EQ(parts.back(), 1.0);
  EXPECT_DOUBLE_EQ(parts[5], 0.5);
}

TEST(ReduceTest, HeteroBenchmarkProducesOnePointPerP) {
  Platform platform;
  HeteroBenchmark bench;
  bench.case_id = CaseId::kC1;
  bench.cpu_parts = {0.0, 0.5, 1.0};
  bench.elements = kSmallM;
  bench.iterations = 4;
  const auto result = run_hetero_benchmark(platform, bench);
  ASSERT_EQ(result.points.size(), 3u);
  for (const auto& point : result.points) {
    EXPECT_GT(point.bandwidth.gbps(), 0.0);
    EXPECT_GT(point.elapsed, 0);
  }
  EXPECT_NO_THROW(result.at(0.5));
  EXPECT_THROW(result.at(0.25), Error);
}

TEST(ReduceTest, HeteroGpuOnlyPointSeesRemoteTraffic) {
  Platform platform;
  HeteroBenchmark bench;
  bench.case_id = CaseId::kC1;
  bench.cpu_parts = {0.0};
  bench.elements = kSmallM;
  bench.iterations = 2;
  const auto result = run_hetero_benchmark(platform, bench);
  // First pass is cold: the GPU reads CPU-resident pages.
  EXPECT_GT(result.points[0].gpu_remote_bytes, 0);
}

TEST(ReduceTest, HeteroCpuOnlyPointHasNoGpuTraffic) {
  Platform platform;
  HeteroBenchmark bench;
  bench.case_id = CaseId::kC1;
  bench.cpu_parts = {1.0};
  bench.elements = kSmallM;
  bench.iterations = 2;
  const auto result = run_hetero_benchmark(platform, bench);
  EXPECT_EQ(result.points[0].gpu_remote_bytes, 0);
  // Freshly allocated on the CPU: no remote CPU traffic either.
  EXPECT_EQ(result.points[0].cpu_remote_bytes, 0);
}

TEST(ReduceTest, A2FreesItsAllocations) {
  Platform platform;
  HeteroBenchmark bench;
  bench.case_id = CaseId::kC1;
  bench.site = AllocSite::kA2;
  bench.cpu_parts = {0.0, 1.0};
  bench.elements = kSmallM;
  bench.iterations = 2;
  EXPECT_NO_THROW(run_hetero_benchmark(platform, bench));
}

TEST(ReduceTest, PrefetchWarmsTheGpuSide) {
  HeteroBenchmark bench;
  bench.case_id = CaseId::kC1;
  bench.tuning = paper_best_tuning(CaseId::kC1);
  bench.site = AllocSite::kA2;
  bench.cpu_parts = {0.0};
  bench.elements = kSmallM;
  bench.iterations = 4;

  Platform cold_platform;
  const auto cold = run_hetero_benchmark(cold_platform, bench);
  bench.prefetch = true;
  Platform warm_platform;
  const auto warm = run_hetero_benchmark(warm_platform, bench);
  // Prefetch happens outside the timed region, so the GPU-only point runs
  // entirely from HBM: faster and without remote traffic.
  EXPECT_GT(warm.points[0].bandwidth.gbps(),
            cold.points[0].bandwidth.gbps() * 1.5);
  EXPECT_EQ(warm.points[0].gpu_remote_bytes, 0);
  EXPECT_GT(cold.points[0].gpu_remote_bytes, 0);
}

TEST(ReduceTest, ReadMostlyAdviceFixesCpuOnlyStranding) {
  HeteroBenchmark bench;
  bench.case_id = CaseId::kC1;
  bench.tuning = paper_best_tuning(CaseId::kC1);
  bench.site = AllocSite::kA1;
  bench.cpu_parts = {0.0, 1.0};
  bench.elements = kSmallM;
  bench.iterations = 6;

  Platform plain_platform;
  const auto plain = run_hetero_benchmark(plain_platform, bench);
  bench.read_mostly_advice = true;
  Platform advised_platform;
  const auto advised = run_hetero_benchmark(advised_platform, bench);
  // Without the advice the p=1 point reads HBM-stranded pages; with it the
  // home copies stayed in LPDDR.
  EXPECT_GT(plain.at(1.0).cpu_remote_bytes, 0);
  EXPECT_EQ(advised.at(1.0).cpu_remote_bytes, 0);
  EXPECT_GT(advised.at(1.0).bandwidth.gbps(),
            plain.at(1.0).bandwidth.gbps() * 1.2);
}

TEST(ReduceTest, TwoKernelStrategyHelpsTheBaselineShape) {
  GpuBenchmark bench;
  bench.case_id = CaseId::kC1;
  bench.elements = kSmallM;
  bench.iterations = 2;
  // Baseline-shaped grid via the heuristic with v=1, 128 threads.
  Platform p0;
  const std::int64_t grid = p0.runtime().default_grid(kSmallM);
  bench.tuning = ReduceTuning{grid, 128, 1};
  const auto atomic = run_gpu_benchmark(p0, bench);
  Platform p1;
  bench.tuning->strategy = gpu::CombineStrategy::kTwoKernel;
  const auto two_kernel = run_gpu_benchmark(p1, bench);
  EXPECT_GT(two_kernel.bandwidth.gbps(), atomic.bandwidth.gbps() * 2.0);
}

TEST(ReduceTest, BestSpeedupOverGpuOnly) {
  HeteroBenchmarkResult result;
  HeteroPoint p0;
  p0.cpu_part = 0.0;
  p0.bandwidth = Bandwidth::from_gbps(100.0);
  HeteroPoint p1;
  p1.cpu_part = 0.1;
  p1.bandwidth = Bandwidth::from_gbps(250.0);
  result.points = {p0, p1};
  EXPECT_DOUBLE_EQ(result.best_speedup_over_gpu_only(), 2.5);
}

TEST(ReduceTest, AllocSiteNames) {
  EXPECT_STREQ(alloc_site_name(AllocSite::kA1), "A1");
  EXPECT_STREQ(alloc_site_name(AllocSite::kA2), "A2");
}

}  // namespace
}  // namespace ghs::core
