#include "ghs/core/tuner.hpp"

#include "ghs/core/sweep.hpp"

#include <gtest/gtest.h>

#include "ghs/util/error.hpp"
#include "ghs/util/math.hpp"

namespace ghs::core {
namespace {

using workload::CaseId;

TunerOptions fast_options() {
  TunerOptions options;
  options.elements = 1 << 24;
  options.iterations = 2;
  return options;
}

TEST(TunerTest, FindsANearOptimalConfiguration) {
  const auto options = fast_options();
  const auto tuned = tune_reduction(CaseId::kC1, options);

  // Exhaustive reference over the same lattice (thread_limit pinned).
  SweepOptions sweep;
  sweep.elements = options.elements;
  sweep.iterations = options.iterations;
  const auto rows = table1({CaseId::kC1}, sweep);
  EXPECT_GE(tuned.best_gbps, rows.front().optimized_gbps * 0.98)
      << "hill climb landed more than 2% below the exhaustive optimum";
}

TEST(TunerTest, UsesFarFewerProbesThanTheSweep) {
  const auto tuned = tune_reduction(CaseId::kC1, fast_options());
  // The paper's sweep is 61 valid (teams, V) points.
  EXPECT_LT(tuned.evaluations(), 30u);
  EXPECT_GE(tuned.evaluations(), 3u);
}

TEST(TunerTest, RespectsBounds) {
  TunerOptions options = fast_options();
  options.max_teams = 1024;
  options.max_v = 4;
  const auto tuned = tune_reduction(CaseId::kC3, options);
  for (const auto& probe : tuned.probes) {
    EXPECT_LE(probe.tuning.teams, 1024);
    EXPECT_LE(probe.tuning.v, 4);
    EXPECT_GE(probe.tuning.teams, options.min_teams);
    EXPECT_TRUE(is_pow2(probe.tuning.teams));
  }
}

TEST(TunerTest, MaxProbesCapsTheSearch) {
  TunerOptions options = fast_options();
  options.max_probes = 5;
  const auto tuned = tune_reduction(CaseId::kC2, options);
  EXPECT_LE(tuned.evaluations(), 5u);
  EXPECT_GT(tuned.best_gbps, 0.0);
}

TEST(TunerTest, BestIsMaxOverProbes) {
  const auto tuned = tune_reduction(CaseId::kC4, fast_options());
  double max_seen = 0.0;
  for (const auto& probe : tuned.probes) {
    max_seen = std::max(max_seen, probe.gbps);
  }
  EXPECT_DOUBLE_EQ(tuned.best_gbps, max_seen);
}

TEST(TunerTest, ThreadLimitTuningStaysInBounds) {
  TunerOptions options = fast_options();
  options.tune_thread_limit = true;
  const auto tuned = tune_reduction(CaseId::kC1, options);
  for (const auto& probe : tuned.probes) {
    EXPECT_GE(probe.tuning.thread_limit, options.min_thread_limit);
    EXPECT_LE(probe.tuning.thread_limit, options.max_thread_limit);
  }
}

TEST(TunerTest, InvalidSeedsRejected) {
  const auto options = fast_options();
  ReduceTuning off_lattice;
  off_lattice.teams = 3000;
  EXPECT_THROW(tune_reduction(CaseId::kC1, off_lattice, options), Error);
  ReduceTuning out_of_bounds;
  out_of_bounds.teams = 1 << 20;
  EXPECT_THROW(tune_reduction(CaseId::kC1, out_of_bounds, options), Error);
}

TEST(TunerTest, DeterministicAcrossRuns) {
  const auto a = tune_reduction(CaseId::kC1, fast_options());
  const auto b = tune_reduction(CaseId::kC1, fast_options());
  ASSERT_EQ(a.evaluations(), b.evaluations());
  EXPECT_EQ(a.best.teams, b.best.teams);
  EXPECT_EQ(a.best.v, b.best.v);
  EXPECT_DOUBLE_EQ(a.best_gbps, b.best_gbps);
}

}  // namespace
}  // namespace ghs::core
