#include "ghs/core/verify.hpp"

#include <gtest/gtest.h>

#include "ghs/util/error.hpp"

namespace ghs::core {
namespace {

using workload::CaseId;
using workload::HostArray;
using workload::Pattern;

TEST(VerifyTest, IntReductionVerifiesExactly) {
  const auto input = HostArray::make(CaseId::kC1, 100'000, Pattern::kUniform,
                                     11);
  const auto report = verify_gpu_reduction(input, 4096, 0.0);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.relative_error, 0.0);
  EXPECT_EQ(report.reference.i, report.parallel.i);
}

TEST(VerifyTest, Int8WideningVerifiesExactly) {
  const auto input = HostArray::make(CaseId::kC2, 400'000, Pattern::kUniform,
                                     12);
  EXPECT_TRUE(verify_gpu_reduction(input, 1000, 0.0).ok);
}

TEST(VerifyTest, FloatReductionVerifiesWithinTolerance) {
  const auto input = HostArray::make(CaseId::kC3, 1'000'000,
                                     Pattern::kUniform, 13);
  const auto report =
      verify_gpu_reduction(input, 16384, default_tolerance(CaseId::kC3));
  EXPECT_TRUE(report.ok) << "rel err " << report.relative_error;
  EXPECT_LE(report.relative_error, 1e-3);
}

TEST(VerifyTest, DoubleReductionVerifiesTightly) {
  const auto input = HostArray::make(CaseId::kC4, 1'000'000,
                                     Pattern::kUniform, 14);
  const auto report =
      verify_gpu_reduction(input, 16384, default_tolerance(CaseId::kC4));
  EXPECT_TRUE(report.ok);
  EXPECT_LE(report.relative_error, 1e-9);
}

TEST(VerifyTest, ImpossibleToleranceFailsFloat) {
  const auto input = HostArray::make(CaseId::kC3, 1'000'000,
                                     Pattern::kUniform, 13);
  const auto report = verify_gpu_reduction(input, 16384, 0.0);
  // Reassociating a million float adds essentially never matches exactly.
  EXPECT_FALSE(report.ok);
}

TEST(VerifyTest, CoExecMatchesForAllSplits) {
  const auto input = HostArray::make(CaseId::kC1, 100'000, Pattern::kUniform,
                                     15);
  for (double p : {0.0, 0.3, 0.5, 0.9, 1.0}) {
    const auto split = static_cast<std::int64_t>(p * 100'000);
    const auto report = verify_coexec(input, split, 512, 0.0);
    EXPECT_TRUE(report.ok) << "p=" << p;
  }
}

TEST(VerifyTest, CoExecFloatWithinTolerance) {
  const auto input = HostArray::make(CaseId::kC3, 500'000, Pattern::kUniform,
                                     16);
  const auto report =
      verify_coexec(input, 200'000, 4096, default_tolerance(CaseId::kC3));
  EXPECT_TRUE(report.ok) << report.relative_error;
}

TEST(VerifyTest, CoExecAlternatingPatternCancels) {
  const auto input = HostArray::make(CaseId::kC1, 10'000,
                                     Pattern::kAlternating, 17);
  EXPECT_EQ(input.serial_sum().i, 0);
  EXPECT_TRUE(verify_coexec(input, 5'000, 16, 0.0).ok);
  // Odd split leaves a +1/-1 imbalance between parts but the total still
  // verifies.
  EXPECT_TRUE(verify_coexec(input, 4'999, 16, 0.0).ok);
}

TEST(VerifyTest, SplitBoundsChecked) {
  const auto input = HostArray::make(CaseId::kC1, 100, Pattern::kOnes, 1);
  EXPECT_THROW(verify_coexec(input, -1, 4, 0.0), Error);
  EXPECT_THROW(verify_coexec(input, 101, 4, 0.0), Error);
  EXPECT_THROW(verify_coexec(input, 50, 0, 0.0), Error);
}

TEST(VerifyTest, DefaultTolerances) {
  EXPECT_EQ(default_tolerance(CaseId::kC1), 0.0);
  EXPECT_EQ(default_tolerance(CaseId::kC2), 0.0);
  EXPECT_GT(default_tolerance(CaseId::kC3), 0.0);
  EXPECT_GT(default_tolerance(CaseId::kC4), 0.0);
  EXPECT_LT(default_tolerance(CaseId::kC4), default_tolerance(CaseId::kC3));
}

}  // namespace
}  // namespace ghs::core
