#include "ghs/stats/series.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ghs/util/error.hpp"

namespace ghs::stats {
namespace {

TEST(SeriesTest, AtFindsExactX) {
  Series s("v4");
  s.add(128, 100.0);
  s.add(256, 200.0);
  EXPECT_EQ(s.at(128).value(), 100.0);
  EXPECT_EQ(s.at(256).value(), 200.0);
  EXPECT_FALSE(s.at(512).has_value());
}

TEST(SeriesTest, MaxY) {
  Series s("x");
  s.add(0, 3.0);
  s.add(1, 7.0);
  s.add(2, 5.0);
  EXPECT_DOUBLE_EQ(s.max_y(), 7.0);
}

TEST(SeriesTest, MaxYOfEmptyThrows) {
  Series s("empty");
  EXPECT_THROW(s.max_y(), Error);
}

TEST(FigureTest, DuplicateSeriesRejected) {
  Figure f("t", "x", "y");
  f.add_series("a");
  EXPECT_THROW(f.add_series("a"), Error);
}

TEST(FigureTest, FindSeries) {
  Figure f("t", "x", "y");
  f.add_series("a");
  EXPECT_NE(f.find_series("a"), nullptr);
  EXPECT_EQ(f.find_series("b"), nullptr);
}

TEST(FigureTest, RenderMergesXAxis) {
  Figure f("Fig", "teams", "GB/s");
  auto& v1 = f.add_series("v1");
  v1.add(128, 100.0);
  v1.add(256, 200.0);
  auto& v2 = f.add_series("v2");
  v2.add(256, 250.0);
  std::ostringstream oss;
  f.render(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("Fig"), std::string::npos);
  EXPECT_NE(out.find("v1"), std::string::npos);
  EXPECT_NE(out.find("v2"), std::string::npos);
  // v2 has no point at x=128: rendered as "-".
  EXPECT_NE(out.find("-"), std::string::npos);
  EXPECT_NE(out.find("250.000"), std::string::npos);
}

TEST(FigureTest, CsvHasHeaderAndRows) {
  Figure f("Fig", "p", "GB/s");
  auto& c1 = f.add_series("C1");
  c1.add(0.0, 620.0);
  c1.add(0.5, 900.0);
  std::ostringstream oss;
  f.render_csv(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("p,C1"), std::string::npos) << out;
  EXPECT_NE(out.find("620.000"), std::string::npos);
}

TEST(FigureTest, SeriesReferencesStayValidAcrossAdds) {
  // Regression: references returned by add_series must survive later
  // add_series calls (storage is reference-stable).
  Figure f("t", "x", "y");
  auto& a = f.add_series("a");
  auto& b = f.add_series("b");
  auto& c = f.add_series("c");
  for (int i = 0; i < 100; ++i) {
    a.add(i, 1.0);
    b.add(i, 2.0);
    c.add(i, 3.0);
  }
  EXPECT_EQ(a.points().size(), 100u);
  EXPECT_EQ(f.find_series("a")->at(50).value(), 1.0);
  EXPECT_EQ(f.find_series("c")->at(50).value(), 3.0);
}

TEST(FigureTest, IntegerXRenderedWithoutDecimals) {
  Figure f("Fig", "teams", "GB/s");
  f.add_series("s").add(65536, 1.0);
  std::ostringstream oss;
  f.render_csv(oss);
  EXPECT_NE(oss.str().find("65536,"), std::string::npos) << oss.str();
}

}  // namespace
}  // namespace ghs::stats
