#include "ghs/stats/chart.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ghs/util/error.hpp"

namespace ghs::stats {
namespace {

Figure simple_figure() {
  Figure figure("test figure", "x", "y");
  auto& a = figure.add_series("alpha");
  a.add(1, 10.0);
  a.add(2, 20.0);
  a.add(4, 40.0);
  auto& b = figure.add_series("beta");
  b.add(1, 40.0);
  b.add(2, 20.0);
  b.add(4, 10.0);
  return figure;
}

TEST(ChartTest, RendersTitleLegendAndAxes) {
  std::ostringstream oss;
  render_chart(simple_figure(), oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("test figure"), std::string::npos);
  EXPECT_NE(out.find("legend: o=alpha +=beta"), std::string::npos);
  EXPECT_NE(out.find('|'), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(ChartTest, PlotsBothSeriesGlyphs) {
  std::ostringstream oss;
  render_chart(simple_figure(), oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find('o'), std::string::npos);
  // 'beta' uses '+', which also appears on the axis; count occurrences.
  EXPECT_GT(std::count(out.begin(), out.end(), '+'), 1);
}

TEST(ChartTest, RowAndColumnCountsMatchOptions) {
  ChartOptions options;
  options.width = 40;
  options.height = 8;
  std::ostringstream oss;
  render_chart(simple_figure(), oss, options);
  std::istringstream lines(oss.str());
  std::string line;
  int plot_rows = 0;
  while (std::getline(lines, line)) {
    if (line.find('|') != std::string::npos) ++plot_rows;
  }
  EXPECT_EQ(plot_rows, 8);
}

TEST(ChartTest, HighestPointOnTopRow) {
  Figure figure("t", "x", "y");
  auto& s = figure.add_series("s");
  s.add(0, 0.0);
  s.add(1, 100.0);
  ChartOptions options;
  options.width = 20;
  options.height = 5;
  std::ostringstream oss;
  render_chart(figure, oss, options);
  std::istringstream lines(oss.str());
  std::string line;
  std::getline(lines, line);  // title
  std::getline(lines, line);  // top row
  EXPECT_NE(line.find('o'), std::string::npos) << oss.str();
}

TEST(ChartTest, LogXRequiresPositiveX) {
  Figure figure("t", "x", "y");
  figure.add_series("s").add(0.0, 1.0);
  ChartOptions options;
  options.log_x = true;
  std::ostringstream oss;
  EXPECT_THROW(render_chart(figure, oss, options), Error);
}

TEST(ChartTest, EmptyFigureRejected) {
  Figure figure("t", "x", "y");
  std::ostringstream oss;
  EXPECT_THROW(render_chart(figure, oss), Error);
}

TEST(ChartTest, TinyAreaRejected) {
  ChartOptions options;
  options.width = 4;
  std::ostringstream oss;
  EXPECT_THROW(render_chart(simple_figure(), oss, options), Error);
}

TEST(ChartTest, ConstantSeriesDoesNotDivideByZero) {
  Figure figure("t", "x", "y");
  auto& s = figure.add_series("s");
  s.add(1, 5.0);
  s.add(2, 5.0);
  std::ostringstream oss;
  EXPECT_NO_THROW(render_chart(figure, oss));
}

TEST(ChartTest, SinglePointFigure) {
  Figure figure("t", "x", "y");
  figure.add_series("s").add(3, 7.0);
  std::ostringstream oss;
  EXPECT_NO_THROW(render_chart(figure, oss));
  EXPECT_NE(oss.str().find('o'), std::string::npos);
}

}  // namespace
}  // namespace ghs::stats
