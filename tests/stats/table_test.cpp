#include "ghs/stats/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ghs/util/error.hpp"

namespace ghs::stats {
namespace {

TEST(TableTest, RequiresColumns) {
  EXPECT_THROW(Table({}), Error);
}

TEST(TableTest, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), Error);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), Error);
  EXPECT_NO_THROW(t.add_row({"1", "2"}));
  EXPECT_EQ(t.rows(), 1u);
}

TEST(TableTest, RenderAligns) {
  Table t({"Case", "GB/s"});
  t.add_row({"C1", "620"});
  t.add_row({"C2", "17234"});
  std::ostringstream oss;
  t.render(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("| Case |"), std::string::npos) << out;
  EXPECT_NE(out.find("17234"), std::string::npos);
  // All data lines have equal width.
  std::istringstream lines(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << out;
  }
}

TEST(TableTest, CsvBasic) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream oss;
  t.render_csv(oss);
  EXPECT_EQ(oss.str(), "x,y\n1,2\n");
}

TEST(TableTest, CsvQuotesSpecialCharacters) {
  Table t({"name"});
  t.add_row({"a,b"});
  t.add_row({"he said \"hi\""});
  std::ostringstream oss;
  t.render_csv(oss);
  EXPECT_EQ(oss.str(), "name\n\"a,b\"\n\"he said \"\"hi\"\"\"\n");
}

TEST(TableTest, EmptyTableRendersHeaderOnly) {
  Table t({"only"});
  std::ostringstream oss;
  t.render_csv(oss);
  EXPECT_EQ(oss.str(), "only\n");
}

}  // namespace
}  // namespace ghs::stats
