#include "ghs/stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ghs/util/error.hpp"

namespace ghs::stats {
namespace {

TEST(SummaryTest, EmptySummaryThrowsOnAccess) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW(s.mean(), Error);
  EXPECT_THROW(s.min(), Error);
  EXPECT_THROW(s.max(), Error);
}

TEST(SummaryTest, SingleValue) {
  Summary s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SummaryTest, KnownMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SummaryTest, NegativeValues) {
  Summary s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
}

TEST(SummaryTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0, 1.0}), 2.0);
  EXPECT_NEAR(geometric_mean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(geometric_mean({5.0}), 5.0);
}

TEST(SummaryTest, GeometricMeanRejectsNonPositive) {
  EXPECT_THROW(geometric_mean({}), Error);
  EXPECT_THROW(geometric_mean({1.0, 0.0}), Error);
  EXPECT_THROW(geometric_mean({1.0, -2.0}), Error);
}

TEST(SummaryTest, ArithmeticMean) {
  EXPECT_DOUBLE_EQ(arithmetic_mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_THROW(arithmetic_mean({}), Error);
}

TEST(SummaryTest, PercentileEndpoints) {
  std::vector<double> v = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
}

TEST(SummaryTest, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(SummaryTest, PercentileRejectsBadInput) {
  EXPECT_THROW(percentile({}, 0.5), Error);
  EXPECT_THROW(percentile({1.0}, -0.1), Error);
  EXPECT_THROW(percentile({1.0}, 1.1), Error);
}

TEST(SummaryTest, PercentilesBundleMatchesPercentile) {
  std::vector<double> v;
  for (int i = 100; i >= 1; --i) v.push_back(static_cast<double>(i));
  const auto p = percentiles(v);
  EXPECT_DOUBLE_EQ(p.p50, percentile(v, 0.50));
  EXPECT_DOUBLE_EQ(p.p95, percentile(v, 0.95));
  EXPECT_DOUBLE_EQ(p.p99, percentile(v, 0.99));
  EXPECT_DOUBLE_EQ(p.p50, 50.5);
}

TEST(SummaryTest, PercentilesSingleValue) {
  const auto p = percentiles({7.5});
  EXPECT_DOUBLE_EQ(p.p50, 7.5);
  EXPECT_DOUBLE_EQ(p.p95, 7.5);
  EXPECT_DOUBLE_EQ(p.p99, 7.5);
  EXPECT_DOUBLE_EQ(p.p999, 7.5);
}

TEST(SummaryTest, PercentilesIncludeP999) {
  std::vector<double> v;
  for (int i = 1; i <= 1000; ++i) v.push_back(static_cast<double>(i));
  const auto p = percentiles(v);
  EXPECT_DOUBLE_EQ(p.p999, percentile(v, 0.999));
  EXPECT_GT(p.p999, p.p99);
}

TEST(SummaryTest, QuantilesArbitraryListInOneSort) {
  std::vector<double> v = {9.0, 1.0, 5.0, 3.0, 7.0};
  const auto qs = quantiles(v, {0.0, 0.5, 1.0, 0.25});
  ASSERT_EQ(qs.size(), 4u);
  EXPECT_DOUBLE_EQ(qs[0], 1.0);
  EXPECT_DOUBLE_EQ(qs[1], 5.0);
  EXPECT_DOUBLE_EQ(qs[2], 9.0);
  EXPECT_DOUBLE_EQ(qs[3], percentile(v, 0.25));
  EXPECT_TRUE(quantiles({1.0}, {}).empty());
  EXPECT_THROW(quantiles({}, {0.5}), Error);
  EXPECT_THROW(quantiles({1.0}, {1.5}), Error);
}

TEST(SummaryTest, SortedQuantileIsThePrimitive) {
  const std::vector<double> sorted = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(sorted_quantile(sorted, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(sorted_quantile(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(sorted_quantile(sorted, 1.0), 10.0);
  EXPECT_THROW(sorted_quantile({}, 0.5), Error);
  EXPECT_THROW(sorted_quantile(sorted, -0.1), Error);
}

TEST(SummaryTest, HistogramQuantileInterpolatesCrossingBucket) {
  // Bounds (0,10] (10,20]; 4 observations in the first, 4 in the second.
  const std::vector<double> bounds = {10.0, 20.0};
  const std::vector<std::int64_t> cumulative = {4, 8, 8};
  // Median sits at the first/second bucket boundary.
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, cumulative, 0.5), 10.0);
  // q=1 lands at the top of the last populated finite bucket.
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, cumulative, 1.0), 20.0);
  // Inside the second bucket the estimate interpolates between 10 and 20.
  const double p75 = histogram_quantile(bounds, cumulative, 0.75);
  EXPECT_GT(p75, 10.0);
  EXPECT_LE(p75, 20.0);
}

TEST(SummaryTest, HistogramQuantileClampsOverflowToLastBound) {
  // All mass in the +Inf bucket: the estimate clamps to the last finite
  // bound instead of inventing an infinite latency.
  const std::vector<double> bounds = {1.0, 2.0};
  const std::vector<std::int64_t> cumulative = {0, 0, 5};
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, cumulative, 0.99), 2.0);
}

TEST(SummaryTest, HistogramQuantileRejectsBadInput) {
  const std::vector<double> bounds = {1.0};
  EXPECT_THROW(histogram_quantile(bounds, {0, 0}, 0.5), Error);  // total 0
  EXPECT_THROW(histogram_quantile(bounds, {1}, 0.5), Error);  // size mismatch
  EXPECT_THROW(histogram_quantile(bounds, {1, 1}, 1.5), Error);
}

TEST(SummaryTest, PercentilesOfEmptySeriesAreZero) {
  // Report code feeds whatever survived a run through here; "nothing
  // survived" must degrade to zeros, not throw.
  const Percentiles pct = percentiles({});
  EXPECT_DOUBLE_EQ(pct.p50, 0.0);
  EXPECT_DOUBLE_EQ(pct.p95, 0.0);
  EXPECT_DOUBLE_EQ(pct.p99, 0.0);
  EXPECT_DOUBLE_EQ(pct.p999, 0.0);
}

TEST(SummaryTest, PercentilesOfSingleSamplePinToThatSample) {
  const Percentiles pct = percentiles({3.5});
  EXPECT_DOUBLE_EQ(pct.p50, 3.5);
  EXPECT_DOUBLE_EQ(pct.p95, 3.5);
  EXPECT_DOUBLE_EQ(pct.p99, 3.5);
  EXPECT_DOUBLE_EQ(pct.p999, 3.5);
}

}  // namespace
}  // namespace ghs::stats
