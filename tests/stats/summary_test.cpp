#include "ghs/stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ghs/util/error.hpp"

namespace ghs::stats {
namespace {

TEST(SummaryTest, EmptySummaryThrowsOnAccess) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW(s.mean(), Error);
  EXPECT_THROW(s.min(), Error);
  EXPECT_THROW(s.max(), Error);
}

TEST(SummaryTest, SingleValue) {
  Summary s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SummaryTest, KnownMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SummaryTest, NegativeValues) {
  Summary s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
}

TEST(SummaryTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0, 1.0}), 2.0);
  EXPECT_NEAR(geometric_mean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(geometric_mean({5.0}), 5.0);
}

TEST(SummaryTest, GeometricMeanRejectsNonPositive) {
  EXPECT_THROW(geometric_mean({}), Error);
  EXPECT_THROW(geometric_mean({1.0, 0.0}), Error);
  EXPECT_THROW(geometric_mean({1.0, -2.0}), Error);
}

TEST(SummaryTest, ArithmeticMean) {
  EXPECT_DOUBLE_EQ(arithmetic_mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_THROW(arithmetic_mean({}), Error);
}

TEST(SummaryTest, PercentileEndpoints) {
  std::vector<double> v = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
}

TEST(SummaryTest, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(SummaryTest, PercentileRejectsBadInput) {
  EXPECT_THROW(percentile({}, 0.5), Error);
  EXPECT_THROW(percentile({1.0}, -0.1), Error);
  EXPECT_THROW(percentile({1.0}, 1.1), Error);
}

TEST(SummaryTest, PercentilesBundleMatchesPercentile) {
  std::vector<double> v;
  for (int i = 100; i >= 1; --i) v.push_back(static_cast<double>(i));
  const auto p = percentiles(v);
  EXPECT_DOUBLE_EQ(p.p50, percentile(v, 0.50));
  EXPECT_DOUBLE_EQ(p.p95, percentile(v, 0.95));
  EXPECT_DOUBLE_EQ(p.p99, percentile(v, 0.99));
  EXPECT_DOUBLE_EQ(p.p50, 50.5);
}

TEST(SummaryTest, PercentilesSingleValue) {
  const auto p = percentiles({7.5});
  EXPECT_DOUBLE_EQ(p.p50, 7.5);
  EXPECT_DOUBLE_EQ(p.p95, 7.5);
  EXPECT_DOUBLE_EQ(p.p99, 7.5);
  EXPECT_THROW(percentiles({}), Error);
}

}  // namespace
}  // namespace ghs::stats
