// Cluster semantics: the terminal-outcome invariant, spill-on-reject
// backpressure, transfer-cost accounting, peer-fallback stealing under a
// device-down fault plan, and byte-reproducibility at a fixed seed.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ghs/cluster/cluster.hpp"
#include "ghs/cluster/ring.hpp"
#include "ghs/fault/injector.hpp"
#include "ghs/fault/plan.hpp"
#include "ghs/serve/loadgen.hpp"
#include "ghs/slo/monitor.hpp"
#include "ghs/telemetry/exporters.hpp"
#include "ghs/telemetry/registry.hpp"

namespace ghs::cluster {
namespace {

/// Open-loop workload with tenants assigned by id hash and every tenant's
/// data homed on node 0 — remote placement cost is then visible for any
/// router that spreads load.
std::vector<serve::Job> fleet_workload(std::uint64_t seed, int jobs,
                                       double rate_hz) {
  serve::OpenLoopOptions load;
  load.jobs = jobs;
  load.rate_hz = rate_hz;
  load.seed = seed;
  load.shape.min_log2_elements = 14;
  load.shape.max_log2_elements = 18;
  auto out = serve::open_loop_poisson(load);
  for (auto& job : out) {
    job.tenant =
        static_cast<std::int64_t>(mix64(static_cast<std::uint64_t>(job.id)) % 16);
    job.source_node = 0;
  }
  return out;
}

void check_invariant(const ClusterReport& report) {
  EXPECT_EQ(report.submitted, report.served + report.rejected + report.shed);
}

ClusterReport run_fleet(ClusterOptions options, std::uint64_t seed, int jobs,
                        double rate_hz, fault::Injector* injector = nullptr) {
  serve::ServiceModel model;
  options.node.injector = injector;
  Cluster fleet(model, options);
  fleet.submit_all(fleet_workload(seed, jobs, rate_hz));
  fleet.run();
  return fleet.report();
}

TEST(Cluster, ServesTheWholeWorkloadAcrossNodes) {
  ClusterOptions options;
  options.nodes = 4;
  options.router = RouterPolicy::kLeast;
  const ClusterReport report = run_fleet(options, 42, 400, 150000.0);
  check_invariant(report);
  EXPECT_EQ(report.submitted, 400);
  EXPECT_EQ(report.rejected, 0);
  EXPECT_EQ(report.shed, 0);
  EXPECT_GT(report.makespan, 0);
  ASSERT_EQ(report.routed.size(), 4u);
  for (const std::int64_t routed : report.routed) EXPECT_GT(routed, 0);
  EXPECT_GE(report.imbalance, 1.0);
  ASSERT_EQ(report.node_reports.size(), 4u);
  std::int64_t node_served = 0;
  for (const auto& node : report.node_reports) node_served += node.served;
  EXPECT_EQ(node_served, report.served);
}

TEST(Cluster, RemoteDataPaysTransfersThatAreAccounted) {
  ClusterOptions options;
  options.nodes = 4;
  options.router = RouterPolicy::kLeast;
  serve::ServiceModel model;
  Cluster fleet(model, options);
  fleet.submit_all(fleet_workload(42, 200, 150000.0));
  fleet.run();
  const ClusterReport report = fleet.report();
  check_invariant(report);
  // Everything is homed on node 0, so any job served elsewhere is remote.
  EXPECT_GT(report.remote_jobs, 0);
  EXPECT_GT(report.transfers, 0);
  EXPECT_GT(report.transfer_gb, 0.0);
  ASSERT_NE(fleet.interconnect(), nullptr);
  EXPECT_EQ(fleet.interconnect()->transfers(), report.transfers);
  for (const auto& record : fleet.records()) {
    if (record.node != 0) {
      EXPECT_GT(record.transfer, 0) << "job " << record.record.job.id;
    } else if (record.spills == 0 && !record.stolen) {
      EXPECT_EQ(record.transfer, 0) << "job " << record.record.job.id;
    }
    // Front-door latency covers the transfer plus the node-local life.
    EXPECT_GE(record.latency(),
              record.record.completion - record.record.job.arrival);
  }
}

TEST(Cluster, HashRouterKeepsTenantsLocalToTheirDataHome) {
  ClusterOptions options;
  options.nodes = 4;
  options.router = RouterPolicy::kHash;
  serve::ServiceModel model;
  Cluster fleet(model, options);
  // Home every tenant where the router's own ring puts it: routing then
  // lands each job exactly on its data and no transfer is ever paid.
  auto jobs = fleet_workload(42, 200, 120000.0);
  for (auto& job : jobs) {
    job.source_node =
        fleet.router().ring().owner(static_cast<std::uint64_t>(job.tenant));
  }
  fleet.submit_all(std::move(jobs));
  fleet.run();
  const ClusterReport report = fleet.report();
  check_invariant(report);
  EXPECT_EQ(report.remote_jobs, 0);
  EXPECT_EQ(report.transfers, 0);
}

TEST(Cluster, SpillRescuesJobsARefusingNodeWouldReject) {
  // Two nodes, shallow queues, a burst well past one node's capacity:
  // without spill the refusing node's rejections are final; with spill
  // they get a second chance on the peer.
  ClusterOptions options;
  options.nodes = 2;
  options.router = RouterPolicy::kHash;  // load-blind: piles onto hot nodes
  options.node.queue_depth = 4;

  ClusterOptions no_spill = options;
  no_spill.spill = false;
  const ClusterReport without = run_fleet(no_spill, 42, 300, 400000.0);
  const ClusterReport with = run_fleet(options, 42, 300, 400000.0);

  check_invariant(without);
  check_invariant(with);
  EXPECT_GT(without.rejected, 0);
  EXPECT_EQ(without.spills, 0);
  EXPECT_GT(with.spills, 0);
  EXPECT_GT(with.spilled_saved, 0);
  EXPECT_LT(with.rejected, without.rejected);
}

TEST(Cluster, StealMovesQueuedWorkOffANodeWhoseGpuBreakerOpens) {
  // Tenant-sticky routing keeps feeding the sick node while its GPU is
  // down, so the breaker trips with work still queued behind it; the
  // steal path must drain that queue to healthy peers and lose nothing.
  const auto plan = fault::parse_plan("device-down gpu from=200us until=1200us\n");
  fault::Injector injector(plan, 7, {});
  ClusterOptions options;
  options.nodes = 4;
  options.router = RouterPolicy::kHash;
  options.fault_node = 1;
  options.node.queue_depth = 512;  // deep: admission never rejects
  const ClusterReport report =
      run_fleet(options, 42, 400, 300000.0, &injector);

  check_invariant(report);
  EXPECT_EQ(report.rejected, 0);
  EXPECT_EQ(report.shed, 0);
  EXPECT_EQ(report.served, report.submitted);  // zero lost jobs
  EXPECT_GT(report.steals, 0);
  EXPECT_GT(report.stolen_jobs, 0);
}

TEST(Cluster, StolenJobsAreServedByHealthyPeers) {
  const auto plan = fault::parse_plan("device-down gpu from=200us until=1200us\n");
  fault::Injector injector(plan, 7, {});
  ClusterOptions options;
  options.nodes = 4;
  options.router = RouterPolicy::kHash;
  options.fault_node = 1;
  options.node.queue_depth = 512;
  serve::ServiceModel model;
  options.node.injector = &injector;
  Cluster fleet(model, options);
  fleet.submit_all(fleet_workload(42, 400, 300000.0));
  fleet.run();

  std::int64_t stolen_seen = 0;
  for (const auto& record : fleet.records()) {
    if (!record.stolen) continue;
    ++stolen_seen;
    EXPECT_NE(record.node, 1) << "job " << record.record.job.id;
    EXPECT_GT(record.transfer, 0) << "job " << record.record.job.id;
  }
  EXPECT_EQ(stolen_seen, fleet.report().stolen_jobs);
  EXPECT_GT(stolen_seen, 0);
}

TEST(Cluster, SameSeedRunsAreByteIdentical) {
  const auto once = [](RouterPolicy router) {
    const auto plan =
        fault::parse_plan("kernel-fault gpu p=0.05\n"
                          "device-down gpu from=200us until=900us\n");
    fault::Injector injector(plan, 7, {});
    ClusterOptions options;
    options.nodes = 4;
    options.router = router;
    options.fault_node = 1;
    const ClusterReport report =
        run_fleet(options, 42, 300, 250000.0, &injector);
    std::ostringstream os;
    report.write_json(os);
    return os.str();
  };
  for (const auto router :
       {RouterPolicy::kHash, RouterPolicy::kLeast, RouterPolicy::kP2c}) {
    EXPECT_EQ(once(router), once(router))
        << router_policy_name(router);
  }
}

TEST(Cluster, ExportsNamespacedTelemetryAndFeedsSlo) {
  telemetry::Registry registry;
  ClusterOptions options;
  options.nodes = 2;
  options.router = RouterPolicy::kLeast;
  options.node.telemetry.metrics = &registry;
  serve::ServiceModel model;
  Cluster fleet(model, options);
  fleet.submit_all(fleet_workload(42, 150, 150000.0));
  fleet.run();

  std::ostringstream snapshot;
  telemetry::write_json_snapshot(snapshot, registry);
  const std::string metrics = snapshot.str();
  // Node-level instruments carry node="i"; cluster-level ones the router.
  // Label blocks render Prometheus-style inside the JSON keys, so the
  // quotes arrive escaped.
  EXPECT_NE(metrics.find("ghs_cluster_jobs_submitted_total"), std::string::npos);
  EXPECT_NE(metrics.find("node=\\\"0\\\""), std::string::npos);
  EXPECT_NE(metrics.find("node=\\\"1\\\""), std::string::npos);
  EXPECT_NE(metrics.find("router=\\\"least\\\""), std::string::npos);

  slo::Monitor monitor({slo::Objective{"availability",
                                       slo::ObjectiveKind::kAvailability,
                                       0.999, 0.0},
                        slo::Objective{"latency_p99",
                                       slo::ObjectiveKind::kLatencyQuantile,
                                       0.99, 1000.0}});
  fleet.feed_slo(monitor);
  std::ostringstream slo_os;
  monitor.evaluate().write_json(slo_os);
  const std::string slo_json = slo_os.str();
  EXPECT_NE(slo_json.find("\"availability\""), std::string::npos);
  EXPECT_NE(slo_json.find("\"latency_p99\""), std::string::npos);
}

}  // namespace
}  // namespace ghs::cluster
