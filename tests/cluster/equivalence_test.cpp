// The determinism guard for clustering: a single-node passthrough fleet is
// the standalone service, byte for byte — same report JSON, same telemetry
// snapshot, same chrome trace. Any cluster machinery that leaks into the
// nodes=1 wire-through (an extra event, a perturbed instrument, a resequenced
// arrival) breaks these string equalities.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "ghs/cluster/cluster.hpp"
#include "ghs/serve/loadgen.hpp"
#include "ghs/serve/policy.hpp"
#include "ghs/serve/service.hpp"
#include "ghs/telemetry/exporters.hpp"
#include "ghs/telemetry/registry.hpp"
#include "ghs/trace/tracer.hpp"

namespace ghs::cluster {
namespace {

serve::OpenLoopOptions small_workload(std::uint64_t seed) {
  serve::OpenLoopOptions load;
  load.jobs = 120;
  load.rate_hz = 300000.0;  // past capacity: queues, rejections, batching
  load.seed = seed;
  load.shape.min_log2_elements = 14;
  load.shape.max_log2_elements = 18;
  return load;
}

struct RunOutput {
  std::string report;
  std::string metrics;
  std::string trace;
};

serve::ServiceOptions base_options(telemetry::Registry* registry) {
  serve::ServiceOptions options;
  options.queue_depth = 16;
  options.telemetry.metrics = registry;
  return options;
}

RunOutput run_standalone(std::uint64_t seed) {
  telemetry::Registry registry;
  trace::Tracer tracer;
  serve::ServiceModel model;
  serve::ReductionService service(serve::make_policy("fifo", model), model,
                                  base_options(&registry), &tracer);
  service.submit_all(serve::open_loop_poisson(small_workload(seed)));
  service.run();
  RunOutput out;
  std::ostringstream report;
  service.report().write_json(report);
  out.report = report.str();
  std::ostringstream metrics;
  telemetry::write_json_snapshot(metrics, registry);
  out.metrics = metrics.str();
  std::ostringstream trace_json;
  tracer.write_chrome_json(trace_json);
  out.trace = trace_json.str();
  return out;
}

RunOutput run_passthrough(std::uint64_t seed) {
  telemetry::Registry registry;
  trace::Tracer tracer;
  serve::ServiceModel model;
  ClusterOptions options;
  options.nodes = 1;
  options.router = RouterPolicy::kPassthrough;
  options.node = base_options(&registry);
  Cluster fleet(model, options, &tracer);
  // The workload is the standalone one verbatim: passthrough must not
  // require (or react to) tenant or placement annotations.
  fleet.submit_all(serve::open_loop_poisson(small_workload(seed)));
  fleet.run();
  RunOutput out;
  std::ostringstream report;
  fleet.report().node_reports.at(0).write_json(report);
  out.report = report.str();
  std::ostringstream metrics;
  telemetry::write_json_snapshot(metrics, registry);
  out.metrics = metrics.str();
  std::ostringstream trace_json;
  tracer.write_chrome_json(trace_json);
  out.trace = trace_json.str();
  return out;
}

TEST(PassthroughEquivalence, ReportSnapshotAndTraceAreByteIdentical) {
  for (const std::uint64_t seed : {42u, 7u, 1234u}) {
    const RunOutput standalone = run_standalone(seed);
    const RunOutput fleet = run_passthrough(seed);
    EXPECT_EQ(standalone.report, fleet.report) << "seed " << seed;
    EXPECT_EQ(standalone.metrics, fleet.metrics) << "seed " << seed;
    EXPECT_EQ(standalone.trace, fleet.trace) << "seed " << seed;
  }
}

TEST(PassthroughEquivalence, ClusterTotalsMirrorTheSingleNode) {
  serve::ServiceModel model;
  ClusterOptions options;
  options.nodes = 1;
  options.router = RouterPolicy::kPassthrough;
  options.node.queue_depth = 16;
  Cluster fleet(model, options);
  fleet.submit_all(serve::open_loop_poisson(small_workload(42)));
  fleet.run();
  const ClusterReport report = fleet.report();
  const serve::ServiceReport& node = report.node_reports.at(0);
  EXPECT_EQ(report.submitted, node.submitted);
  EXPECT_EQ(report.served, node.served);
  EXPECT_EQ(report.rejected, node.rejected);
  EXPECT_EQ(report.submitted, report.served + report.rejected + report.shed);
  EXPECT_EQ(report.remote_jobs, 0);
  EXPECT_EQ(report.transfers, 0);
  EXPECT_EQ(report.spills, 0);
  EXPECT_EQ(report.steals, 0);
  EXPECT_EQ(fleet.interconnect(), nullptr);
}

TEST(PassthroughEquivalence, PassthroughRequiresExactlyOneNode) {
  serve::ServiceModel model;
  ClusterOptions options;
  options.nodes = 2;
  options.router = RouterPolicy::kPassthrough;
  EXPECT_THROW(Cluster(model, options), Error);
}

}  // namespace
}  // namespace ghs::cluster
