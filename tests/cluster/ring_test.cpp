// HashRing: determinism, balance, and the consistent-hashing contract —
// resizing the node set remaps only the keys that must move.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "ghs/cluster/ring.hpp"
#include "ghs/util/error.hpp"
#include "ghs/util/rng.hpp"

namespace ghs::cluster {
namespace {

constexpr std::uint64_t kKeys = 10000;

std::vector<int> owners(const HashRing& ring) {
  std::vector<int> result;
  result.reserve(kKeys);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    result.push_back(ring.owner(key));
  }
  return result;
}

TEST(HashRing, PointsAndMembership) {
  HashRing ring(32);
  EXPECT_EQ(ring.nodes(), 0u);
  ring.add_node(0);
  ring.add_node(1);
  EXPECT_TRUE(ring.contains(0));
  EXPECT_FALSE(ring.contains(7));
  EXPECT_EQ(ring.nodes(), 2u);
  EXPECT_EQ(ring.points(), 64u);
  ring.add_node(0);  // idempotent
  EXPECT_EQ(ring.points(), 64u);
  ring.remove_node(5);  // absent: no-op
  EXPECT_EQ(ring.points(), 64u);
  ring.remove_node(1);
  EXPECT_EQ(ring.nodes(), 1u);
  EXPECT_EQ(ring.points(), 32u);
}

TEST(HashRing, OwnerIsDeterministicAndCoversAllNodes) {
  HashRing a(64);
  HashRing b(64);
  for (int n = 0; n < 8; ++n) {
    a.add_node(n);
    b.add_node(n);
  }
  std::map<int, int> per_node;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const int owner = a.owner(key);
    EXPECT_EQ(owner, b.owner(key));
    ++per_node[owner];
  }
  EXPECT_EQ(per_node.size(), 8u);
  // Virtual nodes keep the split reasonable: no node owns more than ~3x
  // its fair share of a uniform key set.
  for (const auto& [node, count] : per_node) {
    EXPECT_LT(count, static_cast<int>(kKeys) * 3 / 8) << "node " << node;
  }
}

TEST(HashRing, SmallIntegerKeysDoNotCollapseOntoNodeZero) {
  // Regression: node 0's ring points are derived from the raw words
  // 0..vnodes-1; with a single mix they coincided exactly with small
  // integer keys (tenant ids), handing node 0 every tenant < vnodes.
  HashRing ring(64);
  for (int n = 0; n < 4; ++n) ring.add_node(n);
  std::map<int, int> per_node;
  for (std::uint64_t tenant = 0; tenant < 64; ++tenant) {
    ++per_node[ring.owner(tenant)];
  }
  EXPECT_GT(per_node.size(), 1u);
  EXPECT_LT(per_node[0], 48);
}

TEST(HashRing, AddingANodeRemapsOnlyTowardIt) {
  HashRing ring(64);
  for (int n = 0; n < 8; ++n) ring.add_node(n);
  const std::vector<int> before = owners(ring);
  ring.add_node(8);
  const std::vector<int> after = owners(ring);
  std::uint64_t moved = 0;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    if (before[key] == after[key]) continue;
    ++moved;
    // A key may only move to the new node — never between old nodes.
    EXPECT_EQ(after[key], 8) << "key " << key;
  }
  // ~1/9 of the key space should move; bound it loosely on both sides.
  EXPECT_GT(moved, kKeys / 50);
  EXPECT_LT(moved, kKeys / 4);
}

TEST(HashRing, RemovingANodeRemapsOnlyItsKeys) {
  HashRing ring(64);
  for (int n = 0; n < 8; ++n) ring.add_node(n);
  const std::vector<int> before = owners(ring);
  ring.remove_node(3);
  const std::vector<int> after = owners(ring);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    if (before[key] == 3) {
      EXPECT_NE(after[key], 3) << "key " << key;
    } else {
      // Keys that never belonged to the departed node stay put.
      EXPECT_EQ(before[key], after[key]) << "key " << key;
    }
  }
}

TEST(HashRing, AddRemoveRoundTripRestoresPlacement) {
  HashRing ring(64);
  for (int n = 0; n < 6; ++n) ring.add_node(n);
  const std::vector<int> before = owners(ring);
  ring.add_node(6);
  ring.remove_node(6);
  EXPECT_EQ(before, owners(ring));
}

TEST(HashRing, ChurnPropertyInterleavedAddRemoveStaysConsistent) {
  // Membership churn (crashes, rejoins, drains) is an arbitrary interleave
  // of add_node/remove_node. Property: after every step, no key routes to
  // a departed node, and the remap from the previous step is exactly the
  // consistent-hashing minimum — removals move only the departed node's
  // keys, additions move keys only toward the newcomer, and never more
  // than a loose multiple of the 1/N fair share.
  Rng rng(2026);
  HashRing ring(64);
  std::set<int> members;
  constexpr int kPool = 12;
  for (int n = 0; n < 4; ++n) {
    ring.add_node(n);
    members.insert(n);
  }
  std::vector<int> before = owners(ring);
  for (int step = 0; step < 200; ++step) {
    const int node = static_cast<int>(rng.next_below(kPool));
    const bool removing = members.count(node) > 0 && members.size() > 1;
    if (removing) {
      ring.remove_node(node);
      members.erase(node);
    } else if (members.count(node) == 0) {
      ring.add_node(node);
      members.insert(node);
    } else {
      continue;  // sole member: removal would empty the ring
    }
    const std::vector<int> after = owners(ring);
    std::uint64_t moved = 0;
    for (std::uint64_t key = 0; key < kKeys; ++key) {
      ASSERT_TRUE(members.count(after[key]) > 0)
          << "step " << step << " key " << key << " routed to departed node "
          << after[key];
      if (before[key] == after[key]) continue;
      ++moved;
      if (removing) {
        ASSERT_EQ(before[key], node) << "step " << step << " key " << key;
      } else {
        ASSERT_EQ(after[key], node) << "step " << step << " key " << key;
      }
    }
    // ~1/N of the key space belongs to the churned node; allow 3x for
    // virtual-node variance at small N.
    ASSERT_LT(moved, kKeys * 3 / members.size())
        << "step " << step << " moved " << moved << " of " << kKeys;
    before = after;
  }
}

TEST(HashRing, EmptyRingThrows) {
  HashRing ring(8);
  EXPECT_THROW(ring.owner(1), Error);
}

}  // namespace
}  // namespace ghs::cluster
