// Router policies: parsing, tenant affinity, least-loaded selection, and
// the power-of-two-choices load-spread property.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "ghs/cluster/router.hpp"
#include "ghs/util/error.hpp"

namespace ghs::cluster {
namespace {

serve::Job tenant_job(std::int64_t tenant) {
  serve::Job job;
  job.id = tenant * 1000;
  job.tenant = tenant;
  return job;
}

TEST(RouterPolicy, ParseAndNameRoundTrip) {
  for (const auto policy :
       {RouterPolicy::kPassthrough, RouterPolicy::kHash, RouterPolicy::kLeast,
        RouterPolicy::kP2c}) {
    EXPECT_EQ(parse_router_policy(router_policy_name(policy)), policy);
  }
  EXPECT_THROW(parse_router_policy("round-robin"), Error);
}

TEST(Router, PassthroughAlwaysPicksNodeZero) {
  Router router(RouterPolicy::kPassthrough, 1);
  const std::vector<std::size_t> loads = {5};
  EXPECT_EQ(router.pick(tenant_job(3), loads), 0);
}

TEST(Router, HashIsTenantStickyAndLoadBlind) {
  Router router(RouterPolicy::kHash, 1);
  for (int n = 0; n < 8; ++n) router.add_node(n);
  std::set<int> seen;
  for (std::int64_t tenant = 0; tenant < 64; ++tenant) {
    const int first = router.pick(tenant_job(tenant), {0, 0, 0, 0, 0, 0, 0, 0});
    const int second =
        router.pick(tenant_job(tenant), {9, 9, 9, 9, 9, 9, 9, 9});
    EXPECT_EQ(first, second) << "tenant " << tenant;
    seen.insert(first);
  }
  EXPECT_GT(seen.size(), 4u);
}

TEST(Router, LeastPicksArgminLowestIndexOnTies) {
  Router router(RouterPolicy::kLeast, 1);
  EXPECT_EQ(router.pick(tenant_job(0), {3, 1, 2, 1}), 1);
  EXPECT_EQ(router.pick(tenant_job(0), {2, 2, 2}), 0);
}

TEST(Router, LeastLoadedExceptSkipsTheExcludedNode) {
  EXPECT_EQ(Router::least_loaded_except({0, 5, 7}, 0), 1);
  EXPECT_EQ(Router::least_loaded_except({9, 5, 7}, 1), 2);
  EXPECT_EQ(Router::least_loaded_except({1, 1, 1}, 0), 1);
}

TEST(Router, P2cIsDeterministicAtASeed) {
  Router a(RouterPolicy::kP2c, 99);
  Router b(RouterPolicy::kP2c, 99);
  std::vector<std::size_t> loads(16, 0);
  for (int i = 0; i < 1000; ++i) {
    const int pick_a = a.pick(tenant_job(i), loads);
    const int pick_b = b.pick(tenant_job(i), loads);
    ASSERT_EQ(pick_a, pick_b) << "draw " << i;
    ++loads[static_cast<std::size_t>(pick_a)];
  }
}

// The Mitzenmacher property: choosing the less loaded of two random nodes
// keeps the bins near-balanced, while a single random choice drifts.
// Balls-in-bins with the router as the ball placer; loads are the bin
// counts, so the router sees exact occupancy like the cluster does.
TEST(Router, P2cSpreadsLoadFarBetterThanOneRandomChoice) {
  constexpr int kBalls = 16000;
  constexpr std::size_t kBins = 16;

  Router p2c(RouterPolicy::kP2c, 7);
  std::vector<std::size_t> p2c_loads(kBins, 0);
  for (int i = 0; i < kBalls; ++i) {
    ++p2c_loads[static_cast<std::size_t>(p2c.pick(tenant_job(i), p2c_loads))];
  }

  Rng random(7);
  std::vector<std::size_t> random_loads(kBins, 0);
  for (int i = 0; i < kBalls; ++i) {
    ++random_loads[random.next_below(kBins)];
  }

  const auto spread = [](const std::vector<std::size_t>& loads) {
    const auto [lo, hi] = std::minmax_element(loads.begin(), loads.end());
    return *hi - *lo;
  };
  // Two informed choices keep bins within a handful of balls of each
  // other; one blind choice wanders by O(sqrt(n)) — dozens of balls here.
  EXPECT_LE(spread(p2c_loads), 8u);
  EXPECT_GT(spread(random_loads), spread(p2c_loads));
  for (const std::size_t count : p2c_loads) EXPECT_GT(count, 0u);
}

}  // namespace
}  // namespace ghs::cluster
