// Failure domains end to end: whole-node crashes with journal replay keep
// the zero-lost-jobs invariant, restarts rejoin through the detector's
// warm-up, drains empty a node gracefully, late deliveries are suppressed
// exactly once, and every membership run is byte-reproducible — while a
// membership-off run stays byte-identical to a membership-unaware build.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ghs/cluster/cluster.hpp"
#include "ghs/fault/plan.hpp"
#include "ghs/serve/loadgen.hpp"
#include "ghs/telemetry/flight_recorder.hpp"
#include "ghs/util/units.hpp"

namespace ghs::cluster {
namespace {

std::vector<serve::Job> fleet_workload(std::uint64_t seed, int jobs,
                                       double rate_hz) {
  serve::OpenLoopOptions load;
  load.jobs = jobs;
  load.rate_hz = rate_hz;
  load.seed = seed;
  load.shape.min_log2_elements = 14;
  load.shape.max_log2_elements = 18;
  auto out = serve::open_loop_poisson(load);
  for (auto& job : out) {
    job.tenant = static_cast<std::int64_t>(
        mix64(static_cast<std::uint64_t>(job.id)) % 16);
    job.source_node = 0;
  }
  return out;
}

void check_invariant(const ClusterReport& report) {
  EXPECT_EQ(report.submitted, report.served + report.rejected + report.shed);
}

ClusterReport run_fleet(ClusterOptions options, int jobs, double rate_hz) {
  serve::ServiceModel model;
  Cluster fleet(model, options);
  fleet.submit_all(fleet_workload(42, jobs, rate_hz));
  fleet.run();
  return fleet.report();
}

TEST(Membership, CrashReplayKeepsTheInvariant) {
  ClusterOptions options;
  options.nodes = 4;
  options.router = RouterPolicy::kLeast;
  options.crash_plan = fault::parse_crash_plan("1@300us");
  const ClusterReport report = run_fleet(options, 400, 250000.0);
  check_invariant(report);
  ASSERT_TRUE(report.membership_aware);
  EXPECT_EQ(report.membership.crashes, 1);
  EXPECT_EQ(report.membership.restarts, 0);
  // The detector is off, so death is declared at the crash instant.
  EXPECT_EQ(report.membership.detections, 1);
  EXPECT_DOUBLE_EQ(report.membership.detection_mean_ms, 0.0);
  // Node 1 had work queued/in flight at 300us; all of it was replayed.
  EXPECT_GT(report.membership.replayed, 0);
  EXPECT_GT(report.membership.replay_gb, 0.0);
  ASSERT_EQ(report.membership.final_states.size(), 4u);
  EXPECT_EQ(report.membership.final_states[1], "dead");
  EXPECT_EQ(report.membership.final_states[0], "alive");
}

TEST(Membership, ReplayedJobsLandOnSurvivors) {
  ClusterOptions options;
  options.nodes = 4;
  options.router = RouterPolicy::kLeast;
  options.crash_plan = fault::parse_crash_plan("1@300us");
  serve::ServiceModel model;
  Cluster fleet(model, options);
  fleet.submit_all(fleet_workload(42, 400, 250000.0));
  fleet.run();
  const SimTime crash_at = 300 * kMicrosecond;
  for (const auto& record : fleet.records()) {
    if (record.record.completion > crash_at) {
      EXPECT_NE(record.node, 1) << "job " << record.record.job.id
                                << " served on the dead node";
    }
  }
  // Nothing stays open in the journal at the end of a run.
  const auto* journal = fleet.journal();
  ASSERT_NE(journal, nullptr);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(journal->open_count(i), 0);
}

TEST(Membership, CrashWithRestartRejoinsThroughTheDetector) {
  ClusterOptions options;
  options.nodes = 4;
  options.router = RouterPolicy::kLeast;
  options.crash_plan = fault::parse_crash_plan("1@300us:2ms");
  options.health.enabled = true;
  options.health.interval = 100 * kMicrosecond;
  options.health.rejoin_delay = 200 * kMicrosecond;
  // Long tail of arrivals so the fleet is still busy past the rejoin.
  const ClusterReport report = run_fleet(options, 1200, 120000.0);
  check_invariant(report);
  EXPECT_EQ(report.membership.crashes, 1);
  EXPECT_EQ(report.membership.restarts, 1);
  EXPECT_EQ(report.membership.detections, 1);
  // Heartbeat detection is quantised to sweeps: strictly positive latency.
  EXPECT_GT(report.membership.detection_mean_ms, 0.0);
  EXPECT_GT(report.membership.replayed, 0);
  EXPECT_EQ(report.membership.final_states[1], "alive");
  // alive->suspect->dead->alive: three transitions at minimum.
  EXPECT_GE(report.membership.transitions, 3);
}

TEST(Membership, DrainFlushesQueuedWorkAndLeavesTheRing) {
  ClusterOptions options;
  options.nodes = 4;
  options.router = RouterPolicy::kHash;  // load-blind: keeps node 1 busy
  options.drains.push_back(DrainSpec{1, 400 * kMicrosecond});
  serve::ServiceModel model;
  Cluster fleet(model, options);
  fleet.submit_all(fleet_workload(42, 400, 250000.0));
  fleet.run();
  const ClusterReport report = fleet.report();
  check_invariant(report);
  EXPECT_EQ(report.membership.crashes, 0);
  EXPECT_EQ(report.membership.drains, 1);
  EXPECT_EQ(report.membership.replayed, 0);  // drain is not a failure
  EXPECT_EQ(report.membership.final_states[1], "left");
  EXPECT_FALSE(fleet.router().ring().contains(1));
  // Drained work is rerouted, not lost: zero rejections at this load.
  EXPECT_EQ(report.served, report.submitted);
}

TEST(Membership, ProgrammaticDrainBeforeTrafficEmptiesTheNode) {
  ClusterOptions options;
  options.nodes = 3;
  options.router = RouterPolicy::kLeast;
  options.enable_membership = true;  // no schedule: caller-driven drain
  serve::ServiceModel model;
  Cluster fleet(model, options);
  fleet.drain(1);
  fleet.submit_all(fleet_workload(42, 200, 150000.0));
  fleet.run();
  const ClusterReport report = fleet.report();
  check_invariant(report);
  EXPECT_EQ(report.membership.drains, 1);
  EXPECT_EQ(report.membership.drain_flushed, 0);  // nothing queued yet
  EXPECT_EQ(report.routed[1], 0);
  EXPECT_EQ(report.node_reports[1].served, 0);
  EXPECT_EQ(report.served, report.submitted);
}

TEST(Membership, LateDeliveriesAreSuppressedExactlyOnce) {
  // A slow interconnect keeps deliveries to node 1 in flight when the
  // crash fires; replay re-runs those jobs elsewhere, and the landing
  // transfer must then be dropped — served exactly once, never zero.
  ClusterOptions options;
  options.nodes = 3;
  options.router = RouterPolicy::kLeast;
  options.interconnect.link_bw = Bandwidth::from_gbps(2.0);
  options.crash_plan = fault::parse_crash_plan("1@500us");
  const ClusterReport report = run_fleet(options, 300, 300000.0);
  check_invariant(report);
  EXPECT_GT(report.membership.duplicate_suppressed, 0);
  EXPECT_GT(report.membership.replayed, 0);
}

TEST(Membership, CrashRunsAreByteIdentical) {
  const auto once = [] {
    ClusterOptions options;
    options.nodes = 4;
    options.router = RouterPolicy::kP2c;
    options.crash_plan = fault::parse_crash_plan("1@300us:2ms,2@900us");
    options.health.enabled = true;
    const ClusterReport report = run_fleet(options, 600, 200000.0);
    std::ostringstream os;
    report.write_json(os);
    return os.str();
  };
  EXPECT_EQ(once(), once());
}

TEST(Membership, DetectorOnCrashFreeRunMatchesOffExceptMembershipKey) {
  // The detector only observes: with no crash plan, every byte of the
  // report except the trailing "membership" object must match the
  // membership-off run.
  ClusterOptions off;
  off.nodes = 4;
  off.router = RouterPolicy::kLeast;
  ClusterOptions on = off;
  on.health.enabled = true;

  const auto render = [](ClusterOptions options) {
    const ClusterReport report = run_fleet(options, 400, 200000.0);
    std::ostringstream os;
    report.write_json(os);
    return os.str();
  };
  const std::string off_json = render(off);
  const std::string on_json = render(on);
  const auto pos = on_json.find(",\"membership\":");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_EQ(off_json, on_json.substr(0, pos) + "}");
  EXPECT_EQ(off_json.find("\"membership\""), std::string::npos);
}

TEST(Membership, TransitionsAndCrashesReachTheFlightRecorder) {
  telemetry::FlightRecorder flight;
  ClusterOptions options;
  options.nodes = 4;
  options.router = RouterPolicy::kLeast;
  options.crash_plan = fault::parse_crash_plan("1@300us");
  options.node.telemetry.flight = &flight;
  serve::ServiceModel model;
  Cluster fleet(model, options);
  fleet.submit_all(fleet_workload(42, 300, 200000.0));
  fleet.run();

  bool saw_crash = false;
  bool saw_transition = false;
  for (const auto& event : flight.events()) {
    if (event.layer != "membership") continue;
    // Structured detail: node label first, then the narrative.
    EXPECT_EQ(event.detail.rfind("node=1 ", 0), 0u) << event.detail;
    if (event.kind == "crash") {
      saw_crash = true;
      EXPECT_EQ(event.at, 300 * kMicrosecond);
    }
    if (event.kind == "transition") {
      saw_transition = true;
      EXPECT_NE(event.detail.find("dead"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_transition);
}

}  // namespace
}  // namespace ghs::cluster
