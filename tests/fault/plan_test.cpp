#include "ghs/fault/plan.hpp"

#include <gtest/gtest.h>

#include "ghs/util/error.hpp"

namespace ghs::fault {
namespace {

TEST(FaultPlanTest, ParsesEveryFaultKind) {
  const auto plan = parse_plan(
      "# a comment line\n"
      "kernel-fault gpu p=0.05\n"
      "kernel-fault cpu from=2ms until=3ms\n"
      "bandwidth gpu scale=0.25 from=1ms until=4ms\n"
      "device-down gpu from=5ms until=8ms\n"
      "migration-stall scale=0.1 from=2ms until=6ms\n"
      "error-latency 25us\n");
  ASSERT_EQ(plan.kernel_faults.size(), 2u);
  EXPECT_EQ(plan.kernel_faults[0].target, Target::kGpu);
  EXPECT_DOUBLE_EQ(plan.kernel_faults[0].probability, 0.05);
  EXPECT_TRUE(plan.kernel_faults[0].window.unbounded());
  EXPECT_EQ(plan.kernel_faults[1].target, Target::kCpu);
  EXPECT_DOUBLE_EQ(plan.kernel_faults[1].probability, 1.0);
  EXPECT_EQ(plan.kernel_faults[1].window.begin, 2 * kMillisecond);
  EXPECT_EQ(plan.kernel_faults[1].window.end, 3 * kMillisecond);
  ASSERT_EQ(plan.bandwidth_episodes.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.bandwidth_episodes[0].scale, 0.25);
  ASSERT_EQ(plan.outages.size(), 1u);
  EXPECT_EQ(plan.outages[0].window.begin, 5 * kMillisecond);
  ASSERT_EQ(plan.migration_stalls.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.migration_stalls[0].scale, 0.1);
  EXPECT_EQ(plan.down_error_latency, 25 * kMicrosecond);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.size(), 5u);
}

TEST(FaultPlanTest, EmptyAndCommentOnlyTextYieldsEmptyPlan) {
  EXPECT_TRUE(parse_plan("").empty());
  EXPECT_TRUE(parse_plan("# nothing\n\n  # also nothing\n").empty());
}

TEST(FaultPlanTest, TimeUnitsCoverPicosecondsToSeconds) {
  const auto plan = parse_plan("device-down gpu from=500ns until=1500000ps\n"
                               "device-down cpu from=1ms until=2s\n");
  EXPECT_EQ(plan.outages[0].window.begin, 500 * kNanosecond);
  EXPECT_EQ(plan.outages[0].window.end, 1500000 * kPicosecond);
  EXPECT_EQ(plan.outages[1].window.end, 2 * kSecond);
}

TEST(FaultPlanTest, RejectsMalformedLinesWithLineNumbers) {
  EXPECT_THROW(parse_plan("explode gpu\n"), Error);
  EXPECT_THROW(parse_plan("kernel-fault gpu p=1.5\n"), Error);
  EXPECT_THROW(parse_plan("kernel-fault gpu\n"), Error);  // no p, no window
  EXPECT_THROW(parse_plan("bandwidth gpu from=1ms until=2ms\n"), Error);
  EXPECT_THROW(parse_plan("bandwidth gpu scale=0\n"), Error);
  EXPECT_THROW(parse_plan("device-down gpu\n"), Error);
  EXPECT_THROW(parse_plan("device-down nvme from=1ms until=2ms\n"), Error);
  EXPECT_THROW(parse_plan("device-down gpu from=2ms until=1ms\n"), Error);
  EXPECT_THROW(parse_plan("device-down gpu from=2 until=3\n"), Error);
  EXPECT_THROW(parse_plan("kernel-fault gpu probability=0.5\n"), Error);
  try {
    parse_plan("kernel-fault gpu p=0.5\nbogus\n");
    FAIL() << "expected parse error";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }
}

TEST(FaultPlanTest, FormatRoundTripsThroughParse) {
  const auto plan = parse_plan(
      "kernel-fault gpu p=0.05\n"
      "bandwidth cpu scale=0.5 from=1ms until=4ms\n"
      "device-down gpu from=5ms until=8ms\n"
      "migration-stall scale=0.1 from=2ms until=6ms\n"
      "error-latency 25us\n");
  const auto reparsed = parse_plan(format_plan(plan));
  EXPECT_EQ(format_plan(reparsed), format_plan(plan));
  EXPECT_EQ(reparsed.size(), plan.size());
  EXPECT_EQ(reparsed.down_error_latency, plan.down_error_latency);
  EXPECT_EQ(reparsed.outages[0].window.begin, plan.outages[0].window.begin);
}

TEST(NodeCrashPlanTest, ParsesCrashAndRestartEntries) {
  const auto plan = parse_crash_plan("1@300us:2ms, 2@1ms\n3@500ns");
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.crashes[0].node, 1);
  EXPECT_EQ(plan.crashes[0].at, 300 * kMicrosecond);
  EXPECT_EQ(plan.crashes[0].restart_at, 2 * kMillisecond);
  EXPECT_EQ(plan.crashes[1].node, 2);
  EXPECT_EQ(plan.crashes[1].restart_at, 0);  // never restarts
  EXPECT_EQ(plan.crashes[2].at, 500 * kNanosecond);
  EXPECT_TRUE(parse_crash_plan("").empty());
  EXPECT_TRUE(parse_crash_plan("  \n ,").empty());
}

TEST(NodeCrashPlanTest, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_crash_plan("bogus"), Error);
  EXPECT_THROW(parse_crash_plan("1"), Error);           // no time
  EXPECT_THROW(parse_crash_plan("@300us"), Error);      // no node
  EXPECT_THROW(parse_crash_plan("-1@300us"), Error);    // negative node
  EXPECT_THROW(parse_crash_plan("1@300us:100us"), Error);  // restart <= at
  EXPECT_THROW(parse_crash_plan("1@300usx"), Error);    // trailing junk
}

TEST(NodeCrashPlanTest, FormatRoundTripsThroughParse) {
  const auto plan = parse_crash_plan("1@300us:2ms,0@1ms");
  const auto reparsed = parse_crash_plan(format_crash_plan(plan));
  EXPECT_EQ(format_crash_plan(reparsed), format_crash_plan(plan));
  ASSERT_EQ(reparsed.size(), plan.size());
  EXPECT_EQ(reparsed.crashes[0].restart_at, plan.crashes[0].restart_at);
}

TEST(ParseDurationTest, CoversAllUnitsAndRejectsJunk) {
  EXPECT_EQ(parse_duration("250ps"), 250);
  EXPECT_EQ(parse_duration("3ns"), 3 * kNanosecond);
  EXPECT_EQ(parse_duration("40us"), 40 * kMicrosecond);
  EXPECT_EQ(parse_duration("7ms"), 7 * kMillisecond);
  EXPECT_EQ(parse_duration("2s"), 2 * kSecond);
  EXPECT_THROW(parse_duration(""), Error);
  EXPECT_THROW(parse_duration("10"), Error);    // unit required
  EXPECT_THROW(parse_duration("ms"), Error);    // value required
  EXPECT_THROW(parse_duration("-1us"), Error);  // negative
}

TEST(FaultPlanTest, WindowSemantics) {
  Window window{10, 20};
  EXPECT_TRUE(window.contains(10));
  EXPECT_TRUE(window.contains(19));
  EXPECT_FALSE(window.contains(20));  // half-open
  EXPECT_FALSE(window.contains(9));
  EXPECT_TRUE(window.overlaps(0, 11));
  EXPECT_TRUE(window.overlaps(19, 30));
  EXPECT_FALSE(window.overlaps(0, 10));
  EXPECT_FALSE(window.overlaps(20, 30));
  EXPECT_FALSE(window.unbounded());
  EXPECT_TRUE(Window{}.unbounded());
}

}  // namespace
}  // namespace ghs::fault
