#include "ghs/fault/injector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ghs/telemetry/flight_recorder.hpp"
#include "ghs/telemetry/registry.hpp"

namespace ghs::fault {
namespace {

TEST(InjectorTest, DeviceDownFollowsOutageWindows) {
  const auto plan = parse_plan("device-down gpu from=1ms until=2ms\n");
  Injector injector(plan, 1);
  EXPECT_FALSE(injector.device_down(Target::kGpu, 0));
  EXPECT_TRUE(injector.device_down(Target::kGpu, 1 * kMillisecond));
  EXPECT_TRUE(injector.device_down(Target::kGpu, 2 * kMillisecond - 1));
  EXPECT_FALSE(injector.device_down(Target::kGpu, 2 * kMillisecond));
  EXPECT_FALSE(injector.device_down(Target::kCpu, 1 * kMillisecond));
  EXPECT_TRUE(injector.outage_overlaps(Target::kGpu, 0, kMillisecond + 1));
  EXPECT_FALSE(injector.outage_overlaps(Target::kGpu, 0, kMillisecond));
  EXPECT_FALSE(injector.outage_overlaps(Target::kGpu, 2 * kMillisecond,
                                        3 * kMillisecond));
}

TEST(InjectorTest, OverlappingBandwidthEpisodesCompound) {
  const auto plan = parse_plan(
      "bandwidth gpu scale=0.5 from=0ms until=2ms\n"
      "bandwidth gpu scale=0.5 from=1ms until=3ms\n"
      "bandwidth cpu scale=0.25\n");
  Injector injector(plan, 1);
  EXPECT_DOUBLE_EQ(injector.service_scale(Target::kGpu, 0), 2.0);
  EXPECT_DOUBLE_EQ(injector.service_scale(Target::kGpu, kMillisecond), 4.0);
  EXPECT_DOUBLE_EQ(injector.service_scale(Target::kGpu, 3 * kMillisecond),
                   1.0);
  // The CPU episode has no window, so it is active for the whole run.
  EXPECT_DOUBLE_EQ(injector.service_scale(Target::kCpu, 5 * kSecond), 4.0);
}

TEST(InjectorTest, MigrationStallScaleFollowsWindow) {
  const auto plan = parse_plan("migration-stall scale=0.1 from=2ms until=6ms\n");
  Injector injector(plan, 1);
  EXPECT_DOUBLE_EQ(injector.migration_stall_scale(0), 1.0);
  EXPECT_DOUBLE_EQ(injector.migration_stall_scale(2 * kMillisecond), 10.0);
}

TEST(InjectorTest, WindowedKernelFaultFailsEveryLaunchInside) {
  const auto plan = parse_plan("kernel-fault gpu from=1ms until=2ms\n");
  Injector injector(plan, 1);
  EXPECT_FALSE(injector.kernel_fails(Target::kGpu, 0));
  EXPECT_TRUE(injector.kernel_fails(Target::kGpu, 1 * kMillisecond));
  EXPECT_FALSE(injector.kernel_fails(Target::kCpu, 1 * kMillisecond));
  EXPECT_FALSE(injector.kernel_fails(Target::kGpu, 2 * kMillisecond));
  EXPECT_EQ(injector.stats().kernel_faults, 1);
}

TEST(InjectorTest, ProbabilisticFaultsReplayFromSeed) {
  const auto plan = parse_plan("kernel-fault gpu p=0.3\n");
  const auto sequence = [&plan](std::uint64_t seed) {
    Injector injector(plan, seed);
    std::vector<bool> fails;
    for (SimTime t = 0; t < 200; ++t) {
      fails.push_back(injector.kernel_fails(Target::kGpu, t));
    }
    return fails;
  };
  const auto a = sequence(42);
  EXPECT_EQ(a, sequence(42));
  EXPECT_NE(a, sequence(43));
  // ~30% of launches fail; a wild miss means the draw is broken.
  const auto failures =
      static_cast<std::size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(failures, 30u);
  EXPECT_LT(failures, 90u);
}

TEST(InjectorTest, CertainFaultConsumesNoRandomness) {
  // p=1 and p=0 specs must not draw, so adding them around a fractional
  // spec leaves its stream untouched.
  const auto bare = parse_plan("kernel-fault gpu p=0.5\n");
  const auto padded = parse_plan(
      "kernel-fault cpu p=1\n"
      "kernel-fault gpu p=0.5\n"
      "kernel-fault cpu p=0\n");
  Injector a(bare, 9);
  Injector b(padded, 9);
  for (SimTime t = 0; t < 100; ++t) {
    EXPECT_EQ(a.kernel_fails(Target::kGpu, t),
              b.kernel_fails(Target::kGpu, t));
  }
}

TEST(InjectorTest, TransitionsAreSortedUniqueWindowBoundaries) {
  const auto plan = parse_plan(
      "device-down gpu from=1ms until=2ms\n"
      "bandwidth gpu scale=0.5 from=2ms until=4ms\n"
      "kernel-fault gpu p=0.1\n");  // unbounded: no boundary
  Injector injector(plan, 1);
  const std::vector<SimTime> expected = {1 * kMillisecond, 2 * kMillisecond,
                                         4 * kMillisecond};
  EXPECT_EQ(injector.transitions(), expected);
}

TEST(InjectorTest, InstrumentsInjectionsWhenSinkAttached) {
  telemetry::Registry registry;
  telemetry::FlightRecorder flight;
  const auto plan = parse_plan("kernel-fault gpu from=0ms until=1ms\n");
  Injector injector(plan, 1, {&registry, &flight});
  ASSERT_TRUE(injector.kernel_fails(Target::kGpu, 0));
  injector.note_outage_fault(Target::kGpu, 5);
  injector.note_slowed_launch(Target::kCpu, 6, 2.0);
  injector.note_stalled_launch(7, 4.0);
  EXPECT_EQ(registry
                .counter("ghs_fault_kernel_failures_total",
                         {{"device", "gpu"}})
                .value(),
            1);
  EXPECT_EQ(registry
                .counter("ghs_fault_outage_failures_total",
                         {{"device", "gpu"}})
                .value(),
            1);
  EXPECT_EQ(registry
                .counter("ghs_fault_slowed_launches_total",
                         {{"device", "cpu"}})
                .value(),
            1);
  EXPECT_EQ(registry.counter("ghs_fault_stalled_launches_total", {}).value(),
            1);
  EXPECT_EQ(flight.size(), 4u);
  EXPECT_EQ(flight.events().front().layer, "fault");
}

}  // namespace
}  // namespace ghs::fault
