#include "ghs/fault/breaker.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ghs::fault {
namespace {

BreakerOptions options(int failures, SimTime open_for, int closes = 1) {
  BreakerOptions o;
  o.failure_threshold = failures;
  o.open_duration = open_for;
  o.close_threshold = closes;
  return o;
}

TEST(CircuitBreakerTest, StaysClosedBelowThreshold) {
  CircuitBreaker breaker(options(3, kMillisecond));
  breaker.record_failure(0);
  breaker.record_failure(1);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow(2));
  // A success resets the consecutive count.
  breaker.record_success(3);
  breaker.record_failure(4);
  breaker.record_failure(5);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.opens(), 0);
}

TEST(CircuitBreakerTest, OpensAtThresholdAndBlocksUntilCooldown) {
  CircuitBreaker breaker(options(3, kMillisecond));
  breaker.record_failure(10);
  breaker.record_failure(20);
  breaker.record_failure(30);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 1);
  EXPECT_EQ(breaker.probe_at(), 30 + kMillisecond);
  EXPECT_FALSE(breaker.allow(31));
  EXPECT_FALSE(breaker.allow(30 + kMillisecond - 1));
  // Cool-down elapsed: the next allow() admits the half-open probe.
  EXPECT_TRUE(breaker.allow(30 + kMillisecond));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
}

TEST(CircuitBreakerTest, ProbeSuccessClosesProbeFailureReopens) {
  CircuitBreaker breaker(options(2, kMillisecond));
  breaker.record_failure(0);
  breaker.record_failure(1);
  ASSERT_TRUE(breaker.allow(1 + kMillisecond));
  breaker.record_failure(2 + kMillisecond);  // probe failed
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 2);
  ASSERT_TRUE(breaker.allow(2 + 2 * kMillisecond));
  breaker.record_success(3 + 2 * kMillisecond);  // probe succeeded
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow(4 + 2 * kMillisecond));
}

TEST(CircuitBreakerTest, CloseThresholdRequiresConsecutiveProbeSuccesses) {
  CircuitBreaker breaker(options(1, kMillisecond, /*closes=*/2));
  breaker.record_failure(0);
  ASSERT_TRUE(breaker.allow(kMillisecond));
  breaker.record_success(kMillisecond + 1);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.record_success(kMillisecond + 2);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, TransitionHookSeesEveryStateChange) {
  CircuitBreaker breaker(options(1, kMillisecond));
  std::vector<std::string> transitions;
  std::vector<SimTime> at;
  breaker.set_on_transition(
      [&](BreakerState from, BreakerState to, SimTime when) {
        transitions.push_back(std::string(breaker_state_name(from)) + ">" +
                              breaker_state_name(to));
        at.push_back(when);
      });
  breaker.record_failure(5);
  ASSERT_TRUE(breaker.allow(5 + kMillisecond));
  breaker.record_success(6 + kMillisecond);
  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0], "closed>open");
  EXPECT_EQ(transitions[1], "open>half-open");
  EXPECT_EQ(transitions[2], "half-open>closed");
  EXPECT_EQ(at[0], 5);
  EXPECT_EQ(at[1], 5 + kMillisecond);
}

}  // namespace
}  // namespace ghs::fault
