#include "ghs/trace/chrome_exporter.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "ghs/trace/tracer.hpp"

namespace ghs::trace {
namespace {

std::string render(const Tracer& tracer, ChromeTraceOptions options = {}) {
  std::ostringstream os;
  ChromeTraceExporter(tracer, options).write(os);
  return os.str();
}

// Golden file for an empty tracer: the export is exactly the process and
// thread metadata. Guards the (pid, tid) layout — Perfetto groups tracks
// by these ids, so silently renumbering them breaks saved trace configs.
TEST(ChromeTraceExporterTest, EmptyTracerGolden) {
  const std::string expected =
      "{\"displayTimeUnit\":\"ns\",\"traceEvents\":["
      "{\"pid\":1,\"tid\":0,\"ph\":\"M\",\"name\":\"process_name\","
      "\"args\":{\"name\":\"H100 GPU\"}},"
      "{\"pid\":2,\"tid\":0,\"ph\":\"M\",\"name\":\"process_name\","
      "\"args\":{\"name\":\"Grace CPU\"}},"
      "{\"pid\":3,\"tid\":0,\"ph\":\"M\",\"name\":\"process_name\","
      "\"args\":{\"name\":\"Reduction service\"}},"
      "{\"pid\":1,\"tid\":0,\"ph\":\"M\",\"name\":\"thread_name\","
      "\"args\":{\"name\":\"GPU kernels\"}},"
      "{\"pid\":1,\"tid\":1,\"ph\":\"M\",\"name\":\"thread_name\","
      "\"args\":{\"name\":\"GPU waves\"}},"
      "{\"pid\":2,\"tid\":2,\"ph\":\"M\",\"name\":\"thread_name\","
      "\"args\":{\"name\":\"CPU reduction\"}},"
      "{\"pid\":1,\"tid\":3,\"ph\":\"M\",\"name\":\"thread_name\","
      "\"args\":{\"name\":\"UM migration\"}},"
      "{\"pid\":3,\"tid\":4,\"ph\":\"M\",\"name\":\"thread_name\","
      "\"args\":{\"name\":\"OpenMP runtime\"}},"
      "{\"pid\":3,\"tid\":5,\"ph\":\"M\",\"name\":\"thread_name\","
      "\"args\":{\"name\":\"Reduction service\"}},"
      "{\"pid\":3,\"tid\":6,\"ph\":\"M\",\"name\":\"thread_name\","
      "\"args\":{\"name\":\"Job spans\"}}"
      "]}";
  EXPECT_EQ(render(Tracer{}), expected);
}

// Golden file for one context-carrying job: queue span on the service
// process, kernel span on the GPU process, one flow arrow between them.
TEST(ChromeTraceExporterTest, ContextSpansAndFlowGolden) {
  Tracer tracer;
  const Context queue_ctx{0x10, 2, 1};
  tracer.record(Track::kJobs, "serve.queue", 0, 1000, "attempt=0",
                queue_ctx);
  tracer.record(Track::kGpu, "gpu.kernel", 1000, 3000, {},
                queue_ctx.child(3));
  const std::string json = render(tracer);

  EXPECT_NE(json.find("{\"pid\":3,\"tid\":6,\"ph\":\"X\",\"ts\":0,"
                      "\"dur\":0.001,\"name\":\"serve.queue\","
                      "\"args\":{\"detail\":\"attempt=0\","
                      "\"trace_id\":\"0000000000000010\",\"span_id\":2,"
                      "\"parent_id\":1}}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"pid\":1,\"tid\":0,\"ph\":\"X\",\"ts\":0.001,"
                      "\"dur\":0.002,\"name\":\"gpu.kernel\","
                      "\"args\":{\"trace_id\":\"0000000000000010\","
                      "\"span_id\":3,\"parent_id\":2}}"),
            std::string::npos);
  // Flow: starts at the queue span (service process), finishes at the
  // kernel span (GPU process), keyed by the hex trace id.
  EXPECT_NE(json.find("{\"pid\":3,\"tid\":6,\"ph\":\"s\","
                      "\"id\":\"0000000000000010\",\"cat\":\"job\","
                      "\"name\":\"job flow\",\"ts\":0}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"pid\":1,\"tid\":0,\"ph\":\"f\",\"bp\":\"e\","
                      "\"id\":\"0000000000000010\",\"cat\":\"job\","
                      "\"name\":\"job flow\",\"ts\":0.001}"),
            std::string::npos);
}

TEST(ChromeTraceExporterTest, FlowEventsCanBeDisabled) {
  Tracer tracer;
  const Context ctx{0x7, 1, 0};
  tracer.record(Track::kJobs, "a", 0, 10, {}, ctx);
  tracer.record(Track::kGpu, "b", 10, 20, {}, ctx.child(2));
  const std::string with_flows = render(tracer);
  const std::string without = render(tracer, ChromeTraceOptions{false});
  EXPECT_NE(with_flows.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_EQ(without.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_EQ(without.find("\"ph\":\"f\""), std::string::npos);
}

TEST(ChromeTraceExporterTest, SingleSpanTraceGetsNoFlow) {
  Tracer tracer;
  tracer.record(Track::kJobs, "lonely", 0, 10, {}, Context{0x9, 1, 0});
  EXPECT_EQ(render(tracer).find("job flow"), std::string::npos);
}

TEST(ChromeTraceExporterTest, ContextFreeSpansCarryNoIds) {
  Tracer tracer;
  tracer.record(Track::kServer, "C1 x4 @GPU", 0, 100, "legacy");
  const std::string json = render(tracer);
  EXPECT_NE(json.find("\"args\":{\"detail\":\"legacy\"}"),
            std::string::npos);
  EXPECT_EQ(json.find("trace_id"), std::string::npos);
}

TEST(ChromeTraceExporterTest, IdenticalTracersExportIdenticalBytes) {
  const auto build = []() {
    Tracer tracer;
    for (int i = 0; i < 50; ++i) {
      const Context ctx{derive_trace_id(i), tracer.new_span_id(), 0};
      tracer.record(Track::kJobs, "serve.job #" + std::to_string(i),
                    i * 100, i * 100 + 90, "outcome=served", ctx);
      tracer.record(Track::kGpu, "gpu.kernel", i * 100 + 10, i * 100 + 90,
                    {}, ctx.child(tracer.new_span_id()));
      tracer.mark(Track::kJobs, "serve.admit", i * 100, ctx);
    }
    return render(tracer);
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace ghs::trace
