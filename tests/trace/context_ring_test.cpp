#include <gtest/gtest.h>

#include "ghs/trace/context.hpp"
#include "ghs/trace/tracer.hpp"

namespace ghs::trace {
namespace {

TEST(ContextTest, DefaultIsInvalid) {
  Context ctx;
  EXPECT_FALSE(ctx.valid());
}

TEST(ContextTest, ChildKeepsTraceAndLinksParent) {
  Context root{0xabcu, 1, 0};
  EXPECT_TRUE(root.valid());
  Context child = root.child(7);
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_EQ(child.span_id, 7u);
  EXPECT_EQ(child.parent_id, root.span_id);
  Context grandchild = child.child(9);
  EXPECT_EQ(grandchild.parent_id, 7u);
  EXPECT_EQ(grandchild.trace_id, root.trace_id);
}

TEST(ContextTest, DerivedTraceIdsAreDeterministicAndNonZero) {
  EXPECT_EQ(derive_trace_id(42), derive_trace_id(42));
  EXPECT_NE(derive_trace_id(42), derive_trace_id(43));
  for (std::int64_t key = 0; key < 1000; ++key) {
    EXPECT_NE(derive_trace_id(key), 0u);
  }
}

TEST(ContextTest, IdHexIsSixteenLowercaseDigits) {
  EXPECT_EQ(id_hex(0x1), "0000000000000001");
  EXPECT_EQ(id_hex(0xdeadbeefcafef00dULL), "deadbeefcafef00d");
}

TEST(TracerRingTest, DropsOldestBeyondCapacity) {
  Tracer tracer(4);
  for (SimTime t = 0; t < 10; ++t) {
    tracer.record(Track::kGpu, "s" + std::to_string(t), t, t + 1);
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest first, and the oldest six were dropped.
  EXPECT_EQ(spans[0].name, "s6");
  EXPECT_EQ(spans[3].name, "s9");
  EXPECT_EQ(tracer.dropped_total(), 6);
}

TEST(TracerRingTest, InstantsRingIndependently) {
  Tracer tracer(2);
  tracer.record(Track::kGpu, "span", 0, 1);
  for (SimTime t = 0; t < 5; ++t) {
    tracer.mark(Track::kServer, "m" + std::to_string(t), t);
  }
  EXPECT_EQ(tracer.spans().size(), 1u);
  const auto instants = tracer.instants();
  ASSERT_EQ(instants.size(), 2u);
  EXPECT_EQ(instants[0].name, "m3");
  EXPECT_EQ(instants[1].name, "m4");
  EXPECT_EQ(tracer.dropped_total(), 3);
}

TEST(TracerRingTest, UnderCapacityDropsNothing) {
  Tracer tracer;
  EXPECT_EQ(tracer.capacity(), Tracer::kDefaultCapacity);
  for (SimTime t = 0; t < 100; ++t) {
    tracer.record(Track::kGpu, "s", t, t + 1);
  }
  EXPECT_EQ(tracer.spans().size(), 100u);
  EXPECT_EQ(tracer.dropped_total(), 0);
}

TEST(TracerRingTest, ClearResetsRingsAndDropCounters) {
  Tracer tracer(2);
  for (SimTime t = 0; t < 5; ++t) tracer.record(Track::kGpu, "s", t, t + 1);
  EXPECT_GT(tracer.dropped_total(), 0);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped_total(), 0);
  tracer.record(Track::kGpu, "fresh", 0, 1);
  EXPECT_EQ(tracer.spans()[0].name, "fresh");
}

TEST(TracerRingTest, SpanIdsAreSequential) {
  Tracer tracer;
  EXPECT_EQ(tracer.new_span_id(), 1u);
  EXPECT_EQ(tracer.new_span_id(), 2u);
  EXPECT_EQ(tracer.new_span_id(), 3u);
}

TEST(TracerRingTest, SpansCarryContext) {
  Tracer tracer;
  const Context ctx{derive_trace_id(5), tracer.new_span_id(), 0};
  tracer.record(Track::kJobs, "serve.job", 0, 10, "outcome=served", ctx);
  tracer.mark(Track::kJobs, "serve.admit", 0, ctx.child(tracer.new_span_id()));
  const auto spans = tracer.spans();
  const auto instants = tracer.instants();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(instants.size(), 1u);
  EXPECT_EQ(spans[0].ctx.trace_id, ctx.trace_id);
  EXPECT_EQ(instants[0].ctx.parent_id, ctx.span_id);
  EXPECT_TRUE(instants[0].ctx.valid());
}

}  // namespace
}  // namespace ghs::trace
