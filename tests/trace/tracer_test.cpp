#include "ghs/trace/tracer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ghs/core/reduce.hpp"
#include "ghs/util/error.hpp"

namespace ghs::trace {
namespace {

TEST(TracerTest, RecordsSpansAndInstants) {
  Tracer tracer;
  tracer.record(Track::kGpu, "kernel", 100, 200, "grid=16");
  tracer.mark(Track::kRuntime, "launch", 100);
  EXPECT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.instants().size(), 1u);
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.spans()[0].name, "kernel");
  EXPECT_EQ(tracer.spans()[0].begin, 100);
  EXPECT_EQ(tracer.spans()[0].end, 200);
}

TEST(TracerTest, RejectsBackwardsSpans) {
  Tracer tracer;
  EXPECT_THROW(tracer.record(Track::kGpu, "bad", 200, 100), Error);
  EXPECT_THROW(tracer.record(Track::kGpu, "bad", -1, 100), Error);
  EXPECT_THROW(tracer.mark(Track::kGpu, "bad", -1), Error);
}

TEST(TracerTest, ZeroDurationSpanAllowed) {
  Tracer tracer;
  EXPECT_NO_THROW(tracer.record(Track::kCpu, "empty", 50, 50));
}

TEST(TracerTest, ClearEmptiesEverything) {
  Tracer tracer;
  tracer.record(Track::kGpu, "a", 0, 1);
  tracer.mark(Track::kGpu, "b", 0);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, ServerTrackIsNamedAndExported) {
  EXPECT_STREQ(track_name(Track::kServer), "Reduction service");
  Tracer tracer;
  tracer.record(Track::kServer, "C1 x4 @GPU", 0, 100);
  std::ostringstream oss;
  tracer.write_chrome_json(oss);
  const std::string json = oss.str();
  EXPECT_NE(json.find("Reduction service"), std::string::npos);
  EXPECT_NE(json.find("C1 x4 @GPU"), std::string::npos);
}

TEST(TracerTest, RecordSpanHelperHonoursNull) {
  EXPECT_NO_THROW(record_span(nullptr, Track::kGpu, "x", 0, 1));
  Tracer tracer;
  record_span(&tracer, Track::kGpu, "x", 0, 1);
  EXPECT_EQ(tracer.spans().size(), 1u);
}

TEST(TracerTest, ChromeJsonIsWellFormed) {
  Tracer tracer;
  tracer.record(Track::kGpu, "kernel", 1000, 3000, "grid=16");
  tracer.mark(Track::kRuntime, "update", 500);
  std::ostringstream oss;
  tracer.write_chrome_json(oss);
  const std::string json = oss.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("GPU kernels"), std::string::npos);
  // Balanced braces and brackets (cheap well-formedness check).
  int braces = 0;
  int brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TracerTest, JsonEscapesSpecialCharacters) {
  Tracer tracer;
  tracer.record(Track::kGpu, "with \"quote\" and \\slash", 0, 1);
  std::ostringstream oss;
  tracer.write_chrome_json(oss);
  EXPECT_NE(oss.str().find("with \\\"quote\\\" and \\\\slash"),
            std::string::npos);
}

TEST(TracerTest, JsonEscapesHostileSpanNames) {
  // Control characters, quotes, and backslashes in a span name (or detail)
  // must never produce invalid JSON — e.g. a job label that embeds a tab
  // or newline from a config file.
  Tracer tracer;
  tracer.record(Track::kServer, "evil\t\"name\"\nwith\\stuff\x01", 0, 1,
                "detail\rwith\fcontrols\b");
  std::ostringstream oss;
  tracer.write_chrome_json(oss);
  const std::string json = oss.str();
  EXPECT_NE(
      json.find("evil\\t\\\"name\\\"\\nwith\\\\stuff\\u0001"),
      std::string::npos);
  EXPECT_NE(json.find("detail\\rwith\\fcontrols\\b"), std::string::npos);
  // No raw control bytes survive into the output.
  for (char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(TracerTest, TrackNames) {
  EXPECT_STREQ(track_name(Track::kGpu), "GPU kernels");
  EXPECT_STREQ(track_name(Track::kUmMigration), "UM migration");
}

TEST(TracerTest, PlatformIntegrationRecordsKernelSpans) {
  core::Platform platform;
  auto& tracer = platform.enable_tracing();
  // Idempotent.
  EXPECT_EQ(&platform.enable_tracing(), &tracer);

  core::GpuBenchmark bench;
  bench.case_id = workload::CaseId::kC1;
  bench.tuning = core::ReduceTuning{2048, 256, 4};
  bench.elements = 1 << 22;
  bench.iterations = 2;
  core::run_gpu_benchmark(platform, bench);

  int kernel_spans = 0;
  int wave_spans = 0;
  for (const auto& span : tracer.spans()) {
    if (span.track == Track::kGpu) ++kernel_spans;
    if (span.track == Track::kGpuWaves) ++wave_spans;
  }
  EXPECT_EQ(kernel_spans, 2);
  EXPECT_GE(wave_spans, 2);
  // Spans never run backwards and sit within simulated time.
  for (const auto& span : tracer.spans()) {
    EXPECT_LE(span.begin, span.end);
    EXPECT_LE(span.end, platform.sim().now());
  }
}

TEST(TracerTest, PlatformIntegrationRecordsCoExecution) {
  core::Platform platform;
  auto& tracer = platform.enable_tracing();
  core::HeteroBenchmark bench;
  bench.case_id = workload::CaseId::kC1;
  bench.cpu_parts = {0.5};
  bench.elements = 1 << 22;
  bench.iterations = 1;
  core::run_hetero_benchmark(platform, bench);

  bool saw_cpu = false;
  bool saw_gpu = false;
  bool saw_region = false;
  for (const auto& span : tracer.spans()) {
    saw_cpu |= span.track == Track::kCpu;
    saw_gpu |= span.track == Track::kGpu;
    saw_region |= span.track == Track::kRuntime;
  }
  EXPECT_TRUE(saw_cpu);
  EXPECT_TRUE(saw_gpu);
  EXPECT_TRUE(saw_region);
}

}  // namespace
}  // namespace ghs::trace
