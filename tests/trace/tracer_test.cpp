#include "ghs/trace/tracer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ghs/core/reduce.hpp"
#include "ghs/util/error.hpp"

namespace ghs::trace {
namespace {

TEST(TracerTest, RecordsSpansAndInstants) {
  Tracer tracer;
  tracer.record(Track::kGpu, "kernel", 100, 200, "grid=16");
  tracer.mark(Track::kRuntime, "launch", 100);
  EXPECT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.instants().size(), 1u);
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.spans()[0].name, "kernel");
  EXPECT_EQ(tracer.spans()[0].begin, 100);
  EXPECT_EQ(tracer.spans()[0].end, 200);
}

TEST(TracerTest, RejectsBackwardsSpans) {
  Tracer tracer;
  EXPECT_THROW(tracer.record(Track::kGpu, "bad", 200, 100), Error);
  EXPECT_THROW(tracer.record(Track::kGpu, "bad", -1, 100), Error);
  EXPECT_THROW(tracer.mark(Track::kGpu, "bad", -1), Error);
}

TEST(TracerTest, ZeroDurationSpanAllowed) {
  Tracer tracer;
  EXPECT_NO_THROW(tracer.record(Track::kCpu, "empty", 50, 50));
}

TEST(TracerTest, ClearEmptiesEverything) {
  Tracer tracer;
  tracer.record(Track::kGpu, "a", 0, 1);
  tracer.mark(Track::kGpu, "b", 0);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, ServerTrackIsNamedAndExported) {
  EXPECT_STREQ(track_name(Track::kServer), "Reduction service");
  Tracer tracer;
  tracer.record(Track::kServer, "C1 x4 @GPU", 0, 100);
  std::ostringstream oss;
  tracer.write_chrome_json(oss);
  const std::string json = oss.str();
  EXPECT_NE(json.find("Reduction service"), std::string::npos);
  EXPECT_NE(json.find("C1 x4 @GPU"), std::string::npos);
}

TEST(TracerTest, RecordSpanHelperHonoursNull) {
  EXPECT_NO_THROW(record_span(nullptr, Track::kGpu, "x", 0, 1));
  Tracer tracer;
  record_span(&tracer, Track::kGpu, "x", 0, 1);
  EXPECT_EQ(tracer.spans().size(), 1u);
}

TEST(TracerTest, ChromeJsonIsWellFormed) {
  Tracer tracer;
  tracer.record(Track::kGpu, "kernel", 1000, 3000, "grid=16");
  tracer.mark(Track::kRuntime, "update", 500);
  std::ostringstream oss;
  tracer.write_chrome_json(oss);
  const std::string json = oss.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("GPU kernels"), std::string::npos);
  // Balanced braces and brackets (cheap well-formedness check).
  int braces = 0;
  int brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TracerTest, JsonEscapesSpecialCharacters) {
  Tracer tracer;
  tracer.record(Track::kGpu, "with \"quote\" and \\slash", 0, 1);
  std::ostringstream oss;
  tracer.write_chrome_json(oss);
  EXPECT_NE(oss.str().find("with \\\"quote\\\" and \\\\slash"),
            std::string::npos);
}

TEST(TracerTest, JsonEscapesHostileSpanNames) {
  // Control characters, quotes, and backslashes in a span name (or detail)
  // must never produce invalid JSON — e.g. a job label that embeds a tab
  // or newline from a config file.
  Tracer tracer;
  tracer.record(Track::kServer, "evil\t\"name\"\nwith\\stuff\x01", 0, 1,
                "detail\rwith\fcontrols\b");
  std::ostringstream oss;
  tracer.write_chrome_json(oss);
  const std::string json = oss.str();
  EXPECT_NE(
      json.find("evil\\t\\\"name\\\"\\nwith\\\\stuff\\u0001"),
      std::string::npos);
  EXPECT_NE(json.find("detail\\rwith\\fcontrols\\b"), std::string::npos);
  // No raw control bytes survive into the output.
  for (char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(TracerTest, TrackNames) {
  EXPECT_STREQ(track_name(Track::kGpu), "GPU kernels");
  EXPECT_STREQ(track_name(Track::kUmMigration), "UM migration");
}

TEST(TracerTest, PlatformIntegrationRecordsKernelSpans) {
  core::Platform platform;
  auto& tracer = platform.enable_tracing();
  // Idempotent.
  EXPECT_EQ(&platform.enable_tracing(), &tracer);

  core::GpuBenchmark bench;
  bench.case_id = workload::CaseId::kC1;
  bench.tuning = core::ReduceTuning{2048, 256, 4};
  bench.elements = 1 << 22;
  bench.iterations = 2;
  core::run_gpu_benchmark(platform, bench);

  int kernel_spans = 0;
  int wave_spans = 0;
  for (const auto& span : tracer.spans()) {
    if (span.track == Track::kGpu) ++kernel_spans;
    if (span.track == Track::kGpuWaves) ++wave_spans;
  }
  EXPECT_EQ(kernel_spans, 2);
  EXPECT_GE(wave_spans, 2);
  // Spans never run backwards and sit within simulated time.
  for (const auto& span : tracer.spans()) {
    EXPECT_LE(span.begin, span.end);
    EXPECT_LE(span.end, platform.sim().now());
  }
}

TEST(TracerTest, PlatformIntegrationRecordsCoExecution) {
  core::Platform platform;
  auto& tracer = platform.enable_tracing();
  core::HeteroBenchmark bench;
  bench.case_id = workload::CaseId::kC1;
  bench.cpu_parts = {0.5};
  bench.elements = 1 << 22;
  bench.iterations = 1;
  core::run_hetero_benchmark(platform, bench);

  bool saw_cpu = false;
  bool saw_gpu = false;
  bool saw_region = false;
  for (const auto& span : tracer.spans()) {
    saw_cpu |= span.track == Track::kCpu;
    saw_gpu |= span.track == Track::kGpu;
    saw_region |= span.track == Track::kRuntime;
  }
  EXPECT_TRUE(saw_cpu);
  EXPECT_TRUE(saw_gpu);
  EXPECT_TRUE(saw_region);
}

TEST(TracerSamplerTest, InactiveByDefault) {
  Tracer tracer;
  EXPECT_FALSE(tracer.sampler_active());
  EXPECT_EQ(tracer.sample_rate(), 1.0);
  EXPECT_TRUE(tracer.sampled(12345));
  EXPECT_EQ(tracer.dropped_by_sampler(), 0);
}

TEST(TracerSamplerTest, RateOneKeepsEverythingAndStaysInactive) {
  Tracer tracer;
  tracer.set_sampler(SamplerOptions{1.0, 7});
  EXPECT_FALSE(tracer.sampler_active());
  for (std::uint64_t id = 1; id < 100; ++id) EXPECT_TRUE(tracer.sampled(id));
}

TEST(TracerSamplerTest, RateZeroDropsEveryTrace) {
  Tracer tracer;
  tracer.set_sampler(SamplerOptions{0.0, 7});
  EXPECT_TRUE(tracer.sampler_active());
  for (std::uint64_t id = 1; id < 100; ++id) EXPECT_FALSE(tracer.sampled(id));
  // Context-free entries are never sampled away.
  EXPECT_TRUE(tracer.sampled(0));
}

TEST(TracerSamplerTest, DecisionIsPerTraceIdAndDeterministic) {
  Tracer a;
  Tracer b;
  a.set_sampler(SamplerOptions{0.5, 42});
  b.set_sampler(SamplerOptions{0.5, 42});
  int kept = 0;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    const std::uint64_t id = derive_trace_id(static_cast<std::int64_t>(key));
    EXPECT_EQ(a.sampled(id), b.sampled(id));
    if (a.sampled(id)) ++kept;
  }
  // Deterministic but unbiased: about half the ids survive at rate 0.5.
  EXPECT_GT(kept, 400);
  EXPECT_LT(kept, 600);
}

TEST(TracerSamplerTest, DifferentSeedsSampleDifferentTraces) {
  Tracer a;
  Tracer b;
  a.set_sampler(SamplerOptions{0.5, 1});
  b.set_sampler(SamplerOptions{0.5, 2});
  bool any_difference = false;
  for (std::uint64_t key = 0; key < 200; ++key) {
    const std::uint64_t id = derive_trace_id(static_cast<std::int64_t>(key));
    any_difference |= a.sampled(id) != b.sampled(id);
  }
  EXPECT_TRUE(any_difference);
}

TEST(TracerSamplerTest, DroppedEntriesAreCountedNotRecorded) {
  Tracer tracer;
  tracer.set_sampler(SamplerOptions{0.0, 0});
  const Context ctx{derive_trace_id(1), 1, 0};
  tracer.record(Track::kJobs, "dropped", 0, 10, "", ctx);
  tracer.mark(Track::kJobs, "dropped-mark", 5, ctx);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped_by_sampler(), 2);
  // Context-free spans still land.
  tracer.record(Track::kGpu, "kernel", 0, 10);
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(TracerSamplerTest, WholeSpanTreeSharesOneDecision) {
  Tracer tracer;
  tracer.set_sampler(SamplerOptions{0.5, 9});
  const std::uint64_t id = derive_trace_id(77);
  const Context root{id, tracer.new_span_id(), 0};
  const Context child = root.child(tracer.new_span_id());
  EXPECT_EQ(tracer.keep(root), tracer.keep(child));
}

TEST(TracerSamplerTest, RateOneJsonIsByteIdenticalToUnsampled) {
  const auto render = [](Tracer& tracer) {
    tracer.record(Track::kJobs, "span", 0, 100, "d",
                  Context{derive_trace_id(3), 1, 0});
    tracer.mark(Track::kRuntime, "m", 50);
    std::ostringstream os;
    tracer.write_chrome_json(os);
    return os.str();
  };
  Tracer plain;
  Tracer sampled;
  sampled.set_sampler(SamplerOptions{1.0, 99});
  EXPECT_EQ(render(plain), render(sampled));
}

TEST(TracerSamplerTest, ActiveSamplerIsVisibleInJson) {
  Tracer tracer;
  tracer.set_sampler(SamplerOptions{0.25, 5});
  tracer.record(Track::kGpu, "kernel", 0, 10);
  std::ostringstream os;
  tracer.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"sampling\":{\"rate\":0.250000,\"seed\":5"),
            std::string::npos);
  EXPECT_NE(json.find("\"dropped_by_sampler\":0"), std::string::npos);
}

}  // namespace
}  // namespace ghs::trace
