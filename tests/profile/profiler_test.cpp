#include "ghs/profile/profiler.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>

#include "ghs/profile/recorder.hpp"
#include "ghs/serve/loadgen.hpp"
#include "ghs/serve/policy.hpp"
#include "ghs/serve/service.hpp"
#include "ghs/timeseries/tsdb.hpp"
#include "ghs/workload/cases.hpp"

namespace ghs::profile {
namespace {

serve::OpenLoopOptions small_workload(double um_fraction = 0.0) {
  serve::OpenLoopOptions options;
  options.shape.min_log2_elements = 16;
  options.shape.max_log2_elements = 20;
  options.shape.um_fraction = um_fraction;
  options.rate_hz = 200000.0;
  options.jobs = 60;
  options.seed = 42;
  return options;
}

/// Runs one service over the workload; the recorder may be null.
serve::ServiceReport run_service(serve::ServiceModel& model,
                                 Recorder* recorder,
                                 ConservationTotals* totals,
                                 const serve::OpenLoopOptions& workload) {
  serve::ServiceOptions options;
  options.profile = recorder;
  serve::ReductionService service(serve::make_policy("fifo", model), model,
                                  options);
  service.submit_all(serve::open_loop_poisson(workload));
  service.run();
  if (totals != nullptr) *totals = service.conservation_totals();
  return service.report();
}

TEST(RecorderTest, ConservesServiceBusyTimeAndBytes) {
  serve::ServiceModel model;
  Recorder recorder;
  ConservationTotals totals;
  run_service(model, &recorder, &totals, small_workload(0.5));
  const auto check = recorder.ledger().check(totals);
  EXPECT_TRUE(check.ok());
  EXPECT_GT(totals.gpu_busy_ps, 0);
  EXPECT_GT(totals.um_bytes, 0);
  EXPECT_FALSE(recorder.ledger().empty());
}

TEST(RecorderTest, ServiceReportUnchangedByRecorder) {
  // Attribution is observational: attaching a recorder must not change
  // the served workload's report. (Unified workloads warm the tuner
  // memo-cache differently — the same documented perturbation tracing
  // has — so this byte-identity property is over a non-UM workload.)
  serve::ServiceModel bare_model;
  const auto bare =
      run_service(bare_model, nullptr, nullptr, small_workload());
  serve::ServiceModel profiled_model;
  Recorder recorder;
  const auto profiled =
      run_service(profiled_model, &recorder, nullptr, small_workload());
  std::ostringstream bare_os;
  bare.write_json(bare_os);
  std::ostringstream profiled_os;
  profiled.write_json(profiled_os);
  EXPECT_EQ(bare_os.str(), profiled_os.str());
}

TEST(ProfilerTest, SamplesFoldIntoStacks) {
  serve::ServiceModel model;
  Recorder recorder;
  serve::ServiceOptions options;
  options.profile = &recorder;
  serve::ReductionService service(serve::make_policy("fifo", model), model,
                                  options);
  ProfilerOptions profiler_options;
  profiler_options.interval = 10 * kMicrosecond;
  timeseries::Tsdb store;
  Profiler profiler(service.sim(), recorder, profiler_options, &store);
  profiler.start();
  service.submit_all(serve::open_loop_poisson(small_workload()));
  service.run();
  profiler.finish();

  EXPECT_GT(profiler.samples(), 0);
  ASSERT_FALSE(profiler.folded().empty());
  // Each sample contributes one count per registered device.
  std::int64_t counts = 0;
  bool saw_kernel = false;
  for (const auto& [stack, count] : profiler.folded()) {
    counts += count;
    EXPECT_EQ(stack.rfind("node0;", 0), 0u) << stack;
    if (stack.find("gpu.kernel") != std::string::npos) saw_kernel = true;
  }
  EXPECT_EQ(counts, profiler.samples() *
                        static_cast<std::int64_t>(recorder.devices().size()));
  EXPECT_TRUE(saw_kernel);

  // Collapsed output: "stack count" lines, flamegraph.pl-compatible.
  std::ostringstream collapsed;
  profiler.write_collapsed(collapsed);
  const std::string text = collapsed.str();
  EXPECT_NE(text.find("node0;gpu"), std::string::npos);
  EXPECT_EQ(text.find('{'), std::string::npos);

  // Slice tracks coalesce consecutive same-stack samples.
  const auto tracks = profiler.tracks();
  ASSERT_FALSE(tracks.empty());
  for (const auto& track : tracks) {
    for (const auto& slice : track.slices) {
      EXPECT_LT(slice.begin, slice.end);
    }
  }
}

TEST(ProfilerTest, AttributionSeriesMatchLedgerTotals) {
  serve::ServiceModel model;
  Recorder recorder;
  serve::ServiceOptions options;
  options.profile = &recorder;
  serve::ReductionService service(serve::make_policy("fifo", model), model,
                                  options);
  ProfilerOptions profiler_options;
  profiler_options.interval = 10 * kMicrosecond;
  timeseries::Tsdb store;
  Profiler profiler(service.sim(), recorder, profiler_options, &store);
  profiler.start();
  service.submit_all(serve::open_loop_poisson(small_workload()));
  service.run();
  profiler.finish();

  // The windowed deltas must telescope to the ledger's final totals: the
  // finish() flush covers whatever the last tick missed.
  const timeseries::Series* tenant_series =
      store.find("ghs_profile_tenant_busy_ps_total{tenant=\"0\"}");
  ASSERT_NE(tenant_series, nullptr);
  EXPECT_DOUBLE_EQ(
      tenant_series->total_sum(),
      static_cast<double>(recorder.ledger().tenant_busy_ps().at(0)));
  SimTime op_total = 0;
  for (const auto& [op, busy] : recorder.ledger().op_busy_ps()) {
    const std::string key = "ghs_profile_op_busy_ps_total{op=\"" +
                            std::string(workload::case_spec(
                                            static_cast<workload::CaseId>(op))
                                            .name) +
                            "\"}";
    const timeseries::Series* op_series = store.find(key);
    ASSERT_NE(op_series, nullptr) << key;
    EXPECT_DOUBLE_EQ(op_series->total_sum(), static_cast<double>(busy));
    op_total += busy;
  }
  SimTime tenant_total = 0;
  for (const auto& [tenant, busy] : recorder.ledger().tenant_busy_ps()) {
    tenant_total += busy;
  }
  EXPECT_EQ(op_total, tenant_total);
}

TEST(ProfilerTest, FinishWithoutTicksStillFlushes) {
  // Interval longer than the whole run: zero mid-run ticks, but finish()
  // must still take the trailing sample and flush the series.
  serve::ServiceModel model;
  Recorder recorder;
  serve::ServiceOptions options;
  options.profile = &recorder;
  serve::ReductionService service(serve::make_policy("fifo", model), model,
                                  options);
  ProfilerOptions profiler_options;
  profiler_options.interval = 1000 * kMillisecond;
  timeseries::Tsdb store;
  Profiler profiler(service.sim(), recorder, profiler_options, &store);
  profiler.start();
  service.submit_all(serve::open_loop_poisson(small_workload()));
  service.run();
  profiler.finish();
  EXPECT_EQ(profiler.samples(), 1);  // the trailing sample only
  const timeseries::Series* tenant_series =
      store.find("ghs_profile_tenant_busy_ps_total{tenant=\"0\"}");
  ASSERT_NE(tenant_series, nullptr);
  EXPECT_GT(tenant_series->total_sum(), 0.0);
}

}  // namespace
}  // namespace ghs::profile
