#include "ghs/profile/cost_ledger.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <vector>

namespace ghs::profile {
namespace {

TEST(SplitProportionalTest, SharesSumToTotalExactly) {
  const std::vector<std::int64_t> weights = {7, 13, 1, 29, 5};
  const auto shares = split_proportional(1000003, weights);
  ASSERT_EQ(shares.size(), weights.size());
  EXPECT_EQ(std::accumulate(shares.begin(), shares.end(), std::int64_t{0}),
            1000003);
  // Shares track the weight ordering.
  EXPECT_GT(shares[3], shares[1]);
  EXPECT_GT(shares[1], shares[0]);
  EXPECT_GT(shares[0], shares[2]);
}

TEST(SplitProportionalTest, ZeroWeightsSplitEvenly) {
  const auto shares = split_proportional(10, {0, 0, 0});
  EXPECT_EQ(std::accumulate(shares.begin(), shares.end(), std::int64_t{0}),
            10);
  for (const auto share : shares) {
    EXPECT_GE(share, 3);
    EXPECT_LE(share, 4);
  }
}

TEST(SplitProportionalTest, ExhaustiveSmallTotalsNeverDrift) {
  // Property sweep: every (total, weights) pair must conserve exactly.
  const std::vector<std::vector<std::int64_t>> weight_sets = {
      {1}, {1, 1}, {1, 2, 3}, {1000000, 1}, {3, 0, 5}};
  for (std::int64_t total = 0; total <= 50; ++total) {
    for (const auto& weights : weight_sets) {
      const auto shares = split_proportional(total, weights);
      EXPECT_EQ(
          std::accumulate(shares.begin(), shares.end(), std::int64_t{0}),
          total)
          << "total=" << total;
    }
  }
}

CostKey gpu_kernel_key(std::int64_t tenant) {
  CostKey key;
  key.tenant = tenant;
  key.op = 1;
  key.device = Device::kGpu;
  key.phase = Phase::kGpuKernel;
  return key;
}

TEST(CostLedgerTest, ChargesAccumulatePerKey) {
  CostLedger ledger;
  ledger.charge_time(gpu_kernel_key(1), 100);
  ledger.charge_time(gpu_kernel_key(1), 50);
  ledger.charge_time(gpu_kernel_key(2), 25);
  ASSERT_EQ(ledger.entries().size(), 2u);
  EXPECT_EQ(ledger.entries().at(gpu_kernel_key(1)).time_ps, 150);
  EXPECT_EQ(ledger.entries().at(gpu_kernel_key(1)).events, 2);
  EXPECT_EQ(ledger.tenant_busy_ps().at(1), 150);
  EXPECT_EQ(ledger.tenant_busy_ps().at(2), 25);
  EXPECT_EQ(ledger.op_busy_ps().at(1), 175);
}

TEST(CostLedgerTest, WaitPhasesStayOutOfBusyTotals) {
  CostLedger ledger;
  CostKey wait;
  wait.tenant = 3;
  wait.phase = Phase::kQueueWait;  // device kNone
  ledger.charge_time(wait, 1000);
  EXPECT_TRUE(ledger.tenant_busy_ps().empty());
  ConservationTotals telemetry;  // all zero
  EXPECT_TRUE(ledger.check(telemetry).ok());
}

TEST(CostLedgerTest, CheckFlagsLeakedTime) {
  CostLedger ledger;
  ledger.charge_time(gpu_kernel_key(1), 100);
  ConservationTotals telemetry;
  telemetry.gpu_busy_ps = 100;
  EXPECT_TRUE(ledger.check(telemetry).ok());
  // One-tick tolerance covers integer rounding at charge sites...
  telemetry.gpu_busy_ps = 101;
  EXPECT_TRUE(ledger.check(telemetry).ok());
  // ...but a real leak fails.
  telemetry.gpu_busy_ps = 150;
  EXPECT_FALSE(ledger.check(telemetry).ok());
}

TEST(CostLedgerTest, CheckFlagsLeakedBytes) {
  CostLedger ledger;
  CostKey transfer;
  transfer.tenant = 1;
  transfer.phase = Phase::kTransfer;
  ledger.charge_bytes(transfer, 4096);
  ConservationTotals telemetry;
  telemetry.transfer_bytes = 4096;
  EXPECT_TRUE(ledger.check(telemetry).ok());
  // Bytes are exact: even one off fails.
  telemetry.transfer_bytes = 4097;
  EXPECT_FALSE(ledger.check(telemetry).ok());
}

TEST(CostLedgerTest, StealDrainAndReplayBytesBucketCorrectly) {
  CostLedger ledger;
  CostKey key;
  key.tenant = 1;
  key.phase = Phase::kSteal;
  ledger.charge_bytes(key, 100);
  key.phase = Phase::kDrain;
  ledger.charge_bytes(key, 200);
  key.phase = Phase::kReplay;
  ledger.charge_bytes(key, 300);
  ConservationTotals telemetry;
  telemetry.transfer_bytes = 300;  // steal + drain
  telemetry.replay_bytes = 300;
  EXPECT_TRUE(ledger.check(telemetry).ok());
}

TEST(CostLedgerTest, JsonIsDeterministicAndSorted) {
  const auto build = [](CostLedger& ledger) {
    // Insertion order differs between the two ledgers; output must not.
    ledger.charge_time(gpu_kernel_key(2), 50);
    ledger.charge_time(gpu_kernel_key(1), 100);
  };
  const auto render = [](const CostLedger& ledger) {
    ConservationTotals telemetry;
    telemetry.gpu_busy_ps = 150;
    std::ostringstream os;
    ledger.write_json(os, telemetry);
    return os.str();
  };
  CostLedger a;
  build(a);
  CostLedger b;
  b.charge_time(gpu_kernel_key(1), 100);
  b.charge_time(gpu_kernel_key(2), 50);
  EXPECT_EQ(render(a), render(b));
  const std::string json = render(a);
  // tenant 1 sorts before tenant 2.
  EXPECT_LT(json.find("\"tenant\":1"), json.find("\"tenant\":2"));
  EXPECT_NE(json.find("\"conservation\":"), std::string::npos);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
}

TEST(CostLedgerTest, TableListsTopSpenders) {
  CostLedger ledger;
  ledger.charge_time(gpu_kernel_key(7), 5 * kMillisecond);
  ledger.charge_time(gpu_kernel_key(8), 1 * kMillisecond);
  std::ostringstream os;
  ledger.write_table(os, 1);
  const std::string table = os.str();
  EXPECT_NE(table.find("tenant 7"), std::string::npos);
  // top_k=1 keeps the smaller spender out.
  EXPECT_EQ(table.find("tenant 8"), std::string::npos);
}

TEST(CostLedgerTest, PhaseAndDeviceNamesAreStable) {
  // These strings are documented in docs/OBSERVABILITY.md and appear in
  // folded stacks; renaming one silently breaks downstream flamegraph
  // tooling, so pin them.
  EXPECT_STREQ(phase_name(Phase::kGpuKernel), "gpu.kernel");
  EXPECT_STREQ(phase_name(Phase::kCpuKernel), "cpu.reduce");
  EXPECT_STREQ(phase_name(Phase::kUmMigrate), "um.migrate");
  EXPECT_STREQ(phase_name(Phase::kQueueWait), "queue.wait");
  EXPECT_STREQ(phase_name(Phase::kRetryBackoff), "retry.backoff");
  EXPECT_STREQ(phase_name(Phase::kLaunchFailed), "launch.failed");
  EXPECT_STREQ(phase_name(Phase::kTransfer), "interconnect.transfer");
  EXPECT_STREQ(phase_name(Phase::kSteal), "interconnect.steal");
  EXPECT_STREQ(phase_name(Phase::kDrain), "interconnect.drain");
  EXPECT_STREQ(phase_name(Phase::kReplay), "journal.replay");
  EXPECT_STREQ(device_name(Device::kGpu), "gpu");
  EXPECT_STREQ(device_name(Device::kCpu), "cpu");
  EXPECT_STREQ(device_name(Device::kNone), "none");
}

}  // namespace
}  // namespace ghs::profile
