// Fleet-level attribution: one recorder shared by every node of a
// cluster must charge transfers, steals, drains, and journal replays to
// the right phases and reconcile with the cluster's telemetry totals.
#include <gtest/gtest.h>

#include <sstream>
#include <utility>
#include <vector>

#include "ghs/cluster/cluster.hpp"
#include "ghs/fault/plan.hpp"
#include "ghs/profile/recorder.hpp"
#include "ghs/serve/loadgen.hpp"
#include "ghs/util/rng.hpp"

namespace ghs::profile {
namespace {

std::vector<serve::Job> sharded_jobs(const cluster::Cluster& fleet,
                                     double remote_fraction,
                                     int tenants = 16) {
  serve::OpenLoopOptions options;
  options.shape.min_log2_elements = 16;
  options.shape.max_log2_elements = 20;
  options.rate_hz = 400000.0;
  options.jobs = 200;
  options.seed = 42;
  auto jobs = serve::open_loop_poisson(options);
  Rng remote_rng(options.seed ^ 0xD15C0FF5E7ULL);
  for (auto& job : jobs) {
    job.tenant = static_cast<std::int64_t>(
        cluster::mix64(static_cast<std::uint64_t>(job.id)) %
        static_cast<std::uint64_t>(tenants));
    if (remote_fraction > 0.0 &&
        remote_rng.next_double() < remote_fraction) {
      job.source_node =
          fleet.router().ring().owner(static_cast<std::uint64_t>(job.tenant));
    }
  }
  return jobs;
}

TEST(ClusterProfileTest, ConservesAcrossNodesAndTransfers) {
  serve::ServiceModel model;
  Recorder recorder;
  cluster::ClusterOptions options;
  options.nodes = 4;
  options.router = cluster::RouterPolicy::kLeast;
  options.node.profile = &recorder;
  cluster::Cluster fleet(model, options);
  fleet.submit_all(sharded_jobs(fleet, /*remote_fraction=*/0.5));
  fleet.run();

  const auto totals = fleet.conservation_totals();
  EXPECT_GT(totals.transfer_bytes, 0);
  EXPECT_TRUE(recorder.ledger().check(totals).ok());

  // Attribution keys span multiple nodes and carry the transfer phase.
  bool saw_remote_node = false;
  bool saw_transfer = false;
  for (const auto& [key, cost] : recorder.ledger().entries()) {
    if (key.node > 0) saw_remote_node = true;
    if (key.phase == Phase::kTransfer) {
      saw_transfer = true;
      EXPECT_GT(cost.bytes, 0);
    }
  }
  EXPECT_TRUE(saw_remote_node);
  EXPECT_TRUE(saw_transfer);
}

TEST(ClusterProfileTest, CrashReplayChargesReplayPhase) {
  serve::ServiceModel model;
  Recorder recorder;
  cluster::ClusterOptions options;
  options.nodes = 4;
  options.router = cluster::RouterPolicy::kLeast;
  options.node.profile = &recorder;
  options.crash_plan = fault::parse_crash_plan("1@300us:2ms");
  cluster::Cluster fleet(model, options);
  fleet.submit_all(sharded_jobs(fleet, /*remote_fraction=*/0.3));
  fleet.run();

  const auto totals = fleet.conservation_totals();
  EXPECT_TRUE(recorder.ledger().check(totals).ok());
  Bytes replay_attributed = 0;
  for (const auto& [key, cost] : recorder.ledger().entries()) {
    if (key.phase == Phase::kReplay) replay_attributed += cost.bytes;
  }
  EXPECT_EQ(replay_attributed, totals.replay_bytes);
  EXPECT_GT(replay_attributed, 0);
}

TEST(ClusterProfileTest, ReportUnchangedByRecorder) {
  const auto run = [](Recorder* recorder) {
    serve::ServiceModel model;
    cluster::ClusterOptions options;
    options.nodes = 3;
    options.router = cluster::RouterPolicy::kP2c;
    options.node.profile = recorder;
    cluster::Cluster fleet(model, options);
    fleet.submit_all(sharded_jobs(fleet, /*remote_fraction=*/0.4));
    fleet.run();
    std::ostringstream os;
    fleet.report().write_json(os);
    return os.str();
  };
  Recorder recorder;
  EXPECT_EQ(run(nullptr), run(&recorder));
}

}  // namespace
}  // namespace ghs::profile
