#include "ghs/cpu/device.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "ghs/util/error.hpp"

namespace ghs::cpu {
namespace {

class CpuDeviceTest : public ::testing::Test {
 protected:
  CpuDeviceTest()
      : topo_(sim_, mem::TopologyConfig{}),
        engine_(topo_),
        um_(topo_, engine_, um::UmPolicy{}),
        device_(sim_, topo_, um_, CpuConfig{}) {}

  CpuReduceRequest request(std::int64_t elements, Bytes elem_size,
                           int threads) {
    CpuReduceRequest r;
    r.label = "test";
    r.elements = elements;
    r.element_size = elem_size;
    r.threads = threads;
    return r;
  }

  CpuReduceResult run(const CpuReduceRequest& r) {
    std::optional<CpuReduceResult> result;
    device_.reduce(r, [&](const CpuReduceResult& x) { result = x; });
    sim_.run();
    EXPECT_TRUE(result.has_value());
    return *result;
  }

  sim::Simulator sim_;
  mem::Topology topo_;
  mem::TransferEngine engine_;
  um::UmManager um_;
  CpuDevice device_;
};

TEST_F(CpuDeviceTest, FullSocketIsAggregateBound) {
  // 4.8 GB with 72 cores: aggregate 480 GB/s -> ~10 ms + region overhead.
  const auto result = run(request(1'200'000'000, 4, 72));
  EXPECT_NEAR(result.bandwidth().gbps(), 480.0, 5.0);
}

TEST_F(CpuDeviceTest, FewCoresArePerCoreBound) {
  const auto result = run(request(100'000'000, 4, 4));
  // 4 cores x 9 GB/s = 36 GB/s.
  EXPECT_NEAR(result.bandwidth().gbps(), 36.0, 1.0);
}

TEST_F(CpuDeviceTest, ScalingSaturates) {
  const auto few = run(request(400'000'000, 4, 8));
  const auto half = run(request(400'000'000, 4, 36));
  const auto full = run(request(400'000'000, 4, 72));
  EXPECT_GT(half.bandwidth().gbps(), few.bandwidth().gbps() * 3.0);
  // 36 x 9 = 324 < 480; 72 x 9 = 648 capped at 480: sublinear step.
  EXPECT_LT(full.bandwidth().gbps(), half.bandwidth().gbps() * 1.6);
}

TEST_F(CpuDeviceTest, ScalarInt8IsComputeBound) {
  CpuReduceRequest r = request(4'000'000'000, 1, 72);
  r.use_simd = false;
  const auto result = run(r);
  // 72 cores x 1.5 elem/cycle x 3.3 GHz x 1 B = 356 GB/s < 480.
  EXPECT_LT(result.bandwidth().gbps(), 400.0);
  r.use_simd = true;
  const auto simd_result = run(r);
  EXPECT_GT(simd_result.bandwidth().gbps(), result.bandwidth().gbps());
}

TEST_F(CpuDeviceTest, RemoteHbmReadIsSlower) {
  const Bytes bytes = 1'200'000'000;
  const auto alloc = um_.allocate(bytes, mem::RegionId::kHbm, "in");
  CpuReduceRequest r = request(bytes / 4, 4, 72);
  r.managed = true;
  r.managed_alloc = alloc;
  const auto remote = run(r);
  EXPECT_NEAR(remote.bandwidth().gbps(), 351.0, 5.0);
  EXPECT_EQ(remote.remote_bytes, bytes);

  const auto local = run(request(bytes / 4, 4, 72));
  EXPECT_NEAR(local.bandwidth().gbps() / remote.bandwidth().gbps(), 1.367,
              0.03);
}

TEST_F(CpuDeviceTest, ManagedLocalReadsDoNotCountRemote) {
  const Bytes bytes = 400 * kMiB;
  const auto alloc = um_.allocate(bytes, mem::RegionId::kLpddr, "in");
  CpuReduceRequest r = request(bytes / 4, 4, 72);
  r.managed = true;
  r.managed_alloc = alloc;
  const auto result = run(r);
  EXPECT_EQ(result.remote_bytes, 0);
}

TEST_F(CpuDeviceTest, MixedResidencyCreatesStraggler) {
  const Bytes bytes = 1'200'000'000;
  const auto alloc = um_.allocate(bytes, mem::RegionId::kLpddr, "in");
  // Second half in HBM.
  um_.complete_segment(alloc, bytes / 2, bytes / 2, mem::RegionId::kHbm);
  CpuReduceRequest r = request(bytes / 4, 4, 72);
  r.managed = true;
  r.managed_alloc = alloc;
  const auto mixed = run(r);
  // The two halves stream concurrently but share the socket mesh: the
  // result lands between all-remote (351) and the socket cap (520).
  EXPECT_GT(mixed.bandwidth().gbps(), 351.0);
  EXPECT_LE(mixed.bandwidth().gbps(), 521.0);
}

TEST_F(CpuDeviceTest, DynamicScheduleFixesTheStraggler) {
  const Bytes bytes = 1'200'000'000;
  const auto alloc = um_.allocate(bytes, mem::RegionId::kLpddr, "in");
  um_.complete_segment(alloc, bytes / 2, bytes / 2, mem::RegionId::kHbm);
  CpuReduceRequest r = request(bytes / 4, 4, 72);
  r.managed = true;
  r.managed_alloc = alloc;

  r.schedule = ScheduleKind::kStatic;
  const auto static_run = run(r);
  r.schedule = ScheduleKind::kDynamic;
  const auto dynamic_run = run(r);
  // With rebalancing, the local half is not limited to half the cores:
  // dynamic strictly beats static on mixed residency.
  EXPECT_GT(dynamic_run.bandwidth().gbps(), static_run.bandwidth().gbps());
}

TEST_F(CpuDeviceTest, DynamicScheduleCostsOverheadOnUniformWork) {
  CpuReduceRequest r = request(50'000'000, 4, 72);
  r.schedule = ScheduleKind::kStatic;
  const auto static_run = run(r);
  r.schedule = ScheduleKind::kDynamic;
  const auto dynamic_run = run(r);
  // Uniform local work: dynamic only adds its work-queue overhead.
  EXPECT_GT(dynamic_run.duration(), static_run.duration());
  EXPECT_LT(dynamic_run.duration() - static_run.duration(),
            2 * device_.config().dynamic_schedule_overhead);
}

TEST_F(CpuDeviceTest, GuidedSitsBetweenStaticAndDynamicOnOverhead) {
  CpuReduceRequest r = request(50'000'000, 4, 72);
  r.schedule = ScheduleKind::kGuided;
  const auto guided = run(r);
  r.schedule = ScheduleKind::kDynamic;
  const auto dynamic = run(r);
  EXPECT_LT(guided.duration(), dynamic.duration());
}

TEST_F(CpuDeviceTest, ScheduleNames) {
  EXPECT_STREQ(schedule_name(ScheduleKind::kStatic), "static");
  EXPECT_STREQ(schedule_name(ScheduleKind::kDynamic), "dynamic");
  EXPECT_STREQ(schedule_name(ScheduleKind::kGuided), "guided");
}

TEST_F(CpuDeviceTest, MultiStreamRequestDoublesBytes) {
  CpuReduceRequest r = request(100'000'000, 4, 72);
  const auto single = run(r);
  r.input_streams = 2;
  const auto twin = run(r);
  EXPECT_EQ(twin.bytes, 2 * single.bytes);
  EXPECT_GT(twin.duration(), single.duration());
}

TEST_F(CpuDeviceTest, MultiStreamManagedRejected) {
  const auto alloc = um_.allocate(1000, mem::RegionId::kLpddr, "in");
  CpuReduceRequest r = request(100, 4, 8);
  r.managed = true;
  r.managed_alloc = alloc;
  r.input_streams = 2;
  EXPECT_THROW(run(r), ghs::Error);
}

TEST_F(CpuDeviceTest, RegionOverheadCharged) {
  CpuReduceRequest r = request(1000, 4, 72);
  const auto with_overhead = run(r);
  EXPECT_GE(with_overhead.duration(),
            device_.config().parallel_region_overhead);
  r.include_region_overhead = false;
  const auto without = run(r);
  EXPECT_LT(without.duration(), with_overhead.duration());
}

TEST_F(CpuDeviceTest, InvalidRequestsRejected) {
  EXPECT_THROW(run(request(0, 4, 72)), ghs::Error);
  EXPECT_THROW(run(request(100, 4, 0)), ghs::Error);
  EXPECT_THROW(run(request(100, 4, 73)), ghs::Error);
}

TEST_F(CpuDeviceTest, ComputeRateCapFormula) {
  // simd: threads x 32 B/cycle x 3.3e9.
  EXPECT_NEAR(device_.compute_rate_cap(10, true, 4), 10 * 32.0 * 3.3e9,
              1e6);
  // scalar: threads x 1.5 elem/cycle x elem_size x 3.3e9.
  EXPECT_NEAR(device_.compute_rate_cap(10, false, 8),
              10 * 1.5 * 8.0 * 3.3e9, 1e6);
}

TEST_F(CpuDeviceTest, StatsCountReductions) {
  const auto before = device_.stats().reductions;
  run(request(1000, 4, 8));
  EXPECT_EQ(device_.stats().reductions, before + 1);
}

}  // namespace
}  // namespace ghs::cpu
