#include "ghs/slo/monitor.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "ghs/fault/injector.hpp"
#include "ghs/fault/plan.hpp"
#include "ghs/serve/loadgen.hpp"
#include "ghs/serve/policy.hpp"
#include "ghs/serve/service.hpp"
#include "ghs/util/error.hpp"

namespace ghs::slo {
namespace {

Objective availability(double target = 0.9) {
  return Objective{"avail", ObjectiveKind::kAvailability, target, 0.0};
}

Objective latency(double target, double threshold_ms) {
  return Objective{"lat", ObjectiveKind::kLatencyQuantile, target,
                   threshold_ms};
}

TEST(MonitorTest, CountsGoodAndBadSamples) {
  Monitor monitor({availability()});
  monitor.record(0, 1 * kMicrosecond, true);
  monitor.record(0, 2 * kMicrosecond, true);
  monitor.record(0, 3 * kMicrosecond, false);
  const auto report = monitor.evaluate();
  ASSERT_EQ(report.objectives.size(), 1u);
  const auto& obj = report.objectives[0];
  EXPECT_EQ(obj.samples, 3);
  EXPECT_EQ(obj.good, 2);
  EXPECT_EQ(obj.bad, 1);
  EXPECT_NEAR(obj.compliance, 2.0 / 3.0, 1e-12);
  EXPECT_FALSE(obj.met);
  // Budget is 1 - 0.9 = 0.1; bad fraction 1/3 burns at 10/3 the budget.
  EXPECT_NEAR(obj.budget_burn, (1.0 / 3.0) / 0.1, 1e-9);
}

TEST(MonitorTest, EmptyObjectiveIsCompliant) {
  Monitor monitor({availability()});
  const auto report = monitor.evaluate();
  EXPECT_EQ(report.objectives[0].samples, 0);
  EXPECT_EQ(report.objectives[0].compliance, 1.0);
  EXPECT_TRUE(report.objectives[0].met);
  EXPECT_EQ(report.total_alerts(), 0);
}

TEST(MonitorTest, LatencyObjectiveJudgesAgainstThreshold) {
  Monitor monitor({latency(0.5, 1.0)});
  monitor.record_latency(0, 1 * kMicrosecond, 0.9);  // good
  monitor.record_latency(0, 2 * kMicrosecond, 1.0);  // good (<=)
  monitor.record_latency(0, 3 * kMicrosecond, 1.1);  // bad
  const auto report = monitor.evaluate();
  const auto& obj = report.objectives[0];
  EXPECT_EQ(obj.good, 2);
  EXPECT_EQ(obj.bad, 1);
  EXPECT_TRUE(obj.met);  // 2/3 >= 0.5
}

TEST(MonitorTest, BurnRateAlertNeedsBothWindowsOver) {
  // One rule: long window 1 ms, short window 250 us, threshold 1x, with a
  // 50% target so the budget is 0.5 and burn = 2 * bad_fraction.
  MonitorOptions options;
  options.rules = {BurnRateRule{"only", 1 * kMillisecond,
                                250 * kMicrosecond, 1.0}};
  Monitor monitor({availability(0.5)}, options);
  // A burst of bad samples early, then a long good tail: at the end of
  // the tail the short window has recovered, so no new alerts fire.
  for (int i = 0; i < 10; ++i) {
    monitor.record(0, i * 10 * kMicrosecond, false);
  }
  for (int i = 0; i < 40; ++i) {
    monitor.record(0, (100 + i * 10) * kMicrosecond, true);
  }
  const auto report = monitor.evaluate();
  const auto& burn = report.objectives[0].burn[0];
  EXPECT_EQ(burn.alerts, 1);
  EXPECT_EQ(burn.first_alert, 0);
  EXPECT_GT(burn.peak_burn, 1.0);
  ASSERT_EQ(report.alerts.size(), 1u);
  EXPECT_EQ(report.alerts[0].objective, "avail");
  EXPECT_EQ(report.alerts[0].severity, "only");
}

TEST(MonitorTest, SteadyLowBurnNeverAlertsFastRule) {
  // 5% bad at a 10% budget burns at 0.5x: under every default threshold.
  // The first bad sample arrives once the windows have filled — a bad
  // FIRST request genuinely is a 10x burn over its one-sample window.
  Monitor monitor({availability(0.9)});
  for (int i = 0; i < 200; ++i) {
    monitor.record(0, i * 20 * kMicrosecond, i % 20 != 19);
  }
  const auto report = monitor.evaluate();
  for (const auto& burn : report.objectives[0].burn) {
    EXPECT_EQ(burn.alerts, 0) << burn.severity;
    EXPECT_EQ(burn.first_alert, -1) << burn.severity;
    EXPECT_GT(burn.peak_burn, 0.0) << burn.severity;
  }
  EXPECT_EQ(report.total_alerts(), 0);
}

TEST(MonitorTest, ReenteringAlertStateCountsTwice) {
  MonitorOptions options;
  options.rules = {BurnRateRule{"only", 100 * kMicrosecond,
                                100 * kMicrosecond, 1.0}};
  Monitor monitor({availability(0.5)}, options);
  // Bad burst, full recovery (window slides past), second bad burst.
  for (int i = 0; i < 5; ++i) monitor.record(0, i * kMicrosecond, false);
  for (int i = 0; i < 50; ++i) {
    monitor.record(0, (200 + i * 10) * kMicrosecond, true);
  }
  for (int i = 0; i < 5; ++i) {
    monitor.record(0, (1000 + i) * kMicrosecond, false);
  }
  const auto report = monitor.evaluate();
  const auto& burn = report.objectives[0].burn[0];
  EXPECT_EQ(burn.alerts, 2);
}

TEST(MonitorTest, AlertsAcrossObjectivesAreTimeOrdered) {
  MonitorOptions options;
  options.rules = {BurnRateRule{"only", 100 * kMicrosecond,
                                100 * kMicrosecond, 1.0}};
  Monitor monitor({availability(0.5), latency(0.5, 1.0)}, options);
  monitor.record_latency(1, 5 * kMicrosecond, 2.0);  // bad at t=5us
  monitor.record(0, 9 * kMicrosecond, false);        // bad at t=9us
  const auto report = monitor.evaluate();
  ASSERT_EQ(report.alerts.size(), 2u);
  EXPECT_EQ(report.alerts[0].objective, "lat");
  EXPECT_EQ(report.alerts[1].objective, "avail");
  EXPECT_LE(report.alerts[0].at, report.alerts[1].at);
}

TEST(MonitorTest, RejectsBadRules) {
  MonitorOptions options;
  options.rules = {BurnRateRule{"bad", 100, 200, 1.0}};  // short > long
  EXPECT_THROW(Monitor({availability()}, options), Error);
  options.rules = {BurnRateRule{"bad", 0, 0, 1.0}};
  EXPECT_THROW(Monitor({availability()}, options), Error);
  Monitor ok({availability()});
  EXPECT_THROW(ok.record(7, 0, true), Error);
}

TEST(MonitorTest, FeedJudgesAWholeServiceRun) {
  serve::ServiceModel model;
  serve::ServiceOptions options;
  options.queue_depth = 4;  // force rejections under a fast burst
  serve::ReductionService service(serve::make_policy("fifo", model), model,
                                  options);
  serve::OpenLoopOptions load;
  load.jobs = 60;
  load.rate_hz = 400000.0;
  load.seed = 7;
  service.submit_all(serve::open_loop_poisson(load));
  service.run();
  const auto sr = service.report();
  ASSERT_GT(sr.rejected, 0) << "test needs a rejecting run";

  Monitor monitor({availability(0.999), latency(0.99, 1.0)});
  monitor.feed(service);
  const auto report = monitor.evaluate();
  EXPECT_EQ(report.objectives[0].samples, sr.served + sr.rejected + sr.shed);
  EXPECT_EQ(report.objectives[0].bad, sr.rejected + sr.shed);
  EXPECT_EQ(report.objectives[1].samples, sr.served);
  EXPECT_FALSE(report.objectives[0].met);
}

TEST(MonitorTest, ChaosRunRaisesBurnAlertDeterministically) {
  // A mid-run GPU outage pushes latency over a tight objective; the run
  // must raise at least one burn alert and serialise byte-identically
  // across evaluations.
  fault::FaultPlan plan;
  fault::OutageWindow outage;
  outage.target = fault::Target::kGpu;
  outage.window.begin = 1 * kMillisecond;
  outage.window.end = 2500 * kMicrosecond;
  plan.outages.push_back(outage);

  const auto run = [&plan]() {
    serve::ServiceModel model;
    fault::Injector injector(plan, 7);
    serve::ServiceOptions options;
    options.injector = &injector;
    serve::ReductionService service(serve::make_policy("fifo", model),
                                    model, options);
    serve::OpenLoopOptions load;
    load.jobs = 200;
    load.rate_hz = 100000.0;
    load.seed = 42;
    service.submit_all(serve::open_loop_poisson(load));
    service.run();
    Monitor monitor({availability(0.999), latency(0.99, 0.25)});
    monitor.feed(service);
    std::ostringstream os;
    monitor.evaluate().write_json(os);
    return os.str();
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  EXPECT_EQ(first.find("\"total_alerts\":0"), std::string::npos);
  EXPECT_NE(first.find("\"alerts\":["), std::string::npos);
}

TEST(MonitorTest, ReportJsonGolden) {
  MonitorOptions options;
  options.rules = {BurnRateRule{"only", 1 * kMillisecond,
                                250 * kMicrosecond, 2.0}};
  Monitor monitor({availability(0.5)}, options);
  monitor.record(0, 0, true);
  monitor.record(0, 100 * kMicrosecond, false);
  std::ostringstream os;
  monitor.evaluate().write_json(os);
  EXPECT_EQ(
      os.str(),
      "{\"objectives\":[{\"name\":\"avail\",\"kind\":\"availability\","
      "\"target\":0.500000,\"samples\":2,\"good\":1,\"bad\":1,"
      "\"compliance\":0.500000,\"budget_burn\":1.000000,\"met\":true,"
      "\"burn\":[{\"severity\":\"only\",\"long_window_ms\":1.000000,"
      "\"short_window_ms\":0.250000,\"threshold\":2.000000,"
      "\"peak_burn\":1.000000,\"alerts\":0,\"first_alert_ms\":null}]}],"
      "\"alerts\":[],\"total_alerts\":0}");
}

}  // namespace
}  // namespace ghs::slo
