// Property-style parameterized sweeps over the simulation invariants:
// determinism, conservation, monotone scaling, and functional correctness
// of the reductions across cases/patterns/splits.
#include <gtest/gtest.h>

#include "ghs/core/reduce.hpp"
#include "ghs/core/verify.hpp"
#include "ghs/util/rng.hpp"

namespace ghs::core {
namespace {

using workload::CaseId;
using workload::HostArray;
using workload::Pattern;

// ---------------------------------------------------------------------------
// Determinism: identical benchmark configurations produce bit-identical
// simulated times.
// ---------------------------------------------------------------------------

class DeterminismTest
    : public ::testing::TestWithParam<std::tuple<CaseId, int>> {};

TEST_P(DeterminismTest, RepeatedRunsAgreeExactly) {
  const auto [case_id, v] = GetParam();
  GpuBenchmark bench;
  bench.case_id = case_id;
  bench.tuning = ReduceTuning{4096, 256, v};
  bench.elements = 1 << 22;
  bench.iterations = 2;
  Platform p1;
  const auto a = run_gpu_benchmark(p1, bench);
  Platform p2;
  const auto b = run_gpu_benchmark(p2, bench);
  EXPECT_EQ(a.elapsed, b.elapsed);
}

INSTANTIATE_TEST_SUITE_P(
    AllCasesAndV, DeterminismTest,
    ::testing::Combine(::testing::Values(CaseId::kC1, CaseId::kC2,
                                         CaseId::kC3, CaseId::kC4),
                       ::testing::Values(1, 4, 32)));

// ---------------------------------------------------------------------------
// Scaling: simulated time is monotone in the number of elements.
// ---------------------------------------------------------------------------

class ScalingTest : public ::testing::TestWithParam<CaseId> {};

TEST_P(ScalingTest, TimeMonotoneInBytes) {
  SimTime previous = 0;
  for (std::int64_t elements : {1 << 20, 1 << 22, 1 << 24}) {
    GpuBenchmark bench;
    bench.case_id = GetParam();
    bench.tuning = ReduceTuning{8192, 256, 4};
    bench.elements = elements;
    bench.iterations = 2;
    Platform platform;
    const auto result = run_gpu_benchmark(platform, bench);
    EXPECT_GT(result.elapsed, previous);
    previous = result.elapsed;
  }
}

TEST_P(ScalingTest, BandwidthNeverExceedsPeak) {
  for (std::int64_t teams : {128, 2048, 65536}) {
    GpuBenchmark bench;
    bench.case_id = GetParam();
    bench.tuning = ReduceTuning{teams, 256, 4};
    bench.elements = 1 << 24;
    bench.iterations = 2;
    Platform platform;
    const auto result = run_gpu_benchmark(platform, bench);
    EXPECT_LE(result.bandwidth.gbps(), 4022.7) << "teams=" << teams;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCases, ScalingTest,
                         ::testing::Values(CaseId::kC1, CaseId::kC2,
                                           CaseId::kC3, CaseId::kC4));

// ---------------------------------------------------------------------------
// Functional correctness across the full case x pattern grid.
// ---------------------------------------------------------------------------

class CorrectnessTest
    : public ::testing::TestWithParam<std::tuple<CaseId, Pattern>> {};

TEST_P(CorrectnessTest, ChunkedReductionVerifies) {
  const auto [case_id, pattern] = GetParam();
  const auto input = HostArray::make(case_id, 200'000, pattern, 77);
  const auto report =
      verify_gpu_reduction(input, 1024, default_tolerance(case_id));
  EXPECT_TRUE(report.ok) << "case " << workload::case_spec(case_id).name
                         << " pattern " << workload::pattern_name(pattern)
                         << " rel err " << report.relative_error;
}

TEST_P(CorrectnessTest, CoExecVerifiesAtEveryTenthSplit) {
  const auto [case_id, pattern] = GetParam();
  const auto input = HostArray::make(case_id, 100'000, pattern, 78);
  for (int tenth = 0; tenth <= 10; ++tenth) {
    const auto split = input.elements() * tenth / 10;
    const auto report =
        verify_coexec(input, split, 512, default_tolerance(case_id));
    EXPECT_TRUE(report.ok) << "split " << split << " rel err "
                           << report.relative_error;
  }
}

INSTANTIATE_TEST_SUITE_P(
    CasePatternGrid, CorrectnessTest,
    ::testing::Combine(::testing::Values(CaseId::kC1, CaseId::kC2,
                                         CaseId::kC3, CaseId::kC4),
                       ::testing::Values(Pattern::kOnes,
                                         Pattern::kAlternating,
                                         Pattern::kUniform, Pattern::kRamp)));

// ---------------------------------------------------------------------------
// Chunk-count invariance for integer reductions (any grid geometry sums to
// the same value).
// ---------------------------------------------------------------------------

class ChunkInvarianceTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ChunkInvarianceTest, IntSumsIndependentOfGrid) {
  const auto input =
      HostArray::make(CaseId::kC2, 123'457, Pattern::kUniform, 5);
  const auto serial = input.serial_sum();
  EXPECT_EQ(input.chunked_sum(GetParam()).i, serial.i);
}

INSTANTIATE_TEST_SUITE_P(GridShapes, ChunkInvarianceTest,
                         ::testing::Values(1, 2, 3, 16, 128, 1000, 123'457));

// ---------------------------------------------------------------------------
// UM sweep invariants at reduced scale across both sites.
// ---------------------------------------------------------------------------

class UmSiteTest : public ::testing::TestWithParam<AllocSite> {};

TEST_P(UmSiteTest, SweepIsDeterministic) {
  HeteroBenchmark bench;
  bench.case_id = CaseId::kC1;
  bench.site = GetParam();
  bench.cpu_parts = {0.0, 0.5, 1.0};
  bench.elements = 1 << 24;
  bench.iterations = 3;
  Platform p1;
  const auto a = run_hetero_benchmark(p1, bench);
  Platform p2;
  const auto b = run_hetero_benchmark(p2, bench);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].elapsed, b.points[i].elapsed);
  }
}

TEST_P(UmSiteTest, ElapsedPositiveAndFinite) {
  HeteroBenchmark bench;
  bench.case_id = CaseId::kC4;
  bench.site = GetParam();
  bench.cpu_parts = paper_cpu_parts();
  bench.elements = 1 << 22;
  bench.iterations = 2;
  Platform platform;
  const auto result = run_hetero_benchmark(platform, bench);
  ASSERT_EQ(result.points.size(), 11u);
  for (const auto& point : result.points) {
    EXPECT_GT(point.elapsed, 0);
    EXPECT_GT(point.bandwidth.gbps(), 0.0);
    EXPECT_LT(point.bandwidth.gbps(), 4522.7);
  }
}

INSTANTIATE_TEST_SUITE_P(BothSites, UmSiteTest,
                         ::testing::Values(AllocSite::kA1, AllocSite::kA2));

// ---------------------------------------------------------------------------
// UM residency conservation: whatever sequence of passes, prefetches and
// migrations runs, every byte lives in exactly one region.
// ---------------------------------------------------------------------------

class UmConservationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UmConservationTest, ResidencyPartitionsTheAllocation) {
  Platform platform;
  auto& um = platform.um();
  ghs::Rng rng(GetParam());
  const Bytes size = (3 + static_cast<Bytes>(rng.next_below(6))) * 16 *
                     (2 * kMiB) / 4;  // 24..128 MiB, not page-aligned below
  const auto alloc =
      um.allocate(size + 12345, mem::RegionId::kLpddr, "prop");
  const Bytes total = um.size(alloc);

  for (int step = 0; step < 40; ++step) {
    const Bytes offset = static_cast<Bytes>(rng.next_below(
        static_cast<std::uint64_t>(total)));
    const Bytes length = std::min<Bytes>(
        total - offset,
        static_cast<Bytes>(rng.next_below(static_cast<std::uint64_t>(
            total / 2 + 1))));
    switch (rng.next_below(4)) {
      case 0:
        um.plan_pass(alloc, um::Accessor::kGpu, offset, length);
        break;
      case 1:
        um.plan_pass(alloc, um::Accessor::kCpu, offset, length);
        break;
      case 2:
        um.prefetch(alloc, offset, length, mem::RegionId::kHbm, nullptr);
        break;
      case 3:
        um.prefetch(alloc, offset, length, mem::RegionId::kLpddr, nullptr);
        break;
    }
    if (step % 5 == 0) platform.run();
    const Bytes hbm = um.resident_bytes(alloc, mem::RegionId::kHbm);
    const Bytes lpddr = um.resident_bytes(alloc, mem::RegionId::kLpddr);
    ASSERT_EQ(hbm + lpddr, total) << "step " << step;
  }
  platform.run();
  const Bytes hbm = um.resident_bytes(alloc, mem::RegionId::kHbm);
  const Bytes lpddr = um.resident_bytes(alloc, mem::RegionId::kLpddr);
  EXPECT_EQ(hbm + lpddr, total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UmConservationTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

// ---------------------------------------------------------------------------
// Host-schedule property: dynamic never loses to static by more than the
// documented work-queue overhead, for any split of the co-executed range.
// ---------------------------------------------------------------------------

class ScheduleSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ScheduleSweepTest, DynamicWithinOverheadOfStatic) {
  const double p = GetParam();
  auto run_with = [&](cpu::ScheduleKind schedule) {
    Platform platform;
    HeteroBenchmark bench;
    bench.case_id = CaseId::kC1;
    bench.cpu_parts = {p};
    bench.elements = 1 << 24;
    bench.iterations = 3;
    bench.cpu_schedule = schedule;
    return run_hetero_benchmark(platform, bench).points[0].elapsed;
  };
  const SimTime static_time = run_with(cpu::ScheduleKind::kStatic);
  const SimTime dynamic_time = run_with(cpu::ScheduleKind::kDynamic);
  // 3 iterations x 4 us queue overhead bounds any regression.
  EXPECT_LE(dynamic_time, static_time + 3 * from_nanoseconds(4000.0) +
                              kMicrosecond);
}

INSTANTIATE_TEST_SUITE_P(Splits, ScheduleSweepTest,
                         ::testing::Values(0.2, 0.5, 0.8, 1.0));

}  // namespace
}  // namespace ghs::core
