// Integration tests of the Section IV unified-memory co-execution story,
// run at full paper scale for C1 (one case keeps the suite fast; the bench
// binaries cover all four).
#include <gtest/gtest.h>

#include "ghs/core/sweep.hpp"

namespace ghs::core {
namespace {

using workload::CaseId;

class UmExperimentsTest : public ::testing::Test {
 protected:
  static const UmExperimentSet& set() {
    static const UmExperimentSet result = [] {
      UmSweepOptions opts;
      opts.iterations = 200;  // the warm-up amortisation needs the real N
      return run_um_experiments({CaseId::kC1}, opts);
    }();
    return result;
  }
};

TEST_F(UmExperimentsTest, GpuOnlyReferenceIsIdenticalAcrossSites) {
  // At p = 0 the A1 and A2 protocols have executed the same history.
  const double a1 = set().optimized_a1[0].at(0.0).bandwidth.gbps();
  const double a2 = set().optimized_a2[0].at(0.0).bandwidth.gbps();
  EXPECT_NEAR(a1, a2, a1 * 1e-6);
}

TEST_F(UmExperimentsTest, CoExecutionBeatsGpuOnlyWithA1) {
  // Fig. 2b: distributing across both devices beats GPU-only execution.
  const double best = set().optimized_a1[0].best_speedup_over_gpu_only();
  EXPECT_GE(best, 1.8);
  EXPECT_LE(best, 3.5);
}

TEST_F(UmExperimentsTest, A2CoExecutionBarelyBeatsGpuOnly) {
  // Fig. 4b: the best A2 speedup for C1 is ~1.1 (paper: 1.139).
  const double best = set().optimized_a2[0].best_speedup_over_gpu_only();
  EXPECT_GE(best, 1.0);
  EXPECT_LE(best, 1.35);
}

TEST_F(UmExperimentsTest, CpuOnlyIsSlowerWithA1) {
  // Paper: CPU-only with A1 is 1.367x slower than with A2 because the
  // pages are stranded in HBM after the earlier GPU-heavy experiments.
  const double a1 = set().optimized_a1[0].at(1.0).bandwidth.gbps();
  const double a2 = set().optimized_a2[0].at(1.0).bandwidth.gbps();
  EXPECT_NEAR(a2 / a1, 1.367, 0.07);
}

TEST_F(UmExperimentsTest, CpuOnlyA1ReadsRemote) {
  const auto& point = set().optimized_a1[0].at(1.0);
  EXPECT_GT(point.cpu_remote_bytes, 0);
  const auto& a2_point = set().optimized_a2[0].at(1.0);
  EXPECT_EQ(a2_point.cpu_remote_bytes, 0);
}

TEST_F(UmExperimentsTest, A1WarmsUpAcrossTheSweep) {
  // In A1, the p = 0 experiment migrates the whole array; later points see
  // (almost) no GPU-side remote traffic.
  const auto& runs = set().optimized_a1[0];
  EXPECT_GT(runs.at(0.0).gpu_remote_bytes, 0);
  EXPECT_EQ(runs.at(0.5).gpu_remote_bytes, 0);
}

TEST_F(UmExperimentsTest, A2StaysColdAtEveryP) {
  // Fresh allocation per p: every point with a GPU part pays remote/fault
  // traffic again.
  const auto& runs = set().optimized_a2[0];
  EXPECT_GT(runs.at(0.0).gpu_remote_bytes, 0);
  EXPECT_GT(runs.at(0.5).gpu_remote_bytes, 0);
  EXPECT_EQ(runs.at(1.0).gpu_remote_bytes, 0);
}

TEST_F(UmExperimentsTest, OptimizedOverBaselineSpeedupLargestAtLowP) {
  // Figs. 3/5: speedups are significant when the GPU part dominates and
  // fade to ~1 as the CPU part takes over.
  const auto& base = set().baseline_a1[0];
  const auto& opt = set().optimized_a1[0];
  const double at_low_p = opt.at(0.0).bandwidth.gbps() /
                          base.at(0.0).bandwidth.gbps();
  const double at_high_p = opt.at(0.9).bandwidth.gbps() /
                           base.at(0.9).bandwidth.gbps();
  EXPECT_GT(at_low_p, 2.0);
  EXPECT_NEAR(at_high_p, 1.0, 0.05);
}

TEST_F(UmExperimentsTest, BaselineKernelCapsTheGpuSide) {
  // The baseline co-run never reaches the optimized co-run's best.
  double best_base = 0.0;
  double best_opt = 0.0;
  for (const auto& p : set().baseline_a1[0].points) {
    best_base = std::max(best_base, p.bandwidth.gbps());
  }
  for (const auto& p : set().optimized_a1[0].points) {
    best_opt = std::max(best_opt, p.bandwidth.gbps());
  }
  EXPECT_GT(best_opt, best_base);
}

TEST_F(UmExperimentsTest, BandwidthCurvesStayBelowAggregateCapacity) {
  // Sanity: no point exceeds HBM + LPDDR combined capacity.
  const double cap = 4022.7 + 500.0;
  for (const auto* runs :
       {&set().baseline_a1[0], &set().optimized_a1[0], &set().baseline_a2[0],
        &set().optimized_a2[0]}) {
    for (const auto& point : runs->points) {
      EXPECT_LE(point.bandwidth.gbps(), cap);
    }
  }
}

}  // namespace
}  // namespace ghs::core
