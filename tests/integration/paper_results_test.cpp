// Reproduction-lock tests: run the paper's Table 1 protocol at full paper
// scale and assert the simulated results stay within a few percent of the
// published numbers. These tests pin the calibration — if a model change
// silently shifts the headline reproduction, they fail.
#include <gtest/gtest.h>

#include "ghs/core/sweep.hpp"

namespace ghs::core {
namespace {

using workload::CaseId;

class PaperTable1Test : public ::testing::Test {
 protected:
  static const std::vector<Table1Row>& rows() {
    static const std::vector<Table1Row> result = [] {
      SweepOptions opts;
      opts.iterations = 5;  // bandwidth is repetition-insensitive here
      return table1(workload::all_cases(), opts);
    }();
    return result;
  }

  static const Table1Row& row(CaseId id) {
    for (const auto& r : rows()) {
      if (r.case_id == id) return r;
    }
    throw std::runtime_error("missing row");
  }
};

struct PaperNumbers {
  CaseId id;
  double baseline;
  double optimized;
  double speedup;
};

constexpr double kTolerance = 0.05;  // 5 % of the published value

TEST_F(PaperTable1Test, BaselineBandwidthsMatchPaper) {
  const PaperNumbers paper[] = {
      {CaseId::kC1, 620.0, 3795.0, 6.120},
      {CaseId::kC2, 172.0, 3596.0, 20.906},
      {CaseId::kC3, 271.0, 3790.0, 13.985},
      {CaseId::kC4, 526.0, 3833.0, 7.287},
  };
  for (const auto& expected : paper) {
    const auto& actual = row(expected.id);
    EXPECT_NEAR(actual.baseline_gbps, expected.baseline,
                expected.baseline * kTolerance)
        << workload::case_spec(expected.id).name;
    EXPECT_NEAR(actual.optimized_gbps, expected.optimized,
                expected.optimized * kTolerance)
        << workload::case_spec(expected.id).name;
    EXPECT_NEAR(actual.speedup, expected.speedup,
                expected.speedup * kTolerance)
        << workload::case_spec(expected.id).name;
  }
}

TEST_F(PaperTable1Test, EfficiencyBandsMatchPaper) {
  // Paper: optimized efficiency 89-95 %; baselines capped at 15.4 %.
  for (const auto& r : rows()) {
    EXPECT_GE(r.optimized_efficiency, 0.88)
        << workload::case_spec(r.case_id).name;
    EXPECT_LE(r.optimized_efficiency, 0.96);
    EXPECT_LE(r.baseline_efficiency, 0.16);
  }
}

TEST_F(PaperTable1Test, C2HasTheLargestSpeedup) {
  double c2 = row(CaseId::kC2).speedup;
  for (const auto& r : rows()) {
    if (r.case_id != CaseId::kC2) {
      EXPECT_GT(c2, r.speedup);
    }
  }
}

TEST_F(PaperTable1Test, C2HasTheLowestEfficiency) {
  double c2 = row(CaseId::kC2).optimized_efficiency;
  for (const auto& r : rows()) {
    if (r.case_id != CaseId::kC2) {
      EXPECT_LT(c2, r.optimized_efficiency);
    }
  }
}

TEST(PaperFig1Test, SaturationThresholdsMatchSectionIiiC) {
  SweepOptions opts;
  opts.iterations = 3;
  opts.vs = {4};
  opts.teams = {128, 4096, 65536};
  // C1: "performance becomes almost saturated when the number of teams is
  // 4096" — 4096 teams should reach >= 90 % of the 65536-team value.
  {
    const auto fig = fig1_sweep(CaseId::kC1, opts);
    const auto& v4 = *fig.find_series("v4");
    EXPECT_GE(v4.at(4096).value(), 0.90 * v4.at(65536).value());
    EXPECT_LT(v4.at(128).value(), 0.5 * v4.at(65536).value());
  }
  // C2 saturates later: at 4096 teams it is still well below the top for
  // the paper's chosen V = 32.
  {
    SweepOptions c2_opts = opts;
    c2_opts.vs = {32};
    const auto fig = fig1_sweep(CaseId::kC2, c2_opts);
    const auto& v32 = *fig.find_series("v32");
    EXPECT_LT(v32.at(4096).value(), 0.75 * v32.at(65536).value());
  }
}

TEST(PaperFig1Test, ProfiledGridGeometryMatchesSectionIiiC) {
  // "the grid sizes of the GPU reduction kernels match the team sizes
  // specified by the num_teams clause" and the runtime defaults.
  Platform platform;
  auto& rt = platform.runtime();
  EXPECT_EQ(rt.default_grid(1'048'576'000), 8'192'000);
  EXPECT_EQ(rt.default_grid(4'194'304'000), 16'777'215);

  omp::TeamsClauses clauses;
  clauses.num_teams = 65536 / 4;
  clauses.thread_limit = 256;
  const auto desc = rt.lower(
      make_reduction_loop(CaseId::kC1, 1'048'576'000, 4, false, 0, 0),
      clauses);
  EXPECT_EQ(desc.grid, 16384);
  EXPECT_EQ(desc.threads_per_cta, 256);
}

}  // namespace
}  // namespace ghs::core
