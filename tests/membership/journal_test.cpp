// Job journal: write-ahead append/commit bookkeeping and the exactly-once
// primitives (take_open in append order, is_open for dup detection).
#include <gtest/gtest.h>

#include "ghs/membership/journal.hpp"
#include "ghs/util/error.hpp"

namespace ghs::membership {
namespace {

serve::Job job_with_id(serve::JobId id) {
  serve::Job job;
  job.id = id;
  job.elements = 1 << 14;
  return job;
}

TEST(JobJournal, AppendCommitLifecycle) {
  JobJournal journal(2);
  journal.append(0, job_with_id(7));
  EXPECT_TRUE(journal.is_open(0, 7));
  EXPECT_FALSE(journal.is_open(1, 7));
  EXPECT_EQ(journal.open_count(0), 1);
  EXPECT_TRUE(journal.commit(0, 7));
  EXPECT_FALSE(journal.is_open(0, 7));
  EXPECT_EQ(journal.open_count(0), 0);
  // Second commit finds nothing: the caller uses this to spot dups.
  EXPECT_FALSE(journal.commit(0, 7));
  EXPECT_EQ(journal.appended(), 1);
  EXPECT_EQ(journal.committed(), 1);
}

TEST(JobJournal, TakeOpenReturnsAppendOrderNotIdOrder) {
  JobJournal journal(1);
  // Append out of id order: a retried job re-queued late must replay in
  // the order the node accepted it, not sorted by id.
  journal.append(0, job_with_id(30));
  journal.append(0, job_with_id(10));
  journal.append(0, job_with_id(20));
  const auto jobs = journal.take_open(0);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].id, 30);
  EXPECT_EQ(jobs[1].id, 10);
  EXPECT_EQ(jobs[2].id, 20);
  EXPECT_EQ(journal.open_count(0), 0);
  EXPECT_EQ(journal.committed(), 3);
}

TEST(JobJournal, AJobIsOpenOnAtMostOneNode) {
  JobJournal journal(2);
  journal.append(0, job_with_id(5));
  EXPECT_THROW(journal.append(0, job_with_id(5)), Error);
  // Moving a job between nodes is commit-then-append.
  EXPECT_TRUE(journal.commit(0, 5));
  journal.append(1, job_with_id(5));
  EXPECT_TRUE(journal.is_open(1, 5));
}

TEST(JobJournal, RejectsBadNodes) {
  EXPECT_THROW(JobJournal(0), Error);
  JobJournal journal(2);
  EXPECT_THROW(journal.append(2, job_with_id(1)), Error);
  EXPECT_THROW(journal.open_count(-1), Error);
}

}  // namespace
}  // namespace ghs::membership
