// Phi-accrual health monitor on a bare simulator: silence climbs through
// suspect into dead, resumed heartbeats rejoin after the warm-up window,
// and the sweep chain always terminates.
#include <gtest/gtest.h>

#include <vector>

#include "ghs/membership/health.hpp"
#include "ghs/membership/table.hpp"
#include "ghs/sim/simulator.hpp"
#include "ghs/util/units.hpp"

namespace ghs::membership {
namespace {

struct Fixture {
  sim::Simulator sim;
  Table table;
  std::vector<char> up;

  explicit Fixture(int nodes)
      : table(nodes), up(static_cast<std::size_t>(nodes), 1) {}

  HealthOptions options() const {
    HealthOptions o;
    o.enabled = true;
    o.interval = 100 * kMicrosecond;
    o.rejoin_delay = 200 * kMicrosecond;
    return o;
  }

  std::function<bool(int)> probe() {
    return [this](int i) { return up[static_cast<std::size_t>(i)] != 0; };
  }
};

TEST(HealthMonitor, HealthyFleetNeverTransitions) {
  Fixture f(3);
  HealthMonitor monitor(f.sim, f.table, f.options(), f.probe());
  monitor.start();
  // Keep the sim busy for a while so several sweeps run.
  f.sim.schedule_at(1 * kMillisecond, [] {});
  f.sim.run();
  EXPECT_GE(monitor.sweeps(), 10);
  EXPECT_TRUE(f.table.log().empty());
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(monitor.phi(i), 0.0);
}

TEST(HealthMonitor, SilenceClimbsThroughSuspectIntoDead) {
  Fixture f(2);
  HealthMonitor monitor(f.sim, f.table, f.options(), f.probe());
  monitor.start();
  const SimTime crash = 1 * kMillisecond;
  f.sim.schedule_at(crash, [&] { f.up[1] = 0; });
  f.sim.run();  // chain stays alive via pending() until node 1 is dead
  ASSERT_EQ(f.table.log().size(), 2u);
  const auto& suspect = f.table.log()[0];
  const auto& dead = f.table.log()[1];
  EXPECT_EQ(suspect.node, 1);
  EXPECT_EQ(suspect.to, NodeState::kSuspect);
  EXPECT_EQ(dead.node, 1);
  EXPECT_EQ(dead.to, NodeState::kDead);
  // phi 1.0 ~ 2.3 missed intervals, phi 3.0 ~ 6.9: detection is ordered
  // and happens after the crash, quantised to sweep instants.
  EXPECT_GT(suspect.at, crash);
  EXPECT_GT(dead.at, suspect.at);
  EXPECT_EQ(suspect.at % (100 * kMicrosecond), 0);
  EXPECT_GE(monitor.phi(1), 3.0);
  EXPECT_EQ(f.table.state(0), NodeState::kAlive);
}

TEST(HealthMonitor, ResumedHeartbeatsRejoinAfterWarmup) {
  Fixture f(2);
  HealthMonitor monitor(f.sim, f.table, f.options(), f.probe());
  monitor.start();
  const SimTime restart = 3 * kMillisecond;
  f.sim.schedule_at(1 * kMillisecond, [&] { f.up[1] = 0; });
  f.sim.schedule_at(restart, [&] { f.up[1] = 1; });
  f.sim.run();
  EXPECT_EQ(f.table.state(1), NodeState::kAlive);
  ASSERT_EQ(f.table.log().size(), 3u);
  const auto& rejoin = f.table.log()[2];
  EXPECT_EQ(rejoin.from, NodeState::kDead);
  EXPECT_EQ(rejoin.to, NodeState::kAlive);
  // The node must show rejoin_delay of continuous health first.
  EXPECT_GE(rejoin.at, restart + f.options().rejoin_delay);
  EXPECT_EQ(rejoin.reason, "rejoined after warm-up");
  EXPECT_DOUBLE_EQ(monitor.phi(1), 0.0);
}

TEST(HealthMonitor, BriefStallOnlySuspectsAndRecoversImmediately) {
  Fixture f(1);
  HealthOptions options = f.options();
  HealthMonitor monitor(f.sim, f.table, options, f.probe());
  monitor.start();
  // Quiet for ~3 intervals: enough for suspect (phi 1.0 ~ 2.3 intervals),
  // not for dead (phi 3.0 ~ 6.9) — then heartbeats resume.
  f.sim.schedule_at(1 * kMillisecond, [&] { f.up[0] = 0; });
  f.sim.schedule_at(1 * kMillisecond + 350 * kMicrosecond,
                    [&] { f.up[0] = 1; });
  f.sim.run();
  ASSERT_EQ(f.table.log().size(), 2u);
  EXPECT_EQ(f.table.log()[0].to, NodeState::kSuspect);
  EXPECT_EQ(f.table.log()[1].to, NodeState::kAlive);
  EXPECT_EQ(f.table.log()[1].reason, "heartbeat resumed");
  // No warm-up for a suspect: the first heartbeat clears it.
  EXPECT_LE(f.table.log()[1].at - f.table.log()[0].at,
            5 * options.interval);
}

TEST(HealthMonitor, DrainingNodesAreNeverScored) {
  Fixture f(2);
  HealthMonitor monitor(f.sim, f.table, f.options(), f.probe());
  monitor.start();
  f.sim.schedule_at(500 * kMicrosecond, [&] {
    f.table.transition(1, NodeState::kDraining, f.sim.now(), "drain");
    f.up[1] = 0;  // silent, but on purpose
  });
  f.sim.schedule_at(3 * kMillisecond, [] {});
  f.sim.run();
  // The only transition is the drain itself; no suspect/dead pile-up.
  ASSERT_EQ(f.table.log().size(), 1u);
  EXPECT_EQ(f.table.state(1), NodeState::kDraining);
}

TEST(HealthMonitor, SameScheduleSameTransitions) {
  const auto once = [] {
    Fixture f(3);
    HealthMonitor monitor(f.sim, f.table, f.options(), f.probe());
    monitor.start();
    f.sim.schedule_at(700 * kMicrosecond, [&] { f.up[2] = 0; });
    f.sim.schedule_at(2 * kMillisecond, [&] { f.up[2] = 1; });
    f.sim.run();
    std::vector<std::pair<SimTime, int>> log;
    for (const auto& t : f.table.log()) {
      log.emplace_back(t.at, static_cast<int>(t.to));
    }
    return log;
  };
  EXPECT_EQ(once(), once());
}

}  // namespace
}  // namespace ghs::membership
