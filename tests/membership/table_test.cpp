// Membership table: state storage, transition log, callback fan-out, and
// the serving() routability predicate.
#include <gtest/gtest.h>

#include <vector>

#include "ghs/membership/table.hpp"
#include "ghs/util/error.hpp"

namespace ghs::membership {
namespace {

TEST(Table, StartsAllAlive) {
  Table table(3);
  EXPECT_EQ(table.nodes(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(table.state(i), NodeState::kAlive);
    EXPECT_TRUE(table.serving(i));
  }
  EXPECT_TRUE(table.log().empty());
}

TEST(Table, TransitionRecordsAndNotifies) {
  Table table(2);
  std::vector<Transition> seen;
  table.set_on_transition([&](const Transition& t) { seen.push_back(t); });
  table.transition(1, NodeState::kSuspect, 100, "phi=1.20");
  table.transition(1, NodeState::kDead, 250, "phi=3.01");
  ASSERT_EQ(table.log().size(), 2u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].node, 1);
  EXPECT_EQ(seen[0].from, NodeState::kAlive);
  EXPECT_EQ(seen[0].to, NodeState::kSuspect);
  EXPECT_EQ(seen[0].at, 100);
  EXPECT_EQ(seen[0].reason, "phi=1.20");
  EXPECT_EQ(seen[1].from, NodeState::kSuspect);
  EXPECT_EQ(seen[1].to, NodeState::kDead);
  EXPECT_EQ(table.state(1), NodeState::kDead);
  EXPECT_EQ(table.state(0), NodeState::kAlive);
}

TEST(Table, SelfTransitionIsANoOp) {
  Table table(1);
  int calls = 0;
  table.set_on_transition([&](const Transition&) { ++calls; });
  table.transition(0, NodeState::kAlive, 50, "still alive");
  EXPECT_EQ(calls, 0);
  EXPECT_TRUE(table.log().empty());
}

TEST(Table, ServingCoversAliveAndSuspectOnly) {
  Table table(5);
  table.transition(1, NodeState::kSuspect, 1, "");
  table.transition(2, NodeState::kDead, 2, "");
  table.transition(3, NodeState::kDraining, 3, "");
  table.transition(4, NodeState::kLeft, 4, "");
  EXPECT_TRUE(table.serving(0));
  EXPECT_TRUE(table.serving(1));   // suspect still routable
  EXPECT_FALSE(table.serving(2));  // dead
  EXPECT_FALSE(table.serving(3));  // draining
  EXPECT_FALSE(table.serving(4));  // departed
}

TEST(Table, StateNamesAreStable) {
  EXPECT_STREQ(node_state_name(NodeState::kAlive), "alive");
  EXPECT_STREQ(node_state_name(NodeState::kSuspect), "suspect");
  EXPECT_STREQ(node_state_name(NodeState::kDead), "dead");
  EXPECT_STREQ(node_state_name(NodeState::kDraining), "draining");
  EXPECT_STREQ(node_state_name(NodeState::kLeft), "left");
}

TEST(Table, RejectsBadNodes) {
  EXPECT_THROW(Table(0), Error);
  Table table(2);
  EXPECT_THROW(table.state(-1), Error);
  EXPECT_THROW(table.state(2), Error);
  EXPECT_THROW(table.transition(7, NodeState::kDead, 0, ""), Error);
}

}  // namespace
}  // namespace ghs::membership
