#include "ghs/serve/service.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "ghs/serve/loadgen.hpp"
#include "ghs/serve/policy.hpp"

namespace ghs::serve {
namespace {

Job job(JobId id, workload::CaseId case_id, std::int64_t elements,
        SimTime arrival, SimTime deadline = 0) {
  Job j;
  j.id = id;
  j.case_id = case_id;
  j.elements = elements;
  j.arrival = arrival;
  j.deadline = deadline;
  return j;
}

TEST(ReductionServiceTest, ServesEverythingWhenUnderLoaded) {
  ServiceModel model;
  ReductionService service(std::make_unique<FifoPolicy>(), model);
  for (JobId id = 0; id < 4; ++id) {
    service.submit(job(id, workload::CaseId::kC1, 1 << 16,
                       id * kMicrosecond));
  }
  service.run();
  EXPECT_EQ(service.records().size(), 4u);
  EXPECT_EQ(service.report().rejected, 0);
  for (const auto& record : service.records()) {
    EXPECT_GE(record.start, record.job.arrival);
    EXPECT_GT(record.completion, record.start);
  }
}

TEST(ReductionServiceTest, BackpressureRejectsBeyondQueueDepth) {
  ServiceModel model;
  ServiceOptions options;
  options.queue_depth = 4;
  options.batching.enable = false;
  ReductionService service(std::make_unique<FifoPolicy>(), model, options);
  // A big job pins the GPU while a burst lands at the same instant.
  service.submit(job(0, workload::CaseId::kC4, 1 << 24, 0));
  for (JobId id = 1; id <= 10; ++id) {
    service.submit(job(id, workload::CaseId::kC1, 1 << 16, 1));
  }
  service.run();
  const auto report = service.report();
  EXPECT_EQ(report.submitted, 11);
  EXPECT_EQ(report.rejected, 6);  // 4 queued + 1 in service + 6 refused
  EXPECT_EQ(report.served, 5);
  EXPECT_EQ(service.rejected_jobs().size(), 6u);
  EXPECT_EQ(report.queue_high_watermark, 4u);
}

TEST(ReductionServiceTest, BatchesSmallSameCaseJobsIntoOneLaunch) {
  ServiceModel model;
  ServiceOptions options;
  options.batching.max_jobs = 4;
  ReductionService service(std::make_unique<FifoPolicy>(), model, options);
  // One blocker so the burst is queued when the GPU frees.
  service.submit(job(0, workload::CaseId::kC4, 1 << 22, 0));
  for (JobId id = 1; id <= 4; ++id) {
    service.submit(job(id, workload::CaseId::kC3, 1 << 14, 1));
  }
  service.run();
  const auto& stats = service.pool().stats();
  EXPECT_EQ(stats.multi_job_launches, 1);
  EXPECT_EQ(stats.batched_jobs, 4);
  EXPECT_EQ(stats.launches, 2);  // blocker + one fused launch
  // All batch riders share one launch id and completion time.
  std::int64_t batch_launch = -1;
  SimTime completion = 0;
  for (const auto& record : service.records()) {
    if (record.job.case_id != workload::CaseId::kC3) continue;
    if (batch_launch < 0) {
      batch_launch = record.launch_id;
      completion = record.completion;
    }
    EXPECT_EQ(record.launch_id, batch_launch);
    EXPECT_EQ(record.completion, completion);
  }
}

TEST(ReductionServiceTest, BatchingOffLaunchesIndividually) {
  ServiceModel model;
  ServiceOptions options;
  options.batching.enable = false;
  ReductionService service(std::make_unique<FifoPolicy>(), model, options);
  service.submit(job(0, workload::CaseId::kC4, 1 << 22, 0));
  for (JobId id = 1; id <= 4; ++id) {
    service.submit(job(id, workload::CaseId::kC3, 1 << 14, 1));
  }
  service.run();
  EXPECT_EQ(service.pool().stats().launches, 5);
  EXPECT_EQ(service.pool().stats().multi_job_launches, 0);
}

TEST(ReductionServiceTest, BatchingImprovesMakespanOnTinyJobBursts) {
  const auto burst = [](bool batching) {
    ServiceModel model;
    ServiceOptions options;
    options.batching.enable = batching;
    ReductionService service(std::make_unique<FifoPolicy>(), model, options);
    for (JobId id = 0; id < 16; ++id) {
      service.submit(job(id, workload::CaseId::kC1, 1 << 14, 0));
    }
    service.run();
    return service.report().makespan;
  };
  EXPECT_LT(burst(true), burst(false));
}

TEST(ReductionServiceTest, DeadlineAccounting) {
  ServiceModel model;
  ServiceOptions options;
  options.batching.enable = false;
  ReductionService service(std::make_unique<FifoPolicy>(), model, options);
  // Impossible deadline (1 ns) on a multi-microsecond job, generous one on
  // the other.
  service.submit(job(0, workload::CaseId::kC4, 1 << 22, 0, kNanosecond));
  service.submit(job(1, workload::CaseId::kC1, 1 << 16, 0, kSecond));
  service.run();
  EXPECT_EQ(service.report().deadline_missed, 1);
}

TEST(ReductionServiceTest, BandwidthPolicyUsesBothProcessors) {
  ServiceModel model;
  ReductionService service(
      std::make_unique<BandwidthAwarePolicy>(model), model);
  for (JobId id = 0; id < 12; ++id) {
    service.submit(job(id, workload::CaseId::kC1, 1 << 16, 0));
  }
  service.run();
  const auto report = service.report();
  EXPECT_EQ(report.served, 12);
  EXPECT_GT(report.gpu_jobs, 0);
  EXPECT_GT(report.cpu_jobs, 0);
  EXPECT_GT(report.tuner_misses, 0);
}

TEST(ReductionServiceTest, ServerSpansLandOnTheServerTrack) {
  ServiceModel model;
  trace::Tracer tracer;
  ServiceOptions options;
  options.queue_depth = 2;
  options.batching.enable = false;
  ReductionService service(std::make_unique<FifoPolicy>(), model, options,
                           &tracer);
  service.submit(job(0, workload::CaseId::kC4, 1 << 22, 0));
  for (JobId id = 1; id <= 5; ++id) {
    service.submit(job(id, workload::CaseId::kC1, 1 << 16, 1));
  }
  service.run();
  std::size_t server_spans = 0;
  for (const auto& span : tracer.spans()) {
    if (span.track == trace::Track::kServer) ++server_spans;
  }
  std::size_t reject_marks = 0;
  for (const auto& instant : tracer.instants()) {
    if (instant.track == trace::Track::kServer) ++reject_marks;
  }
  EXPECT_EQ(server_spans, 3u);  // blocker + 2 queued launches
  EXPECT_EQ(reject_marks, 3u);
  std::ostringstream json;
  tracer.write_chrome_json(json);
  EXPECT_NE(json.str().find("Reduction service"), std::string::npos);
}

TEST(ReductionServiceTest, LatencySeriesMatchesRecords) {
  ServiceModel model;
  ReductionService service(std::make_unique<FifoPolicy>(), model);
  for (JobId id = 0; id < 3; ++id) {
    service.submit(job(id, workload::CaseId::kC1, 1 << 16,
                       id * kMicrosecond));
  }
  service.run();
  EXPECT_EQ(service.latency_series().points().size(), 3u);
}

TEST(ReductionServiceTest, LatencyStatsDegradeGracefullyOnTinySeries) {
  const LatencyStats empty = make_latency_stats({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.mean_ms, 0.0);
  EXPECT_DOUBLE_EQ(empty.max_ms, 0.0);
  EXPECT_DOUBLE_EQ(empty.pct.p50, 0.0);
  EXPECT_DOUBLE_EQ(empty.pct.p999, 0.0);

  const LatencyStats single = make_latency_stats({2.25});
  EXPECT_EQ(single.count, 1u);
  EXPECT_DOUBLE_EQ(single.mean_ms, 2.25);
  EXPECT_DOUBLE_EQ(single.max_ms, 2.25);
  EXPECT_DOUBLE_EQ(single.pct.p50, 2.25);
  EXPECT_DOUBLE_EQ(single.pct.p99, 2.25);
}

TEST(ReductionServiceTest, BurstyArrivalsFillQueueToDepthDeterministically) {
  const auto run = [] {
    ServiceModel model;
    ServiceOptions options;
    options.queue_depth = 6;
    options.batching.enable = false;
    ReductionService service(std::make_unique<FifoPolicy>(), model, options);
    // Two bursts: the first overwhelms the queue while a big job pins the
    // GPU; the second lands after some drain, refilling to the depth.
    service.submit(job(0, workload::CaseId::kC4, 1 << 24, 0));
    JobId id = 1;
    for (int burst = 0; burst < 2; ++burst) {
      for (int k = 0; k < 10; ++k) {
        service.submit(job(id++, workload::CaseId::kC1, 1 << 16,
                           burst * 200 * kMicrosecond + 1));
      }
    }
    service.run();
    std::ostringstream json;
    service.report().write_json(json);
    return std::make_pair(service.report(), json.str());
  };
  const auto [report, json_a] = run();
  // The queue fills exactly to its bound, never past it, and every job is
  // either served or rejected — none lost in between.
  EXPECT_EQ(report.queue_high_watermark, 6u);
  EXPECT_GT(report.rejected, 0);
  EXPECT_EQ(report.submitted, 21);
  EXPECT_EQ(report.served + report.rejected, report.submitted);
  // Same seed, same bursts: the report replays byte-for-byte.
  EXPECT_EQ(json_a, run().second);
}

TEST(ClosedLoopTest, KeepsTenantsJobLimitAndDeterminism) {
  const auto run = [] {
    ServiceModel model;
    ReductionService service(std::make_unique<FifoPolicy>(), model);
    ClosedLoopOptions options;
    options.tenants = 4;
    options.jobs = 20;
    options.seed = 7;
    run_closed_loop(service, options);
    std::ostringstream json;
    service.report().write_json(json);
    return std::make_pair(service.report().served, json.str());
  };
  const auto [served_a, json_a] = run();
  const auto [served_b, json_b] = run();
  EXPECT_EQ(served_a, 20);
  EXPECT_EQ(json_a, json_b);
}

}  // namespace
}  // namespace ghs::serve
