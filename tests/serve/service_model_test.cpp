#include "ghs/serve/service_model.hpp"

#include <gtest/gtest.h>

namespace ghs::serve {
namespace {

TEST(ServiceModelTest, CachesShapes) {
  ServiceModel model;
  const auto tuning = core::paper_best_tuning(workload::CaseId::kC1);
  const auto first = model.gpu_service(workload::CaseId::kC1, 1 << 16, tuning);
  EXPECT_EQ(model.misses(), 1);
  const auto second =
      model.gpu_service(workload::CaseId::kC1, 1 << 16, tuning);
  EXPECT_EQ(model.misses(), 1);
  EXPECT_EQ(model.hits(), 1);
  EXPECT_EQ(first, second);
  // CPU entries are cached independently of GPU entries.
  model.cpu_service(workload::CaseId::kC1, 1 << 16);
  EXPECT_EQ(model.misses(), 2);
}

TEST(ServiceModelTest, ServiceGrowsWithElements) {
  ServiceModel model;
  const auto tuning = core::paper_best_tuning(workload::CaseId::kC3);
  EXPECT_LT(model.gpu_service(workload::CaseId::kC3, 1 << 16, tuning),
            model.gpu_service(workload::CaseId::kC3, 1 << 22, tuning));
  EXPECT_LT(model.cpu_service(workload::CaseId::kC3, 1 << 16),
            model.cpu_service(workload::CaseId::kC3, 1 << 22));
}

TEST(ServiceModelTest, GpuOutrunsCpuOnLargeShapes) {
  ServiceModel model;
  const auto tuning = core::paper_best_tuning(workload::CaseId::kC1);
  // At 2^24 elements (64 MiB of int32) the H100's HBM stream beats the
  // Grace socket even with launch overheads amortised once.
  EXPECT_LT(model.gpu_service(workload::CaseId::kC1, 1 << 24, tuning),
            model.cpu_service(workload::CaseId::kC1, 1 << 24));
}

}  // namespace
}  // namespace ghs::serve
