// Span-tree integrity of the serving layer's causal traces: under fault
// injection every retained span must still belong to a well-formed tree —
// one serve.job root per trace, every child's parent present, retry spans
// parented under their job — and same-seed runs must export byte-identical
// trace files.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "ghs/fault/injector.hpp"
#include "ghs/fault/plan.hpp"
#include "ghs/serve/loadgen.hpp"
#include "ghs/serve/policy.hpp"
#include "ghs/serve/service.hpp"
#include "ghs/trace/chrome_exporter.hpp"
#include "ghs/trace/tracer.hpp"

namespace ghs::serve {
namespace {

constexpr const char* kChaosPlan =
    "kernel-fault gpu p=0.05\n"
    "device-down gpu from=1ms until=2500us\n";

// Runs the canonical chaotic workload with a tracer attached and returns
// the tracer by reference through `tracer`; the service report through
// the return value.
ServiceReport run_traced(trace::Tracer& tracer) {
  ServiceModel model;
  const fault::FaultPlan plan = fault::parse_plan(kChaosPlan);
  fault::Injector injector(plan, 7);
  ServiceOptions options;
  options.injector = &injector;
  ReductionService service(make_policy("fifo", model), model, options,
                           &tracer);
  OpenLoopOptions load;
  load.jobs = 200;
  load.rate_hz = 100000.0;
  load.seed = 42;
  service.submit_all(open_loop_poisson(load));
  service.run();
  return service.report();
}

TEST(TraceIntegrityTest, EveryRetainedSpanBelongsToAWellFormedTree) {
  trace::Tracer tracer;
  const auto report = run_traced(tracer);
  ASSERT_GT(report.retries, 0) << "plan must force retries";

  const auto spans = tracer.spans();
  std::map<std::uint64_t, const trace::Span*> by_span_id;
  std::map<std::uint64_t, int> roots_per_trace;
  int ctx_spans = 0;
  for (const auto& span : spans) {
    if (!span.ctx.valid()) continue;
    ++ctx_spans;
    EXPECT_TRUE(by_span_id.emplace(span.ctx.span_id, &span).second)
        << "duplicate span id " << span.ctx.span_id;
    if (span.ctx.parent_id == 0) {
      ++roots_per_trace[span.ctx.trace_id];
      EXPECT_EQ(span.name.rfind("serve.job", 0), 0u)
          << "root span is not a serve.job span: " << span.name;
    }
  }
  ASSERT_GT(ctx_spans, 0);

  // No orphans: every child's parent is retained, in the same trace, and
  // the chain reaches a root.
  int retry_spans = 0;
  for (const auto& span : spans) {
    if (!span.ctx.valid() || span.ctx.parent_id == 0) continue;
    const auto parent = by_span_id.find(span.ctx.parent_id);
    ASSERT_NE(parent, by_span_id.end())
        << "orphan span " << span.name << " (parent " << span.ctx.parent_id
        << " missing)";
    EXPECT_EQ(parent->second->ctx.trace_id, span.ctx.trace_id)
        << "span " << span.name << " crosses traces";
    // Walk to the root (trees are shallow; bound the walk anyway).
    const trace::Span* node = &span;
    int hops = 0;
    while (node->ctx.parent_id != 0 && hops < 8) {
      node = by_span_id.at(node->ctx.parent_id);
      ++hops;
    }
    EXPECT_EQ(node->ctx.parent_id, 0u) << "unrooted span " << span.name;
    if (span.name == "serve.retry_backoff") {
      ++retry_spans;
      EXPECT_EQ(parent->second->name.rfind("serve.job", 0), 0u)
          << "retry span must hang off its job root";
    }
  }
  EXPECT_EQ(retry_spans, static_cast<int>(report.retries));

  // Exactly one root per trace, and one trace per submitted job.
  for (const auto& [trace_id, count] : roots_per_trace) {
    EXPECT_EQ(count, 1) << "trace " << trace_id << " has " << count
                        << " roots";
  }
  EXPECT_EQ(static_cast<std::int64_t>(roots_per_trace.size()),
            report.submitted);
}

TEST(TraceIntegrityTest, SameSeedRunsExportByteIdenticalTraces) {
  const auto render = []() {
    trace::Tracer tracer;
    run_traced(tracer);
    std::ostringstream os;
    trace::ChromeTraceExporter(tracer).write(os);
    return os.str();
  };
  const std::string first = render();
  EXPECT_EQ(first, render());
  // The causal chain of the acceptance demo is present: queue wait,
  // breaker trip, retry backoff, CPU fallback execution.
  EXPECT_NE(first.find("serve.queue"), std::string::npos);
  EXPECT_NE(first.find("serve.retry_backoff"), std::string::npos);
  EXPECT_NE(first.find("serve.breaker GPU open"), std::string::npos);
  EXPECT_NE(first.find("cpu.reduce"), std::string::npos);
  EXPECT_NE(first.find("\"ph\":\"s\""), std::string::npos);
}

TEST(TraceIntegrityTest, UntracedRunsLeaveJobContextsInvalid) {
  ServiceModel model;
  ReductionService service(make_policy("fifo", model), model);
  OpenLoopOptions load;
  load.jobs = 20;
  load.rate_hz = 100000.0;
  load.seed = 42;
  service.submit_all(open_loop_poisson(load));
  service.run();
  for (const auto& record : service.records()) {
    EXPECT_FALSE(record.job.ctx.valid());
  }
}

TEST(TraceIntegrityTest, BoundedTracerStillYieldsParentlessFreeSpansOnly) {
  // With a tiny ring the oldest spans (typically roots) are dropped; the
  // invariant that survives is that ids never collide and dropped counts
  // are reported, so downstream tools can flag truncated trees.
  trace::Tracer tracer(64);
  run_traced(tracer);
  EXPECT_GT(tracer.dropped_total(), 0);
  EXPECT_EQ(tracer.spans().size(), 64u);
  std::map<std::uint64_t, int> seen;
  for (const auto& span : tracer.spans()) {
    if (span.ctx.valid()) {
      EXPECT_EQ(++seen[span.ctx.span_id], 1);
    }
  }
}

}  // namespace
}  // namespace ghs::serve
