// Chaos tests: the serving layer against a fault::Injector. These pin the
// self-healing semantics — retries with backoff, circuit breaking, CPU
// fallback, deadline-aware shedding — plus the two compatibility
// invariants: an empty plan is byte-identical to no injector, and a chaos
// run replays byte-for-byte from (plan, seed).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "ghs/fault/injector.hpp"
#include "ghs/fault/plan.hpp"
#include "ghs/serve/loadgen.hpp"
#include "ghs/serve/policy.hpp"
#include "ghs/serve/service.hpp"

namespace ghs::serve {
namespace {

Job job(JobId id, workload::CaseId case_id, std::int64_t elements,
        SimTime arrival, SimTime deadline = 0, bool unified = false) {
  Job j;
  j.id = id;
  j.case_id = case_id;
  j.elements = elements;
  j.arrival = arrival;
  j.deadline = deadline;
  j.unified = unified;
  return j;
}

std::string report_json(const ServiceReport& report) {
  std::ostringstream out;
  report.write_json(out);
  return out.str();
}

TEST(ChaosServiceTest, OutageTripsBreakerAndCpuFallbackKeepsServing) {
  const auto plan =
      fault::parse_plan("device-down gpu from=100us until=300us\n");
  ServiceModel model;
  fault::Injector injector(plan, 7);
  ServiceOptions options;
  options.injector = &injector;
  ReductionService service(std::make_unique<FifoPolicy>(), model, options);
  for (JobId id = 0; id < 30; ++id) {
    service.submit(job(id, workload::CaseId::kC1, 1 << 16,
                       id * 20 * kMicrosecond));
  }
  service.run();
  const auto report = service.report();
  EXPECT_TRUE(report.fault_aware);
  EXPECT_GT(report.gpu_failures, 0);
  EXPECT_GT(report.breaker_opens, 0);
  // FIFO never places on the CPU by itself, so every CPU job below came
  // through degraded placement while the GPU breaker was open.
  EXPECT_GT(report.fallback_cpu_jobs, 0);
  EXPECT_EQ(report.cpu_jobs, report.fallback_cpu_jobs);
  // Zero lost jobs: chaos delays work, it never loses it.
  EXPECT_EQ(report.submitted, report.served + report.rejected + report.shed);
  EXPECT_EQ(report.served + report.shed, 30);
}

TEST(ChaosServiceTest, UnifiedJobsNeverFallBackToCpu) {
  const auto plan =
      fault::parse_plan("device-down gpu from=0us until=200us\n");
  ServiceModel model;
  fault::Injector injector(plan, 7);
  ServiceOptions options;
  options.injector = &injector;
  ReductionService service(std::make_unique<FifoPolicy>(), model, options);
  for (JobId id = 0; id < 8; ++id) {
    service.submit(job(id, workload::CaseId::kC1, 1 << 16,
                       id * 10 * kMicrosecond, /*deadline=*/0,
                       /*unified=*/id % 2 == 0));
  }
  service.run();
  const auto report = service.report();
  EXPECT_EQ(report.submitted, report.served + report.rejected + report.shed);
  for (const auto& record : service.records()) {
    if (record.job.unified) {
      EXPECT_EQ(record.placement, Placement::kGpu);
    }
  }
}

TEST(ChaosServiceTest, RetriedJobsServeOnceTheOutageLifts) {
  const auto plan =
      fault::parse_plan("device-down gpu from=0us until=200us\n");
  ServiceModel model;
  fault::Injector injector(plan, 7);
  ServiceOptions options;
  options.injector = &injector;
  options.use_cpu = false;  // no fallback: recovery must come from retries
  options.batching.enable = false;
  ReductionService service(std::make_unique<FifoPolicy>(), model, options);
  for (JobId id = 0; id < 4; ++id) {
    service.submit(job(id, workload::CaseId::kC1, 1 << 16,
                       id * 10 * kMicrosecond));
  }
  service.run();
  const auto report = service.report();
  // Three launches fail fast inside the outage (10us error latency each),
  // tripping the breaker; their jobs retry and serve after recovery.
  EXPECT_EQ(report.served, 4);
  EXPECT_EQ(report.shed, 0);
  EXPECT_EQ(report.gpu_failures, 3);
  EXPECT_EQ(report.retries, 3);
  EXPECT_EQ(report.breaker_opens, 1);
  EXPECT_EQ(service.breaker(Placement::kGpu).state(),
            fault::BreakerState::kClosed);
}

TEST(ChaosServiceTest, RetryBudgetExhaustionShedsInsteadOfLooping) {
  const auto plan = fault::parse_plan("kernel-fault gpu p=1\n");
  ServiceModel model;
  fault::Injector injector(plan, 7);
  ServiceOptions options;
  options.injector = &injector;
  options.use_cpu = false;
  options.batching.enable = false;
  ReductionService service(std::make_unique<FifoPolicy>(), model, options);
  for (JobId id = 0; id < 5; ++id) {
    service.submit(job(id, workload::CaseId::kC1, 1 << 16, 0));
  }
  service.run();
  const auto report = service.report();
  EXPECT_EQ(report.served, 0);
  EXPECT_EQ(report.shed, 5);
  EXPECT_EQ(service.shed_jobs().size(), 5u);
  // max_attempts = 4: each job burns 3 retries before it is shed.
  EXPECT_EQ(report.retries, 15);
  EXPECT_EQ(report.submitted, report.served + report.rejected + report.shed);
}

TEST(ChaosServiceTest, DeadlineUnreachableJobsAreShedWithoutRetrying) {
  const auto plan = fault::parse_plan("kernel-fault gpu p=1\n");
  ServiceModel model;
  fault::Injector injector(plan, 7);
  ServiceOptions options;
  options.injector = &injector;
  options.use_cpu = false;
  options.batching.enable = false;
  ReductionService service(std::make_unique<FifoPolicy>(), model, options);
  // The retry backoff (>= 50us) alone overruns this deadline, so the first
  // failure sheds the job instead of scheduling a doomed retry.
  service.submit(job(0, workload::CaseId::kC1, 1 << 16, 0,
                     /*deadline=*/30 * kMicrosecond));
  service.run();
  const auto report = service.report();
  EXPECT_EQ(report.served, 0);
  EXPECT_EQ(report.shed, 1);
  EXPECT_EQ(report.retries, 0);
}

TEST(ChaosServiceTest, EmptyPlanIsByteIdenticalToNoInjector) {
  const auto run = [](bool with_empty_injector) {
    ServiceModel model;
    fault::Injector injector(fault::FaultPlan{}, 7);
    ServiceOptions options;
    if (with_empty_injector) options.injector = &injector;
    ReductionService service(std::make_unique<FifoPolicy>(), model, options);
    for (JobId id = 0; id < 12; ++id) {
      service.submit(job(id, workload::CaseId::kC2, 1 << 17,
                         id * 5 * kMicrosecond));
    }
    service.run();
    return report_json(service.report());
  };
  const auto bare = run(false);
  EXPECT_EQ(bare, run(true));
  // The fault keys must be absent, not zero-valued.
  EXPECT_EQ(bare.find("\"retries\""), std::string::npos);
  EXPECT_EQ(bare.find("\"breaker_opens\""), std::string::npos);
}

TEST(ChaosServiceTest, SamePlanAndSeedReplaysByteForByte) {
  const auto plan = fault::parse_plan(
      "kernel-fault gpu p=0.2\n"
      "device-down gpu from=200us until=500us\n"
      "bandwidth cpu scale=0.5 from=100us until=400us\n");
  const auto run = [&plan](std::uint64_t fault_seed) {
    ServiceModel model;
    fault::Injector injector(plan, fault_seed);
    ServiceOptions options;
    options.injector = &injector;
    ReductionService service(std::make_unique<FifoPolicy>(), model, options);
    OpenLoopOptions load;
    load.jobs = 60;
    load.rate_hz = 120000.0;
    load.seed = 42;
    service.submit_all(open_loop_poisson(load));
    service.run();
    return report_json(service.report());
  };
  const auto a = run(7);
  EXPECT_EQ(a, run(7));
  EXPECT_NE(a.find("\"breaker_opens\""), std::string::npos);
}

}  // namespace
}  // namespace ghs::serve
