// End-to-end equivalence of the event-core configuration knobs: the event
// queue implementation (heap vs calendar) and the trace head sampler are
// pure performance choices, so the same seed must produce byte-identical
// reports, telemetry snapshots, and (at rate 1.0) trace files whichever
// way they are set. Also pins the chained arrival pump's contract: the
// same dispatch order as per-job submit(), with an event queue that stays
// shallow no matter how large the batch is.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "ghs/fault/injector.hpp"
#include "ghs/fault/plan.hpp"
#include "ghs/serve/loadgen.hpp"
#include "ghs/serve/policy.hpp"
#include "ghs/serve/service.hpp"
#include "ghs/sim/event_queue.hpp"
#include "ghs/telemetry/exporters.hpp"
#include "ghs/telemetry/registry.hpp"
#include "ghs/trace/tracer.hpp"

namespace ghs::serve {
namespace {

OpenLoopOptions small_workload(std::uint64_t seed) {
  OpenLoopOptions load;
  load.jobs = 120;
  load.rate_hz = 300000.0;  // past capacity: queues, rejections, batching
  load.seed = seed;
  load.shape.min_log2_elements = 14;
  load.shape.max_log2_elements = 18;
  return load;
}

struct RunOutput {
  std::string report;
  std::string metrics;
  std::size_t peak_queue = 0;
};

/// One full service run: report JSON plus the telemetry JSON snapshot.
RunOutput run_once(sim::QueueKind queue, std::uint64_t seed,
                   bool chaos = false) {
  telemetry::Registry registry;
  const auto plan = fault::parse_plan(
      "kernel-fault gpu p=0.05\n"
      "device-down gpu from=400us until=700us\n");
  fault::Injector injector(plan, 7, {&registry, nullptr});
  ServiceModel model;
  ServiceOptions options;
  options.queue_depth = 16;
  options.sim.queue = queue;
  options.telemetry.metrics = &registry;
  if (chaos) options.injector = &injector;
  ReductionService service(make_policy("fifo", model), model, options);
  service.submit_all(open_loop_poisson(small_workload(seed)));
  service.run();
  RunOutput out;
  std::ostringstream report;
  service.report().write_json(report);
  out.report = report.str();
  std::ostringstream metrics;
  telemetry::write_json_snapshot(metrics, registry);
  out.metrics = metrics.str();
  out.peak_queue = service.sim().peak_queue_size();
  return out;
}

TEST(QueueEquivalenceTest, HeapAndCalendarProduceIdenticalRuns) {
  for (const std::uint64_t seed : {42u, 7u, 1234u}) {
    const RunOutput heap = run_once(sim::QueueKind::kHeap, seed);
    const RunOutput calendar = run_once(sim::QueueKind::kCalendar, seed);
    EXPECT_EQ(heap.report, calendar.report) << "seed " << seed;
    EXPECT_EQ(heap.metrics, calendar.metrics) << "seed " << seed;
  }
}

TEST(QueueEquivalenceTest, EquivalenceHoldsUnderFaultInjection) {
  const RunOutput heap = run_once(sim::QueueKind::kHeap, 42, /*chaos=*/true);
  const RunOutput calendar =
      run_once(sim::QueueKind::kCalendar, 42, /*chaos=*/true);
  EXPECT_EQ(heap.report, calendar.report);
  EXPECT_EQ(heap.metrics, calendar.metrics);
  // The chaos plan actually fired (otherwise this test proves nothing):
  // the fault section is present and records at least one GPU failure.
  EXPECT_NE(heap.report.find("\"gpu_failures\":"), std::string::npos);
  EXPECT_EQ(heap.report.find("\"gpu_failures\":0"), std::string::npos);
}

TEST(QueueEquivalenceTest, ChainedPumpKeepsTheQueueShallow) {
  // 10^3 jobs submitted as one sorted batch: the pump injects arrivals one
  // at a time, so the queue depth tracks in-flight service work (a handful
  // of events), not the batch size.
  OpenLoopOptions load = small_workload(42);
  load.jobs = 1000;
  ServiceModel model;
  ServiceOptions options;
  options.queue_depth = 16;
  ReductionService service(make_policy("fifo", model), model, options);
  service.submit_all(open_loop_poisson(load));
  service.run();
  EXPECT_EQ(service.records().size() + service.rejected_jobs().size(), 1000u);
  EXPECT_LE(service.sim().peak_queue_size(), 8u);
}

TEST(QueueEquivalenceTest, BatchAndPerJobSubmissionMatch) {
  const auto jobs = open_loop_poisson(small_workload(42));
  std::string reports[2];
  for (int batched = 0; batched < 2; ++batched) {
    ServiceModel model;
    ServiceOptions options;
    options.queue_depth = 16;
    ReductionService service(make_policy("fifo", model), model, options);
    if (batched == 1) {
      service.submit_all(jobs);
    } else {
      for (const auto& job : jobs) service.submit(job);
    }
    service.run();
    std::ostringstream os;
    service.report().write_json(os);
    reports[batched] = os.str();
  }
  EXPECT_EQ(reports[0], reports[1]);
}

TEST(QueueEquivalenceTest, UnsortedBatchFallsBackAndStillServes) {
  auto jobs = open_loop_poisson(small_workload(42));
  std::reverse(jobs.begin(), jobs.end());  // violates the sorted fast path
  ServiceModel model;
  ServiceOptions options;
  options.queue_depth = 16;
  ReductionService service(make_policy("fifo", model), model, options);
  service.submit_all(jobs);
  service.run();
  EXPECT_EQ(service.records().size() + service.rejected_jobs().size(),
            jobs.size());
}

/// Report + trace JSON for one traced run at the given sampling rate
/// (rate >= 1 leaves the sampler uninstalled).
std::pair<std::string, std::string> traced_run(double rate) {
  trace::Tracer tracer;
  tracer.set_sampler(trace::SamplerOptions{rate, 42});
  ServiceModel model;
  ServiceOptions options;
  options.queue_depth = 16;
  ReductionService service(make_policy("fifo", model), model, options,
                           &tracer);
  service.submit_all(open_loop_poisson(small_workload(42)));
  service.run();
  std::ostringstream report;
  service.report().write_json(report);
  std::ostringstream trace_json;
  tracer.write_chrome_json(trace_json);
  return {report.str(), trace_json.str()};
}

TEST(SamplerEquivalenceTest, RateOneIsByteIdenticalToNoSampler) {
  trace::Tracer plain;  // sampler never installed
  ServiceModel model;
  ServiceOptions options;
  options.queue_depth = 16;
  ReductionService service(make_policy("fifo", model), model, options,
                           &plain);
  service.submit_all(open_loop_poisson(small_workload(42)));
  service.run();
  std::ostringstream plain_trace;
  plain.write_chrome_json(plain_trace);

  const auto [report, sampled_trace] = traced_run(1.0);
  EXPECT_EQ(sampled_trace, plain_trace.str());
}

TEST(SamplerEquivalenceTest, SamplingNeverChangesTheReport) {
  const auto full = traced_run(1.0);
  const auto half = traced_run(0.5);
  EXPECT_EQ(full.first, half.first);      // report is sampling-invariant
  EXPECT_NE(full.second, half.second);    // but spans were actually dropped
  EXPECT_LT(half.second.size(), full.second.size());
}

}  // namespace
}  // namespace ghs::serve
