#include "ghs/serve/policy.hpp"

#include <gtest/gtest.h>

#include "ghs/util/error.hpp"

namespace ghs::serve {
namespace {

Job job(JobId id, workload::CaseId case_id, std::int64_t elements) {
  Job j;
  j.id = id;
  j.case_id = case_id;
  j.elements = elements;
  return j;
}

AdmissionQueue small_mixed_queue() {
  AdmissionQueue queue(8);
  queue.push(job(0, workload::CaseId::kC1, 1 << 18));
  queue.push(job(1, workload::CaseId::kC3, 1 << 14));
  queue.push(job(2, workload::CaseId::kC4, 1 << 16));
  return queue;
}

TEST(FifoPolicyTest, PicksFrontAndNeverUsesCpu) {
  FifoPolicy policy;
  auto queue = small_mixed_queue();
  EXPECT_EQ(policy.select(queue, Placement::kGpu, 0), std::size_t{0});
  EXPECT_EQ(policy.select(queue, Placement::kCpu, 0), std::nullopt);
  AdmissionQueue empty(4);
  EXPECT_EQ(policy.select(empty, Placement::kGpu, 0), std::nullopt);
}

TEST(FifoPolicyTest, GeometryIsPaperBest) {
  FifoPolicy policy;
  const auto c2 = policy.geometry(job(0, workload::CaseId::kC2, 1 << 18));
  EXPECT_EQ(c2.teams, 65536);
  EXPECT_EQ(c2.v, 32);
  const auto c1 = policy.geometry(job(1, workload::CaseId::kC1, 1 << 18));
  EXPECT_EQ(c1.v, 4);
}

TEST(SjfPolicyTest, PicksSmallestBytesNotSmallestElements) {
  ShortestJobFirstPolicy policy;
  AdmissionQueue queue(8);
  // C2 is 1 byte/element, C4 is 8: 2^16 elements of C4 (512 KiB) outweigh
  // 2^18 elements of C2 (256 KiB).
  queue.push(job(0, workload::CaseId::kC4, 1 << 16));
  queue.push(job(1, workload::CaseId::kC2, 1 << 18));
  EXPECT_EQ(policy.select(queue, Placement::kGpu, 0), std::size_t{1});
  EXPECT_EQ(policy.select(queue, Placement::kCpu, 0), std::nullopt);
}

TEST(BandwidthAwarePolicyTest, TunerCacheHitsOnRepeatedShapes) {
  ServiceModel model;
  BandwidthAwarePolicy::Options options;
  options.max_probes = 8;
  BandwidthAwarePolicy policy(model, options);
  const auto first = policy.geometry(job(0, workload::CaseId::kC1, 1 << 18));
  EXPECT_EQ(policy.tuner_cache().misses, 1);
  EXPECT_EQ(policy.tuner_cache().hits, 0);
  const auto second = policy.geometry(job(1, workload::CaseId::kC1, 1 << 18));
  EXPECT_EQ(policy.tuner_cache().misses, 1);
  EXPECT_EQ(policy.tuner_cache().hits, 1);
  EXPECT_EQ(first.teams, second.teams);
  EXPECT_EQ(first.v, second.v);
  // A different shape is a fresh hill climb.
  policy.geometry(job(2, workload::CaseId::kC1, 1 << 19));
  EXPECT_EQ(policy.tuner_cache().misses, 2);
}

TEST(BandwidthAwarePolicyTest, PlacesSmallJobsOnCpuAndLargeOnGpu) {
  ServiceModel model;
  BandwidthAwarePolicy::Options options;
  options.max_probes = 8;
  BandwidthAwarePolicy policy(model, options);
  EXPECT_TRUE(policy.cpu_eligible(job(0, workload::CaseId::kC1, 1 << 14)));
  // Far beyond max_cpu_bytes (64 MiB): 2^26 float64 elements = 512 MiB.
  EXPECT_FALSE(policy.cpu_eligible(job(1, workload::CaseId::kC4, 1 << 26)));
}

TEST(BandwidthAwarePolicyTest, CpuSelectSkipsIneligibleJobs) {
  ServiceModel model;
  BandwidthAwarePolicy::Options options;
  options.max_probes = 8;
  options.max_cpu_bytes = 1 * kMiB;
  BandwidthAwarePolicy policy(model, options);
  AdmissionQueue queue(8);
  queue.push(job(0, workload::CaseId::kC4, 1 << 20));  // 8 MiB: GPU only
  queue.push(job(1, workload::CaseId::kC1, 1 << 14));  // 64 KiB: CPU ok
  EXPECT_EQ(policy.select(queue, Placement::kGpu, 0), std::size_t{0});
  EXPECT_EQ(policy.select(queue, Placement::kCpu, 0), std::size_t{1});
}

TEST(PolicyFactoryTest, MakesAllThreeAndRejectsUnknown) {
  ServiceModel model;
  EXPECT_STREQ(make_policy("fifo", model)->name(), "fifo");
  EXPECT_STREQ(make_policy("sjf", model)->name(), "sjf");
  EXPECT_STREQ(make_policy("bandwidth", model)->name(), "bandwidth");
  EXPECT_THROW(make_policy("round-robin", model), Error);
}

}  // namespace
}  // namespace ghs::serve
