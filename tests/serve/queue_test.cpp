#include "ghs/serve/queue.hpp"

#include <gtest/gtest.h>

#include "ghs/util/error.hpp"

namespace ghs::serve {
namespace {

Job job(JobId id, std::int64_t elements = 1024) {
  Job j;
  j.id = id;
  j.elements = elements;
  return j;
}

TEST(AdmissionQueueTest, AdmitsUpToDepthThenRejects) {
  AdmissionQueue queue(3);
  EXPECT_TRUE(queue.push(job(0)));
  EXPECT_TRUE(queue.push(job(1)));
  EXPECT_TRUE(queue.push(job(2)));
  EXPECT_FALSE(queue.push(job(3)));
  EXPECT_FALSE(queue.push(job(4)));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.accepted(), 3);
  EXPECT_EQ(queue.rejected(), 2);
}

TEST(AdmissionQueueTest, DrainingReopensAdmission) {
  AdmissionQueue queue(2);
  EXPECT_TRUE(queue.push(job(0)));
  EXPECT_TRUE(queue.push(job(1)));
  EXPECT_FALSE(queue.push(job(2)));
  queue.take(0);
  EXPECT_TRUE(queue.push(job(3)));
  EXPECT_EQ(queue.rejected(), 1);
}

TEST(AdmissionQueueTest, TakePreservesArrivalOrderOfOthers) {
  AdmissionQueue queue(8);
  for (JobId id = 0; id < 5; ++id) queue.push(job(id));
  EXPECT_EQ(queue.take(2).id, 2);
  EXPECT_EQ(queue.at(0).id, 0);
  EXPECT_EQ(queue.at(1).id, 1);
  EXPECT_EQ(queue.at(2).id, 3);
  EXPECT_EQ(queue.at(3).id, 4);
}

TEST(AdmissionQueueTest, HighWatermarkTracksDeepestFill) {
  AdmissionQueue queue(8);
  queue.push(job(0));
  queue.push(job(1));
  queue.take(0);
  queue.take(0);
  queue.push(job(2));
  EXPECT_EQ(queue.high_watermark(), 2u);
}

TEST(AdmissionQueueTest, GuardsBadAccess) {
  AdmissionQueue queue(2);
  EXPECT_THROW(queue.at(0), Error);
  EXPECT_THROW(queue.take(0), Error);
  EXPECT_THROW(AdmissionQueue(0), Error);
  EXPECT_THROW(queue.push(job(0, 0)), Error);
}

}  // namespace
}  // namespace ghs::serve
