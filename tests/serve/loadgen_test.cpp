// Load-generator unit tests plus the end-to-end determinism check: the
// whole served-latency pipeline (Poisson workload -> admission ->
// scheduling -> batching -> report) must produce byte-identical JSON for
// the same seed.
#include "ghs/serve/loadgen.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "ghs/serve/policy.hpp"

namespace ghs::serve {
namespace {

TEST(OpenLoopTest, ArrivalsAreMonotoneAndShaped) {
  OpenLoopOptions options;
  options.jobs = 100;
  options.rate_hz = 50000.0;
  options.shape.min_log2_elements = 14;
  options.shape.max_log2_elements = 18;
  options.shape.deadline = kMillisecond;
  const auto jobs = open_loop_poisson(options);
  ASSERT_EQ(jobs.size(), 100u);
  SimTime last = -1;
  std::set<workload::CaseId> cases;
  for (const auto& job : jobs) {
    EXPECT_GT(job.arrival, last);
    last = job.arrival;
    EXPECT_GE(job.elements, std::int64_t{1} << 14);
    EXPECT_LE(job.elements, std::int64_t{1} << 18);
    // Power-of-two grid.
    EXPECT_EQ(job.elements & (job.elements - 1), 0);
    EXPECT_EQ(job.deadline, job.arrival + kMillisecond);
    cases.insert(job.case_id);
  }
  // 100 draws from a uniform 4-way mix hit every case.
  EXPECT_EQ(cases.size(), 4u);
}

TEST(OpenLoopTest, SeedIsTheWorkload) {
  OpenLoopOptions options;
  options.jobs = 50;
  const auto a = open_loop_poisson(options);
  const auto b = open_loop_poisson(options);
  options.seed = 43;
  const auto c = open_loop_poisson(options);
  ASSERT_EQ(a.size(), b.size());
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].elements, b[i].elements);
    EXPECT_EQ(a[i].case_id, b[i].case_id);
    differs |= a[i].arrival != c[i].arrival;
  }
  EXPECT_TRUE(differs);
}

TEST(OpenLoopTest, MixWeightsAreRespected) {
  OpenLoopOptions options;
  options.jobs = 60;
  options.shape.mix = {{workload::CaseId::kC2, 1.0}};
  for (const auto& job : open_loop_poisson(options)) {
    EXPECT_EQ(job.case_id, workload::CaseId::kC2);
  }
}

// The acceptance pipeline at test scale: run the same open-loop workload
// through a policy twice and require byte-identical JSON reports.
std::string serve_json(const std::string& policy, std::uint64_t seed) {
  OpenLoopOptions load;
  load.jobs = 60;
  load.rate_hz = 200000.0;
  load.seed = seed;
  load.shape.min_log2_elements = 14;
  load.shape.max_log2_elements = 18;
  ServiceModel model;
  ServiceOptions options;
  options.queue_depth = 16;
  ReductionService service(make_policy(policy, model), model, options);
  service.submit_all(open_loop_poisson(load));
  service.run();
  std::ostringstream json;
  service.report().write_json(json);
  return json.str();
}

TEST(ServePipelineTest, SameSeedSameJsonReport) {
  EXPECT_EQ(serve_json("fifo", 42), serve_json("fifo", 42));
  EXPECT_EQ(serve_json("bandwidth", 42), serve_json("bandwidth", 42));
  EXPECT_NE(serve_json("fifo", 42), serve_json("fifo", 99));
}

TEST(ServePipelineTest, ReportJsonCarriesTheContract) {
  const auto json = serve_json("bandwidth", 42);
  for (const char* key :
       {"\"policy\":\"bandwidth\"", "\"p50_ms\":", "\"p95_ms\":",
        "\"p99_ms\":", "\"rejected\":", "\"throughput_gbps\":",
        "\"tuner_misses\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(ServePipelineTest, BandwidthBeatsFifoOnSaturatedMixedLoad) {
  OpenLoopOptions load;
  load.jobs = 80;
  load.rate_hz = 400000.0;  // well past single-GPU capacity
  load.shape.min_log2_elements = 14;
  load.shape.max_log2_elements = 19;
  const auto workload = open_loop_poisson(load);
  ServiceModel model;
  double gbps[2] = {0.0, 0.0};
  int i = 0;
  for (const std::string policy : {"fifo", "bandwidth"}) {
    ServiceOptions options;
    options.queue_depth = 16;
    ReductionService service(make_policy(policy, model), model, options);
    service.submit_all(workload);
    service.run();
    gbps[i++] = service.report().throughput_gbps;
  }
  EXPECT_GT(gbps[1], gbps[0]);
}

}  // namespace
}  // namespace ghs::serve
