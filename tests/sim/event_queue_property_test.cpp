// Property test: HeapEventQueue and CalendarEventQueue pop randomized
// workloads in identical order. The heap is the reference ordering; the
// calendar queue earns its keep only if it is indistinguishable from it.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "ghs/sim/event_queue.hpp"
#include "ghs/util/rng.hpp"

namespace ghs::sim {
namespace {

struct OpTrace {
  std::vector<std::uint64_t> popped;  // payload ids in pop order
  std::vector<SimTime> times;         // pop timestamps
};

// Runs an identical randomized push/pop schedule against a queue and
// records what comes out. `tie_bias` pushes many events at few distinct
// times; `outlier_every` sprinkles far-future events to stress the
// calendar queue's direct-search fallback.
OpTrace run_schedule(EventQueue& q, std::uint64_t seed, std::size_t ops,
                     std::uint64_t tie_bias, std::size_t outlier_every) {
  Rng rng(seed);
  OpTrace trace;
  SimTime floor = 0;  // queues require push times >= last popped time
  std::uint64_t next_id = 0;
  std::vector<std::uint64_t>* sink = &trace.popped;
  for (std::size_t op = 0; op < ops; ++op) {
    const bool do_push = q.empty() || rng.next_below(100) < 60;
    if (do_push) {
      SimTime t;
      if (outlier_every != 0 && op % outlier_every == outlier_every - 1) {
        t = floor + static_cast<SimTime>(rng.next_below(1u << 20)) +
            (SimTime{1} << 44);  // far-future outlier
      } else if (tie_bias != 0 && rng.next_below(100) < tie_bias) {
        t = floor;  // heavy same-timestamp ties
      } else {
        t = floor + static_cast<SimTime>(rng.next_below(5000));
      }
      const std::uint64_t id = next_id++;
      q.push(t, [id, sink] { sink->push_back(id); });
    } else {
      trace.times.push_back(q.next_time());
      floor = trace.times.back();
      q.pop()();
    }
  }
  while (!q.empty()) {
    trace.times.push_back(q.next_time());
    q.pop()();
  }
  return trace;
}

class QueueEquivalenceProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueueEquivalenceProperty, HeapAndCalendarPopIdentically) {
  const std::uint64_t seed = GetParam();
  HeapEventQueue heap;
  CalendarEventQueue calendar;
  const OpTrace a = run_schedule(heap, seed, 2000, /*tie_bias=*/30,
                                 /*outlier_every=*/97);
  const OpTrace b = run_schedule(calendar, seed, 2000, /*tie_bias=*/30,
                                 /*outlier_every=*/97);
  EXPECT_EQ(a.popped, b.popped);
  EXPECT_EQ(a.times, b.times);
}

TEST_P(QueueEquivalenceProperty, HeavyTiesPopIdentically) {
  const std::uint64_t seed = GetParam() * 7919 + 13;
  HeapEventQueue heap;
  CalendarEventQueue calendar;
  // 85% of pushes collide on the current floor timestamp: the regime the
  // serve layer produces when a batch completes and retries fan out.
  const OpTrace a = run_schedule(heap, seed, 3000, /*tie_bias=*/85,
                                 /*outlier_every=*/0);
  const OpTrace b = run_schedule(calendar, seed, 3000, /*tie_bias=*/85,
                                 /*outlier_every=*/0);
  EXPECT_EQ(a.popped, b.popped);
  EXPECT_EQ(a.times, b.times);
}

TEST_P(QueueEquivalenceProperty, PopReadyBatchesMatchSingleStepPops) {
  const std::uint64_t seed = GetParam() * 104729 + 7;
  Rng rng(seed);
  // One shared workload, consumed via pop() on the heap and via
  // pop_ready() on the calendar queue.
  std::vector<SimTime> times;
  for (int i = 0; i < 1500; ++i) {
    times.push_back(static_cast<SimTime>(rng.next_below(200)) * 100);
  }
  HeapEventQueue heap;
  CalendarEventQueue calendar;
  std::vector<std::uint64_t> by_pop;
  std::vector<std::uint64_t> by_batch;
  for (std::size_t i = 0; i < times.size(); ++i) {
    heap.push(times[i], [i, &by_pop] { by_pop.push_back(i); });
    calendar.push(times[i], [i, &by_batch] { by_batch.push_back(i); });
  }
  while (!heap.empty()) heap.pop()();
  std::vector<Event> batch;
  while (!calendar.empty()) {
    batch.clear();
    calendar.pop_ready(batch);
    for (Event& fn : batch) fn();
  }
  EXPECT_EQ(by_pop, by_batch);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueEquivalenceProperty,
                         ::testing::Values(1u, 2u, 3u, 17u, 42u, 1234u,
                                           987654321u));

}  // namespace
}  // namespace ghs::sim
