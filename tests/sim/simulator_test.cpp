#include "ghs/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ghs/util/error.hpp"

namespace ghs::sim {
namespace {

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, RunAdvancesClockToEventTimes) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.schedule_at(100, [&] { seen.push_back(sim.now()); });
  sim.schedule_at(50, [&] { seen.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<SimTime>{50, 100}));
  EXPECT_EQ(sim.now(), 100);
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.schedule_at(10, [&] {
    sim.schedule_after(5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 15);
}

TEST(SimulatorTest, CannotScheduleIntoThePast) {
  Simulator sim;
  sim.schedule_at(10, [&] {
    EXPECT_THROW(sim.schedule_at(5, [] {}), Error);
  });
  sim.run();
}

TEST(SimulatorTest, NegativeDelayRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_after(-1, [] {}), Error);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1, [&] { ++count; });
  sim.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(10, [&] { ++count; });
  sim.schedule_at(20, [&] { ++count; });
  EXPECT_FALSE(sim.run_until(15));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), 15);
  EXPECT_TRUE(sim.run_until(100));
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, EventsCanCascade) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.schedule_after(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 9);
}

}  // namespace
}  // namespace ghs::sim
