#include "ghs/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "ghs/util/error.hpp"

namespace ghs::sim {
namespace {

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, RunAdvancesClockToEventTimes) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.schedule_at(100, [&] { seen.push_back(sim.now()); });
  sim.schedule_at(50, [&] { seen.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<SimTime>{50, 100}));
  EXPECT_EQ(sim.now(), 100);
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.schedule_at(10, [&] {
    sim.schedule_after(5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 15);
}

TEST(SimulatorTest, CannotScheduleIntoThePast) {
  Simulator sim;
  sim.schedule_at(10, [&] {
    EXPECT_THROW(sim.schedule_at(5, [] {}), Error);
  });
  sim.run();
}

TEST(SimulatorTest, NegativeDelayRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_after(-1, [] {}), Error);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1, [&] { ++count; });
  sim.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(10, [&] { ++count; });
  sim.schedule_at(20, [&] { ++count; });
  EXPECT_FALSE(sim.run_until(15));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), 15);
  EXPECT_TRUE(sim.run_until(100));
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, EventsCanCascade) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.schedule_after(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 9);
}

TEST(SimulatorTest, DrainBatchDispatchesAllSameTimeEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(10, [&] { order.push_back(2); });
  sim.schedule_at(20, [&] { order.push_back(3); });
  EXPECT_EQ(sim.drain_batch(), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), 10);
  EXPECT_EQ(sim.drain_batch(), 1u);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.drain_batch(), 0u);
}

TEST(SimulatorTest, DrainBatchPicksUpSameTimeEventsScheduledByHandlers) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5, [&] {
    order.push_back(1);
    // Scheduled at the current time from inside the batch: runs in the
    // same drain, after already-queued time-5 events.
    sim.schedule_at(5, [&] { order.push_back(3); });
  });
  sim.schedule_at(5, [&] { order.push_back(2); });
  EXPECT_EQ(sim.drain_batch(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulatorTest, PeakQueueSizeTracksHighWaterMark) {
  Simulator sim;
  EXPECT_EQ(sim.peak_queue_size(), 0u);
  sim.schedule_at(1, [] {});
  sim.schedule_at(2, [] {});
  sim.schedule_at(3, [] {});
  EXPECT_EQ(sim.peak_queue_size(), 3u);
  sim.run();
  EXPECT_EQ(sim.peak_queue_size(), 3u);
}

TEST(SimulatorTest, QueueKindFollowsConfig) {
  Simulator heap_sim;
  EXPECT_EQ(heap_sim.queue_kind(), QueueKind::kHeap);
  Simulator cal_sim(SimConfig{QueueKind::kCalendar});
  EXPECT_EQ(cal_sim.queue_kind(), QueueKind::kCalendar);
}

TEST(SimulatorTest, CalendarBackedRunMatchesHeapBackedRun) {
  std::vector<std::vector<SimTime>> seen(2);
  for (int which = 0; which < 2; ++which) {
    SimConfig config;
    config.queue = which == 0 ? QueueKind::kHeap : QueueKind::kCalendar;
    Simulator sim(config);
    std::vector<SimTime>& out = seen[static_cast<std::size_t>(which)];
    for (SimTime t : {30, 10, 10, 50, 20}) {
      sim.schedule_at(t, [&out, &sim] { out.push_back(sim.now()); });
    }
    sim.run();
    EXPECT_EQ(sim.events_processed(), 5u);
  }
  EXPECT_EQ(seen[0], seen[1]);
  EXPECT_EQ(seen[0], (std::vector<SimTime>{10, 10, 20, 30, 50}));
}

}  // namespace
}  // namespace ghs::sim
