#include "ghs/sim/fluid.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ghs/util/error.hpp"

namespace ghs::sim {
namespace {

constexpr double kGB = 1e9;

class FluidTest : public ::testing::Test {
 protected:
  Simulator sim;
  FluidNetwork net{sim};
};

TEST_F(FluidTest, SingleFlowRunsAtCapacity) {
  const auto r = net.add_resource("r", Bandwidth::from_gbps(100.0));
  SimTime done = -1;
  FlowSpec spec;
  spec.bytes = 100 * kGB;  // 1 second at 100 GB/s
  spec.resources = {r};
  spec.on_complete = [&] { done = sim.now(); };
  const auto id = net.start_flow(std::move(spec));
  EXPECT_DOUBLE_EQ(net.current_rate(id), 100.0 * kGB);
  sim.run();
  EXPECT_NEAR(static_cast<double>(done), 1e12, 1e6);
  EXPECT_FALSE(net.active(id));
}

TEST_F(FluidTest, RateCapBinds) {
  const auto r = net.add_resource("r", Bandwidth::from_gbps(100.0));
  FlowSpec spec;
  spec.bytes = 10 * kGB;
  spec.rate_cap = 10.0 * kGB;
  spec.resources = {r};
  const auto id = net.start_flow(std::move(spec));
  EXPECT_DOUBLE_EQ(net.current_rate(id), 10.0 * kGB);
}

TEST_F(FluidTest, TwoFlowsShareFairly) {
  const auto r = net.add_resource("r", Bandwidth::from_gbps(100.0));
  FlowSpec a;
  a.bytes = kGB;
  a.resources = {r};
  FlowSpec b = a;
  const auto ia = net.start_flow(std::move(a));
  const auto ib = net.start_flow(std::move(b));
  EXPECT_DOUBLE_EQ(net.current_rate(ia), 50.0 * kGB);
  EXPECT_DOUBLE_EQ(net.current_rate(ib), 50.0 * kGB);
}

TEST_F(FluidTest, CappedFlowLeavesHeadroomToOthers) {
  const auto r = net.add_resource("r", Bandwidth::from_gbps(100.0));
  FlowSpec small;
  small.bytes = kGB;
  small.rate_cap = 10.0 * kGB;
  small.resources = {r};
  FlowSpec big;
  big.bytes = kGB;
  big.resources = {r};
  const auto is = net.start_flow(std::move(small));
  const auto ib = net.start_flow(std::move(big));
  // Max-min: capped flow gets its 10, the other gets the residual 90.
  EXPECT_DOUBLE_EQ(net.current_rate(is), 10.0 * kGB);
  EXPECT_DOUBLE_EQ(net.current_rate(ib), 90.0 * kGB);
}

TEST_F(FluidTest, MultiResourceFlowLimitedByTightest) {
  const auto wide = net.add_resource("wide", Bandwidth::from_gbps(1000.0));
  const auto narrow = net.add_resource("narrow", Bandwidth::from_gbps(50.0));
  FlowSpec spec;
  spec.bytes = kGB;
  spec.resources = {wide, narrow};
  const auto id = net.start_flow(std::move(spec));
  EXPECT_DOUBLE_EQ(net.current_rate(id), 50.0 * kGB);
}

TEST_F(FluidTest, CrossTrafficOnSharedLink) {
  // Mirrors GPU-remote + CPU-local both draining LPDDR in the co-run cold
  // phase: one flow crosses lpddr+c2c, another lpddr only.
  const auto lpddr = net.add_resource("lpddr", Bandwidth::from_gbps(500.0));
  const auto c2c = net.add_resource("c2c", Bandwidth::from_gbps(450.0));
  FlowSpec gpu;
  gpu.bytes = kGB;
  gpu.resources = {lpddr, c2c};
  FlowSpec cpu;
  cpu.bytes = kGB;
  cpu.resources = {lpddr};
  const auto ig = net.start_flow(std::move(gpu));
  const auto ic = net.start_flow(std::move(cpu));
  // LPDDR is the binding bottleneck; fair share 250/250.
  EXPECT_DOUBLE_EQ(net.current_rate(ig), 250.0 * kGB);
  EXPECT_DOUBLE_EQ(net.current_rate(ic), 250.0 * kGB);
}

TEST_F(FluidTest, RatesReadjustOnCompletion) {
  const auto r = net.add_resource("r", Bandwidth::from_gbps(100.0));
  FlowSpec shorter;
  shorter.bytes = 50 * kGB;  // drains after 1 s of fair sharing
  shorter.resources = {r};
  FlowSpec longer;
  longer.bytes = 100 * kGB;
  longer.resources = {r};
  SimTime long_done = -1;
  longer.on_complete = [&] { long_done = sim.now(); };
  net.start_flow(std::move(shorter));
  const auto il = net.start_flow(std::move(longer));
  sim.run();
  // Longer flow: 50 GB at 50 GB/s (1 s) + 50 GB at 100 GB/s (0.5 s).
  EXPECT_NEAR(static_cast<double>(long_done), 1.5e12, 1e7);
  EXPECT_FALSE(net.active(il));
}

TEST_F(FluidTest, CompletionCallbackCanStartNewFlow) {
  const auto r = net.add_resource("r", Bandwidth::from_gbps(1.0));
  std::vector<SimTime> completions;
  FlowSpec second;
  second.bytes = 1e9;
  second.resources = {r};
  second.on_complete = [&] { completions.push_back(sim.now()); };
  FlowSpec first;
  first.bytes = 1e9;
  first.resources = {r};
  first.on_complete = [&, second = std::move(second)]() mutable {
    completions.push_back(sim.now());
    net.start_flow(std::move(second));
  };
  net.start_flow(std::move(first));
  sim.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_NEAR(static_cast<double>(completions[0]), 1e12, 1e6);
  EXPECT_NEAR(static_cast<double>(completions[1]), 2e12, 1e6);
}

TEST_F(FluidTest, BytesConservationInStats) {
  const auto r = net.add_resource("r", Bandwidth::from_gbps(10.0));
  for (int i = 0; i < 5; ++i) {
    FlowSpec spec;
    spec.bytes = 2 * kGB;
    spec.resources = {r};
    net.start_flow(std::move(spec));
  }
  sim.run();
  EXPECT_NEAR(net.resource_stats(r).bytes_served, 10 * kGB, 1.0);
}

TEST_F(FluidTest, ThroughputNeverExceedsCapacity) {
  const auto r = net.add_resource("r", Bandwidth::from_gbps(10.0));
  SimTime last_done = 0;
  for (int i = 0; i < 4; ++i) {
    FlowSpec spec;
    spec.bytes = 5 * kGB;
    spec.resources = {r};
    spec.on_complete = [&] { last_done = sim.now(); };
    net.start_flow(std::move(spec));
  }
  sim.run();
  // 20 GB through a 10 GB/s resource takes at least 2 s.
  EXPECT_GE(last_done, from_seconds(2.0) - kMicrosecond);
}

TEST_F(FluidTest, SetCapacityTakesEffect) {
  const auto r = net.add_resource("r", Bandwidth::from_gbps(100.0));
  FlowSpec spec;
  spec.bytes = kGB;
  spec.resources = {r};
  const auto id = net.start_flow(std::move(spec));
  net.set_capacity(r, Bandwidth::from_gbps(25.0));
  EXPECT_DOUBLE_EQ(net.current_rate(id), 25.0 * kGB);
  EXPECT_DOUBLE_EQ(net.capacity(r).gbps(), 25.0);
}

TEST_F(FluidTest, RemainingBytesDecreaseOverTime) {
  const auto r = net.add_resource("r", Bandwidth::from_gbps(1.0));
  FlowSpec spec;
  spec.bytes = 10 * kGB;
  spec.resources = {r};
  const auto id = net.start_flow(std::move(spec));
  sim.schedule_at(from_seconds(2.0), [&] {
    // Touch the network so progress is synced: start a tiny side flow.
    FlowSpec tick;
    tick.bytes = 1.0;
    tick.resources = {r};
    net.start_flow(std::move(tick));
    EXPECT_NEAR(net.remaining_bytes(id), 8 * kGB, kGB * 0.01);
  });
  sim.run();
}

TEST_F(FluidTest, InvalidSpecsRejected) {
  const auto r = net.add_resource("r", Bandwidth::from_gbps(1.0));
  FlowSpec no_bytes;
  no_bytes.resources = {r};
  EXPECT_THROW(net.start_flow(std::move(no_bytes)), Error);

  FlowSpec no_resources;
  no_resources.bytes = 1.0;
  EXPECT_THROW(net.start_flow(std::move(no_resources)), Error);

  FlowSpec bad_resource;
  bad_resource.bytes = 1.0;
  bad_resource.resources = {42};
  EXPECT_THROW(net.start_flow(std::move(bad_resource)), Error);
}

TEST_F(FluidTest, ZeroCapacityResourceRejected) {
  EXPECT_THROW(net.add_resource("zero", Bandwidth{0.0}), Error);
}

TEST_F(FluidTest, QueriesOnUnknownFlowThrow) {
  EXPECT_THROW(net.current_rate(123), Error);
  EXPECT_THROW(net.remaining_bytes(123), Error);
  EXPECT_FALSE(net.active(123));
}

TEST_F(FluidTest, ManyFlowsAllComplete) {
  const auto r = net.add_resource("r", Bandwidth::from_gbps(100.0));
  int completed = 0;
  for (int i = 0; i < 200; ++i) {
    FlowSpec spec;
    spec.bytes = kGB * (1 + i % 7);
    spec.rate_cap = (i % 3 == 0) ? 0.5 * kGB : 0.0;
    spec.resources = {r};
    spec.on_complete = [&] { ++completed; };
    net.start_flow(std::move(spec));
  }
  sim.run();
  EXPECT_EQ(completed, 200);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST_F(FluidTest, BusyTimeTracksUtilisation) {
  const auto r = net.add_resource("r", Bandwidth::from_gbps(10.0));
  FlowSpec spec;
  spec.bytes = 10 * kGB;  // 1 s at full utilisation
  spec.resources = {r};
  net.start_flow(std::move(spec));
  sim.run();
  EXPECT_NEAR(net.resource_stats(r).busy_time_ps, 1e12, 1e9);
}

}  // namespace
}  // namespace ghs::sim
