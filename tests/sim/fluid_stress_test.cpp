// Randomized stress tests of the fluid bandwidth-sharing network: seeded
// scenarios with heterogeneous flows over shared resources, checked
// against the invariants the simulation's correctness rests on —
// conservation of bytes, capacity respected, work-conservation at
// bottlenecks, and bit-exact determinism across repeated runs.
#include <gtest/gtest.h>

#include <vector>

#include "ghs/sim/fluid.hpp"
#include "ghs/util/rng.hpp"

namespace ghs::sim {
namespace {

constexpr double kGB = 1e9;

struct Scenario {
  std::uint64_t seed;
  int resources;
  int flows;
};

class FluidStressTest : public ::testing::TestWithParam<Scenario> {
 protected:
  struct Outcome {
    std::vector<SimTime> completion_times;
    std::vector<double> bytes_served;
    SimTime makespan = 0;
  };

  static Outcome run(const Scenario& scenario) {
    Simulator sim;
    FluidNetwork net(sim);
    Rng rng(scenario.seed);

    std::vector<ResourceId> resources;
    std::vector<double> capacities;
    for (int r = 0; r < scenario.resources; ++r) {
      const double cap = 50.0 * kGB * static_cast<double>(1 + rng.next_below(8));
      resources.push_back(
          net.add_resource("r" + std::to_string(r), Bandwidth{cap}));
      capacities.push_back(cap);
    }

    Outcome outcome;
    outcome.completion_times.resize(static_cast<std::size_t>(scenario.flows));
    double total_bytes = 0.0;
    for (int f = 0; f < scenario.flows; ++f) {
      FlowSpec spec;
      spec.bytes = kGB * static_cast<double>(1 + rng.next_below(20));
      total_bytes += spec.bytes;
      if (rng.next_below(3) == 0) {
        spec.rate_cap = 5.0 * kGB * static_cast<double>(1 + rng.next_below(4));
      }
      // Each flow crosses 1..3 distinct resources.
      const auto path_len = 1 + rng.next_below(
          std::min<std::uint64_t>(3, static_cast<std::uint64_t>(
                                          scenario.resources)));
      std::vector<ResourceId> path;
      while (path.size() < path_len) {
        const auto r = resources[static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint64_t>(scenario.resources)))];
        if (std::find(path.begin(), path.end(), r) == path.end()) {
          path.push_back(r);
        }
      }
      spec.resources = std::move(path);
      const auto index = static_cast<std::size_t>(f);
      auto& slot = outcome.completion_times[index];
      spec.on_complete = [&sim, &slot] { slot = sim.now(); };
      // Stagger arrivals.
      const SimTime arrival =
          static_cast<SimTime>(rng.next_below(5)) * kMillisecond;
      sim.schedule_at(arrival, [&net, spec = std::move(spec)]() mutable {
        net.start_flow(std::move(spec));
      });
    }
    sim.run();
    outcome.makespan = sim.now();
    for (std::size_t r = 0; r < resources.size(); ++r) {
      outcome.bytes_served.push_back(net.resource_stats(resources[r])
                                         .bytes_served);
    }
    // Conservation: the sum of per-resource service can exceed total bytes
    // (multi-resource flows are counted per resource) but each resource
    // serves at most capacity * makespan.
    for (std::size_t r = 0; r < resources.size(); ++r) {
      EXPECT_LE(outcome.bytes_served[r],
                capacities[r] * to_seconds(outcome.makespan) * 1.0001)
          << "resource " << r << " overcommitted";
    }
    EXPECT_GT(total_bytes, 0.0);
    return outcome;
  }
};

TEST_P(FluidStressTest, AllFlowsComplete) {
  const auto outcome = run(GetParam());
  for (std::size_t f = 0; f < outcome.completion_times.size(); ++f) {
    EXPECT_GT(outcome.completion_times[f], 0) << "flow " << f;
    EXPECT_LE(outcome.completion_times[f], outcome.makespan);
  }
}

TEST_P(FluidStressTest, DeterministicAcrossRuns) {
  const auto a = run(GetParam());
  const auto b = run(GetParam());
  ASSERT_EQ(a.completion_times.size(), b.completion_times.size());
  for (std::size_t f = 0; f < a.completion_times.size(); ++f) {
    EXPECT_EQ(a.completion_times[f], b.completion_times[f]) << "flow " << f;
  }
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST_P(FluidStressTest, MakespanAtLeastBottleneckBound) {
  // The busiest resource's bytes over its capacity lower-bounds the
  // makespan (arrivals start within the first 4 ms).
  const auto scenario = GetParam();
  Simulator sim;
  FluidNetwork net(sim);
  Rng rng(scenario.seed);
  // Re-derive the same scenario deterministically to compute bounds.
  const auto outcome = run(scenario);
  double max_ratio_seconds = 0.0;
  // bytes_served / capacity is exactly the busy time needed at full rate;
  // the capacities are re-derivable from the seed, but the stats already
  // embed them via the overcommit check; here simply assert monotone
  // sanity of the makespan.
  for (double bytes : outcome.bytes_served) {
    max_ratio_seconds = std::max(max_ratio_seconds, bytes / (400.0 * kGB));
  }
  EXPECT_GE(to_seconds(outcome.makespan) + 1e-9, max_ratio_seconds);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, FluidStressTest,
    ::testing::Values(Scenario{1, 1, 10}, Scenario{2, 2, 25},
                      Scenario{3, 4, 50}, Scenario{4, 8, 100},
                      Scenario{5, 3, 200}, Scenario{42, 5, 64},
                      Scenario{99, 2, 150}, Scenario{1234, 6, 80}));

}  // namespace
}  // namespace ghs::sim
