#include "ghs/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ghs/util/error.hpp"

namespace ghs::sim {
namespace {

// Every EventQueue implementation must satisfy the same contract; the
// suite runs once per QueueKind.
class EventQueueTest : public ::testing::TestWithParam<QueueKind> {
 protected:
  std::unique_ptr<EventQueue> make() { return make_event_queue(GetParam()); }
};

TEST_P(EventQueueTest, EmptyByDefault) {
  auto q = make();
  EXPECT_TRUE(q->empty());
  EXPECT_EQ(q->size(), 0u);
  EXPECT_THROW(q->next_time(), Error);
  EXPECT_THROW(q->pop(), Error);
  std::vector<Event> out;
  EXPECT_THROW(q->pop_ready(out), Error);
}

TEST_P(EventQueueTest, OrdersByTime) {
  auto q = make();
  std::vector<int> order;
  q->push(300, [&] { order.push_back(3); });
  q->push(100, [&] { order.push_back(1); });
  q->push(200, [&] { order.push_back(2); });
  while (!q->empty()) q->pop()();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(EventQueueTest, FifoAmongEqualTimes) {
  auto q = make();
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q->push(42, [&order, i] { order.push_back(i); });
  }
  while (!q->empty()) q->pop()();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST_P(EventQueueTest, NextTimeReportsEarliest) {
  auto q = make();
  q->push(500, [] {});
  EXPECT_EQ(q->next_time(), 500);
  q->push(100, [] {});
  EXPECT_EQ(q->next_time(), 100);
  q->pop();
  EXPECT_EQ(q->next_time(), 500);
}

TEST_P(EventQueueTest, RejectsNegativeTime) {
  auto q = make();
  EXPECT_THROW(q->push(-1, [] {}), Error);
}

TEST_P(EventQueueTest, SizeTracksPushPop) {
  auto q = make();
  q->push(1, [] {});
  q->push(2, [] {});
  EXPECT_EQ(q->size(), 2u);
  q->pop();
  EXPECT_EQ(q->size(), 1u);
  q->pop();
  EXPECT_TRUE(q->empty());
}

TEST_P(EventQueueTest, HoldsMoveOnlyCallables) {
  auto q = make();
  auto payload = std::make_unique<std::string>("move-only");
  std::string seen;
  q->push(10, [p = std::move(payload), &seen] { seen = *p; });
  q->pop()();
  EXPECT_EQ(seen, "move-only");
}

TEST_P(EventQueueTest, PopReadyDrainsOnlyTheEarliestTimestamp) {
  auto q = make();
  std::vector<int> order;
  q->push(7, [&] { order.push_back(1); });
  q->push(7, [&] { order.push_back(2); });
  q->push(9, [&] { order.push_back(3); });
  std::vector<Event> out;
  q->pop_ready(out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(q->size(), 1u);
  EXPECT_EQ(q->next_time(), 9);
  for (Event& fn : out) fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_P(EventQueueTest, DestroysPendingEventsExactlyOnce) {
  auto tracker = std::make_shared<int>(0);
  {
    auto q = make();
    q->push(1, [tracker] { ++*tracker; });
    q->push(2, [tracker] { ++*tracker; });
    // Queue destroyed with both events pending.
  }
  EXPECT_EQ(*tracker, 0);
  EXPECT_EQ(tracker.use_count(), 1);
}

TEST_P(EventQueueTest, InterleavedPushPopKeepsTotalOrder) {
  auto q = make();
  std::vector<SimTime> popped;
  q->push(10, [] {});
  q->push(30, [] {});
  popped.push_back(q->next_time());
  q->pop();
  q->push(20, [] {});
  q->push(15, [] {});
  while (!q->empty()) {
    popped.push_back(q->next_time());
    q->pop();
  }
  EXPECT_EQ(popped, (std::vector<SimTime>{10, 15, 20, 30}));
}

TEST_P(EventQueueTest, ReportsItsKind) {
  EXPECT_EQ(make()->kind(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllQueues, EventQueueTest,
                         ::testing::Values(QueueKind::kHeap,
                                           QueueKind::kCalendar),
                         [](const auto& param_info) {
                           return std::string(
                               queue_kind_name(param_info.param));
                         });

TEST(QueueKindTest, NamesRoundTrip) {
  EXPECT_STREQ(queue_kind_name(QueueKind::kHeap), "heap");
  EXPECT_STREQ(queue_kind_name(QueueKind::kCalendar), "calendar");
  EXPECT_EQ(parse_queue_kind("heap"), QueueKind::kHeap);
  EXPECT_EQ(parse_queue_kind("calendar"), QueueKind::kCalendar);
  EXPECT_EQ(parse_queue_kind("splay"), std::nullopt);
}

TEST(CalendarEventQueueTest, ResizesWithPopulation) {
  CalendarEventQueue q;
  const std::size_t initial = q.bucket_count();
  for (SimTime t = 0; t < 4096; ++t) q.push(t * 1000, [] {});
  EXPECT_GT(q.bucket_count(), initial);
  while (!q.empty()) q.pop();
  EXPECT_EQ(q.bucket_count(), initial);
}

TEST(CalendarEventQueueTest, FarFutureOutliersStayOrdered) {
  CalendarEventQueue q;
  std::vector<SimTime> popped;
  q.push(5, [] {});
  q.push(SimTime{1} << 50, [] {});  // ~18 minutes of picoseconds out
  q.push(10, [] {});
  while (!q.empty()) {
    popped.push_back(q.next_time());
    q.pop();
  }
  EXPECT_EQ(popped, (std::vector<SimTime>{5, 10, SimTime{1} << 50}));
}

}  // namespace
}  // namespace ghs::sim
