#include "ghs/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ghs/util/error.hpp"

namespace ghs::sim {
namespace {

TEST(EventQueueTest, EmptyByDefault) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW(q.next_time(), Error);
  EXPECT_THROW(q.pop(), Error);
}

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop()();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.push(100, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop()();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(50, [] {});
  q.push(5, [] {});
  EXPECT_EQ(q.next_time(), 5);
}

TEST(EventQueueTest, RejectsNegativeTime) {
  EventQueue q;
  EXPECT_THROW(q.push(-1, [] {}), Error);
}

TEST(EventQueueTest, SizeTracksPushPop) {
  EventQueue q;
  q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace ghs::sim
