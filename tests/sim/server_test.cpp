#include "ghs/sim/server.hpp"

#include <gtest/gtest.h>

#include "ghs/util/error.hpp"

namespace ghs::sim {
namespace {

TEST(SerialServerTest, IdleServerServesImmediately) {
  SerialServer server;
  EXPECT_EQ(server.submit(100, 10), 110);
  EXPECT_EQ(server.available_at(), 110);
}

TEST(SerialServerTest, BackToBackSubmissionsQueue) {
  SerialServer server;
  server.submit(0, 10);
  EXPECT_EQ(server.submit(0, 10), 20);
  EXPECT_EQ(server.submit(5, 10), 30);
}

TEST(SerialServerTest, LateArrivalAfterIdleGap) {
  SerialServer server;
  server.submit(0, 10);  // done at 10
  EXPECT_EQ(server.submit(100, 5), 105);
}

TEST(SerialServerTest, BatchEqualsRepeatedSubmit) {
  SerialServer a;
  SerialServer b;
  const SimTime batch_done = a.submit_batch(7, 3, 5);
  SimTime single_done = 0;
  for (int i = 0; i < 5; ++i) single_done = b.submit(7, 3);
  EXPECT_EQ(batch_done, single_done);
  EXPECT_EQ(a.busy_time(), b.busy_time());
}

TEST(SerialServerTest, EmptyBatchIsNoOp) {
  SerialServer server;
  server.submit(0, 10);
  EXPECT_EQ(server.submit_batch(0, 10, 0), 10);
  EXPECT_EQ(server.completed(), 1);
}

TEST(SerialServerTest, BusyTimeAccumulates) {
  SerialServer server;
  server.submit_batch(0, 2, 100);
  EXPECT_EQ(server.busy_time(), 200);
  EXPECT_EQ(server.completed(), 100);
}

TEST(SerialServerTest, ResetClearsHistory) {
  SerialServer server;
  server.submit_batch(0, 2, 10);
  server.reset();
  EXPECT_EQ(server.available_at(), 0);
  EXPECT_EQ(server.busy_time(), 0);
  EXPECT_EQ(server.completed(), 0);
}

TEST(SerialServerTest, RejectsNegativeArguments) {
  SerialServer server;
  EXPECT_THROW(server.submit(-1, 1), Error);
  EXPECT_THROW(server.submit(0, -1), Error);
  EXPECT_THROW(server.submit_batch(0, 1, -1), Error);
}

TEST(SerialServerTest, MillionsOfCombinesScaleLinearly) {
  // The C1 baseline submits 8.192 M combines at 0.82 ns.
  SerialServer server;
  const SimTime done = server.submit_batch(0, 820, 8'192'000);
  EXPECT_EQ(done, 820LL * 8'192'000);
}

}  // namespace
}  // namespace ghs::sim
