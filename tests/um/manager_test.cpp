#include "ghs/um/manager.hpp"

#include <gtest/gtest.h>

#include "ghs/util/error.hpp"

namespace ghs::um {
namespace {

constexpr Bytes kPage = 2 * kMiB;

class UmManagerTest : public ::testing::Test {
 protected:
  UmManagerTest() { policy_.page_size = kPage; }

  UmManager make(MigrationMode mode, int gpu_threshold = 2,
                 int cpu_threshold = 0) {
    policy_.mode = mode;
    policy_.gpu_access_threshold = gpu_threshold;
    policy_.cpu_access_threshold = cpu_threshold;
    return UmManager(topo_, engine_, policy_);
  }

  sim::Simulator sim_;
  mem::Topology topo_{sim_, mem::TopologyConfig{}};
  mem::TransferEngine engine_{topo_};
  UmPolicy policy_;
};

TEST_F(UmManagerTest, FirstTouchPlacesAllPages) {
  auto um = make(MigrationMode::kNone);
  const auto id = um.allocate(10 * kPage, mem::RegionId::kLpddr, "a");
  EXPECT_EQ(um.size(id), 10 * kPage);
  EXPECT_EQ(um.resident_bytes(id, mem::RegionId::kLpddr), 10 * kPage);
  EXPECT_EQ(um.resident_bytes(id, mem::RegionId::kHbm), 0);
}

TEST_F(UmManagerTest, PartialLastPageAccounted) {
  auto um = make(MigrationMode::kNone);
  const Bytes size = 3 * kPage + 1000;
  const auto id = um.allocate(size, mem::RegionId::kLpddr, "a");
  EXPECT_EQ(um.resident_bytes(id, mem::RegionId::kLpddr), size);
}

TEST_F(UmManagerTest, PlanIsOneLocalSegmentWhenResident) {
  auto um = make(MigrationMode::kNone);
  const auto id = um.allocate(8 * kPage, mem::RegionId::kHbm, "a");
  const auto plan = um.plan_pass(id, Accessor::kGpu, 0, 8 * kPage);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].offset, 0);
  EXPECT_EQ(plan[0].length, 8 * kPage);
  EXPECT_EQ(plan[0].source, mem::RegionId::kHbm);
  EXPECT_FALSE(plan[0].migrate_on_access);
}

TEST_F(UmManagerTest, ModeNoneServesRemoteForever) {
  auto um = make(MigrationMode::kNone);
  const auto id = um.allocate(4 * kPage, mem::RegionId::kLpddr, "a");
  for (int pass = 0; pass < 5; ++pass) {
    const auto plan = um.plan_pass(id, Accessor::kGpu, 0, 4 * kPage);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].source, mem::RegionId::kLpddr);
    EXPECT_FALSE(plan[0].migrate_on_access);
  }
  EXPECT_EQ(um.resident_bytes(id, mem::RegionId::kHbm), 0);
  EXPECT_EQ(um.stats().remote_bytes_gpu, 5 * 4 * kPage);
}

TEST_F(UmManagerTest, FaultEagerMigratesOnFirstGpuTouch) {
  auto um = make(MigrationMode::kFaultEager);
  const auto id = um.allocate(4 * kPage, mem::RegionId::kLpddr, "a");
  const auto plan = um.plan_pass(id, Accessor::kGpu, 0, 4 * kPage);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_TRUE(plan[0].migrate_on_access);
  EXPECT_EQ(plan[0].source, mem::RegionId::kLpddr);
  EXPECT_GT(plan[0].rate_cap, 0.0);

  // The device reports the segment's flow completion; pages flip.
  um.complete_segment(id, plan[0].offset, plan[0].length,
                      mem::RegionId::kHbm);
  EXPECT_EQ(um.resident_bytes(id, mem::RegionId::kHbm), 4 * kPage);

  // Next pass is fully local.
  const auto plan2 = um.plan_pass(id, Accessor::kGpu, 0, 4 * kPage);
  ASSERT_EQ(plan2.size(), 1u);
  EXPECT_EQ(plan2[0].source, mem::RegionId::kHbm);
  EXPECT_FALSE(plan2[0].migrate_on_access);
}

TEST_F(UmManagerTest, FaultEagerDoesNotDoubleMigrate) {
  auto um = make(MigrationMode::kFaultEager);
  const auto id = um.allocate(2 * kPage, mem::RegionId::kLpddr, "a");
  const auto plan1 = um.plan_pass(id, Accessor::kGpu, 0, 2 * kPage);
  ASSERT_TRUE(plan1[0].migrate_on_access);
  // Second pass before the flip reports in: serves remote, no re-migrate.
  const auto plan2 = um.plan_pass(id, Accessor::kGpu, 0, 2 * kPage);
  ASSERT_EQ(plan2.size(), 1u);
  EXPECT_FALSE(plan2[0].migrate_on_access);
  EXPECT_EQ(plan2[0].source, mem::RegionId::kLpddr);
}

TEST_F(UmManagerTest, CpuTouchDoesNotFaultMigrate) {
  auto um = make(MigrationMode::kFaultEager);
  const auto id = um.allocate(2 * kPage, mem::RegionId::kHbm, "a");
  const auto plan = um.plan_pass(id, Accessor::kCpu, 0, 2 * kPage);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].source, mem::RegionId::kHbm);
  EXPECT_FALSE(plan[0].migrate_on_access);
  EXPECT_EQ(um.stats().remote_bytes_cpu, 2 * kPage);
}

TEST_F(UmManagerTest, AccessCounterMigratesAfterThreshold) {
  auto um = make(MigrationMode::kAccessCounter, /*gpu_threshold=*/3);
  const auto id = um.allocate(4 * kPage, mem::RegionId::kLpddr, "a");
  for (int pass = 0; pass < 2; ++pass) {
    const auto plan = um.plan_pass(id, Accessor::kGpu, 0, 4 * kPage);
    EXPECT_FALSE(plan[0].migrate_on_access);
    EXPECT_EQ(um.stats().counter_migrations, 0);
  }
  // Third pass crosses the threshold: background migration queued.
  um.plan_pass(id, Accessor::kGpu, 0, 4 * kPage);
  EXPECT_EQ(um.stats().counter_migrations, 1);
  sim_.run();  // migration flow drains, pages flip
  EXPECT_EQ(um.resident_bytes(id, mem::RegionId::kHbm), 4 * kPage);
  EXPECT_EQ(um.stats().bytes_migrated_to_hbm, 4 * kPage);
}

TEST_F(UmManagerTest, CpuMigrateBackWhenEnabled) {
  auto um = make(MigrationMode::kAccessCounter, /*gpu_threshold=*/100,
                 /*cpu_threshold=*/2);
  const auto id = um.allocate(4 * kPage, mem::RegionId::kHbm, "a");
  um.plan_pass(id, Accessor::kCpu, 0, 4 * kPage);
  EXPECT_EQ(um.stats().counter_migrations, 0);
  um.plan_pass(id, Accessor::kCpu, 0, 4 * kPage);
  EXPECT_EQ(um.stats().counter_migrations, 1);
  sim_.run();
  EXPECT_EQ(um.resident_bytes(id, mem::RegionId::kLpddr), 4 * kPage);
  EXPECT_EQ(um.stats().bytes_migrated_to_lpddr, 4 * kPage);
}

TEST_F(UmManagerTest, CpuMigrateBackDisabledByDefaultPolicy) {
  auto um = make(MigrationMode::kFaultEager, 2, /*cpu_threshold=*/0);
  const auto id = um.allocate(4 * kPage, mem::RegionId::kHbm, "a");
  for (int pass = 0; pass < 50; ++pass) {
    um.plan_pass(id, Accessor::kCpu, 0, 4 * kPage);
  }
  EXPECT_EQ(um.stats().counter_migrations, 0);
  EXPECT_EQ(um.resident_bytes(id, mem::RegionId::kHbm), 4 * kPage);
}

TEST_F(UmManagerTest, MixedResidencySplitsIntoSegments) {
  auto um = make(MigrationMode::kNone);
  const auto id = um.allocate(6 * kPage, mem::RegionId::kLpddr, "a");
  // Move the middle two pages to HBM.
  um.complete_segment(id, 2 * kPage, 2 * kPage, mem::RegionId::kHbm);
  const auto plan = um.plan_pass(id, Accessor::kGpu, 0, 6 * kPage);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].source, mem::RegionId::kLpddr);
  EXPECT_EQ(plan[0].length, 2 * kPage);
  EXPECT_EQ(plan[1].source, mem::RegionId::kHbm);
  EXPECT_EQ(plan[1].length, 2 * kPage);
  EXPECT_EQ(plan[2].source, mem::RegionId::kLpddr);
  EXPECT_EQ(plan[2].length, 2 * kPage);
}

TEST_F(UmManagerTest, SubRangePassOnlyTouchesItsPages) {
  auto um = make(MigrationMode::kFaultEager);
  const auto id = um.allocate(8 * kPage, mem::RegionId::kLpddr, "a");
  const auto plan =
      um.plan_pass(id, Accessor::kGpu, 4 * kPage, 4 * kPage);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].offset, 4 * kPage);
  um.complete_segment(id, 4 * kPage, 4 * kPage, mem::RegionId::kHbm);
  EXPECT_EQ(um.resident_bytes(id, mem::RegionId::kHbm), 4 * kPage);
  EXPECT_EQ(um.resident_bytes(id, mem::RegionId::kLpddr, 0, 4 * kPage),
            4 * kPage);
}

TEST_F(UmManagerTest, UnalignedRangeSplitsAtPageBoundary) {
  auto um = make(MigrationMode::kNone);
  const auto id = um.allocate(4 * kPage, mem::RegionId::kLpddr, "a");
  um.complete_segment(id, 0, kPage, mem::RegionId::kHbm);
  // Range straddling the residency boundary mid-page-1.
  const auto plan =
      um.plan_pass(id, Accessor::kGpu, kPage / 2, kPage);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].source, mem::RegionId::kHbm);
  EXPECT_EQ(plan[0].length, kPage / 2);
  EXPECT_EQ(plan[1].source, mem::RegionId::kLpddr);
  EXPECT_EQ(plan[1].length, kPage / 2);
}

TEST_F(UmManagerTest, FreeInvalidatesAllocation) {
  auto um = make(MigrationMode::kNone);
  const auto id = um.allocate(kPage, mem::RegionId::kLpddr, "a");
  um.free(id);
  EXPECT_THROW(um.size(id), Error);
  EXPECT_THROW(um.plan_pass(id, Accessor::kGpu, 0, kPage), Error);
}

TEST_F(UmManagerTest, CompleteSegmentAfterFreeIsIgnored) {
  auto um = make(MigrationMode::kNone);
  const auto id = um.allocate(kPage, mem::RegionId::kLpddr, "a");
  um.free(id);
  EXPECT_NO_THROW(um.complete_segment(id, 0, kPage, mem::RegionId::kHbm));
}

TEST_F(UmManagerTest, RangeValidation) {
  auto um = make(MigrationMode::kNone);
  const auto id = um.allocate(2 * kPage, mem::RegionId::kLpddr, "a");
  EXPECT_THROW(um.plan_pass(id, Accessor::kGpu, 0, 3 * kPage), Error);
  EXPECT_THROW(um.plan_pass(id, Accessor::kGpu, -1, kPage), Error);
  EXPECT_TRUE(um.plan_pass(id, Accessor::kGpu, 0, 0).empty());
}

TEST_F(UmManagerTest, PrefetchMovesPendingPages) {
  auto um = make(MigrationMode::kNone);
  const auto id = um.allocate(8 * kPage, mem::RegionId::kLpddr, "a");
  bool done = false;
  const Bytes queued = um.prefetch(id, 0, 8 * kPage, mem::RegionId::kHbm,
                                   [&] { done = true; });
  EXPECT_EQ(queued, 8 * kPage);
  EXPECT_FALSE(done);  // the migration flow has to drain first
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(um.resident_bytes(id, mem::RegionId::kHbm), 8 * kPage);
}

TEST_F(UmManagerTest, PrefetchIsNoOpWhenAlreadyResident) {
  auto um = make(MigrationMode::kNone);
  const auto id = um.allocate(4 * kPage, mem::RegionId::kHbm, "a");
  bool done = false;
  const Bytes queued = um.prefetch(id, 0, 4 * kPage, mem::RegionId::kHbm,
                                   [&] { done = true; });
  EXPECT_EQ(queued, 0);
  EXPECT_TRUE(done);  // completes inline
}

TEST_F(UmManagerTest, PrefetchSubRangeLeavesRestAlone) {
  auto um = make(MigrationMode::kNone);
  const auto id = um.allocate(8 * kPage, mem::RegionId::kLpddr, "a");
  um.prefetch(id, 4 * kPage, 4 * kPage, mem::RegionId::kHbm, nullptr);
  sim_.run();
  EXPECT_EQ(um.resident_bytes(id, mem::RegionId::kHbm), 4 * kPage);
  EXPECT_EQ(um.resident_bytes(id, mem::RegionId::kLpddr, 0, 4 * kPage),
            4 * kPage);
}

TEST_F(UmManagerTest, PrefetchHandlesMixedSources) {
  auto um = make(MigrationMode::kNone);
  const auto id = um.allocate(6 * kPage, mem::RegionId::kLpddr, "a");
  um.complete_segment(id, 2 * kPage, 2 * kPage, mem::RegionId::kHbm);
  // Pull everything to LPDDR: only the HBM-resident middle moves.
  const Bytes queued =
      um.prefetch(id, 0, 6 * kPage, mem::RegionId::kLpddr, nullptr);
  EXPECT_EQ(queued, 2 * kPage);
  sim_.run();
  EXPECT_EQ(um.resident_bytes(id, mem::RegionId::kLpddr), 6 * kPage);
}

TEST_F(UmManagerTest, PrefetchResetsAccessCounters) {
  auto um = make(MigrationMode::kAccessCounter, /*gpu_threshold=*/3);
  const auto id = um.allocate(2 * kPage, mem::RegionId::kLpddr, "a");
  um.plan_pass(id, Accessor::kGpu, 0, 2 * kPage);
  um.plan_pass(id, Accessor::kGpu, 0, 2 * kPage);
  um.prefetch(id, 0, 2 * kPage, mem::RegionId::kHbm, nullptr);
  sim_.run();
  // Counters were reset by the residency flip; the next remote-side pass
  // (after moving back) starts counting from zero.
  um.prefetch(id, 0, 2 * kPage, mem::RegionId::kLpddr, nullptr);
  sim_.run();
  um.plan_pass(id, Accessor::kGpu, 0, 2 * kPage);
  EXPECT_EQ(um.stats().counter_migrations, 0);
}

TEST_F(UmManagerTest, ReadMostlyDuplicatesInsteadOfMigrating) {
  auto um = make(MigrationMode::kFaultEager);
  const auto id = um.allocate(4 * kPage, mem::RegionId::kLpddr, "a");
  um.advise_read_mostly(id);
  EXPECT_TRUE(um.read_mostly(id));

  const auto plan = um.plan_pass(id, Accessor::kGpu, 0, 4 * kPage);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_TRUE(plan[0].duplicate_on_access);
  EXPECT_FALSE(plan[0].migrate_on_access);
  EXPECT_GT(plan[0].rate_cap, 0.0);

  um.complete_duplication(id, 0, 4 * kPage);
  // Home copy stays in LPDDR; a replica now exists.
  EXPECT_EQ(um.resident_bytes(id, mem::RegionId::kLpddr), 4 * kPage);
  EXPECT_EQ(um.duplicated_bytes(id), 4 * kPage);
  EXPECT_EQ(um.stats().bytes_duplicated, 4 * kPage);

  // Both processors now read locally.
  const auto gpu_plan = um.plan_pass(id, Accessor::kGpu, 0, 4 * kPage);
  EXPECT_EQ(gpu_plan[0].source, mem::RegionId::kHbm);
  EXPECT_FALSE(gpu_plan[0].duplicate_on_access);
  const auto cpu_plan = um.plan_pass(id, Accessor::kCpu, 0, 4 * kPage);
  EXPECT_EQ(cpu_plan[0].source, mem::RegionId::kLpddr);
}

TEST_F(UmManagerTest, ReadMostlyCpuSideAlsoDuplicates) {
  auto um = make(MigrationMode::kFaultEager);
  const auto id = um.allocate(2 * kPage, mem::RegionId::kHbm, "a");
  um.advise_read_mostly(id);
  const auto plan = um.plan_pass(id, Accessor::kCpu, 0, 2 * kPage);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_TRUE(plan[0].duplicate_on_access);
  EXPECT_EQ(plan[0].source, mem::RegionId::kHbm);
}

TEST_F(UmManagerTest, PrefetchCollapsesReplicas) {
  auto um = make(MigrationMode::kFaultEager);
  const auto id = um.allocate(2 * kPage, mem::RegionId::kLpddr, "a");
  um.advise_read_mostly(id);
  um.plan_pass(id, Accessor::kGpu, 0, 2 * kPage);
  um.complete_duplication(id, 0, 2 * kPage);
  EXPECT_EQ(um.duplicated_bytes(id), 2 * kPage);
  um.prefetch(id, 0, 2 * kPage, mem::RegionId::kHbm, nullptr);
  sim_.run();
  EXPECT_EQ(um.duplicated_bytes(id), 0);
  EXPECT_EQ(um.resident_bytes(id, mem::RegionId::kHbm), 2 * kPage);
}

TEST_F(UmManagerTest, DuplicationNotDoubleCharged) {
  auto um = make(MigrationMode::kFaultEager);
  const auto id = um.allocate(kPage, mem::RegionId::kLpddr, "a");
  um.advise_read_mostly(id);
  um.plan_pass(id, Accessor::kGpu, 0, kPage);
  // Second pass before the replica lands: served remotely, no re-issue.
  const auto plan = um.plan_pass(id, Accessor::kGpu, 0, kPage);
  EXPECT_FALSE(plan[0].duplicate_on_access);
  um.complete_duplication(id, 0, kPage);
  um.complete_duplication(id, 0, kPage);  // idempotent
  EXPECT_EQ(um.stats().bytes_duplicated, kPage);
}

TEST_F(UmManagerTest, BadPolicyRejected) {
  policy_.gpu_access_threshold = 0;
  EXPECT_THROW(UmManager(topo_, engine_, policy_), Error);
}

}  // namespace
}  // namespace ghs::um
