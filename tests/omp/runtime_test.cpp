#include "ghs/omp/runtime.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "ghs/core/platform.hpp"
#include "ghs/util/error.hpp"

namespace ghs::omp {
namespace {

class RuntimeTest : public ::testing::Test {
 protected:
  core::Platform platform;
  Runtime& rt = platform.runtime();

  OffloadLoop loop(std::int64_t iterations, int v = 1) {
    OffloadLoop l;
    l.label = "loop";
    l.iterations = iterations;
    l.v = v;
    l.element_size = 4;
    return l;
  }
};

TEST_F(RuntimeTest, LoweringAppliesHeuristicWithoutClauses) {
  const auto desc = rt.lower(loop(1'048'576'000), TeamsClauses{});
  EXPECT_EQ(desc.grid, 8'192'000);
  EXPECT_EQ(desc.threads_per_cta, 128);
  EXPECT_EQ(desc.v, 1);
}

TEST_F(RuntimeTest, LoweringHonoursClauses) {
  TeamsClauses clauses;
  clauses.num_teams = 16384;
  clauses.thread_limit = 256;
  const auto desc = rt.lower(loop(262'144'000, 4), clauses);
  EXPECT_EQ(desc.grid, 16384);
  EXPECT_EQ(desc.threads_per_cta, 256);
  EXPECT_EQ(desc.elements, 1'048'576'000);
}

TEST_F(RuntimeTest, GridNeverExceedsIterations) {
  TeamsClauses clauses;
  clauses.num_teams = 1'000'000;
  const auto desc = rt.lower(loop(1000), clauses);
  EXPECT_EQ(desc.grid, 1000);
}

TEST_F(RuntimeTest, LoweringValidatesInput) {
  EXPECT_THROW(rt.lower(loop(0), TeamsClauses{}), Error);
  TeamsClauses bad_teams;
  bad_teams.num_teams = 0;
  EXPECT_THROW(rt.lower(loop(100), bad_teams), Error);
  TeamsClauses bad_threads;
  bad_threads.thread_limit = 100;  // not a warp multiple
  EXPECT_THROW(rt.lower(loop(100), bad_threads), Error);
}

TEST_F(RuntimeTest, DefaultGridMatchesPaperProfile) {
  EXPECT_EQ(rt.default_grid(1'048'576'000), 8'192'000);
  EXPECT_EQ(rt.default_grid(4'194'304'000), 0xFFFFFF);
}

TEST_F(RuntimeTest, ScalarUpdateTakesLatency) {
  bool fired = false;
  rt.target_update_scalar([&] { fired = true; });
  platform.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(platform.sim().now(),
            platform.config().omp.scalar_update_latency);
  EXPECT_EQ(rt.stats().scalar_updates, 1);
}

TEST_F(RuntimeTest, MapToCopiesOverTheLink) {
  const auto buf = rt.target_alloc(450'000'000, "in");
  bool done = false;
  rt.map_to(buf, [&] { done = true; });
  platform.run();
  EXPECT_TRUE(done);
  // 0.45 GB over 450 GB/s C2C = 1 ms.
  EXPECT_NEAR(static_cast<double>(platform.sim().now()), 1e9, 1e7);
  EXPECT_EQ(rt.stats().mapped_bytes, 450'000'000);
}

TEST_F(RuntimeTest, TargetReduceDeliversKernelResult) {
  std::optional<gpu::KernelResult> result;
  rt.target_teams_reduce(loop(1 << 22), TeamsClauses{},
                         [&](const gpu::KernelResult& r) { result = r; });
  platform.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->bytes, (1LL << 22) * 4);
  EXPECT_EQ(rt.stats().target_regions, 1);
}

TEST_F(RuntimeTest, CoExecuteRunsBothSides) {
  const Bytes bytes = 400 * kMiB;
  const auto alloc =
      platform.um().allocate(bytes, mem::RegionId::kLpddr, "in");
  OffloadLoop gpu_loop = loop(bytes / 8, 1);
  gpu_loop.unified = true;
  gpu_loop.managed_alloc = alloc;
  gpu_loop.range_offset = bytes / 2;

  cpu::CpuReduceRequest cpu_part;
  cpu_part.label = "host";
  cpu_part.elements = bytes / 8;
  cpu_part.element_size = 4;
  cpu_part.threads = 72;
  cpu_part.managed = true;
  cpu_part.managed_alloc = alloc;

  std::optional<CoExecResult> result;
  rt.parallel_co_execute(gpu_loop, TeamsClauses{}, cpu_part,
                         [&](const CoExecResult& r) { result = r; });
  platform.run();
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->gpu.has_value());
  ASSERT_TRUE(result->cpu.has_value());
  // The region ends at the slower of the two parts plus the join barrier.
  EXPECT_GE(result->end, result->gpu->end);
  EXPECT_GE(result->end, result->cpu->end);
}

TEST_F(RuntimeTest, CoExecuteGpuOnlyAndCpuOnly) {
  std::optional<CoExecResult> gpu_only;
  rt.parallel_co_execute(loop(1 << 20), TeamsClauses{}, std::nullopt,
                         [&](const CoExecResult& r) { gpu_only = r; });
  platform.run();
  ASSERT_TRUE(gpu_only.has_value());
  EXPECT_TRUE(gpu_only->gpu.has_value());
  EXPECT_FALSE(gpu_only->cpu.has_value());

  cpu::CpuReduceRequest cpu_part;
  cpu_part.label = "host";
  cpu_part.elements = 1 << 20;
  cpu_part.element_size = 4;
  cpu_part.threads = 72;
  std::optional<CoExecResult> cpu_only;
  rt.parallel_co_execute(std::nullopt, TeamsClauses{}, cpu_part,
                         [&](const CoExecResult& r) { cpu_only = r; });
  platform.run();
  ASSERT_TRUE(cpu_only.has_value());
  EXPECT_FALSE(cpu_only->gpu.has_value());
  EXPECT_TRUE(cpu_only->cpu.has_value());
}

TEST_F(RuntimeTest, CoExecuteWithNeitherSideRejected) {
  EXPECT_THROW(
      rt.parallel_co_execute(std::nullopt, TeamsClauses{}, std::nullopt,
                             nullptr),
      Error);
}

TEST_F(RuntimeTest, LoweringPropagatesStrategyAndStreams) {
  OffloadLoop l = loop(1 << 20, 4);
  l.strategy = gpu::CombineStrategy::kTwoKernel;
  l.input_streams = 2;
  const auto desc = rt.lower(l, TeamsClauses{});
  EXPECT_EQ(desc.strategy, gpu::CombineStrategy::kTwoKernel);
  EXPECT_EQ(desc.input_streams, 2);
  // 2^20 iterations x v=4 elements x 4 B x 2 streams.
  EXPECT_EQ(desc.total_bytes(), (1LL << 20) * 4 * 4 * 2);
}

TEST_F(RuntimeTest, MultiStreamUnifiedLoopRejected) {
  OffloadLoop l = loop(1 << 20);
  l.unified = true;
  l.input_streams = 2;
  EXPECT_THROW(rt.lower(l, TeamsClauses{}), Error);
}

TEST_F(RuntimeTest, BadDeviceBufferRejected) {
  EXPECT_THROW(rt.target_alloc(0, "zero"), Error);
  EXPECT_THROW(rt.map_to(99, nullptr), Error);
}

}  // namespace
}  // namespace ghs::omp
