#include "ghs/omp/env.hpp"

#include <gtest/gtest.h>

#include "ghs/core/platform.hpp"
#include "ghs/util/error.hpp"

namespace ghs::omp {
namespace {

TEST(EnvTest, EmptyEnvironmentHasNoIcvs) {
  const auto env = Environment::parse({});
  EXPECT_FALSE(env.num_teams.has_value());
  EXPECT_FALSE(env.teams_thread_limit.has_value());
  EXPECT_FALSE(env.num_threads.has_value());
  EXPECT_FALSE(env.default_device.has_value());
}

TEST(EnvTest, ParsesKnownVariables) {
  const auto env = Environment::parse({{"OMP_NUM_TEAMS", "4096"},
                                       {"OMP_TEAMS_THREAD_LIMIT", "256"},
                                       {"OMP_NUM_THREADS", "72"},
                                       {"OMP_DEFAULT_DEVICE", "0"}});
  EXPECT_EQ(env.num_teams.value(), 4096);
  EXPECT_EQ(env.teams_thread_limit.value(), 256);
  EXPECT_EQ(env.num_threads.value(), 72);
  EXPECT_EQ(env.default_device.value(), 0);
}

TEST(EnvTest, ThreadLimitAliasAccepted) {
  const auto env = Environment::parse({{"OMP_THREAD_LIMIT", "128"}});
  EXPECT_EQ(env.teams_thread_limit.value(), 128);
}

TEST(EnvTest, UnknownVariablesIgnored) {
  const auto env = Environment::parse(
      {{"OMP_SCHEDULE", "dynamic"}, {"PATH", "/usr/bin"}});
  EXPECT_FALSE(env.num_teams.has_value());
}

TEST(EnvTest, MalformedValuesThrow) {
  EXPECT_THROW(Environment::parse({{"OMP_NUM_TEAMS", "many"}}), Error);
  EXPECT_THROW(Environment::parse({{"OMP_NUM_TEAMS", "0"}}), Error);
  EXPECT_THROW(Environment::parse({{"OMP_NUM_TEAMS", "-4"}}), Error);
  EXPECT_THROW(Environment::parse({{"OMP_DEFAULT_DEVICE", "-1"}}), Error);
}

TEST(EnvTest, ParseListRoundTrip) {
  const auto env = Environment::parse_list(
      "OMP_NUM_TEAMS=1024,OMP_TEAMS_THREAD_LIMIT=256");
  EXPECT_EQ(env.num_teams.value(), 1024);
  EXPECT_EQ(env.teams_thread_limit.value(), 256);
  EXPECT_NO_THROW(Environment::parse_list(""));
  EXPECT_THROW(Environment::parse_list("NOEQUALS"), Error);
}

TEST(EnvTest, RuntimeHonoursEnvironmentBelowClauses) {
  core::SystemConfig config = core::gh200_config();
  config.omp.env = Environment::parse(
      {{"OMP_NUM_TEAMS", "2048"}, {"OMP_TEAMS_THREAD_LIMIT", "256"}});
  core::Platform platform(config);
  auto& rt = platform.runtime();

  OffloadLoop loop;
  loop.label = "env";
  loop.iterations = 1 << 24;
  loop.element_size = 4;

  // No clauses: the environment wins over the heuristic.
  auto desc = rt.lower(loop, TeamsClauses{});
  EXPECT_EQ(desc.grid, 2048);
  EXPECT_EQ(desc.threads_per_cta, 256);

  // Clauses beat the environment.
  TeamsClauses clauses;
  clauses.num_teams = 64;
  clauses.thread_limit = 128;
  desc = rt.lower(loop, clauses);
  EXPECT_EQ(desc.grid, 64);
  EXPECT_EQ(desc.threads_per_cta, 128);
}

TEST(EnvTest, EnvironmentGridStillClampedToIterations) {
  core::SystemConfig config = core::gh200_config();
  config.omp.env = Environment::parse({{"OMP_NUM_TEAMS", "1000000"}});
  core::Platform platform(config);
  OffloadLoop loop;
  loop.label = "small";
  loop.iterations = 100;
  loop.element_size = 4;
  EXPECT_EQ(platform.runtime().lower(loop, TeamsClauses{}).grid, 100);
}

}  // namespace
}  // namespace ghs::omp
