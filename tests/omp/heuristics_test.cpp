#include "ghs/omp/heuristics.hpp"

#include <gtest/gtest.h>

#include "ghs/util/error.hpp"

namespace ghs::omp {
namespace {

TEST(HeuristicsTest, GridIsIterationsOverDefaultThreads) {
  GridHeuristic h;
  EXPECT_EQ(heuristic_grid(h, 1'048'576'000), 8'192'000);
}

TEST(HeuristicsTest, GridRoundsUp) {
  GridHeuristic h;
  EXPECT_EQ(heuristic_grid(h, 129), 2);
  EXPECT_EQ(heuristic_grid(h, 128), 1);
  EXPECT_EQ(heuristic_grid(h, 1), 1);
}

TEST(HeuristicsTest, ClampHitsForC2) {
  GridHeuristic h;
  // The paper: 4,194,304,000 int8 elements -> grid 16,777,215 (0xFFFFFF).
  EXPECT_EQ(heuristic_grid(h, 4'194'304'000), 0xFFFFFF);
}

TEST(HeuristicsTest, CustomDefaults) {
  GridHeuristic h;
  h.default_threads = 256;
  h.grid_clamp = 1000;
  EXPECT_EQ(heuristic_grid(h, 256'000), 1000);
  EXPECT_EQ(heuristic_grid(h, 2560), 10);
}

TEST(HeuristicsTest, RejectsNonPositiveIterations) {
  GridHeuristic h;
  EXPECT_THROW(heuristic_grid(h, 0), Error);
  EXPECT_THROW(heuristic_grid(h, -5), Error);
}

TEST(HeuristicsTest, OccupancyGrid) {
  EXPECT_EQ(occupancy_grid(132, 16, 1), 2112);
  EXPECT_EQ(occupancy_grid(132, 8, 4), 4224);
  EXPECT_THROW(occupancy_grid(0, 1, 1), Error);
}

}  // namespace
}  // namespace ghs::omp
