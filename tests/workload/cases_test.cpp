#include "ghs/workload/cases.hpp"

#include <gtest/gtest.h>

#include "ghs/util/error.hpp"

namespace ghs::workload {
namespace {

TEST(CasesTest, FourCases) {
  EXPECT_EQ(all_cases().size(), 4u);
}

TEST(CasesTest, C1Spec) {
  const auto& spec = case_spec(CaseId::kC1);
  EXPECT_STREQ(spec.name, "C1");
  EXPECT_EQ(spec.element_size, 4);
  EXPECT_EQ(spec.paper_elements, 1'048'576'000);
  EXPECT_EQ(spec.combine, gpu::CombineClass::kNativeInt);
  EXPECT_FALSE(spec.floating);
}

TEST(CasesTest, C2SpecWidensToInt64) {
  const auto& spec = case_spec(CaseId::kC2);
  EXPECT_STREQ(spec.input_type, "int8");
  EXPECT_STREQ(spec.result_type, "int64");
  EXPECT_EQ(spec.element_size, 1);
  EXPECT_EQ(spec.paper_elements, 4'194'304'000);
  EXPECT_EQ(spec.combine, gpu::CombineClass::kWideningInt);
}

TEST(CasesTest, FloatCasesUseCasCombine) {
  EXPECT_EQ(case_spec(CaseId::kC3).combine, gpu::CombineClass::kFloatCas);
  EXPECT_EQ(case_spec(CaseId::kC4).combine, gpu::CombineClass::kFloatCas);
  EXPECT_TRUE(case_spec(CaseId::kC3).floating);
  EXPECT_TRUE(case_spec(CaseId::kC4).floating);
}

TEST(CasesTest, AllCasesMoveRoughlyFourOrEightGB) {
  for (CaseId id : all_cases()) {
    const auto& spec = case_spec(id);
    const auto bytes = spec.paper_elements * spec.element_size;
    EXPECT_TRUE(bytes == 4'194'304'000 || bytes == 8'388'608'000)
        << spec.name;
  }
}

TEST(CasesTest, ParseAcceptsBothCases) {
  EXPECT_EQ(parse_case("C1"), CaseId::kC1);
  EXPECT_EQ(parse_case("c3"), CaseId::kC3);
  EXPECT_EQ(parse_case("C4"), CaseId::kC4);
}

TEST(CasesTest, ParseRejectsUnknown) {
  EXPECT_THROW(parse_case("C5"), Error);
  EXPECT_THROW(parse_case(""), Error);
}

}  // namespace
}  // namespace ghs::workload
