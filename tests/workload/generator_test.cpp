#include "ghs/workload/generator.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace ghs::workload {
namespace {

TEST(GeneratorTest, OnesPattern) {
  const auto v = generate<std::int32_t>(Pattern::kOnes, 100, 1);
  ASSERT_EQ(v.size(), 100u);
  for (auto x : v) EXPECT_EQ(x, 1);
}

TEST(GeneratorTest, AlternatingIntsCancel) {
  const auto v = generate<std::int32_t>(Pattern::kAlternating, 10, 1);
  std::int64_t sum = 0;
  for (auto x : v) sum += x;
  EXPECT_EQ(sum, 0);
}

TEST(GeneratorTest, AlternatingFloatsUseHalfStep) {
  const auto v = generate<float>(Pattern::kAlternating, 4, 1);
  EXPECT_FLOAT_EQ(v[0], 1.0f);
  EXPECT_FLOAT_EQ(v[1], -0.5f);
  EXPECT_FLOAT_EQ(v[2], 1.0f);
}

TEST(GeneratorTest, UniformIntsBounded) {
  const auto v = generate<std::int8_t>(Pattern::kUniform, 1000, 7);
  for (auto x : v) {
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 16);
  }
}

TEST(GeneratorTest, UniformFloatsInUnitInterval) {
  const auto v = generate<double>(Pattern::kUniform, 1000, 7);
  for (auto x : v) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(GeneratorTest, UniformIsSeedDeterministic) {
  const auto a = generate<std::int32_t>(Pattern::kUniform, 256, 42);
  const auto b = generate<std::int32_t>(Pattern::kUniform, 256, 42);
  const auto c = generate<std::int32_t>(Pattern::kUniform, 256, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(GeneratorTest, RampHasClosedFormSum) {
  const std::int64_t n = 97 * 3;
  const auto v = generate<std::int32_t>(Pattern::kRamp, n, 1);
  std::int64_t sum = 0;
  for (auto x : v) sum += x;
  EXPECT_EQ(sum, 3 * (96 * 97 / 2));
}

TEST(GeneratorTest, PatternNames) {
  EXPECT_STREQ(pattern_name(Pattern::kOnes), "ones");
  EXPECT_STREQ(pattern_name(Pattern::kAlternating), "alternating");
  EXPECT_STREQ(pattern_name(Pattern::kUniform), "uniform");
  EXPECT_STREQ(pattern_name(Pattern::kRamp), "ramp");
}

}  // namespace
}  // namespace ghs::workload
